module snmatch

go 1.22
