// Package dataset assembles the three evaluation sets of the paper's
// Table 1 — ShapeNetSet1 (SNS1, 82 reference views), ShapeNetSet2 (SNS2,
// 100 views) and the NYUSet (6,934 segmented instances) — from the
// synthetic renderer, together with the image-pair sets used to train
// and test the Normalized-X-Corr network (§3.4).
package dataset

import (
	"fmt"

	"snmatch/internal/imaging"
	"snmatch/internal/rng"
	"snmatch/internal/synth"
)

// SNS1Counts are the per-class view counts of ShapeNetSet1 (Table 1):
// chairs and bottles oversampled, windows and doors (rotation-invariant)
// undersampled.
var SNS1Counts = [synth.NumClasses]int{14, 12, 8, 8, 8, 8, 6, 4, 8, 6}

// SNS2PerClass is the uniform per-class view count of ShapeNetSet2.
const SNS2PerClass = 10

// NYUCounts are the per-class instance counts of the NYUSet (Table 1),
// with chairs downsampled to 1000 as in the paper.
var NYUCounts = [synth.NumClasses]int{1000, 920, 790, 760, 726, 637, 617, 511, 495, 478}

// Sample is one image with its ground truth.
type Sample struct {
	Image *imaging.Image
	Class synth.Class
	Model int
	View  int
}

// Set is a named collection of samples.
type Set struct {
	Name    string
	Samples []Sample
}

// Len returns the number of samples.
func (s *Set) Len() int { return len(s.Samples) }

// CountByClass tallies samples per Table 1 class. Synthetic classes
// beyond the Table 1 taxonomy (BuildLarge galleries) are skipped rather
// than counted, since the fixed-size tally has no slot for them.
func (s *Set) CountByClass() [synth.NumClasses]int {
	var out [synth.NumClasses]int
	for _, sm := range s.Samples {
		if sm.Class >= 0 && int(sm.Class) < synth.NumClasses {
			out[sm.Class]++
		}
	}
	return out
}

// Config controls dataset construction.
type Config struct {
	Size int    // image side in pixels (default synth.DefaultSize)
	Seed uint64 // renderer seed (default 1)

	// NYUPerClassCap, when positive, limits every NYU class to at most
	// this many instances — used to scale the experiments to test-sized
	// budgets while keeping the class imbalance profile.
	NYUPerClassCap int
}

func (c Config) params() synth.Params {
	if c.Size <= 0 {
		c.Size = synth.DefaultSize
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return synth.Params{Size: c.Size, Seed: c.Seed}
}

// BuildSNS1 renders ShapeNetSet1: two models per class (ids 0 and 1),
// Table 1 view counts.
func BuildSNS1(cfg Config) *Set {
	p := cfg.params()
	set := &Set{Name: "SNS1"}
	for _, cls := range synth.AllClasses {
		n := SNS1Counts[cls]
		for i := 0; i < n; i++ {
			model := i % 2
			view := i / 2
			set.Samples = append(set.Samples, Sample{
				Image: synth.RenderView(cls, model, view, synth.ShapeNetMode, p),
				Class: cls, Model: model, View: view,
			})
		}
	}
	return set
}

// BuildSNS2 renders ShapeNetSet2: ten views per class drawn from five
// models (ids 2-6) that do not appear in SNS1, so SNS2-vs-SNS1
// experiments compare unseen model instances of the same classes.
func BuildSNS2(cfg Config) *Set {
	p := cfg.params()
	set := &Set{Name: "SNS2"}
	for _, cls := range synth.AllClasses {
		for i := 0; i < SNS2PerClass; i++ {
			model := 2 + i%5
			view := i / 5
			set.Samples = append(set.Samples, Sample{
				Image: synth.RenderView(cls, model, view, synth.ShapeNetMode, p),
				Class: cls, Model: model, View: view,
			})
		}
	}
	return set
}

// BuildNYU renders the NYUSet: every instance is a distinct model
// (ids from 1000 up) in NYU degradation mode, honouring the Table 1
// class imbalance, optionally capped per class.
func BuildNYU(cfg Config) *Set {
	p := cfg.params()
	set := &Set{Name: "NYU"}
	for _, cls := range synth.AllClasses {
		n := NYUCounts[cls]
		if cfg.NYUPerClassCap > 0 {
			// Preserve the imbalance profile under the cap.
			scaled := n * cfg.NYUPerClassCap / NYUCounts[0]
			if scaled < 1 {
				scaled = 1
			}
			n = scaled
		}
		for i := 0; i < n; i++ {
			model := 1000 + i
			set.Samples = append(set.Samples, Sample{
				Image: synth.RenderView(cls, model, i, synth.NYUMode, p),
				Class: cls, Model: model, View: i,
			})
		}
	}
	return set
}

// BuildLarge wraps synth.LargeGallery as a Set: a scaled synthetic
// reference gallery of classes x viewsPerClass clean views, one model
// per synthetic class, for ANN benchmarks that need realistic gallery
// sizes. Classes beyond the Table 1 ten are valid here (they reuse the
// base drawing families with distinct models); such sets classify and
// index normally but fall outside the fixed Table 1 tallies.
func BuildLarge(classes, viewsPerClass int, seed uint64) *Set {
	return largeSet(fmt.Sprintf("Large-%dx%d", classes, viewsPerClass),
		synth.LargeGallery(classes, viewsPerClass, seed))
}

// BuildLargeAt is BuildLarge with an explicit render size: the recall
// benchmarks enroll at 128px so every view carries enough keypoints for
// sharp match-score margins.
func BuildLargeAt(classes, viewsPerClass, size int, seed uint64) *Set {
	return largeSet(fmt.Sprintf("Large-%dx%d@%d", classes, viewsPerClass, size),
		synth.LargeGalleryAt(classes, viewsPerClass, size, seed))
}

// BuildLargeQueriesAt wraps synth.LargeQueriesAt as a Set: unseen poses
// of the models BuildLargeAt enrolls, for recall@1 measurements.
func BuildLargeQueriesAt(classes, perClass, size int, seed uint64) *Set {
	return largeSet(fmt.Sprintf("LargeQ-%dx%d@%d", classes, perClass, size),
		synth.LargeQueriesAt(classes, perClass, size, seed))
}

func largeSet(name string, views []synth.LargeView) *Set {
	set := &Set{Name: name}
	for _, lv := range views {
		set.Samples = append(set.Samples, Sample{
			Image: lv.Image, Class: lv.Class, Model: lv.Model, View: lv.View,
		})
	}
	return set
}

// BuildNYUSubset renders exactly perClass NYU instances per class, as in
// the paper's second NXCorr test set (10 random picks per class).
func BuildNYUSubset(cfg Config, perClass int) *Set {
	p := cfg.params()
	set := &Set{Name: fmt.Sprintf("NYU-%dpc", perClass)}
	for _, cls := range synth.AllClasses {
		for i := 0; i < perClass; i++ {
			model := 5000 + i
			set.Samples = append(set.Samples, Sample{
				Image: synth.RenderView(cls, model, i, synth.NYUMode, p),
				Class: cls, Model: model, View: i,
			})
		}
	}
	return set
}

// Pair references two samples and whether they share a class.
type Pair struct {
	A, B    int // indices into the respective sets
	Similar bool
}

// AllPairs enumerates every unordered pair within the set: C(n, 2)
// pairs, labelled similar when the classes match. For SNS1's 82 views
// this yields the paper's 3,321 test pairs.
func AllPairs(s *Set) []Pair {
	var out []Pair
	for i := 0; i < s.Len(); i++ {
		for j := i + 1; j < s.Len(); j++ {
			out = append(out, Pair{
				A: i, B: j,
				Similar: s.Samples[i].Class == s.Samples[j].Class,
			})
		}
	}
	return out
}

// CrossPairs enumerates every (query, gallery) pair across two sets:
// for 100 NYU picks against SNS1's 82 views this yields the paper's
// 8,200 pairs.
func CrossPairs(q, g *Set) []Pair {
	var out []Pair
	for i := 0; i < q.Len(); i++ {
		for j := 0; j < g.Len(); j++ {
			out = append(out, Pair{
				A: i, B: j,
				Similar: q.Samples[i].Class == g.Samples[j].Class,
			})
		}
	}
	return out
}

// TrainPairs samples a training pair set of the requested size and
// positive fraction from within the set, mirroring §3.4's 9,450 pairs at
// 52% similar: positives pair same-class samples (oversampling as
// needed), negatives pair distinct classes, both drawn deterministically.
func TrainPairs(s *Set, total int, posFrac float64, seed uint64) []Pair {
	r := rng.New(seed)
	byClass := map[synth.Class][]int{}
	for i, sm := range s.Samples {
		byClass[sm.Class] = append(byClass[sm.Class], i)
	}
	var classes []synth.Class
	for _, c := range synth.AllClasses {
		if len(byClass[c]) >= 2 {
			classes = append(classes, c)
		}
	}
	if len(classes) < 2 {
		panic("dataset: TrainPairs needs at least two populated classes")
	}
	nPos := int(float64(total)*posFrac + 0.5)
	out := make([]Pair, 0, total)
	for len(out) < nPos {
		c := classes[r.Intn(len(classes))]
		idx := byClass[c]
		a, b := idx[r.Intn(len(idx))], idx[r.Intn(len(idx))]
		if a == b {
			continue
		}
		out = append(out, Pair{A: a, B: b, Similar: true})
	}
	for len(out) < total {
		ca := classes[r.Intn(len(classes))]
		cb := classes[r.Intn(len(classes))]
		if ca == cb {
			continue
		}
		a := byClass[ca][r.Intn(len(byClass[ca]))]
		b := byClass[cb][r.Intn(len(byClass[cb]))]
		out = append(out, Pair{A: a, B: b, Similar: false})
	}
	// Interleave positives and negatives deterministically.
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// PositiveFraction returns the fraction of similar pairs.
func PositiveFraction(pairs []Pair) float64 {
	if len(pairs) == 0 {
		return 0
	}
	n := 0
	for _, p := range pairs {
		if p.Similar {
			n++
		}
	}
	return float64(n) / float64(len(pairs))
}
