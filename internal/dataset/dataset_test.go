package dataset

import (
	"math"
	"testing"

	"snmatch/internal/synth"
)

var smallCfg = Config{Size: 48, Seed: 9}

func TestSNS1Cardinalities(t *testing.T) {
	s := BuildSNS1(smallCfg)
	if s.Len() != 82 {
		t.Fatalf("SNS1 size = %d, want 82 (Table 1)", s.Len())
	}
	counts := s.CountByClass()
	want := [synth.NumClasses]int{14, 12, 8, 8, 8, 8, 6, 4, 8, 6}
	if counts != want {
		t.Errorf("SNS1 class counts = %v, want %v", counts, want)
	}
	// Exactly two models per class.
	models := map[synth.Class]map[int]bool{}
	for _, sm := range s.Samples {
		if models[sm.Class] == nil {
			models[sm.Class] = map[int]bool{}
		}
		models[sm.Class][sm.Model] = true
	}
	for cls, m := range models {
		if len(m) != 2 {
			t.Errorf("%v has %d models, want 2", cls, len(m))
		}
	}
}

func TestSNS2Cardinalities(t *testing.T) {
	s := BuildSNS2(smallCfg)
	if s.Len() != 100 {
		t.Fatalf("SNS2 size = %d, want 100 (Table 1)", s.Len())
	}
	for _, c := range s.CountByClass() {
		if c != 10 {
			t.Errorf("SNS2 class count = %d, want 10", c)
		}
	}
	// SNS2 models are disjoint from SNS1's (0, 1).
	for _, sm := range s.Samples {
		if sm.Model < 2 || sm.Model > 6 {
			t.Errorf("SNS2 model id %d outside 2..6", sm.Model)
		}
	}
}

func TestNYUCappedProfile(t *testing.T) {
	s := BuildNYU(Config{Size: 48, Seed: 9, NYUPerClassCap: 50})
	counts := s.CountByClass()
	if counts[synth.Chair] != 50 {
		t.Errorf("capped chair count = %d, want 50", counts[synth.Chair])
	}
	// Imbalance profile preserved: lamp ~ 478/1000 * 50.
	if counts[synth.Lamp] < 20 || counts[synth.Lamp] > 26 {
		t.Errorf("capped lamp count = %d, want ~24", counts[synth.Lamp])
	}
	// Monotone non-increasing in Table 1 order.
	for i := 1; i < synth.NumClasses; i++ {
		if counts[i] > counts[i-1] {
			t.Errorf("imbalance profile broken at %d: %v", i, counts)
		}
	}
}

func TestNYUFullCardinalityArithmetic(t *testing.T) {
	// Do not render the full set; check the published counts sum to the
	// paper's 6,934 total.
	total := 0
	for _, n := range NYUCounts {
		total += n
	}
	if total != 6934 {
		t.Errorf("NYU total = %d, want 6934 (Table 1)", total)
	}
	s1 := 0
	for _, n := range SNS1Counts {
		s1 += n
	}
	if s1 != 82 {
		t.Errorf("SNS1 total = %d, want 82", s1)
	}
}

func TestBuildNYUSubset(t *testing.T) {
	s := BuildNYUSubset(smallCfg, 3)
	if s.Len() != 30 {
		t.Fatalf("subset size = %d", s.Len())
	}
	for _, c := range s.CountByClass() {
		if c != 3 {
			t.Errorf("subset class count = %d", c)
		}
	}
}

func TestDeterministicBuilds(t *testing.T) {
	a := BuildSNS1(smallCfg)
	b := BuildSNS1(smallCfg)
	for i := range a.Samples {
		for j := range a.Samples[i].Image.Pix {
			if a.Samples[i].Image.Pix[j] != b.Samples[i].Image.Pix[j] {
				t.Fatal("SNS1 not deterministic")
			}
		}
	}
}

func TestAllPairsCount(t *testing.T) {
	s := BuildSNS1(smallCfg)
	pairs := AllPairs(s)
	if len(pairs) != 82*81/2 {
		t.Fatalf("SNS1 pairs = %d, want 3321 (paper §3.4)", len(pairs))
	}
	// Positive count: sum over classes of C(n, 2).
	wantPos := 0
	for _, n := range SNS1Counts {
		wantPos += n * (n - 1) / 2
	}
	gotPos := 0
	for _, p := range pairs {
		if p.Similar {
			gotPos++
		}
	}
	if gotPos != wantPos {
		t.Errorf("positive pairs = %d, want %d", gotPos, wantPos)
	}
}

func TestCrossPairsCount(t *testing.T) {
	q := BuildNYUSubset(smallCfg, 10) // 100 queries as in the paper
	g := BuildSNS1(smallCfg)
	pairs := CrossPairs(q, g)
	if len(pairs) != 8200 {
		t.Fatalf("cross pairs = %d, want 8200 (paper §3.4)", len(pairs))
	}
	// Each query has exactly SNS1Counts[class] positives.
	pos := 0
	for _, p := range pairs {
		if p.Similar {
			pos++
		}
	}
	want := 0
	for _, n := range SNS1Counts {
		want += 10 * n
	}
	if pos != want {
		t.Errorf("cross positives = %d, want %d", pos, want)
	}
}

func TestTrainPairsBalanceAndValidity(t *testing.T) {
	s := BuildSNS2(smallCfg)
	pairs := TrainPairs(s, 945, 0.52, 4)
	if len(pairs) != 945 {
		t.Fatalf("train pairs = %d", len(pairs))
	}
	frac := PositiveFraction(pairs)
	if math.Abs(frac-0.52) > 0.02 {
		t.Errorf("positive fraction = %v, want ~0.52", frac)
	}
	for _, p := range pairs {
		sameClass := s.Samples[p.A].Class == s.Samples[p.B].Class
		if p.Similar != sameClass {
			t.Fatal("pair label inconsistent with classes")
		}
		if p.Similar && p.A == p.B {
			t.Fatal("degenerate identical pair")
		}
	}
	// Deterministic.
	again := TrainPairs(s, 945, 0.52, 4)
	for i := range pairs {
		if pairs[i] != again[i] {
			t.Fatal("TrainPairs not deterministic")
		}
	}
}

func TestPositiveFractionEmpty(t *testing.T) {
	if PositiveFraction(nil) != 0 {
		t.Error("empty fraction should be 0")
	}
}
