// Package arena provides the scratch-buffer recycler behind the
// zero-allocation query path: a per-context, type-segregated free list
// that loans out slices (and struct headers) for the duration of one
// extraction, then reclaims every loan at Reset. A warm arena — one that
// has already served a query of the same shape — satisfies the whole
// extraction working set (grayscale planes, Gaussian pyramids, integral
// tables, response grids, descriptor rows, packed matrices) without
// touching the heap.
//
// Loans are zeroed on checkout, so arena-backed buffers are
// indistinguishable from make()'d ones and pooled extraction stays
// byte-identical to fresh extraction. An Arena is not safe for
// concurrent use: each worker (or in-flight request) owns its own, which
// is exactly the per-worker extraction-context discipline the pipeline
// and serving layers enforce.
//
// Every allocator in this package is nil-receiver safe and falls back to
// the plain heap when the arena is nil, so call sites thread one
// optional *Arena instead of maintaining dual code paths.
package arena

import (
	"math/bits"
	"reflect"
	"sync/atomic"
	"unsafe"
)

// totalAllocated counts every byte of fresh buffer capacity any arena
// in the process has ever drawn from the heap. It only moves on the
// cold path (a loan no free buffer could satisfy), so the atomic add
// costs nothing at steady state — a warm arena never touches it.
var totalAllocated atomic.Int64

// TotalAllocated returns the process-lifetime bytes of arena buffer
// capacity allocated from the heap — the observability feed for the
// arena footprint metric (a counter: arenas never shrink, and pooled
// contexts dropped for GC are not subtracted).
func TotalAllocated() int64 { return totalAllocated.Load() }

// recycler is the type-erased view of a typed pool that Reset iterates.
type recycler interface{ recycle() }

// Arena is a size-classed, type-segregated free-list allocator. The
// zero value is not usable; call New.
type Arena struct {
	pools map[reflect.Type]recycler
	bytes int // total capacity ever allocated, in bytes (never shrinks)
}

// New returns an empty arena.
func New() *Arena { return &Arena{pools: map[reflect.Type]recycler{}} }

// Footprint returns the total bytes of buffer capacity the arena has
// accumulated (and will retain until it is garbage). Pools never
// shrink, so this is the arena's high-water mark; owners of pooled
// arenas use it to drop instances that one oversized workload
// inflated.
func (a *Arena) Footprint() int {
	if a == nil {
		return 0
	}
	return a.bytes
}

// Reset reclaims every buffer loaned since the previous Reset, making
// them available for reuse. All slices and pointers obtained from the
// arena are invalid afterwards; callers must not retain them across a
// Reset. Resetting a nil arena is a no-op.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	for _, p := range a.pools {
		p.recycle()
	}
}

// numClasses covers capacities up to 2^31 on 32-bit and beyond on
// 64-bit platforms (class k holds buffers of capacity exactly 1<<k).
const numClasses = 48

// minClass floors tiny asks at capacity 8 so one buffer serves many of
// them.
const minClass = 3

// classOf returns the size class whose capacity (1 << class) is the
// smallest power of two >= n.
func classOf(n int) int {
	if n <= 1<<minClass {
		return minClass
	}
	return bits.Len(uint(n - 1))
}

// pool holds the free and loaned buffers of one element type. Free
// buffers are bucketed by size class, and every buffer is allocated at
// exactly its class capacity — so a loan pops the last buffer of the
// first non-empty class >= classOf(n) in O(1) amortised time instead
// of best-fit scanning a flat list (which would make per-keypoint
// descriptor-row loans quadratic in the keypoint count).
type pool[T any] struct {
	free   [numClasses][][]T // free[k]: idle buffers of capacity 1<<k
	loaned [][]T             // buffers handed out since the last recycle
}

func (p *pool[T]) recycle() {
	for _, b := range p.loaned {
		k := classOf(cap(b))
		p.free[k] = append(p.free[k], b)
	}
	clear(p.loaned)
	p.loaned = p.loaned[:0]
}

// loan returns a full-capacity buffer with cap >= n, reusing a free
// one when possible; fresh allocations are charged to the arena's
// footprint counter. Contents are NOT cleared here.
func (p *pool[T]) loan(n int, footprint *int) []T {
	k := classOf(n)
	for c := k; c < numClasses; c++ {
		if last := len(p.free[c]) - 1; last >= 0 {
			buf := p.free[c][last]
			p.free[c][last] = nil
			p.free[c] = p.free[c][:last]
			p.loaned = append(p.loaned, buf)
			return buf
		}
	}
	buf := make([]T, 1<<k)
	sz := (1 << k) * int(unsafe.Sizeof(*new(T)))
	*footprint += sz
	totalAllocated.Add(int64(sz))
	p.loaned = append(p.loaned, buf)
	return buf
}

// typeKey returns a stable, allocation-free map key for T.
func typeKey[T any]() reflect.Type { return reflect.TypeOf((*T)(nil)) }

func poolOf[T any](a *Arena) *pool[T] {
	k := typeKey[T]()
	if p, ok := a.pools[k]; ok {
		return p.(*pool[T])
	}
	p := &pool[T]{}
	a.pools[k] = p
	return p
}

// Slice returns a zeroed slice of length n, drawn from the arena's
// size-classed free lists when a buffer of sufficient capacity is idle
// and from the heap otherwise. With a nil arena it is exactly
// make([]T, n).
func Slice[T any](a *Arena, n int) []T {
	if a == nil {
		return make([]T, n)
	}
	if n == 0 {
		// A zero-length make is allocation-free (zerobase); taking a
		// pooled buffer for it would just strand capacity.
		return make([]T, 0)
	}
	s := poolOf[T](a).loan(n, &a.bytes)[:n]
	clear(s) // loans must be indistinguishable from make()
	return s
}

// Cap returns an empty slice with capacity at least n — the append
// accumulator counterpart of Slice for call sites that know an upper
// bound up front. Appends within the capacity never touch the heap.
// The backing memory is not zeroed (a length-0 loan exposes no stale
// data, and every element is assigned by the append that makes it
// visible), so accumulator checkouts skip Slice's memset.
func Cap[T any](a *Arena, n int) []T {
	if a == nil {
		return make([]T, 0, n)
	}
	if n == 0 {
		return make([]T, 0)
	}
	return poolOf[T](a).loan(n, &a.bytes)[:0]
}

// NewOf returns a pointer to a zeroed T backed by the arena — the pooled
// replacement for new(T) / &T{} struct headers on the query path. The
// pointee is reclaimed (and later reused) by Reset.
func NewOf[T any](a *Arena) *T {
	if a == nil {
		return new(T)
	}
	s := Slice[T](a, 1)
	return &s[0]
}
