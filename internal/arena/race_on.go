//go:build race

package arena

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
