package arena

import "testing"

func TestNilArenaFallsBackToHeap(t *testing.T) {
	s := Slice[float32](nil, 5)
	if len(s) != 5 {
		t.Fatalf("len = %d, want 5", len(s))
	}
	c := Cap[int](nil, 3)
	if len(c) != 0 || cap(c) < 3 {
		t.Fatalf("Cap(nil) = len %d cap %d", len(c), cap(c))
	}
	p := NewOf[struct{ X int }](nil)
	if p == nil || p.X != 0 {
		t.Fatal("NewOf(nil) did not return a zeroed struct")
	}
	var a *Arena
	a.Reset() // must not panic
}

func TestSliceZeroesReusedBuffers(t *testing.T) {
	a := New()
	s := Slice[int32](a, 16)
	for i := range s {
		s[i] = int32(i) + 1
	}
	a.Reset()
	s2 := Slice[int32](a, 16)
	if &s[0] != &s2[0] {
		t.Fatal("expected the reset buffer to be reused")
	}
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed at %d: %d", i, v)
		}
	}
}

func TestDistinctLoansDoNotAlias(t *testing.T) {
	a := New()
	x := Slice[byte](a, 32)
	y := Slice[byte](a, 32)
	x[0], y[0] = 1, 2
	if &x[0] == &y[0] {
		t.Fatal("two live loans share a buffer")
	}
	a.Reset()
	// After reset both buffers are free again; two new loans must still
	// be distinct.
	x2 := Slice[byte](a, 32)
	y2 := Slice[byte](a, 32)
	if &x2[0] == &y2[0] {
		t.Fatal("two live loans share a buffer after reset")
	}
}

func TestSizeClassPrefersSmallestSufficientBuffer(t *testing.T) {
	a := New()
	big := Slice[float64](a, 1024)
	small := Slice[float64](a, 16)
	a.Reset()
	got := Slice[float64](a, 10)
	if &got[0] == &big[0] {
		t.Fatal("size-class lookup picked the oversized buffer")
	}
	if &got[0] != &small[0] {
		t.Fatal("size-class lookup did not reuse the small-class buffer")
	}
}

func TestCapReusesAndGrowsWithinCapacity(t *testing.T) {
	a := New()
	c := Cap[int](a, 10)
	if len(c) != 0 || cap(c) < 10 {
		t.Fatalf("Cap = len %d cap %d", len(c), cap(c))
	}
	for i := 0; i < 10; i++ {
		c = append(c, i)
	}
	a.Reset()
	c2 := Cap[int](a, 10)
	if &c2[:1][0] != &c[:1][0] {
		t.Fatal("Cap did not reuse the reset buffer")
	}
	// Appends must observe only what they wrote, never stale contents.
	c2 = append(c2, 41, 42)
	if c2[0] != 41 || c2[1] != 42 || len(c2) != 2 {
		t.Fatalf("append over recycled Cap buffer = %v", c2)
	}
}

func TestTypesAreSegregated(t *testing.T) {
	a := New()
	f := Slice[float32](a, 8)
	a.Reset()
	_ = Slice[int32](a, 8) // different type: must not reuse f's storage
	f2 := Slice[float32](a, 8)
	if &f[0] != &f2[0] {
		t.Fatal("same-type loan after reset did not reuse the buffer")
	}
}

func TestFootprintTracksAllocatedCapacity(t *testing.T) {
	var nilArena *Arena
	if nilArena.Footprint() != 0 {
		t.Fatal("nil arena footprint != 0")
	}
	a := New()
	_ = Slice[float64](a, 1000) // class 10: 1024 * 8 bytes
	got := a.Footprint()
	if got != 1024*8 {
		t.Fatalf("footprint after one loan = %d, want %d", got, 1024*8)
	}
	a.Reset()
	_ = Slice[float64](a, 900) // reuses the same buffer: no growth
	if a.Footprint() != got {
		t.Fatalf("footprint grew on reuse: %d -> %d", got, a.Footprint())
	}
	_ = Slice[byte](a, 100) // class 7: 128 bytes, second live loan
	if a.Footprint() != got+128 {
		t.Fatalf("footprint = %d, want %d", a.Footprint(), got+128)
	}
}

func TestWarmArenaDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	a := New()
	shape := func() {
		_ = Slice[float32](a, 512)
		_ = Slice[byte](a, 100)
		_ = Slice[[]float32](a, 9)
		_ = NewOf[[4]int](a)
		a.Reset()
	}
	shape() // warm the free lists
	if n := testing.AllocsPerRun(200, shape); n != 0 {
		t.Fatalf("warm arena allocated %.1f times per run, want 0", n)
	}
}
