// Package geom provides the small amount of 2-D geometry shared by the
// imaging, contour and synthetic-rendering packages: points, integer
// rectangles, affine transforms and polygon helpers.
package geom

import "math"

// Point is a point (or vector) in the continuous image plane.
type Point struct {
	X, Y float64
}

// Pt is a convenience constructor for Point.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length of p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Rotate returns p rotated by theta radians about the origin
// (counter-clockwise in conventional y-up coordinates; image code that
// treats y as growing downwards sees a clockwise rotation).
func (p Point) Rotate(theta float64) Point {
	s, c := math.Sincos(theta)
	return Point{c*p.X - s*p.Y, s*p.X + c*p.Y}
}

// PointI is a point on the integer pixel grid.
type PointI struct {
	X, Y int
}

// PtI is a convenience constructor for PointI.
func PtI(x, y int) PointI { return PointI{x, y} }

// ToFloat converts the pixel coordinate to a continuous Point.
func (p PointI) ToFloat() Point { return Point{float64(p.X), float64(p.Y)} }

// Rect is an axis-aligned integer rectangle. Like image.Rectangle it is
// half open: it contains points with MinX <= x < MaxX and MinY <= y < MaxY.
type Rect struct {
	MinX, MinY, MaxX, MaxY int
}

// R constructs a Rect from its two corners, normalising the order.
func R(x0, y0, x1, y1 int) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1, y1}
}

// W returns the width of r (zero for an empty rectangle).
func (r Rect) W() int {
	if r.MaxX < r.MinX {
		return 0
	}
	return r.MaxX - r.MinX
}

// H returns the height of r (zero for an empty rectangle).
func (r Rect) H() int {
	if r.MaxY < r.MinY {
		return 0
	}
	return r.MaxY - r.MinY
}

// Area returns the number of grid cells covered by r.
func (r Rect) Area() int { return r.W() * r.H() }

// Empty reports whether r contains no cells.
func (r Rect) Empty() bool { return r.MaxX <= r.MinX || r.MaxY <= r.MinY }

// Contains reports whether the pixel (x, y) lies inside r.
func (r Rect) Contains(x, y int) bool {
	return x >= r.MinX && x < r.MaxX && y >= r.MinY && y < r.MaxY
}

// Intersect returns the largest rectangle contained in both r and s.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		MinX: max(r.MinX, s.MinX),
		MinY: max(r.MinY, s.MinY),
		MaxX: min(r.MaxX, s.MaxX),
		MaxY: min(r.MaxY, s.MaxY),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the smallest rectangle containing both r and s. An empty
// rectangle acts as the identity.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		MinX: min(r.MinX, s.MinX),
		MinY: min(r.MinY, s.MinY),
		MaxX: max(r.MaxX, s.MaxX),
		MaxY: max(r.MaxY, s.MaxY),
	}
}

// Inset shrinks r by d on every side (grows it for negative d).
func (r Rect) Inset(d int) Rect {
	out := Rect{r.MinX + d, r.MinY + d, r.MaxX - d, r.MaxY - d}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// ClampTo clips r to the bounds of a w x h image.
func (r Rect) ClampTo(w, h int) Rect {
	return r.Intersect(Rect{0, 0, w, h})
}

// BoundingBox returns the minimal rectangle covering all points (each point
// occupies its own 1x1 cell). It returns an empty Rect for no points.
func BoundingBox(pts []PointI) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{pts[0].X, pts[0].Y, pts[0].X + 1, pts[0].Y + 1}
	for _, p := range pts[1:] {
		if p.X < r.MinX {
			r.MinX = p.X
		}
		if p.Y < r.MinY {
			r.MinY = p.Y
		}
		if p.X+1 > r.MaxX {
			r.MaxX = p.X + 1
		}
		if p.Y+1 > r.MaxY {
			r.MaxY = p.Y + 1
		}
	}
	return r
}

// Affine is a 2-D affine transform:
//
//	x' = A*x + B*y + C
//	y' = D*x + E*y + F
type Affine struct {
	A, B, C float64
	D, E, F float64
}

// Identity returns the identity transform.
func Identity() Affine { return Affine{A: 1, E: 1} }

// Translation returns a transform that translates by (tx, ty).
func Translation(tx, ty float64) Affine { return Affine{A: 1, C: tx, E: 1, F: ty} }

// Scaling returns a transform that scales by (sx, sy) about the origin.
func Scaling(sx, sy float64) Affine { return Affine{A: sx, E: sy} }

// Rotation returns a transform that rotates by theta radians about the
// origin.
func Rotation(theta float64) Affine {
	s, c := math.Sincos(theta)
	return Affine{A: c, B: -s, D: s, E: c}
}

// RotationAbout returns a rotation by theta radians about (cx, cy).
func RotationAbout(theta, cx, cy float64) Affine {
	return Translation(cx, cy).Mul(Rotation(theta)).Mul(Translation(-cx, -cy))
}

// Mul composes transforms: (t.Mul(u)).Apply(p) == t.Apply(u.Apply(p)).
func (t Affine) Mul(u Affine) Affine {
	return Affine{
		A: t.A*u.A + t.B*u.D,
		B: t.A*u.B + t.B*u.E,
		C: t.A*u.C + t.B*u.F + t.C,
		D: t.D*u.A + t.E*u.D,
		E: t.D*u.B + t.E*u.E,
		F: t.D*u.C + t.E*u.F + t.F,
	}
}

// Apply transforms the point p.
func (t Affine) Apply(p Point) Point {
	return Point{
		X: t.A*p.X + t.B*p.Y + t.C,
		Y: t.D*p.X + t.E*p.Y + t.F,
	}
}

// ApplyAll transforms every point in pts, returning a new slice.
func (t Affine) ApplyAll(pts []Point) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = t.Apply(p)
	}
	return out
}

// Invert returns the inverse transform. ok is false when t is singular.
func (t Affine) Invert() (inv Affine, ok bool) {
	det := t.A*t.E - t.B*t.D
	if math.Abs(det) < 1e-12 {
		return Affine{}, false
	}
	id := 1 / det
	inv = Affine{
		A: t.E * id,
		B: -t.B * id,
		D: -t.D * id,
		E: t.A * id,
	}
	inv.C = -(inv.A*t.C + inv.B*t.F)
	inv.F = -(inv.D*t.C + inv.E*t.F)
	return inv, true
}

// PolygonArea returns the signed area of the polygon (shoelace formula).
// Counter-clockwise polygons (in y-up coordinates) have positive area.
func PolygonArea(pts []Point) float64 {
	if len(pts) < 3 {
		return 0
	}
	sum := 0.0
	for i := range pts {
		j := (i + 1) % len(pts)
		sum += pts[i].X*pts[j].Y - pts[j].X*pts[i].Y
	}
	return sum / 2
}

// PolygonCentroid returns the centroid of the polygon. For degenerate
// polygons it falls back to the mean of the vertices.
func PolygonCentroid(pts []Point) Point {
	a := PolygonArea(pts)
	if math.Abs(a) < 1e-12 {
		var c Point
		if len(pts) == 0 {
			return c
		}
		for _, p := range pts {
			c = c.Add(p)
		}
		return c.Scale(1 / float64(len(pts)))
	}
	var cx, cy float64
	for i := range pts {
		j := (i + 1) % len(pts)
		cross := pts[i].X*pts[j].Y - pts[j].X*pts[i].Y
		cx += (pts[i].X + pts[j].X) * cross
		cy += (pts[i].Y + pts[j].Y) * cross
	}
	k := 1 / (6 * a)
	return Point{cx * k, cy * k}
}

// PointInPolygon reports whether p is strictly inside the polygon using the
// even-odd (ray casting) rule.
func PointInPolygon(p Point, poly []Point) bool {
	inside := false
	n := len(poly)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		pi, pj := poly[i], poly[j]
		if (pi.Y > p.Y) != (pj.Y > p.Y) {
			xCross := (pj.X-pi.X)*(p.Y-pi.Y)/(pj.Y-pi.Y) + pi.X
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}
