package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointOps(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := Pt(3, 4).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestPointRotate(t *testing.T) {
	got := Pt(1, 0).Rotate(math.Pi / 2)
	if !almostEq(got.X, 0, 1e-12) || !almostEq(got.Y, 1, 1e-12) {
		t.Errorf("Rotate(pi/2) = %v", got)
	}
	// Rotation preserves norm.
	f := func(x, y, theta float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(theta) ||
			math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsInf(theta, 0) {
			return true
		}
		x, y = math.Mod(x, 1e6), math.Mod(y, 1e6)
		theta = math.Mod(theta, 2*math.Pi)
		p := Pt(x, y)
		r := p.Rotate(theta)
		return almostEq(p.Norm(), r.Norm(), 1e-6*(1+p.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectBasics(t *testing.T) {
	r := R(5, 7, 2, 3) // corners given out of order
	if r != (Rect{2, 3, 5, 7}) {
		t.Fatalf("R normalisation = %+v", r)
	}
	if r.W() != 3 || r.H() != 4 || r.Area() != 12 {
		t.Errorf("W/H/Area = %d/%d/%d", r.W(), r.H(), r.Area())
	}
	if r.Empty() {
		t.Error("non-empty rect reported empty")
	}
	if !r.Contains(2, 3) || r.Contains(5, 3) || r.Contains(2, 7) {
		t.Error("Contains half-open rule violated")
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	if got := a.Intersect(b); got != R(5, 5, 10, 10) {
		t.Errorf("Intersect = %+v", got)
	}
	if got := a.Union(b); got != R(0, 0, 15, 15) {
		t.Errorf("Union = %+v", got)
	}
	c := R(20, 20, 30, 30)
	if got := a.Intersect(c); !got.Empty() {
		t.Errorf("disjoint Intersect = %+v, want empty", got)
	}
	if got := (Rect{}).Union(a); got != a {
		t.Errorf("empty Union identity = %+v", got)
	}
}

func TestRectInsetClamp(t *testing.T) {
	r := R(0, 0, 10, 10)
	if got := r.Inset(2); got != R(2, 2, 8, 8) {
		t.Errorf("Inset = %+v", got)
	}
	if got := r.Inset(6); !got.Empty() {
		t.Errorf("over-Inset = %+v, want empty", got)
	}
	if got := R(-5, -5, 20, 20).ClampTo(10, 8); got != R(0, 0, 10, 8) {
		t.Errorf("ClampTo = %+v", got)
	}
}

func TestBoundingBox(t *testing.T) {
	if got := BoundingBox(nil); !got.Empty() {
		t.Errorf("BoundingBox(nil) = %+v", got)
	}
	pts := []PointI{{3, 4}, {1, 9}, {5, 2}}
	if got := BoundingBox(pts); got != (Rect{1, 2, 6, 10}) {
		t.Errorf("BoundingBox = %+v", got)
	}
	for _, p := range pts {
		if !BoundingBox(pts).Contains(p.X, p.Y) {
			t.Errorf("bbox does not contain %v", p)
		}
	}
}

func TestAffineIdentityAndCompose(t *testing.T) {
	p := Pt(3, -2)
	if got := Identity().Apply(p); got != p {
		t.Errorf("Identity = %v", got)
	}
	tr := Translation(5, 7)
	sc := Scaling(2, 3)
	// Compose semantics: t.Mul(u) applies u first.
	got := tr.Mul(sc).Apply(p)
	want := Pt(3*2+5, -2*3+7)
	if !almostEq(got.X, want.X, 1e-12) || !almostEq(got.Y, want.Y, 1e-12) {
		t.Errorf("compose = %v, want %v", got, want)
	}
}

func TestAffineRotationAbout(t *testing.T) {
	rot := RotationAbout(math.Pi, 5, 5)
	got := rot.Apply(Pt(6, 5))
	if !almostEq(got.X, 4, 1e-12) || !almostEq(got.Y, 5, 1e-12) {
		t.Errorf("RotationAbout = %v", got)
	}
	// The centre is fixed.
	c := rot.Apply(Pt(5, 5))
	if !almostEq(c.X, 5, 1e-12) || !almostEq(c.Y, 5, 1e-12) {
		t.Errorf("centre moved: %v", c)
	}
}

func TestAffineInvert(t *testing.T) {
	tf := Translation(3, -1).Mul(Rotation(0.7)).Mul(Scaling(2, 0.5))
	inv, ok := tf.Invert()
	if !ok {
		t.Fatal("invertible transform reported singular")
	}
	p := Pt(1.5, -2.25)
	q := inv.Apply(tf.Apply(p))
	if !almostEq(q.X, p.X, 1e-9) || !almostEq(q.Y, p.Y, 1e-9) {
		t.Errorf("round trip = %v, want %v", q, p)
	}
	if _, ok := Scaling(0, 1).Invert(); ok {
		t.Error("singular transform reported invertible")
	}
}

func TestPolygonArea(t *testing.T) {
	square := []Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}}
	if got := PolygonArea(square); got != 16 {
		t.Errorf("ccw square area = %v", got)
	}
	// Reversed orientation flips the sign.
	rev := []Point{{0, 4}, {4, 4}, {4, 0}, {0, 0}}
	if got := PolygonArea(rev); got != -16 {
		t.Errorf("cw square area = %v", got)
	}
	if got := PolygonArea(square[:2]); got != 0 {
		t.Errorf("degenerate area = %v", got)
	}
}

func TestPolygonCentroid(t *testing.T) {
	square := []Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}}
	c := PolygonCentroid(square)
	if !almostEq(c.X, 2, 1e-12) || !almostEq(c.Y, 2, 1e-12) {
		t.Errorf("centroid = %v", c)
	}
	// Degenerate: falls back to vertex mean.
	line := []Point{{0, 0}, {2, 0}}
	c = PolygonCentroid(line)
	if !almostEq(c.X, 1, 1e-12) || !almostEq(c.Y, 0, 1e-12) {
		t.Errorf("degenerate centroid = %v", c)
	}
}

func TestPointInPolygon(t *testing.T) {
	poly := []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
	if !PointInPolygon(Pt(5, 5), poly) {
		t.Error("centre not inside")
	}
	if PointInPolygon(Pt(15, 5), poly) {
		t.Error("outside point reported inside")
	}
	concave := []Point{{0, 0}, {10, 0}, {10, 10}, {5, 5}, {0, 10}}
	if PointInPolygon(Pt(5, 8), concave) {
		t.Error("notch point reported inside concave polygon")
	}
	if !PointInPolygon(Pt(2, 2), concave) {
		t.Error("interior point of concave polygon reported outside")
	}
}

func TestAffineApplyAll(t *testing.T) {
	pts := []Point{{1, 0}, {0, 1}}
	out := Scaling(2, 2).ApplyAll(pts)
	if out[0] != Pt(2, 0) || out[1] != Pt(0, 2) {
		t.Errorf("ApplyAll = %v", out)
	}
	if pts[0] != Pt(1, 0) {
		t.Error("ApplyAll mutated its input")
	}
}
