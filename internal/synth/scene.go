package synth

import (
	"snmatch/internal/geom"
	"snmatch/internal/imaging"
	"snmatch/internal/rng"
)

// SceneObject is the ground truth for one object placed in a scene.
type SceneObject struct {
	Class Class
	Model int
	Box   geom.Rect // placement box in scene coordinates
}

// Scene is a composited room view with ground-truth annotations, used by
// the mobile-robot examples to exercise the full segment-then-classify
// loop the paper motivates.
type Scene struct {
	Image   *imaging.Image
	Objects []SceneObject
}

// chromaKey is an off-palette colour used to cut objects out of their
// render canvas.
var chromaKey = imaging.C(1, 2, 3)

// ComposeScene renders the given classes into a w x h room image with a
// mid-gray wall and floor, placing objects on a loose grid so they do
// not overlap. Object sizes vary; ground-truth boxes are returned.
func ComposeScene(classes []Class, w, h int, seed uint64) Scene {
	r := rng.New(seed)
	img := imaging.NewImageFilled(w, h, imaging.C(126, 127, 130))
	// Floor band darkens the lower quarter for a hint of structure.
	img.FillRect(geom.Rect{MinX: 0, MinY: h * 3 / 4, MaxX: w, MaxY: h}, imaging.C(105, 100, 96))

	scene := Scene{Image: img}
	if len(classes) == 0 {
		return scene
	}
	cols := (len(classes) + 1) / 2
	rows := (len(classes) + cols - 1) / cols
	cellW, cellH := w/cols, h/rows
	for i, cls := range classes {
		cx := (i % cols) * cellW
		cy := (i / cols) * cellH
		size := minInt(cellW, cellH) * (70 + r.Intn(25)) / 100
		if size < 24 {
			size = 24
		}
		model := r.Intn(4)
		view := r.Intn(4)
		obj := RenderOnBackground(cls, model, view, chromaKey, Params{Size: size, Seed: seed})
		dx := cx + r.Intn(maxInt(cellW-size, 1))
		dy := cy + r.Intn(maxInt(cellH-size, 1))
		img.DrawImage(obj, dx, dy, chromaKey, true)
		scene.Objects = append(scene.Objects, SceneObject{
			Class: cls,
			Model: model,
			Box:   geom.Rect{MinX: dx, MinY: dy, MaxX: dx + size, MaxY: dy + size},
		})
	}
	return scene
}

// CropObject extracts an object's region from the scene as an NYU-style
// segmented crop: pixels outside the object silhouette (equal to the
// room background) are masked to black.
func (s *Scene) CropObject(i int) *imaging.Image {
	obj := s.Objects[i]
	crop := s.Image.Crop(obj.Box)
	if crop == nil {
		return nil
	}
	// Mask the two known background colours to black.
	for p := 0; p < crop.W*crop.H; p++ {
		c := imaging.RGB{R: crop.Pix[3*p], G: crop.Pix[3*p+1], B: crop.Pix[3*p+2]}
		if nearColor(c, imaging.C(126, 127, 130), 10) || nearColor(c, imaging.C(105, 100, 96), 10) {
			crop.Pix[3*p], crop.Pix[3*p+1], crop.Pix[3*p+2] = 0, 0, 0
		}
	}
	return crop
}

func nearColor(a, b imaging.RGB, tol int) bool {
	d := func(x, y uint8) int {
		v := int(x) - int(y)
		if v < 0 {
			v = -v
		}
		return v
	}
	return d(a.R, b.R) <= tol && d(a.G, b.G) <= tol && d(a.B, b.B) <= tol
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
