package synth

import (
	"snmatch/internal/geom"
	"snmatch/internal/imaging"
	"snmatch/internal/rng"
)

// SceneObject is the ground truth for one object placed in a scene.
type SceneObject struct {
	Class Class
	Model int
	// Box is the object's ground-truth box in scene coordinates: the
	// grid composer records the placement cell, the cluttered composer
	// (ComposeSceneP) the tight bounding box of the drawn silhouette —
	// what a detector should localise.
	Box geom.Rect
	// Occluded is the fraction of this object's drawn silhouette pixels
	// that objects drawn later (painter's order) overpainted — i.e. how
	// much of the object a detector can no longer see. 0 for
	// unobstructed objects, 1 when nothing of it remains visible. Only
	// ComposeSceneP populates it; the grid composer never overlaps.
	Occluded float64
}

// Scene is a composited room view with ground-truth annotations, used by
// the mobile-robot examples to exercise the full segment-then-classify
// loop the paper motivates.
type Scene struct {
	Image   *imaging.Image
	Objects []SceneObject
}

// chromaKey is an off-palette colour used to cut objects out of their
// render canvas.
var chromaKey = imaging.C(1, 2, 3)

// Room palette shared by the scene composers and the NYU-style crop
// masking in CropObject.
var (
	wallColor  = imaging.C(126, 127, 130)
	floorColor = imaging.C(105, 100, 96)
)

// ComposeScene renders the given classes into a w x h room image with a
// mid-gray wall and floor, placing objects on a loose grid so they do
// not overlap. Object sizes vary; ground-truth boxes are returned.
func ComposeScene(classes []Class, w, h int, seed uint64) Scene {
	r := rng.New(seed)
	img := imaging.NewImageFilled(w, h, wallColor)
	// Floor band darkens the lower quarter for a hint of structure.
	img.FillRect(geom.Rect{MinX: 0, MinY: h * 3 / 4, MaxX: w, MaxY: h}, floorColor)

	scene := Scene{Image: img}
	if len(classes) == 0 {
		return scene
	}
	cols := (len(classes) + 1) / 2
	rows := (len(classes) + cols - 1) / cols
	cellW, cellH := w/cols, h/rows
	for i, cls := range classes {
		cx := (i % cols) * cellW
		cy := (i / cols) * cellH
		size := minInt(cellW, cellH) * (70 + r.Intn(25)) / 100
		if size < 24 {
			size = 24
		}
		model := r.Intn(4)
		view := r.Intn(4)
		obj := RenderOnBackground(cls, model, view, chromaKey, Params{Size: size, Seed: seed})
		dx := cx + r.Intn(maxInt(cellW-size, 1))
		dy := cy + r.Intn(maxInt(cellH-size, 1))
		img.DrawImage(obj, dx, dy, chromaKey, true)
		scene.Objects = append(scene.Objects, SceneObject{
			Class: cls,
			Model: model,
			Box:   geom.Rect{MinX: dx, MinY: dy, MaxX: dx + size, MaxY: dy + size},
		})
	}
	return scene
}

// SceneParams controls the cluttered scene composer. The zero value of
// every field is a sensible default; only Classes is required.
type SceneParams struct {
	W, H    int     // canvas size (defaults 320 x 240)
	Seed    uint64  // scene-level seed; equal params compose equal scenes
	Classes []Class // one object per entry, drawn in order

	ObjectSize  int     // base object canvas side (default min(W, H)/3)
	ScaleJitter float64 // relative size jitter in [0, 1): size *= 1 ± jitter
	Occlusion   float64 // target overlap fraction onto an earlier object, [0, 1]
	NoiseSigma  float64 // per-channel Gaussian pixel noise sigma (0 = off)
	Blur        float64 // Gaussian blur sigma applied last (0 = off)
	Clutter     int     // low-contrast background distractor primitives
}

// ComposeSceneP composes a cluttered room scene: background clutter
// primitives near the wall/floor palette, then the requested objects in
// painter's order with controlled overlap. Ground-truth boxes, labels and
// per-object occluded fractions are recorded before noise and blur are
// applied, so they describe the ideal segmentation. Equal params yield
// byte-identical scenes.
func ComposeSceneP(p SceneParams) Scene {
	w, h := p.W, p.H
	if w <= 0 {
		w = 320
	}
	if h <= 0 {
		h = 240
	}
	r := rng.New(p.Seed ^ 0x5ce2ec0796f05e6d)
	img := imaging.NewImageFilled(w, h, wallColor)
	img.FillRect(geom.Rect{MinX: 0, MinY: h * 3 / 4, MaxX: w, MaxY: h}, floorColor)

	// Background clutter: primitives a few luma steps off the wall/floor
	// palette. They perturb thresholding the way skirting boards and wall
	// marks do, without reading as objects to the ground truth.
	for k := 0; k < p.Clutter; k++ {
		base := wallColor
		if r.Bool(0.4) {
			base = floorColor
		}
		d := r.IntRange(-9, 9)
		col := imaging.C(clutterChan(base.R, d), clutterChan(base.G, d), clutterChan(base.B, d))
		cx := r.Float64() * float64(w)
		cy := r.Float64() * float64(h)
		switch r.Intn(3) {
		case 0:
			rw := int(r.Range(8, float64(w)/4))
			rh := int(r.Range(4, float64(h)/6))
			img.FillRect(geom.Rect{MinX: int(cx), MinY: int(cy), MaxX: int(cx) + rw, MaxY: int(cy) + rh}, col)
		case 1:
			img.FillEllipse(geom.Pt(cx, cy), r.Range(4, float64(w)/10), r.Range(4, float64(h)/10), col)
		default:
			ex := cx + r.Range(-float64(w)/4, float64(w)/4)
			ey := cy + r.Range(-float64(h)/4, float64(h)/4)
			img.Line(geom.Pt(cx, cy), geom.Pt(ex, ey), r.Range(1, 4), col)
		}
	}

	scene := Scene{Image: img}
	base := p.ObjectSize
	if base <= 0 {
		base = minInt(w, h) / 3
	}
	occ := clampF(p.Occlusion, 0, 1)
	// owner tracks which object's silhouette painted each pixel last, so
	// occlusion ground truth is pixel-accurate, not box-approximate.
	owner := make([]int32, w*h)
	for i := range owner {
		owner[i] = -1
	}
	drawn := make([]int, len(p.Classes)) // silhouette pixels per object
	for i, cls := range p.Classes {
		size := base
		if p.ScaleJitter > 0 {
			size = int(float64(base) * (1 + p.ScaleJitter*(2*r.Float64()-1)))
		}
		if size < 24 {
			size = 24
		}
		if size > minInt(w, h) {
			size = minInt(w, h)
		}
		model := r.Intn(4)
		view := r.Intn(4)
		obj := RenderOnBackground(cls, model, view, chromaKey, Params{Size: size, Seed: p.Seed})

		var dx, dy int
		if i > 0 && occ > 0 {
			// Slide this object's canvas toward an earlier object's centre
			// so it occludes roughly the requested fraction (painter's
			// order: later covers earlier). At occ = 1 the canvas centres
			// on the anchor for maximal cover; lateral jitter shrinks with
			// occ so the aim tightens as the overlap target grows.
			anchor := scene.Objects[r.Intn(i)].Box
			acx := (anchor.MinX + anchor.MaxX) / 2
			acy := (anchor.MinY + anchor.MaxY) / 2
			dir := 1
			if r.Bool(0.5) {
				dir = -1
			}
			jit := int(float64(size) / 8 * (1 - occ))
			if r.Bool(0.5) {
				off := int(float64(anchor.W()+size) / 2 * (1 - occ))
				dx = acx - size/2 + dir*off
				dy = acy - size/2
				if jit > 0 {
					dy += r.IntRange(-jit, jit)
				}
			} else {
				off := int(float64(anchor.H()+size) / 2 * (1 - occ))
				dy = acy - size/2 + dir*off
				dx = acx - size/2
				if jit > 0 {
					dx += r.IntRange(-jit, jit)
				}
			}
		} else {
			// Rejection-sample a placement clear of earlier objects; after
			// enough failures accept the last candidate (crowded canvas).
			for try := 0; try < 40; try++ {
				dx = r.Intn(maxInt(w-size, 1))
				dy = r.Intn(maxInt(h-size, 1))
				box := geom.Rect{MinX: dx, MinY: dy, MaxX: dx + size, MaxY: dy + size}
				clear := true
				for _, o := range scene.Objects {
					if !box.Intersect(o.Box).Empty() {
						clear = false
						break
					}
				}
				if clear {
					break
				}
			}
		}
		dx = clampI(dx, 0, maxInt(w-size, 0))
		dy = clampI(dy, 0, maxInt(h-size, 0))

		// Composite the silhouette by hand (chroma-keyed, clipped — the
		// DrawImage semantics) so the owner plane and the tight
		// ground-truth box come from the same pass.
		tight := geom.Rect{}
		for oy := 0; oy < obj.H; oy++ {
			sy := dy + oy
			if sy < 0 || sy >= h {
				continue
			}
			for ox := 0; ox < obj.W; ox++ {
				sx := dx + ox
				if sx < 0 || sx >= w {
					continue
				}
				q := (oy*obj.W + ox) * 3
				c := imaging.RGB{R: obj.Pix[q], G: obj.Pix[q+1], B: obj.Pix[q+2]}
				if c == chromaKey {
					continue
				}
				t := (sy*w + sx) * 3
				img.Pix[t], img.Pix[t+1], img.Pix[t+2] = c.R, c.G, c.B
				owner[sy*w+sx] = int32(i)
				drawn[i]++
				tight = tight.Union(geom.Rect{MinX: sx, MinY: sy, MaxX: sx + 1, MaxY: sy + 1})
			}
		}
		if tight.Empty() {
			tight = geom.Rect{MinX: dx, MinY: dy, MaxX: dx + size, MaxY: dy + size}.ClampTo(w, h)
		}
		scene.Objects = append(scene.Objects, SceneObject{Class: cls, Model: model, Box: tight})
	}

	// Ground-truth occlusion: the fraction of each object's silhouette
	// that later objects overpainted.
	visible := make([]int, len(scene.Objects))
	for _, o := range owner {
		if o >= 0 {
			visible[o]++
		}
	}
	for i := range scene.Objects {
		if drawn[i] > 0 {
			scene.Objects[i].Occluded = 1 - float64(visible[i])/float64(drawn[i])
		}
	}

	// Sensor degradation last, so ground truth describes the clean scene.
	if p.NoiseSigma > 0 {
		for i := range img.Pix {
			img.Pix[i] = clamp8i(float64(img.Pix[i]) + r.NormRange(0, p.NoiseSigma))
		}
	}
	if p.Blur > 0 {
		copy(img.Pix, img.GaussianBlur(p.Blur).Pix)
	}
	return scene
}

func clutterChan(v uint8, d int) uint8 {
	n := int(v) + d
	if n < 0 {
		n = 0
	}
	if n > 255 {
		n = 255
	}
	return uint8(n)
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// CropObject extracts an object's region from the scene as an NYU-style
// segmented crop: pixels outside the object silhouette (equal to the
// room background) are masked to black.
func (s *Scene) CropObject(i int) *imaging.Image {
	obj := s.Objects[i]
	crop := s.Image.Crop(obj.Box)
	if crop == nil {
		return nil
	}
	// Mask the two known background colours to black.
	for p := 0; p < crop.W*crop.H; p++ {
		c := imaging.RGB{R: crop.Pix[3*p], G: crop.Pix[3*p+1], B: crop.Pix[3*p+2]}
		if nearColor(c, wallColor, 10) || nearColor(c, floorColor, 10) {
			crop.Pix[3*p], crop.Pix[3*p+1], crop.Pix[3*p+2] = 0, 0, 0
		}
	}
	return crop
}

func nearColor(a, b imaging.RGB, tol int) bool {
	d := func(x, y uint8) int {
		v := int(x) - int(y)
		if v < 0 {
			v = -v
		}
		return v
	}
	return d(a.R, b.R) <= tol && d(a.G, b.G) <= tol && d(a.B, b.B) <= tol
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
