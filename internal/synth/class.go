// Package synth procedurally renders 2-D views of the paper's ten object
// classes. It substitutes for the two datasets the paper uses:
// "ShapeNet mode" produces clean views on white backgrounds (standing in
// for ShapeNet 2D model views) and "NYU mode" produces noisy, occluded,
// illumination-shifted crops on black mask backgrounds (standing in for
// the segmented NYUDepth V2 regions). Class-conditional shape and colour
// statistics are designed so the relative behaviour of shape-, colour-
// and descriptor-based matching mirrors the paper's findings.
package synth

import "fmt"

// Class enumerates the ten target object classes of Table 1.
type Class int

// The classes in the paper's Table 1 order.
const (
	Chair Class = iota
	Bottle
	Paper
	Book
	Table
	Box
	Window
	Door
	Sofa
	Lamp
)

// NumClasses is the number of target classes.
const NumClasses = 10

// AllClasses lists every class in Table 1 order.
var AllClasses = []Class{Chair, Bottle, Paper, Book, Table, Box, Window, Door, Sofa, Lamp}

var classNames = [NumClasses]string{
	"Chair", "Bottle", "Paper", "Book", "Table", "Box", "Window", "Door", "Sofa", "Lamp",
}

// String returns the class name as printed in the paper's tables.
func (c Class) String() string {
	if c < 0 || int(c) >= NumClasses {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// ParseClass resolves a class name (case-sensitive, as in Table 1).
func ParseClass(s string) (Class, error) {
	for i, n := range classNames {
		if n == s {
			return Class(i), nil
		}
	}
	return 0, fmt.Errorf("synth: unknown class %q", s)
}

// Mode selects the rendering regime.
type Mode int

const (
	// ShapeNetMode renders clean catalogue-style views on white.
	ShapeNetMode Mode = iota
	// NYUMode renders sensor-degraded segmented crops on black.
	NYUMode
)

// String names the mode.
func (m Mode) String() string {
	if m == ShapeNetMode {
		return "shapenet"
	}
	return "nyu"
}
