package synth

import (
	"fmt"

	"snmatch/internal/imaging"
)

// LargeView is one rendered view of the scaled synthetic taxonomy: the
// image plus the ground truth the ANN benchmarks score against.
type LargeView struct {
	Image *imaging.Image
	Class Class // synthetic class id, 0..classes-1 (may exceed NumClasses)
	Model int
	View  int
}

// largeModelBase offsets LargeGallery model ids past every id the
// Table 1 datasets use (SNS1/SNS2 use 0-6, NYU 1000+, NYU subsets
// 5000+), so large-gallery views never collide with dataset views.
const largeModelBase = 100000

// largeQueryViewOffset pushes LargeQueries view indices past any
// plausible gallery viewsPerClass, so query poses never coincide with
// enrolled ones.
const largeQueryViewOffset = 1 << 20

// largeViews is the shared renderer of the scaled taxonomy: synthetic
// class c draws its geometry family from base class c % NumClasses but
// a class-specific model id, so every synthetic class renders distinct
// shapes without new drawing code.
func largeViews(classes, perClass, viewBase, size int, seed uint64) []LargeView {
	if classes < 1 || perClass < 1 {
		return nil
	}
	p := Params{Size: size, Seed: seed}
	out := make([]LargeView, 0, classes*perClass)
	for c := 0; c < classes; c++ {
		base := AllClasses[c%NumClasses]
		model := largeModelBase + c
		for v := 0; v < perClass; v++ {
			out = append(out, LargeView{
				Image: RenderView(base, model, viewBase+v, ShapeNetMode, p),
				Class: Class(c),
				Model: model,
				View:  viewBase + v,
			})
		}
	}
	return out
}

// LargeGallery renders a scaled synthetic reference gallery:
// classes x viewsPerClass views, one distinct model per synthetic
// class, clean ShapeNet-mode rendering at the default 64px size. It
// scales the ten-class Table 1 taxonomy toward the 55-synset
// ShapeNetCore layout the ANN benchmarks need (e.g. 55 classes x 30
// views) — see LargeGalleryAt for the render-size knob.
//
// Views are enumerated deterministically from seed; equal arguments
// produce identical galleries.
func LargeGallery(classes, viewsPerClass int, seed uint64) []LargeView {
	return largeViews(classes, viewsPerClass, 0, 64, seed)
}

// LargeGalleryAt is LargeGallery with an explicit render size. Larger
// renders yield denser keypoints per view — the recall benchmarks use
// 128px so match scores carry enough evidence to rank views sharply.
func LargeGalleryAt(classes, viewsPerClass, size int, seed uint64) []LargeView {
	return largeViews(classes, viewsPerClass, 0, size, seed)
}

// LargeQueries renders perClass held-out query views per synthetic
// class: same models as LargeGallery(classes, ...) but view indices the
// gallery never contains, so recall measurements match unseen poses
// against enrolled models.
func LargeQueries(classes, perClass int, seed uint64) []LargeView {
	return largeViews(classes, perClass, largeQueryViewOffset, 64, seed)
}

// LargeQueriesAt is LargeQueries with an explicit render size; pair it
// with LargeGalleryAt at the same size.
func LargeQueriesAt(classes, perClass, size int, seed uint64) []LargeView {
	return largeViews(classes, perClass, largeQueryViewOffset, size, seed)
}

// SynsetID formats a synthetic class id in the 8-digit WordNet-synset
// style ShapeNetCore names its 55 class directories with (e.g.
// "02691156"), so large-gallery tooling can mirror the real layout.
func SynsetID(c Class) string { return fmt.Sprintf("%08d", 2000000+int(c)) }
