package synth

import (
	"snmatch/internal/geom"
	"snmatch/internal/imaging"
	"snmatch/internal/rng"
)

// style holds the per-model appearance: a palette plus dimension jitters
// interpreted by each class's drawing routine. aspectX/aspectY stretch
// the whole silhouette per model: real object categories vary wildly in
// proportions, which is what keeps Hu-moment matching weak in the
// paper's evaluation, so the simulation reproduces that variation.
type style struct {
	primary   imaging.RGB
	secondary imaging.RGB
	accent    imaging.RGB
	dims      [6]float64 // uniform [0,1] shape variations
	aspectX   float64
	aspectY   float64
}

// jitter perturbs a base colour per-channel by up to +-d.
func jitter(c imaging.RGB, d int, r *rng.RNG) imaging.RGB {
	j := func(v uint8) uint8 {
		n := int(v) + r.IntRange(-d, d)
		if n < 0 {
			n = 0
		}
		if n > 255 {
			n = 255
		}
		return uint8(n)
	}
	return imaging.RGB{R: j(c.R), G: j(c.G), B: j(c.B)}
}

// pick selects one of the base colours uniformly and jitters it.
func pick(r *rng.RNG, d int, options ...imaging.RGB) imaging.RGB {
	return jitter(options[r.Intn(len(options))], d, r)
}

// darker returns the colour scaled towards black.
func darker(c imaging.RGB, k float64) imaging.RGB { return c.Scale(k) }

// sampleStyle draws a deterministic style for (class, model).
func sampleStyle(cls Class, r *rng.RNG) style {
	var st style
	for i := range st.dims {
		st.dims[i] = r.Float64()
	}
	st.aspectX = r.Range(0.74, 1.34)
	st.aspectY = r.Range(0.82, 1.22)
	switch cls {
	case Chair:
		st.primary = pick(r, 18,
			imaging.C(139, 90, 43), imaging.C(60, 60, 65),
			imaging.C(35, 30, 30), imaging.C(120, 40, 40))
		st.secondary = jitter(darker(st.primary, 0.8), 10, r)
		st.accent = pick(r, 15, imaging.C(160, 120, 80), imaging.C(90, 90, 95))
	case Bottle:
		st.primary = pick(r, 18,
			imaging.C(30, 120, 60), imaging.C(40, 90, 160),
			imaging.C(150, 100, 30), imaging.C(120, 125, 130))
		st.secondary = jitter(darker(st.primary, 0.75), 10, r)
		st.accent = pick(r, 15, imaging.C(200, 200, 205), imaging.C(40, 40, 40), imaging.C(180, 30, 30))
	case Paper:
		st.primary = pick(r, 8, imaging.C(243, 243, 240), imaging.C(235, 236, 230))
		st.secondary = jitter(imaging.C(210, 212, 214), 6, r)
		st.accent = st.secondary
	case Book:
		st.primary = pick(r, 20,
			imaging.C(170, 40, 40), imaging.C(40, 60, 150),
			imaging.C(40, 120, 60), imaging.C(200, 120, 30), imaging.C(90, 40, 120))
		st.secondary = jitter(darker(st.primary, 0.6), 10, r)
		st.accent = pick(r, 10, imaging.C(230, 225, 210), imaging.C(220, 200, 90))
	case Table:
		st.primary = pick(r, 18,
			imaging.C(120, 80, 45), imaging.C(180, 140, 90), imaging.C(100, 100, 105))
		st.secondary = jitter(darker(st.primary, 0.8), 10, r)
		st.accent = st.secondary
	case Box:
		st.primary = pick(r, 14, imaging.C(170, 130, 80), imaging.C(190, 155, 100))
		st.secondary = jitter(darker(st.primary, 0.85), 8, r)
		st.accent = jitter(darker(st.primary, 0.7), 8, r)
	case Window:
		st.primary = pick(r, 10,
			imaging.C(240, 240, 238), imaging.C(175, 175, 178), imaging.C(130, 95, 60))
		st.secondary = jitter(imaging.C(190, 215, 235), 12, r) // glass
		st.accent = jitter(darker(st.primary, 0.85), 8, r)
	case Door:
		st.primary = pick(r, 16,
			imaging.C(110, 70, 40), imaging.C(235, 233, 228), imaging.C(140, 140, 145))
		st.secondary = jitter(darker(st.primary, 0.82), 8, r)
		st.accent = pick(r, 10, imaging.C(200, 180, 90), imaging.C(70, 70, 75))
	case Sofa:
		st.primary = pick(r, 18,
			imaging.C(120, 40, 45), imaging.C(40, 50, 90),
			imaging.C(110, 110, 115), imaging.C(60, 90, 60))
		st.secondary = jitter(darker(st.primary, 0.85), 10, r)
		st.accent = jitter(darker(st.primary, 0.65), 10, r)
	case Lamp:
		st.primary = pick(r, 14, imaging.C(235, 210, 150), imaging.C(220, 190, 120), imaging.C(215, 160, 120))
		st.secondary = jitter(imaging.C(50, 50, 55), 10, r) // pole
		st.accent = jitter(imaging.C(120, 110, 100), 10, r) // base
	}
	return st
}

// drawClass dispatches to the class-specific renderer.
func drawClass(c *ctx, cls Class, st style) {
	switch cls {
	case Chair:
		drawChair(c, st)
	case Bottle:
		drawBottle(c, st)
	case Paper:
		drawPaper(c, st)
	case Book:
		drawBook(c, st)
	case Table:
		drawTable(c, st)
	case Box:
		drawBox(c, st)
	case Window:
		drawWindow(c, st)
	case Door:
		drawDoor(c, st)
	case Sofa:
		drawSofa(c, st)
	case Lamp:
		drawLamp(c, st)
	}
}

// drawChair renders a leggy silhouette: four legs, a seat slab and a
// backrest (solid or slatted), the most shape-distinctive class.
func drawChair(c *ctx, st style) {
	legW := 0.08 + 0.05*st.dims[0]
	seatY := -0.02 + 0.1*st.dims[1]
	// Rear legs (slightly inset, drawn first so the seat overlaps).
	c.rect(st.secondary, -0.38, seatY, -0.38+legW, 0.82)
	c.rect(st.secondary, 0.38-legW, seatY, 0.38, 0.82)
	// Front legs.
	c.rect(st.primary, -0.6, seatY, -0.6+legW, 0.95)
	c.rect(st.primary, 0.6-legW, seatY, 0.6, 0.95)
	// Seat.
	c.rect(st.primary, -0.68, seatY-0.14, 0.68, seatY+0.06)
	// Back posts.
	c.rect(st.primary, -0.6, -0.92, -0.6+legW, seatY)
	c.rect(st.primary, 0.6-legW, -0.92, 0.6, seatY)
	if st.dims[2] < 0.5 {
		// Solid backrest.
		c.rect(st.primary, -0.6, -0.88, 0.6, -0.35)
	} else {
		// Slatted backrest.
		c.rect(st.primary, -0.6, -0.88, 0.6, -0.72)
		c.rect(st.primary, -0.6, -0.6, 0.6, -0.48)
	}
}

// drawBottle renders the elongated neck-and-body silhouette.
func drawBottle(c *ctx, st style) {
	bw := 0.24 + 0.12*st.dims[0] // body half width
	nw := bw * (0.3 + 0.12*st.dims[1])
	shoulderY := -0.25 + 0.15*st.dims[2]
	// Body with a rounded bottom.
	c.rect(st.primary, -bw, shoulderY, bw, 0.85)
	c.ellipse(st.primary, 0, 0.85, bw, 0.1)
	// Shoulder taper.
	c.poly(st.primary,
		geom.Pt(-bw, shoulderY), geom.Pt(bw, shoulderY),
		geom.Pt(nw, shoulderY-0.3), geom.Pt(-nw, shoulderY-0.3))
	// Neck.
	c.rect(st.primary, -nw, shoulderY-0.62, nw, shoulderY-0.28)
	// Cap.
	c.rect(st.accent, -nw*1.3, shoulderY-0.75, nw*1.3, shoulderY-0.6)
	// Label band on some models.
	if st.dims[3] > 0.4 {
		c.rect(st.accent, -bw, 0.25, bw, 0.55)
	}
}

// drawPaper renders a plain near-white sheet: almost textureless, so
// descriptor pipelines find nearly nothing (paper's Tables 8-9 rows).
func drawPaper(c *ctx, st style) {
	w := 0.62 + 0.1*st.dims[0]
	h := 0.85 + 0.08*st.dims[1]
	c.rect(st.primary, -w, -h, w, h)
	// Faint ruled lines, barely above the background contrast.
	if st.dims[2] > 0.3 {
		for i := 0; i < 5; i++ {
			y := -0.6 + 0.3*float64(i)
			c.rect(st.secondary, -w*0.85, y, w*0.85, y+0.02)
		}
	}
}

// drawBook renders a cover with a darker spine and a title band.
func drawBook(c *ctx, st style) {
	w := 0.52 + 0.12*st.dims[0]
	h := 0.78 + 0.12*st.dims[1]
	c.rect(st.primary, -w, -h, w, h)
	// Spine.
	c.rect(st.secondary, -w, -h, -w+0.16, h)
	// Title band.
	c.rect(st.accent, -w*0.4, -h*0.55, w*0.8, -h*0.3)
	if st.dims[2] > 0.55 {
		c.rect(st.accent, -w*0.4, h*0.1, w*0.6, h*0.25)
	}
}

// drawTable renders a wide top slab on tall legs.
func drawTable(c *ctx, st style) {
	topY := -0.45 + 0.12*st.dims[0]
	legW := 0.1 + 0.05*st.dims[1]
	c.rect(st.primary, -0.98, topY-0.12, 0.98, topY+0.08)
	c.rect(st.secondary, -0.88, topY+0.08, -0.88+legW, 0.95)
	c.rect(st.secondary, 0.88-legW, topY+0.08, 0.88, 0.95)
	// Rear legs hinted.
	c.rect(darker(st.secondary, 0.85), -0.6, topY+0.08, -0.6+legW*0.8, 0.8)
	c.rect(darker(st.secondary, 0.85), 0.6-legW*0.8, topY+0.08, 0.6, 0.8)
	if st.dims[2] > 0.6 {
		// Stretcher bar.
		c.rect(st.secondary, -0.88, 0.5, 0.88, 0.58)
	}
}

// drawBox renders a cardboard carton with flaps and a centre seam.
func drawBox(c *ctx, st style) {
	w := 0.6 + 0.15*st.dims[0]
	h := 0.55 + 0.2*st.dims[1]
	c.rect(st.primary, -w, -h, w, h)
	// Top flaps.
	c.rect(st.secondary, -w, -h-0.14, -0.02, -h)
	c.rect(st.accent, 0.02, -h-0.14, w, -h)
	// Centre seam and tape.
	c.rect(st.accent, -0.03, -h, 0.03, h)
	if st.dims[2] > 0.5 {
		c.rect(st.secondary, -w, -0.05, w, 0.08)
	}
}

// drawWindow renders a pale frame around glass panes with mullions; its
// palette overlaps paper's, driving the confusions seen in the paper.
func drawWindow(c *ctx, st style) {
	c.rect(st.primary, -0.8, -0.9, 0.8, 0.9)
	c.rect(st.secondary, -0.66, -0.76, 0.66, 0.76)
	// Mullions.
	c.rect(st.primary, -0.05, -0.76, 0.05, 0.76)
	if st.dims[0] > 0.35 {
		c.rect(st.primary, -0.66, -0.05, 0.66, 0.05)
	}
	// Sill.
	if st.dims[1] > 0.5 {
		c.rect(st.accent, -0.88, 0.82, 0.88, 0.92)
	}
}

// drawDoor renders the tall panel-and-knob silhouette.
func drawDoor(c *ctx, st style) {
	w := 0.42 + 0.1*st.dims[0]
	c.rect(st.primary, -w, -0.96, w, 0.96)
	// Inset panels.
	c.rect(st.secondary, -w*0.7, -0.78, w*0.7, -0.12)
	c.rect(st.secondary, -w*0.7, 0.06, w*0.7, 0.8)
	// Knob.
	c.ellipse(st.accent, w*0.75, 0.02, 0.05, 0.05)
}

// drawSofa renders the bulky armrest-and-cushion silhouette.
func drawSofa(c *ctx, st style) {
	seatY := 0.05 + 0.1*st.dims[0]
	// Backrest.
	c.rect(st.primary, -0.8, -0.6, 0.8, seatY)
	// Seat base.
	c.rect(st.primary, -0.8, seatY, 0.8, 0.72)
	// Armrests.
	c.rect(st.secondary, -0.98, -0.3, -0.72, 0.72)
	c.rect(st.secondary, 0.72, -0.3, 0.98, 0.72)
	c.ellipse(st.secondary, -0.85, -0.3, 0.13, 0.1)
	c.ellipse(st.secondary, 0.85, -0.3, 0.13, 0.1)
	// Cushion seams.
	c.rect(st.accent, -0.04, -0.55, 0.04, seatY)
	if st.dims[1] > 0.5 {
		c.rect(st.accent, -0.72, seatY-0.04, 0.72, seatY+0.04)
	}
	// Short legs.
	c.rect(st.accent, -0.7, 0.72, -0.58, 0.9)
	c.rect(st.accent, 0.58, 0.72, 0.7, 0.9)
}

// drawLamp renders a shade on a thin pole over a base.
func drawLamp(c *ctx, st style) {
	shadeW := 0.42 + 0.14*st.dims[0]
	topW := shadeW * (0.5 + 0.2*st.dims[1])
	// Base.
	c.ellipse(st.accent, 0, 0.88, 0.4, 0.09)
	// Pole.
	c.rect(st.secondary, -0.035, -0.2, 0.035, 0.88)
	// Shade (trapezoid).
	c.poly(st.primary,
		geom.Pt(-topW, -0.85), geom.Pt(topW, -0.85),
		geom.Pt(shadeW, -0.18), geom.Pt(-shadeW, -0.18))
	// Glow line under the shade on some models.
	if st.dims[2] > 0.6 {
		c.rect(imaging.C(250, 240, 200), -shadeW*0.8, -0.18, shadeW*0.8, -0.12)
	}
}
