package synth

import (
	"math"

	"snmatch/internal/geom"
	"snmatch/internal/imaging"
	"snmatch/internal/rng"
)

// DefaultSize is the default square canvas side in pixels.
const DefaultSize = 96

// Params controls a single rendered view.
type Params struct {
	Size int    // canvas side (default 96)
	Seed uint64 // dataset-level seed; combined with class/model/view
}

// ctx carries the canvas and the object-to-canvas transform for the
// class drawing routines, which work in object space ([-1, 1] square,
// y growing downwards).
type ctx struct {
	img *imaging.Image
	tf  geom.Affine
}

// apply maps an object-space point to canvas coordinates.
func (c *ctx) apply(x, y float64) geom.Point { return c.tf.Apply(geom.Pt(x, y)) }

// poly fills a polygon given in object space.
func (c *ctx) poly(col imaging.RGB, pts ...geom.Point) {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = c.tf.Apply(p)
	}
	c.img.FillPolygon(out, col)
}

// rect fills an axis-aligned object-space rectangle (which may be a
// rotated parallelogram on canvas).
func (c *ctx) rect(col imaging.RGB, x0, y0, x1, y1 float64) {
	c.poly(col, geom.Pt(x0, y0), geom.Pt(x1, y0), geom.Pt(x1, y1), geom.Pt(x0, y1))
}

// ellipse fills an object-space ellipse, approximated by a 24-gon so the
// transform applies exactly.
func (c *ctx) ellipse(col imaging.RGB, cx, cy, rx, ry float64) {
	const n = 24
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		t := 2 * math.Pi * float64(i) / n
		pts[i] = geom.Pt(cx+rx*math.Cos(t), cy+ry*math.Sin(t))
	}
	c.poly(col, pts...)
}

// line draws a thick object-space segment.
func (c *ctx) line(col imaging.RGB, x0, y0, x1, y1, width float64) {
	a := c.apply(x0, y0)
	b := c.apply(x1, y1)
	// Transform width by the mean axis scale.
	sx := math.Hypot(c.tf.A, c.tf.D)
	sy := math.Hypot(c.tf.B, c.tf.E)
	c.img.Line(a, b, width*(sx+sy)/2, col)
}

// pose is the view-dependent part of the transform.
type pose struct {
	yaw   float64 // horizontal foreshortening angle
	roll  float64 // in-plane rotation
	scale float64 // relative object size on canvas
	dx    float64 // translation as a fraction of the canvas
	dy    float64
}

// transform builds the object-to-canvas affine for a pose.
func (p pose) transform(size int) geom.Affine {
	c := float64(size) / 2
	s := c / 1.25 * p.scale
	squash := 0.55 + 0.45*math.Cos(p.yaw)
	shear := 0.18 * math.Sin(p.yaw)
	// canvas = translate(center+offset) * rotate(roll) * scale * yaw-squash
	m := geom.Translation(c+p.dx*float64(size), c+p.dy*float64(size))
	m = m.Mul(geom.Rotation(p.roll))
	m = m.Mul(geom.Scaling(s*squash, s))
	m = m.Mul(geom.Affine{A: 1, B: shear, E: 1})
	return m
}

// viewPose returns the deterministic pose for a ShapeNet-style view
// index: views sweep yaw across the model.
func viewPose(view int, r *rng.RNG) pose {
	yaws := []float64{-0.7, -0.25, 0.25, 0.7, -0.5, 0.5, 0.0, -0.9, 0.9, 0.12}
	yaw := yaws[view%len(yaws)]
	return pose{
		yaw:   yaw + r.NormRange(0, 0.05),
		roll:  r.NormRange(0, 0.02),
		scale: 0.92 + 0.05*r.Float64(),
	}
}

// nyuPose returns a randomised pose for NYU-style instances.
func nyuPose(r *rng.RNG) pose {
	return pose{
		yaw:   r.Range(-1.1, 1.1),
		roll:  r.NormRange(0, 0.14),
		scale: r.Range(0.55, 0.95),
		dx:    r.Range(-0.08, 0.08),
		dy:    r.Range(-0.08, 0.08),
	}
}

// RenderView renders one 2-D view. Identity is (class, model, view):
// equal arguments always produce the identical image. Model selects the
// style variant (dimensions and palette), view the camera pose; in NYU
// mode the view index seeds the full degradation chain.
func RenderView(cls Class, model, view int, mode Mode, p Params) *imaging.Image {
	if p.Size <= 0 {
		p.Size = DefaultSize
	}
	root := rng.New(p.Seed ^ 0x5eedb07713371234)
	styleRng := root.Split(classNames[cls] + "/style/" + itoa(model))
	viewRng := root.Split(classNames[cls] + "/view/" + itoa(model) + "/" + itoa(view) + "/" + mode.String())

	st := sampleStyle(cls, styleRng)

	bg := imaging.White
	if mode == NYUMode {
		bg = imaging.Black
	}
	img := imaging.NewImageFilled(p.Size, p.Size, bg)

	var ps pose
	if mode == NYUMode {
		ps = nyuPose(viewRng)
	} else {
		ps = viewPose(view, viewRng)
	}
	tf := ps.transform(p.Size).Mul(geom.Scaling(st.aspectX, st.aspectY))
	c := &ctx{img: img, tf: tf}
	drawClass(c, cls, st)

	if mode == NYUMode {
		degrade(img, viewRng)
	}
	return img
}

// RenderOnBackground renders a clean view onto an arbitrary background
// colour (used by the scene compositor, which chroma-keys the result).
func RenderOnBackground(cls Class, model, view int, bg imaging.RGB, p Params) *imaging.Image {
	if p.Size <= 0 {
		p.Size = DefaultSize
	}
	root := rng.New(p.Seed ^ 0x5eedb07713371234)
	styleRng := root.Split(classNames[cls] + "/style/" + itoa(model))
	viewRng := root.Split(classNames[cls] + "/view/" + itoa(model) + "/" + itoa(view) + "/scene")
	st := sampleStyle(cls, styleRng)
	img := imaging.NewImageFilled(p.Size, p.Size, bg)
	tf := viewPose(view, viewRng).transform(p.Size).Mul(geom.Scaling(st.aspectX, st.aspectY))
	c := &ctx{img: img, tf: tf}
	drawClass(c, cls, st)
	return img
}

// degrade applies the NYU-style sensor chain in place: illumination gain
// and colour cast on object pixels, Gaussian pixel noise, salt-and-pepper
// speckle, optional partial occlusion, and a light blur — while keeping
// the background mask black as in the paper's extracted regions.
func degrade(img *imaging.Image, r *rng.RNG) {
	w, h := img.W, img.H
	// Object mask: pixels that are not background black.
	mask := make([]bool, w*h)
	for i := 0; i < w*h; i++ {
		mask[i] = img.Pix[3*i] != 0 || img.Pix[3*i+1] != 0 || img.Pix[3*i+2] != 0
	}

	gain := clampF(r.NormRange(0.93, 0.11), 0.6, 1.25)
	cast := [3]float64{
		gain * clampF(r.NormRange(1, 0.05), 0.88, 1.12),
		gain * clampF(r.NormRange(1, 0.05), 0.88, 1.12),
		gain * clampF(r.NormRange(1, 0.05), 0.88, 1.12),
	}
	sigma := r.Range(4, 11)
	for i := 0; i < w*h; i++ {
		if !mask[i] {
			continue
		}
		for ch := 0; ch < 3; ch++ {
			v := float64(img.Pix[3*i+ch])*cast[ch] + r.NormRange(0, sigma)
			img.Pix[3*i+ch] = clamp8i(v)
		}
	}
	// Salt and pepper on the object.
	n := w * h / 200
	for k := 0; k < n; k++ {
		i := r.Intn(w * h)
		if !mask[i] {
			continue
		}
		v := uint8(0)
		if r.Bool(0.5) {
			v = 255
		}
		img.Pix[3*i], img.Pix[3*i+1], img.Pix[3*i+2] = v, v, v
	}
	// Silhouette raggedness: real NYU segmentation masks have jagged,
	// bitten boundaries. Black disc bites at boundary pixels perturb the
	// traced contour (and therefore Hu moments) substantially while
	// removing only a small fraction of the colour mass.
	bites := r.IntRange(3, 7)
	for k := 0; k < bites; k++ {
		for tries := 0; tries < 40; tries++ {
			i := r.Intn(w * h)
			if !mask[i] {
				continue
			}
			x, y := i%w, i/w
			// Require a background neighbour so the bite hits the outline.
			onBoundary := false
			for dy := -1; dy <= 1 && !onBoundary; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := x+dx, y+dy
					if nx < 0 || nx >= w || ny < 0 || ny >= h || !mask[ny*w+nx] {
						onBoundary = true
						break
					}
				}
			}
			if !onBoundary {
				continue
			}
			rad := r.Range(1.5, float64(minInt(w, h))/12)
			img.FillCircle(geom.Pt(float64(x), float64(y)), rad, imaging.Black)
			break
		}
	}
	// Partial occlusion: a black band eats into one edge of the object,
	// simulating imperfect segmentation masks and overlapping furniture.
	// Frequent in real NYU regions, and a major reason contour-based
	// shape matching fails there.
	if r.Bool(0.55) {
		frac := r.Range(0.12, 0.3)
		switch r.Intn(4) {
		case 0:
			img.FillRect(geom.Rect{MinX: 0, MinY: 0, MaxX: int(float64(w) * frac), MaxY: h}, imaging.Black)
		case 1:
			img.FillRect(geom.Rect{MinX: w - int(float64(w)*frac), MinY: 0, MaxX: w, MaxY: h}, imaging.Black)
		case 2:
			img.FillRect(geom.Rect{MinX: 0, MinY: 0, MaxX: w, MaxY: int(float64(h) * frac)}, imaging.Black)
		default:
			img.FillRect(geom.Rect{MinX: 0, MinY: h - int(float64(h)*frac), MaxX: w, MaxY: h}, imaging.Black)
		}
	}
	// Light sensor blur.
	if r.Bool(0.5) {
		blurred := img.GaussianBlur(r.Range(0.4, 0.8))
		copy(img.Pix, blurred.Pix)
	}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clamp8i(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
