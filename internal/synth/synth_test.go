package synth

import (
	"testing"

	"snmatch/internal/contour"
	"snmatch/internal/histogram"
	"snmatch/internal/imaging"
)

func TestClassNamesRoundTrip(t *testing.T) {
	for _, c := range AllClasses {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseClass("Spaceship"); err == nil {
		t.Error("unknown class accepted")
	}
	if Class(99).String() == "" {
		t.Error("out-of-range String empty")
	}
	if len(AllClasses) != NumClasses {
		t.Error("AllClasses length mismatch")
	}
}

func TestRenderDeterministic(t *testing.T) {
	p := Params{Size: 64, Seed: 42}
	for _, mode := range []Mode{ShapeNetMode, NYUMode} {
		a := RenderView(Chair, 0, 0, mode, p)
		b := RenderView(Chair, 0, 0, mode, p)
		for i := range a.Pix {
			if a.Pix[i] != b.Pix[i] {
				t.Fatalf("%v render not deterministic", mode)
			}
		}
	}
}

func TestRenderVariesAcrossIdentity(t *testing.T) {
	p := Params{Size: 64, Seed: 42}
	base := RenderView(Chair, 0, 0, ShapeNetMode, p)
	cases := map[string]*imaging.Image{
		"model": RenderView(Chair, 1, 0, ShapeNetMode, p),
		"view":  RenderView(Chair, 0, 1, ShapeNetMode, p),
		"class": RenderView(Sofa, 0, 0, ShapeNetMode, p),
		"seed":  RenderView(Chair, 0, 0, ShapeNetMode, Params{Size: 64, Seed: 43}),
	}
	for name, img := range cases {
		same := 0
		for i := range base.Pix {
			if base.Pix[i] == img.Pix[i] {
				same++
			}
		}
		if same == len(base.Pix) {
			t.Errorf("changing %s produced an identical image", name)
		}
	}
}

func TestShapeNetModeBackgrounds(t *testing.T) {
	p := Params{Size: 64, Seed: 1}
	for _, cls := range AllClasses {
		img := RenderView(cls, 0, 0, ShapeNetMode, p)
		// Corners should be white background.
		if img.At(0, 0) != imaging.White {
			t.Errorf("%v: corner not white: %v", cls, img.At(0, 0))
		}
		// The object must cover a reasonable area.
		res := contour.Preprocess(img)
		if res.Largest == nil {
			t.Fatalf("%v: no object found", cls)
		}
		if area := res.Largest.Area(); area < 200 {
			t.Errorf("%v: object area = %v, too small", cls, area)
		}
	}
}

func TestNYUModeBackgrounds(t *testing.T) {
	p := Params{Size: 64, Seed: 2}
	for _, cls := range AllClasses {
		img := RenderView(cls, 3, 1, NYUMode, p)
		if img.At(0, 0) != imaging.Black && img.At(63, 63) != imaging.Black {
			t.Errorf("%v: corners not black: %v %v", cls, img.At(0, 0), img.At(63, 63))
		}
		// Some object pixels must survive degradation.
		nonBlack := 0
		for i := 0; i < len(img.Pix); i += 3 {
			if img.Pix[i] != 0 || img.Pix[i+1] != 0 || img.Pix[i+2] != 0 {
				nonBlack++
			}
		}
		if nonBlack < 100 {
			t.Errorf("%v: only %d object pixels after degradation", cls, nonBlack)
		}
	}
}

func TestNYUNoisierThanShapeNet(t *testing.T) {
	p := Params{Size: 64, Seed: 3}
	// Same model rendered in both modes should differ meaningfully more
	// than two clean views of the same model.
	clean := RenderView(Bottle, 0, 0, ShapeNetMode, p)
	noisy := RenderView(Bottle, 0, 0, NYUMode, p)
	hClean := histogram.Compute(clean, 8).Normalize()
	hNoisy := histogram.Compute(noisy, 8).Normalize()
	d := histogram.Compare(hClean, hNoisy, histogram.Hellinger)
	if d < 0.1 {
		t.Errorf("NYU degradation too mild: Hellinger = %v", d)
	}
}

func TestClassShapesDiffer(t *testing.T) {
	// Silhouette areas of a bottle and a sofa should differ: sanity that
	// classes are not drawing the same geometry.
	p := Params{Size: 96, Seed: 4}
	areas := map[Class]float64{}
	for _, cls := range []Class{Bottle, Sofa, Lamp, Table} {
		res := contour.Preprocess(RenderView(cls, 0, 2, ShapeNetMode, p))
		if res.Largest == nil {
			t.Fatalf("%v: no contour", cls)
		}
		areas[cls] = res.Largest.Area()
	}
	if areas[Sofa] <= areas[Bottle] {
		t.Errorf("sofa area %v should exceed bottle area %v", areas[Sofa], areas[Bottle])
	}
}

func TestPaperIsNearWhite(t *testing.T) {
	// The paper class must be high-luma and low-texture: the property
	// driving its recognition failures in the original evaluation.
	img := RenderView(Paper, 0, 0, ShapeNetMode, Params{Size: 64, Seed: 5})
	res := contour.Preprocess(img)
	g := res.Cropped.ToGray()
	if contour.MeanIntensity(g) < 200 {
		t.Errorf("paper luma = %v, want near-white", contour.MeanIntensity(g))
	}
}

func TestComposeScene(t *testing.T) {
	classes := []Class{Chair, Bottle, Lamp, Door}
	sc := ComposeScene(classes, 320, 240, 7)
	if len(sc.Objects) != 4 {
		t.Fatalf("objects = %d", len(sc.Objects))
	}
	for i, obj := range sc.Objects {
		if obj.Box.Empty() {
			t.Errorf("object %d empty box", i)
		}
		if obj.Box.MaxX > 320 || obj.Box.MaxY > 240 {
			t.Errorf("object %d out of scene: %+v", i, obj.Box)
		}
		crop := sc.CropObject(i)
		if crop == nil {
			t.Fatalf("object %d crop nil", i)
		}
		// Crop should contain both black background and object pixels.
		var black, other int
		for p := 0; p < crop.W*crop.H; p++ {
			if crop.Pix[3*p] == 0 && crop.Pix[3*p+1] == 0 && crop.Pix[3*p+2] == 0 {
				black++
			} else {
				other++
			}
		}
		if other < 50 {
			t.Errorf("object %d: crop nearly empty (%d object px)", i, other)
		}
	}
	// Deterministic.
	sc2 := ComposeScene(classes, 320, 240, 7)
	for i := range sc.Image.Pix {
		if sc.Image.Pix[i] != sc2.Image.Pix[i] {
			t.Fatal("scene not deterministic")
		}
	}
}

func TestComposeScenePDeterministic(t *testing.T) {
	// Same params (including every degradation knob) must produce a
	// byte-identical scene and identical ground truth, for several seeds.
	for seed := uint64(1); seed <= 5; seed++ {
		p := SceneParams{
			W: 200, H: 160, Seed: seed,
			Classes:     []Class{Chair, Bottle, Lamp},
			ScaleJitter: 0.25, Occlusion: 0.3, NoiseSigma: 5, Blur: 0.6, Clutter: 4,
		}
		a := ComposeSceneP(p)
		b := ComposeSceneP(p)
		if len(a.Objects) != len(p.Classes) {
			t.Fatalf("seed %d: objects = %d", seed, len(a.Objects))
		}
		for i := range a.Image.Pix {
			if a.Image.Pix[i] != b.Image.Pix[i] {
				t.Fatalf("seed %d: scene not deterministic at byte %d", seed, i)
			}
		}
		for i := range a.Objects {
			if a.Objects[i] != b.Objects[i] {
				t.Fatalf("seed %d: ground truth not deterministic: %+v vs %+v",
					seed, a.Objects[i], b.Objects[i])
			}
			if a.Objects[i].Box.Empty() || a.Objects[i].Box.MinX < 0 || a.Objects[i].Box.MinY < 0 ||
				a.Objects[i].Box.MaxX > p.W || a.Objects[i].Box.MaxY > p.H {
				t.Errorf("seed %d: object %d box out of canvas: %+v", seed, i, a.Objects[i].Box)
			}
		}
	}
}

func TestComposeScenePVariesWithSeed(t *testing.T) {
	p := SceneParams{W: 160, H: 120, Classes: []Class{Chair, Sofa}}
	a := ComposeSceneP(p)
	p.Seed = 99
	b := ComposeSceneP(p)
	same := 0
	for i := range a.Image.Pix {
		if a.Image.Pix[i] == b.Image.Pix[i] {
			same++
		}
	}
	if same == len(a.Image.Pix) {
		t.Error("different seeds produced an identical scene")
	}
}

func TestComposeScenePOcclusion(t *testing.T) {
	// Occlusion 1 with zero jitter: the second object's canvas centres on
	// the first. The ground truth is pixel-accurate, so the measured
	// fraction reflects how much of the bottle the chair silhouette —
	// gaps, legs and all — actually hides, not the box overlap; a
	// sparse occluder never reaches 1.
	full := ComposeSceneP(SceneParams{
		W: 160, H: 160, Seed: 3, Classes: []Class{Bottle, Chair}, Occlusion: 1,
	})
	if got := full.Objects[0].Occluded; got < 0.2 {
		t.Errorf("full occlusion: Occluded = %v, want a substantial fraction", got)
	}
	if full.Objects[1].Occluded != 0 {
		t.Errorf("last-drawn object occluded: %v", full.Objects[1].Occluded)
	}
	// Partial occlusion hides less of the anchor than the full setting
	// but still some of it.
	part := ComposeSceneP(SceneParams{
		W: 200, H: 160, Seed: 3, Classes: []Class{Bottle, Chair}, Occlusion: 0.5,
	})
	if got := part.Objects[0].Occluded; got <= 0 || got >= full.Objects[0].Occluded {
		t.Errorf("partial occlusion: Occluded = %v, want in (0, %v)", got, full.Objects[0].Occluded)
	}
	// No occlusion requested: rejection sampling keeps objects clear.
	clear := ComposeSceneP(SceneParams{
		W: 320, H: 240, Seed: 3, Classes: []Class{Bottle, Chair, Lamp},
	})
	for i, o := range clear.Objects {
		if o.Occluded != 0 {
			t.Errorf("object %d unexpectedly occluded: %v", i, o.Occluded)
		}
	}
}

func TestComposeScenePEmpty(t *testing.T) {
	sc := ComposeSceneP(SceneParams{W: 80, H: 60, Seed: 1})
	if len(sc.Objects) != 0 {
		t.Errorf("objects = %d", len(sc.Objects))
	}
	if sc.Image == nil || sc.Image.W != 80 || sc.Image.H != 60 {
		t.Error("empty scene image wrong")
	}
}

func TestComposeSceneEmpty(t *testing.T) {
	sc := ComposeScene(nil, 100, 100, 1)
	if len(sc.Objects) != 0 || sc.Image == nil {
		t.Error("empty scene wrong")
	}
}

func TestModeString(t *testing.T) {
	if ShapeNetMode.String() != "shapenet" || NYUMode.String() != "nyu" {
		t.Error("mode names wrong")
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", 42: "42", -3: "-3", 1234: "1234"}
	for v, want := range cases {
		if got := itoa(v); got != want {
			t.Errorf("itoa(%d) = %q", v, got)
		}
	}
}
