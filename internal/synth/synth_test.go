package synth

import (
	"testing"

	"snmatch/internal/contour"
	"snmatch/internal/histogram"
	"snmatch/internal/imaging"
)

func TestClassNamesRoundTrip(t *testing.T) {
	for _, c := range AllClasses {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseClass("Spaceship"); err == nil {
		t.Error("unknown class accepted")
	}
	if Class(99).String() == "" {
		t.Error("out-of-range String empty")
	}
	if len(AllClasses) != NumClasses {
		t.Error("AllClasses length mismatch")
	}
}

func TestRenderDeterministic(t *testing.T) {
	p := Params{Size: 64, Seed: 42}
	for _, mode := range []Mode{ShapeNetMode, NYUMode} {
		a := RenderView(Chair, 0, 0, mode, p)
		b := RenderView(Chair, 0, 0, mode, p)
		for i := range a.Pix {
			if a.Pix[i] != b.Pix[i] {
				t.Fatalf("%v render not deterministic", mode)
			}
		}
	}
}

func TestRenderVariesAcrossIdentity(t *testing.T) {
	p := Params{Size: 64, Seed: 42}
	base := RenderView(Chair, 0, 0, ShapeNetMode, p)
	cases := map[string]*imaging.Image{
		"model": RenderView(Chair, 1, 0, ShapeNetMode, p),
		"view":  RenderView(Chair, 0, 1, ShapeNetMode, p),
		"class": RenderView(Sofa, 0, 0, ShapeNetMode, p),
		"seed":  RenderView(Chair, 0, 0, ShapeNetMode, Params{Size: 64, Seed: 43}),
	}
	for name, img := range cases {
		same := 0
		for i := range base.Pix {
			if base.Pix[i] == img.Pix[i] {
				same++
			}
		}
		if same == len(base.Pix) {
			t.Errorf("changing %s produced an identical image", name)
		}
	}
}

func TestShapeNetModeBackgrounds(t *testing.T) {
	p := Params{Size: 64, Seed: 1}
	for _, cls := range AllClasses {
		img := RenderView(cls, 0, 0, ShapeNetMode, p)
		// Corners should be white background.
		if img.At(0, 0) != imaging.White {
			t.Errorf("%v: corner not white: %v", cls, img.At(0, 0))
		}
		// The object must cover a reasonable area.
		res := contour.Preprocess(img)
		if res.Largest == nil {
			t.Fatalf("%v: no object found", cls)
		}
		if area := res.Largest.Area(); area < 200 {
			t.Errorf("%v: object area = %v, too small", cls, area)
		}
	}
}

func TestNYUModeBackgrounds(t *testing.T) {
	p := Params{Size: 64, Seed: 2}
	for _, cls := range AllClasses {
		img := RenderView(cls, 3, 1, NYUMode, p)
		if img.At(0, 0) != imaging.Black && img.At(63, 63) != imaging.Black {
			t.Errorf("%v: corners not black: %v %v", cls, img.At(0, 0), img.At(63, 63))
		}
		// Some object pixels must survive degradation.
		nonBlack := 0
		for i := 0; i < len(img.Pix); i += 3 {
			if img.Pix[i] != 0 || img.Pix[i+1] != 0 || img.Pix[i+2] != 0 {
				nonBlack++
			}
		}
		if nonBlack < 100 {
			t.Errorf("%v: only %d object pixels after degradation", cls, nonBlack)
		}
	}
}

func TestNYUNoisierThanShapeNet(t *testing.T) {
	p := Params{Size: 64, Seed: 3}
	// Same model rendered in both modes should differ meaningfully more
	// than two clean views of the same model.
	clean := RenderView(Bottle, 0, 0, ShapeNetMode, p)
	noisy := RenderView(Bottle, 0, 0, NYUMode, p)
	hClean := histogram.Compute(clean, 8).Normalize()
	hNoisy := histogram.Compute(noisy, 8).Normalize()
	d := histogram.Compare(hClean, hNoisy, histogram.Hellinger)
	if d < 0.1 {
		t.Errorf("NYU degradation too mild: Hellinger = %v", d)
	}
}

func TestClassShapesDiffer(t *testing.T) {
	// Silhouette areas of a bottle and a sofa should differ: sanity that
	// classes are not drawing the same geometry.
	p := Params{Size: 96, Seed: 4}
	areas := map[Class]float64{}
	for _, cls := range []Class{Bottle, Sofa, Lamp, Table} {
		res := contour.Preprocess(RenderView(cls, 0, 2, ShapeNetMode, p))
		if res.Largest == nil {
			t.Fatalf("%v: no contour", cls)
		}
		areas[cls] = res.Largest.Area()
	}
	if areas[Sofa] <= areas[Bottle] {
		t.Errorf("sofa area %v should exceed bottle area %v", areas[Sofa], areas[Bottle])
	}
}

func TestPaperIsNearWhite(t *testing.T) {
	// The paper class must be high-luma and low-texture: the property
	// driving its recognition failures in the original evaluation.
	img := RenderView(Paper, 0, 0, ShapeNetMode, Params{Size: 64, Seed: 5})
	res := contour.Preprocess(img)
	g := res.Cropped.ToGray()
	if contour.MeanIntensity(g) < 200 {
		t.Errorf("paper luma = %v, want near-white", contour.MeanIntensity(g))
	}
}

func TestComposeScene(t *testing.T) {
	classes := []Class{Chair, Bottle, Lamp, Door}
	sc := ComposeScene(classes, 320, 240, 7)
	if len(sc.Objects) != 4 {
		t.Fatalf("objects = %d", len(sc.Objects))
	}
	for i, obj := range sc.Objects {
		if obj.Box.Empty() {
			t.Errorf("object %d empty box", i)
		}
		if obj.Box.MaxX > 320 || obj.Box.MaxY > 240 {
			t.Errorf("object %d out of scene: %+v", i, obj.Box)
		}
		crop := sc.CropObject(i)
		if crop == nil {
			t.Fatalf("object %d crop nil", i)
		}
		// Crop should contain both black background and object pixels.
		var black, other int
		for p := 0; p < crop.W*crop.H; p++ {
			if crop.Pix[3*p] == 0 && crop.Pix[3*p+1] == 0 && crop.Pix[3*p+2] == 0 {
				black++
			} else {
				other++
			}
		}
		if other < 50 {
			t.Errorf("object %d: crop nearly empty (%d object px)", i, other)
		}
	}
	// Deterministic.
	sc2 := ComposeScene(classes, 320, 240, 7)
	for i := range sc.Image.Pix {
		if sc.Image.Pix[i] != sc2.Image.Pix[i] {
			t.Fatal("scene not deterministic")
		}
	}
}

func TestComposeSceneEmpty(t *testing.T) {
	sc := ComposeScene(nil, 100, 100, 1)
	if len(sc.Objects) != 0 || sc.Image == nil {
		t.Error("empty scene wrong")
	}
}

func TestModeString(t *testing.T) {
	if ShapeNetMode.String() != "shapenet" || NYUMode.String() != "nyu" {
		t.Error("mode names wrong")
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", 42: "42", -3: "-3", 1234: "1234"}
	for v, want := range cases {
		if got := itoa(v); got != want {
			t.Errorf("itoa(%d) = %q", v, got)
		}
	}
}
