package experiments

import (
	"fmt"
	"strings"

	"snmatch/internal/geom"
	"snmatch/internal/pipeline"
	"snmatch/internal/rng"
	"snmatch/internal/synth"
)

// SceneAxes spans the scene-robustness sweep: the detector runs on the
// full cross product, so the matrix shows how localisation and
// classification degrade along each axis while the others vary too.
type SceneAxes struct {
	Occlusion []float64 // requested overlap between stacked objects
	Noise     []float64 // Gaussian pixel-noise sigma
	Objects   []int     // objects per scene
	Scenes    int       // scenes evaluated per cell
	W, H      int       // scene canvas (default 320x240)
}

// DefaultSceneAxes is the reported robustness grid.
func DefaultSceneAxes() SceneAxes {
	return SceneAxes{
		Occlusion: []float64{0, 0.25, 0.5},
		Noise:     []float64{0, 6, 12},
		Objects:   []int{1, 3, 5},
		Scenes:    3,
	}
}

// SceneCell is one cell of the robustness matrix: detection quality at
// a fixed occlusion level, noise sigma and object count, accumulated
// over the cell's scenes.
type SceneCell struct {
	Occlusion float64
	Noise     float64
	Objects   int

	GT        int // ground-truth objects across the cell's scenes
	Localized int // GT boxes a proposal covered at IoU >= 0.5
	Correct   int // localized and classified as the right class
	Proposals int // regions proposed across the cell's scenes
}

// LocAcc is the localisation recall: found / ground truth.
func (c SceneCell) LocAcc() float64 {
	if c.GT == 0 {
		return 0
	}
	return float64(c.Localized) / float64(c.GT)
}

// ClsAcc is the end-to-end accuracy: right box and right label / ground
// truth, the number a robot acting on the detections experiences.
func (c SceneCell) ClsAcc() float64 {
	if c.GT == 0 {
		return 0
	}
	return float64(c.Correct) / float64(c.GT)
}

// SceneRobustnessResult carries the matrix in axis order: occlusion
// outermost, then noise, then object count.
type SceneRobustnessResult struct {
	Axes  SceneAxes
	Cells []SceneCell
}

// SceneRobustness sweeps the detector over the axes' cross product with
// the given pipeline against the SNS1 gallery. Scene classes are drawn
// per scene from a stream seeded by the suite's scale, so the same
// scale always evaluates the same scenes; greedy IoU matching in the
// detector's deterministic region order scores each scene.
func (s *Suite) SceneRobustness(p pipeline.Pipeline, ax SceneAxes) SceneRobustnessResult {
	if ax.W <= 0 {
		ax.W = 320
	}
	if ax.H <= 0 {
		ax.H = 240
	}
	if ax.Scenes <= 0 {
		ax.Scenes = 1
	}
	r := rng.New(s.Scale.Seed).Split("scene-robustness")
	res := SceneRobustnessResult{Axes: ax}
	dp := pipeline.DetectParams{Workers: s.Scale.Workers}
	for _, occ := range ax.Occlusion {
		for _, sigma := range ax.Noise {
			for _, count := range ax.Objects {
				cell := SceneCell{Occlusion: occ, Noise: sigma, Objects: count}
				for sc := 0; sc < ax.Scenes; sc++ {
					classes := make([]synth.Class, count)
					for i := range classes {
						classes[i] = synth.AllClasses[r.Intn(len(synth.AllClasses))]
					}
					scene := synth.ComposeSceneP(synth.SceneParams{
						W: ax.W, H: ax.H,
						Seed:       r.Uint64(),
						Classes:    classes,
						Occlusion:  occ,
						NoiseSigma: sigma,
						Clutter:    2,
					})
					dets := pipeline.Detect(scene.Image, p, s.GallerySNS1, dp)
					cell.Proposals += len(dets)
					scoreScene(&cell, scene, dets)
				}
				res.Cells = append(res.Cells, cell)
			}
		}
	}
	return res
}

// scoreScene matches detections to ground truth greedily in region
// order: each detection claims the unmatched ground-truth box it
// overlaps best at IoU >= 0.5. Both sides are deterministically
// ordered, so the score is a pure function of the scene.
func scoreScene(cell *SceneCell, scene synth.Scene, dets []pipeline.Detection) {
	cell.GT += len(scene.Objects)
	claimed := make([]bool, len(scene.Objects))
	for _, d := range dets {
		best, bestIoU := -1, 0.5
		for i, obj := range scene.Objects {
			if claimed[i] {
				continue
			}
			if v := boxIoU(d.Box, obj.Box); v >= bestIoU {
				best, bestIoU = i, v
			}
		}
		if best < 0 {
			continue
		}
		claimed[best] = true
		cell.Localized++
		if d.Class == scene.Objects[best].Class {
			cell.Correct++
		}
	}
}

// boxIoU returns intersection-over-union of two boxes.
func boxIoU(a, b geom.Rect) float64 {
	inter := a.Intersect(b).Area()
	if inter == 0 {
		return 0
	}
	return float64(inter) / float64(a.Area()+b.Area()-inter)
}

// FormatSceneRobustness renders the matrix, one line per cell.
func FormatSceneRobustness(r SceneRobustnessResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %-6s %-7s %6s %6s %8s %8s\n",
		"Occlusion", "Noise", "Objects", "GT", "Found", "LocAcc", "ClsAcc")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-9.2f %-6.1f %-7d %6d %6d %8.3f %8.3f\n",
			c.Occlusion, c.Noise, c.Objects, c.GT, c.Localized, c.LocAcc(), c.ClsAcc())
	}
	return b.String()
}
