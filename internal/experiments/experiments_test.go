package experiments

import (
	"io"
	"strings"
	"testing"

	"snmatch/internal/synth"
)

// tinyScale keeps these structural tests fast; the root-level tests
// exercise the Quick scale and the qualitative findings.
func tinyScale() Scale {
	return Scale{
		ImageSize:      48,
		NYUPerClassCap: 6,
		NYUQueryPick:   2,
		TrainPairs:     48,
		NXCorrInput:    16,
		NXCorrEpochs:   1,
		Seed:           3,
	}
}

func TestSuiteConstruction(t *testing.T) {
	s := NewSuite(tinyScale())
	if s.SNS1.Len() != 82 || s.SNS2.Len() != 100 {
		t.Fatalf("SNS sizes %d/%d", s.SNS1.Len(), s.SNS2.Len())
	}
	if s.GallerySNS1.Len() != 82 {
		t.Fatalf("gallery size %d", s.GallerySNS1.Len())
	}
	if s.NYU.Len() == 0 {
		t.Fatal("empty NYU set")
	}
}

func TestTable1Rendering(t *testing.T) {
	s := NewSuite(tinyScale())
	tbl := s.Table1()
	for _, want := range []string{"Object", "Chair", "Lamp", "Total", "82", "100"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, tbl)
		}
	}
}

func TestTable2Structure(t *testing.T) {
	s := NewSuite(tinyScale())
	t2 := s.Table2()
	if len(t2.Rows) != 11 {
		t.Fatalf("Table 2 rows = %d, want 11", len(t2.Rows))
	}
	for name, vals := range t2.ByName {
		for i, v := range vals {
			if v < 0 || v > 1 {
				t.Errorf("%s[%d] = %v out of range", name, i, v)
			}
		}
	}
	out := FormatTable2(t2)
	for _, want := range []string{"NYU v. SNS1", "SNS2 v. SNS1", "Baseline", "Shape only L3", "Color only Hellinger"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted Table 2 missing %q", want)
		}
	}
}

func TestTable4TinyRun(t *testing.T) {
	if testing.Short() {
		t.Skip("neural training")
	}
	s := NewSuite(tinyScale())
	t4, err := s.Table4(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if t4.TrainEpochs != 1 {
		t.Errorf("epochs = %d", t4.TrainEpochs)
	}
	if t4.SNS1Pairs.Similar.Support+t4.SNS1Pairs.Dissimilar.Support != 3321 {
		t.Error("SNS1 pair support wrong")
	}
	out := FormatTable4(t4)
	if !strings.Contains(out, "ShapeNetSet1 pairs") || !strings.Contains(out, "NYU+ShapeNetSet1 pairs") {
		t.Errorf("formatted Table 4 incomplete:\n%s", out)
	}
}

func TestClasswiseTablesComplete(t *testing.T) {
	s := NewSuite(tinyScale())
	if got := len(s.Table5()); got != 4 {
		t.Errorf("Table 5 configurations = %d, want 4", got)
	}
	if got := len(s.Table6()); got != 4 {
		t.Errorf("Table 6 configurations = %d, want 4", got)
	}
	if got := len(s.Table7()); got != 3 {
		t.Errorf("Table 7 configurations = %d, want 3", got)
	}
	t8 := s.Table8()
	if got := len(t8); got != 3 {
		t.Errorf("Table 8 configurations = %d, want 3", got)
	}
	out := FormatClasswise("Table 8", []string{
		"Shape+Color (weighted sum)", "Shape+Color (micro-avg)", "Shape+Color (macro-avg)",
	}, t8)
	if !strings.Contains(out, "weighted sum") || !strings.Contains(out, synth.Chair.String()) {
		t.Errorf("classwise formatting incomplete:\n%s", out)
	}
	// Missing names are skipped, not rendered.
	short := FormatClasswise("x", []string{"nope"}, t8)
	if strings.Contains(short, "nope") {
		t.Error("unknown approach rendered")
	}
}

func TestScalesDistinct(t *testing.T) {
	q, f := Quick(), Full()
	if q.TrainPairs >= f.TrainPairs {
		t.Error("Quick should train on fewer pairs than Full")
	}
	if f.NYUPerClassCap != 0 {
		t.Error("Full must use the complete Table 1 cardinalities")
	}
	if q.NYUPerClassCap == 0 {
		t.Error("Quick must cap the NYU set")
	}
}
