package experiments

import (
	"strings"
	"testing"

	"snmatch/internal/pipeline"
)

// smallAxes keeps the structural sweep fast: a 2x2x2 grid with one
// scene per cell.
func smallAxes() SceneAxes {
	return SceneAxes{
		Occlusion: []float64{0, 0.5},
		Noise:     []float64{0, 8},
		Objects:   []int{1, 3},
		Scenes:    1,
		W:         240, H: 180,
	}
}

func TestSceneRobustnessStructure(t *testing.T) {
	s := NewSuite(tinyScale())
	res := s.SceneRobustness(pipeline.DefaultHybrid(pipeline.WeightedSum), smallAxes())
	if len(res.Cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(res.Cells))
	}
	for i, c := range res.Cells {
		wantGT := c.Objects * res.Axes.Scenes
		if c.GT != wantGT {
			t.Errorf("cell %d: GT = %d, want %d", i, c.GT, wantGT)
		}
		if c.Localized > c.GT || c.Correct > c.Localized {
			t.Errorf("cell %d: inconsistent counts %+v", i, c)
		}
		if a := c.LocAcc(); a < 0 || a > 1 {
			t.Errorf("cell %d: LocAcc = %v", i, a)
		}
		if a := c.ClsAcc(); a < 0 || a > c.LocAcc() {
			t.Errorf("cell %d: ClsAcc = %v vs LocAcc %v", i, a, c.LocAcc())
		}
	}
	// Clean single-object scenes must localize: the easiest cell is the
	// occ=0, noise=0, count=1 corner.
	if easy := res.Cells[0]; easy.Localized == 0 {
		t.Errorf("easiest cell found nothing: %+v", easy)
	}
	out := FormatSceneRobustness(res)
	for _, want := range []string{"Occlusion", "Noise", "Objects", "LocAcc", "ClsAcc"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted matrix missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n"); got != 9 {
		t.Errorf("formatted matrix has %d lines, want 9:\n%s", got, out)
	}
}

// TestSceneRobustnessDeterministic pins the house rule for the sweep:
// same scale, same axes, same numbers.
func TestSceneRobustnessDeterministic(t *testing.T) {
	s := NewSuite(tinyScale())
	ax := SceneAxes{Occlusion: []float64{0.25}, Noise: []float64{4}, Objects: []int{2}, Scenes: 2}
	a := s.SceneRobustness(pipeline.DefaultHybrid(pipeline.WeightedSum), ax)
	b := s.SceneRobustness(pipeline.DefaultHybrid(pipeline.WeightedSum), ax)
	if len(a.Cells) != 1 || len(b.Cells) != 1 || a.Cells[0] != b.Cells[0] {
		t.Fatalf("sweep not deterministic: %+v vs %+v", a.Cells, b.Cells)
	}
}
