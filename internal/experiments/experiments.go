// Package experiments regenerates every table of the paper's evaluation
// (Tables 1-9) from the synthetic datasets. It is shared by the
// cmd/experiments binary, the reproduction tests and the benchmark
// harness. Scale controls the NYU set size so the same code serves both
// quick CI runs and the full Table 1 cardinalities.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"snmatch/internal/dataset"
	"snmatch/internal/eval"
	"snmatch/internal/histogram"
	"snmatch/internal/moments"
	"snmatch/internal/nn"
	"snmatch/internal/pipeline"
	"snmatch/internal/synth"
)

// Scale sizes an experiment run.
type Scale struct {
	ImageSize      int // render size (default 96)
	NYUPerClassCap int // cap on NYU chairs; other classes scale (0 = full Table 1)
	NYUQueryPick   int // NYU picks per class for the NXCorr test set (paper: 10)
	TrainPairs     int // NXCorr training pairs (paper: 9450)
	NXCorrInput    int // NXCorr input side (paper uses 60x160; we use square)
	NXCorrEpochs   int // cap on training epochs (paper: 100)
	Seed           uint64
	Workers        int // classification pool size (<= 0: one per CPU)
}

// Quick returns a scale suitable for tests and benchmarks: the full
// SNS1/SNS2 sets (they are small) but a capped NYU set and a small
// neural budget.
func Quick() Scale {
	return Scale{
		ImageSize:      64,
		NYUPerClassCap: 30,
		NYUQueryPick:   4,
		TrainPairs:     200,
		NXCorrInput:    16,
		NXCorrEpochs:   3,
		Seed:           1,
	}
}

// Full returns the paper-scale configuration (Table 1 cardinalities,
// 9,450 training pairs). On one CPU the neural experiment dominates the
// runtime; expect minutes to hours depending on NXCorrInput.
func Full() Scale {
	return Scale{
		ImageSize:      96,
		NYUPerClassCap: 0,
		NYUQueryPick:   10,
		TrainPairs:     9450,
		NXCorrInput:    32,
		NXCorrEpochs:   100,
		Seed:           1,
	}
}

func (s Scale) config() dataset.Config {
	return dataset.Config{Size: s.ImageSize, Seed: s.Seed, NYUPerClassCap: s.NYUPerClassCap}
}

// Suite holds the shared datasets and galleries for a run.
type Suite struct {
	Scale Scale

	SNS1 *dataset.Set
	SNS2 *dataset.Set
	NYU  *dataset.Set

	GallerySNS1 *pipeline.Gallery
}

// NewSuite builds the datasets once. Gallery preparation fans out over
// the Scale's worker pool.
func NewSuite(s Scale) *Suite { return NewSuiteWithGallery(s, nil) }

// NewSuiteWithGallery is NewSuite with a pre-prepared SNS1 gallery —
// e.g. one loaded from a snapshot. The query datasets are still
// rendered, but the gallery preprocessing pass (contours, Hu moments,
// histograms) is skipped entirely; callers must ensure the gallery was
// built from this scale's SNS1 configuration. A nil gallery builds one.
func NewSuiteWithGallery(s Scale, g *pipeline.Gallery) *Suite {
	cfg := s.config()
	sns1 := dataset.BuildSNS1(cfg)
	if g == nil {
		g = pipeline.NewGalleryWorkers(sns1, s.Workers)
	}
	return &Suite{
		Scale:       s,
		SNS1:        sns1,
		SNS2:        dataset.BuildSNS2(cfg),
		NYU:         dataset.BuildNYU(cfg),
		GallerySNS1: g,
	}
}

// run classifies a query set against the SNS1 gallery through the
// suite's worker pool; output is identical to the serial pipeline.Run.
func (s *Suite) run(p pipeline.Pipeline, queries *dataset.Set) (pred, truth []synth.Class) {
	return pipeline.NewBatchClassifier(p, s.Scale.Workers).Run(queries, s.GallerySNS1)
}

// PrewarmDescriptors extracts every gallery descriptor family and
// builds the flat matching indexes up front across the pool, so the
// Table 3/9 sweeps (and their timings) measure steady-state query
// classification rather than one-shot gallery preparation.
func (s *Suite) PrewarmDescriptors() {
	params := pipeline.DefaultDescriptorParams()
	for _, kind := range []pipeline.DescriptorKind{pipeline.SIFT, pipeline.SURF, pipeline.ORB} {
		s.GallerySNS1.PrepareDescriptorsWorkers(kind, params, s.Scale.Workers)
	}
}

// Table1 reproduces the dataset statistics table.
func (s *Suite) Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %12s %12s\n", "Object", "ShapeNetSet1", "ShapeNetSet2", "NYUSet")
	c1 := s.SNS1.CountByClass()
	c2 := s.SNS2.CountByClass()
	cn := s.NYU.CountByClass()
	t1, t2, tn := 0, 0, 0
	for _, cls := range synth.AllClasses {
		fmt.Fprintf(&b, "%-8s %12d %12d %12d\n", cls, c1[cls], c2[cls], cn[cls])
		t1 += c1[cls]
		t2 += c2[cls]
		tn += cn[cls]
	}
	fmt.Fprintf(&b, "%-8s %12d %12d %12d\n", "Total", t1, t2, tn)
	return b.String()
}

// exploratoryPipelines lists the Table 2 configurations in row order.
func exploratoryPipelines(seed uint64) []pipeline.Pipeline {
	return []pipeline.Pipeline{
		pipeline.NewRandom(seed),
		pipeline.ShapeOnly{Method: moments.MatchI1},
		pipeline.ShapeOnly{Method: moments.MatchI2},
		pipeline.ShapeOnly{Method: moments.MatchI3},
		pipeline.ColorOnly{Metric: histogram.Correlation},
		pipeline.ColorOnly{Metric: histogram.ChiSquare},
		pipeline.ColorOnly{Metric: histogram.Intersection},
		pipeline.ColorOnly{Metric: histogram.Hellinger},
		pipeline.DefaultHybrid(pipeline.WeightedSum),
		pipeline.DefaultHybrid(pipeline.MicroAvg),
		pipeline.DefaultHybrid(pipeline.MacroAvg),
	}
}

// Table2Result carries the cumulative accuracies of every exploratory
// configuration on both dataset pairings.
type Table2Result struct {
	Rows []eval.CumulativeRow
	// ByName indexes cumulative accuracy as ByName[approach][column]
	// with column 0 = NYU v. SNS1 and column 1 = SNS2 v. SNS1.
	ByName map[string][2]float64
}

// Table2 runs the §3.2 exploratory trials: every configuration
// classifies (i) the NYU set and (ii) SNS2, both against the SNS1
// gallery. (The paper's "SNS1 v. SNS2" column compares ShapeNet views
// against the SNS1 reference gallery; see DESIGN.md on this reading.)
func (s *Suite) Table2() Table2Result {
	res := Table2Result{ByName: map[string][2]float64{}}
	for _, p := range exploratoryPipelines(s.Scale.Seed) {
		predN, truthN := s.run(p, s.NYU)
		accN := eval.Evaluate(truthN, predN).Cumulative
		predS, truthS := s.run(p, s.SNS2)
		accS := eval.Evaluate(truthS, predS).Cumulative
		res.Rows = append(res.Rows, eval.CumulativeRow{
			Approach: p.Name(), Values: []float64{accN, accS},
		})
		res.ByName[p.Name()] = [2]float64{accN, accS}
	}
	return res
}

// FormatTable2 renders the Table 2 layout.
func FormatTable2(r Table2Result) string {
	return eval.CumulativeTable([]string{"NYU v. SNS1", "SNS2 v. SNS1"}, r.Rows)
}

// Table3Result carries descriptor cumulative accuracies.
type Table3Result struct {
	Rows   []eval.CumulativeRow
	ByName map[string]float64
	// Classwise keeps the per-class evaluations for Table 9.
	Classwise map[string]eval.Result
}

// Table3 runs the §3.3 descriptor trials: SNS2 queries against the
// SNS1 gallery with the ratio test at the paper's reported 0.5
// threshold (Table 9 uses the same runs).
func (s *Suite) Table3(ratio float64) Table3Result {
	res := Table3Result{ByName: map[string]float64{}, Classwise: map[string]eval.Result{}}
	base := pipeline.NewRandom(s.Scale.Seed + 7)
	pred, truth := s.run(base, s.SNS2)
	r := eval.Evaluate(truth, pred)
	res.Rows = append(res.Rows, eval.CumulativeRow{Approach: "Baseline", Values: []float64{r.Cumulative}})
	res.ByName["Baseline"] = r.Cumulative

	for _, kind := range []pipeline.DescriptorKind{pipeline.SIFT, pipeline.SURF, pipeline.ORB} {
		p := pipeline.NewDescriptor(kind, ratio)
		pred, truth := s.run(p, s.SNS2)
		r := eval.Evaluate(truth, pred)
		res.Rows = append(res.Rows, eval.CumulativeRow{Approach: p.Name(), Values: []float64{r.Cumulative}})
		res.ByName[p.Name()] = r.Cumulative
		res.Classwise[p.Name()] = r
	}
	return res
}

// FormatTable3 renders the Table 3 layout.
func FormatTable3(r Table3Result) string {
	return eval.CumulativeTable([]string{"Accuracy"}, r.Rows)
}

// Table4Result carries the NXCorr pair evaluation on both test sets.
type Table4Result struct {
	TrainEpochs int
	TrainLoss   float64
	SNS1Pairs   eval.PairResult
	CrossPairs  eval.PairResult
}

// Table4 trains the Normalized-X-Corr network on SNS2 pairs (§3.4) and
// evaluates the binary similar/dissimilar task on (i) all SNS1 pairs
// and (ii) NYU-picks x SNS1 pairs.
func (s *Suite) Table4(log io.Writer) (Table4Result, error) {
	cfg := nn.DefaultConfig(s.Scale.NXCorrInput)
	cfg.Seed = s.Scale.Seed

	train := dataset.TrainPairs(s.SNS2, s.Scale.TrainPairs, 0.52, s.Scale.Seed+100)
	fit := nn.DefaultFit()
	fit.Epochs = s.Scale.NXCorrEpochs
	fit.Seed = s.Scale.Seed + 200

	neural, fitRes, err := pipeline.TrainNeural(cfg, s.SNS2, train, fit, log)
	if err != nil {
		return Table4Result{}, err
	}
	out := Table4Result{TrainEpochs: fitRes.Epochs, TrainLoss: fitRes.FinalLoss}

	sns1Pairs := dataset.AllPairs(s.SNS1)
	pred, truth := neural.ClassifyPairsParallel(sns1Pairs, s.SNS1, s.SNS1, s.Scale.Workers)
	out.SNS1Pairs = eval.EvaluatePairs(truth, pred)

	picks := dataset.BuildNYUSubset(s.Scale.config(), s.Scale.NYUQueryPick)
	cross := dataset.CrossPairs(picks, s.SNS1)
	predC, truthC := neural.ClassifyPairsParallel(cross, picks, s.SNS1, s.Scale.Workers)
	out.CrossPairs = eval.EvaluatePairs(truthC, predC)
	return out, nil
}

// FormatTable4 renders the Table 4 layout.
func FormatTable4(r Table4Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "(trained %d epochs, final loss %.4f)\n", r.TrainEpochs, r.TrainLoss)
	b.WriteString(r.SNS1Pairs.PairTable("ShapeNetSet1 pairs"))
	b.WriteString(r.CrossPairs.PairTable("NYU+ShapeNetSet1 pairs"))
	return b.String()
}

// Table5 runs the class-wise shape-only evaluation on NYU v. SNS1.
func (s *Suite) Table5() map[string]eval.Result {
	out := map[string]eval.Result{}
	for _, p := range []pipeline.Pipeline{
		pipeline.NewRandom(s.Scale.Seed),
		pipeline.ShapeOnly{Method: moments.MatchI1},
		pipeline.ShapeOnly{Method: moments.MatchI2},
		pipeline.ShapeOnly{Method: moments.MatchI3},
	} {
		pred, truth := s.run(p, s.NYU)
		out[p.Name()] = eval.Evaluate(truth, pred)
	}
	return out
}

// Table6 runs the class-wise colour-only evaluation on NYU v. SNS1.
func (s *Suite) Table6() map[string]eval.Result {
	out := map[string]eval.Result{}
	for _, m := range []histogram.CompareMethod{
		histogram.Correlation, histogram.ChiSquare,
		histogram.Intersection, histogram.Hellinger,
	} {
		p := pipeline.ColorOnly{Metric: m}
		pred, truth := s.run(p, s.NYU)
		out[p.Name()] = eval.Evaluate(truth, pred)
	}
	return out
}

// Table7 runs the class-wise hybrid evaluation (L3 + Hellinger,
// alpha = 0.3, beta = 0.7) on NYU v. SNS1 for the three strategies.
func (s *Suite) Table7() map[string]eval.Result {
	out := map[string]eval.Result{}
	for _, st := range []pipeline.HybridStrategy{
		pipeline.WeightedSum, pipeline.MicroAvg, pipeline.MacroAvg,
	} {
		p := pipeline.DefaultHybrid(st)
		pred, truth := s.run(p, s.NYU)
		out[p.Name()] = eval.Evaluate(truth, pred)
	}
	return out
}

// Table8 repeats Table 7 with SNS2 queries against SNS1.
func (s *Suite) Table8() map[string]eval.Result {
	out := map[string]eval.Result{}
	for _, st := range []pipeline.HybridStrategy{
		pipeline.WeightedSum, pipeline.MicroAvg, pipeline.MacroAvg,
	} {
		p := pipeline.DefaultHybrid(st)
		pred, truth := s.run(p, s.SNS2)
		out[p.Name()] = eval.Evaluate(truth, pred)
	}
	return out
}

// FormatClasswise renders a map of class-wise results in a stable order.
func FormatClasswise(title string, order []string, res map[string]eval.Result) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	for _, name := range order {
		r, ok := res[name]
		if !ok {
			continue
		}
		b.WriteString(r.ClasswiseTable(name))
	}
	return b.String()
}
