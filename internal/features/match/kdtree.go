package match

import (
	"container/heap"
	"math"
	"sort"

	"snmatch/internal/features"
)

// KDTree is a k-d tree over float descriptors supporting bounded
// best-bin-first search, standing in for FLANN's approximate matcher in
// the ablation experiments. Descriptors are stored as one contiguous
// row-major matrix (shared with features.Packed when built from a
// packed set), and all internal distances stay in the squared domain
// with the square root taken once per reported match.
type KDTree struct {
	dim   int
	data  []float32 // row i occupies data[i*dim : (i+1)*dim]
	n     int
	nodes []kdNode
	root  int
}

type kdNode struct {
	axis        int
	split       float32
	point       int // descriptor index at this node
	left, right int // -1 when absent
}

// NewKDTree builds a tree over the given descriptors, flattening them
// into contiguous storage. It returns nil for an empty input.
func NewKDTree(desc [][]float32) *KDTree {
	if len(desc) == 0 {
		return nil
	}
	dim := len(desc[0])
	flat := make([]float32, len(desc)*dim)
	for i, d := range desc {
		copy(flat[i*dim:], d)
	}
	return newKDTreeFlat(flat, dim, len(desc))
}

// NewKDTreeSet builds a tree over a float descriptor set, reusing the
// set's packed matrix without copying when present. It returns nil for
// empty or binary sets.
func NewKDTreeSet(s *features.Set) *KDTree {
	if s == nil || s.Len() == 0 || s.IsBinary() {
		return nil
	}
	if s.Packed == nil {
		return NewKDTree(s.Float)
	}
	return newKDTreeFlat(s.Packed.Floats, s.Packed.Dim, s.Packed.N)
}

func newKDTreeFlat(data []float32, dim, n int) *KDTree {
	t := &KDTree{dim: dim, data: data, n: n}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(idx, 0)
	return t
}

// row returns the i-th descriptor.
func (t *KDTree) row(i int) []float32 { return t.data[i*t.dim : (i+1)*t.dim] }

func (t *KDTree) build(idx []int, depth int) int {
	if len(idx) == 0 {
		return -1
	}
	axis := t.bestAxis(idx)
	sort.Slice(idx, func(i, j int) bool {
		return t.data[idx[i]*t.dim+axis] < t.data[idx[j]*t.dim+axis]
	})
	mid := len(idx) / 2
	node := kdNode{
		axis:  axis,
		split: t.data[idx[mid]*t.dim+axis],
		point: idx[mid],
	}
	id := len(t.nodes)
	t.nodes = append(t.nodes, node)
	left := t.build(idx[:mid], depth+1)
	right := t.build(idx[mid+1:], depth+1)
	t.nodes[id].left = left
	t.nodes[id].right = right
	return id
}

// bestAxis picks the dimension with the largest value spread, following
// the classic kd-tree heuristic.
func (t *KDTree) bestAxis(idx []int) int {
	best, bestSpread := 0, float32(-1)
	for d := 0; d < t.dim; d++ {
		lo, hi := t.data[idx[0]*t.dim+d], t.data[idx[0]*t.dim+d]
		for _, i := range idx[1:] {
			v := t.data[i*t.dim+d]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo > bestSpread {
			bestSpread = hi - lo
			best = d
		}
	}
	return best
}

// branch is a deferred subtree with a lower bound on its distance.
type branch struct {
	node  int
	bound float32
}

type branchHeap []branch

func (h branchHeap) Len() int            { return len(h) }
func (h branchHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h branchHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *branchHeap) Push(x interface{}) { *h = append(*h, x.(branch)) }
func (h *branchHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Search returns the k nearest descriptors to q using best-bin-first
// traversal examining at most maxChecks leaves (0 means exact search).
// Results are sorted by increasing distance.
func (t *KDTree) Search(q []float32, k, maxChecks int) []Match {
	if t == nil || k < 1 {
		return nil
	}
	type result struct {
		idx  int
		dist float32
	}
	results := make([]result, 0, k)
	worst := func() float32 {
		if len(results) < k {
			return inf32
		}
		return results[len(results)-1].dist
	}
	insert := func(idx int, d float32) {
		pos := sort.Search(len(results), func(i int) bool { return results[i].dist > d })
		if len(results) < k {
			results = append(results, result{})
		}
		copy(results[pos+1:], results[pos:])
		if pos < len(results) {
			results[pos] = result{idx, d}
		}
	}

	pending := &branchHeap{{node: t.root, bound: 0}}
	checks := 0
	for pending.Len() > 0 {
		b := heap.Pop(pending).(branch)
		if b.node < 0 || b.bound >= worst() {
			continue
		}
		// Descend to a leaf, pushing the far side of every split.
		node := b.node
		for node >= 0 {
			n := t.nodes[node]
			if d := features.L2Squared(q, t.row(n.point)); d < worst() {
				insert(n.point, d)
			}
			checks++
			diff := q[n.axis] - n.split
			near, far := n.left, n.right
			if diff > 0 {
				near, far = n.right, n.left
			}
			if far >= 0 {
				heap.Push(pending, branch{node: far, bound: diff * diff})
			}
			node = near
		}
		if maxChecks > 0 && checks >= maxChecks {
			break
		}
	}
	out := make([]Match, len(results))
	for i, r := range results {
		out[i] = Match{TrainIdx: r.idx, Distance: sqrt32(r.dist)}
	}
	return out
}

func sqrt32(v float32) float32 {
	if v <= 0 {
		return 0
	}
	return float32(math.Sqrt(float64(v)))
}
