package match

import (
	"math"
	"testing"

	"snmatch/internal/features"
	"snmatch/internal/rng"
)

func floatSet(desc ...[]float32) *features.Set {
	s := &features.Set{Float: desc}
	for range desc {
		s.Keypoints = append(s.Keypoints, features.Keypoint{})
	}
	return s
}

func binarySet(desc ...[]byte) *features.Set {
	s := &features.Set{Binary: desc}
	for range desc {
		s.Keypoints = append(s.Keypoints, features.Keypoint{})
	}
	return s
}

func TestKNNFloatOrdering(t *testing.T) {
	q := floatSet([]float32{0, 0})
	tr := floatSet([]float32{3, 0}, []float32{1, 0}, []float32{2, 0})
	knn := KNN(q, tr, 3)
	if len(knn) != 1 || len(knn[0]) != 3 {
		t.Fatalf("knn shape wrong: %v", knn)
	}
	if knn[0][0].TrainIdx != 1 || knn[0][1].TrainIdx != 2 || knn[0][2].TrainIdx != 0 {
		t.Errorf("order = %v", knn[0])
	}
	if knn[0][0].Distance != 1 {
		t.Errorf("distance = %v", knn[0][0].Distance)
	}
}

func TestKNNBinary(t *testing.T) {
	q := binarySet([]byte{0x00})
	tr := binarySet([]byte{0xff}, []byte{0x01}, []byte{0x0f})
	knn := KNN(q, tr, 2)
	if knn[0][0].TrainIdx != 1 || knn[0][0].Distance != 1 {
		t.Errorf("nearest = %+v", knn[0][0])
	}
	if knn[0][1].TrainIdx != 2 || knn[0][1].Distance != 4 {
		t.Errorf("second = %+v", knn[0][1])
	}
}

func TestKNNMixedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mixed representations did not panic")
		}
	}()
	KNN(floatSet([]float32{1}), binarySet([]byte{1}), 1)
}

func TestKNNKClamp(t *testing.T) {
	q := floatSet([]float32{0})
	tr := floatSet([]float32{1}, []float32{2})
	knn := KNN(q, tr, 0) // k < 1 behaves as k = 1
	if len(knn[0]) != 1 {
		t.Errorf("k clamp failed: %v", knn[0])
	}
	knn = KNN(q, tr, 10) // k beyond train size returns all
	if len(knn[0]) != 2 {
		t.Errorf("k overflow: %v", knn[0])
	}
}

func TestBest(t *testing.T) {
	q := floatSet([]float32{0}, []float32{10})
	tr := floatSet([]float32{1}, []float32{9})
	best := Best(q, tr)
	if len(best) != 2 || best[0].TrainIdx != 0 || best[1].TrainIdx != 1 {
		t.Errorf("best = %v", best)
	}
}

func TestRatioTest(t *testing.T) {
	knn := [][]Match{
		{{QueryIdx: 0, TrainIdx: 0, Distance: 1}, {QueryIdx: 0, TrainIdx: 1, Distance: 10}}, // passes
		{{QueryIdx: 1, TrainIdx: 2, Distance: 5}, {QueryIdx: 1, TrainIdx: 3, Distance: 6}},  // fails at 0.75
		{{QueryIdx: 2, TrainIdx: 4, Distance: 1}},                                           // too few neighbours
	}
	got := RatioTest(knn, 0.75)
	if len(got) != 1 || got[0].QueryIdx != 0 {
		t.Errorf("ratio test = %v", got)
	}
	// Stricter threshold removes everything.
	if got := RatioTest(knn, 0.05); len(got) != 0 {
		t.Errorf("strict ratio test = %v", got)
	}
}

func TestCrossCheck(t *testing.T) {
	ab := []Match{{QueryIdx: 0, TrainIdx: 1}, {QueryIdx: 1, TrainIdx: 0}}
	ba := []Match{{QueryIdx: 1, TrainIdx: 0}, {QueryIdx: 0, TrainIdx: 5}}
	got := CrossCheck(ab, ba)
	if len(got) != 1 || got[0].QueryIdx != 0 || got[0].TrainIdx != 1 {
		t.Errorf("cross check = %v", got)
	}
}

func TestGoodMatchCountSelfMatch(t *testing.T) {
	r := rng.New(5)
	var descs [][]float32
	for i := 0; i < 20; i++ {
		d := make([]float32, 16)
		for j := range d {
			d[j] = float32(r.Float64())
		}
		descs = append(descs, d)
	}
	a := floatSet(descs...)
	if got := GoodMatchCount(a, a, 0.75); got == 0 {
		t.Error("self match found no good matches")
	}
	empty := floatSet()
	if got := GoodMatchCount(empty, a, 0.75); got != 0 {
		t.Errorf("empty query matches = %d", got)
	}
	single := floatSet(descs[0])
	if got := GoodMatchCount(a, single, 0.75); got != 0 {
		t.Errorf("single train matches = %d", got)
	}
}

func TestKDTreeExactAgreesWithBruteForce(t *testing.T) {
	r := rng.New(11)
	var descs [][]float32
	for i := 0; i < 100; i++ {
		d := make([]float32, 8)
		for j := range d {
			d[j] = float32(r.Float64() * 10)
		}
		descs = append(descs, d)
	}
	tree := NewKDTree(descs)
	train := floatSet(descs...)
	for trial := 0; trial < 20; trial++ {
		q := make([]float32, 8)
		for j := range q {
			q[j] = float32(r.Float64() * 10)
		}
		bf := KNN(floatSet(q), train, 3)[0]
		kd := tree.Search(q, 3, 0)
		if len(kd) != 3 {
			t.Fatalf("kd results = %d", len(kd))
		}
		for i := range kd {
			if math.Abs(float64(kd[i].Distance-bf[i].Distance)) > 1e-4 {
				t.Errorf("trial %d rank %d: kd %v vs bf %v", trial, i, kd[i].Distance, bf[i].Distance)
			}
		}
	}
}

func TestKDTreeBoundedChecksStillReasonable(t *testing.T) {
	r := rng.New(13)
	var descs [][]float32
	for i := 0; i < 500; i++ {
		d := make([]float32, 8)
		for j := range d {
			d[j] = float32(r.Float64())
		}
		descs = append(descs, d)
	}
	tree := NewKDTree(descs)
	train := floatSet(descs...)
	agree := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		q := make([]float32, 8)
		for j := range q {
			q[j] = float32(r.Float64())
		}
		bf := KNN(floatSet(q), train, 1)[0][0]
		kd := tree.Search(q, 1, 50) // bounded: approximate
		if len(kd) == 1 && kd[0].TrainIdx == bf.TrainIdx {
			agree++
		}
	}
	if agree < trials/2 {
		t.Errorf("approximate search agreed only %d/%d times", agree, trials)
	}
}

func TestKDTreeNilAndEmpty(t *testing.T) {
	if NewKDTree(nil) != nil {
		t.Error("empty tree should be nil")
	}
	var tree *KDTree
	if got := tree.Search([]float32{1}, 3, 0); got != nil {
		t.Errorf("nil tree search = %v", got)
	}
}
