package match

import (
	"math"
	"sort"
	"testing"

	"snmatch/internal/features"
	"snmatch/internal/rng"
)

func floatSet(desc ...[]float32) *features.Set {
	s := &features.Set{Float: desc}
	for range desc {
		s.Keypoints = append(s.Keypoints, features.Keypoint{})
	}
	return s
}

func binarySet(desc ...[]byte) *features.Set {
	s := &features.Set{Binary: desc}
	for range desc {
		s.Keypoints = append(s.Keypoints, features.Keypoint{})
	}
	return s
}

func TestKNNFloatOrdering(t *testing.T) {
	q := floatSet([]float32{0, 0})
	tr := floatSet([]float32{3, 0}, []float32{1, 0}, []float32{2, 0})
	knn := KNN(q, tr, 3)
	if len(knn) != 1 || len(knn[0]) != 3 {
		t.Fatalf("knn shape wrong: %v", knn)
	}
	if knn[0][0].TrainIdx != 1 || knn[0][1].TrainIdx != 2 || knn[0][2].TrainIdx != 0 {
		t.Errorf("order = %v", knn[0])
	}
	if knn[0][0].Distance != 1 {
		t.Errorf("distance = %v", knn[0][0].Distance)
	}
}

func TestKNNBinary(t *testing.T) {
	q := binarySet([]byte{0x00})
	tr := binarySet([]byte{0xff}, []byte{0x01}, []byte{0x0f})
	knn := KNN(q, tr, 2)
	if knn[0][0].TrainIdx != 1 || knn[0][0].Distance != 1 {
		t.Errorf("nearest = %+v", knn[0][0])
	}
	if knn[0][1].TrainIdx != 2 || knn[0][1].Distance != 4 {
		t.Errorf("second = %+v", knn[0][1])
	}
}

func TestKNNMixedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mixed representations did not panic")
		}
	}()
	KNN(floatSet([]float32{1}), binarySet([]byte{1}), 1)
}

func TestKNNKClamp(t *testing.T) {
	q := floatSet([]float32{0})
	tr := floatSet([]float32{1}, []float32{2})
	knn := KNN(q, tr, 0) // k < 1 behaves as k = 1
	if len(knn[0]) != 1 {
		t.Errorf("k clamp failed: %v", knn[0])
	}
	knn = KNN(q, tr, 10) // k beyond train size returns all
	if len(knn[0]) != 2 {
		t.Errorf("k overflow: %v", knn[0])
	}
}

func TestBest(t *testing.T) {
	q := floatSet([]float32{0}, []float32{10})
	tr := floatSet([]float32{1}, []float32{9})
	best := Best(q, tr)
	if len(best) != 2 || best[0].TrainIdx != 0 || best[1].TrainIdx != 1 {
		t.Errorf("best = %v", best)
	}
}

func TestRatioTest(t *testing.T) {
	knn := [][]Match{
		{{QueryIdx: 0, TrainIdx: 0, Distance: 1}, {QueryIdx: 0, TrainIdx: 1, Distance: 10}}, // passes
		{{QueryIdx: 1, TrainIdx: 2, Distance: 5}, {QueryIdx: 1, TrainIdx: 3, Distance: 6}},  // fails at 0.75
		{{QueryIdx: 2, TrainIdx: 4, Distance: 1}},                                           // too few neighbours
	}
	got := RatioTest(knn, 0.75)
	if len(got) != 1 || got[0].QueryIdx != 0 {
		t.Errorf("ratio test = %v", got)
	}
	// Stricter threshold removes everything.
	if got := RatioTest(knn, 0.05); len(got) != 0 {
		t.Errorf("strict ratio test = %v", got)
	}
}

func TestCrossCheck(t *testing.T) {
	ab := []Match{{QueryIdx: 0, TrainIdx: 1}, {QueryIdx: 1, TrainIdx: 0}}
	ba := []Match{{QueryIdx: 1, TrainIdx: 0}, {QueryIdx: 0, TrainIdx: 5}}
	got := CrossCheck(ab, ba)
	if len(got) != 1 || got[0].QueryIdx != 0 || got[0].TrainIdx != 1 {
		t.Errorf("cross check = %v", got)
	}
}

func TestGoodMatchCountSelfMatch(t *testing.T) {
	r := rng.New(5)
	var descs [][]float32
	for i := 0; i < 20; i++ {
		d := make([]float32, 16)
		for j := range d {
			d[j] = float32(r.Float64())
		}
		descs = append(descs, d)
	}
	a := floatSet(descs...)
	if got := GoodMatchCount(a, a, 0.75); got == 0 {
		t.Error("self match found no good matches")
	}
	empty := floatSet()
	if got := GoodMatchCount(empty, a, 0.75); got != 0 {
		t.Errorf("empty query matches = %d", got)
	}
	single := floatSet(descs[0])
	if got := GoodMatchCount(a, single, 0.75); got != 0 {
		t.Errorf("single train matches = %d", got)
	}
}

// legacyKNN is the pre-flat-engine reference: build every candidate,
// sort by (distance, TrainIdx), cut to k. The optimised KNN must match
// it match-for-match.
func legacyKNN(query, train *features.Set, k int) [][]Match {
	if k < 1 {
		k = 1
	}
	out := make([][]Match, query.Len())
	for qi := 0; qi < query.Len(); qi++ {
		cands := make([]Match, 0, train.Len())
		for ti := 0; ti < train.Len(); ti++ {
			var d float32
			if query.IsBinary() {
				d = float32(features.Hamming(query.Binary[qi], train.Binary[ti]))
			} else {
				d = features.L2(query.Float[qi], train.Float[ti])
			}
			cands = append(cands, Match{QueryIdx: qi, TrainIdx: ti, Distance: d})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].Distance != cands[j].Distance {
				return cands[i].Distance < cands[j].Distance
			}
			return cands[i].TrainIdx < cands[j].TrainIdx
		})
		if len(cands) > k {
			cands = cands[:k]
		}
		out[qi] = cands
	}
	return out
}

func legacyGoodMatchCount(query, train *features.Set, ratio float64) int {
	if query.Len() == 0 || train.Len() < 2 {
		return 0
	}
	return len(RatioTest(legacyKNN(query, train, 2), ratio))
}

// randomFloatSet draws integer-valued components so that distances are
// exact and repeated descriptors produce genuine distance ties.
func randomFloatSet(r *rng.RNG, n, dim, vocab int) *features.Set {
	s := &features.Set{}
	for i := 0; i < n; i++ {
		d := make([]float32, dim)
		for j := range d {
			d[j] = float32(r.Intn(vocab))
		}
		s.Float = append(s.Float, d)
		s.Keypoints = append(s.Keypoints, features.Keypoint{})
	}
	return s
}

func randomBinarySet(r *rng.RNG, n, bytes, vocab int) *features.Set {
	s := &features.Set{}
	for i := 0; i < n; i++ {
		d := make([]byte, bytes)
		for j := range d {
			d[j] = byte(r.Intn(vocab))
		}
		s.Binary = append(s.Binary, d)
		s.Keypoints = append(s.Keypoints, features.Keypoint{})
	}
	return s
}

func knnEqual(t *testing.T, label string, want, got [][]Match) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: query count %d != %d", label, len(got), len(want))
	}
	for qi := range want {
		if len(want[qi]) != len(got[qi]) {
			t.Fatalf("%s q%d: %d matches, want %d", label, qi, len(got[qi]), len(want[qi]))
		}
		for i := range want[qi] {
			w, g := want[qi][i], got[qi][i]
			if w.QueryIdx != g.QueryIdx || w.TrainIdx != g.TrainIdx ||
				math.Float32bits(w.Distance) != math.Float32bits(g.Distance) {
				t.Errorf("%s q%d rank %d: got %+v, want %+v", label, qi, i, g, w)
			}
		}
	}
}

// TestKNNMatchesLegacyRandomized is the exact-equivalence contract of
// the flat engine: constant-space selection over squared distances must
// reproduce the legacy sort-based path match-for-match, including
// distance ties, for float and binary sets at every k regime (register
// path k <= 2, bounded-insertion path k > 2, k beyond train size).
func TestKNNMatchesLegacyRandomized(t *testing.T) {
	r := rng.New(71)
	for trial := 0; trial < 30; trial++ {
		nq, nt := 1+r.Intn(12), 1+r.Intn(15)
		// Small vocabularies force many exact ties.
		vocab := 2 + r.Intn(4)
		fq := randomFloatSet(r, nq, 8, vocab)
		ft := randomFloatSet(r, nt, 8, vocab)
		bq := randomBinarySet(r, nq, 4, vocab)
		bt := randomBinarySet(r, nt, 4, vocab)
		if trial%2 == 0 {
			// Half the trials run the packed fast paths.
			fq.Pack()
			ft.Pack()
			bq.Pack()
			bt.Pack()
		}
		for _, k := range []int{1, 2, 3, 5, nt, nt + 7} {
			knnEqual(t, "float", legacyKNN(fq, ft, k), KNN(fq, ft, k))
			knnEqual(t, "binary", legacyKNN(bq, bt, k), KNN(bq, bt, k))
		}
	}
}

func TestKNNMatchesLegacyEdgeCases(t *testing.T) {
	r := rng.New(5)
	empty := floatSet()
	one := randomFloatSet(r, 1, 4, 5)
	many := randomFloatSet(r, 6, 4, 5)
	for _, k := range []int{1, 2, 4} {
		knnEqual(t, "empty query", legacyKNN(empty, many, k), KNN(empty, many, k))
		knnEqual(t, "empty train", legacyKNN(many, empty, k), KNN(many, empty, k))
		knnEqual(t, "single train", legacyKNN(many, one, k), KNN(many, one, k))
		knnEqual(t, "single query", legacyKNN(one, many, k), KNN(one, many, k))
	}
	// Duplicate descriptors: every distance ties, order falls back to
	// TrainIdx everywhere.
	dup := floatSet([]float32{1, 1}, []float32{1, 1}, []float32{1, 1}, []float32{1, 1})
	knnEqual(t, "all ties", legacyKNN(dup, dup, 3), KNN(dup, dup, 3))
}

func TestGoodMatchCountMatchesLegacyRandomized(t *testing.T) {
	r := rng.New(97)
	for trial := 0; trial < 40; trial++ {
		nq, nt := r.Intn(10), r.Intn(12)
		vocab := 2 + r.Intn(5)
		fq := randomFloatSet(r, nq, 8, vocab)
		ft := randomFloatSet(r, nt, 8, vocab)
		bq := randomBinarySet(r, nq, 4, vocab)
		bt := randomBinarySet(r, nt, 4, vocab)
		if trial%2 == 0 {
			fq.Pack()
			ft.Pack()
			bq.Pack()
			bt.Pack()
		}
		for _, ratio := range []float64{0.5, 0.75, 1.0} {
			if got, want := GoodMatchCount(fq, ft, ratio), legacyGoodMatchCount(fq, ft, ratio); got != want {
				t.Errorf("trial %d ratio %v float: %d != %d", trial, ratio, got, want)
			}
			if got, want := GoodMatchCount(bq, bt, ratio), legacyGoodMatchCount(bq, bt, ratio); got != want {
				t.Errorf("trial %d ratio %v binary: %d != %d", trial, ratio, got, want)
			}
		}
	}
}

func TestGoodMatchCountAllocationFree(t *testing.T) {
	r := rng.New(12)
	fq := randomFloatSet(r, 20, 16, 7).Pack()
	ft := randomFloatSet(r, 25, 16, 7).Pack()
	bq := randomBinarySet(r, 20, 8, 200).Pack()
	bt := randomBinarySet(r, 25, 8, 200).Pack()
	if n := testing.AllocsPerRun(50, func() { GoodMatchCount(fq, ft, 0.5) }); n != 0 {
		t.Errorf("float GoodMatchCount allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(50, func() { GoodMatchCount(bq, bt, 0.5) }); n != 0 {
		t.Errorf("binary GoodMatchCount allocates %v per run", n)
	}
}

func TestKDTreeSetSharesPackedStorage(t *testing.T) {
	r := rng.New(31)
	s := randomFloatSet(r, 40, 8, 100).Pack()
	tree := NewKDTreeSet(s)
	if tree == nil {
		t.Fatal("nil tree from packed set")
	}
	q := make([]float32, 8)
	for j := range q {
		q[j] = float32(r.Intn(100))
	}
	bf := KNN(floatSet(q), s, 3)[0]
	kd := tree.Search(q, 3, 0)
	for i := range kd {
		if math.Float32bits(kd[i].Distance) != math.Float32bits(bf[i].Distance) {
			t.Errorf("rank %d: kd %v vs bf %v", i, kd[i].Distance, bf[i].Distance)
		}
	}
	if NewKDTreeSet(&features.Set{}) != nil {
		t.Error("empty set should build nil tree")
	}
	if NewKDTreeSet(randomBinarySet(r, 3, 4, 9)) != nil {
		t.Error("binary set should build nil tree")
	}
}

func TestKDTreeExactAgreesWithBruteForce(t *testing.T) {
	r := rng.New(11)
	var descs [][]float32
	for i := 0; i < 100; i++ {
		d := make([]float32, 8)
		for j := range d {
			d[j] = float32(r.Float64() * 10)
		}
		descs = append(descs, d)
	}
	tree := NewKDTree(descs)
	train := floatSet(descs...)
	for trial := 0; trial < 20; trial++ {
		q := make([]float32, 8)
		for j := range q {
			q[j] = float32(r.Float64() * 10)
		}
		bf := KNN(floatSet(q), train, 3)[0]
		kd := tree.Search(q, 3, 0)
		if len(kd) != 3 {
			t.Fatalf("kd results = %d", len(kd))
		}
		for i := range kd {
			if math.Abs(float64(kd[i].Distance-bf[i].Distance)) > 1e-4 {
				t.Errorf("trial %d rank %d: kd %v vs bf %v", trial, i, kd[i].Distance, bf[i].Distance)
			}
		}
	}
}

func TestKDTreeBoundedChecksStillReasonable(t *testing.T) {
	r := rng.New(13)
	var descs [][]float32
	for i := 0; i < 500; i++ {
		d := make([]float32, 8)
		for j := range d {
			d[j] = float32(r.Float64())
		}
		descs = append(descs, d)
	}
	tree := NewKDTree(descs)
	train := floatSet(descs...)
	agree := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		q := make([]float32, 8)
		for j := range q {
			q[j] = float32(r.Float64())
		}
		bf := KNN(floatSet(q), train, 1)[0][0]
		kd := tree.Search(q, 1, 50) // bounded: approximate
		if len(kd) == 1 && kd[0].TrainIdx == bf.TrainIdx {
			agree++
		}
	}
	if agree < trials/2 {
		t.Errorf("approximate search agreed only %d/%d times", agree, trials)
	}
}

func TestKDTreeNilAndEmpty(t *testing.T) {
	if NewKDTree(nil) != nil {
		t.Error("empty tree should be nil")
	}
	var tree *KDTree
	if got := tree.Search([]float32{1}, 3, 0); got != nil {
		t.Errorf("nil tree search = %v", got)
	}
}
