// Package match implements descriptor matching: brute-force kNN with L2
// or Hamming distance, Lowe's ratio test, cross-checking, and a KD-tree
// approximate matcher standing in for FLANN in the ablation benches.
//
// The brute-force kernels are allocation-free in steady state: distances
// are compared in the squared (L2) or integer (Hamming) domain with the
// square root deferred to the API boundary, the 2-NN hot path tracks
// best/second-best in registers instead of sorting a candidate slice,
// and word-packed descriptor rows (features.Packed) are used when the
// sets carry them.
package match

import (
	"math"

	"snmatch/internal/features"
)

// Match pairs a query descriptor with a train descriptor.
type Match struct {
	QueryIdx int
	TrainIdx int
	Distance float32
}

// checkRepresentations panics on mixed float/binary matching, mirroring
// OpenCV's BFMatcher contract.
func checkRepresentations(query, train *features.Set) {
	if query.IsBinary() != train.IsBinary() && query.Len() > 0 && train.Len() > 0 {
		panic("match: mixed descriptor representations")
	}
}

// best2Float returns the squared distances and train indices of the two
// nearest train descriptors to the qi-th query descriptor. Found reports
// how many neighbours exist (min(2, train.Len())). Ties keep the lower
// TrainIdx first, matching the sort order of the legacy candidate path.
func best2Float(query, train *features.Set, qi int) (s1, s2 float32, i1, i2, found int) {
	s1, s2 = inf32, inf32
	i1, i2 = -1, -1
	n := train.Len()
	if qp, tp := query.Packed, train.Packed; qp != nil && tp != nil && tp.Dim > 0 {
		q := qp.FloatRow(qi)
		dim := tp.Dim
		data := tp.Floats
		for ti := 0; ti < n; ti++ {
			d := features.L2Squared(q, data[ti*dim:(ti+1)*dim])
			if d < s1 {
				s2, i2 = s1, i1
				s1, i1 = d, ti
			} else if d < s2 {
				s2, i2 = d, ti
			}
		}
	} else {
		q := query.Float[qi]
		for ti := 0; ti < n; ti++ {
			d := features.L2Squared(q, train.Float[ti])
			if d < s1 {
				s2, i2 = s1, i1
				s1, i1 = d, ti
			} else if d < s2 {
				s2, i2 = d, ti
			}
		}
	}
	return s1, s2, i1, i2, neighbours(i1, i2)
}

// neighbours counts how many of the two best slots were filled.
func neighbours(i1, i2 int) int {
	switch {
	case i2 >= 0:
		return 2
	case i1 >= 0:
		return 1
	}
	return 0
}

// best2Binary is best2Float over Hamming distance (integer domain).
func best2Binary(query, train *features.Set, qi int) (s1, s2, i1, i2, found int) {
	s1, s2 = math.MaxInt, math.MaxInt
	i1, i2 = -1, -1
	n := train.Len()
	if qp, tp := query.Packed, train.Packed; qp != nil && tp != nil && tp.WordsPerRow > 0 {
		q := qp.WordRow(qi)
		wpr := tp.WordsPerRow
		words := tp.Words
		for ti := 0; ti < n; ti++ {
			d := features.HammingWords(q, words[ti*wpr:(ti+1)*wpr])
			if d < s1 {
				s2, i2 = s1, i1
				s1, i1 = d, ti
			} else if d < s2 {
				s2, i2 = d, ti
			}
		}
	} else {
		q := query.Binary[qi]
		for ti := 0; ti < n; ti++ {
			d := features.Hamming(q, train.Binary[ti])
			if d < s1 {
				s2, i2 = s1, i1
				s1, i1 = d, ti
			} else if d < s2 {
				s2, i2 = d, ti
			}
		}
	}
	return s1, s2, i1, i2, neighbours(i1, i2)
}

// inf32 is the float32 +Inf used to seed distance minima.
var inf32 = float32(math.Inf(1))

// scored is a candidate during bounded top-k selection. key is the
// squared L2 distance for float sets and the integer Hamming distance
// (exactly representable in float32) for binary sets.
type scored struct {
	key float32
	ti  int
}

// KNN returns, for every query descriptor, its k nearest train
// descriptors by brute force, sorted by increasing distance with ties
// broken on the lower TrainIdx. Binary sets use Hamming distance, float
// sets L2. Both sets must have the same descriptor representation.
//
// Selection is constant-space per query: k <= 2 tracks best/second-best
// in registers, larger k inserts into one k-sized scratch buffer shared
// across the query sweep; no train.Len()-sized candidate slice is built.
//
// Float ordering note: candidates are ranked by squared distance (the
// square root is taken once per reported match). When two distinct
// squared distances round to the same float32 square root — adjacent
// representable values, essentially never with real descriptors — the
// reported Distances still equal a sqrt-domain sort's exactly, but the
// tie-broken TrainIdx order may differ from one. Distance-dependent
// consumers (RatioTest, GoodMatchCount, the descriptor pipeline) are
// unaffected.
func KNN(query, train *features.Set, k int) [][]Match {
	checkRepresentations(query, train)
	if k < 1 {
		k = 1
	}
	out := make([][]Match, query.Len())
	if k <= 2 {
		for qi := 0; qi < query.Len(); qi++ {
			ms := make([]Match, 0, k)
			if train.IsBinary() {
				s1, s2, i1, i2, found := best2Binary(query, train, qi)
				if found >= 1 {
					ms = append(ms, Match{QueryIdx: qi, TrainIdx: i1, Distance: float32(s1)})
				}
				if k == 2 && found >= 2 {
					ms = append(ms, Match{QueryIdx: qi, TrainIdx: i2, Distance: float32(s2)})
				}
			} else {
				s1, s2, i1, i2, found := best2Float(query, train, qi)
				if found >= 1 {
					ms = append(ms, Match{QueryIdx: qi, TrainIdx: i1, Distance: sqrt32(s1)})
				}
				if k == 2 && found >= 2 {
					ms = append(ms, Match{QueryIdx: qi, TrainIdx: i2, Distance: sqrt32(s2)})
				}
			}
			out[qi] = ms
		}
		return out
	}

	// General k: one bounded insertion buffer reused across queries.
	buf := make([]scored, 0, k)
	for qi := 0; qi < query.Len(); qi++ {
		buf = buf[:0]
		for ti := 0; ti < train.Len(); ti++ {
			var key float32
			if train.IsBinary() {
				key = float32(features.Hamming(query.Binary[qi], train.Binary[ti]))
			} else {
				key = features.L2Squared(query.Float[qi], train.Float[ti])
			}
			insertBounded(&buf, k, scored{key: key, ti: ti})
		}
		ms := make([]Match, len(buf))
		for i, c := range buf {
			d := c.key
			if !train.IsBinary() {
				d = sqrt32(d)
			}
			ms[i] = Match{QueryIdx: qi, TrainIdx: c.ti, Distance: d}
		}
		out[qi] = ms
	}
	return out
}

// insertBounded inserts c into the (key, ti)-sorted buffer, keeping at
// most k entries. Later arrivals with an equal key rank after earlier
// ones, which preserves the ascending-TrainIdx tie-break because train
// descriptors are scanned in index order.
func insertBounded(buf *[]scored, k int, c scored) {
	b := *buf
	if len(b) == k && c.key >= b[len(b)-1].key {
		return
	}
	pos := len(b)
	for pos > 0 && b[pos-1].key > c.key {
		pos--
	}
	if len(b) < k {
		b = append(b, scored{})
	}
	copy(b[pos+1:], b[pos:])
	b[pos] = c
	*buf = b
}

// Best returns the single nearest neighbour for every query descriptor.
func Best(query, train *features.Set) []Match {
	knn := KNN(query, train, 1)
	out := make([]Match, 0, len(knn))
	for _, ms := range knn {
		if len(ms) > 0 {
			out = append(out, ms[0])
		}
	}
	return out
}

// RatioTest applies Lowe's ratio test to 2-NN results: a match is kept
// when its distance is below ratio times the distance of the second
// nearest neighbour. Queries with fewer than two neighbours are dropped.
func RatioTest(knn [][]Match, ratio float64) []Match {
	var out []Match
	for _, ms := range knn {
		if len(ms) < 2 {
			continue
		}
		if float64(ms[0].Distance) < ratio*float64(ms[1].Distance) {
			out = append(out, ms[0])
		}
	}
	return out
}

// CrossCheck keeps matches (q, t) from ab for which ba maps t back to q,
// emulating OpenCV's BFMatcher crossCheck mode.
func CrossCheck(ab, ba []Match) []Match {
	back := make(map[int]int, len(ba))
	for _, m := range ba {
		back[m.QueryIdx] = m.TrainIdx
	}
	var out []Match
	for _, m := range ab {
		if q, ok := back[m.TrainIdx]; ok && q == m.QueryIdx {
			out = append(out, m)
		}
	}
	return out
}

// GoodMatchCount is the similarity score the descriptor pipeline uses for
// a gallery view: the number of ratio-test survivors over a 2-NN sweep.
// It allocates nothing: best and second-best are tracked in registers
// and the square root is taken only for the two winners of each query.
func GoodMatchCount(query, train *features.Set, ratio float64) int {
	if query.Len() == 0 || train.Len() < 2 {
		return 0
	}
	checkRepresentations(query, train)
	count := 0
	if train.IsBinary() {
		for qi := 0; qi < query.Len(); qi++ {
			s1, s2, _, _, _ := best2Binary(query, train, qi)
			if float64(float32(s1)) < ratio*float64(float32(s2)) {
				count++
			}
		}
	} else {
		for qi := 0; qi < query.Len(); qi++ {
			s1, s2, _, _, _ := best2Float(query, train, qi)
			if float64(sqrt32(s1)) < ratio*float64(sqrt32(s2)) {
				count++
			}
		}
	}
	return count
}
