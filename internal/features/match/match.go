// Package match implements descriptor matching: brute-force kNN with L2
// or Hamming distance, Lowe's ratio test, cross-checking, and a KD-tree
// approximate matcher standing in for FLANN in the ablation benches.
package match

import (
	"sort"

	"snmatch/internal/features"
)

// Match pairs a query descriptor with a train descriptor.
type Match struct {
	QueryIdx int
	TrainIdx int
	Distance float32
}

// KNN returns, for every query descriptor, its k nearest train
// descriptors by brute force, sorted by increasing distance. Binary sets
// use Hamming distance, float sets L2. Both sets must have the same
// descriptor representation.
func KNN(query, train *features.Set, k int) [][]Match {
	if query.IsBinary() != train.IsBinary() && query.Len() > 0 && train.Len() > 0 {
		panic("match: mixed descriptor representations")
	}
	if k < 1 {
		k = 1
	}
	out := make([][]Match, query.Len())
	for qi := 0; qi < query.Len(); qi++ {
		cands := make([]Match, 0, train.Len())
		for ti := 0; ti < train.Len(); ti++ {
			var d float32
			if query.IsBinary() {
				d = float32(features.Hamming(query.Binary[qi], train.Binary[ti]))
			} else {
				d = features.L2(query.Float[qi], train.Float[ti])
			}
			cands = append(cands, Match{QueryIdx: qi, TrainIdx: ti, Distance: d})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].Distance != cands[j].Distance {
				return cands[i].Distance < cands[j].Distance
			}
			return cands[i].TrainIdx < cands[j].TrainIdx
		})
		if len(cands) > k {
			cands = cands[:k]
		}
		out[qi] = cands
	}
	return out
}

// Best returns the single nearest neighbour for every query descriptor.
func Best(query, train *features.Set) []Match {
	knn := KNN(query, train, 1)
	out := make([]Match, 0, len(knn))
	for _, ms := range knn {
		if len(ms) > 0 {
			out = append(out, ms[0])
		}
	}
	return out
}

// RatioTest applies Lowe's ratio test to 2-NN results: a match is kept
// when its distance is below ratio times the distance of the second
// nearest neighbour. Queries with fewer than two neighbours are dropped.
func RatioTest(knn [][]Match, ratio float64) []Match {
	var out []Match
	for _, ms := range knn {
		if len(ms) < 2 {
			continue
		}
		if float64(ms[0].Distance) < ratio*float64(ms[1].Distance) {
			out = append(out, ms[0])
		}
	}
	return out
}

// CrossCheck keeps matches (q, t) from ab for which ba maps t back to q,
// emulating OpenCV's BFMatcher crossCheck mode.
func CrossCheck(ab, ba []Match) []Match {
	back := make(map[int]int, len(ba))
	for _, m := range ba {
		back[m.QueryIdx] = m.TrainIdx
	}
	var out []Match
	for _, m := range ab {
		if q, ok := back[m.TrainIdx]; ok && q == m.QueryIdx {
			out = append(out, m)
		}
	}
	return out
}

// GoodMatchCount is the similarity score the descriptor pipeline uses for
// a gallery view: the number of ratio-test survivors.
func GoodMatchCount(query, train *features.Set, ratio float64) int {
	if query.Len() == 0 || train.Len() < 2 {
		return 0
	}
	return len(RatioTest(KNN(query, train, 2), ratio))
}
