package features

import "snmatch/internal/arena"

// emptyByteRows is the shared zero-length row table handed to recycled
// binary sets, preserving the extractor contract that a binary set's
// Binary field is non-nil even when no keypoints survive. Appends copy
// out of it (capacity 0), so sharing is safe.
var emptyByteRows = [][]byte{}

// Scratch is the per-worker recycling state for descriptor-set
// assembly: the arena that backs descriptor rows and packed matrices,
// plus the append spines (keypoints, float/binary row tables) that grow
// to a workload's steady-state size once and are then reused for every
// subsequent extraction. A Scratch is single-owner: exactly one
// extraction may be in flight between Resets of its arena, and the Set
// it produced is invalid after that Reset. A nil *Scratch (or a nil
// Arena) degrades to plain heap allocation, so extractors thread it
// unconditionally.
type Scratch struct {
	A *arena.Arena

	kps  []Keypoint
	rows [][]float32
	bins [][]byte
}

func (sc *Scratch) arena() *arena.Arena {
	if sc == nil {
		return nil
	}
	return sc.A
}

// NewFloatSet returns an empty float-descriptor set whose header comes
// from the arena and whose append spines are the scratch's recycled
// ones. Callers append keypoints/rows and must hand the set to Finish.
func (sc *Scratch) NewFloatSet() *Set {
	if sc == nil {
		return &Set{}
	}
	s := arena.NewOf[Set](sc.A)
	s.Keypoints = sc.kps[:0]
	s.Float = sc.rows[:0]
	return s
}

// NewBinarySet is NewFloatSet for binary descriptors. The Binary row
// table is non-nil even while empty, matching the fresh extractors.
func (sc *Scratch) NewBinarySet() *Set {
	if sc == nil {
		return &Set{Binary: [][]byte{}}
	}
	s := arena.NewOf[Set](sc.A)
	s.Keypoints = sc.kps[:0]
	if sc.bins != nil {
		s.Binary = sc.bins[:0]
	} else {
		s.Binary = emptyByteRows
	}
	return s
}

// Finish packs the assembled set and saves its (possibly grown) append
// spines back into the scratch so the next extraction reuses them. It
// must be called exactly once per set produced by NewFloatSet or
// NewBinarySet; the set stays valid until the scratch's arena resets.
func (sc *Scratch) Finish(s *Set) *Set {
	if sc == nil {
		return s.Pack()
	}
	s.PackIn(sc.A)
	sc.kps = s.Keypoints[:0]
	if s.IsBinary() {
		if cap(s.Binary) > 0 {
			sc.bins = s.Binary[:0]
		}
	} else {
		sc.rows = s.Float[:0]
	}
	return s
}
