// Package features defines the shared keypoint and descriptor types used
// by the detector/descriptor implementations (FAST, BRIEF, ORB, SIFT,
// SURF) and by the matchers.
package features

import (
	"encoding/binary"
	"math"
	"math/bits"

	"snmatch/internal/arena"
)

// Keypoint is an interest point in image coordinates of the original
// (level-0) image.
type Keypoint struct {
	X, Y     float32
	Size     float32 // diameter of the meaningful neighbourhood
	Angle    float32 // orientation in radians in [0, 2pi), or -1 if undefined
	Response float32 // detector response used for ranking
	Octave   int     // pyramid level the point was detected on
}

// Packed is the flat, matcher-friendly layout of a descriptor set: float
// descriptors live in one contiguous row-major matrix with precomputed
// squared norms, binary descriptors as word-packed rows so Hamming
// distance runs on 64-bit popcounts instead of per-byte lookups. It is
// built once (at extraction time, or explicitly via Set.Pack) and read
// concurrently afterwards.
type Packed struct {
	N   int // number of descriptors (rows)
	Dim int // float components per row (0 for binary sets)

	// Float layout: row i occupies Floats[i*Dim : (i+1)*Dim].
	Floats []float32
	Norms  []float32 // squared L2 norm per row

	// Binary layout: row i occupies Words[i*WordsPerRow : (i+1)*WordsPerRow],
	// little-endian packed from the byte descriptor and zero-padded, so
	// XOR+popcount over words equals the byte-wise Hamming distance.
	// RowBytes is the original byte width of a binary descriptor (0 for
	// float sets); it is what UnpackWords needs to strip the zero padding
	// when a packed block is restored from a snapshot.
	WordsPerRow int
	RowBytes    int
	Words       []uint64

	// Borrowed marks Floats/Norms/Words as aliases of storage the set
	// does not own — a memory-mapped snapshot blob. Borrowed storage is
	// read-only and must never be recycled through an arena or pool, and
	// it dies with its mapping, not with the set; PackIn is already a
	// no-op on restored sets, so the flag exists for any future code
	// that would otherwise reclaim or rewrite packed matrices in place.
	Borrowed bool
}

// FloatRow returns the i-th packed float descriptor.
func (p *Packed) FloatRow(i int) []float32 { return p.Floats[i*p.Dim : (i+1)*p.Dim] }

// WordRow returns the i-th word-packed binary descriptor.
func (p *Packed) WordRow(i int) []uint64 {
	return p.Words[i*p.WordsPerRow : (i+1)*p.WordsPerRow]
}

// Set is a collection of keypoints with their descriptors. Exactly one of
// Float and Binary is non-nil for non-empty sets. Packed is the flat
// mirror of the same descriptors; extractors build it before returning,
// and Pack (re)builds it for hand-assembled sets.
type Set struct {
	Keypoints []Keypoint
	Float     [][]float32
	Binary    [][]byte
	Packed    *Packed
}

// Len returns the number of descriptors in the set.
func (s *Set) Len() int { return len(s.Keypoints) }

// IsBinary reports whether the set stores binary descriptors.
func (s *Set) IsBinary() bool { return s.Binary != nil }

// Pack builds the flat descriptor layout. It is idempotent and must be
// called before the set is shared across goroutines (extractors already
// do); matchers fall back to the row-slice layout when Packed is nil.
func (s *Set) Pack() *Set { return s.PackIn(nil) }

// PackIn is Pack with the packed header and matrices drawn from the
// arena — the query-path form whose product lives only until the
// extraction context resets. A nil arena is exactly Pack.
func (s *Set) PackIn(a *arena.Arena) *Set {
	if s.Packed != nil {
		return s
	}
	p := arena.NewOf[Packed](a)
	p.N = s.Len()
	if s.IsBinary() {
		nb := 0
		if len(s.Binary) > 0 {
			nb = len(s.Binary[0])
		}
		p.RowBytes = nb
		p.WordsPerRow = (nb + 7) / 8
		p.Words = arena.Slice[uint64](a, p.N*p.WordsPerRow)
		for i, row := range s.Binary {
			packWords(p.Words[i*p.WordsPerRow:(i+1)*p.WordsPerRow], row)
		}
	} else if len(s.Float) > 0 {
		p.Dim = len(s.Float[0])
		p.Floats = arena.Slice[float32](a, p.N*p.Dim)
		p.Norms = arena.Slice[float32](a, p.N)
		for i, row := range s.Float {
			copy(p.Floats[i*p.Dim:], row)
			p.Norms[i] = L2Squared(row, nil)
		}
	}
	s.Packed = p
	return s
}

// packWords packs a byte descriptor little-endian into 64-bit words,
// zero-padding the tail.
func packWords(dst []uint64, src []byte) {
	for w := range dst {
		var v uint64
		base := w * 8
		for b := 0; b < 8 && base+b < len(src); b++ {
			v |= uint64(src[base+b]) << (8 * b)
		}
		dst[w] = v
	}
}

// UnpackWords is the inverse of the word packing performed by Pack: it
// writes len(dst) bytes of the little-endian packed row back out,
// discarding the zero padding beyond the original byte width. Whole
// words go out as single 8-byte stores — this runs once per row when a
// snapshot restores a binary gallery, so it is load-path hot.
func UnpackWords(dst []byte, src []uint64) {
	for len(dst) >= 8 && len(src) > 0 {
		binary.LittleEndian.PutUint64(dst, src[0])
		dst, src = dst[8:], src[1:]
	}
	if len(dst) > 0 && len(src) > 0 {
		w := src[0]
		for i := range dst {
			dst[i] = byte(w >> (8 * i))
		}
	}
}

// RestoreSet rebuilds a Set from a keypoint slice and a packed
// descriptor block, the two pieces a gallery snapshot stores. Float rows
// alias the packed matrix (so no storage is duplicated); binary rows are
// unpacked from the words using the recorded RowBytes. The result is
// interchangeable with the extractor-produced original: Pack is a no-op
// on it and every matcher path sees bit-identical descriptors.
func RestoreSet(kps []Keypoint, p *Packed) *Set {
	return RestoreSetIn(nil, kps, p)
}

// RestoreAlloc amortises the restore-side allocations of loading a
// large gallery: pointer-stable chunked slabs for set headers, keypoint
// slices, row tables and unpacked binary bytes, carved sequentially so
// restoring N sets costs a handful of chunk allocations instead of
// ~5N small ones. Everything carved lives exactly as long as the
// restored gallery; the zero value is ready to use, and a nil
// *RestoreAlloc degrades RestoreSetIn to plain RestoreSet.
type RestoreAlloc struct {
	sets   []Set
	packed []Packed
	kps    []Keypoint
	frows  [][]float32
	brows  [][]byte
	bytes  []byte
}

// carve takes n items off the slab, topping it up with chunk-sized
// blocks (chunk is per element type, chosen to keep blocks in the tens
// of kilobytes — oversizing just zeroes memory the restore never
// touches). The full slice expression keeps a stray append from
// bleeding into the next carve's storage; chunks are never grown in
// place, so previously carved slices (and pointers into them) stay
// valid.
func carve[T any](buf *[]T, n, chunk int) []T {
	if n > len(*buf) {
		if n > chunk {
			chunk = n
		}
		*buf = make([]T, chunk)
	}
	out := (*buf)[:n:n]
	*buf = (*buf)[n:]
	return out
}

// Set carves one zeroed Set header.
func (a *RestoreAlloc) Set() *Set { return &carve(&a.sets, 1, 256)[0] }

// Packed carves one zeroed Packed header.
func (a *RestoreAlloc) Packed() *Packed { return &carve(&a.packed, 1, 256)[0] }

// Keypoints carves a keypoint slice of length n.
func (a *RestoreAlloc) Keypoints(n int) []Keypoint { return carve(&a.kps, n, 2048) }

// RestoreSetIn is RestoreSet drawing every allocation from the slab
// allocator (nil a = plain RestoreSet). Output is value-identical.
func RestoreSetIn(a *RestoreAlloc, kps []Keypoint, p *Packed) *Set {
	var s *Set
	if a != nil {
		s = a.Set()
	} else {
		s = &Set{}
	}
	s.Keypoints = kps
	s.Packed = p
	if p == nil || p.N == 0 {
		if p != nil && (p.RowBytes > 0 || p.Words != nil) {
			s.Binary = emptyByteRows // binary extractors return a non-nil empty row set
		}
		return s
	}
	if p.WordsPerRow > 0 || p.RowBytes > 0 {
		// One backing array for all rows (full slice expressions keep a
		// stray append from bleeding across row boundaries): restoring a
		// set costs one row-table and one backing carve, not N row makes.
		var backing []byte
		if a != nil {
			s.Binary = carve(&a.brows, p.N, 2048)
			backing = carve(&a.bytes, p.N*p.RowBytes, 1<<16)
		} else {
			s.Binary = make([][]byte, p.N)
			backing = make([]byte, p.N*p.RowBytes)
		}
		for i := 0; i < p.N; i++ {
			row := backing[i*p.RowBytes : (i+1)*p.RowBytes : (i+1)*p.RowBytes]
			UnpackWords(row, p.WordRow(i))
			s.Binary[i] = row
		}
		return s
	}
	if a != nil {
		s.Float = carve(&a.frows, p.N, 2048)
	} else {
		s.Float = make([][]float32, p.N)
	}
	for i := 0; i < p.N; i++ {
		s.Float[i] = p.FloatRow(i)
	}
	return s
}

// L2Squared returns the squared Euclidean distance between two float
// descriptors, accumulating in float32 component order — the exact
// arithmetic L2 performs before its square root. A nil b computes the
// squared norm of a.
func L2Squared(a, b []float32) float32 {
	var sum float32
	if b == nil {
		for _, v := range a {
			sum += v * v
		}
		return sum
	}
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// L2Squared2 computes the squared distances from q to two rows a and b
// in one interleaved pass. Each distance accumulates in the same
// component order as L2Squared, so the pair is bit-identical to two
// scalar calls while running two independent dependency chains — about
// twice the throughput on a scan that is latency-bound on the scalar
// accumulator.
func L2Squared2(q, a, b []float32) (float32, float32) {
	var s0, s1 float32
	for i, v := range q {
		d0 := v - a[i]
		s0 += d0 * d0
		d1 := v - b[i]
		s1 += d1 * d1
	}
	return s0, s1
}

// L2Squared4 is L2Squared2 over four rows: four independent
// accumulator chains, each still summing its components in scalar
// order, so every returned distance is bit-identical to a scalar call.
func L2Squared4(q, a, b, c, d []float32) (s0, s1, s2, s3 float32) {
	for i, v := range q {
		d0 := v - a[i]
		s0 += d0 * d0
		d1 := v - b[i]
		s1 += d1 * d1
		d2 := v - c[i]
		s2 += d2 * d2
		d3 := v - d[i]
		s3 += d3 * d3
	}
	return s0, s1, s2, s3
}

// L2 returns the Euclidean distance between two float descriptors.
func L2(a, b []float32) float32 {
	return float32(math.Sqrt(float64(L2Squared(a, b))))
}

// Hamming returns the number of differing bits between two binary
// descriptors of equal length. It stays byte-oriented for unpacked
// callers; packed sets should use HammingWords on their word rows.
func Hamming(a, b []byte) int {
	n := 0
	for i := range a {
		n += bits.OnesCount8(a[i] ^ b[i])
	}
	return n
}

// HammingWords returns the number of differing bits between two
// word-packed binary descriptors of equal length. On rows packed by
// Set.Pack it equals Hamming on the original bytes.
func HammingWords(a, b []uint64) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] ^ b[i])
	}
	return n
}

// SubBits extracts the width-bit substring starting at bit offset off
// from a word-packed binary row (little-endian bit order, matching
// packWords). width must be a divisor of 64 so a substring never spans
// a word boundary — the layout multi-index hashing relies on to key
// hash buckets straight off the packed words without re-assembly.
func SubBits(row []uint64, off, width uint) uint64 {
	mask := ^uint64(0)
	if width < 64 {
		mask = (uint64(1) << width) - 1
	}
	return (row[off/64] >> (off % 64)) & mask
}
