// Package features defines the shared keypoint and descriptor types used
// by the detector/descriptor implementations (FAST, BRIEF, ORB, SIFT,
// SURF) and by the matchers.
package features

import "math"

// Keypoint is an interest point in image coordinates of the original
// (level-0) image.
type Keypoint struct {
	X, Y     float32
	Size     float32 // diameter of the meaningful neighbourhood
	Angle    float32 // orientation in radians in [0, 2pi), or -1 if undefined
	Response float32 // detector response used for ranking
	Octave   int     // pyramid level the point was detected on
}

// Set is a collection of keypoints with their descriptors. Exactly one of
// Float and Binary is non-nil for non-empty sets.
type Set struct {
	Keypoints []Keypoint
	Float     [][]float32
	Binary    [][]byte
}

// Len returns the number of descriptors in the set.
func (s *Set) Len() int { return len(s.Keypoints) }

// IsBinary reports whether the set stores binary descriptors.
func (s *Set) IsBinary() bool { return s.Binary != nil }

// L2 returns the Euclidean distance between two float descriptors.
func L2(a, b []float32) float32 {
	var sum float32
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return float32(math.Sqrt(float64(sum)))
}

// Hamming returns the number of differing bits between two binary
// descriptors of equal length.
func Hamming(a, b []byte) int {
	n := 0
	for i := range a {
		n += popcount8(a[i] ^ b[i])
	}
	return n
}

func popcount8(x byte) int {
	// Nibble lookup keeps this free of math/bits for clarity.
	const table = "\x00\x01\x01\x02\x01\x02\x02\x03\x01\x02\x02\x03\x02\x03\x03\x04"
	return int(table[x&0xf]) + int(table[x>>4])
}
