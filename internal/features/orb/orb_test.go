package orb

import (
	"math"
	"testing"

	"snmatch/internal/features/match"
	"snmatch/internal/geom"
	"snmatch/internal/imaging"
	"snmatch/internal/rng"
)

// sceneImage builds a textured test image with blocks and shapes.
func sceneImage(seed uint64) *imaging.Gray {
	r := rng.New(seed)
	img := imaging.NewImageFilled(128, 128, imaging.C(40, 40, 40))
	for i := 0; i < 12; i++ {
		x := r.Intn(90) + 10
		y := r.Intn(90) + 10
		w := r.Intn(20) + 8
		h := r.Intn(20) + 8
		v := uint8(r.Intn(200) + 55)
		img.FillRect(geom.R(x, y, x+w, y+h), imaging.C(v, v, v))
	}
	return img.ToGray()
}

func TestExtractProducesDescriptors(t *testing.T) {
	set := Extract(sceneImage(1), Params{NFeatures: 100, FASTThreshold: 15})
	if set.Len() == 0 {
		t.Fatal("no ORB features")
	}
	if !set.IsBinary() {
		t.Fatal("ORB descriptors should be binary")
	}
	for i, d := range set.Binary {
		if len(d) != 32 {
			t.Fatalf("descriptor %d has %d bytes, want 32", i, len(d))
		}
	}
	if len(set.Keypoints) != len(set.Binary) {
		t.Fatalf("keypoints %d != descriptors %d", len(set.Keypoints), len(set.Binary))
	}
}

func TestExtractDeterministic(t *testing.T) {
	a := Extract(sceneImage(2), Params{NFeatures: 50, FASTThreshold: 15})
	b := Extract(sceneImage(2), Params{NFeatures: 50, FASTThreshold: 15})
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Binary {
		for j := range a.Binary[i] {
			if a.Binary[i][j] != b.Binary[i][j] {
				t.Fatal("descriptors not deterministic")
			}
		}
	}
}

func TestNFeaturesCap(t *testing.T) {
	set := Extract(sceneImage(3), Params{NFeatures: 10, FASTThreshold: 10})
	if set.Len() > 10 {
		t.Errorf("cap exceeded: %d", set.Len())
	}
}

func TestKeypointsWithinImage(t *testing.T) {
	set := Extract(sceneImage(4), Params{NFeatures: 200, FASTThreshold: 10})
	for _, kp := range set.Keypoints {
		if kp.X < 0 || kp.X >= 128 || kp.Y < 0 || kp.Y >= 128 {
			t.Fatalf("keypoint out of bounds: %+v", kp)
		}
		if kp.Angle < 0 || kp.Angle >= float32(2*math.Pi)+1e-3 {
			t.Fatalf("angle out of range: %v", kp.Angle)
		}
	}
}

func TestSelfMatchIsStrong(t *testing.T) {
	g := sceneImage(5)
	a := Extract(g, Params{NFeatures: 80, FASTThreshold: 15})
	b := Extract(g, Params{NFeatures: 80, FASTThreshold: 15})
	if a.Len() < 5 {
		t.Skip("too few features for a meaningful test")
	}
	best := match.Best(a, b)
	zeros := 0
	for _, m := range best {
		if m.Distance == 0 {
			zeros++
		}
	}
	if zeros < a.Len()/2 {
		t.Errorf("only %d/%d exact self matches", zeros, a.Len())
	}
}

func TestTranslatedImageMatches(t *testing.T) {
	g := sceneImage(6)
	// Translate content by (5, 3).
	img := g.ToImage()
	shifted := img.WarpAffine(geom.Translation(5, 3), img.W, img.H, imaging.C(40, 40, 40))
	a := Extract(g, Params{NFeatures: 120, FASTThreshold: 15})
	b := Extract(shifted.ToGray(), Params{NFeatures: 120, FASTThreshold: 15})
	if a.Len() < 10 || b.Len() < 10 {
		t.Skip("too few features")
	}
	good := match.RatioTest(match.KNN(a, b, 2), 0.8)
	if len(good) < 5 {
		t.Errorf("only %d good matches after translation", len(good))
	}
	// Matched displacement should be ~(5, 3) for most survivors.
	consistent := 0
	for _, m := range good {
		ka, kb := a.Keypoints[m.QueryIdx], b.Keypoints[m.TrainIdx]
		dx, dy := kb.X-ka.X, kb.Y-ka.Y
		if math.Abs(float64(dx-5)) < 2.5 && math.Abs(float64(dy-3)) < 2.5 {
			consistent++
		}
	}
	if consistent*2 < len(good) {
		t.Errorf("only %d/%d displacement-consistent matches", consistent, len(good))
	}
}

func TestFlatImageNoFeatures(t *testing.T) {
	g := imaging.NewImageFilled(64, 64, imaging.C(100, 100, 100)).ToGray()
	if set := Extract(g, Params{}); set.Len() != 0 {
		t.Errorf("flat image produced %d features", set.Len())
	}
}

func TestTinyImageDoesNotPanic(t *testing.T) {
	g := imaging.NewImageFilled(8, 8, imaging.C(10, 10, 10)).ToGray()
	set := Extract(g, Params{})
	if set.Len() != 0 {
		t.Errorf("tiny image features = %d", set.Len())
	}
}
