// Package orb implements ORB (Rublee et al. 2011): oFAST keypoints —
// FAST corners over an image pyramid, ranked by Harris response and
// oriented by the intensity centroid — described with steered BRIEF
// (rBRIEF). Descriptors are 256-bit strings matched with Hamming
// distance.
package orb

import (
	"math"
	"slices"

	"snmatch/internal/arena"
	"snmatch/internal/features"
	"snmatch/internal/features/brief"
	"snmatch/internal/features/fast"
	"snmatch/internal/imaging"
)

// Params configures the detector. Zero values select the defaults noted
// on each field.
type Params struct {
	NFeatures     int     // max keypoints retained (default 500)
	ScaleFactor   float64 // pyramid decimation ratio (default 1.2)
	NLevels       int     // pyramid levels (default 8)
	FASTThreshold int     // FAST intensity threshold (default 20)
	PatchRadius   int     // intensity-centroid patch radius (default 15)
	Seed          uint64  // BRIEF pattern seed (default 0x0rb)
}

func (p Params) withDefaults() Params {
	if p.NFeatures <= 0 {
		p.NFeatures = 500
	}
	if p.ScaleFactor <= 1 {
		p.ScaleFactor = 1.2
	}
	if p.NLevels <= 0 {
		p.NLevels = 8
	}
	if p.FASTThreshold <= 0 {
		p.FASTThreshold = 20
	}
	if p.PatchRadius <= 0 {
		p.PatchRadius = 15
	}
	if p.Seed == 0 {
		p.Seed = 0x0127b
	}
	return p
}

// Scratch recycles ORB's per-query working set: the pyramid levels,
// gradient planes, smoothed rasters and descriptor rows come from the
// arena, the FAST detector runs over its own recycled buffers, the
// corner accumulator is a reusable spine, and the (deterministic,
// seed-keyed) BRIEF pattern is computed once and cached across queries.
// A nil *Scratch allocates freshly, exactly like Extract. One
// extraction may be in flight per Scratch between arena Resets; the
// returned Set is invalid after the Reset.
type Scratch struct {
	A    *arena.Arena
	Feat *features.Scratch
	Fast fast.Scratch

	pts []levelPoint

	pat     *brief.Pattern // heap-backed: survives arena resets
	patSeed uint64
}

func (sc *Scratch) arena() *arena.Arena {
	if sc == nil {
		return nil
	}
	return sc.A
}

func (sc *Scratch) feat() *features.Scratch {
	if sc == nil {
		return nil
	}
	return sc.Feat
}

// pattern returns the BRIEF pattern for the seed, cached on the scratch
// so warm queries skip the Gaussian pattern draw entirely. The pattern
// is a pure function of (bits, seed), so the cache cannot change
// results.
func (sc *Scratch) pattern(seed uint64) *brief.Pattern {
	if sc == nil {
		return brief.NewPattern(256, seed)
	}
	if sc.pat == nil || sc.patSeed != seed {
		sc.pat = brief.NewPattern(256, seed)
		sc.patSeed = seed
	}
	return sc.pat
}

// Extract detects and describes ORB features on the grayscale image.
func Extract(g *imaging.Gray, params Params) *features.Set {
	return ExtractScratch(g, params, nil)
}

// ExtractScratch is Extract over a recycled extraction context; its
// output is bit-identical to Extract for every input.
func ExtractScratch(g *imaging.Gray, params Params, sc *Scratch) *features.Set {
	p := params.withDefaults()
	return extract(g, p, sc.pattern(p.Seed), sc)
}

// levelPoint is a detected corner at a pyramid level before description.
type levelPoint struct {
	kp     features.Keypoint // coordinates at the level
	level  int
	scale  float64
	harris float32
}

func extract(g *imaging.Gray, p Params, pattern *brief.Pattern, sc *Scratch) *features.Set {
	a := sc.arena()
	// Build the pyramid.
	levels := arena.Cap[*imaging.Gray](a, p.NLevels)
	scales := arena.Cap[float64](a, p.NLevels)
	cur := g
	scale := 1.0
	for i := 0; i < p.NLevels; i++ {
		if cur.W < 2*brief.PatchSize || cur.H < 2*brief.PatchSize {
			break
		}
		levels = append(levels, cur)
		scales = append(scales, scale)
		scale *= p.ScaleFactor
		nw := int(float64(g.W)/scale + 0.5)
		nh := int(float64(g.H)/scale + 0.5)
		if nw < 8 || nh < 8 {
			break
		}
		cur = g.ResizeBilinearIn(a, nw, nh)
	}
	if len(levels) == 0 {
		levels = append(levels, g)
		scales = append(scales, 1)
	}

	// Detect per level with Harris ranking. The FAST scratch's returned
	// slice is recycled by the next Detect call, so each level's corners
	// are folded into pts before the next level runs.
	var pts []levelPoint
	var fsc *fast.Scratch
	if sc != nil {
		pts = sc.pts[:0]
		fsc = &sc.Fast
		if fsc.A == nil {
			fsc.A = sc.A // FAST shares the extraction arena by default
		}
	}
	for li, lvl := range levels {
		f := lvl.ToFloatIn(a)
		gx, gy := f.SobelIn(a)
		kps := fast.DetectScratch(lvl, p.FASTThreshold, true, fsc)
		for _, kp := range kps {
			h := harrisResponse(gx, gy, int(kp.X), int(kp.Y))
			pts = append(pts, levelPoint{kp: kp, level: li, scale: scales[li], harris: h})
		}
	}
	if sc != nil {
		sc.pts = pts
	}
	// The comparator is a total order (per-level FAST corners have
	// unique coordinates), so the unstable sort has exactly one result.
	slices.SortFunc(pts, func(x, y levelPoint) int {
		switch {
		case x.harris != y.harris:
			if x.harris > y.harris {
				return -1
			}
			return 1
		case x.level != y.level:
			return x.level - y.level
		case x.kp.Y != y.kp.Y:
			if x.kp.Y < y.kp.Y {
				return -1
			}
			return 1
		case x.kp.X != y.kp.X:
			if x.kp.X < y.kp.X {
				return -1
			}
			return 1
		}
		return 0
	})
	if len(pts) > p.NFeatures {
		pts = pts[:p.NFeatures]
	}

	// Orientation by intensity centroid, then steered BRIEF per level.
	out := sc.feat().NewBinarySet()
	for li, lvl := range levels {
		smoothed := lvl.GaussianBlurIn(a, 2)
		s := scales[li]
		lvlKps := arena.Cap[features.Keypoint](a, len(pts))
		for _, pt := range pts {
			if pt.level != li {
				continue
			}
			kp := pt.kp
			kp.Angle = intensityCentroidAngle(lvl, int(kp.X), int(kp.Y), p.PatchRadius)
			kp.Response = pt.harris
			kp.Octave = li
			lvlKps = append(lvlKps, kp)
		}
		kept, descs := brief.DescribeSteeredIn(a, smoothed, lvlKps, pattern)
		// Map keypoints back to base-image coordinates.
		for i, kp := range kept {
			kp.X = float32(float64(kp.X) * s)
			kp.Y = float32(float64(kp.Y) * s)
			kp.Size = float32(31 * s)
			out.Keypoints = append(out.Keypoints, kp)
			out.Binary = append(out.Binary, descs[i])
		}
	}
	return sc.feat().Finish(out)
}

// harrisResponse computes det(M) - k tr(M)^2 over a 7x7 window of Sobel
// gradients, the ranking measure ORB substitutes for the FAST score.
func harrisResponse(gx, gy *imaging.FloatGray, x, y int) float32 {
	const k = 0.04
	var sxx, syy, sxy float64
	for dy := -3; dy <= 3; dy++ {
		for dx := -3; dx <= 3; dx++ {
			ix := float64(gx.AtClamped(x+dx, y+dy))
			iy := float64(gy.AtClamped(x+dx, y+dy))
			sxx += ix * ix
			syy += iy * iy
			sxy += ix * iy
		}
	}
	det := sxx*syy - sxy*sxy
	tr := sxx + syy
	return float32(det - k*tr*tr)
}

// intensityCentroidAngle returns the orientation of the patch centroid
// relative to the corner (Rosin's moment orientation), in [0, 2pi).
func intensityCentroidAngle(g *imaging.Gray, x, y, radius int) float32 {
	var m10, m01 float64
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			if dx*dx+dy*dy > radius*radius {
				continue
			}
			v := float64(g.AtClamped(x+dx, y+dy))
			m10 += float64(dx) * v
			m01 += float64(dy) * v
		}
	}
	a := math.Atan2(m01, m10)
	if a < 0 {
		a += 2 * math.Pi
	}
	return float32(a)
}
