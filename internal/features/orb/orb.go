// Package orb implements ORB (Rublee et al. 2011): oFAST keypoints —
// FAST corners over an image pyramid, ranked by Harris response and
// oriented by the intensity centroid — described with steered BRIEF
// (rBRIEF). Descriptors are 256-bit strings matched with Hamming
// distance.
package orb

import (
	"math"
	"sort"

	"snmatch/internal/features"
	"snmatch/internal/features/brief"
	"snmatch/internal/features/fast"
	"snmatch/internal/imaging"
)

// Params configures the detector. Zero values select the defaults noted
// on each field.
type Params struct {
	NFeatures     int     // max keypoints retained (default 500)
	ScaleFactor   float64 // pyramid decimation ratio (default 1.2)
	NLevels       int     // pyramid levels (default 8)
	FASTThreshold int     // FAST intensity threshold (default 20)
	PatchRadius   int     // intensity-centroid patch radius (default 15)
	Seed          uint64  // BRIEF pattern seed (default 0x0rb)
}

func (p Params) withDefaults() Params {
	if p.NFeatures <= 0 {
		p.NFeatures = 500
	}
	if p.ScaleFactor <= 1 {
		p.ScaleFactor = 1.2
	}
	if p.NLevels <= 0 {
		p.NLevels = 8
	}
	if p.FASTThreshold <= 0 {
		p.FASTThreshold = 20
	}
	if p.PatchRadius <= 0 {
		p.PatchRadius = 15
	}
	if p.Seed == 0 {
		p.Seed = 0x0127b
	}
	return p
}

// Extract detects and describes ORB features on the grayscale image.
func Extract(g *imaging.Gray, params Params) *features.Set {
	p := params.withDefaults()
	pattern := brief.NewPattern(256, p.Seed)
	return extract(g, p, pattern)
}

// levelPoint is a detected corner at a pyramid level before description.
type levelPoint struct {
	kp     features.Keypoint // coordinates at the level
	level  int
	scale  float64
	harris float32
}

func extract(g *imaging.Gray, p Params, pattern *brief.Pattern) *features.Set {
	// Build the pyramid.
	levels := make([]*imaging.Gray, 0, p.NLevels)
	scales := make([]float64, 0, p.NLevels)
	cur := g
	scale := 1.0
	for i := 0; i < p.NLevels; i++ {
		if cur.W < 2*brief.PatchSize || cur.H < 2*brief.PatchSize {
			break
		}
		levels = append(levels, cur)
		scales = append(scales, scale)
		scale *= p.ScaleFactor
		nw := int(float64(g.W)/scale + 0.5)
		nh := int(float64(g.H)/scale + 0.5)
		if nw < 8 || nh < 8 {
			break
		}
		cur = g.ResizeBilinear(nw, nh)
	}
	if len(levels) == 0 {
		levels = append(levels, g)
		scales = append(scales, 1)
	}

	// Detect per level with Harris ranking.
	var pts []levelPoint
	for li, lvl := range levels {
		f := lvl.ToFloat()
		gx, gy := f.Sobel()
		kps := fast.Detect(lvl, p.FASTThreshold, true)
		for _, kp := range kps {
			h := harrisResponse(gx, gy, int(kp.X), int(kp.Y))
			pts = append(pts, levelPoint{kp: kp, level: li, scale: scales[li], harris: h})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].harris != pts[j].harris {
			return pts[i].harris > pts[j].harris
		}
		if pts[i].level != pts[j].level {
			return pts[i].level < pts[j].level
		}
		if pts[i].kp.Y != pts[j].kp.Y {
			return pts[i].kp.Y < pts[j].kp.Y
		}
		return pts[i].kp.X < pts[j].kp.X
	})
	if len(pts) > p.NFeatures {
		pts = pts[:p.NFeatures]
	}

	// Orientation by intensity centroid, then steered BRIEF per level.
	out := &features.Set{Binary: [][]byte{}}
	for li, lvl := range levels {
		smoothed := lvl.GaussianBlur(2)
		s := scales[li]
		var lvlKps []features.Keypoint
		for _, pt := range pts {
			if pt.level != li {
				continue
			}
			kp := pt.kp
			kp.Angle = intensityCentroidAngle(lvl, int(kp.X), int(kp.Y), p.PatchRadius)
			kp.Response = pt.harris
			kp.Octave = li
			lvlKps = append(lvlKps, kp)
		}
		kept, descs := brief.DescribeSteered(smoothed, lvlKps, pattern)
		// Map keypoints back to base-image coordinates.
		for i, kp := range kept {
			kp.X = float32(float64(kp.X) * s)
			kp.Y = float32(float64(kp.Y) * s)
			kp.Size = float32(31 * s)
			out.Keypoints = append(out.Keypoints, kp)
			out.Binary = append(out.Binary, descs[i])
		}
	}
	return out.Pack()
}

// harrisResponse computes det(M) - k tr(M)^2 over a 7x7 window of Sobel
// gradients, the ranking measure ORB substitutes for the FAST score.
func harrisResponse(gx, gy *imaging.FloatGray, x, y int) float32 {
	const k = 0.04
	var sxx, syy, sxy float64
	for dy := -3; dy <= 3; dy++ {
		for dx := -3; dx <= 3; dx++ {
			ix := float64(gx.AtClamped(x+dx, y+dy))
			iy := float64(gy.AtClamped(x+dx, y+dy))
			sxx += ix * ix
			syy += iy * iy
			sxy += ix * iy
		}
	}
	det := sxx*syy - sxy*sxy
	tr := sxx + syy
	return float32(det - k*tr*tr)
}

// intensityCentroidAngle returns the orientation of the patch centroid
// relative to the corner (Rosin's moment orientation), in [0, 2pi).
func intensityCentroidAngle(g *imaging.Gray, x, y, radius int) float32 {
	var m10, m01 float64
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			if dx*dx+dy*dy > radius*radius {
				continue
			}
			v := float64(g.AtClamped(x+dx, y+dy))
			m10 += float64(dx) * v
			m01 += float64(dy) * v
		}
	}
	a := math.Atan2(m01, m10)
	if a < 0 {
		a += 2 * math.Pi
	}
	return float32(a)
}
