package orb

import (
	"testing"

	"snmatch/internal/arena"
	"snmatch/internal/features"
)

// TestExtractScratchMatchesExtract reuses one scratch across a stream
// of scenes (twice, so every buffer — including the cached BRIEF
// pattern — is recycled) and requires the pooled extraction to equal
// the fresh one bit for bit.
func TestExtractScratchMatchesExtract(t *testing.T) {
	feat := &features.Scratch{A: arena.New()}
	sc := &Scratch{A: feat.A, Feat: feat}
	params := Params{NFeatures: 120, FASTThreshold: 15}
	for round := 0; round < 2; round++ {
		for seed := uint64(1); seed <= 3; seed++ {
			g := sceneImage(seed)
			want := Extract(g, params)
			got := ExtractScratch(g, params, sc)
			if want.Len() != got.Len() {
				t.Fatalf("round %d seed %d: %d keypoints, want %d", round, seed, got.Len(), want.Len())
			}
			if !got.IsBinary() {
				t.Fatal("pooled ORB set is not binary")
			}
			for i := range want.Keypoints {
				if want.Keypoints[i] != got.Keypoints[i] {
					t.Fatalf("round %d seed %d: keypoint %d differs", round, seed, i)
				}
				for j := range want.Binary[i] {
					if want.Binary[i][j] != got.Binary[i][j] {
						t.Fatalf("round %d seed %d: descriptor %d byte %d differs", round, seed, i, j)
					}
				}
			}
			sc.A.Reset()
		}
	}
}

// TestScratchPatternCacheFollowsSeed pins the seed-keyed pattern cache:
// changing the seed mid-stream must re-derive the pattern, not reuse
// the cached one.
func TestScratchPatternCacheFollowsSeed(t *testing.T) {
	feat := &features.Scratch{A: arena.New()}
	sc := &Scratch{A: feat.A, Feat: feat}
	g := sceneImage(2)
	for _, seed := range []uint64{3, 9, 3} {
		params := Params{NFeatures: 60, Seed: seed}
		want := Extract(g, params)
		got := ExtractScratch(g, params, sc)
		if want.Len() != got.Len() {
			t.Fatalf("seed %d: %d keypoints, want %d", seed, got.Len(), want.Len())
		}
		for i := range want.Binary {
			for j := range want.Binary[i] {
				if want.Binary[i][j] != got.Binary[i][j] {
					t.Fatalf("seed %d: descriptor %d byte %d differs", seed, i, j)
				}
			}
		}
		sc.A.Reset()
	}
}
