package features

import (
	"math"
	"testing"

	"snmatch/internal/arena"
)

// TestScratchFloatSetMatchesFresh assembles the same float set through
// a recycled scratch (twice, so spines are reused) and freshly, and
// requires identical packed output.
func TestScratchFloatSetMatchesFresh(t *testing.T) {
	sc := &Scratch{A: arena.New()}
	for round := 0; round < 3; round++ {
		fresh := &Set{}
		pooled := sc.NewFloatSet()
		for i := 0; i < 5+round; i++ {
			kp := Keypoint{X: float32(i), Y: float32(round)}
			row := []float32{float32(i), float32(i) * 2, 0.5}
			fresh.Keypoints = append(fresh.Keypoints, kp)
			fresh.Float = append(fresh.Float, row)
			prow := arena.Slice[float32](sc.A, 3)
			copy(prow, row)
			pooled.Keypoints = append(pooled.Keypoints, kp)
			pooled.Float = append(pooled.Float, prow)
		}
		fresh.Pack()
		sc.Finish(pooled)
		if pooled.IsBinary() || pooled.Packed == nil {
			t.Fatal("pooled float set mis-assembled")
		}
		if pooled.Packed.N != fresh.Packed.N || pooled.Packed.Dim != fresh.Packed.Dim {
			t.Fatalf("packed shape %d/%d, want %d/%d",
				pooled.Packed.N, pooled.Packed.Dim, fresh.Packed.N, fresh.Packed.Dim)
		}
		for i := range fresh.Packed.Floats {
			if math.Float32bits(fresh.Packed.Floats[i]) != math.Float32bits(pooled.Packed.Floats[i]) {
				t.Fatalf("round %d: packed float %d differs", round, i)
			}
		}
		for i := range fresh.Packed.Norms {
			if math.Float32bits(fresh.Packed.Norms[i]) != math.Float32bits(pooled.Packed.Norms[i]) {
				t.Fatalf("round %d: packed norm %d differs", round, i)
			}
		}
		sc.A.Reset()
	}
}

// TestScratchBinarySetContract checks the binary path: non-nil Binary
// on empty sets (the ORB extractor contract) and word-exact packing on
// recycled spines.
func TestScratchBinarySetContract(t *testing.T) {
	sc := &Scratch{A: arena.New()}
	empty := sc.NewBinarySet()
	if empty.Binary == nil || !empty.IsBinary() {
		t.Fatal("recycled binary set lost its non-nil Binary contract")
	}
	sc.Finish(empty)
	sc.A.Reset()

	for round := 0; round < 3; round++ {
		fresh := &Set{Binary: [][]byte{}}
		pooled := sc.NewBinarySet()
		if pooled.Binary == nil {
			t.Fatal("recycled binary set lost its non-nil Binary contract")
		}
		for i := 0; i < 4+round; i++ {
			kp := Keypoint{X: float32(i)}
			row := []byte{byte(i), byte(0xF0 | i), 0x3C}
			fresh.Keypoints = append(fresh.Keypoints, kp)
			fresh.Binary = append(fresh.Binary, row)
			prow := arena.Slice[byte](sc.A, 3)
			copy(prow, row)
			pooled.Keypoints = append(pooled.Keypoints, kp)
			pooled.Binary = append(pooled.Binary, prow)
		}
		fresh.Pack()
		sc.Finish(pooled)
		if !pooled.IsBinary() {
			t.Fatal("pooled binary set mis-assembled")
		}
		if pooled.Packed.WordsPerRow != fresh.Packed.WordsPerRow || pooled.Packed.RowBytes != fresh.Packed.RowBytes {
			t.Fatal("packed binary shape differs")
		}
		for i := range fresh.Packed.Words {
			if fresh.Packed.Words[i] != pooled.Packed.Words[i] {
				t.Fatalf("round %d: packed word %d differs", round, i)
			}
		}
		sc.A.Reset()
	}
}

// TestPackInNilArenaIsPack pins the nil-arena fallback.
func TestPackInNilArenaIsPack(t *testing.T) {
	s := &Set{Keypoints: []Keypoint{{}}, Float: [][]float32{{1, 2, 3}}}
	s.PackIn(nil)
	r := (&Set{Keypoints: []Keypoint{{}}, Float: [][]float32{{1, 2, 3}}}).Pack()
	if s.Packed.N != r.Packed.N || s.Packed.Dim != r.Packed.Dim {
		t.Fatal("PackIn(nil) differs from Pack")
	}
	for i := range r.Packed.Floats {
		if s.Packed.Floats[i] != r.Packed.Floats[i] {
			t.Fatal("PackIn(nil) floats differ from Pack")
		}
	}
}
