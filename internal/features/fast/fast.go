// Package fast implements the FAST-9 corner detector of Rosten and
// Drummond (2006): a segment test over a Bresenham circle of 16 pixels,
// with an optional 3x3 non-maximum suppression on the corner score.
package fast

import (
	"snmatch/internal/arena"
	"snmatch/internal/features"
	"snmatch/internal/imaging"
)

// circle16 is the Bresenham circle of radius 3 in clockwise order.
var circle16 = [16][2]int{
	{0, -3}, {1, -3}, {2, -2}, {3, -1},
	{3, 0}, {3, 1}, {2, 2}, {1, 3},
	{0, 3}, {-1, 3}, {-2, 2}, {-3, 1},
	{-3, 0}, {-3, -1}, {-2, -2}, {-1, -3},
}

// arcLength is the number of contiguous circle pixels required for the
// segment test (FAST-9).
const arcLength = 9

// Scratch recycles the detector's working set — the dense score map
// (arena-backed) and the keypoint accumulators, whose backing arrays
// grow to the workload's corner count once and are reused afterwards.
// A nil *Scratch allocates freshly, exactly like the plain Detect.
//
// Results returned through a Scratch are valid only until the next
// DetectScratch call on it (the accumulators are recycled per call) or
// until its arena resets, whichever comes first.
type Scratch struct {
	A *arena.Arena

	raw, out []features.Keypoint
}

func (sc *Scratch) arena() *arena.Arena {
	if sc == nil {
		return nil
	}
	return sc.A
}

// Detect finds FAST-9 corners with the given intensity threshold. With
// nonmax set, a 3x3 non-maximum suppression over the corner score is
// applied. Returned keypoints carry the score in Response.
func Detect(g *imaging.Gray, threshold int, nonmax bool) []features.Keypoint {
	return DetectScratch(g, threshold, nonmax, nil)
}

// DetectScratch is Detect over recycled buffers; it is bit-identical to
// Detect for every input. See Scratch for the result lifetime.
func DetectScratch(g *imaging.Gray, threshold int, nonmax bool, sc *Scratch) []features.Keypoint {
	if threshold < 1 {
		threshold = 1
	}
	w, h := g.W, g.H
	scores := arena.Slice[int32](sc.arena(), w*h)
	var raw []features.Keypoint
	if sc != nil {
		raw = sc.raw[:0]
	}

	for y := 3; y < h-3; y++ {
		for x := 3; x < w-3; x++ {
			if s := cornerScore(g, x, y, threshold); s > 0 {
				scores[y*w+x] = int32(s)
				raw = append(raw, features.Keypoint{
					X: float32(x), Y: float32(y),
					Size: 7, Angle: -1, Response: float32(s),
				})
			}
		}
	}
	if sc != nil {
		sc.raw = raw
	}
	if !nonmax {
		return raw
	}
	var out []features.Keypoint
	if sc != nil {
		out = sc.out[:0]
	}
	for _, kp := range raw {
		x, y := int(kp.X), int(kp.Y)
		s := scores[y*w+x]
		maximal := true
	neighbours:
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				ns := scores[(y+dy)*w+x+dx]
				if ns > s || (ns == s && (dy < 0 || (dy == 0 && dx < 0))) {
					maximal = false
					break neighbours
				}
			}
		}
		if maximal {
			out = append(out, kp)
		}
	}
	if sc != nil {
		sc.out = out
	}
	return out
}

// cornerScore returns 0 when (x, y) fails the segment test, otherwise a
// positive score equal to the sum of absolute differences over the
// brightest/darkest contiguous arc.
func cornerScore(g *imaging.Gray, x, y, threshold int) int {
	w := g.W
	pix := g.Pix
	base := y*w + x
	c := int(pix[base])
	hi := c + threshold
	lo := c - threshold

	// Quick rejection using the four compass points (circle indices 0,
	// 4, 8, 12), checked before gathering the full circle: a contiguous
	// arc of 9 pixels must contain at least two of them, and most
	// pixels fail here without touching the other twelve.
	quick := 0
	if v := int(pix[base-3*w]); v > hi || v < lo {
		quick++
	}
	if v := int(pix[base+3]); v > hi || v < lo {
		quick++
	}
	if v := int(pix[base+3*w]); v > hi || v < lo {
		quick++
	}
	if v := int(pix[base-3]); v > hi || v < lo {
		quick++
	}
	if quick < 2 {
		return 0
	}

	var vals [16]int
	for i, d := range circle16 {
		vals[i] = int(pix[base+d[1]*w+d[0]])
	}

	best := 0
	for _, bright := range [2]bool{true, false} {
		pass := func(v int) bool {
			if bright {
				return v > hi
			}
			return v < lo
		}
		// Full circle: every pixel passes, score is the total difference.
		all := true
		total := 0
		for _, v := range vals {
			if !pass(v) {
				all = false
				break
			}
			total += abs(v - c)
		}
		if all {
			if total > best {
				best = total
			}
			continue
		}
		// Otherwise scan the doubled circle; every run is bounded by a
		// failing pixel so no wrap-around double counting can occur.
		run, sum, bestSum := 0, 0, 0
		for i := 0; i < 32; i++ {
			v := vals[i%16]
			if pass(v) {
				run++
				sum += abs(v - c)
				if run >= arcLength && sum > bestSum {
					bestSum = sum
				}
			} else {
				run, sum = 0, 0
			}
		}
		if bestSum > best {
			best = bestSum
		}
	}
	return best
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
