package fast

import (
	"testing"

	"snmatch/internal/arena"
	"snmatch/internal/imaging"
)

func noisyImage(seed uint32, w, h int) *imaging.Gray {
	g := imaging.NewGray(w, h)
	s := seed
	for i := range g.Pix {
		s = s*1664525 + 1013904223
		g.Pix[i] = byte(s >> 24)
	}
	return g
}

// TestDetectScratchMatchesDetect reuses one scratch across several
// images (of changing sizes) and both nonmax modes, requiring exact
// equality with the fresh detector every time.
func TestDetectScratchMatchesDetect(t *testing.T) {
	sc := &Scratch{A: arena.New()}
	sizes := [][2]int{{48, 48}, {33, 51}, {64, 40}}
	for round := 0; round < 2; round++ {
		for _, nonmax := range []bool{false, true} {
			for seed, wh := range sizes {
				g := noisyImage(uint32(11+seed), wh[0], wh[1])
				want := Detect(g, 20, nonmax)
				got := DetectScratch(g, 20, nonmax, sc)
				if len(want) != len(got) {
					t.Fatalf("round %d nonmax=%v size %v: %d corners, want %d",
						round, nonmax, wh, len(got), len(want))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("round %d nonmax=%v size %v corner %d: %+v, want %+v",
							round, nonmax, wh, i, got[i], want[i])
					}
				}
				sc.A.Reset()
			}
		}
	}
}
