package fast

import (
	"testing"

	"snmatch/internal/geom"
	"snmatch/internal/imaging"
)

// squareImage returns a dark image with a bright square whose corners
// are strong FAST features.
func squareImage() *imaging.Gray {
	img := imaging.NewImageFilled(64, 64, imaging.C(20, 20, 20))
	img.FillRect(geom.R(20, 20, 44, 44), imaging.C(220, 220, 220))
	return img.ToGray()
}

func TestDetectFindsSquareCorners(t *testing.T) {
	kps := Detect(squareImage(), 30, true)
	if len(kps) == 0 {
		t.Fatal("no corners found")
	}
	corners := [][2]float32{{20, 20}, {43, 20}, {20, 43}, {43, 43}}
	for _, c := range corners {
		found := false
		for _, kp := range kps {
			dx, dy := kp.X-c[0], kp.Y-c[1]
			if dx*dx+dy*dy <= 9 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("corner near (%v, %v) not detected", c[0], c[1])
		}
	}
}

func TestDetectUniformImageHasNoCorners(t *testing.T) {
	g := imaging.NewImageFilled(32, 32, imaging.C(128, 128, 128)).ToGray()
	if kps := Detect(g, 20, true); len(kps) != 0 {
		t.Errorf("uniform image corners = %d", len(kps))
	}
}

func TestDetectEdgeIsNotCorner(t *testing.T) {
	// A straight vertical step edge should produce no FAST-9 responses
	// along its middle (the contiguous arc never reaches 9 on a straight
	// edge away from endpoints).
	img := imaging.NewImage(64, 64)
	img.FillRect(geom.R(32, 0, 64, 64), imaging.White)
	kps := Detect(img.ToGray(), 30, true)
	for _, kp := range kps {
		if kp.Y > 10 && kp.Y < 54 {
			t.Errorf("corner on straight edge at (%v, %v)", kp.X, kp.Y)
		}
	}
}

func TestNonmaxReducesCount(t *testing.T) {
	g := squareImage()
	all := Detect(g, 30, false)
	nms := Detect(g, 30, true)
	if len(nms) == 0 || len(nms) > len(all) {
		t.Errorf("nms=%d all=%d", len(nms), len(all))
	}
}

func TestThresholdMonotone(t *testing.T) {
	g := squareImage()
	lo := Detect(g, 10, true)
	hi := Detect(g, 100, true)
	if len(hi) > len(lo) {
		t.Errorf("higher threshold found more corners: %d > %d", len(hi), len(lo))
	}
}

func TestDarkCornerDetected(t *testing.T) {
	// Dark square on bright background: dark-arc branch.
	img := imaging.NewImageFilled(64, 64, imaging.C(220, 220, 220))
	img.FillRect(geom.R(24, 24, 40, 40), imaging.C(15, 15, 15))
	kps := Detect(img.ToGray(), 30, true)
	if len(kps) == 0 {
		t.Fatal("no dark corners found")
	}
}

func TestResponsePositive(t *testing.T) {
	for _, kp := range Detect(squareImage(), 30, false) {
		if kp.Response <= 0 {
			t.Fatalf("non-positive response %v", kp.Response)
		}
		if kp.Angle != -1 {
			t.Fatalf("FAST should not assign orientation, got %v", kp.Angle)
		}
	}
}

func TestBorderExcluded(t *testing.T) {
	// Bright pixel right at the border cannot host the circle.
	img := imaging.NewImage(16, 16)
	img.Set(1, 1, imaging.White)
	if kps := Detect(img.ToGray(), 20, true); len(kps) != 0 {
		t.Errorf("border corner detected: %v", kps)
	}
}
