// Package brief implements BRIEF binary descriptors (Calonder et al.
// 2010): pairwise intensity comparisons on a smoothed patch, packed into
// a bit string. A steered variant rotating the sampling pattern by the
// keypoint orientation is provided for ORB's rBRIEF.
package brief

import (
	"math"

	"snmatch/internal/arena"
	"snmatch/internal/features"
	"snmatch/internal/imaging"
	"snmatch/internal/rng"
)

// PatchSize is the side of the square sampling patch.
const PatchSize = 31

// Pattern is a set of point pairs to compare. Coordinates are offsets
// from the patch centre.
type Pattern struct {
	Ax, Ay, Bx, By []float32
}

// Bits returns the descriptor length in bits.
func (p *Pattern) Bits() int { return len(p.Ax) }

// NewPattern samples nBits point pairs from an isotropic Gaussian with
// sigma = PatchSize/5, clipped to the patch, using the deterministic seed.
// This follows the G-II strategy of the BRIEF paper; a fixed seed yields
// the same pattern on every run, standing in for ORB's learned pattern.
func NewPattern(nBits int, seed uint64) *Pattern {
	r := rng.New(seed)
	p := &Pattern{
		Ax: make([]float32, nBits), Ay: make([]float32, nBits),
		Bx: make([]float32, nBits), By: make([]float32, nBits),
	}
	const sigma = float64(PatchSize) / 5
	const half = float64(PatchSize)/2 - 1
	draw := func() float32 {
		for {
			v := r.NormRange(0, sigma)
			if v >= -half && v <= half {
				return float32(v)
			}
		}
	}
	for i := 0; i < nBits; i++ {
		p.Ax[i], p.Ay[i] = draw(), draw()
		p.Bx[i], p.By[i] = draw(), draw()
	}
	return p
}

// Describe computes plain BRIEF descriptors for the keypoints. The image
// should already be smoothed (the standard pipeline applies a Gaussian
// with sigma ~2 first); keypoints too close to the border are dropped,
// and the filtered keypoint list is returned alongside the descriptors.
func Describe(g *imaging.Gray, kps []features.Keypoint, p *Pattern) ([]features.Keypoint, [][]byte) {
	return describe(g, kps, p, false, nil)
}

// DescribeSteered computes rotation-aware descriptors by rotating the
// sampling pattern by each keypoint's Angle (rBRIEF).
func DescribeSteered(g *imaging.Gray, kps []features.Keypoint, p *Pattern) ([]features.Keypoint, [][]byte) {
	return describe(g, kps, p, true, nil)
}

// DescribeSteeredIn is DescribeSteered with the descriptor rows and the
// result tables drawn from the arena — bit-identical output, valid only
// until the arena resets. The accumulators are bounded by len(kps), so
// no state beyond the arena is needed.
func DescribeSteeredIn(a *arena.Arena, g *imaging.Gray, kps []features.Keypoint, p *Pattern) ([]features.Keypoint, [][]byte) {
	return describe(g, kps, p, true, a)
}

func describe(g *imaging.Gray, kps []features.Keypoint, p *Pattern, steered bool, a *arena.Arena) ([]features.Keypoint, [][]byte) {
	nBytes := (p.Bits() + 7) / 8
	border := PatchSize/2 + 1
	var outKps []features.Keypoint
	var outDesc [][]byte
	if a != nil {
		outKps = arena.Cap[features.Keypoint](a, len(kps))
		outDesc = arena.Cap[[]byte](a, len(kps))
	}
	for _, kp := range kps {
		x, y := int(kp.X+0.5), int(kp.Y+0.5)
		if x < border || y < border || x >= g.W-border || y >= g.H-border {
			continue
		}
		var sin, cos float32 = 0, 1
		if steered && kp.Angle >= 0 {
			s, c := math.Sincos(float64(kp.Angle))
			sin, cos = float32(s), float32(c)
		}
		desc := arena.Slice[byte](a, nBytes)
		for i := 0; i < p.Bits(); i++ {
			ax := cos*p.Ax[i] - sin*p.Ay[i]
			ay := sin*p.Ax[i] + cos*p.Ay[i]
			bx := cos*p.Bx[i] - sin*p.By[i]
			by := sin*p.Bx[i] + cos*p.By[i]
			va := g.AtClamped(x+int(ax+roundBias(ax)), y+int(ay+roundBias(ay)))
			vb := g.AtClamped(x+int(bx+roundBias(bx)), y+int(by+roundBias(by)))
			if va < vb {
				desc[i/8] |= 1 << (i % 8)
			}
		}
		outKps = append(outKps, kp)
		outDesc = append(outDesc, desc)
	}
	return outKps, outDesc
}

// roundBias returns +0.5 for non-negative values and -0.5 otherwise so
// int conversion rounds to nearest.
func roundBias(v float32) float32 {
	if v >= 0 {
		return 0.5
	}
	return -0.5
}
