package brief

import (
	"testing"

	"snmatch/internal/arena"
	"snmatch/internal/features"
)

// TestDescribeSteeredInMatchesFresh runs the arena-backed descriptor
// path against the fresh one on a reused (dirty) arena.
func TestDescribeSteeredInMatchesFresh(t *testing.T) {
	g := texturedImage()
	p := NewPattern(256, 9)
	kps := []features.Keypoint{
		{X: 48, Y: 48, Angle: -1},
		{X: 40, Y: 52, Angle: 1.1},
		{X: 60, Y: 40, Angle: 4.7},
		{X: 2, Y: 2, Angle: 0}, // dropped at the border on both paths
	}
	a := arena.New()
	for round := 0; round < 2; round++ {
		wantKps, wantDesc := DescribeSteered(g, kps, p)
		gotKps, gotDesc := DescribeSteeredIn(a, g, kps, p)
		if len(wantKps) != len(gotKps) || len(wantDesc) != len(gotDesc) {
			t.Fatalf("round %d: kept %d/%d, want %d/%d",
				round, len(gotKps), len(gotDesc), len(wantKps), len(wantDesc))
		}
		for i := range wantKps {
			if wantKps[i] != gotKps[i] {
				t.Fatalf("round %d: keypoint %d differs", round, i)
			}
			for j := range wantDesc[i] {
				if wantDesc[i][j] != gotDesc[i][j] {
					t.Fatalf("round %d: descriptor %d byte %d differs", round, i, j)
				}
			}
		}
		a.Reset()
	}
}
