package brief

import (
	"math"
	"testing"

	"snmatch/internal/features"
	"snmatch/internal/geom"
	"snmatch/internal/imaging"
)

func texturedImage() *imaging.Gray {
	img := imaging.NewImage(96, 96)
	// Blocks of varying intensity create informative comparisons.
	for by := 0; by < 6; by++ {
		for bx := 0; bx < 6; bx++ {
			v := uint8((bx*47 + by*89 + 31) % 256)
			img.FillRect(geom.R(bx*16, by*16, bx*16+16, by*16+16), imaging.C(v, v, v))
		}
	}
	return img.ToGray()
}

func centerKp() []features.Keypoint {
	return []features.Keypoint{{X: 48, Y: 48, Angle: -1}}
}

func TestPatternDeterministic(t *testing.T) {
	a := NewPattern(256, 7)
	b := NewPattern(256, 7)
	for i := range a.Ax {
		if a.Ax[i] != b.Ax[i] || a.By[i] != b.By[i] {
			t.Fatal("patterns differ for equal seeds")
		}
	}
	c := NewPattern(256, 8)
	same := 0
	for i := range a.Ax {
		if a.Ax[i] == c.Ax[i] {
			same++
		}
	}
	if same > 10 {
		t.Errorf("different seeds share %d coordinates", same)
	}
}

func TestPatternWithinPatch(t *testing.T) {
	p := NewPattern(512, 3)
	half := float32(PatchSize) / 2
	for i := range p.Ax {
		for _, v := range []float32{p.Ax[i], p.Ay[i], p.Bx[i], p.By[i]} {
			if v < -half || v > half {
				t.Fatalf("pattern point %v outside patch", v)
			}
		}
	}
	if p.Bits() != 512 {
		t.Errorf("Bits = %d", p.Bits())
	}
}

func TestDescribeLengthAndDeterminism(t *testing.T) {
	g := texturedImage()
	p := NewPattern(256, 1)
	kps, descs := Describe(g, centerKp(), p)
	if len(kps) != 1 || len(descs) != 1 {
		t.Fatalf("kps=%d descs=%d", len(kps), len(descs))
	}
	if len(descs[0]) != 32 {
		t.Errorf("descriptor bytes = %d, want 32", len(descs[0]))
	}
	_, descs2 := Describe(g, centerKp(), p)
	if features.Hamming(descs[0], descs2[0]) != 0 {
		t.Error("descriptor not deterministic")
	}
}

func TestDescribeDropsBorderKeypoints(t *testing.T) {
	g := texturedImage()
	p := NewPattern(128, 1)
	kps := []features.Keypoint{{X: 2, Y: 2}, {X: 48, Y: 48}, {X: 95, Y: 95}}
	kept, descs := Describe(g, kps, p)
	if len(kept) != 1 || len(descs) != 1 {
		t.Fatalf("kept = %d, want only the centre keypoint", len(kept))
	}
	if kept[0].X != 48 {
		t.Errorf("wrong keypoint kept: %+v", kept[0])
	}
}

func TestDescriptorRobustToMildNoise(t *testing.T) {
	g := texturedImage()
	p := NewPattern(256, 1)
	_, d1 := Describe(g, centerKp(), p)
	// Perturb a few pixels slightly.
	g2 := g.Clone()
	for i := 0; i < len(g2.Pix); i += 97 {
		v := int(g2.Pix[i]) + 3
		if v > 255 {
			v = 255
		}
		g2.Pix[i] = uint8(v)
	}
	_, d2 := Describe(g2, centerKp(), p)
	if d := features.Hamming(d1[0], d2[0]); d > 40 {
		t.Errorf("Hamming under mild noise = %d", d)
	}
}

func TestDescriptorDiscriminates(t *testing.T) {
	g := texturedImage()
	inv := g.Clone()
	for i, v := range inv.Pix {
		inv.Pix[i] = 255 - v
	}
	p := NewPattern(256, 1)
	_, d1 := Describe(g, centerKp(), p)
	_, d2 := Describe(inv, centerKp(), p)
	// Inverting the image flips (almost) every informative comparison.
	if d := features.Hamming(d1[0], d2[0]); d < 100 {
		t.Errorf("inverted image Hamming = %d, want large", d)
	}
}

func TestSteeredRotationConsistency(t *testing.T) {
	// Describing a rotated image with the rotated angle should be closer
	// to the original than describing it with angle 0.
	img := imaging.NewImage(129, 129)
	for by := 0; by < 8; by++ {
		for bx := 0; bx < 8; bx++ {
			v := uint8((bx*37 + by*101 + 13) % 256)
			img.FillRect(geom.R(bx*16, by*16, bx*16+16, by*16+16), imaging.C(v, v, v))
		}
	}
	theta := math.Pi / 6
	rot := img.RotateAbout(theta, imaging.Black)
	g, gr := img.ToGray(), rot.ToGray()

	p := NewPattern(256, 2)
	kp0 := []features.Keypoint{{X: 64, Y: 64, Angle: 0}}
	// The image content rotated by theta appears at orientation theta.
	kpRot := []features.Keypoint{{X: 64, Y: 64, Angle: float32(theta)}}
	kpZero := []features.Keypoint{{X: 64, Y: 64, Angle: 0}}

	_, base := DescribeSteered(g, kp0, p)
	_, steered := DescribeSteered(gr, kpRot, p)
	_, unsteered := DescribeSteered(gr, kpZero, p)

	dSteer := features.Hamming(base[0], steered[0])
	dPlain := features.Hamming(base[0], unsteered[0])
	if dSteer >= dPlain {
		t.Errorf("steering did not help: steered=%d plain=%d", dSteer, dPlain)
	}
}
