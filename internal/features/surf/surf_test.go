package surf

import (
	"math"
	"testing"

	"snmatch/internal/features/match"
	"snmatch/internal/geom"
	"snmatch/internal/imaging"
	"snmatch/internal/rng"
)

func blobScene(seed uint64, size int) *imaging.Gray {
	r := rng.New(seed)
	img := imaging.NewImageFilled(size, size, imaging.C(30, 30, 30))
	for i := 0; i < 14; i++ {
		x := r.Intn(size-30) + 15
		y := r.Intn(size-30) + 15
		rad := float64(r.Intn(8) + 4)
		v := uint8(r.Intn(200) + 55)
		img.FillCircle(geom.Pt(float64(x), float64(y)), rad, imaging.C(v, v, v))
	}
	return img.ToGray()
}

func TestExtractFindsBlobs(t *testing.T) {
	set := Extract(blobScene(1, 128), Params{HessianThreshold: 100})
	if set.Len() == 0 {
		t.Fatal("no SURF keypoints")
	}
	if set.IsBinary() {
		t.Fatal("SURF descriptors must be float")
	}
	for _, d := range set.Float {
		if len(d) != 64 {
			t.Fatalf("descriptor length = %d, want 64", len(d))
		}
		var norm float64
		for _, v := range d {
			norm += float64(v) * float64(v)
		}
		if math.Abs(math.Sqrt(norm)-1) > 0.01 {
			t.Fatalf("descriptor norm = %v", math.Sqrt(norm))
		}
	}
}

func TestSingleBlobLocalised(t *testing.T) {
	img := imaging.NewImageFilled(96, 96, imaging.C(20, 20, 20))
	img.FillCircle(geom.Pt(48, 48), 8, imaging.White)
	set := Extract(img.ToGray(), Params{HessianThreshold: 50})
	if set.Len() == 0 {
		t.Fatal("no keypoints on a single blob")
	}
	found := false
	for _, kp := range set.Keypoints {
		if math.Hypot(float64(kp.X-48), float64(kp.Y-48)) < 6 {
			found = true
		}
	}
	if !found {
		t.Errorf("no keypoint near blob centre: %+v", set.Keypoints)
	}
}

func TestDeterministic(t *testing.T) {
	a := Extract(blobScene(2, 128), Params{HessianThreshold: 100})
	b := Extract(blobScene(2, 128), Params{HessianThreshold: 100})
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Float {
		for j := range a.Float[i] {
			if a.Float[i][j] != b.Float[i][j] {
				t.Fatal("not deterministic")
			}
		}
	}
}

func TestThresholdMonotone(t *testing.T) {
	g := blobScene(3, 128)
	lo := Extract(g, Params{HessianThreshold: 50})
	hi := Extract(g, Params{HessianThreshold: 5000})
	if hi.Len() > lo.Len() {
		t.Errorf("higher threshold found more keypoints: %d > %d", hi.Len(), lo.Len())
	}
}

func TestFlatImageNoKeypoints(t *testing.T) {
	g := imaging.NewImageFilled(96, 96, imaging.C(99, 99, 99)).ToGray()
	if set := Extract(g, Params{}); set.Len() != 0 {
		t.Errorf("flat image keypoints = %d", set.Len())
	}
}

func TestTranslatedSceneMatches(t *testing.T) {
	g := blobScene(4, 128)
	img := g.ToImage()
	shifted := img.WarpAffine(geom.Translation(7, 5), img.W, img.H, imaging.C(30, 30, 30)).ToGray()
	a := Extract(g, Params{HessianThreshold: 100})
	b := Extract(shifted, Params{HessianThreshold: 100})
	if a.Len() < 4 || b.Len() < 4 {
		t.Skipf("too few keypoints: %d %d", a.Len(), b.Len())
	}
	good := match.RatioTest(match.KNN(a, b, 2), 0.8)
	if len(good) == 0 {
		t.Fatal("no matches after translation")
	}
	consistent := 0
	for _, m := range good {
		ka, kb := a.Keypoints[m.QueryIdx], b.Keypoints[m.TrainIdx]
		if math.Abs(float64(kb.X-ka.X-7)) < 3 && math.Abs(float64(kb.Y-ka.Y-5)) < 3 {
			consistent++
		}
	}
	if consistent*2 < len(good) {
		t.Errorf("only %d/%d displacement-consistent matches", consistent, len(good))
	}
}

func TestUprightMode(t *testing.T) {
	g := blobScene(5, 128)
	set := Extract(g, Params{HessianThreshold: 100, Upright: true})
	for _, kp := range set.Keypoints {
		if kp.Angle != 0 {
			t.Fatalf("upright keypoint has angle %v", kp.Angle)
		}
	}
}

func TestTinyImageDoesNotPanic(t *testing.T) {
	g := imaging.NewImageFilled(12, 12, imaging.C(10, 10, 10)).ToGray()
	if set := Extract(g, Params{}); set.Len() != 0 {
		t.Errorf("tiny image keypoints = %d", set.Len())
	}
}

// TestDenseRowMatchesHessianAt pins the hoisted clamp-free response
// sweep to the per-cell reference across every layer configuration the
// extractor builds, including rows and columns where clamping engages.
func TestDenseRowMatchesHessianAt(t *testing.T) {
	g := imaging.NewGray(48, 40)
	s := uint32(17)
	for i := range g.Pix {
		s = s*1664525 + 1013904223
		g.Pix[i] = byte(s >> 24)
	}
	it := imaging.NewIntegralSum(g)
	p := Params{}.withDefaults()
	layers := buildResponseLayers(it, g.W, g.H, p, nil)
	if len(layers) == 0 {
		t.Fatal("no response layers built")
	}
	for o, oct := range layers {
		for li, layer := range oct {
			hf := newHessianFilter(layer.filter)
			for gy := 0; gy < layer.height; gy++ {
				for gx := 0; gx < layer.width; gx++ {
					want, wantLap := hessianAt(it, gy*layer.step, gx*layer.step, hf)
					got := layer.responses[gy*layer.width+gx]
					gotLap := layer.laplacian[gy*layer.width+gx]
					if math.Float32bits(want) != math.Float32bits(got) || wantLap != gotLap {
						t.Fatalf("octave %d layer %d cell (%d,%d): %v/%v, want %v/%v",
							o, li, gx, gy, got, gotLap, want, wantLap)
					}
				}
			}
		}
	}
}
