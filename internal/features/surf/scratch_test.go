package surf

import (
	"math"
	"testing"

	"snmatch/internal/arena"
	"snmatch/internal/features"
)

// TestExtractScratchMatchesExtract reuses one scratch across a stream
// of scenes (twice, so every buffer is recycled) and requires the
// pooled extraction to equal the fresh one bit for bit.
func TestExtractScratchMatchesExtract(t *testing.T) {
	feat := &features.Scratch{A: arena.New()}
	sc := &Scratch{A: feat.A, Feat: feat}
	for round := 0; round < 2; round++ {
		for seed := uint64(1); seed <= 3; seed++ {
			g := blobScene(seed, 96)
			want := Extract(g, Params{})
			got := ExtractScratch(g, Params{}, sc)
			if want.Len() != got.Len() {
				t.Fatalf("round %d seed %d: %d keypoints, want %d", round, seed, got.Len(), want.Len())
			}
			for i := range want.Keypoints {
				if want.Keypoints[i] != got.Keypoints[i] {
					t.Fatalf("round %d seed %d: keypoint %d differs", round, seed, i)
				}
				for j := range want.Float[i] {
					if math.Float32bits(want.Float[i][j]) != math.Float32bits(got.Float[i][j]) {
						t.Fatalf("round %d seed %d: descriptor %d[%d] differs", round, seed, i, j)
					}
				}
			}
			sc.A.Reset()
		}
	}
}
