// Package surf implements SURF (Bay et al. 2006): a fast-Hessian
// detector built on integral-image box filters, Haar-wavelet orientation
// assignment, and the 64-dimensional descriptor of per-subregion Haar
// response sums.
package surf

import (
	"math"

	"snmatch/internal/arena"
	"snmatch/internal/features"
	"snmatch/internal/imaging"
)

// Params configures extraction. Zero values select the defaults noted on
// each field.
type Params struct {
	HessianThreshold float64 // detector response threshold (default 400)
	NOctaves         int     // octaves (default 4)
	InitSample       int     // base sampling step (default 2)
	Upright          bool    // skip orientation assignment (U-SURF)
}

func (p Params) withDefaults() Params {
	if p.HessianThreshold <= 0 {
		p.HessianThreshold = 400
	}
	if p.NOctaves <= 0 {
		p.NOctaves = 4
	}
	if p.InitSample <= 0 {
		p.InitSample = 2
	}
	return p
}

// layersPerOctave is fixed at 4 filter sizes per octave as in the paper.
const layersPerOctave = 4

// responseLayer is a sampled grid of fast-Hessian responses for one
// filter size.
type responseLayer struct {
	width, height int // grid dimensions
	step          int // pixels between grid samples
	filter        int // filter side in pixels
	responses     []float32
	laplacian     []bool
}

func (r *responseLayer) at(gx, gy int) float32 {
	if gx < 0 || gx >= r.width || gy < 0 || gy >= r.height {
		return 0
	}
	return r.responses[gy*r.width+gx]
}

// Scratch recycles SURF's per-query working set: the integral image,
// the fast-Hessian response grids and the descriptor rows come from the
// arena, and the keypoint accumulator is a reusable spine. A nil
// *Scratch allocates freshly, exactly like Extract. One extraction may
// be in flight per Scratch between arena Resets; the returned Set is
// invalid after the Reset.
type Scratch struct {
	A    *arena.Arena
	Feat *features.Scratch

	kps []surfKp
}

func (sc *Scratch) arena() *arena.Arena {
	if sc == nil {
		return nil
	}
	return sc.A
}

func (sc *Scratch) feat() *features.Scratch {
	if sc == nil {
		return nil
	}
	return sc.Feat
}

// Extract detects and describes SURF features on the grayscale image.
func Extract(g *imaging.Gray, params Params) *features.Set {
	return ExtractScratch(g, params, nil)
}

// ExtractScratch is Extract over a recycled extraction context; its
// output is bit-identical to Extract for every input.
func ExtractScratch(g *imaging.Gray, params Params, sc *Scratch) *features.Set {
	p := params.withDefaults()
	a := sc.arena()
	integral := imaging.NewIntegralSumIn(a, g)

	layers := buildResponseLayers(integral, g.W, g.H, p, a)
	kps := findExtrema(layers, p, sc)

	set := sc.feat().NewFloatSet()
	for _, kp := range kps {
		angle := float32(0)
		if !p.Upright {
			angle = orientation(integral, kp)
		}
		desc := describe(integral, kp, angle, a)
		set.Keypoints = append(set.Keypoints, features.Keypoint{
			X: kp.x, Y: kp.y, Size: kp.scale * 9.0 / 1.2,
			Angle: angle, Response: kp.response, Octave: kp.octave,
		})
		set.Float = append(set.Float, desc)
	}
	return sc.feat().Finish(set)
}

type surfKp struct {
	x, y     float32
	scale    float32 // sigma-equivalent scale (1.2 * filter/9)
	response float32
	octave   int
	sign     bool // laplacian sign
}

// hessianFilter carries the per-filter-size constants of the fast
// Hessian, hoisted out of the dense per-cell sweep.
type hessianFilter struct {
	filter   int
	lobe     int
	halfLobe int
	border   int
	inv      float64
}

func newHessianFilter(filter int) hessianFilter {
	lobe := filter / 3
	return hessianFilter{
		filter:   filter,
		lobe:     lobe,
		halfLobe: lobe / 2,
		border:   (filter - 1) / 2,
		inv:      1.0 / float64(filter*filter),
	}
}

// box is BoxSum with (row, col, rows, cols) ordering.
func box(it *imaging.Integral, row, col, rows, cols int) float64 {
	return it.BoxSum(col, row, col+cols, row+rows)
}

// hessianAt computes the normalised fast-Hessian response and Laplacian
// sign at pixel (c, r) for the given filter.
func hessianAt(it *imaging.Integral, r, c int, hf hessianFilter) (float32, bool) {
	lobe, border := hf.lobe, hf.border
	dxx := box(it, r-lobe+1, c-border, 2*lobe-1, hf.filter) -
		3*box(it, r-lobe+1, c-hf.halfLobe, 2*lobe-1, lobe)
	dyy := box(it, r-border, c-lobe+1, hf.filter, 2*lobe-1) -
		3*box(it, r-hf.halfLobe, c-lobe+1, lobe, 2*lobe-1)
	dxy := box(it, r-lobe, c+1, lobe, lobe) +
		box(it, r+1, c-lobe, lobe, lobe) -
		box(it, r-lobe, c-lobe, lobe, lobe) -
		box(it, r+1, c+1, lobe, lobe)

	dxx *= hf.inv
	dyy *= hf.inv
	dxy *= hf.inv
	resp := dxx*dyy - 0.81*dxy*dxy
	return float32(resp), dxx+dyy >= 0
}

// denseRow fills one grid row of fast-Hessian responses. The vertical
// clamps depend only on the row, so the (clamped) integral-table row
// bases are hoisted out of the column loop; every cell whose horizontal
// extent lies inside the image takes a branch-free path, and only the
// x-border cells fall back to hessianAt. Both paths evaluate the same
// lookup-and-combine expressions in the same order, so the responses
// are bit-identical to calling hessianAt everywhere.
func (hf hessianFilter) denseRow(it *imaging.Integral, r, step, gw int, resp []float32, lap []bool) {
	lobe, border := hf.lobe, hf.border
	// First and last x-clamp-free columns: every box's x range stays
	// inside [0, W] iff c-border >= 0 and c+border+1 <= W.
	cLo, cHi := border, it.W-border-1
	clampY := func(v int) int {
		if v < 0 {
			return 0
		}
		if v > it.H {
			return it.H
		}
		return v
	}
	gx := 0
	for ; gx < gw && gx*step < cLo; gx++ {
		resp[gx], lap[gx] = hessianAt(it, r, gx*step, hf)
	}
	{
		st := it.W + 1
		sum := it.Sum
		// Clamped integral-table row bases for the five y spans.
		yA0, yA1 := clampY(r-lobe+1)*st, clampY(r+lobe)*st // dxx boxes
		yB0, yB1 := clampY(r-border)*st, clampY(r-border+hf.filter)*st
		yC0, yC1 := clampY(r-hf.halfLobe)*st, clampY(r-hf.halfLobe+lobe)*st
		yD0, yD1 := clampY(r-lobe)*st, clampY(r)*st // dxy upper boxes
		yE0, yE1 := clampY(r+1)*st, clampY(r+lobe+1)*st
		for ; gx < gw; gx++ {
			c := gx * step
			if c > cHi {
				break
			}
			x0, x1 := c-border, c+border+1
			dxx := (sum[yA1+x1] - sum[yA0+x1] - sum[yA1+x0] + sum[yA0+x0]) -
				3*(sum[yA1+c-hf.halfLobe+lobe]-sum[yA0+c-hf.halfLobe+lobe]-sum[yA1+c-hf.halfLobe]+sum[yA0+c-hf.halfLobe])
			x0, x1 = c-lobe+1, c+lobe
			dyy := (sum[yB1+x1] - sum[yB0+x1] - sum[yB1+x0] + sum[yB0+x0]) -
				3*(sum[yC1+x1]-sum[yC0+x1]-sum[yC1+x0]+sum[yC0+x0])
			dxy := (sum[yD1+c+lobe+1] - sum[yD0+c+lobe+1] - sum[yD1+c+1] + sum[yD0+c+1]) +
				(sum[yE1+c] - sum[yE0+c] - sum[yE1+c-lobe] + sum[yE0+c-lobe]) -
				(sum[yD1+c] - sum[yD0+c] - sum[yD1+c-lobe] + sum[yD0+c-lobe]) -
				(sum[yE1+c+lobe+1] - sum[yE0+c+lobe+1] - sum[yE1+c+1] + sum[yE0+c+1])
			dxx *= hf.inv
			dyy *= hf.inv
			dxy *= hf.inv
			resp[gx] = float32(dxx*dyy - 0.81*dxy*dxy)
			lap[gx] = dxx+dyy >= 0
		}
	}
	for ; gx < gw; gx++ {
		resp[gx], lap[gx] = hessianAt(it, r, gx*step, hf)
	}
}

func buildResponseLayers(it *imaging.Integral, w, h int, p Params, a *arena.Arena) [][]*responseLayer {
	out := arena.Cap[[]*responseLayer](a, p.NOctaves)
	for o := 0; o < p.NOctaves; o++ {
		step := p.InitSample << o
		gw, gh := w/step, h/step
		if gw < 3 || gh < 3 {
			break
		}
		oct := arena.Cap[*responseLayer](a, layersPerOctave)
		for i := 0; i < layersPerOctave; i++ {
			filter := 3 * ((1<<(o+1))*(i+1) + 1)
			if filter > w || filter > h {
				break
			}
			layer := arena.NewOf[responseLayer](a)
			layer.width, layer.height = gw, gh
			layer.step, layer.filter = step, filter
			layer.responses = arena.Slice[float32](a, gw*gh)
			layer.laplacian = arena.Slice[bool](a, gw*gh)
			hf := newHessianFilter(filter)
			for gy := 0; gy < gh; gy++ {
				r := gy * step
				hf.denseRow(it, r, step, gw,
					layer.responses[gy*gw:(gy+1)*gw],
					layer.laplacian[gy*gw:(gy+1)*gw])
			}
			oct = append(oct, layer)
		}
		if len(oct) >= 3 {
			out = append(out, oct)
		}
	}
	return out
}

// findExtrema runs 3x3x3 non-maximum suppression over each octave's
// middle layers and refines survivors with one Newton step.
func findExtrema(octaves [][]*responseLayer, p Params, sc *Scratch) []surfKp {
	var kps []surfKp
	if sc != nil {
		kps = sc.kps[:0]
	}
	threshold := float32(p.HessianThreshold)
	for o, oct := range octaves {
		for li := 1; li+1 < len(oct); li++ {
			b, m, t := oct[li-1], oct[li], oct[li+1]
			// The top layer's filter defines the usable border.
			borderCells := (t.filter/2)/m.step + 1
			for gy := borderCells; gy < m.height-borderCells; gy++ {
				for gx := borderCells; gx < m.width-borderCells; gx++ {
					v := m.at(gx, gy)
					if v < threshold {
						continue
					}
					if !isMaximal(b, m, t, gx, gy, v) {
						continue
					}
					kp, ok := interpolate(b, m, t, gx, gy, o)
					if ok {
						kps = append(kps, kp)
					}
				}
			}
		}
	}
	if sc != nil {
		// Save the grown spine back so the next extraction reuses it;
		// the returned slice stays valid until the arena resets.
		sc.kps = kps
	}
	return kps
}

func isMaximal(b, m, t *responseLayer, gx, gy int, v float32) bool {
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if b.at(gx+dx, gy+dy) >= v || t.at(gx+dx, gy+dy) >= v {
				return false
			}
			if (dx != 0 || dy != 0) && m.at(gx+dx, gy+dy) >= v {
				return false
			}
		}
	}
	return true
}

func interpolate(b, m, t *responseLayer, gx, gy, octave int) (surfKp, bool) {
	// Finite differences in (x, y, s) over the response grids.
	dx := 0.5 * float64(m.at(gx+1, gy)-m.at(gx-1, gy))
	dy := 0.5 * float64(m.at(gx, gy+1)-m.at(gx, gy-1))
	ds := 0.5 * float64(t.at(gx, gy)-b.at(gx, gy))
	v2 := 2 * float64(m.at(gx, gy))
	dxx := float64(m.at(gx+1, gy)+m.at(gx-1, gy)) - v2
	dyy := float64(m.at(gx, gy+1)+m.at(gx, gy-1)) - v2
	dss := float64(t.at(gx, gy)+b.at(gx, gy)) - v2
	dxy := 0.25 * float64(m.at(gx+1, gy+1)-m.at(gx-1, gy+1)-m.at(gx+1, gy-1)+m.at(gx-1, gy-1))
	dxs := 0.25 * float64(t.at(gx+1, gy)-t.at(gx-1, gy)-b.at(gx+1, gy)+b.at(gx-1, gy))
	dys := 0.25 * float64(t.at(gx, gy+1)-t.at(gx, gy-1)-b.at(gx, gy+1)+b.at(gx, gy-1))

	sx, sy, ss, ok := solve3(dxx, dxy, dxs, dxy, dyy, dys, dxs, dys, dss, -dx, -dy, -ds)
	if !ok || math.Abs(sx) >= 1 || math.Abs(sy) >= 1 || math.Abs(ss) >= 1 {
		return surfKp{}, false
	}
	filterStep := float64(m.filter - b.filter)
	x := (float64(gx) + sx) * float64(m.step)
	y := (float64(gy) + sy) * float64(m.step)
	size := float64(m.filter) + ss*filterStep
	idx := gy*m.width + gx
	return surfKp{
		x: float32(x), y: float32(y),
		scale:    float32(1.2 * size / 9),
		response: m.at(gx, gy),
		octave:   octave,
		sign:     m.laplacian[idx],
	}, true
}

func solve3(a11, a12, a13, a21, a22, a23, a31, a32, a33, b1, b2, b3 float64) (x1, x2, x3 float64, ok bool) {
	m := [3][4]float64{
		{a11, a12, a13, b1},
		{a21, a22, a23, b2},
		{a31, a32, a33, b3},
	}
	for col := 0; col < 3; col++ {
		p := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-12 {
			return 0, 0, 0, false
		}
		m[col], m[p] = m[p], m[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c < 4; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	return m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2], true
}

// haarX is the horizontal Haar wavelet response of side s at (x, y).
func haarX(it *imaging.Integral, x, y, s int) float64 {
	half := s / 2
	return it.BoxSum(x, y-half, x+half, y+half) -
		it.BoxSum(x-half, y-half, x, y+half)
}

// haarY is the vertical Haar wavelet response of side s at (x, y).
func haarY(it *imaging.Integral, x, y, s int) float64 {
	half := s / 2
	return it.BoxSum(x-half, y, x+half, y+half) -
		it.BoxSum(x-half, y-half, x+half, y)
}

// orientation assigns the dominant Haar response direction within a
// radius of 6 scales using a sliding pi/3 window.
func orientation(it *imaging.Integral, kp surfKp) float32 {
	s := int(math.Round(float64(kp.scale)))
	if s < 1 {
		s = 1
	}
	x0, y0 := int(math.Round(float64(kp.x))), int(math.Round(float64(kp.y)))
	type resp struct {
		angle, gx, gy float64
	}
	var sampleBuf [113]resp  // 113 grid points satisfy dx*dx+dy*dy < 36
	samples := sampleBuf[:0] // stack-backed: the bound is fixed by the window
	haarSize := 4 * s
	for dy := -6; dy <= 6; dy++ {
		for dx := -6; dx <= 6; dx++ {
			if dx*dx+dy*dy >= 36 {
				continue
			}
			gw := orientGauss[(dy+6)*13+(dx+6)]
			rx := gw * haarX(it, x0+dx*s, y0+dy*s, haarSize)
			ry := gw * haarY(it, x0+dx*s, y0+dy*s, haarSize)
			if rx == 0 && ry == 0 {
				continue
			}
			a := math.Atan2(ry, rx)
			if a < 0 {
				a += 2 * math.Pi
			}
			samples = append(samples, resp{angle: a, gx: rx, gy: ry})
		}
	}
	if len(samples) == 0 {
		return 0
	}
	best, bestNorm := 0.0, -1.0
	const window = math.Pi / 3
	for ang := 0.0; ang < 2*math.Pi; ang += 0.15 {
		var sx, sy float64
		for _, sm := range samples {
			// d = Mod(angle-ang+2pi, 2pi) via conditional subtraction:
			// for 2pi <= d < 2*2pi the subtraction is exact (Sterbenz),
			// so this matches math.Mod bit for bit on this range.
			d := sm.angle - ang + 2*math.Pi
			for d >= 2*math.Pi {
				d -= 2 * math.Pi
			}
			if d < window {
				sx += sm.gx
				sy += sm.gy
			}
		}
		if n := sx*sx + sy*sy; n > bestNorm {
			bestNorm = n
			best = math.Atan2(sy, sx)
		}
	}
	if best < 0 {
		best += 2 * math.Pi
	}
	return float32(best)
}

func gauss2d(x, y, sigma float64) float64 {
	return math.Exp(-(x*x + y*y) / (2 * sigma * sigma))
}

// orientGauss caches gauss2d(dx, dy, 2.5) for the 13x13 orientation
// window — the weights depend only on the integer offsets, so the table
// holds exactly the values the per-keypoint calls produced.
var orientGauss = func() []float64 {
	t := make([]float64, 13*13)
	for dy := -6; dy <= 6; dy++ {
		for dx := -6; dx <= 6; dx++ {
			t[(dy+6)*13+(dx+6)] = gauss2d(float64(dx), float64(dy), 2.5)
		}
	}
	return t
}()

// describe computes the 64-d SURF descriptor: 4x4 subregions of a 20s
// window, each summarising 5x5 Haar samples as [sum dx, sum |dx|,
// sum dy, sum |dy|] in the keypoint's rotated frame.
func describe(it *imaging.Integral, kp surfKp, angle float32, a *arena.Arena) []float32 {
	s := float64(kp.scale)
	if s < 1 {
		s = 1
	}
	cosA := math.Cos(float64(angle))
	sinA := math.Sin(float64(angle))
	haarSize := 2 * int(math.Round(s))
	if haarSize < 2 {
		haarSize = 2
	}

	desc := arena.Slice[float32](a, 64)
	k := 0
	for sr := -2; sr < 2; sr++ { // subregion rows
		for sc := -2; sc < 2; sc++ {
			var sumDx, sumDy, sumAx, sumAy float64
			for iy := 0; iy < 5; iy++ {
				for ix := 0; ix < 5; ix++ {
					// Sample position in the keypoint frame (units of s).
					u := (float64(sc*5+ix) + 0.5) * s
					v := (float64(sr*5+iy) + 0.5) * s
					// Rotate into image coordinates.
					px := int(math.Round(float64(kp.x) + u*cosA - v*sinA))
					py := int(math.Round(float64(kp.y) + u*sinA + v*cosA))
					rx := haarX(it, px, py, haarSize)
					ry := haarY(it, px, py, haarSize)
					// Rotate responses back into the keypoint frame.
					tdx := rx*cosA + ry*sinA
					tdy := -rx*sinA + ry*cosA
					gw := gauss2d(u/s, v/s, 3.3)
					tdx *= gw
					tdy *= gw
					sumDx += tdx
					sumDy += tdy
					sumAx += math.Abs(tdx)
					sumAy += math.Abs(tdy)
				}
			}
			desc[k] = float32(sumDx)
			desc[k+1] = float32(sumAx)
			desc[k+2] = float32(sumDy)
			desc[k+3] = float32(sumAy)
			k += 4
		}
	}
	// Normalise to unit length for illumination invariance.
	var norm float64
	for _, v := range desc {
		norm += float64(v) * float64(v)
	}
	norm = math.Sqrt(norm)
	if norm > 1e-12 {
		for i := range desc {
			desc[i] = float32(float64(desc[i]) / norm)
		}
	}
	return desc
}
