package features

import (
	"reflect"
	"testing"
)

// TestUnpackWordsInverse pins UnpackWords as the exact inverse of the
// word packing Pack performs, including non-multiple-of-8 row widths.
func TestUnpackWordsInverse(t *testing.T) {
	for _, nb := range []int{1, 3, 8, 11, 32} {
		row := make([]byte, nb)
		for i := range row {
			row[i] = byte(i*37 + 11)
		}
		s := (&Set{Keypoints: []Keypoint{{}}, Binary: [][]byte{row}}).Pack()
		got := make([]byte, nb)
		UnpackWords(got, s.Packed.WordRow(0))
		if !reflect.DeepEqual(got, row) {
			t.Fatalf("nb=%d: unpacked %v != original %v", nb, got, row)
		}
	}
}

// TestRestoreSetRoundTrip checks that a Set rebuilt from its keypoints
// and packed block is indistinguishable from the original: same rows,
// same representation, and Pack is a no-op on it.
func TestRestoreSetRoundTrip(t *testing.T) {
	bin := &Set{
		Keypoints: []Keypoint{{X: 1, Y: 2}, {X: 3, Angle: 0.5}},
		Binary:    [][]byte{{1, 2, 3, 250}, {9, 8, 7, 6}},
	}
	bin.Pack()
	rb := RestoreSet(bin.Keypoints, bin.Packed)
	if !rb.IsBinary() || !reflect.DeepEqual(rb.Binary, bin.Binary) || !reflect.DeepEqual(rb.Keypoints, bin.Keypoints) {
		t.Fatalf("binary restore mismatch: %+v", rb)
	}
	if rb.Pack().Packed != bin.Packed {
		t.Fatal("Pack rebuilt an already-packed restored set")
	}

	fl := &Set{
		Keypoints: []Keypoint{{X: 1}, {X: 2}, {X: 3}},
		Float:     [][]float32{{1, 2}, {3, 4}, {5, 6.5}},
	}
	fl.Pack()
	rf := RestoreSet(fl.Keypoints, fl.Packed)
	if rf.IsBinary() || len(rf.Float) != 3 {
		t.Fatalf("float restore mismatch: %+v", rf)
	}
	for i := range fl.Float {
		if !reflect.DeepEqual(rf.Float[i], fl.Float[i]) {
			t.Fatalf("float row %d: %v != %v", i, rf.Float[i], fl.Float[i])
		}
	}

	// Empty sets keep their representation.
	eb := RestoreSet(nil, (&Set{Binary: [][]byte{}}).Pack().Packed)
	if !eb.IsBinary() || eb.Len() != 0 {
		t.Fatalf("empty binary restore lost its representation: %+v", eb)
	}
	ef := RestoreSet(nil, (&Set{}).Pack().Packed)
	if ef.IsBinary() || ef.Len() != 0 {
		t.Fatalf("empty float restore gained a representation: %+v", ef)
	}
}
