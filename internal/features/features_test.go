package features

import (
	"math"
	"testing"
	"testing/quick"
)

func TestL2(t *testing.T) {
	a := []float32{0, 0, 0}
	b := []float32{3, 4, 0}
	if got := L2(a, b); got != 5 {
		t.Errorf("L2 = %v, want 5", got)
	}
	if got := L2(b, b); got != 0 {
		t.Errorf("self L2 = %v", got)
	}
}

func TestHamming(t *testing.T) {
	a := []byte{0b10101010, 0xff}
	b := []byte{0b01010101, 0xff}
	if got := Hamming(a, b); got != 8 {
		t.Errorf("Hamming = %d, want 8", got)
	}
	if got := Hamming(a, a); got != 0 {
		t.Errorf("self Hamming = %d", got)
	}
	if got := Hamming([]byte{0}, []byte{0xff}); got != 8 {
		t.Errorf("full Hamming = %d", got)
	}
}

func TestHammingMatchesNaive(t *testing.T) {
	naive := func(a, b []byte) int {
		n := 0
		for i := range a {
			x := a[i] ^ b[i]
			for x != 0 {
				n += int(x & 1)
				x >>= 1
			}
		}
		return n
	}
	f := func(a, b [8]byte) bool {
		return Hamming(a[:], b[:]) == naive(a[:], b[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestL2TriangleInequality(t *testing.T) {
	f := func(a, b, c [4]float32) bool {
		for _, v := range append(append(a[:], b[:]...), c[:]...) {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || math.Abs(float64(v)) > 1e10 {
				return true
			}
		}
		ab := float64(L2(a[:], b[:]))
		bc := float64(L2(b[:], c[:]))
		ac := float64(L2(a[:], c[:]))
		return ac <= ab+bc+1e-3*(1+ac)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSetAccessors(t *testing.T) {
	s := &Set{Keypoints: []Keypoint{{X: 1}}, Binary: [][]byte{{1}}}
	if s.Len() != 1 || !s.IsBinary() {
		t.Error("binary set accessors wrong")
	}
	f := &Set{Keypoints: []Keypoint{{X: 1}}, Float: [][]float32{{1}}}
	if f.Len() != 1 || f.IsBinary() {
		t.Error("float set accessors wrong")
	}
}
