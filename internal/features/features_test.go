package features

import (
	"math"
	"testing"
	"testing/quick"
)

func TestL2(t *testing.T) {
	a := []float32{0, 0, 0}
	b := []float32{3, 4, 0}
	if got := L2(a, b); got != 5 {
		t.Errorf("L2 = %v, want 5", got)
	}
	if got := L2(b, b); got != 0 {
		t.Errorf("self L2 = %v", got)
	}
}

func TestHamming(t *testing.T) {
	a := []byte{0b10101010, 0xff}
	b := []byte{0b01010101, 0xff}
	if got := Hamming(a, b); got != 8 {
		t.Errorf("Hamming = %d, want 8", got)
	}
	if got := Hamming(a, a); got != 0 {
		t.Errorf("self Hamming = %d", got)
	}
	if got := Hamming([]byte{0}, []byte{0xff}); got != 8 {
		t.Errorf("full Hamming = %d", got)
	}
}

func TestHammingMatchesNaive(t *testing.T) {
	naive := func(a, b []byte) int {
		n := 0
		for i := range a {
			x := a[i] ^ b[i]
			for x != 0 {
				n += int(x & 1)
				x >>= 1
			}
		}
		return n
	}
	f := func(a, b [8]byte) bool {
		return Hamming(a[:], b[:]) == naive(a[:], b[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestL2TriangleInequality(t *testing.T) {
	f := func(a, b, c [4]float32) bool {
		for _, v := range append(append(a[:], b[:]...), c[:]...) {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || math.Abs(float64(v)) > 1e10 {
				return true
			}
		}
		ab := float64(L2(a[:], b[:]))
		bc := float64(L2(b[:], c[:]))
		ac := float64(L2(a[:], c[:]))
		return ac <= ab+bc+1e-3*(1+ac)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPackFloat(t *testing.T) {
	s := &Set{
		Keypoints: make([]Keypoint, 3),
		Float:     [][]float32{{1, 2, 3}, {4, 5, 6}, {-1, 0, 0.5}},
	}
	s.Pack()
	p := s.Packed
	if p == nil || p.N != 3 || p.Dim != 3 {
		t.Fatalf("packed shape = %+v", p)
	}
	for i, row := range s.Float {
		got := p.FloatRow(i)
		for j := range row {
			if got[j] != row[j] {
				t.Errorf("row %d col %d: %v != %v", i, j, got[j], row[j])
			}
		}
		if want := L2Squared(row, nil); p.Norms[i] != want {
			t.Errorf("norm %d = %v, want %v", i, p.Norms[i], want)
		}
	}
	// Idempotent.
	before := s.Packed
	if s.Pack(); s.Packed != before {
		t.Error("Pack rebuilt an existing packed layout")
	}
}

func TestPackBinaryWordsMatchHamming(t *testing.T) {
	// Byte lengths exercising zero-padded tail words.
	for _, nb := range []int{1, 7, 8, 9, 16, 32, 33} {
		rows := make([][]byte, 6)
		seed := uint32(2891 + nb)
		for i := range rows {
			row := make([]byte, nb)
			for j := range row {
				seed = seed*1664525 + 1013904223
				row[j] = byte(seed >> 24)
			}
			rows[i] = row
		}
		s := &Set{Keypoints: make([]Keypoint, len(rows)), Binary: rows}
		s.Pack()
		p := s.Packed
		if p.WordsPerRow != (nb+7)/8 {
			t.Fatalf("nb=%d: wordsPerRow = %d", nb, p.WordsPerRow)
		}
		for i := range rows {
			for j := range rows {
				want := Hamming(rows[i], rows[j])
				got := HammingWords(p.WordRow(i), p.WordRow(j))
				if got != want {
					t.Errorf("nb=%d rows %d,%d: HammingWords=%d Hamming=%d", nb, i, j, got, want)
				}
			}
		}
	}
}

func TestPackEmptySets(t *testing.T) {
	for _, s := range []*Set{
		{},
		{Binary: [][]byte{}},
		{Float: [][]float32{}},
	} {
		s.Pack()
		if s.Packed == nil || s.Packed.N != 0 {
			t.Errorf("empty pack = %+v", s.Packed)
		}
	}
}

func TestL2SquaredMatchesL2(t *testing.T) {
	f := func(a, b [6]float32) bool {
		for _, v := range append(a[:], b[:]...) {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return true
			}
		}
		want := float32(math.Sqrt(float64(L2Squared(a[:], b[:]))))
		return L2(a[:], b[:]) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestL2SquaredPairAndQuadBitEqualScalar(t *testing.T) {
	// The multi-row kernels must reproduce the scalar accumulation bit
	// for bit — the whole flat engine's exactness contract rests on it.
	f := func(q, a, b, c, d [16]float32) bool {
		s0, s1 := L2Squared2(q[:], a[:], b[:])
		t0, t1, t2, t3 := L2Squared4(q[:], a[:], b[:], c[:], d[:])
		eq := func(x, y float32) bool {
			return math.Float32bits(x) == math.Float32bits(y)
		}
		return eq(s0, L2Squared(q[:], a[:])) &&
			eq(s1, L2Squared(q[:], b[:])) &&
			eq(t0, L2Squared(q[:], a[:])) &&
			eq(t1, L2Squared(q[:], b[:])) &&
			eq(t2, L2Squared(q[:], c[:])) &&
			eq(t3, L2Squared(q[:], d[:]))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSetAccessors(t *testing.T) {
	s := &Set{Keypoints: []Keypoint{{X: 1}}, Binary: [][]byte{{1}}}
	if s.Len() != 1 || !s.IsBinary() {
		t.Error("binary set accessors wrong")
	}
	f := &Set{Keypoints: []Keypoint{{X: 1}}, Float: [][]float32{{1}}}
	if f.Len() != 1 || f.IsBinary() {
		t.Error("float set accessors wrong")
	}
}
