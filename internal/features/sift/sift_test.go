package sift

import (
	"math"
	"testing"

	"snmatch/internal/features"
	"snmatch/internal/features/match"
	"snmatch/internal/geom"
	"snmatch/internal/imaging"
	"snmatch/internal/rng"
)

func blobImage() *imaging.Gray {
	// A bright Gaussian-ish blob: a classic DoG extremum.
	img := imaging.NewImage(64, 64)
	img.FillCircle(geom.Pt(32, 32), 6, imaging.White)
	return img.ToGray().GaussianBlur(1.5)
}

func texturedScene(seed uint64) *imaging.Gray {
	r := rng.New(seed)
	img := imaging.NewImageFilled(96, 96, imaging.C(30, 30, 30))
	for i := 0; i < 10; i++ {
		x := r.Intn(70) + 8
		y := r.Intn(70) + 8
		rad := float64(r.Intn(6) + 3)
		v := uint8(r.Intn(200) + 55)
		img.FillCircle(geom.Pt(float64(x), float64(y)), rad, imaging.C(v, v, v))
	}
	return img.ToGray()
}

func TestBlobDetected(t *testing.T) {
	set := Extract(blobImage(), Params{})
	if set.Len() == 0 {
		t.Fatal("no keypoints on a blob")
	}
	// At least one keypoint near the blob centre.
	found := false
	for _, kp := range set.Keypoints {
		if math.Hypot(float64(kp.X-32), float64(kp.Y-32)) < 4 {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no keypoint near blob centre; got %+v", set.Keypoints)
	}
}

func TestDescriptorShapeAndNorm(t *testing.T) {
	set := Extract(texturedScene(1), Params{})
	if set.Len() == 0 {
		t.Fatal("no keypoints")
	}
	if set.IsBinary() {
		t.Fatal("SIFT must produce float descriptors")
	}
	for _, d := range set.Float {
		if len(d) != 128 {
			t.Fatalf("descriptor length = %d", len(d))
		}
		var norm float64
		for _, v := range d {
			if v < 0 {
				t.Fatal("negative descriptor entry")
			}
			norm += float64(v) * float64(v)
		}
		norm = math.Sqrt(norm)
		if math.Abs(norm-1) > 0.01 {
			t.Fatalf("descriptor norm = %v", norm)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := Extract(texturedScene(2), Params{})
	b := Extract(texturedScene(2), Params{})
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Float {
		if features.L2(a.Float[i], b.Float[i]) != 0 {
			t.Fatal("descriptors not deterministic")
		}
	}
}

func TestFlatImageNoKeypoints(t *testing.T) {
	g := imaging.NewImageFilled(64, 64, imaging.C(120, 120, 120)).ToGray()
	if set := Extract(g, Params{}); set.Len() != 0 {
		t.Errorf("flat image keypoints = %d", set.Len())
	}
}

func TestContrastThresholdMonotone(t *testing.T) {
	g := texturedScene(3)
	lo := Extract(g, Params{ContrastThreshold: 0.01})
	hi := Extract(g, Params{ContrastThreshold: 0.2})
	if hi.Len() > lo.Len() {
		t.Errorf("higher contrast threshold kept more keypoints: %d > %d", hi.Len(), lo.Len())
	}
}

func TestMaxFeaturesCap(t *testing.T) {
	g := texturedScene(4)
	set := Extract(g, Params{MaxFeatures: 5, ContrastThreshold: 0.01})
	if set.Len() > 5 {
		t.Errorf("cap exceeded: %d", set.Len())
	}
}

func TestTranslatedSceneMatches(t *testing.T) {
	g := texturedScene(5)
	img := g.ToImage()
	shifted := img.WarpAffine(geom.Translation(6, 4), img.W, img.H, imaging.C(30, 30, 30)).ToGray()
	a := Extract(g, Params{})
	b := Extract(shifted, Params{})
	if a.Len() < 5 || b.Len() < 5 {
		t.Skipf("too few keypoints: %d, %d", a.Len(), b.Len())
	}
	good := match.RatioTest(match.KNN(a, b, 2), 0.8)
	if len(good) < 3 {
		t.Fatalf("only %d ratio-test matches", len(good))
	}
	consistent := 0
	for _, m := range good {
		ka, kb := a.Keypoints[m.QueryIdx], b.Keypoints[m.TrainIdx]
		if math.Abs(float64(kb.X-ka.X-6)) < 2.5 && math.Abs(float64(kb.Y-ka.Y-4)) < 2.5 {
			consistent++
		}
	}
	if consistent*2 < len(good) {
		t.Errorf("only %d/%d displacement-consistent matches", consistent, len(good))
	}
}

func TestScaledSceneStillMatches(t *testing.T) {
	g := texturedScene(7)
	big := g.ResizeBilinear(g.W*3/2, g.H*3/2)
	a := Extract(g, Params{})
	b := Extract(big, Params{})
	if a.Len() < 5 || b.Len() < 5 {
		t.Skipf("too few keypoints: %d %d", a.Len(), b.Len())
	}
	good := match.RatioTest(match.KNN(a, b, 2), 0.8)
	if len(good) == 0 {
		t.Error("no matches across 1.5x scaling")
	}
}

func TestNoDoubleImageStillWorks(t *testing.T) {
	set := Extract(texturedScene(8), Params{NoDoubleImage: true})
	// Fewer keypoints than the doubled pipeline is expected, but the
	// extractor must still function.
	for _, d := range set.Float {
		if len(d) != 128 {
			t.Fatal("bad descriptor length without doubling")
		}
	}
}

func TestTinyImageDoesNotPanic(t *testing.T) {
	g := imaging.NewImageFilled(10, 10, imaging.C(50, 50, 50)).ToGray()
	_ = Extract(g, Params{})
}
