// Package sift implements the SIFT detector and descriptor of Lowe
// (2004): a Gaussian scale space, difference-of-Gaussian extrema with
// subpixel refinement, contrast and edge rejection, gradient orientation
// assignment, and the 4x4x8 = 128-dimensional descriptor with trilinear
// binning, normalisation and the 0.2 clamp.
package sift

import (
	"math"

	"snmatch/internal/arena"
	"snmatch/internal/features"
	"snmatch/internal/imaging"
)

// Params configures extraction. Zero values select the defaults noted on
// each field.
type Params struct {
	NOctaveLayers     int     // scales per octave (default 3)
	ContrastThreshold float64 // DoG contrast rejection (default 0.04)
	EdgeThreshold     float64 // principal curvature ratio limit (default 10)
	Sigma             float64 // base blur (default 1.6)
	NoDoubleImage     bool    // skip the initial 2x upsampling
	MaxFeatures       int     // keep the strongest N (0 = all)
}

func (p Params) withDefaults() Params {
	if p.NOctaveLayers <= 0 {
		p.NOctaveLayers = 3
	}
	if p.ContrastThreshold <= 0 {
		p.ContrastThreshold = 0.04
	}
	if p.EdgeThreshold <= 0 {
		p.EdgeThreshold = 10
	}
	if p.Sigma <= 0 {
		p.Sigma = 1.6
	}
	return p
}

const (
	descWidth      = 4 // d: spatial bins per side
	descBins       = 8 // n: orientation bins per spatial bin
	orientBins     = 36
	orientSigmaFac = 1.5
	orientRadius   = 3 * orientSigmaFac
	peakRatio      = 0.8
	descSclFactor  = 3.0
	descMagThresh  = 0.2
	maxInterpSteps = 5
	imgBorder      = 5
)

// Scratch recycles SIFT's per-query working set: every raster of the
// Gaussian and DoG pyramids, the convolution scratch and descriptor
// rows come from the arena, and the candidate-keypoint accumulator is a
// reusable spine that grows to the workload's steady-state size once.
// A nil *Scratch allocates freshly, exactly like Extract. One
// extraction may be in flight per Scratch between arena Resets; the
// returned Set is invalid after the Reset.
type Scratch struct {
	A    *arena.Arena
	Feat *features.Scratch

	kps []internalKp
}

func (sc *Scratch) arena() *arena.Arena {
	if sc == nil {
		return nil
	}
	return sc.A
}

func (sc *Scratch) feat() *features.Scratch {
	if sc == nil {
		return nil
	}
	return sc.Feat
}

// Extract detects SIFT keypoints and computes their descriptors.
func Extract(g *imaging.Gray, params Params) *features.Set {
	return ExtractScratch(g, params, nil)
}

// ExtractScratch is Extract over a recycled extraction context; its
// output is bit-identical to Extract for every input.
func ExtractScratch(g *imaging.Gray, params Params, sc *Scratch) *features.Set {
	p := params.withDefaults()
	a := sc.arena()

	base := initialImage(g, !p.NoDoubleImage, p.Sigma, a)
	minDim := base.W
	if base.H < minDim {
		minDim = base.H
	}
	nOctaves := int(math.Round(math.Log2(float64(minDim)))) - 2
	if nOctaves < 1 {
		nOctaves = 1
	}

	gauss := buildGaussianPyramid(base, nOctaves, p.NOctaveLayers, p.Sigma, a)
	dog := buildDoGPyramid(gauss, a)

	kps := findScaleSpaceExtrema(gauss, dog, p, sc)
	if p.MaxFeatures > 0 && len(kps) > p.MaxFeatures {
		sortByResponse(kps)
		kps = kps[:p.MaxFeatures]
	}

	set := sc.feat().NewFloatSet()
	firstOctaveScale := float32(1.0)
	if !p.NoDoubleImage {
		firstOctaveScale = 0.5
	}
	for _, k := range kps {
		desc := computeDescriptor(gauss, k, p.NOctaveLayers, a)
		kp := features.Keypoint{
			X:        k.x * float32(math.Pow(2, float64(k.octave))) * firstOctaveScale,
			Y:        k.y * float32(math.Pow(2, float64(k.octave))) * firstOctaveScale,
			Size:     k.size * firstOctaveScale,
			Angle:    k.angle,
			Response: k.response,
			Octave:   k.octave,
		}
		set.Keypoints = append(set.Keypoints, kp)
		set.Float = append(set.Float, desc)
	}
	return sc.feat().Finish(set)
}

// internalKp is a keypoint in octave coordinates before remapping.
type internalKp struct {
	x, y     float32 // coordinates at the octave's sampling
	octave   int
	layer    int
	sclOctv  float32 // scale relative to the octave
	size     float32 // absolute size at octave 0 sampling
	angle    float32
	response float32
}

func sortByResponse(kps []internalKp) {
	// Insertion sort keeps this dependency-free; keypoint counts are small.
	for i := 1; i < len(kps); i++ {
		k := kps[i]
		j := i - 1
		for j >= 0 && kps[j].response < k.response {
			kps[j+1] = kps[j]
			j--
		}
		kps[j+1] = k
	}
}

// initialImage converts to float in [0, 1], optionally doubles the size,
// and applies the base blur assuming the camera already blurred the input
// with sigma 0.5.
func initialImage(g *imaging.Gray, double bool, sigma float64, a *arena.Arena) *imaging.FloatGray {
	f := imaging.NewFloatGrayIn(a, g.W, g.H)
	for i, v := range g.Pix {
		f.Pix[i] = float32(v) / 255
	}
	const cameraSigma = 0.5
	if double {
		f = f.ResizeBilinearIn(a, g.W*2, g.H*2)
		diff := math.Sqrt(math.Max(sigma*sigma-4*cameraSigma*cameraSigma, 0.01))
		return f.GaussianBlurIn(a, diff)
	}
	diff := math.Sqrt(math.Max(sigma*sigma-cameraSigma*cameraSigma, 0.01))
	return f.GaussianBlurIn(a, diff)
}

func buildGaussianPyramid(base *imaging.FloatGray, nOctaves, nLayers int, sigma float64, a *arena.Arena) [][]*imaging.FloatGray {
	perOct := nLayers + 3
	// Incremental sigmas between consecutive layers.
	sig := arena.Slice[float64](a, perOct)
	sig[0] = sigma
	k := math.Pow(2, 1/float64(nLayers))
	for i := 1; i < perOct; i++ {
		sigPrev := sigma * math.Pow(k, float64(i-1))
		sigTotal := sigPrev * k
		sig[i] = math.Sqrt(sigTotal*sigTotal - sigPrev*sigPrev)
	}
	pyr := arena.Slice[[]*imaging.FloatGray](a, nOctaves)
	for o := 0; o < nOctaves; o++ {
		pyr[o] = arena.Slice[*imaging.FloatGray](a, perOct)
		if o == 0 {
			pyr[o][0] = base
		} else {
			// Start from the layer with twice the base sigma of the
			// previous octave, downsampled by two.
			pyr[o][0] = pyr[o-1][nLayers].Downsample2In(a)
		}
		for i := 1; i < perOct; i++ {
			pyr[o][i] = pyr[o][i-1].GaussianBlurIn(a, sig[i])
		}
	}
	return pyr
}

func buildDoGPyramid(gauss [][]*imaging.FloatGray, a *arena.Arena) [][]*imaging.FloatGray {
	dog := arena.Slice[[]*imaging.FloatGray](a, len(gauss))
	for o := range gauss {
		dog[o] = arena.Slice[*imaging.FloatGray](a, len(gauss[o])-1)
		for i := 0; i+1 < len(gauss[o]); i++ {
			dog[o][i] = gauss[o][i+1].SubtractIn(a, gauss[o][i])
		}
	}
	return dog
}

func findScaleSpaceExtrema(gauss, dog [][]*imaging.FloatGray, p Params, sc *Scratch) []internalKp {
	nLayers := p.NOctaveLayers
	threshold := float32(0.5 * p.ContrastThreshold / float64(nLayers))
	var kps []internalKp
	if sc != nil {
		kps = sc.kps[:0]
	}
	for o := range dog {
		for layer := 1; layer <= nLayers; layer++ {
			prev, cur, next := dog[o][layer-1], dog[o][layer], dog[o][layer+1]
			w, h := cur.W, cur.H
			for y := imgBorder; y < h-imgBorder; y++ {
				for x := imgBorder; x < w-imgBorder; x++ {
					v := cur.At(x, y)
					if absf(v) <= threshold {
						continue
					}
					if !isExtremum(prev, cur, next, x, y, v) {
						continue
					}
					kp, ok := adjustLocalExtremum(dog[o], o, layer, x, y, p)
					if !ok {
						continue
					}
					// Orientation assignment may split the keypoint.
					kps = appendOrientations(kps, gauss[o], kp)
				}
			}
		}
	}
	if sc != nil {
		// Save the grown spine back so the next extraction reuses it;
		// the returned slice stays valid until the arena resets.
		sc.kps = kps
	}
	return kps
}

func isExtremum(prev, cur, next *imaging.FloatGray, x, y int, v float32) bool {
	if v > 0 {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if prev.At(x+dx, y+dy) > v || next.At(x+dx, y+dy) > v {
					return false
				}
				if (dx != 0 || dy != 0) && cur.At(x+dx, y+dy) > v {
					return false
				}
			}
		}
		return true
	}
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if prev.At(x+dx, y+dy) < v || next.At(x+dx, y+dy) < v {
				return false
			}
			if (dx != 0 || dy != 0) && cur.At(x+dx, y+dy) < v {
				return false
			}
		}
	}
	return true
}

// adjustLocalExtremum refines the extremum location with up to five
// Newton iterations over (x, y, scale) and applies the contrast and edge
// rejection tests.
func adjustLocalExtremum(dogOct []*imaging.FloatGray, octave, layer, x, y int, p Params) (internalKp, bool) {
	nLayers := p.NOctaveLayers
	var xi, xr, xc float64
	var contr float64
	i := 0
	for ; i < maxInterpSteps; i++ {
		prev, cur, next := dogOct[layer-1], dogOct[layer], dogOct[layer+1]
		// Gradient.
		dx := 0.5 * float64(cur.At(x+1, y)-cur.At(x-1, y))
		dy := 0.5 * float64(cur.At(x, y+1)-cur.At(x, y-1))
		ds := 0.5 * float64(next.At(x, y)-prev.At(x, y))
		// Hessian.
		v2 := 2 * float64(cur.At(x, y))
		dxx := float64(cur.At(x+1, y)+cur.At(x-1, y)) - v2
		dyy := float64(cur.At(x, y+1)+cur.At(x, y-1)) - v2
		dss := float64(next.At(x, y)+prev.At(x, y)) - v2
		dxy := 0.25 * float64(cur.At(x+1, y+1)-cur.At(x-1, y+1)-cur.At(x+1, y-1)+cur.At(x-1, y-1))
		dxs := 0.25 * float64(next.At(x+1, y)-next.At(x-1, y)-prev.At(x+1, y)+prev.At(x-1, y))
		dys := 0.25 * float64(next.At(x, y+1)-next.At(x, y-1)-prev.At(x, y+1)+prev.At(x, y-1))

		sx, sy, ss, ok := solve3(dxx, dxy, dxs, dxy, dyy, dys, dxs, dys, dss, -dx, -dy, -ds)
		if !ok {
			return internalKp{}, false
		}
		xc, xr, xi = sx, sy, ss
		if math.Abs(xc) < 0.5 && math.Abs(xr) < 0.5 && math.Abs(xi) < 0.5 {
			contr = float64(cur.At(x, y)) + 0.5*(dx*xc+dy*xr+ds*xi)
			break
		}
		x += int(math.Round(xc))
		y += int(math.Round(xr))
		layer += int(math.Round(xi))
		if layer < 1 || layer > nLayers ||
			x < imgBorder || x >= cur.W-imgBorder ||
			y < imgBorder || y >= cur.H-imgBorder {
			return internalKp{}, false
		}
	}
	if i >= maxInterpSteps {
		return internalKp{}, false
	}
	if math.Abs(contr)*float64(nLayers) < p.ContrastThreshold {
		return internalKp{}, false
	}
	// Edge rejection on the 2x2 spatial Hessian.
	cur := dogOct[layer]
	v2 := 2 * float64(cur.At(x, y))
	dxx := float64(cur.At(x+1, y)+cur.At(x-1, y)) - v2
	dyy := float64(cur.At(x, y+1)+cur.At(x, y-1)) - v2
	dxy := 0.25 * float64(cur.At(x+1, y+1)-cur.At(x-1, y+1)-cur.At(x+1, y-1)+cur.At(x-1, y-1))
	tr := dxx + dyy
	det := dxx*dyy - dxy*dxy
	e := p.EdgeThreshold
	if det <= 0 || tr*tr*e >= (e+1)*(e+1)*det {
		return internalKp{}, false
	}

	sclOctv := float32(p.Sigma * math.Pow(2, (float64(layer)+xi)/float64(nLayers)))
	return internalKp{
		x:        float32(float64(x) + xc),
		y:        float32(float64(y) + xr),
		octave:   octave,
		layer:    layer,
		sclOctv:  sclOctv,
		size:     sclOctv * float32(math.Pow(2, float64(octave))) * 2,
		response: float32(math.Abs(contr)),
	}, true
}

// solve3 solves a 3x3 linear system by Gaussian elimination with partial
// pivoting. Returns ok=false for singular systems.
func solve3(a11, a12, a13, a21, a22, a23, a31, a32, a33, b1, b2, b3 float64) (x1, x2, x3 float64, ok bool) {
	m := [3][4]float64{
		{a11, a12, a13, b1},
		{a21, a22, a23, b2},
		{a31, a32, a33, b3},
	}
	for col := 0; col < 3; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-12 {
			return 0, 0, 0, false
		}
		m[col], m[p] = m[p], m[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c < 4; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	return m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2], true
}

// appendOrientations builds the 36-bin gradient histogram around the
// keypoint and appends one keypoint per dominant peak (>= 80% of max)
// to dst — the append-into-caller form that keeps the hot extrema sweep
// free of per-candidate slice allocations.
func appendOrientations(dst []internalKp, gaussOct []*imaging.FloatGray, kp internalKp) []internalKp {
	img := gaussOct[kp.layer]
	radius := int(math.Round(float64(orientRadius) * float64(kp.sclOctv)))
	if radius < 1 {
		radius = 1
	}
	sigma := orientSigmaFac * float64(kp.sclOctv)
	expDenom := 2 * sigma * sigma
	x0, y0 := int(math.Round(float64(kp.x))), int(math.Round(float64(kp.y)))

	var hist [orientBins]float64
	for dy := -radius; dy <= radius; dy++ {
		y := y0 + dy
		if y <= 0 || y >= img.H-1 {
			continue
		}
		for dx := -radius; dx <= radius; dx++ {
			x := x0 + dx
			if x <= 0 || x >= img.W-1 {
				continue
			}
			gx := float64(img.At(x+1, y) - img.At(x-1, y))
			gy := float64(img.At(x, y+1) - img.At(x, y-1))
			mag := math.Hypot(gx, gy)
			ori := math.Atan2(gy, gx)
			wgt := math.Exp(-(float64(dx*dx) + float64(dy*dy)) / expDenom)
			bin := int(math.Round(float64(orientBins) * (ori + math.Pi) / (2 * math.Pi)))
			bin = ((bin % orientBins) + orientBins) % orientBins
			hist[bin] += wgt * mag
		}
	}
	// Circular smoothing with the [1 4 6 4 1]/16 kernel.
	var smooth [orientBins]float64
	for i := 0; i < orientBins; i++ {
		smooth[i] = (hist[(i-2+orientBins)%orientBins]+hist[(i+2)%orientBins])*(1.0/16) +
			(hist[(i-1+orientBins)%orientBins]+hist[(i+1)%orientBins])*(4.0/16) +
			hist[i]*(6.0/16)
	}
	maxV := 0.0
	for _, v := range smooth {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		kp.angle = 0
		return append(dst, kp)
	}
	thresholdV := peakRatio * maxV
	appended := false
	for i := 0; i < orientBins; i++ {
		l := (i - 1 + orientBins) % orientBins
		r := (i + 1) % orientBins
		if smooth[i] <= smooth[l] || smooth[i] <= smooth[r] || smooth[i] < thresholdV {
			continue
		}
		// Parabolic interpolation of the peak bin.
		bin := float64(i) + 0.5*(smooth[l]-smooth[r])/(smooth[l]-2*smooth[i]+smooth[r])
		bin = math.Mod(bin+float64(orientBins), float64(orientBins))
		angle := bin*(2*math.Pi/float64(orientBins)) - math.Pi
		if angle < 0 {
			angle += 2 * math.Pi
		}
		k2 := kp
		k2.angle = float32(angle)
		dst = append(dst, k2)
		appended = true
	}
	if !appended {
		kp.angle = 0
		dst = append(dst, kp)
	}
	return dst
}

// histIdx flattens the (row, col, orientation) coordinates of the
// descriptor histogram, whose guard-binned extent is fixed by the
// descWidth/descBins constants.
func histIdx(r, c, o int) int { return (r*(descWidth+2)+c)*(descBins+2) + o }

// computeDescriptor produces the 128-d descriptor for the keypoint from
// its octave's Gaussian image. The histogram is a stack array (its
// extent is a compile-time constant) and the returned row comes from
// the arena, so a warm context computes descriptors without heap work.
func computeDescriptor(gauss [][]*imaging.FloatGray, kp internalKp, nLayers int, a *arena.Arena) []float32 {
	img := gauss[kp.octave][kp.layer]
	d, n := descWidth, descBins
	histWidth := descSclFactor * float64(kp.sclOctv)
	radius := int(math.Round(histWidth * math.Sqrt2 * (float64(d) + 1) * 0.5))
	// Clip the radius to the image diagonal.
	if maxR := int(math.Hypot(float64(img.W), float64(img.H))); radius > maxR {
		radius = maxR
	}
	cosA := math.Cos(float64(kp.angle))
	sinA := math.Sin(float64(kp.angle))
	binsPerRad := float64(n) / (2 * math.Pi)
	expDenom := float64(d) * float64(d) * 0.5
	x0, y0 := int(math.Round(float64(kp.x))), int(math.Round(float64(kp.y)))

	// Histogram with guard bins for trilinear interpolation.
	var hist [(descWidth + 2) * (descWidth + 2) * (descBins + 2)]float64

	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			// Rotated coordinates normalised to histogram cells.
			rotX := (cosA*float64(dx) + sinA*float64(dy)) / histWidth
			rotY := (-sinA*float64(dx) + cosA*float64(dy)) / histWidth
			rBin := rotY + float64(d)/2 - 0.5
			cBin := rotX + float64(d)/2 - 0.5
			if rBin <= -1 || rBin >= float64(d) || cBin <= -1 || cBin >= float64(d) {
				continue
			}
			x, y := x0+dx, y0+dy
			if x <= 0 || x >= img.W-1 || y <= 0 || y >= img.H-1 {
				continue
			}
			gx := float64(img.At(x+1, y) - img.At(x-1, y))
			gy := float64(img.At(x, y+1) - img.At(x, y-1))
			mag := math.Hypot(gx, gy)
			ori := math.Atan2(gy, gx) - float64(kp.angle)
			for ori < 0 {
				ori += 2 * math.Pi
			}
			for ori >= 2*math.Pi {
				ori -= 2 * math.Pi
			}
			oBin := ori * binsPerRad
			wgt := math.Exp(-(rotX*rotX + rotY*rotY) / expDenom)
			v := mag * wgt

			r0 := int(math.Floor(rBin))
			c0 := int(math.Floor(cBin))
			o0 := int(math.Floor(oBin))
			rb := rBin - float64(r0)
			cb := cBin - float64(c0)
			ob := oBin - float64(o0)

			// Trilinear distribution into 8 cells.
			for ri := 0; ri < 2; ri++ {
				rw := 1 - rb
				if ri == 1 {
					rw = rb
				}
				rr := r0 + ri + 1
				if rr < 0 || rr >= d+2 {
					continue
				}
				for ci := 0; ci < 2; ci++ {
					cw := 1 - cb
					if ci == 1 {
						cw = cb
					}
					cc := c0 + ci + 1
					if cc < 0 || cc >= d+2 {
						continue
					}
					for oi := 0; oi < 2; oi++ {
						ow := 1 - ob
						if oi == 1 {
							ow = ob
						}
						oo := (o0 + oi) % n
						if oo < 0 {
							oo += n
						}
						hist[histIdx(rr, cc, oo)] += v * rw * cw * ow
					}
				}
			}
		}
	}

	// Collapse the guard bins into the d*d*n vector.
	desc := arena.Slice[float32](a, d*d*n)
	k := 0
	for r := 1; r <= d; r++ {
		for c := 1; c <= d; c++ {
			for o := 0; o < n; o++ {
				desc[k] = float32(hist[histIdx(r, c, o)])
				k++
			}
		}
	}
	normalizeDescriptor(desc)
	return desc
}

// normalizeDescriptor applies Lowe's normalise -> clamp at 0.2 ->
// renormalise scheme in place.
func normalizeDescriptor(desc []float32) {
	var norm float64
	for _, v := range desc {
		norm += float64(v) * float64(v)
	}
	norm = math.Sqrt(norm)
	if norm < 1e-12 {
		return
	}
	for i := range desc {
		desc[i] = float32(math.Min(float64(desc[i])/norm, descMagThresh))
	}
	norm = 0
	for _, v := range desc {
		norm += float64(v) * float64(v)
	}
	norm = math.Sqrt(norm)
	if norm < 1e-12 {
		return
	}
	for i := range desc {
		desc[i] = float32(float64(desc[i]) / norm)
	}
}

func absf(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
