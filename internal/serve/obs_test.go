package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"snmatch/internal/imaging"
	"snmatch/internal/obs"
	"snmatch/internal/pipeline"
)

// getStatz fetches and decodes the /statz document.
func getStatz(t *testing.T, url string) obs.Statz {
	t.Helper()
	resp, err := http.Get(url + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statz status %d", resp.StatusCode)
	}
	var st obs.Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode /statz: %v", err)
	}
	return st
}

// getMetrics fetches the /metrics Prometheus text page.
func getMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestMetricsEndpoint drives real traffic — a successful /classify, an
// admission-shed 503 and a batcher queue shed — then asserts the served
// /metrics and /statz move accordingly. The obs registry is process
// global (other tests in the package also record into it), so every
// assertion is a delta against a baseline snapshot, never an absolute.
func TestMetricsEndpoint(t *testing.T) {
	g, queries := fixture(t)
	_, ts := newTestServer(t, Config{})
	before := getStatz(t, ts.URL)

	// One successful classify.
	resp, out := postClassify(t, ts.URL+"/classify?pipeline=orb", "image/png", pngBytes(t, queries.Samples[0].Image))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %d", resp.StatusCode)
	}
	if len(out.Predictions) != 1 {
		t.Fatalf("got %d predictions", len(out.Predictions))
	}
	// The response carries the stage breakdown: request-level decode,
	// per-prediction queue/batch/extract.
	if out.StagesMS["decode"] <= 0 {
		t.Fatalf("response stages_ms missing decode: %v", out.StagesMS)
	}
	ps := out.Predictions[0].StagesMS
	for _, stage := range []string{"queue", "batch", "extract"} {
		if ps[stage] <= 0 {
			t.Fatalf("prediction stages_ms missing %q: %v", stage, ps)
		}
	}

	// One admission shed: hold the only gate slot, then knock.
	s2, ts2 := newTestServer(t, Config{MaxInFlight: 1})
	if !s2.gate.TryEnter() {
		t.Fatal("could not take the only admission slot")
	}
	resp503, _ := postClassify(t, ts2.URL+"/classify?pipeline=orb", "image/png", pngBytes(t, queries.Samples[0].Image))
	s2.gate.Leave()
	if resp503.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated server answered %d, want 503", resp503.StatusCode)
	}

	// One batcher queue shed on a cap-1 standalone batcher: a large
	// scene job pins the collection loop in classification, so of two
	// concurrent fail-fast submits one fills the single queue slot and
	// the other must shed. Retried in case the scene drains implausibly
	// fast.
	sg := pipeline.NewShardedGallery(g, 1)
	b := newBatcher(sg, pipeline.NewDescriptor(pipeline.ORB, 0.5), 1, 1, 1, 0, nil)
	defer b.Close()
	shed := false
	for round := 0; round < 5 && !shed; round++ {
		crops := make([]*imaging.Image, 256)
		for i := range crops {
			crops[i] = queries.Samples[0].Image
		}
		sceneDone := make(chan struct{})
		go func() {
			b.SubmitSceneWait(context.Background(), crops)
			close(sceneDone)
		}()
		time.Sleep(2 * time.Millisecond) // let the loop draw the scene job
		var wg sync.WaitGroup
		var mu sync.Mutex
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := b.Submit(context.Background(), queries.Samples[0].Image); err == ErrOverloaded {
					mu.Lock()
					shed = true
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		<-sceneDone
	}
	if !shed {
		t.Fatal("no submission was shed against a cap-1 queue")
	}

	after := getStatz(t, ts.URL)
	cDelta := func(key string) int64 { return after.Counters[key] - before.Counters[key] }
	if d := cDelta(`snmatch_requests_total{endpoint="classify"}`); d < 2 {
		t.Fatalf("classify request counter moved by %d, want >= 2", d)
	}
	if d := cDelta(`snmatch_errors_total{endpoint="classify"}`); d < 1 {
		t.Fatalf("classify error counter moved by %d, want >= 1", d)
	}
	if d := cDelta("snmatch_admission_rejects_total"); d < 1 {
		t.Fatalf("admission reject counter moved by %d, want >= 1", d)
	}
	if d := cDelta("snmatch_batch_sheds_total"); d < 1 {
		t.Fatalf("batch shed counter moved by %d, want >= 1", d)
	}
	lat := `snmatch_request_seconds{endpoint="classify"}`
	if d := after.Histograms[lat].Count - before.Histograms[lat].Count; d < 1 {
		t.Fatalf("latency histogram count moved by %d, want >= 1", d)
	}
	if after.Histograms[lat].Mean <= 0 {
		t.Fatal("latency histogram has zero mean after traffic")
	}
	for _, stage := range []string{"queue", "batch", "extract", "match"} {
		key := `snmatch_stage_seconds{stage="` + stage + `"}`
		if after.Histograms[key].Count == 0 {
			t.Fatalf("stage histogram %s empty after traffic", key)
		}
	}
	if after.Histograms["snmatch_batch_size"].Count == 0 {
		t.Fatal("batch size histogram empty after traffic")
	}

	// The Prometheus text page must carry the same families as samples,
	// not just headers.
	text := getMetrics(t, ts.URL)
	for _, want := range []string{
		"# TYPE snmatch_requests_total counter",
		`snmatch_requests_total{endpoint="classify"} `,
		"# TYPE snmatch_request_seconds histogram",
		`snmatch_request_seconds_count{endpoint="classify"} `,
		`snmatch_request_seconds_bucket{endpoint="classify",le="+Inf"} `,
		`snmatch_stage_seconds_count{stage="extract"} `,
		"# TYPE snmatch_queue_depth gauge",
		"snmatch_batch_sheds_total ",
		"snmatch_admission_rejects_total ",
		"snmatch_ctx_pool_hits_total",
		"snmatch_arena_allocated_bytes_total ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The queue depth gauge must return to zero once traffic drains.
	if v := after.Gauges["snmatch_queue_depth"]; v != 0 {
		t.Fatalf("queue depth %d after drain, want 0", v)
	}
}

// TestGallerySwapCounter pins the registry replacement counter.
func TestGallerySwapCounter(t *testing.T) {
	g, _ := fixture(t)
	before := serveObs().swaps.Value()
	reg := NewRegistry()
	if err := reg.Add("swap-me", pipeline.NewShardedGallery(g, 1)); err != nil {
		t.Fatal(err)
	}
	if got := serveObs().swaps.Value(); got != before {
		t.Fatalf("first Add counted as a swap (%d -> %d)", before, got)
	}
	if err := reg.Add("swap-me", pipeline.NewShardedGallery(g, 2)); err != nil {
		t.Fatal(err)
	}
	if got := serveObs().swaps.Value(); got != before+1 {
		t.Fatalf("replacement moved swap counter %d -> %d, want +1", before, got)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the slow-query log writes
// from the handler goroutine while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowQueryLog sets a threshold every request exceeds and checks
// one structured line per slow request, carrying the stage breakdown.
func TestSlowQueryLog(t *testing.T) {
	_, queries := fixture(t)
	var log syncBuffer
	_, ts := newTestServer(t, Config{SlowLog: time.Nanosecond, SlowLogW: &log})
	resp, _ := postClassify(t, ts.URL+"/classify?pipeline=orb", "image/png", pngBytes(t, queries.Samples[0].Image))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %d", resp.StatusCode)
	}
	// The handler logs after writing the response; give it a moment.
	var line string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); time.Sleep(5 * time.Millisecond) {
		if s := log.String(); strings.Contains(s, "\n") {
			line = s[:strings.IndexByte(s, '\n')]
			break
		}
	}
	if line == "" {
		t.Fatal("no slow-query line logged")
	}
	var entry struct {
		Endpoint  string             `json:"endpoint"`
		Gallery   string             `json:"gallery"`
		Pipeline  string             `json:"pipeline"`
		Images    int                `json:"images"`
		Status    int                `json:"status"`
		LatencyMS float64            `json:"latency_ms"`
		StagesMS  map[string]float64 `json:"stages_ms"`
	}
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("slow-query line is not JSON: %v\n%s", err, line)
	}
	if entry.Endpoint != "classify" || entry.Gallery != "sns1" || entry.Images != 1 || entry.Status != http.StatusOK {
		t.Fatalf("slow-query entry %+v", entry)
	}
	if entry.LatencyMS <= 0 {
		t.Fatal("slow-query entry has no latency")
	}
	for _, stage := range []string{"decode", "queue", "batch", "extract"} {
		if entry.StagesMS[stage] <= 0 {
			t.Fatalf("slow-query stages_ms missing %q: %v", stage, entry.StagesMS)
		}
	}
}
