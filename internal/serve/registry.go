// Package serve is the recognition serving layer: a registry of
// prepared, sharded galleries, a request batcher that coalesces
// concurrent classification traffic into pooled batches, and the HTTP
// handlers the snserve daemon exposes. It turns the batch reproduction
// into a long-lived service: galleries are prepared (or snapshot-loaded)
// once, then queried many times.
package serve

import (
	"fmt"
	"sort"
	"sync"

	"snmatch/internal/pipeline"
)

// Registry maps gallery names to sharded galleries for multi-gallery
// serving. It is safe for concurrent use; galleries can be registered
// while traffic is being served.
type Registry struct {
	mu sync.RWMutex
	m  map[string]*pipeline.ShardedGallery
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: map[string]*pipeline.ShardedGallery{}}
}

// Add registers (or replaces) a gallery under name.
func (r *Registry) Add(name string, g *pipeline.ShardedGallery) error {
	if name == "" {
		return fmt.Errorf("serve: gallery name must not be empty")
	}
	if g == nil || g.G == nil {
		return fmt.Errorf("serve: gallery %q is nil", name)
	}
	r.mu.Lock()
	r.m[name] = g
	r.mu.Unlock()
	return nil
}

// Get returns the gallery registered under name.
func (r *Registry) Get(name string) (*pipeline.ShardedGallery, bool) {
	r.mu.RLock()
	g, ok := r.m[name]
	r.mu.RUnlock()
	return g, ok
}

// Resolve returns the gallery for a request: the named one, or — when
// the request names none — the sole registered gallery. The returned
// name is always the registry key.
func (r *Registry) Resolve(name string) (string, *pipeline.ShardedGallery, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		if len(r.m) == 1 {
			for n, g := range r.m {
				return n, g, nil
			}
		}
		return "", nil, fmt.Errorf("serve: request must name a gallery (%d registered)", len(r.m))
	}
	g, ok := r.m[name]
	if !ok {
		return "", nil, fmt.Errorf("serve: unknown gallery %q", name)
	}
	return name, g, nil
}

// Names returns the registered gallery names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.m))
	for n := range r.m {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len returns the number of registered galleries.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}
