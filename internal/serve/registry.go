// Package serve is the recognition serving layer: a registry of
// prepared, sharded galleries, a request batcher that coalesces
// concurrent classification traffic into pooled batches, and the HTTP
// handlers the snserve daemon exposes. It turns the batch reproduction
// into a long-lived service: galleries are prepared (or snapshot-loaded)
// once, then queried many times.
package serve

import (
	"fmt"
	"sort"
	"sync"

	"snmatch/internal/fault"
	"snmatch/internal/pipeline"
	"snmatch/internal/serve/snapshot"
)

// Resource is the lifecycle of a registered gallery's backing storage —
// concretely a *snapshot.Mapping, whose gallery aliases a memory-mapped
// file and must not be unmapped while anything can still scan it. The
// registry holds one reference for as long as the entry is registered,
// and every batcher serving the gallery holds its own for its lifetime,
// so replacing a gallery under live traffic releases the mapping only
// after the last in-flight classify has returned.
type Resource interface {
	Retain()
	Release()
}

// entry pairs a served gallery with its provenance and backing
// storage, when known.
type entry struct {
	sg      *pipeline.ShardedGallery
	meta    snapshot.Meta
	hasMeta bool
	res     Resource // nil for heap-backed galleries
}

// Registry maps gallery names to sharded galleries for multi-gallery
// serving. It is safe for concurrent use; galleries can be registered
// while traffic is being served.
type Registry struct {
	mu        sync.RWMutex
	m         map[string]entry
	watchers  map[int]func(name string)
	nextWatch int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: map[string]entry{}, watchers: map[int]func(string){}}
}

// Add registers (or replaces) a gallery under name, without provenance.
func (r *Registry) Add(name string, g *pipeline.ShardedGallery) error {
	return r.add(name, entry{sg: g})
}

// AddWithMeta is Add carrying the gallery's snapshot provenance, which
// /healthz reports per gallery.
func (r *Registry) AddWithMeta(name string, g *pipeline.ShardedGallery, meta snapshot.Meta) error {
	return r.add(name, entry{sg: g, meta: meta, hasMeta: true})
}

// AddMapped registers a gallery backed by res (a *snapshot.Mapping),
// transferring the caller's reference to the registry: the registry
// releases it when the entry is replaced, at which point the mapping
// lives on only through whatever batchers are still draining on it.
func (r *Registry) AddMapped(name string, g *pipeline.ShardedGallery, meta snapshot.Meta, res Resource) error {
	return r.add(name, entry{sg: g, meta: meta, hasMeta: true, res: res})
}

func (r *Registry) add(name string, e entry) error {
	// Fault point: a registration/replacement that fails (or stalls)
	// before the swap — the caller keeps ownership of e.res, the
	// currently served gallery stays untouched.
	if err := fault.Check(fault.Swap); err != nil {
		return fmt.Errorf("serve: register %q: %w", name, err)
	}
	if name == "" {
		return fmt.Errorf("serve: gallery name must not be empty")
	}
	if e.sg == nil || e.sg.G == nil {
		return fmt.Errorf("serve: gallery %q is nil", name)
	}
	r.mu.Lock()
	old := r.m[name]
	r.m[name] = e
	watchers := make([]func(string), 0, len(r.watchers))
	for _, fn := range r.watchers {
		watchers = append(watchers, fn)
	}
	r.mu.Unlock()
	if old.sg != nil && old.sg != e.sg {
		serveObs().swaps.Inc()
		// Replacement: notify watchers (the server retires the stale
		// batchers eagerly, so a replaced gallery's backing storage is
		// released after its in-flight drain even if no request for
		// that (gallery, pipeline) key ever arrives again)...
		for _, fn := range watchers {
			fn(name)
		}
	}
	if old.res != nil && old.res != e.res {
		// ...then drop the registry's own reference; in-flight users
		// hold their own. Re-registering the SAME mapping (e.g. to
		// change the shard count) keeps the one reference the registry
		// owes for the name instead of releasing a still-served one.
		old.res.Release()
	}
	return nil
}

// watch registers a replacement callback, invoked (outside the
// registry lock) with the gallery name whenever an Add replaces an
// existing gallery. The returned func unregisters it — a Server
// removes its watcher on Close, so a long-lived registry does not
// accumulate (and keep reachable) every server it ever backed.
func (r *Registry) watch(fn func(name string)) (unwatch func()) {
	r.mu.Lock()
	id := r.nextWatch
	r.nextWatch++
	r.watchers[id] = fn
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		delete(r.watchers, id)
		r.mu.Unlock()
	}
}

// acquire returns the current entry for name with its backing resource
// retained under the registry lock, so the caller's use can never race
// a replacement's final release. Callers must release the returned
// entry's res (when non-nil) exactly once.
func (r *Registry) acquire(name string) (entry, bool) {
	r.mu.RLock()
	e, ok := r.m[name]
	if ok && e.res != nil {
		e.res.Retain()
	}
	r.mu.RUnlock()
	return e, ok
}

// Get returns the gallery registered under name.
func (r *Registry) Get(name string) (*pipeline.ShardedGallery, bool) {
	r.mu.RLock()
	e, ok := r.m[name]
	r.mu.RUnlock()
	return e.sg, ok
}

// Entry returns the gallery registered under name together with its
// snapshot provenance, read under a single lock — so a concurrent
// replacement can never pair one gallery's shape with another's
// provenance. hasMeta reports whether provenance was recorded at all
// (boot-built galleries may not carry one).
func (r *Registry) Entry(name string) (sg *pipeline.ShardedGallery, meta snapshot.Meta, hasMeta, ok bool) {
	r.mu.RLock()
	e, ok := r.m[name]
	r.mu.RUnlock()
	return e.sg, e.meta, e.hasMeta, ok
}

// Resolve returns the gallery for a request: the named one, or — when
// the request names none — the sole registered gallery. The returned
// name is always the registry key.
func (r *Registry) Resolve(name string) (string, *pipeline.ShardedGallery, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		if len(r.m) == 1 {
			for n, e := range r.m {
				return n, e.sg, nil
			}
		}
		return "", nil, fmt.Errorf("serve: request must name a gallery (%d registered)", len(r.m))
	}
	e, ok := r.m[name]
	if !ok {
		return "", nil, fmt.Errorf("serve: unknown gallery %q", name)
	}
	return name, e.sg, nil
}

// Names returns the registered gallery names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.m))
	for n := range r.m {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len returns the number of registered galleries.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}
