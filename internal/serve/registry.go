// Package serve is the recognition serving layer: a registry of
// prepared, sharded galleries, a request batcher that coalesces
// concurrent classification traffic into pooled batches, and the HTTP
// handlers the snserve daemon exposes. It turns the batch reproduction
// into a long-lived service: galleries are prepared (or snapshot-loaded)
// once, then queried many times.
package serve

import (
	"fmt"
	"sort"
	"sync"

	"snmatch/internal/pipeline"
	"snmatch/internal/serve/snapshot"
)

// entry pairs a served gallery with its provenance, when known.
type entry struct {
	sg      *pipeline.ShardedGallery
	meta    snapshot.Meta
	hasMeta bool
}

// Registry maps gallery names to sharded galleries for multi-gallery
// serving. It is safe for concurrent use; galleries can be registered
// while traffic is being served.
type Registry struct {
	mu sync.RWMutex
	m  map[string]entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: map[string]entry{}}
}

// Add registers (or replaces) a gallery under name, without provenance.
func (r *Registry) Add(name string, g *pipeline.ShardedGallery) error {
	return r.add(name, entry{sg: g})
}

// AddWithMeta is Add carrying the gallery's snapshot provenance, which
// /healthz reports per gallery.
func (r *Registry) AddWithMeta(name string, g *pipeline.ShardedGallery, meta snapshot.Meta) error {
	return r.add(name, entry{sg: g, meta: meta, hasMeta: true})
}

func (r *Registry) add(name string, e entry) error {
	if name == "" {
		return fmt.Errorf("serve: gallery name must not be empty")
	}
	if e.sg == nil || e.sg.G == nil {
		return fmt.Errorf("serve: gallery %q is nil", name)
	}
	r.mu.Lock()
	r.m[name] = e
	r.mu.Unlock()
	return nil
}

// Get returns the gallery registered under name.
func (r *Registry) Get(name string) (*pipeline.ShardedGallery, bool) {
	r.mu.RLock()
	e, ok := r.m[name]
	r.mu.RUnlock()
	return e.sg, ok
}

// Entry returns the gallery registered under name together with its
// snapshot provenance, read under a single lock — so a concurrent
// replacement can never pair one gallery's shape with another's
// provenance. hasMeta reports whether provenance was recorded at all
// (boot-built galleries may not carry one).
func (r *Registry) Entry(name string) (sg *pipeline.ShardedGallery, meta snapshot.Meta, hasMeta, ok bool) {
	r.mu.RLock()
	e, ok := r.m[name]
	r.mu.RUnlock()
	return e.sg, e.meta, e.hasMeta, ok
}

// Resolve returns the gallery for a request: the named one, or — when
// the request names none — the sole registered gallery. The returned
// name is always the registry key.
func (r *Registry) Resolve(name string) (string, *pipeline.ShardedGallery, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		if len(r.m) == 1 {
			for n, e := range r.m {
				return n, e.sg, nil
			}
		}
		return "", nil, fmt.Errorf("serve: request must name a gallery (%d registered)", len(r.m))
	}
	e, ok := r.m[name]
	if !ok {
		return "", nil, fmt.Errorf("serve: unknown gallery %q", name)
	}
	return name, e.sg, nil
}

// Names returns the registered gallery names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.m))
	for n := range r.m {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len returns the number of registered galleries.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}
