package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"snmatch/internal/geom"
	"snmatch/internal/obs"
	"snmatch/internal/pipeline"
)

// BoxJSON is a region box in scene coordinates.
type BoxJSON struct {
	X int `json:"x"`
	Y int `json:"y"`
	W int `json:"w"`
	H int `json:"h"`
}

func boxJSON(b geom.Rect) BoxJSON {
	return BoxJSON{X: b.MinX, Y: b.MinY, W: b.W(), H: b.H()}
}

// RegionJSON is one /detect result entry: the proposal box plus the
// classification of its masked crop.
type RegionJSON struct {
	Box       BoxJSON `json:"box"`
	Class     string  `json:"class"`
	ClassID   int     `json:"class_id"`
	View      int     `json:"view"`
	Score     float64 `json:"score"`
	Batched   int     `json:"batched"`
	LatencyMS float64 `json:"latency_ms"`

	// StagesMS breaks the crop's latency_ms down by pipeline stage (see
	// PredictionJSON.StagesMS).
	StagesMS map[string]float64 `json:"stages_ms,omitempty"`
}

// DetectResponse is the /detect response document. Regions come back in
// the proposer's deterministic top-to-bottom, left-to-right order.
type DetectResponse struct {
	Gallery  string       `json:"gallery"`
	Pipeline string       `json:"pipeline"`
	Regions  []RegionJSON `json:"regions"`

	// StagesMS holds the scene-level stages (decode, admission,
	// propose); the per-region maps cover the rest.
	StagesMS map[string]float64 `json:"stages_ms,omitempty"`
}

// handleDetect is the scene endpoint: one PNG in, per-region
// classifications out. Region proposal runs inline (it is cheap and
// deterministic); the per-crop classifications ride the same batcher,
// admission gate and drain machinery as /classify, so a multi-object
// scene coalesces into batches exactly like a JSON image batch does.
func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	m := s.obs
	m.detect.reqs.Inc()
	t0 := time.Now()
	if r.Method != http.MethodPost {
		m.detect.errs.Inc()
		httpError(w, http.StatusMethodNotAllowed, "POST a PNG scene")
		return
	}
	if !s.gate.TryEnter() {
		m.detect.errs.Inc()
		m.admissionRejects.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "server at admission capacity")
		return
	}
	defer s.gate.Leave()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	var tr obs.Trace
	tr.Set(obs.StageAdmission, time.Since(t0))

	name, _, err := s.reg.Resolve(r.URL.Query().Get("gallery"))
	if err != nil {
		m.detect.errs.Inc()
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	pipeName := r.URL.Query().Get("pipeline")
	if pipeName == "" {
		pipeName = "hybrid"
	}
	p, err := ParsePipeline(pipeName, s.cfg.Ratio)
	if err != nil {
		m.detect.errs.Inc()
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Same pre-decode deadline refusal as /classify: an expired request
	// does no decode or proposal work.
	if err := ctx.Err(); err != nil {
		m.detect.errs.Inc()
		m.deadlineExceeded.Inc()
		httpErrorStages(w, http.StatusGatewayTimeout, err.Error(), tr.MSMap())
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxBodyMB)<<20)
	decStart := time.Now()
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		m.detect.errs.Inc()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("serve: request body exceeds the %d MiB limit", s.cfg.MaxBodyMB))
			return
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	img, err := decodePNG(raw, s.cfg.MaxImagePixels)
	tr.Set(obs.StageDecode, time.Since(decStart))
	if err != nil {
		m.detect.errs.Inc()
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	propStart := time.Now()
	regions, crops := pipeline.ProposeCrops(img, pipeline.DetectParams{MaxRegions: s.cfg.MaxRegions})
	tr.Set(obs.StagePropose, time.Since(propStart))
	resp := DetectResponse{Gallery: name, Pipeline: p.Name(), Regions: make([]RegionJSON, len(regions))}
	if len(regions) == 0 {
		m.observeStages(&tr)
		m.detect.latency.ObserveDuration(int64(time.Since(t0)))
		resp.StagesMS = tr.MSMap()
		writeJSON(w, http.StatusOK, resp)
		return
	}

	b, err := s.batcherFor(name, pipeName, p)
	if err != nil {
		m.detect.errs.Inc()
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	// The whole scene travels as one queue entry: one hand-off, one
	// batch window, and the crops are classified together instead of
	// racing N goroutines through the queue.
	results, err := b.SubmitSceneWait(ctx, crops)
	if err != nil {
		status, retry := errStatus(err)
		if retry {
			w.Header().Set("Retry-After", "1")
		}
		if status == http.StatusGatewayTimeout {
			m.deadlineExceeded.Inc()
		}
		m.detect.errs.Inc()
		httpErrorStages(w, status, err.Error(), tr.MSMap())
		return
	}
	var worst Result
	for i, res := range results {
		m.observeResult(res)
		if res.Latency > worst.Latency {
			worst = res
		}
		resp.Regions[i] = RegionJSON{
			Box:       boxJSON(regions[i]),
			Class:     res.Pred.Class.String(),
			ClassID:   int(res.Pred.Class),
			View:      res.Pred.Index,
			Score:     res.Pred.Score,
			Batched:   res.Batched,
			LatencyMS: float64(res.Latency) / float64(time.Millisecond),
			StagesMS:  resultStagesMS(res),
		}
	}
	m.observeStages(&tr)
	elapsed := time.Since(t0)
	m.detect.latency.ObserveDuration(int64(elapsed))
	resp.StagesMS = tr.MSMap()
	writeJSON(w, http.StatusOK, resp)
	if s.cfg.SlowLog > 0 && elapsed >= s.cfg.SlowLog {
		stages := tr.MSMap()
		if stages == nil {
			stages = map[string]float64{}
		}
		for k, v := range resultStagesMS(worst) {
			stages[k] = v
		}
		s.slowLog("detect", name, p.Name(), len(crops), http.StatusOK, elapsed, stages)
	}
}
