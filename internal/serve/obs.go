package serve

import (
	"encoding/json"
	"net/http"
	"os"
	"sync"
	"time"

	"snmatch/internal/obs"
	"snmatch/internal/pipeline"
)

// epMetrics is one endpoint's request accounting, pre-resolved so the
// handlers record with plain atomic ops.
type epMetrics struct {
	reqs    *obs.Counter
	errs    *obs.Counter
	latency *obs.Histogram
}

// serveMetrics is the serving stack's instrumentation surface, wired
// once per process into obs.Default. Every cell is resolved at wire-up;
// the handlers, batchers and registry record through struct fields.
type serveMetrics struct {
	classify  epMetrics
	detect    epMetrics
	galleries epMetrics
	healthz   epMetrics

	admissionRejects *obs.Counter // 503s at the admission gate
	sheds            *obs.Counter // batcher queue-full refusals

	queueDepth *obs.Gauge     // jobs sitting in batcher queues right now
	batchSize  *obs.Histogram // images per executed batch
	coalesce   *obs.Histogram // first-enqueue -> batch-start wait

	stages [obs.NumStages]*obs.Histogram // aggregated per-stage latency

	swaps *obs.Counter // gallery replacements in the registry

	panics           *obs.Counter // classification panics recovered into per-query errors
	deadlineExceeded *obs.Counter // requests answered 504 (deadline expired mid-pipeline)
}

var (
	smOnce sync.Once
	smPtr  *serveMetrics
)

// serveObs returns the process-wide serving metrics, wiring them (and
// the pipeline's instrumentation) into obs.Default on first use. Every
// Server and standalone Batcher records here; the /metrics and /statz
// endpoints render the same registry.
func serveObs() *serveMetrics {
	smOnce.Do(func() {
		r := obs.Default
		pipeline.EnableObs(r)
		m := &serveMetrics{}
		eps := []string{"classify", "detect", "galleries", "healthz"}
		reqs := r.CounterVec("snmatch_requests_total",
			"HTTP requests received, by endpoint.", "endpoint", eps...)
		errs := r.CounterVec("snmatch_errors_total",
			"HTTP requests answered with a non-2xx status, by endpoint.", "endpoint", eps...)
		lat := r.HistogramVec("snmatch_request_seconds",
			"End-to-end request latency, by endpoint.", obs.ScaleNanos, "endpoint", eps...)
		for i, ep := range []*epMetrics{&m.classify, &m.detect, &m.galleries, &m.healthz} {
			ep.reqs = reqs.With(eps[i])
			ep.errs = errs.With(eps[i])
			ep.latency = lat.With(eps[i])
		}
		m.admissionRejects = r.Counter("snmatch_admission_rejects_total",
			"Requests shed with 503 at the admission gate (MaxInFlight).")
		m.sheds = r.Counter("snmatch_batch_sheds_total",
			"Classification submissions refused because a batcher queue was full.")
		m.queueDepth = r.Gauge("snmatch_queue_depth",
			"Jobs currently waiting in batcher queues, summed across batchers.")
		m.batchSize = r.Histogram("snmatch_batch_size",
			"Images per executed classification batch.", obs.ScaleNone)
		m.coalesce = r.Histogram("snmatch_batch_coalesce_seconds",
			"Wait from a batch's first enqueue to its classification starting.", obs.ScaleNanos)
		st := r.HistogramVec("snmatch_stage_seconds",
			"Per-request stage latency, by pipeline stage (match/verify are CPU time across shard workers).",
			obs.ScaleNanos, "stage", obs.StageNames()...)
		for i, name := range obs.StageNames() {
			m.stages[i] = st.With(name)
		}
		m.swaps = r.Counter("snmatch_gallery_swaps_total",
			"Gallery replacements (same name re-registered) in the serving registry.")
		m.panics = r.Counter("snmatch_panics_total",
			"Classification panics recovered into per-query 500s (the worker and process survive).")
		m.deadlineExceeded = r.Counter("snmatch_deadline_exceeded_total",
			"Requests answered 504 because their deadline expired before the pipeline finished.")
		smPtr = m
	})
	return smPtr
}

// observeStages folds one request trace into the aggregate per-stage
// histograms.
func (m *serveMetrics) observeStages(tr *obs.Trace) {
	tr.Each(func(s obs.Stage, d time.Duration) {
		m.stages[s].ObserveDuration(int64(d))
	})
}

// observeResult folds one classified query's batcher-side stage
// breakdown into the aggregate per-stage histograms. Queue and batch
// are always known; the pipeline-side stages only when the pipeline
// reports stats (and match/verify only while tracing is live).
func (m *serveMetrics) observeResult(res Result) {
	m.stages[obs.StageQueue].ObserveDuration(int64(res.Queue))
	m.stages[obs.StageBatch].ObserveDuration(int64(res.Batch))
	if res.Extract > 0 {
		m.stages[obs.StageExtract].ObserveDuration(int64(res.Extract))
	}
	if res.Match > 0 {
		m.stages[obs.StageMatch].ObserveDuration(int64(res.Match))
	}
	if res.Verify > 0 {
		m.stages[obs.StageVerify].ObserveDuration(int64(res.Verify))
	}
}

// resultStagesMS renders one Result's stage breakdown as the
// per-prediction stages_ms map (zero stages omitted).
func resultStagesMS(res Result) map[string]float64 {
	out := make(map[string]float64, 5)
	put := func(s obs.Stage, d time.Duration) {
		if d > 0 {
			out[s.String()] = float64(d) / float64(time.Millisecond)
		}
	}
	put(obs.StageQueue, res.Queue)
	put(obs.StageBatch, res.Batch)
	put(obs.StageExtract, res.Extract)
	put(obs.StageMatch, res.Match)
	put(obs.StageVerify, res.Verify)
	return out
}

// statusWriter records the response status so the endpoint wrapper can
// count errors without threading metrics through every handler.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrumented wraps a simple handler with per-endpoint request/error
// counting and end-to-end latency. The classify and detect handlers
// instrument inline instead — they also time stages and feed the slow
// log.
func instrumented(ep *epMetrics, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ep.reqs.Inc()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		if sw.status >= 400 {
			ep.errs.Inc()
			return
		}
		ep.latency.ObserveDuration(int64(time.Since(start)))
	}
}

// slowLogEntry is one structured slow-query log line: everything an
// operator needs to see where a slow request spent its time.
type slowLogEntry struct {
	TS        string             `json:"ts"`
	Endpoint  string             `json:"endpoint"`
	Gallery   string             `json:"gallery"`
	Pipeline  string             `json:"pipeline"`
	Images    int                `json:"images"`
	Status    int                `json:"status"`
	LatencyMS float64            `json:"latency_ms"`
	StagesMS  map[string]float64 `json:"stages_ms,omitempty"`
}

// slowLog writes one slow-query line when the request's end-to-end
// latency reached the configured threshold. The full stage trace —
// request-level stages merged with the per-prediction maximum — rides
// along so the offending phase is visible without re-running the query.
func (s *Server) slowLog(endpoint, gallery, pipeName string, images, status int, elapsed time.Duration, stages map[string]float64) {
	if s.cfg.SlowLog <= 0 || elapsed < s.cfg.SlowLog {
		return
	}
	w := s.cfg.SlowLogW
	if w == nil {
		w = os.Stderr
	}
	line, err := json.Marshal(slowLogEntry{
		TS:        time.Now().UTC().Format(time.RFC3339Nano),
		Endpoint:  endpoint,
		Gallery:   gallery,
		Pipeline:  pipeName,
		Images:    images,
		Status:    status,
		LatencyMS: float64(elapsed) / float64(time.Millisecond),
		StagesMS:  stages,
	})
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.slowMu.Lock()
	w.Write(line)
	s.slowMu.Unlock()
}
