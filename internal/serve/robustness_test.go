package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"snmatch/internal/fault"
	"snmatch/internal/pipeline"
)

// readErrorBody decodes an error response's JSON body (error message
// plus the optional partial stage trace).
func readErrorBody(t *testing.T, r io.Reader) (msg string, stages map[string]float64) {
	t.Helper()
	var body struct {
		Error    string             `json:"error"`
		StagesMS map[string]float64 `json:"stages_ms"`
	}
	if err := json.NewDecoder(r).Decode(&body); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	return body.Error, body.StagesMS
}

// TestDeadlineExpiredBeforeDecode pins the fail-fast path: a request
// whose deadline is already gone is refused 504 before any decode or
// pipeline work — its partial stage trace has no decode entry.
func TestDeadlineExpiredBeforeDecode(t *testing.T) {
	_, queries := fixture(t)
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	before := serveObs().deadlineExceeded.Value()

	resp, err := http.Post(ts.URL+"/classify?pipeline=orb", "image/png", bytes.NewReader(pngBytes(t, queries.Samples[0].Image)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	msg, stages := readErrorBody(t, resp.Body)
	if !strings.Contains(msg, "deadline") {
		t.Fatalf("error %q does not name the deadline", msg)
	}
	if _, decoded := stages["decode"]; decoded {
		t.Fatalf("expired request still decoded its body: stages %v", stages)
	}
	if serveObs().deadlineExceeded.Value() <= before {
		t.Fatal("snmatch_deadline_exceeded_total did not increment")
	}
}

// TestDeadlineExpiresMidPipeline pins cancellation between stages: a
// latency fault stretches the shard scan past the request timeout, so
// the deadline expires after decode/extract but before the scan
// completes — the answer is 504 and the partial counts are discarded,
// never served.
func TestDeadlineExpiresMidPipeline(t *testing.T) {
	_, queries := fixture(t)
	defer fault.Disarm()
	if err := fault.Arm("shard-scan:latency:delay=300ms"); err != nil {
		t.Fatal(err)
	}
	before := serveObs().deadlineExceeded.Value()
	_, ts := newTestServer(t, Config{RequestTimeout: 60 * time.Millisecond})

	resp, err := http.Post(ts.URL+"/classify?pipeline=orb", "image/png", bytes.NewReader(pngBytes(t, queries.Samples[0].Image)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	msg, stages := readErrorBody(t, resp.Body)
	if !strings.Contains(msg, "deadline") {
		t.Fatalf("error %q does not name the deadline", msg)
	}
	// The request got through decode before the scan stalled: the 504
	// carries that partial trace.
	if _, ok := stages["decode"]; !ok {
		t.Fatalf("mid-pipeline 504 lost its decode stage: %v", stages)
	}
	if serveObs().deadlineExceeded.Value() <= before {
		t.Fatal("snmatch_deadline_exceeded_total did not increment")
	}
}

// TestBatcherEnqueueFault503 pins the fault-injection smoke contract:
// an armed batcher-enqueue error surfaces as a clean retryable 503
// (Retry-After set), the injection counter ticks, and disarming
// restores normal service.
func TestBatcherEnqueueFault503(t *testing.T) {
	_, queries := fixture(t)
	_, ts := newTestServer(t, Config{})
	png := pngBytes(t, queries.Samples[0].Image)

	defer fault.Disarm()
	if err := fault.Arm("batcher-enqueue:error"); err != nil {
		t.Fatal(err)
	}
	before := fault.Fired(fault.BatcherEnqueue)
	resp, err := http.Post(ts.URL+"/classify?pipeline=orb", "image/png", bytes.NewReader(png))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("injected-fault 503 is missing Retry-After")
	}
	if fault.Fired(fault.BatcherEnqueue) <= before {
		t.Fatal("snmatch_fault_injections_total did not tick")
	}

	fault.Disarm()
	resp2, out := postClassify(t, ts.URL+"/classify?pipeline=orb", "image/png", png)
	if resp2.StatusCode != http.StatusOK || len(out.Predictions) != 1 {
		t.Fatalf("disarmed request: status %d, %d predictions", resp2.StatusCode, len(out.Predictions))
	}
}

// TestPanicFaultRecovered pins per-request panic recovery: an armed
// panic-mode shard-scan fault crashes the scan worker, the recovery
// converts it into an error answer (a retryable 503 here, since the
// panic value wraps fault.ErrInjected), snmatch_panics_total ticks —
// and the process keeps serving.
func TestPanicFaultRecovered(t *testing.T) {
	_, queries := fixture(t)
	_, ts := newTestServer(t, Config{})
	png := pngBytes(t, queries.Samples[0].Image)

	defer fault.Disarm()
	if err := fault.Arm("shard-scan:panic"); err != nil {
		t.Fatal(err)
	}
	before := serveObs().panics.Value()
	resp, err := http.Post(ts.URL+"/classify?pipeline=orb", "image/png", bytes.NewReader(png))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := readErrorBody(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, msg)
	}
	if !strings.Contains(msg, "panicked") {
		t.Fatalf("error %q does not surface the recovered panic", msg)
	}
	if serveObs().panics.Value() <= before {
		t.Fatal("snmatch_panics_total did not increment")
	}

	fault.Disarm()
	resp2, out := postClassify(t, ts.URL+"/classify?pipeline=orb", "image/png", png)
	if resp2.StatusCode != http.StatusOK || len(out.Predictions) != 1 {
		t.Fatalf("post-panic request: status %d, %d predictions — the worker did not survive", resp2.StatusCode, len(out.Predictions))
	}
}

// TestBatcherPanicIsPerQuery pins the recovery at the batcher layer
// directly: a panic-mode fault poisons one submission's scan, the
// submitter gets an error wrapping both ErrPanic and the injected
// fault, and the next (disarmed) submission classifies normally on the
// same batcher.
func TestBatcherPanicIsPerQuery(t *testing.T) {
	g, queries := fixture(t)
	b := NewBatcher(pipeline.NewShardedGallery(g, 4), pipeline.NewDescriptor(pipeline.ORB, 0.5), Config{})
	defer b.Close()
	img := queries.Samples[0].Image

	defer fault.Disarm()
	if err := fault.Arm("shard-scan:panic"); err != nil {
		t.Fatal(err)
	}
	_, err := b.SubmitWait(context.Background(), img)
	if !errors.Is(err, ErrPanic) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("poisoned submission returned %v; want ErrPanic wrapping ErrInjected", err)
	}
	fault.Disarm()
	want := pipeline.NewDescriptor(pipeline.ORB, 0.5).Classify(img, g)
	res, err := b.SubmitWait(context.Background(), img)
	if err != nil {
		t.Fatalf("batcher did not survive the panic: %v", err)
	}
	if res.Pred != want {
		t.Fatalf("post-panic prediction %+v, want %+v", res.Pred, want)
	}
}

// TestMidBatchCancelKeepsNeighboursBitEqual pins batch isolation: one
// submitter's context dying mid-coalesce fails only that query — its
// batch neighbours classify and their predictions are bit-identical to
// the serial pipeline.
func TestMidBatchCancelKeepsNeighboursBitEqual(t *testing.T) {
	g, queries := fixture(t)
	d := pipeline.NewDescriptor(pipeline.ORB, 0.5)
	qa, qb, qc := queries.Samples[0].Image, queries.Samples[1].Image, queries.Samples[2].Image
	wantA, wantB := d.Classify(qa, g), d.Classify(qb, g)

	// A long coalescing window guarantees all three submissions ride
	// one batch; C's context is cancelled inside that window, before
	// the batch starts classifying.
	b := NewBatcher(pipeline.NewShardedGallery(g, 4), d, Config{MaxBatch: 8, BatchWait: 250 * time.Millisecond})
	defer b.Close()

	ctxC, cancelC := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var resA, resB Result
	var errA, errB, errC error
	wg.Add(3)
	go func() { defer wg.Done(); resA, errA = b.SubmitWait(context.Background(), qa) }()
	go func() { defer wg.Done(); resB, errB = b.SubmitWait(context.Background(), qb) }()
	go func() {
		defer wg.Done()
		time.Sleep(20 * time.Millisecond) // enqueue first, then die mid-window
		_, errC = b.SubmitWait(ctxC, qc)
	}()
	time.Sleep(60 * time.Millisecond)
	cancelC()
	wg.Wait()

	if errC == nil {
		t.Fatal("cancelled submitter got a result")
	}
	if !errors.Is(errC, context.Canceled) {
		t.Fatalf("cancelled submitter got %v, want context.Canceled", errC)
	}
	if errA != nil || errB != nil {
		t.Fatalf("neighbours failed: %v / %v", errA, errB)
	}
	if resA.Pred != wantA || resB.Pred != wantB {
		t.Fatalf("neighbour predictions diverged from serial:\n  A %+v want %+v\n  B %+v want %+v",
			resA.Pred, wantA, resB.Pred, wantB)
	}
	if resA.Batched < 2 || resB.Batched < 2 {
		t.Fatalf("submissions did not coalesce (batched %d/%d); the test never exercised the batch path", resA.Batched, resB.Batched)
	}
}

// TestBatcherCloseSubmitRace hammers Close against concurrent Submit
// traffic (run under -race in CI): every submission must resolve — a
// prediction, ErrClosed, ErrOverloaded or the submitter's own context
// error — and never hang on a job the drain missed.
func TestBatcherCloseSubmitRace(t *testing.T) {
	g, queries := fixture(t)
	img := queries.Samples[0].Image
	for round := 0; round < 8; round++ {
		b := NewBatcher(pipeline.NewShardedGallery(g, 2), pipeline.NewDescriptor(pipeline.ORB, 0.5),
			Config{MaxBatch: 4, QueueCap: 4, BatchWait: time.Millisecond})
		var wg sync.WaitGroup
		done := make(chan struct{})
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-done:
						return
					default:
					}
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					var err error
					if i%2 == 0 {
						_, err = b.Submit(ctx, img)
					} else {
						_, err = b.SubmitWait(ctx, img)
					}
					cancel()
					if err != nil {
						if errors.Is(err, ErrClosed) {
							return
						}
						if errors.Is(err, ErrOverloaded) || errors.Is(err, context.DeadlineExceeded) {
							continue
						}
						t.Errorf("round %d: unexpected submit error: %v", round, err)
						return
					}
				}
			}(w)
		}
		time.Sleep(time.Duration(round) * time.Millisecond)
		b.Close()
		close(done)
		wg.Wait()
		// Close is idempotent and still non-blocking after the drain.
		b.Close()
		if _, err := b.Submit(context.Background(), img); !errors.Is(err, ErrClosed) {
			t.Fatalf("round %d: post-Close submit returned %v, want ErrClosed", round, err)
		}
	}
}

// TestSlowLogConcurrentWriters pins the slow-log serialisation: many
// concurrent slow requests write through one shared writer and every
// emitted line still parses as a complete JSON document (interleaved
// writes would corrupt the stream).
func TestSlowLogConcurrentWriters(t *testing.T) {
	_, queries := fixture(t)
	var buf bytes.Buffer // plain buffer: the server's slowMu is the only serialisation
	_, ts := newTestServer(t, Config{SlowLog: time.Nanosecond, SlowLogW: &buf})
	png := pngBytes(t, queries.Samples[0].Image)

	const writers = 12
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/classify?pipeline=orb", "image/png", bytes.NewReader(png))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	wg.Wait()

	lines := 0
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		var entry map[string]any
		if err := json.Unmarshal(sc.Bytes(), &entry); err != nil {
			t.Fatalf("slow-log line %d is not valid JSON (%v): %q", lines, err, sc.Text())
		}
		for _, key := range []string{"ts", "endpoint", "gallery", "pipeline", "latency_ms"} {
			if _, ok := entry[key]; !ok {
				t.Fatalf("slow-log line %d is missing %q: %q", lines, key, sc.Text())
			}
		}
	}
	if lines != writers {
		t.Fatalf("slow log has %d lines, want %d", lines, writers)
	}
}
