package serve

import (
	"context"
	"errors"
	"time"

	"snmatch/internal/imaging"
	"snmatch/internal/parallel"
	"snmatch/internal/pipeline"
)

// ErrOverloaded is returned by Submit when the batcher's queue is full;
// the HTTP layer maps it to 503 so clients back off instead of piling
// onto an already-saturated pool.
var ErrOverloaded = errors.New("serve: classification queue full")

// errClosed is returned for submissions after Close.
var errClosed = errors.New("serve: batcher closed")

// Result is one classified query with its serving metadata.
type Result struct {
	Pred    pipeline.Prediction
	Batched int           // size of the batch this query rode in
	Latency time.Duration // enqueue-to-prediction time
	Extract time.Duration // descriptor-extraction share of the latency (0 when unknown)
	Queue   time.Duration // enqueue-to-batch-start wait (queueing + coalescing)
	Batch   time.Duration // batch classification wall time
	Match   time.Duration // index-scan share (CPU time across shard workers; 0 when unknown)
	Verify  time.Duration // shortlist re-scoring share (approximate backends only)
}

// job is one queue entry: a scene's crops travelling together. A plain
// classify submits a single-image job; /detect submits one job fanning
// to all of a scene's region crops, so an N-object scene costs one
// queue round-trip instead of N.
type job struct {
	imgs     []*imaging.Image
	enqueued time.Time
	done     chan []Result // one Result per image, in submission order
}

// Batcher coalesces concurrent classification requests against one
// (gallery, pipeline) pair into batches: the first queued entry opens a
// batch, which closes after maxWait or at maxBatch queries, whichever
// comes first (a scene entry counts once per crop). A single-query
// batch fans its one scan out across the gallery shards (latency); a
// multi-query batch classifies queries in parallel on the pool with one
// scan each (throughput). Both paths are bit-identical to the serial
// unsharded pipeline.
type Batcher struct {
	sg      *pipeline.ShardedGallery
	p       pipeline.Pipeline
	workers int

	maxBatch int
	maxWait  time.Duration

	// res is the gallery's backing storage (a snapshot mapping). The
	// batcher owns one reference for its whole lifetime and releases it
	// only after the drain on Close — a query that was still queued
	// when its submitter gave up is classified against memory that is
	// guaranteed to stay mapped.
	res Resource

	queue  chan *job
	stop   chan struct{}
	closed chan struct{}

	obs *serveMetrics // process-wide serving metrics (never nil)
}

// NewBatcher builds a standalone batcher over one (gallery, pipeline)
// pair using the config's batching knobs — the embeddable form of what
// the HTTP server creates per served route. Callers must Close it.
func NewBatcher(sg *pipeline.ShardedGallery, p pipeline.Pipeline, cfg Config) *Batcher {
	cfg = cfg.withDefaults()
	return newBatcher(sg, p, cfg.Workers, cfg.MaxBatch, cfg.QueueCap, cfg.BatchWait, nil)
}

// newBatcher starts the collection loop. queueCap bounds admission:
// submissions beyond it fail fast with ErrOverloaded. A non-nil res is
// an already-retained reference whose ownership transfers to the
// batcher; it is released when Close finishes draining.
func newBatcher(sg *pipeline.ShardedGallery, p pipeline.Pipeline, workers, maxBatch, queueCap int, maxWait time.Duration, res Resource) *Batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if queueCap < maxBatch {
		queueCap = maxBatch
	}
	b := &Batcher{
		sg:       sg,
		p:        p,
		workers:  workers,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		res:      res,
		queue:    make(chan *job, queueCap),
		stop:     make(chan struct{}),
		closed:   make(chan struct{}),
		obs:      serveObs(),
	}
	go b.loop()
	return b
}

// Submit enqueues one query and waits for its prediction. It fails fast
// with ErrOverloaded when the queue is full, and returns the context's
// error if the caller gives up while queued (the query is still
// classified; its result is discarded).
func (b *Batcher) Submit(ctx context.Context, img *imaging.Image) (Result, error) {
	return b.submitOne(ctx, img, false)
}

// SubmitWait is Submit with a blocking enqueue: a full queue waits for
// the drain (or the context) instead of refusing. The HTTP layer uses
// it so a JSON batch larger than the queue bound streams through the
// batcher rather than deterministically failing — overall admission
// stays bounded by the server's gate, not by each batcher's queue.
func (b *Batcher) SubmitWait(ctx context.Context, img *imaging.Image) (Result, error) {
	return b.submitOne(ctx, img, true)
}

func (b *Batcher) submitOne(ctx context.Context, img *imaging.Image, wait bool) (Result, error) {
	rs, err := b.submit(ctx, []*imaging.Image{img}, wait)
	if err != nil {
		return Result{}, err
	}
	return rs[0], nil
}

// SubmitSceneWait enqueues one scene's crops as a single queue entry and
// waits for all their predictions (in crop order). Compared with one
// SubmitWait per crop this pays the queue hand-off and batch window
// once, and the crops are guaranteed to ride in the same batch. An
// empty crop list returns nil without touching the queue.
func (b *Batcher) SubmitSceneWait(ctx context.Context, imgs []*imaging.Image) ([]Result, error) {
	if len(imgs) == 0 {
		return nil, nil
	}
	return b.submit(ctx, imgs, true)
}

func (b *Batcher) submit(ctx context.Context, imgs []*imaging.Image, wait bool) ([]Result, error) {
	select {
	case <-b.stop:
		return nil, errClosed
	default:
	}
	j := &job{imgs: imgs, enqueued: time.Now(), done: make(chan []Result, 1)}
	if wait {
		select {
		case b.queue <- j:
			b.obs.queueDepth.Add(1)
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-b.stop:
			return nil, errClosed
		}
	} else {
		select {
		case b.queue <- j:
			b.obs.queueDepth.Add(1)
		default:
			b.obs.sheds.Inc()
			return nil, ErrOverloaded
		}
	}
	select {
	case res := <-j.done:
		return res, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-b.closed:
		// The loop exited; it drains the queue before closing, so a
		// result may still have landed. Jobs that raced past the stop
		// check and were enqueued after the drain are refused.
		select {
		case res := <-j.done:
			return res, nil
		default:
			// The job was enqueued but the drain never saw it — rebalance
			// the depth gauge it incremented on enqueue.
			b.obs.queueDepth.Add(-1)
			return nil, errClosed
		}
	}
}

// Close stops the collection loop after it drains the queued jobs.
func (b *Batcher) Close() {
	close(b.stop)
	<-b.closed
}

func (b *Batcher) loop() {
	defer close(b.closed)
	if b.res != nil {
		// Released only after the drain below: every job this loop will
		// ever classify has finished by then.
		defer b.res.Release()
	}
	for {
		select {
		case j := <-b.queue:
			b.collect(j)
		case <-b.stop:
			// Drain stragglers that won the race against Submit's stop
			// check, then exit.
			for {
				select {
				case j := <-b.queue:
					b.run([]*job{j}, len(j.imgs))
				default:
					return
				}
			}
		}
	}
}

// collect grows a batch around the first job until maxWait elapses or
// the batch holds maxBatch images (a scene job counts all its crops),
// then classifies it.
func (b *Batcher) collect(first *job) {
	batch := append(make([]*job, 0, b.maxBatch), first)
	total := len(first.imgs)
	if b.maxWait > 0 && b.maxBatch > 1 {
		timer := time.NewTimer(b.maxWait)
		defer timer.Stop()
	fill:
		for total < b.maxBatch {
			select {
			case j := <-b.queue:
				batch = append(batch, j)
				total += len(j.imgs)
			case <-timer.C:
				break fill
			case <-b.stop:
				break fill
			}
		}
	} else {
		// No coalescing window: just take whatever is already queued.
	fillNow:
		for total < b.maxBatch {
			select {
			case j := <-b.queue:
				batch = append(batch, j)
				total += len(j.imgs)
			default:
				break fillNow
			}
		}
	}
	b.run(batch, total)
}

func (b *Batcher) run(batch []*job, total int) {
	// Book the batch: the jobs have left the queue (the gauge counts
	// channel occupancy plus at most one batch being assembled), the
	// batch shape is final, and the oldest job's enqueue bounds the
	// coalescing wait.
	start := time.Now()
	b.obs.queueDepth.Add(-int64(len(batch)))
	b.obs.batchSize.Observe(int64(total))
	b.obs.coalesce.ObserveDuration(int64(start.Sub(batch[0].enqueued)))
	if total == 1 {
		j := batch[0]
		pred, stats := b.sg.ClassifyStats(b.p, j.imgs[0])
		now := time.Now()
		j.done <- []Result{{
			Pred: pred, Batched: 1,
			Latency: now.Sub(j.enqueued), Extract: stats.Extract,
			Queue: start.Sub(j.enqueued), Batch: now.Sub(start),
			Match: stats.Match, Verify: stats.Verify,
		}}
		return
	}
	flat := make([]*imaging.Image, 0, total)
	for _, j := range batch {
		flat = append(flat, j.imgs...)
	}
	preds := make([]pipeline.Prediction, total)
	stats := make([]pipeline.QueryStats, total)
	sc, hasStats := b.p.(pipeline.StatsClassifier)
	parallel.ForEach(b.workers, total, func(i int) {
		if hasStats {
			preds[i], stats[i] = sc.ClassifyStats(flat[i], b.sg.G)
		} else {
			preds[i] = b.p.Classify(flat[i], b.sg.G)
		}
	})
	now := time.Now()
	off := 0
	for _, j := range batch {
		rs := make([]Result, len(j.imgs))
		for i := range rs {
			st := stats[off+i]
			rs[i] = Result{
				Pred: preds[off+i], Batched: total,
				Latency: now.Sub(j.enqueued), Extract: st.Extract,
				Queue: start.Sub(j.enqueued), Batch: now.Sub(start),
				Match: st.Match, Verify: st.Verify,
			}
		}
		off += len(j.imgs)
		j.done <- rs
	}
}
