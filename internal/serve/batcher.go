package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"snmatch/internal/fault"
	"snmatch/internal/imaging"
	"snmatch/internal/parallel"
	"snmatch/internal/pipeline"
)

// ErrOverloaded is returned by Submit when the batcher's queue is full;
// the HTTP layer maps it to 503 so clients back off instead of piling
// onto an already-saturated pool.
var ErrOverloaded = errors.New("serve: classification queue full")

// ErrClosed is returned for submissions against a closed (or closing)
// batcher. The HTTP layer maps it to 503 with Retry-After, so a client
// riding out a rolling restart retries another replica instead of
// treating the shutdown as a request bug.
var ErrClosed = errors.New("serve: batcher closed")

// ErrPanic wraps a classification panic recovered on the query path —
// a pipeline bug (or an armed panic-mode fault) costs that one query a
// 500 instead of the whole process. The panic value is wrapped, so an
// injected fault stays errors.Is-able as fault.ErrInjected through the
// recovery.
var ErrPanic = errors.New("serve: classification panicked")

// Result is one classified query with its serving metadata.
type Result struct {
	Pred    pipeline.Prediction
	Batched int           // size of the batch this query rode in
	Latency time.Duration // enqueue-to-prediction time
	Extract time.Duration // descriptor-extraction share of the latency (0 when unknown)
	Queue   time.Duration // enqueue-to-batch-start wait (queueing + coalescing)
	Batch   time.Duration // batch classification wall time
	Match   time.Duration // index-scan share (CPU time across shard workers; 0 when unknown)
	Verify  time.Duration // shortlist re-scoring share (approximate backends only)

	// Err is this query's classification failure — the submitter's
	// deadline expiring mid-batch, or a recovered pipeline panic. A
	// failed query leaves Pred zero; its batch neighbours are classified
	// normally and their results are bit-identical to a batch the failed
	// query never joined.
	Err error
}

// job is one queue entry: a scene's crops travelling together. A plain
// classify submits a single-image job; /detect submits one job fanning
// to all of a scene's region crops, so an N-object scene costs one
// queue round-trip instead of N. The submitter's ctx rides along and
// bounds each image's classification.
type job struct {
	ctx      context.Context
	imgs     []*imaging.Image
	enqueued time.Time
	done     chan []Result // one Result per image, in submission order
}

// Batcher coalesces concurrent classification requests against one
// (gallery, pipeline) pair into batches: the first queued entry opens a
// batch, which closes after maxWait or at maxBatch queries, whichever
// comes first (a scene entry counts once per crop). A single-query
// batch fans its one scan out across the gallery shards (latency); a
// multi-query batch classifies queries in parallel on the pool with one
// scan each (throughput). Both paths are bit-identical to the serial
// unsharded pipeline.
type Batcher struct {
	sg      *pipeline.ShardedGallery
	p       pipeline.Pipeline
	workers int

	maxBatch int
	maxWait  time.Duration

	// res is the gallery's backing storage (a snapshot mapping). The
	// batcher owns one reference for its whole lifetime and releases it
	// only after the drain on Close — a query that was still queued
	// when its submitter gave up is classified against memory that is
	// guaranteed to stay mapped.
	res Resource

	queue  chan *job
	stop   chan struct{}
	closed chan struct{}

	// closeMu orders enqueues against Close: submitters hold the read
	// side across the closing check and the queue send, Close flips
	// closing under the write side before closing stop. Every job that
	// ever reaches the queue is therefore enqueued before stop closes
	// and is seen by the loop's drain — no submitter is left waiting on
	// a result that will never come.
	closeMu sync.RWMutex
	closing bool

	obs *serveMetrics // process-wide serving metrics (never nil)
}

// NewBatcher builds a standalone batcher over one (gallery, pipeline)
// pair using the config's batching knobs — the embeddable form of what
// the HTTP server creates per served route. Callers must Close it.
func NewBatcher(sg *pipeline.ShardedGallery, p pipeline.Pipeline, cfg Config) *Batcher {
	cfg = cfg.withDefaults()
	return newBatcher(sg, p, cfg.Workers, cfg.MaxBatch, cfg.QueueCap, cfg.BatchWait, nil)
}

// newBatcher starts the collection loop. queueCap bounds admission:
// submissions beyond it fail fast with ErrOverloaded. A non-nil res is
// an already-retained reference whose ownership transfers to the
// batcher; it is released when Close finishes draining.
func newBatcher(sg *pipeline.ShardedGallery, p pipeline.Pipeline, workers, maxBatch, queueCap int, maxWait time.Duration, res Resource) *Batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if queueCap < maxBatch {
		queueCap = maxBatch
	}
	b := &Batcher{
		sg:       sg,
		p:        p,
		workers:  workers,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		res:      res,
		queue:    make(chan *job, queueCap),
		stop:     make(chan struct{}),
		closed:   make(chan struct{}),
		obs:      serveObs(),
	}
	go b.loop()
	return b
}

// Submit enqueues one query and waits for its prediction. It fails fast
// with ErrOverloaded when the queue is full, and returns the context's
// error if the caller gives up while queued (the query is still
// classified; its result is discarded).
func (b *Batcher) Submit(ctx context.Context, img *imaging.Image) (Result, error) {
	return b.submitOne(ctx, img, false)
}

// SubmitWait is Submit with a blocking enqueue: a full queue waits for
// the drain (or the context) instead of refusing. The HTTP layer uses
// it so a JSON batch larger than the queue bound streams through the
// batcher rather than deterministically failing — overall admission
// stays bounded by the server's gate, not by each batcher's queue.
func (b *Batcher) SubmitWait(ctx context.Context, img *imaging.Image) (Result, error) {
	return b.submitOne(ctx, img, true)
}

func (b *Batcher) submitOne(ctx context.Context, img *imaging.Image, wait bool) (Result, error) {
	rs, err := b.submit(ctx, []*imaging.Image{img}, wait)
	if err != nil {
		return Result{}, err
	}
	return rs[0], nil
}

// SubmitSceneWait enqueues one scene's crops as a single queue entry and
// waits for all their predictions (in crop order). Compared with one
// SubmitWait per crop this pays the queue hand-off and batch window
// once, and the crops are guaranteed to ride in the same batch. An
// empty crop list returns nil without touching the queue.
func (b *Batcher) SubmitSceneWait(ctx context.Context, imgs []*imaging.Image) ([]Result, error) {
	if len(imgs) == 0 {
		return nil, nil
	}
	return b.submit(ctx, imgs, true)
}

func (b *Batcher) submit(ctx context.Context, imgs []*imaging.Image, wait bool) ([]Result, error) {
	if err := fault.Check(fault.BatcherEnqueue); err != nil {
		return nil, err
	}
	j := &job{ctx: ctx, imgs: imgs, enqueued: time.Now(), done: make(chan []Result, 1)}
	if err := b.enqueue(ctx, j, wait); err != nil {
		return nil, err
	}
	select {
	case rs := <-j.done:
		return rs, firstResultErr(rs)
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-b.closed:
		// The loop has drained and exited; enqueue's ordering guarantees
		// it saw this job, so the result is already buffered.
		select {
		case rs := <-j.done:
			return rs, firstResultErr(rs)
		default:
			// Unreachable under the closeMu ordering; kept so a future
			// regression surfaces as a clean refusal (with the depth
			// gauge rebalanced) rather than a hang.
			b.obs.queueDepth.Add(-1)
			return nil, ErrClosed
		}
	}
}

// enqueue places j in the queue under the read side of closeMu, so the
// send cannot race Close's stop: either the job lands before closing
// flips — and the drain classifies it — or the submitter observes
// closing and gets ErrClosed with its job guaranteed never enqueued.
// A blocking (wait-mode) send held under the read lock cannot deadlock
// Close: the loop keeps draining until stop closes, and stop only
// closes after this lock is released.
func (b *Batcher) enqueue(ctx context.Context, j *job, wait bool) error {
	b.closeMu.RLock()
	defer b.closeMu.RUnlock()
	if b.closing {
		return ErrClosed
	}
	if wait {
		select {
		case b.queue <- j:
			b.obs.queueDepth.Add(1)
		case <-ctx.Done():
			return ctx.Err()
		}
	} else {
		select {
		case b.queue <- j:
			b.obs.queueDepth.Add(1)
		default:
			b.obs.sheds.Inc()
			return ErrOverloaded
		}
	}
	return nil
}

// firstResultErr surfaces a job's first per-image failure as the
// submission error (single-image submissions have exactly one).
func firstResultErr(rs []Result) error {
	for i := range rs {
		if rs[i].Err != nil {
			return rs[i].Err
		}
	}
	return nil
}

// Close stops the collection loop after it drains the queued jobs. It
// is idempotent; every call blocks until the drain completes.
func (b *Batcher) Close() {
	b.closeMu.Lock()
	if !b.closing {
		b.closing = true
		close(b.stop)
	}
	b.closeMu.Unlock()
	<-b.closed
}

func (b *Batcher) loop() {
	defer close(b.closed)
	if b.res != nil {
		// Released only after the drain below: every job this loop will
		// ever classify has finished by then.
		defer b.res.Release()
	}
	for {
		select {
		case j := <-b.queue:
			b.collect(j)
		case <-b.stop:
			// Drain the jobs that were enqueued before closing flipped
			// (enqueue's lock ordering guarantees there are no others),
			// then exit.
			for {
				select {
				case j := <-b.queue:
					b.run([]*job{j}, len(j.imgs))
				default:
					return
				}
			}
		}
	}
}

// collect grows a batch around the first job until maxWait elapses or
// the batch holds maxBatch images (a scene job counts all its crops),
// then classifies it.
func (b *Batcher) collect(first *job) {
	batch := append(make([]*job, 0, b.maxBatch), first)
	total := len(first.imgs)
	if b.maxWait > 0 && b.maxBatch > 1 {
		timer := time.NewTimer(b.maxWait)
		defer timer.Stop()
	fill:
		for total < b.maxBatch {
			select {
			case j := <-b.queue:
				batch = append(batch, j)
				total += len(j.imgs)
			case <-timer.C:
				break fill
			case <-b.stop:
				break fill
			}
		}
	} else {
		// No coalescing window: just take whatever is already queued.
	fillNow:
		for total < b.maxBatch {
			select {
			case j := <-b.queue:
				batch = append(batch, j)
				total += len(j.imgs)
			default:
				break fillNow
			}
		}
	}
	b.run(batch, total)
}

// ctxStatsClassifier is implemented by pipelines whose classification
// honours a request deadline (the descriptor pipelines); the batch path
// threads each job's ctx through it so mid-batch cancellation stops
// that query at its next stage boundary.
type ctxStatsClassifier interface {
	ClassifyStatsCtx(ctx context.Context, img *imaging.Image, g *pipeline.Gallery) (pipeline.Prediction, pipeline.QueryStats, error)
}

// recoverQuery converts a classification panic into a per-query error:
// the worker survives, the panics counter ticks, and an error panic
// value stays unwrappable (so an injected fault keeps reading as
// fault.ErrInjected through the recovery).
func (b *Batcher) recoverQuery(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	b.obs.panics.Inc()
	if e, ok := r.(error); ok {
		//lint:allow noalloc panic recovery is the cold path; a recovered query already paid a stack unwind
		*errp = fmt.Errorf("%w: %w", ErrPanic, e)
	} else {
		//lint:allow noalloc panic recovery is the cold path; a recovered query already paid a stack unwind
		*errp = fmt.Errorf("%w: %v", ErrPanic, r)
	}
}

// classifyOne is the single-query path: the one scan fans out across
// the gallery shards under the submitter's deadline. A shard-worker
// panic is re-panicked here (the submitting goroutine) by the pool and
// recovered into the query's error.
//
//snmatch:noalloc
func (b *Batcher) classifyOne(ctx context.Context, img *imaging.Image) (pred pipeline.Prediction, stats pipeline.QueryStats, err error) {
	defer b.recoverQuery(&err)
	return b.sg.ClassifyStatsCtx(ctx, b.p, img)
}

// classifyFlat is the batch path's per-image classification: one
// unsharded scan per image, bounded by the image's own job deadline,
// with per-image panic recovery so one poisoned query cannot take its
// batch neighbours (or the process) down.
//
//snmatch:noalloc
func (b *Batcher) classifyFlat(ctx context.Context, img *imaging.Image) (pred pipeline.Prediction, stats pipeline.QueryStats, err error) {
	defer b.recoverQuery(&err)
	if err = ctx.Err(); err != nil {
		return pred, stats, err
	}
	if csc, ok := b.p.(ctxStatsClassifier); ok {
		return csc.ClassifyStatsCtx(ctx, img, b.sg.G)
	}
	if sc, ok := b.p.(pipeline.StatsClassifier); ok {
		pred, stats = sc.ClassifyStats(img, b.sg.G)
		return pred, stats, nil
	}
	return b.p.Classify(img, b.sg.G), stats, nil
}

func (b *Batcher) run(batch []*job, total int) {
	// Book the batch: the jobs have left the queue (the gauge counts
	// channel occupancy plus at most one batch being assembled), the
	// batch shape is final, and the oldest job's enqueue bounds the
	// coalescing wait.
	start := time.Now()
	b.obs.queueDepth.Add(-int64(len(batch)))
	b.obs.batchSize.Observe(int64(total))
	b.obs.coalesce.ObserveDuration(int64(start.Sub(batch[0].enqueued)))
	if total == 1 {
		j := batch[0]
		pred, stats, err := b.classifyOne(j.ctx, j.imgs[0])
		now := time.Now()
		j.done <- []Result{{
			Pred: pred, Batched: 1, Err: err,
			Latency: now.Sub(j.enqueued), Extract: stats.Extract,
			Queue: start.Sub(j.enqueued), Batch: now.Sub(start),
			Match: stats.Match, Verify: stats.Verify,
		}}
		return
	}
	flat := make([]*imaging.Image, 0, total)
	owner := make([]*job, 0, total)
	for _, j := range batch {
		for _, img := range j.imgs {
			flat = append(flat, img)
			owner = append(owner, j)
		}
	}
	preds := make([]pipeline.Prediction, total)
	stats := make([]pipeline.QueryStats, total)
	errs := make([]error, total)
	parallel.ForEach(b.workers, total, func(i int) {
		preds[i], stats[i], errs[i] = b.classifyFlat(owner[i].ctx, flat[i])
	})
	now := time.Now()
	off := 0
	for _, j := range batch {
		rs := make([]Result, len(j.imgs))
		for i := range rs {
			st := stats[off+i]
			rs[i] = Result{
				Pred: preds[off+i], Batched: total, Err: errs[off+i],
				Latency: now.Sub(j.enqueued), Extract: st.Extract,
				Queue: start.Sub(j.enqueued), Batch: now.Sub(start),
				Match: st.Match, Verify: st.Verify,
			}
		}
		off += len(j.imgs)
		j.done <- rs
	}
}
