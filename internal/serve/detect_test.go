package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"net/http"
	"strings"
	"testing"

	"snmatch/internal/pipeline"
	"snmatch/internal/synth"
)

// sceneFixture composes the shared 3-object detection scene.
func sceneFixture() synth.Scene {
	return synth.ComposeSceneP(synth.SceneParams{
		W: 320, H: 240, Seed: 11,
		Classes: []synth.Class{synth.Chair, synth.Bottle, synth.Lamp},
	})
}

// TestDetectScene posts a composed scene and checks the served regions
// match the in-process detector exactly: same boxes in the same
// deterministic order, same classes, same scores.
func TestDetectScene(t *testing.T) {
	g, _ := fixture(t)
	_, ts := newTestServer(t, Config{})
	sc := sceneFixture()
	want := pipeline.Detect(sc.Image, pipeline.DefaultHybrid(pipeline.WeightedSum), g, pipeline.DetectParams{})

	resp, err := http.Post(ts.URL+"/detect?gallery=sns1&pipeline=hybrid", "image/png", bytes.NewReader(pngBytes(t, sc.Image)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out DetectResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Gallery != "sns1" || !strings.Contains(out.Pipeline, "weighted sum") {
		t.Fatalf("metadata %q/%q", out.Gallery, out.Pipeline)
	}
	if len(out.Regions) != len(want) {
		t.Fatalf("served %d regions, in-process detector found %d", len(out.Regions), len(want))
	}
	for i, r := range out.Regions {
		w := want[i]
		if r.Box != boxJSON(w.Box) {
			t.Errorf("region %d: box %+v, want %+v", i, r.Box, boxJSON(w.Box))
		}
		if r.Class != w.Class.String() || r.View != w.Index || r.Score != w.Score {
			t.Errorf("region %d: served %s/%d/%v, direct %s/%d/%v",
				i, r.Class, r.View, r.Score, w.Class, w.Index, w.Score)
		}
		if r.Batched < 1 || r.LatencyMS < 0 {
			t.Errorf("region %d: bad serving metadata %+v", i, r)
		}
	}
}

// TestDetectEmptyScene posts a clutter-only scene: 200 with zero
// regions, not an error.
func TestDetectEmptyScene(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sc := synth.ComposeSceneP(synth.SceneParams{W: 200, H: 160, Seed: 2, Clutter: 6})
	resp, err := http.Post(ts.URL+"/detect", "image/png", bytes.NewReader(pngBytes(t, sc.Image)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out DetectResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Regions) != 0 {
		t.Fatalf("empty scene served %d regions", len(out.Regions))
	}
}

// TestDetectMaxRegions caps the proposal count through the serving
// config.
func TestDetectMaxRegions(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRegions: 2})
	sc := sceneFixture()
	resp, err := http.Post(ts.URL+"/detect", "image/png", bytes.NewReader(pngBytes(t, sc.Image)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out DetectResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Regions) != 2 {
		t.Fatalf("served %d regions over a 2-region cap", len(out.Regions))
	}
}

func TestDetectErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sc := pngBytes(t, sceneFixture().Image)
	cases := []struct {
		name, url string
		body      []byte
		status    int
	}{
		{"unknown gallery", "/detect?gallery=nope", sc, http.StatusNotFound},
		{"unknown pipeline", "/detect?pipeline=resnet", sc, http.StatusBadRequest},
		{"bad png", "/detect", []byte("not a png"), http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.url, "image/png", bytes.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Fatalf("%s: status %d, want %d", c.name, resp.StatusCode, c.status)
		}
	}
	getResp, err := http.Get(ts.URL + "/detect")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /detect: status %d", getResp.StatusCode)
	}
}

// craftPNG hand-assembles a minimal PNG prefix (signature + IHDR) with
// arbitrary declared dimensions — image/png happily parses the config
// of dimensions far beyond anything encodable, which is exactly what a
// resource-exhaustion probe would send.
func craftPNG(w, h uint32) []byte {
	var buf bytes.Buffer
	buf.Write([]byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n'})
	ihdr := make([]byte, 13)
	binary.BigEndian.PutUint32(ihdr[0:], w)
	binary.BigEndian.PutUint32(ihdr[4:], h)
	ihdr[8] = 8 // bit depth
	ihdr[9] = 2 // truecolor
	binary.Write(&buf, binary.BigEndian, uint32(len(ihdr)))
	buf.WriteString("IHDR")
	buf.Write(ihdr)
	crc := crc32.NewIEEE()
	crc.Write([]byte("IHDR"))
	crc.Write(ihdr)
	binary.Write(&buf, binary.BigEndian, crc.Sum32())
	return buf.Bytes()
}

// TestDecodePNGExtremeDimensions is the regression test for the pixel
// cap's overflow hole: a header declaring 2147483647 x 2147483647
// multiplies to a product that wraps on 32-bit ints (where it would
// have slipped past the old `w*h > max` check into the full decode);
// the division-based bound must refuse it — and every other
// over-declared raster — up front.
func TestDecodePNGExtremeDimensions(t *testing.T) {
	const maxPx = 4 << 20
	// The full 2147483647 x 2147483647 square is refused by image/png
	// itself (its byte-count overflow check), so the cap's own overflow
	// handling is probed by the asymmetric cases below, whose products
	// wrap 32-bit ints but parse fine.
	if _, err := decodePNG(craftPNG(2147483647, 2147483647), maxPx); err == nil {
		t.Error("2147483647x2147483647 declared raster decoded")
	}
	for _, wh := range [][2]uint32{
		{2147483647, 2},
		{2, 2147483647},
		{65536, 65536},
	} {
		if _, err := decodePNG(craftPNG(wh[0], wh[1]), maxPx); err == nil {
			t.Errorf("%dx%d declared raster decoded despite the %d-pixel cap", wh[0], wh[1], maxPx)
		} else if !strings.Contains(err.Error(), "exceeds") {
			t.Errorf("%dx%d: refused for the wrong reason: %v", wh[0], wh[1], err)
		}
	}
}
