package snapshot

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"snmatch/internal/fault"
)

// Mapping is a gallery snapshot whose large payloads alias a read-only
// memory mapping of the file: Snap.Gallery's packed descriptor
// matrices, histogram bins and image planes point straight into the
// page cache, so Map costs O(structure) time and no descriptor-byte
// copies (see v2.go for what Map verifies).
//
// The gallery is only valid while the mapping is. Lifetime is
// reference-counted: Map returns the handle holding one reference;
// Retain/Release bracket every additional user (the serving layer
// retains per live batcher, so a gallery replaced under traffic is
// unmapped only after the last in-flight classify returns), and Close
// drops the creator's reference. When the count reaches zero the file
// is unmapped and any later touch of the gallery's borrowed storage is
// a use-after-unmap bug — which is why every borrowed Packed block is
// marked Borrowed and pooling code must never recycle one.
type Mapping struct {
	Snap *Snapshot

	data   []byte
	mapped bool // data must be munmapped (false on the heap fallback)
	size   int
	refs   atomic.Int64
}

// Map opens, maps and decodes the v2 snapshot at path with zero copies
// of the packed descriptor payloads. v1 files cannot be mapped — their
// payload is a serial stream with nothing to alias — and return
// ErrVersion; load those with Load.
func Map(path string) (*Mapping, error) {
	if err := fault.Check(fault.SnapshotRead); err != nil {
		return nil, fmt.Errorf("snapshot: map: %w", err)
	}
	loadMetrics()
	start := time.Now()
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: map: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("snapshot: map: %w", err)
	}
	if st.Size() > int64(^uint(0)>>1) {
		return nil, fmt.Errorf("snapshot: map: %d bytes exceeds the address space", st.Size())
	}
	data, mapped, err := mapFile(f, int(st.Size()))
	if err != nil {
		return nil, err
	}
	if len(data) >= 12 && [8]byte(data[:8]) == magic {
		if v := binary.LittleEndian.Uint32(data[8:12]); v == VersionV1 {
			if mapped {
				unmapMem(data)
			}
			return nil, fmt.Errorf("%w: v1 snapshots cannot be memory-mapped; use Load (or re-save with the current writer)", ErrVersion)
		}
	}
	// A true mapping skips the blob CRC (checksumming would fault in
	// every page and void the O(structure) boot); the heap-read
	// fallback has already paid the O(bytes) read, so there the check
	// is free and Map keeps Load's full integrity.
	snap, err := readV2(data, !mapped, mapped)
	if err != nil {
		if mapped {
			unmapMem(data)
		}
		return nil, err
	}
	m := &Mapping{Snap: snap, data: data, mapped: mapped, size: len(data)}
	m.refs.Store(1)
	liveMapRefs.Add(1)
	if mapped {
		recordLoad(loadObs.mapped, start)
	} else {
		recordLoad(loadObs.mapHeap, start)
	}
	return m, nil
}

// Retain adds a reference. It must pair with exactly one Release and
// may only be called while at least one reference is still held.
func (m *Mapping) Retain() {
	if m.refs.Add(1) <= 1 {
		panic("snapshot: Mapping.Retain after the final Release")
	}
	liveMapRefs.Add(1)
}

// Release drops one reference; the last drop unmaps the file, after
// which the mapped gallery must not be touched again.
func (m *Mapping) Release() {
	n := m.refs.Add(-1)
	liveMapRefs.Add(-1)
	switch {
	case n < 0:
		panic("snapshot: Mapping.Release without a matching reference")
	case n == 0:
		data := m.data
		m.data = nil
		if m.mapped {
			unmapMem(data)
		}
	}
}

// Close drops the creator's reference (the one Map returned holding).
// The mapping stays alive until every Retain has been Released; Close
// itself must be called exactly once. The error is always nil and
// exists to satisfy io.Closer.
func (m *Mapping) Close() error {
	m.Release()
	return nil
}

// Refs reports the current reference count — diagnostics for tests and
// operators; 0 means the file has been unmapped.
func (m *Mapping) Refs() int { return int(m.refs.Load()) }

// Size returns the mapped file's size in bytes.
func (m *Mapping) Size() int { return m.size }
