package snapshot

import (
	"sync"
	"sync/atomic"
	"time"

	"snmatch/internal/obs"
)

// liveMapRefs tracks the summed reference count of every live Mapping —
// registry holds, batcher holds and creator handles alike. It moves on
// Map/Retain/Release only (never the query path).
var liveMapRefs atomic.Int64

// LiveMappingRefs returns the summed refcount of all live snapshot
// mappings — the feed for the snmatch_mapping_refs gauge. 0 means no
// snapshot file is mapped.
func LiveMappingRefs() int64 { return liveMapRefs.Load() }

// loadObs holds the snapshot loading metrics, registered into
// obs.Default on the first load so that processes that never touch a
// snapshot never grow the metric families.
var loadObs struct {
	once    sync.Once
	load    *obs.Counter // buffered Load/Read decodes
	mapped  *obs.Counter // true zero-copy mappings
	mapHeap *obs.Counter // Map calls that fell back to a heap read
	seconds *obs.Histogram
}

func loadMetrics() {
	loadObs.once.Do(func() {
		r := obs.Default
		lv := r.CounterVec("snmatch_snapshot_loads_total",
			"Gallery snapshot loads by mode: load (buffered decode), map (zero-copy mmap), map-fallback (Map degraded to a heap read).",
			"mode", "load", "map", "map-fallback")
		loadObs.load = lv.With("load")
		loadObs.mapped = lv.With("map")
		loadObs.mapHeap = lv.With("map-fallback")
		loadObs.seconds = r.Histogram("snmatch_snapshot_load_seconds",
			"Wall time of one snapshot load or map, any mode.", obs.ScaleNanos)
		r.GaugeFunc("snmatch_mapping_refs",
			"Summed reference count across all live snapshot mappings.",
			LiveMappingRefs)
	})
}

// recordLoad books one completed load of the given mode.
func recordLoad(mode *obs.Counter, start time.Time) {
	mode.Inc()
	loadObs.seconds.ObserveDuration(int64(time.Since(start)))
}
