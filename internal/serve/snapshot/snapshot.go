// Package snapshot persists prepared recognition galleries: a versioned
// little-endian binary codec over every piece of state a gallery needs
// to classify without re-rendering or re-extracting — views (image,
// class, model, view id), Hu moments, colour histograms, the packed
// descriptor blocks of every extracted family with their keypoints, and
// the set of prepared flat-index kinds (the indexes themselves are
// rebuilt deterministically from the packed blocks on load, so the
// descriptor bytes are stored once). The contract is round-trip
// exactness: a loaded gallery produces bit-identical predictions to the
// gallery that was saved, for every pipeline.
//
// Layout:
//
//	magic   8 bytes "SNSNAP\r\n"
//	version uint32 (currently 1)
//	payload length-prefixed fields (see encode/decode below)
//	crc32   IEEE checksum of the payload
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"snmatch/internal/features"
	"snmatch/internal/histogram"
	"snmatch/internal/imaging"
	"snmatch/internal/pipeline"
	"snmatch/internal/synth"
)

// Version is the current snapshot format version.
const Version = 1

var magic = [8]byte{'S', 'N', 'S', 'N', 'A', 'P', '\r', '\n'}

// Errors the loader distinguishes. ErrVersion is wrapped with the
// got/want pair; use errors.Is.
var (
	ErrBadMagic = errors.New("snapshot: bad magic (not a gallery snapshot)")
	ErrVersion  = errors.New("snapshot: unsupported format version")
	ErrCorrupt  = errors.New("snapshot: corrupt payload")
)

// descKinds fixes the on-disk descriptor family order.
var descKinds = []pipeline.DescriptorKind{pipeline.SIFT, pipeline.SURF, pipeline.ORB}

// Meta records the provenance of a persisted gallery: the dataset it
// was built from and the render parameters. Loaders validate it against
// their own configuration (Meta.Check) so a mismatched snapshot fails
// loudly instead of producing silently wrong predictions.
type Meta struct {
	Dataset string // dataset identifier, e.g. "sns1"
	Size    int    // render size in pixels
	Seed    uint64 // render seed
}

// Check compares this (loaded) provenance against the caller's
// expectation. Every field is compared — there are no skip sentinels,
// because 0 is a seed a user can legitimately pass — so callers must
// fill the complete expected Meta.
func (m Meta) Check(want Meta) error {
	if m.Dataset != want.Dataset {
		return fmt.Errorf("snapshot: gallery was built from dataset %q, this run needs %q", m.Dataset, want.Dataset)
	}
	if m.Size != want.Size {
		return fmt.Errorf("snapshot: gallery was rendered at size %d, this run needs %d", m.Size, want.Size)
	}
	if m.Seed != want.Seed {
		return fmt.Errorf("snapshot: gallery was rendered with seed %d, this run needs %d", m.Seed, want.Seed)
	}
	return nil
}

// Snapshot is a named, provenance-stamped prepared gallery — the unit
// the codec reads and writes.
type Snapshot struct {
	Name    string
	Meta    Meta
	Gallery *pipeline.Gallery
}

// Write serializes the snapshot. The gallery must be quiescent (no
// concurrent extraction); the binaries save only after preparation
// completes.
func Write(w io.Writer, s *Snapshot) error {
	g := s.Gallery
	var e enc
	e.str(s.Name)
	e.str(s.Meta.Dataset)
	e.i64(int64(s.Meta.Size))
	e.u64(s.Meta.Seed)
	e.u32(uint32(len(g.Views)))
	for i := range g.Views {
		encodeView(&e, &g.Views[i])
	}
	// The flat indexes are not serialized: NewDescriptorIndex is a pure,
	// deterministic function of the per-view packed sets already stored
	// above (including the prune decision, derived from the norm
	// spread), so persisting them would double the descriptor bytes on
	// disk. Only the prepared kinds are recorded; Read rebuilds each
	// index bit-identically from the restored sets.
	idx := g.Indexes()
	present := make([]pipeline.DescriptorKind, 0, len(descKinds))
	for _, k := range descKinds {
		if idx[k] != nil {
			present = append(present, k)
		}
	}
	e.u8(uint8(len(present)))
	for _, k := range present {
		e.u8(uint8(k))
	}

	var hdr [12]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], Version)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("snapshot: write header: %w", err)
	}
	if _, err := w.Write(e.b); err != nil {
		return fmt.Errorf("snapshot: write payload: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(e.b))
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("snapshot: write checksum: %w", err)
	}
	return nil
}

// Read deserializes a snapshot.
func Read(r io.Reader) (*Snapshot, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read: %w", err)
	}
	if len(raw) < 16 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any snapshot", ErrCorrupt, len(raw))
	}
	if [8]byte(raw[:8]) != magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(raw[8:12]); v != Version {
		return nil, fmt.Errorf("%w: file version %d, supported version %d", ErrVersion, v, Version)
	}
	payload := raw[12 : len(raw)-4]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, recorded %08x", ErrCorrupt, got, want)
	}

	d := &dec{b: payload}
	out := &Snapshot{}
	out.Name = d.str()
	out.Meta.Dataset = d.str()
	out.Meta.Size = int(d.i64())
	out.Meta.Seed = d.u64()
	nv := int(d.u32())
	if d.err == nil && nv > len(d.b) { // cheap sanity bound before allocating
		d.fail("view count %d exceeds payload", nv)
	}
	var views []pipeline.View
	if d.err == nil {
		views = make([]pipeline.View, nv)
		for i := range views {
			decodeView(d, &views[i])
			if d.err != nil {
				break
			}
		}
	}
	var indexKinds []pipeline.DescriptorKind
	if d.err == nil {
		for n := int(d.u8()); n > 0 && d.err == nil; n-- {
			indexKinds = append(indexKinds, pipeline.DescriptorKind(d.u8()))
		}
	}
	if d.err == nil && d.off != len(d.b) {
		d.fail("%d trailing bytes", len(d.b)-d.off)
	}
	if d.err != nil {
		return nil, d.err
	}
	// Rebuild the flat indexes from the restored sets — a deterministic
	// reconstruction of exactly what the saved gallery held. An index
	// kind lacking a view's descriptor set cannot have existed at save
	// time, so it marks a corrupt file.
	idx := map[pipeline.DescriptorKind]*pipeline.DescriptorIndex{}
	for _, k := range indexKinds {
		sets := make([]*features.Set, len(views))
		for i := range views {
			s := views[i].Desc[k]
			if s == nil {
				return nil, fmt.Errorf("%w: index kind %s recorded but view %d has no %s descriptors", ErrCorrupt, k, i, k)
			}
			sets[i] = s
		}
		idx[k] = pipeline.NewDescriptorIndex(sets)
	}
	out.Gallery = pipeline.RestoreGallery(views, idx)
	return out, nil
}

// Save writes the snapshot to path atomically (temp file + rename).
func Save(path string, s *Snapshot) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".snap-*")
	if err != nil {
		return fmt.Errorf("snapshot: save: %w", err)
	}
	tmp := f.Name()
	if err := Write(f, s); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: save: %w", err)
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: save: %w", err)
	}
	return nil
}

// Load reads the snapshot at path.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: load: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// --- view encoding ---

func encodeView(e *enc, v *pipeline.View) {
	e.i64(int64(v.Sample.Class))
	e.i64(int64(v.Sample.Model))
	e.i64(int64(v.Sample.View))
	if img := v.Sample.Image; img != nil {
		e.u8(1)
		e.u32(uint32(img.W))
		e.u32(uint32(img.H))
		e.bytes(img.Pix)
	} else {
		e.u8(0)
	}
	for _, h := range v.Hu {
		e.f64(h)
	}
	if h := v.Hist; h != nil {
		e.u8(1)
		e.u32(uint32(h.Bins))
		e.f64s(h.Counts)
	} else {
		e.u8(0)
	}
	present := make([]pipeline.DescriptorKind, 0, len(descKinds))
	for _, k := range descKinds {
		if v.Desc[k] != nil {
			present = append(present, k)
		}
	}
	e.u8(uint8(len(present)))
	for _, k := range present {
		e.u8(uint8(k))
		encodeSet(e, v.Desc[k])
	}
}

func decodeView(d *dec, v *pipeline.View) {
	v.Sample.Class = synth.Class(d.i64())
	v.Sample.Model = int(d.i64())
	v.Sample.View = int(d.i64())
	if d.u8() == 1 {
		w, h := int(d.u32()), int(d.u32())
		pix := d.bytes()
		if d.err == nil {
			if w <= 0 || h <= 0 || len(pix) != 3*w*h {
				d.fail("image %dx%d with %d pixel bytes", w, h, len(pix))
				return
			}
			v.Sample.Image = &imaging.Image{W: w, H: h, Pix: pix}
		}
	}
	for i := range v.Hu {
		v.Hu[i] = d.f64()
	}
	if d.u8() == 1 {
		bins := int(d.u32())
		counts := d.f64s()
		if d.err == nil {
			if bins < 1 || bins > 256 || len(counts) != bins*bins*bins {
				d.fail("histogram bins %d with %d cells", bins, len(counts))
				return
			}
			v.Hist = &histogram.Hist{Bins: bins, Counts: counts}
		}
	}
	v.Desc = map[pipeline.DescriptorKind]*features.Set{}
	for n := int(d.u8()); n > 0 && d.err == nil; n-- {
		k := pipeline.DescriptorKind(d.u8())
		if s := decodeSet(d); d.err == nil {
			v.Desc[k] = s
		}
	}
}

// --- descriptor set encoding ---

func b2u8(v bool) uint8 {
	if v {
		return 1
	}
	return 0
}

func encodeSet(e *enc, s *features.Set) {
	p := s.Pack().Packed
	// The representation flag disambiguates empty sets: an empty binary
	// set and an empty float set have identical packed shapes but must
	// restore to their original representation.
	e.u8(b2u8(s.IsBinary()))
	e.u32(uint32(len(s.Keypoints)))
	for _, kp := range s.Keypoints {
		e.f32(kp.X)
		e.f32(kp.Y)
		e.f32(kp.Size)
		e.f32(kp.Angle)
		e.f32(kp.Response)
		e.i64(int64(kp.Octave))
	}
	e.u32(uint32(p.N))
	e.u32(uint32(p.Dim))
	e.u32(uint32(p.RowBytes))
	e.u32(uint32(p.WordsPerRow))
	e.f32s(p.Floats)
	e.f32s(p.Norms)
	e.u64s(p.Words)
}

func decodeSet(d *dec) *features.Set {
	isBinary := d.u8() == 1
	nk := int(d.u32())
	if d.err != nil || nk*8 > len(d.b)-d.off {
		d.fail("keypoint count %d exceeds payload", nk)
		return nil
	}
	var kps []features.Keypoint
	if nk > 0 { // decode empty as nil for exact round trips
		kps = make([]features.Keypoint, nk)
	}
	for i := range kps {
		kps[i].X = d.f32()
		kps[i].Y = d.f32()
		kps[i].Size = d.f32()
		kps[i].Angle = d.f32()
		kps[i].Response = d.f32()
		kps[i].Octave = int(d.i64())
	}
	p := &features.Packed{
		N:        int(d.u32()),
		Dim:      int(d.u32()),
		RowBytes: int(d.u32()),
	}
	p.WordsPerRow = int(d.u32())
	p.Floats = d.f32s()
	p.Norms = d.f32s()
	p.Words = d.u64s()
	if d.err != nil {
		return nil
	}
	if isBinary && p.Words == nil {
		p.Words = []uint64{} // Pack always materialises Words for binary sets
	}
	if p.N != nk || len(p.Floats) != p.N*p.Dim || len(p.Norms) != boolN(p.Dim > 0, p.N) ||
		len(p.Words) != p.N*p.WordsPerRow {
		d.fail("packed block shape mismatch (N=%d dim=%d wpr=%d)", p.N, p.Dim, p.WordsPerRow)
		return nil
	}
	return features.RestoreSet(kps, p)
}

func boolN(cond bool, n int) int {
	if cond {
		return n
	}
	return 0
}

// --- primitive little-endian encoder/decoder ---

type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) f32(v float32) {
	e.u32(math.Float32bits(v))
}
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.b = append(e.b, v...)
}
func (e *enc) f32s(v []float32) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.u32(math.Float32bits(x))
	}
}
func (e *enc) f64s(v []float64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.u64(math.Float64bits(x))
	}
}
func (e *enc) u64s(v []uint64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.u64(x)
	}
}

type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b)-d.off {
		d.fail("truncated at offset %d (need %d bytes, have %d)", d.off, n, len(d.b)-d.off)
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *dec) u8() uint8 {
	v := d.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}
func (d *dec) u32() uint32 {
	v := d.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}
func (d *dec) u64() uint64 {
	v := d.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}
func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f32() float32 { return math.Float32frombits(d.u32()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *dec) str() string {
	n := int(d.u32())
	return string(d.take(n))
}
func (d *dec) bytes() []byte {
	n := int(d.u32())
	if n == 0 {
		return nil // nil and empty encode identically; decode to nil for exact round trips
	}
	v := d.take(n)
	if v == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, v)
	return out
}
func (d *dec) f32s() []float32 {
	n := int(d.u32())
	if n == 0 {
		return nil // nil and empty encode identically; decode to nil for exact round trips
	}
	raw := d.take(n * 4)
	if raw == nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out
}
func (d *dec) f64s() []float64 {
	n := int(d.u32())
	if n == 0 {
		return nil // nil and empty encode identically; decode to nil for exact round trips
	}
	raw := d.take(n * 8)
	if raw == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out
}
func (d *dec) u64s() []uint64 {
	n := int(d.u32())
	if n == 0 {
		return nil // nil and empty encode identically; decode to nil for exact round trips
	}
	raw := d.take(n * 8)
	if raw == nil {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(raw[i*8:])
	}
	return out
}
