// Package snapshot persists prepared recognition galleries: a versioned
// little-endian binary codec over every piece of state a gallery needs
// to classify without re-rendering or re-extracting — views (image,
// class, model, view id), Hu moments, colour histograms, the packed
// descriptor blocks of every extracted family with their keypoints, and
// the set of prepared flat-index kinds (the indexes themselves are
// rebuilt deterministically from the packed blocks on load, so the
// descriptor bytes are stored once). The contract is round-trip
// exactness: a loaded gallery produces bit-identical predictions to the
// gallery that was saved, for every pipeline.
//
// Two format versions exist:
//
//   - v1 is a single length-prefixed payload stream that Read decodes
//     field by field into fresh heap slices. The reader is kept for
//     back-compat; WriteV1/SaveV1 still produce it for older loaders.
//   - v2 (the default, see v2.go) separates the file into a small
//     structure stream and an 8-byte-aligned blob region holding the
//     large numeric payloads, so Map can alias the packed descriptor
//     matrices straight off a read-only memory mapping with zero
//     copies: loading a large gallery costs O(structure), not O(bytes).
//
// v1 layout:
//
//	magic   8 bytes "SNSNAP\r\n"
//	version uint32 (1)
//	payload length-prefixed fields (see encode/decode below)
//	crc32   IEEE checksum of the payload
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"snmatch/internal/fault"
	"snmatch/internal/features"
	"snmatch/internal/histogram"
	"snmatch/internal/imaging"
	"snmatch/internal/pipeline"
	"snmatch/internal/synth"
)

// Version is the current snapshot format version, the one Write and
// Save produce. VersionV1 is the legacy single-stream format; its
// reader is retained so v1 snapshots keep loading.
const (
	Version   = 2
	VersionV1 = 1
)

var magic = [8]byte{'S', 'N', 'S', 'N', 'A', 'P', '\r', '\n'}

// Errors the loader distinguishes. ErrVersion is wrapped with the
// got/want pair; use errors.Is.
var (
	ErrBadMagic = errors.New("snapshot: bad magic (not a gallery snapshot)")
	ErrVersion  = errors.New("snapshot: unsupported format version")
	ErrCorrupt  = errors.New("snapshot: corrupt payload")
)

// descKinds fixes the on-disk descriptor family order.
var descKinds = []pipeline.DescriptorKind{pipeline.SIFT, pipeline.SURF, pipeline.ORB}

// Meta records the provenance of a persisted gallery: the dataset it
// was built from and the render parameters. Loaders validate it against
// their own configuration (Meta.Check) so a mismatched snapshot fails
// loudly instead of producing silently wrong predictions.
type Meta struct {
	Dataset string // dataset identifier, e.g. "sns1"
	Size    int    // render size in pixels
	Seed    uint64 // render seed
}

// Check compares this (loaded) provenance against the caller's
// expectation. Every field is compared — there are no skip sentinels,
// because 0 is a seed a user can legitimately pass — so callers must
// fill the complete expected Meta.
func (m Meta) Check(want Meta) error {
	if m.Dataset != want.Dataset {
		return fmt.Errorf("snapshot: gallery was built from dataset %q, this run needs %q", m.Dataset, want.Dataset)
	}
	if m.Size != want.Size {
		return fmt.Errorf("snapshot: gallery was rendered at size %d, this run needs %d", m.Size, want.Size)
	}
	if m.Seed != want.Seed {
		return fmt.Errorf("snapshot: gallery was rendered with seed %d, this run needs %d", m.Seed, want.Seed)
	}
	return nil
}

// Snapshot is a named, provenance-stamped prepared gallery — the unit
// the codec reads and writes.
type Snapshot struct {
	Name    string
	Meta    Meta
	Gallery *pipeline.Gallery
}

// Write serializes the snapshot in the current (v2) format. The gallery
// must be quiescent (no concurrent extraction); the binaries save only
// after preparation completes.
func Write(w io.Writer, s *Snapshot) error { return writeV2(w, s) }

// WriteV1 serializes the snapshot in the legacy v1 format — the
// single-stream layout readers predating Map understand. New snapshots
// should use Write; this exists so back-compat fixtures can still be
// produced.
func WriteV1(w io.Writer, s *Snapshot) error {
	g := s.Gallery
	var e enc
	e.str(s.Name)
	e.str(s.Meta.Dataset)
	e.i64(int64(s.Meta.Size))
	e.u64(s.Meta.Seed)
	e.u32(uint32(len(g.Views)))
	for i := range g.Views {
		encodeViewV1(&e, &g.Views[i])
	}
	// The flat indexes are not serialized: NewDescriptorIndex is a pure,
	// deterministic function of the per-view packed sets already stored
	// above (including the prune decision, derived from the norm
	// spread), so persisting them would double the descriptor bytes on
	// disk. Only the prepared kinds are recorded; Read rebuilds each
	// index bit-identically from the restored sets.
	encodeIndexKinds(&e, g)

	var hdr [12]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], VersionV1)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("snapshot: write header: %w", err)
	}
	if _, err := w.Write(e.b); err != nil {
		return fmt.Errorf("snapshot: write payload: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(e.b))
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("snapshot: write checksum: %w", err)
	}
	return nil
}

// encodeIndexKinds records which flat-index kinds the gallery has
// prepared (shared tail of both format versions).
func encodeIndexKinds(e *enc, g *pipeline.Gallery) {
	idx := g.Indexes()
	present := make([]pipeline.DescriptorKind, 0, len(descKinds))
	for _, k := range descKinds {
		if idx[k] != nil {
			present = append(present, k)
		}
	}
	e.u8(uint8(len(present)))
	for _, k := range present {
		e.u8(uint8(k))
	}
}

// Read deserializes a snapshot of either format version into heap
// memory. For the v2 zero-copy path use Map.
func Read(r io.Reader) (*Snapshot, error) {
	if err := fault.Check(fault.SnapshotRead); err != nil {
		return nil, fmt.Errorf("snapshot: read: %w", err)
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read: %w", err)
	}
	if len(raw) < 16 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any snapshot", ErrCorrupt, len(raw))
	}
	if [8]byte(raw[:8]) != magic {
		return nil, ErrBadMagic
	}
	switch v := binary.LittleEndian.Uint32(raw[8:12]); v {
	case VersionV1:
		return readV1(raw)
	case Version:
		// Heap loads alias the read buffer too (one backing array, no
		// per-field copies); it just lives on the GC heap instead of a
		// mapping, so nothing is marked borrowed.
		return readV2(ensureAligned8(raw), true, false)
	default:
		return nil, fmt.Errorf("%w: file version %d, supported versions %d and %d", ErrVersion, v, VersionV1, Version)
	}
}

// minViewEncV1 is the smallest on-disk footprint of one v1 view
// (sample ids, image flag, Hu block, histogram flag, descriptor
// count); the view count is bounded against it before allocation.
const minViewEncV1 = 3*8 + 1 + 7*8 + 1 + 1

// readV1 decodes the legacy single-stream format.
func readV1(raw []byte) (*Snapshot, error) {
	payload := raw[12 : len(raw)-4]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, recorded %08x", ErrCorrupt, got, want)
	}

	d := &dec{b: payload}
	out := &Snapshot{}
	out.Name = d.str()
	out.Meta.Dataset = d.str()
	out.Meta.Size = int(d.i64())
	out.Meta.Seed = d.u64()
	nv := d.count(int(d.u32()), minViewEncV1)
	var views []pipeline.View
	if d.err == nil {
		views = make([]pipeline.View, nv)
		for i := range views {
			decodeViewV1(d, &views[i])
			if d.err != nil {
				break
			}
		}
	}
	indexKinds := decodeIndexKinds(d)
	if d.err == nil && d.off != len(d.b) {
		d.fail("%d trailing bytes", len(d.b)-d.off)
	}
	if d.err != nil {
		return nil, d.err
	}
	idx, err := buildIndexes(views, indexKinds, nil)
	if err != nil {
		return nil, err
	}
	out.Gallery = pipeline.RestoreGallery(views, idx)
	return out, nil
}

// decodeIndexKinds reads the recorded flat-index kind list.
func decodeIndexKinds(d *dec) []pipeline.DescriptorKind {
	var kinds []pipeline.DescriptorKind
	for n := int(d.u8()); n > 0 && d.err == nil; n-- {
		kinds = append(kinds, pipeline.DescriptorKind(d.u8()))
	}
	return kinds
}

// buildIndexes rebuilds the recorded flat indexes from the restored
// sets — a deterministic reconstruction of exactly what the saved
// gallery held. Every view's set of a recorded kind must be present and
// shape-consistent with the others: an inconsistency cannot have
// existed at save time, so it marks a corrupt (or crafted) file, which
// must surface as ErrCorrupt here rather than as a panic inside the
// index builder or an out-of-bounds scan at query time. regions, when
// non-nil, supplies the concatenated blob storage the v2 loader aliases
// the indexes onto.
func buildIndexes(views []pipeline.View, kinds []pipeline.DescriptorKind, regions map[pipeline.DescriptorKind]indexRegion) (map[pipeline.DescriptorKind]*pipeline.DescriptorIndex, error) {
	idx := map[pipeline.DescriptorKind]*pipeline.DescriptorIndex{}
	for _, k := range kinds {
		sets := make([]*features.Set, len(views))
		var (
			have   bool
			binary bool
			dim    int
			wpr    int
		)
		for i := range views {
			s := views[i].Desc[k]
			if s == nil {
				return nil, fmt.Errorf("%w: index kind %s recorded but view %d has no %s descriptors", ErrCorrupt, k, i, k)
			}
			sets[i] = s
			if s.Len() == 0 {
				continue
			}
			p := s.Packed
			if !have {
				have, binary, dim, wpr = true, s.IsBinary(), p.Dim, p.WordsPerRow
				continue
			}
			if s.IsBinary() != binary || p.Dim != dim || p.WordsPerRow != wpr {
				return nil, fmt.Errorf("%w: index kind %s mixes descriptor shapes (view %d)", ErrCorrupt, k, i)
			}
		}
		r := regions[k]
		idx[k] = pipeline.RestoreDescriptorIndex(sets, r.floats, r.words)
	}
	return idx, nil
}

// Save writes the snapshot to path atomically and durably: the bytes
// are flushed to a temp file, fsynced, renamed over path, and the
// parent directory is fsynced so the rename itself survives a crash —
// without the two syncs a post-rename crash can legally surface a
// zero-length or torn file under the final name. No temp file is left
// behind on any error path.
func Save(path string, s *Snapshot) error { return save(path, s, Write) }

// SaveV1 is Save in the legacy v1 format (see WriteV1).
func SaveV1(path string, s *Snapshot) error { return save(path, s, WriteV1) }

func save(path string, s *Snapshot, write func(io.Writer, *Snapshot) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return fmt.Errorf("snapshot: save: %w", err)
	}
	tmp := f.Name()
	if err := write(f, s); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// Flush file data before the rename: rename-then-crash must never
	// publish a name whose content is still in page cache only.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("snapshot: save: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: save: %w", err)
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: save: %w", err)
	}
	// Durably record the rename in the directory itself.
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("snapshot: save: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry is on disk.
// Windows has no directory fsync (and NTFS journals the rename); the
// call is skipped there rather than failing every Save.
func syncDir(dir string) error {
	if runtime.GOOS == "windows" {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Load reads the snapshot at path into heap memory.
func Load(path string) (*Snapshot, error) {
	loadMetrics()
	start := time.Now()
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: load: %w", err)
	}
	defer f.Close()
	snap, err := Read(f)
	if err == nil {
		recordLoad(loadObs.load, start)
	}
	return snap, err
}

// --- view encoding (v1) ---

func encodeViewV1(e *enc, v *pipeline.View) {
	e.i64(int64(v.Sample.Class))
	e.i64(int64(v.Sample.Model))
	e.i64(int64(v.Sample.View))
	if img := v.Sample.Image; img != nil {
		e.u8(1)
		e.u32(uint32(img.W))
		e.u32(uint32(img.H))
		e.bytes(img.Pix)
	} else {
		e.u8(0)
	}
	for _, h := range v.Hu {
		e.f64(h)
	}
	if h := v.Hist; h != nil {
		e.u8(1)
		e.u32(uint32(h.Bins))
		e.f64s(h.Counts)
	} else {
		e.u8(0)
	}
	present := make([]pipeline.DescriptorKind, 0, len(descKinds))
	for _, k := range descKinds {
		if v.Desc[k] != nil {
			present = append(present, k)
		}
	}
	e.u8(uint8(len(present)))
	for _, k := range present {
		e.u8(uint8(k))
		encodeSetV1(e, v.Desc[k])
	}
}

// maxImageSide bounds a decoded view image's width and height. The
// gallery renders are small (tens to hundreds of pixels); the bound
// exists so a crafted width/height pair cannot overflow the 3*w*h pixel
// arithmetic and smuggle in an Image header whose dimensions exceed its
// pixel storage (an out-of-bounds read at query time). It is sized so
// 3*maxImageSide² still fits a 32-bit int — overflow must be impossible
// on every GOARCH, not just 64-bit ones.
const maxImageSide = 1 << 14

func decodeViewV1(d *dec, v *pipeline.View) {
	v.Sample.Class = synth.Class(d.i64())
	v.Sample.Model = int(d.i64())
	v.Sample.View = int(d.i64())
	if d.u8() == 1 {
		w, h := int(d.u32()), int(d.u32())
		pix := d.bytes()
		if d.err == nil {
			if img := restoreImage(d, w, h, pix); img != nil {
				v.Sample.Image = img
			} else {
				return
			}
		}
	}
	for i := range v.Hu {
		v.Hu[i] = d.f64()
	}
	if d.u8() == 1 {
		bins := int(d.u32())
		counts := d.f64s()
		if d.err == nil {
			if h := restoreHist(d, bins, counts); h != nil {
				v.Hist = h
			} else {
				return
			}
		}
	}
	v.Desc = map[pipeline.DescriptorKind]*features.Set{}
	for n := int(d.u8()); n > 0 && d.err == nil; n-- {
		k := pipeline.DescriptorKind(d.u8())
		if s := decodeSetV1(d); d.err == nil {
			v.Desc[k] = s
		}
	}
}

// restoreImage validates decoded image dimensions against their pixel
// payload (shared by both format versions) and assembles the image.
// It fails the decoder and returns nil on mismatch.
func restoreImage(d *dec, w, h int, pix []byte) *imaging.Image {
	if w <= 0 || h <= 0 || w > maxImageSide || h > maxImageSide || len(pix) != 3*w*h {
		d.fail("image %dx%d with %d pixel bytes", w, h, len(pix))
		return nil
	}
	return &imaging.Image{W: w, H: h, Pix: pix}
}

// restoreHist validates a decoded histogram shape (shared by both
// format versions).
func restoreHist(d *dec, bins int, counts []float64) *histogram.Hist {
	if bins < 1 || bins > 256 || len(counts) != bins*bins*bins {
		d.fail("histogram bins %d with %d cells", bins, len(counts))
		return nil
	}
	return &histogram.Hist{Bins: bins, Counts: counts}
}

// --- descriptor set encoding (v1) ---

func b2u8(v bool) uint8 {
	if v {
		return 1
	}
	return 0
}

// keypointEnc is the fixed on-disk size of one keypoint (5 float32
// fields plus the octave int64).
const keypointEnc = 5*4 + 8

func encodeSetV1(e *enc, s *features.Set) {
	p := s.Pack().Packed
	// The representation flag disambiguates empty sets: an empty binary
	// set and an empty float set have identical packed shapes but must
	// restore to their original representation.
	e.u8(b2u8(s.IsBinary()))
	e.u32(uint32(len(s.Keypoints)))
	encodeKeypoints(e, s.Keypoints)
	e.u32(uint32(p.N))
	e.u32(uint32(p.Dim))
	e.u32(uint32(p.RowBytes))
	e.u32(uint32(p.WordsPerRow))
	e.f32s(p.Floats)
	e.f32s(p.Norms)
	e.u64s(p.Words)
}

func encodeKeypoints(e *enc, kps []features.Keypoint) {
	for _, kp := range kps {
		e.f32(kp.X)
		e.f32(kp.Y)
		e.f32(kp.Size)
		e.f32(kp.Angle)
		e.f32(kp.Response)
		e.i64(int64(kp.Octave))
	}
}

// decodeKeypoints length-bounds and decodes a keypoint block (shared
// by both format versions). The whole block is taken in one bounds
// check and decoded field-wise off it — keypoints are the largest
// structure-stream item, so this loop is the mapped load's hot path —
// and the slice comes off the restore slab when one is supplied.
// Empty decodes as nil for exact round trips.
func decodeKeypoints(d *dec, a *features.RestoreAlloc) []features.Keypoint {
	nk := d.count(int(d.u32()), keypointEnc)
	if d.err != nil || nk == 0 {
		return nil
	}
	raw := d.take(nk * keypointEnc)
	if raw == nil {
		return nil
	}
	var kps []features.Keypoint
	if a != nil {
		kps = a.Keypoints(nk)
	} else {
		kps = make([]features.Keypoint, nk)
	}
	for i := range kps {
		f := raw[i*keypointEnc : (i+1)*keypointEnc]
		kps[i].X = math.Float32frombits(binary.LittleEndian.Uint32(f))
		kps[i].Y = math.Float32frombits(binary.LittleEndian.Uint32(f[4:]))
		kps[i].Size = math.Float32frombits(binary.LittleEndian.Uint32(f[8:]))
		kps[i].Angle = math.Float32frombits(binary.LittleEndian.Uint32(f[12:]))
		kps[i].Response = math.Float32frombits(binary.LittleEndian.Uint32(f[16:]))
		kps[i].Octave = int(int64(binary.LittleEndian.Uint64(f[20:])))
	}
	return kps
}

// checkPackedShape validates a decoded packed block against its
// recorded representation flag and keypoint count. All arithmetic is
// division-based: the counts come off the wire as raw u32s, so products
// like N*Dim could overflow and alias a crafted length. Returns false
// (failing the decoder) on any mismatch.
func checkPackedShape(d *dec, p *features.Packed, isBinary bool, nk int) bool {
	ok := p.N == nk
	if isBinary {
		ok = ok && p.Dim == 0 && len(p.Floats) == 0 && len(p.Norms) == 0
		ok = ok && (p.RowBytes > 0) == (p.WordsPerRow > 0)
		ok = ok && p.WordsPerRow == (p.RowBytes+7)/8
		if p.WordsPerRow == 0 {
			ok = ok && len(p.Words) == 0
		} else {
			ok = ok && len(p.Words)%p.WordsPerRow == 0 && len(p.Words)/p.WordsPerRow == p.N
		}
	} else {
		ok = ok && p.RowBytes == 0 && p.WordsPerRow == 0 && len(p.Words) == 0
		if p.Dim == 0 {
			ok = ok && len(p.Floats) == 0 && len(p.Norms) == 0
		} else {
			ok = ok && len(p.Floats)%p.Dim == 0 && len(p.Floats)/p.Dim == p.N && len(p.Norms) == p.N
		}
	}
	if !ok {
		d.fail("packed block shape mismatch (N=%d dim=%d rowBytes=%d wpr=%d)", p.N, p.Dim, p.RowBytes, p.WordsPerRow)
	}
	return ok
}

func decodeSetV1(d *dec) *features.Set {
	isBinary := d.u8() == 1
	kps := decodeKeypoints(d, nil)
	if d.err != nil {
		return nil
	}
	p := &features.Packed{
		N:        int(d.u32()),
		Dim:      int(d.u32()),
		RowBytes: int(d.u32()),
	}
	p.WordsPerRow = int(d.u32())
	p.Floats = d.f32s()
	p.Norms = d.f32s()
	p.Words = d.u64s()
	if d.err != nil {
		return nil
	}
	if isBinary && p.Words == nil {
		p.Words = []uint64{} // Pack always materialises Words for binary sets
	}
	if !checkPackedShape(d, p, isBinary, len(kps)) {
		return nil
	}
	return features.RestoreSet(kps, p)
}

// --- primitive little-endian encoder/decoder ---

type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) f32(v float32) {
	e.u32(math.Float32bits(v))
}
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.b = append(e.b, v...)
}
func (e *enc) f32s(v []float32) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.u32(math.Float32bits(x))
	}
}
func (e *enc) f64s(v []float64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.u64(math.Float64bits(x))
	}
}
func (e *enc) u64s(v []uint64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.u64(x)
	}
}

type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

// count validates an element count read off the wire against the bytes
// that remain: a valid stream must still carry at least min encoded
// bytes per element, so a larger count is corrupt — and must fail here,
// BEFORE it reaches a make(), not after a crafted multi-GB allocation.
func (d *dec) count(n, min int) int {
	if d.err != nil {
		return 0
	}
	if n < 0 || n > (len(d.b)-d.off)/min {
		d.fail("count %d exceeds remaining payload (%d bytes)", n, len(d.b)-d.off)
		return 0
	}
	return n
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b)-d.off {
		d.fail("truncated at offset %d (need %d bytes, have %d)", d.off, n, len(d.b)-d.off)
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *dec) u8() uint8 {
	v := d.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}
func (d *dec) u32() uint32 {
	v := d.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}
func (d *dec) u64() uint64 {
	v := d.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}
func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f32() float32 { return math.Float32frombits(d.u32()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *dec) str() string {
	n := int(d.u32())
	return string(d.take(n))
}
func (d *dec) bytes() []byte {
	n := int(d.u32())
	if n == 0 {
		return nil // nil and empty encode identically; decode to nil for exact round trips
	}
	v := d.take(n)
	if v == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, v)
	return out
}
func (d *dec) f32s() []float32 {
	// count first: on 32-bit targets n*4 can overflow int and slip a
	// huge n past take's byte bound into the make below.
	n := d.count(int(d.u32()), 4)
	if n == 0 {
		return nil // nil and empty encode identically; decode to nil for exact round trips
	}
	raw := d.take(n * 4)
	if raw == nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out
}
func (d *dec) f64s() []float64 {
	n := d.count(int(d.u32()), 8) // pre-bounds n*8 against 32-bit overflow
	if n == 0 {
		return nil // nil and empty encode identically; decode to nil for exact round trips
	}
	raw := d.take(n * 8)
	if raw == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out
}
func (d *dec) u64s() []uint64 {
	n := d.count(int(d.u32()), 8) // pre-bounds n*8 against 32-bit overflow
	if n == 0 {
		return nil // nil and empty encode identically; decode to nil for exact round trips
	}
	raw := d.take(n * 8)
	if raw == nil {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(raw[i*8:])
	}
	return out
}
