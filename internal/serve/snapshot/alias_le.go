//go:build 386 || amd64 || arm || arm64 || loong64 || mipsle || mips64le || ppc64le || riscv64 || wasm

package snapshot

import (
	"unsafe"

	"snmatch/internal/features"
)

// On little-endian targets the on-disk encoding IS the in-memory
// representation, so blob arrays are reinterpreted in place — the
// zero-copy half of the v2 format. Callers guarantee n > 0, that raw
// holds at least n elements, and that &raw[0] satisfies the element
// alignment (the blob accessors check offset alignment against an
// 8-aligned base).

func asF32s(raw []byte, n int) []float32 {
	return unsafe.Slice((*float32)(unsafe.Pointer(&raw[0])), n)
}

func asF64s(raw []byte, n int) []float64 {
	return unsafe.Slice((*float64)(unsafe.Pointer(&raw[0])), n)
}

func asU64s(raw []byte, n int) []uint64 {
	return unsafe.Slice((*uint64)(unsafe.Pointer(&raw[0])), n)
}

// keypointLayoutMatches reports whether features.Keypoint's in-memory
// layout equals the 32-byte v2 disk record (it does on every 64-bit
// little-endian target: five float32 fields, four padding bytes, an
// 8-byte int). Where it doesn't — 32-bit ints, exotic layouts — the
// loader decodes records instead of aliasing them.
var keypointLayoutMatches = func() bool {
	var kp features.Keypoint
	return unsafe.Sizeof(kp) == keypointBlobEnc &&
		unsafe.Offsetof(kp.X) == 0 &&
		unsafe.Offsetof(kp.Y) == 4 &&
		unsafe.Offsetof(kp.Size) == 8 &&
		unsafe.Offsetof(kp.Angle) == 12 &&
		unsafe.Offsetof(kp.Response) == 16 &&
		unsafe.Offsetof(kp.Octave) == 24
}()

// asKeypoints reinterprets a v2 keypoint block in place, or returns nil
// (fall back to decoding) when the record layout is not the in-memory
// one.
func asKeypoints(raw []byte, n int) []features.Keypoint {
	if !keypointLayoutMatches {
		return nil
	}
	return unsafe.Slice((*features.Keypoint)(unsafe.Pointer(&raw[0])), n)
}

// ensureAligned8 returns b, or an 8-aligned copy when the heap buffer
// happens to start off-alignment (the Go allocator 8-aligns every
// non-tiny object, so the copy is a near-impossible fallback, not a
// cost). Mapped buffers are page-aligned and never copy.
func ensureAligned8(b []byte) []byte {
	if len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return b
	}
	words := make([]uint64, (len(b)+7)/8)
	aligned := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(b))
	copy(aligned, b)
	return aligned
}
