package snapshot

// Format v2: the mmap-friendly layout. The file splits into a small
// structure stream (decoded normally) and an 8-byte-aligned blob
// region holding every large numeric payload — image planes, Hu
// moments, histogram bins, keypoint records and the packed descriptor
// matrices — which loaders alias instead of decoding. Descriptor
// payloads are grouped by family with each array kind (float rows,
// norms, word rows, keypoints) laid out contiguously across views in
// view order, which is exactly the storage a flat DescriptorIndex
// concatenates: a mapped load aliases one region per family for the
// whole index and a sub-slice of it per view, so neither the per-view
// packed blocks nor the rebuilt indexes copy descriptor bytes.
//
// v2 layout (all integers little-endian):
//
//	[0,8)    magic "SNSNAP\r\n"
//	[8,12)   version u32 (2)
//	[12,16)  reserved u32 (0)
//	[16,24)  structLen u64     length of the structure stream
//	[24,32)  blobLen u64       length of the blob region (multiple of 8)
//	[32,36)  structCRC u32     IEEE CRC of the structure stream
//	[36,40)  blobCRC u32       IEEE CRC of the blob region
//	[40,48)  reserved u64 (0)
//	[48, 48+structLen)            structure stream
//	zero padding to the next 8-byte boundary
//	[blobStart, blobStart+blobLen) blob region; blobStart = align8(48+structLen)
//
// Alignment rules: the blob region and every block inside it start on
// an 8-byte file offset, so float64/uint64 blocks are always 8-aligned
// and float32 blocks at least 4-aligned in the mapping (whose base is
// page-aligned). Within a descriptor region the per-view arrays are
// packed back-to-back with no padding — element sizes keep their own
// alignment and contiguity is what lets the index alias the region.
//
// Integrity: Read verifies both CRCs. A true mmap Map verifies the
// structure CRC and the size/alignment invariants only — checksumming
// the blob would fault in every page and turn the O(structure) mapped
// load back into an O(bytes) one; mapped blob integrity is the file's
// (and the page cache's) job, exactly as with any mmap'd database
// file. Map's heap-read fallback has already paid the full read and
// keeps both checks.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"snmatch/internal/features"
	"snmatch/internal/pipeline"
	"snmatch/internal/synth"
)

const (
	headerLenV2  = 48
	offStructLen = 16
	offBlobLen   = 24
	offStructCRC = 32
	offBlobCRC   = 36
)

// align8 rounds n up to the next multiple of 8.
func align8(n int) int { return (n + 7) &^ 7 }

// minViewEncV2 is the smallest on-disk footprint of one v2 view in the
// structure stream (sample ids, image flag, histogram flag, descriptor
// count; Hu lives in the blob).
const minViewEncV2 = 3*8 + 1 + 1 + 1

// blobEnc assembles the blob region while the writer records offsets.
type blobEnc struct{ b []byte }

// align pads to the next 8-byte boundary and returns the new offset.
func (w *blobEnc) align() uint64 {
	for len(w.b)%8 != 0 {
		w.b = append(w.b, 0)
	}
	return uint64(len(w.b))
}

func (w *blobEnc) off() uint64 { return uint64(len(w.b)) }

func (w *blobEnc) bytes(v []byte) { w.b = append(w.b, v...) }

func (w *blobEnc) f32s(v []float32) {
	for _, x := range v {
		w.b = binary.LittleEndian.AppendUint32(w.b, math.Float32bits(x))
	}
}

func (w *blobEnc) f64s(v []float64) {
	for _, x := range v {
		w.b = binary.LittleEndian.AppendUint64(w.b, math.Float64bits(x))
	}
}

func (w *blobEnc) u64s(v []uint64) {
	for _, x := range v {
		w.b = binary.LittleEndian.AppendUint64(w.b, x)
	}
}

// setOffs are one view's descriptor-array blob offsets for one family.
type setOffs struct{ floats, norms, words, kps uint64 }

// keypointBlobEnc is the v2 on-disk keypoint record: X, Y, Size, Angle,
// Response as float32, 4 zero bytes of padding, Octave as int64 — 32
// bytes, 8-aligned, deliberately identical to the in-memory layout of
// features.Keypoint on 64-bit little-endian targets so a mapped load
// aliases whole keypoint blocks instead of decoding them (asKeypoints
// verifies the layout at runtime and the loader falls back to a decode
// loop anywhere it differs).
const keypointBlobEnc = 32

// keypoints appends the 32-byte keypoint records.
func (w *blobEnc) keypoints(kps []features.Keypoint) {
	for _, kp := range kps {
		w.b = binary.LittleEndian.AppendUint32(w.b, math.Float32bits(kp.X))
		w.b = binary.LittleEndian.AppendUint32(w.b, math.Float32bits(kp.Y))
		w.b = binary.LittleEndian.AppendUint32(w.b, math.Float32bits(kp.Size))
		w.b = binary.LittleEndian.AppendUint32(w.b, math.Float32bits(kp.Angle))
		w.b = binary.LittleEndian.AppendUint32(w.b, math.Float32bits(kp.Response))
		w.b = append(w.b, 0, 0, 0, 0) // padding: record stride stays 8-aligned
		w.b = binary.LittleEndian.AppendUint64(w.b, uint64(int64(kp.Octave)))
	}
}

func writeV2(w io.Writer, s *Snapshot) error {
	g := s.Gallery
	nv := len(g.Views)

	// --- blob region ---
	var bw blobEnc
	huOff := bw.align()
	for i := range g.Views {
		hu := g.Views[i].Hu
		bw.f64s(hu[:])
	}
	histOff := make([]uint64, nv)
	for i := range g.Views {
		if h := g.Views[i].Hist; h != nil {
			histOff[i] = bw.align()
			bw.f64s(h.Counts)
		}
	}
	imgOff := make([]uint64, nv)
	for i := range g.Views {
		if img := g.Views[i].Sample.Image; img != nil {
			imgOff[i] = bw.align()
			bw.bytes(img.Pix)
		}
	}
	// Descriptor regions: per family, each array kind contiguous across
	// views in view order (the index-aliasing layout).
	offs := map[pipeline.DescriptorKind][]setOffs{}
	for _, k := range descKinds {
		present := false
		for i := range g.Views {
			if g.Views[i].Desc[k] != nil {
				present = true
				break
			}
		}
		if !present {
			continue
		}
		so := make([]setOffs, nv)
		bw.align()
		for i := range g.Views {
			if s := g.Views[i].Desc[k]; s != nil {
				p := s.Pack().Packed
				so[i].floats = bw.off()
				bw.f32s(p.Floats)
			}
		}
		bw.align()
		for i := range g.Views {
			if s := g.Views[i].Desc[k]; s != nil {
				so[i].norms = bw.off()
				bw.f32s(s.Packed.Norms)
			}
		}
		bw.align()
		for i := range g.Views {
			if s := g.Views[i].Desc[k]; s != nil {
				so[i].words = bw.off()
				bw.u64s(s.Packed.Words)
			}
		}
		bw.align()
		for i := range g.Views {
			if s := g.Views[i].Desc[k]; s != nil {
				so[i].kps = bw.off()
				bw.keypoints(s.Keypoints)
			}
		}
		offs[k] = so
	}
	bw.align() // blobLen is a multiple of 8

	// --- structure stream ---
	var e enc
	e.str(s.Name)
	e.str(s.Meta.Dataset)
	e.i64(int64(s.Meta.Size))
	e.u64(s.Meta.Seed)
	e.u64(huOff)
	e.u32(uint32(nv))
	for i := range g.Views {
		v := &g.Views[i]
		e.i64(int64(v.Sample.Class))
		e.i64(int64(v.Sample.Model))
		e.i64(int64(v.Sample.View))
		if img := v.Sample.Image; img != nil {
			e.u8(1)
			e.u32(uint32(img.W))
			e.u32(uint32(img.H))
			e.u64(imgOff[i])
		} else {
			e.u8(0)
		}
		if h := v.Hist; h != nil {
			e.u8(1)
			e.u32(uint32(h.Bins))
			e.u64(histOff[i])
		} else {
			e.u8(0)
		}
		present := make([]pipeline.DescriptorKind, 0, len(descKinds))
		for _, k := range descKinds {
			if v.Desc[k] != nil {
				present = append(present, k)
			}
		}
		e.u8(uint8(len(present)))
		for _, k := range present {
			e.u8(uint8(k))
			set := v.Desc[k]
			p := set.Packed
			e.u8(b2u8(set.IsBinary()))
			e.u32(uint32(len(set.Keypoints)))
			e.u64(offs[k][i].kps)
			e.u32(uint32(p.N))
			e.u32(uint32(p.Dim))
			e.u32(uint32(p.RowBytes))
			e.u32(uint32(p.WordsPerRow))
			so := offs[k][i]
			e.u64(so.floats)
			e.u64(so.norms)
			e.u64(so.words)
		}
	}
	encodeIndexKinds(&e, g)

	// --- assemble ---
	var hdr [headerLenV2]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], Version)
	binary.LittleEndian.PutUint64(hdr[offStructLen:], uint64(len(e.b)))
	binary.LittleEndian.PutUint64(hdr[offBlobLen:], uint64(len(bw.b)))
	binary.LittleEndian.PutUint32(hdr[offStructCRC:], crc32.ChecksumIEEE(e.b))
	binary.LittleEndian.PutUint32(hdr[offBlobCRC:], crc32.ChecksumIEEE(bw.b))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("snapshot: write header: %w", err)
	}
	if _, err := w.Write(e.b); err != nil {
		return fmt.Errorf("snapshot: write structure: %w", err)
	}
	if pad := align8(headerLenV2+len(e.b)) - (headerLenV2 + len(e.b)); pad > 0 {
		var zero [8]byte
		if _, err := w.Write(zero[:pad]); err != nil {
			return fmt.Errorf("snapshot: write padding: %w", err)
		}
	}
	if _, err := w.Write(bw.b); err != nil {
		return fmt.Errorf("snapshot: write blob: %w", err)
	}
	return nil
}

// blob is the decoded-side view of the blob region: bounds- and
// alignment-checked accessors that alias (on little-endian targets)
// instead of copying. All failures are ErrCorrupt via the dec.
type blob struct {
	b []byte
	d *dec
}

// slice bounds-checks [off, off+n*size) with overflow-safe arithmetic
// and the element alignment rule (the element size, capped at the
// blob's 8-byte block alignment), returning the raw byte window.
func (bl blob) slice(off uint64, n, size int) []byte {
	if bl.d.err != nil {
		return nil
	}
	align := uint64(size)
	if align > 8 {
		align = 8
	}
	if n < 0 || n > len(bl.b)/size || off%align != 0 ||
		off > uint64(len(bl.b)) || uint64(n*size) > uint64(len(bl.b))-off {
		bl.d.fail("blob ref [%d, +%dx%d) outside %d-byte blob region", off, n, size, len(bl.b))
		return nil
	}
	return bl.b[off : off+uint64(n*size)]
}

func (bl blob) bytesAt(off uint64, n int) []byte {
	raw := bl.slice(off, n, 1)
	if raw == nil || n == 0 {
		return nil
	}
	return raw
}

func (bl blob) f32s(off uint64, n int) []float32 {
	raw := bl.slice(off, n, 4)
	if raw == nil || n == 0 {
		return nil
	}
	return asF32s(raw, n)
}

func (bl blob) f64s(off uint64, n int) []float64 {
	raw := bl.slice(off, n, 8)
	if raw == nil || n == 0 {
		return nil
	}
	return asF64s(raw, n)
}

func (bl blob) u64s(off uint64, n int) []uint64 {
	raw := bl.slice(off, n, 8)
	if raw == nil || n == 0 {
		return nil
	}
	return asU64s(raw, n)
}

// keypoints reads a keypoint block: aliased in place when the record
// layout matches features.Keypoint (64-bit little-endian), decoded
// field-wise off the restore slab otherwise.
func (bl blob) keypoints(off uint64, n int, a *features.RestoreAlloc) []features.Keypoint {
	raw := bl.slice(off, n, keypointBlobEnc)
	if raw == nil || n == 0 {
		return nil
	}
	if kps := asKeypoints(raw, n); kps != nil {
		return kps
	}
	kps := a.Keypoints(n)
	for i := range kps {
		f := raw[i*keypointBlobEnc : (i+1)*keypointBlobEnc]
		kps[i].X = math.Float32frombits(binary.LittleEndian.Uint32(f))
		kps[i].Y = math.Float32frombits(binary.LittleEndian.Uint32(f[4:]))
		kps[i].Size = math.Float32frombits(binary.LittleEndian.Uint32(f[8:]))
		kps[i].Angle = math.Float32frombits(binary.LittleEndian.Uint32(f[12:]))
		kps[i].Response = math.Float32frombits(binary.LittleEndian.Uint32(f[16:]))
		kps[i].Octave = int(int64(binary.LittleEndian.Uint64(f[24:])))
	}
	return kps
}

// indexRegion carries the concatenated per-family blob storage the
// loader aliases a rebuilt flat index onto (nil slices fall back to a
// copying rebuild).
type indexRegion struct {
	floats []float32
	words  []uint64
}

// regionTally accumulates, during view decoding, what a family's
// index-aliasing region must look like: the offset of the first
// non-empty array and the total row count.
type regionTally struct {
	rows                int
	dim, wpr            int
	floatOff, wordOff   uint64
	haveFloat, haveWord bool
}

// readV2 decodes a v2 snapshot from the complete file bytes. With
// borrowed=true (a memory mapping) the restored packed blocks are
// marked Borrowed so pooling code never recycles them; verifyBlob
// selects whether the blob CRC is checked (heap loads) or skipped
// (mapped loads stay O(structure)).
func readV2(raw []byte, verifyBlob, borrowed bool) (*Snapshot, error) {
	if len(raw) < headerLenV2 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than a v2 header", ErrCorrupt, len(raw))
	}
	if [8]byte(raw[:8]) != magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(raw[8:12]); v != Version {
		return nil, fmt.Errorf("%w: file version %d, this path supports version %d", ErrVersion, v, Version)
	}
	structLen := binary.LittleEndian.Uint64(raw[offStructLen:])
	blobLen := binary.LittleEndian.Uint64(raw[offBlobLen:])
	if structLen > uint64(len(raw)-headerLenV2) {
		return nil, fmt.Errorf("%w: structure length %d exceeds file", ErrCorrupt, structLen)
	}
	blobStart := uint64(align8(headerLenV2 + int(structLen)))
	if blobLen%8 != 0 || blobLen > uint64(len(raw)) || blobStart != uint64(len(raw))-blobLen {
		return nil, fmt.Errorf("%w: file length %d does not match structure %d + blob %d", ErrCorrupt, len(raw), structLen, blobLen)
	}
	structure := raw[headerLenV2 : headerLenV2+int(structLen)]
	if got, want := crc32.ChecksumIEEE(structure), binary.LittleEndian.Uint32(raw[offStructCRC:]); got != want {
		return nil, fmt.Errorf("%w: structure checksum %08x, recorded %08x", ErrCorrupt, got, want)
	}
	blobBytes := raw[blobStart:]
	if verifyBlob {
		if got, want := crc32.ChecksumIEEE(blobBytes), binary.LittleEndian.Uint32(raw[offBlobCRC:]); got != want {
			return nil, fmt.Errorf("%w: blob checksum %08x, recorded %08x", ErrCorrupt, got, want)
		}
	}

	d := &dec{b: structure}
	bl := blob{b: blobBytes, d: d}
	out := &Snapshot{}
	out.Name = d.str()
	out.Meta.Dataset = d.str()
	out.Meta.Size = int(d.i64())
	out.Meta.Seed = d.u64()
	huOff := d.u64()
	nv := d.count(int(d.u32()), minViewEncV2)
	hu := bl.f64s(huOff, nv*7)
	var views []pipeline.View
	tallies := map[pipeline.DescriptorKind]*regionTally{}
	alloc := &features.RestoreAlloc{}
	if d.err == nil {
		views = make([]pipeline.View, nv)
		for i := range views {
			decodeViewV2(d, bl, &views[i], hu, i, tallies, borrowed, alloc)
			if d.err != nil {
				break
			}
		}
	}
	indexKinds := decodeIndexKinds(d)
	if d.err == nil && d.off != len(d.b) {
		d.fail("%d trailing bytes", len(d.b)-d.off)
	}
	if d.err != nil {
		return nil, d.err
	}
	// Resolve each family's index-aliasing region. A region that fails
	// its bounds check (possible only in a crafted file) degrades to a
	// copying index rebuild rather than an error: the per-set blocks
	// already validated, so correctness never depends on contiguity.
	regions := map[pipeline.DescriptorKind]indexRegion{}
	for k, t := range tallies {
		var r indexRegion
		probe := &dec{b: nil}
		pbl := blob{b: blobBytes, d: probe}
		if t.haveFloat && t.dim > 0 && t.rows <= len(blobBytes)/4/t.dim {
			r.floats = pbl.f32s(t.floatOff, t.rows*t.dim)
		}
		if t.haveWord && t.wpr > 0 && t.rows <= len(blobBytes)/8/t.wpr {
			r.words = pbl.u64s(t.wordOff, t.rows*t.wpr)
		}
		if probe.err == nil {
			regions[k] = r
		}
	}
	idx, err := buildIndexes(views, indexKinds, regions)
	if err != nil {
		return nil, err
	}
	out.Gallery = pipeline.RestoreGallery(views, idx)
	return out, nil
}

func decodeViewV2(d *dec, bl blob, v *pipeline.View, hu []float64, i int, tallies map[pipeline.DescriptorKind]*regionTally, borrowed bool, alloc *features.RestoreAlloc) {
	v.Sample.Class = synth.Class(d.i64())
	v.Sample.Model = int(d.i64())
	v.Sample.View = int(d.i64())
	if d.u8() == 1 {
		w, h := int(d.u32()), int(d.u32())
		var pix []byte
		if d.err == nil && w > 0 && h > 0 && w <= maxImageSide && h <= maxImageSide {
			pix = bl.bytesAt(d.u64(), 3*w*h)
		} else {
			d.fail("image dimensions %dx%d", w, h)
		}
		if d.err == nil {
			if img := restoreImage(d, w, h, pix); img != nil {
				v.Sample.Image = img
			} else {
				return
			}
		}
	}
	if d.err == nil && len(hu) >= (i+1)*7 {
		copy(v.Hu[:], hu[i*7:(i+1)*7])
	}
	if d.u8() == 1 {
		bins := int(d.u32())
		var counts []float64
		if d.err == nil && bins >= 1 && bins <= 256 {
			counts = bl.f64s(d.u64(), bins*bins*bins)
		} else {
			d.fail("histogram bins %d", bins)
		}
		if d.err == nil {
			if h := restoreHist(d, bins, counts); h != nil {
				v.Hist = h
			} else {
				return
			}
		}
	}
	v.Desc = make(map[pipeline.DescriptorKind]*features.Set, 3)
	for n := int(d.u8()); n > 0 && d.err == nil; n-- {
		k := pipeline.DescriptorKind(d.u8())
		if s := decodeSetV2(d, bl, k, tallies, borrowed, alloc); d.err == nil {
			v.Desc[k] = s
		}
	}
}

func decodeSetV2(d *dec, bl blob, k pipeline.DescriptorKind, tallies map[pipeline.DescriptorKind]*regionTally, borrowed bool, alloc *features.RestoreAlloc) *features.Set {
	isBinary := d.u8() == 1
	nk := int(d.u32())
	kpsOff := d.u64()
	if d.err != nil {
		return nil
	}
	kps := bl.keypoints(kpsOff, nk, alloc)
	if d.err != nil {
		return nil
	}
	p := alloc.Packed()
	p.N = int(d.u32())
	p.Dim = int(d.u32())
	p.RowBytes = int(d.u32())
	p.WordsPerRow = int(d.u32())
	if d.err != nil {
		return nil
	}
	// The counts are still raw wire values here; bound the products the
	// blob accessors will be asked for before computing them.
	if p.N < 0 || p.Dim < 0 || p.WordsPerRow < 0 ||
		(p.Dim > 0 && p.N > len(bl.b)/4/p.Dim) ||
		(p.WordsPerRow > 0 && p.N > len(bl.b)/8/p.WordsPerRow) {
		d.fail("packed block shape exceeds blob (N=%d dim=%d wpr=%d)", p.N, p.Dim, p.WordsPerRow)
		return nil
	}
	floatOff := d.u64()
	normOff := d.u64()
	wordOff := d.u64()
	if d.err != nil {
		return nil
	}
	if p.Dim > 0 {
		p.Floats = bl.f32s(floatOff, p.N*p.Dim)
		p.Norms = bl.f32s(normOff, p.N)
	}
	if p.WordsPerRow > 0 {
		p.Words = bl.u64s(wordOff, p.N*p.WordsPerRow)
	}
	if d.err != nil {
		return nil
	}
	if isBinary && p.Words == nil {
		p.Words = []uint64{} // Pack always materialises Words for binary sets
	}
	if !checkPackedShape(d, p, isBinary, len(kps)) {
		return nil
	}
	p.Borrowed = borrowed
	// Tally the family's region: rows accumulate in view order; the
	// first non-empty array fixes the region start.
	if p.N > 0 {
		t := tallies[k]
		if t == nil {
			t = &regionTally{}
			tallies[k] = t
		}
		if p.Dim > 0 && !t.haveFloat {
			t.haveFloat, t.floatOff, t.dim = true, floatOff, p.Dim
		}
		if p.WordsPerRow > 0 && !t.haveWord {
			t.haveWord, t.wordOff, t.wpr = true, wordOff, p.WordsPerRow
		}
		t.rows += p.N
	}
	return features.RestoreSetIn(alloc, kps, p)
}
