//go:build !(386 || amd64 || arm || arm64 || loong64 || mipsle || mips64le || ppc64le || riscv64 || wasm)

package snapshot

import (
	"encoding/binary"
	"math"

	"snmatch/internal/features"
)

// On big-endian targets the little-endian blob encoding cannot be
// aliased; the accessors decode element-wise into fresh slices instead.
// Loads stay correct everywhere — only the zero-copy property is a
// little-endian (i.e. every mainstream robot/server CPU) feature.

func asF32s(raw []byte, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out
}

func asF64s(raw []byte, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out
}

func asU64s(raw []byte, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(raw[i*8:])
	}
	return out
}

// keypointLayoutMatches: the on-disk record is little-endian, so
// big-endian targets always decode.
var keypointLayoutMatches = false

// asKeypoints always falls back to the decode loop on big-endian
// targets.
func asKeypoints([]byte, int) []features.Keypoint { return nil }

// ensureAligned8 is a no-op where the accessors copy anyway.
func ensureAligned8(b []byte) []byte { return b }
