//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package snapshot

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile memory-maps the file read-only and page-cache-shared: the
// returned bytes alias the kernel's cached pages, so several processes
// mapping the same snapshot share one physical copy and an unmapped
// page costs nothing until touched. The second return reports that the
// bytes must be released with unmapMem.
func mapFile(f *os.File, size int) ([]byte, bool, error) {
	if size <= 0 {
		return nil, false, fmt.Errorf("%w: %d-byte file", ErrCorrupt, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, fmt.Errorf("snapshot: mmap: %w", err)
	}
	return data, true, nil
}

// unmapMem releases a mapFile mapping.
func unmapMem(b []byte) error { return syscall.Munmap(b) }
