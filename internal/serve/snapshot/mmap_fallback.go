//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package snapshot

import (
	"fmt"
	"io"
	"os"
)

// mapFile on platforms without a usable mmap reads the file into one
// aligned heap buffer. Map keeps its API and aliasing semantics — the
// packed matrices still share a single backing array — it just loses
// the page-cache sharing; the buffer is garbage-collected, so there is
// nothing for unmapMem to do.
func mapFile(f *os.File, size int) ([]byte, bool, error) {
	if size <= 0 {
		return nil, false, fmt.Errorf("%w: %d-byte file", ErrCorrupt, size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, false, fmt.Errorf("snapshot: map: %w", err)
	}
	return ensureAligned8(buf), false, nil
}

func unmapMem([]byte) error { return nil }
