package snapshot

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"snmatch/internal/dataset"
	"snmatch/internal/pipeline"
)

// tempSnaps lists the .snap-* temp files in dir — Save's working files,
// which must never outlive the call.
func tempSnaps(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".snap-") {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestSaveLeavesNoTempFiles drives Save down its distinct exit paths —
// success, a failing encoder, and a failing rename — and checks none of
// them leaves a .snap-* temp file behind.
func TestSaveLeavesNoTempFiles(t *testing.T) {
	g := pipeline.NewGallery(dataset.BuildSNS1(dataset.Config{Size: 24, Seed: 4}))
	snap := &Snapshot{Name: "x", Gallery: g}

	t.Run("success", func(t *testing.T) {
		dir := t.TempDir()
		if err := Save(filepath.Join(dir, "g.snap"), snap); err != nil {
			t.Fatalf("Save: %v", err)
		}
		if left := tempSnaps(t, dir); len(left) != 0 {
			t.Fatalf("successful Save left temp files %v", left)
		}
	})
	t.Run("write-error", func(t *testing.T) {
		dir := t.TempDir()
		boom := errors.New("boom")
		err := save(filepath.Join(dir, "g.snap"), snap, func(io.Writer, *Snapshot) error { return boom })
		if !errors.Is(err, boom) {
			t.Fatalf("injected write error not surfaced: %v", err)
		}
		if left := tempSnaps(t, dir); len(left) != 0 {
			t.Fatalf("failed write left temp files %v", left)
		}
		if _, err := os.Stat(filepath.Join(dir, "g.snap")); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("failed Save published the target name: %v", err)
		}
	})
	t.Run("rename-error", func(t *testing.T) {
		dir := t.TempDir()
		target := filepath.Join(dir, "g.snap")
		if err := os.Mkdir(target, 0o755); err != nil { // rename onto a non-empty dir fails
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(target, "occupied"), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := Save(target, snap); err == nil {
			t.Fatal("Save onto a non-empty directory succeeded")
		}
		if left := tempSnaps(t, dir); len(left) != 0 {
			t.Fatalf("failed rename left temp files %v", left)
		}
	})
	t.Run("missing-dir", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "absent")
		if err := Save(filepath.Join(dir, "g.snap"), snap); err == nil {
			t.Fatal("Save into a missing directory succeeded")
		}
	})
}

// TestSaveOverwrite pins that Save atomically replaces an existing
// snapshot: the old file is readable until the rename and the new one
// after it.
func TestSaveOverwrite(t *testing.T) {
	g := prepared(t)
	path := filepath.Join(t.TempDir(), "g.snap")
	if err := Save(path, &Snapshot{Name: "one", Meta: Meta{Dataset: "sns1", Size: 40, Seed: 2}, Gallery: g}); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, &Snapshot{Name: "two", Meta: Meta{Dataset: "sns1", Size: 40, Seed: 2}, Gallery: g}); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "two" {
		t.Fatalf("overwritten snapshot loads as %q", got.Name)
	}
}
