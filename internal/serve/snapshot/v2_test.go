package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"unsafe"

	"snmatch/internal/dataset"
	"snmatch/internal/features"
	"snmatch/internal/pipeline"
)

// saveV2 writes a prepared fixture to disk and returns its path.
func saveV2(t *testing.T, g *pipeline.Gallery) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.snap")
	if err := Save(path, &Snapshot{Name: "v2", Meta: Meta{Dataset: "sns1", Size: 40, Seed: 2}, Gallery: g}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return path
}

// galleriesEqual pins field-for-field equality of two restored
// galleries (samples, images, Hu, histograms, keypoints, packed
// blocks), regardless of which codec produced them.
func galleriesEqual(t *testing.T, label string, a, b *pipeline.Gallery) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: view count %d != %d", label, a.Len(), b.Len())
	}
	for i := range a.Views {
		va, vb := &a.Views[i], &b.Views[i]
		if va.Sample.Class != vb.Sample.Class || va.Sample.Model != vb.Sample.Model || va.Sample.View != vb.Sample.View {
			t.Fatalf("%s view %d: sample metadata mismatch", label, i)
		}
		if (va.Sample.Image == nil) != (vb.Sample.Image == nil) {
			t.Fatalf("%s view %d: image presence mismatch", label, i)
		}
		if va.Sample.Image != nil && (va.Sample.Image.W != vb.Sample.Image.W ||
			va.Sample.Image.H != vb.Sample.Image.H || !bytes.Equal(va.Sample.Image.Pix, vb.Sample.Image.Pix)) {
			t.Fatalf("%s view %d: image differs", label, i)
		}
		if va.Hu != vb.Hu {
			t.Fatalf("%s view %d: Hu differs", label, i)
		}
		if (va.Hist == nil) != (vb.Hist == nil) {
			t.Fatalf("%s view %d: hist presence mismatch", label, i)
		}
		if va.Hist != nil && (va.Hist.Bins != vb.Hist.Bins || !reflect.DeepEqual(va.Hist.Counts, vb.Hist.Counts)) {
			t.Fatalf("%s view %d: hist differs", label, i)
		}
		for _, k := range []pipeline.DescriptorKind{pipeline.SIFT, pipeline.SURF, pipeline.ORB} {
			sa, sb := va.Desc[k], vb.Desc[k]
			if (sa == nil) != (sb == nil) {
				t.Fatalf("%s view %d %s: presence mismatch", label, i, k)
			}
			if sa == nil {
				continue
			}
			if !reflect.DeepEqual(sa.Keypoints, sb.Keypoints) {
				t.Fatalf("%s view %d %s: keypoints differ", label, i, k)
			}
			pa, pb := sa.Packed, sb.Packed
			if pa.N != pb.N || pa.Dim != pb.Dim || pa.RowBytes != pb.RowBytes || pa.WordsPerRow != pb.WordsPerRow ||
				!reflect.DeepEqual(pa.Floats, pb.Floats) || !reflect.DeepEqual(pa.Norms, pb.Norms) ||
				!reflect.DeepEqual(pa.Words, pb.Words) {
				t.Fatalf("%s view %d %s: packed block differs", label, i, k)
			}
			if !reflect.DeepEqual(sa.Binary, sb.Binary) {
				t.Fatalf("%s view %d %s: binary rows differ", label, i, k)
			}
		}
	}
}

// TestV1V2Compat pins cross-version compatibility: the same gallery
// written in both formats restores identically through Read, so v1
// fixtures keep loading next to v2 ones.
func TestV1V2Compat(t *testing.T) {
	g := prepared(t)
	snap := &Snapshot{Name: "x", Meta: Meta{Dataset: "sns1", Size: 40, Seed: 2}, Gallery: g}
	var b1, b2 bytes.Buffer
	if err := WriteV1(&b1, snap); err != nil {
		t.Fatalf("WriteV1: %v", err)
	}
	if err := Write(&b2, snap); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if v := binary.LittleEndian.Uint32(b1.Bytes()[8:12]); v != VersionV1 {
		t.Fatalf("WriteV1 stamped version %d", v)
	}
	if v := binary.LittleEndian.Uint32(b2.Bytes()[8:12]); v != Version {
		t.Fatalf("Write stamped version %d", v)
	}
	s1, err := Read(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatalf("Read v1: %v", err)
	}
	s2, err := Read(bytes.NewReader(b2.Bytes()))
	if err != nil {
		t.Fatalf("Read v2: %v", err)
	}
	if s1.Name != s2.Name || s1.Meta != s2.Meta {
		t.Fatalf("header mismatch: v1 %+v/%+v, v2 %+v/%+v", s1.Name, s1.Meta, s2.Name, s2.Meta)
	}
	galleriesEqual(t, "v1-vs-v2", s1.Gallery, s2.Gallery)
}

// TestMapRefusesV1 pins the version gate from the other side: a v1
// file has nothing to alias, so Map must refuse it with ErrVersion
// (and a v1-only reader refuses v2 files the same way — the shared
// version field is what both gates key on).
func TestMapRefusesV1(t *testing.T) {
	g := prepared(t)
	path := filepath.Join(t.TempDir(), "v1.snap")
	if err := SaveV1(path, &Snapshot{Name: "v1", Meta: Meta{Dataset: "sns1", Size: 40, Seed: 2}, Gallery: g}); err != nil {
		t.Fatalf("SaveV1: %v", err)
	}
	if _, err := Map(path); !errors.Is(err, ErrVersion) {
		t.Fatalf("Map(v1): got %v, want ErrVersion", err)
	}
	// The heap loader still takes it.
	if _, err := Load(path); err != nil {
		t.Fatalf("Load(v1): %v", err)
	}
}

// inMapping reports whether the slice's storage lies inside the
// mapping's byte range.
func inMapping[T any](m *Mapping, s []T) bool {
	if len(s) == 0 {
		return true
	}
	base := uintptr(unsafe.Pointer(&m.data[0]))
	p := uintptr(unsafe.Pointer(&s[0]))
	return p >= base && p+unsafe.Sizeof(s[0])*uintptr(len(s)) <= base+uintptr(len(m.data))
}

// TestMapZeroCopy is the acceptance-criteria alias check: every packed
// descriptor matrix of a mapped gallery — and the rebuilt flat indexes'
// scan storage — points into the mapping itself, with the Borrowed mark
// set, so loading copied no descriptor bytes.
func TestMapZeroCopy(t *testing.T) {
	g := prepared(t)
	m, err := Map(saveV2(t, g))
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	defer m.Close()
	lg := m.Snap.Gallery
	checked := 0
	for i := range lg.Views {
		for k, s := range lg.Views[i].Desc {
			p := s.Packed
			if !p.Borrowed {
				t.Fatalf("view %d %s: restored packed block not marked Borrowed", i, k)
			}
			if !inMapping(m, p.Floats) || !inMapping(m, p.Norms) || !inMapping(m, p.Words) {
				t.Fatalf("view %d %s: packed storage was copied off the mapping", i, k)
			}
			if keypointLayoutMatches && !inMapping(m, s.Keypoints) {
				t.Fatalf("view %d %s: keypoints were copied off the mapping", i, k)
			}
			if s.Len() > 0 {
				checked++
			}
			if img := lg.Views[i].Sample.Image; img != nil && !inMapping(m, img.Pix) {
				t.Fatalf("view %d: image plane copied", i)
			}
			if h := lg.Views[i].Hist; h != nil && !inMapping(m, h.Counts) {
				t.Fatalf("view %d: histogram bins copied", i)
			}
		}
	}
	if checked == 0 {
		t.Fatal("fixture has no non-empty descriptor sets; alias check proved nothing")
	}
	idx := lg.Indexes()
	if len(idx) == 0 {
		t.Fatal("mapped gallery restored no indexes")
	}
	for k, ix := range idx {
		if !inMapping(m, ix.Floats) {
			t.Fatalf("%s index float storage was copied off the mapping", k)
		}
		if !inMapping(m, ix.Words) {
			t.Fatalf("%s index word storage was copied off the mapping", k)
		}
	}
}

// TestMapHeapEquivalence pins the tentpole contract end to end: a
// mapped gallery and a heap-loaded gallery produce bit-identical
// predictions for every descriptor pipeline and the hybrid, across the
// parallel classifier at workers 1, 4 and 16, and the mapped gallery's
// restored state equals the heap one field for field.
func TestMapHeapEquivalence(t *testing.T) {
	g := prepared(t)
	path := saveV2(t, g)
	heap, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	m, err := Map(path)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	defer m.Close()
	galleriesEqual(t, "map-vs-heap", heap.Gallery, m.Snap.Gallery)

	queries := dataset.BuildSNS2(dataset.Config{Size: 40, Seed: 2})
	pipes := []pipeline.Pipeline{
		pipeline.NewDescriptor(pipeline.SIFT, 0.5),
		pipeline.NewDescriptor(pipeline.SURF, 0.5),
		pipeline.NewDescriptor(pipeline.ORB, 0.5),
		pipeline.DefaultHybrid(pipeline.WeightedSum),
	}
	for _, p := range pipes {
		for _, workers := range []int{1, 4, 16} {
			want, wantTruth := pipeline.RunParallel(p, queries, heap.Gallery, workers)
			got, gotTruth := pipeline.RunParallel(p, queries, m.Snap.Gallery, workers)
			if !reflect.DeepEqual(want, got) || !reflect.DeepEqual(wantTruth, gotTruth) {
				t.Fatalf("%s workers=%d: mapped predictions differ from heap-loaded", p.Name(), workers)
			}
		}
	}
}

// TestMappingLifecycle exercises the refcount: retains keep the data
// mapped through Close, the final release unmaps, and misuse panics.
func TestMappingLifecycle(t *testing.T) {
	m, err := Map(saveV2(t, prepared(t)))
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if m.Refs() != 1 {
		t.Fatalf("fresh mapping holds %d refs, want 1", m.Refs())
	}
	if m.Size() == 0 {
		t.Fatal("Size reported 0")
	}
	m.Retain()
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if m.Refs() != 1 || m.data == nil {
		t.Fatalf("retained mapping released early (refs=%d, data=%v)", m.Refs(), m.data != nil)
	}
	// Still readable through the retained reference.
	if m.Snap.Gallery.Len() == 0 {
		t.Fatal("gallery unreadable while retained")
	}
	m.Release()
	if m.Refs() != 0 || m.data != nil {
		t.Fatalf("final release did not unmap (refs=%d)", m.Refs())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Release past zero did not panic")
		}
	}()
	m.Release()
}

// TestV2Corruption covers the v2 integrity gates: structure CRC (both
// loaders), blob CRC (heap loader; Map intentionally skips it), and the
// header length invariants.
func TestV2Corruption(t *testing.T) {
	g := pipeline.NewGallery(dataset.BuildSNS1(dataset.Config{Size: 24, Seed: 4}))
	g.PrepareDescriptors(pipeline.ORB, pipeline.DefaultDescriptorParams())
	snap := &Snapshot{Name: "x", Gallery: g}
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	structLen := int(binary.LittleEndian.Uint64(pristine[offStructLen:]))
	blobStart := align8(headerLenV2 + structLen)

	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), pristine...)
		f(b)
		return b
	}
	writeTemp := func(t *testing.T, b []byte) string {
		path := filepath.Join(t.TempDir(), "c.snap")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	t.Run("struct-flip", func(t *testing.T) {
		b := mutate(func(b []byte) { b[headerLenV2+structLen/2] ^= 0x40 })
		if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Read: got %v, want ErrCorrupt", err)
		}
		if _, err := Map(writeTemp(t, b)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Map: got %v, want ErrCorrupt", err)
		}
	})
	t.Run("blob-flip", func(t *testing.T) {
		b := mutate(func(b []byte) { b[blobStart+(len(b)-blobStart)/2] ^= 0x40 })
		if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Read: got %v, want ErrCorrupt", err)
		}
		// Map trades the blob checksum for O(structure) loads — a blob
		// flip passes its header checks by design. The flipped byte sits
		// in descriptor/pixel payload, which the structure decodes around.
		m, err := Map(writeTemp(t, b))
		if err != nil {
			t.Fatalf("Map rejected a blob flip it documents skipping: %v", err)
		}
		m.Close()
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 15, headerLenV2 - 1, headerLenV2 + structLen/2, len(pristine) - 1} {
			if _, err := Read(bytes.NewReader(pristine[:n])); err == nil {
				t.Fatalf("truncation to %d bytes decoded", n)
			}
		}
	})
	t.Run("struct-len-overflow", func(t *testing.T) {
		b := mutate(func(b []byte) { binary.LittleEndian.PutUint64(b[offStructLen:], ^uint64(0)) })
		if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("blob-len-mismatch", func(t *testing.T) {
		b := mutate(func(b []byte) { binary.LittleEndian.PutUint64(b[offBlobLen:], 8) })
		if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
}

// TestRestoreSetBorrowedBinaryRows documents the one deliberate copy of
// a mapped load: binary row tables are unpacked (the legacy per-row
// representation cannot alias word-packed storage), while the words
// themselves stay borrowed.
func TestRestoreSetBorrowedBinaryRows(t *testing.T) {
	m, err := Map(saveV2(t, prepared(t)))
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	defer m.Close()
	found := false
	for i := range m.Snap.Gallery.Views {
		s := m.Snap.Gallery.Views[i].Desc[pipeline.ORB]
		if s == nil || s.Len() == 0 {
			continue
		}
		found = true
		if !s.IsBinary() || s.Packed.RowBytes == 0 {
			t.Fatalf("view %d: ORB set restored as non-binary", i)
		}
		row := make([]byte, s.Packed.RowBytes)
		features.UnpackWords(row, s.Packed.WordRow(0))
		if !bytes.Equal(row, s.Binary[0]) {
			t.Fatalf("view %d: unpacked binary row differs from words", i)
		}
	}
	if !found {
		t.Fatal("fixture has no ORB descriptors")
	}
}

func TestCRC32Stability(t *testing.T) {
	// The header field offsets are part of the on-disk format; a drive-by
	// const change must fail loudly.
	if headerLenV2 != 48 || offStructLen != 16 || offBlobLen != 24 || offStructCRC != 32 || offBlobCRC != 36 {
		t.Fatal("v2 header layout constants changed; bump the format version instead")
	}
	if crc32.ChecksumIEEE([]byte("snapshot")) == 0 {
		t.Fatal("crc sanity")
	}
}
