package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"path/filepath"
	"reflect"
	"testing"

	"snmatch/internal/dataset"
	"snmatch/internal/pipeline"
)

// prepared builds a small but fully prepared gallery: every descriptor
// family extracted and indexed, so a snapshot covers float (SIFT/SURF)
// and binary (ORB) blocks plus all three flat indexes.
func prepared(t testing.TB) *pipeline.Gallery {
	t.Helper()
	g := pipeline.NewGallery(dataset.BuildSNS1(dataset.Config{Size: 40, Seed: 2}))
	params := pipeline.DefaultDescriptorParams()
	for _, k := range []pipeline.DescriptorKind{pipeline.SIFT, pipeline.SURF, pipeline.ORB} {
		g.PrepareDescriptors(k, params)
	}
	return g
}

func roundTrip(t *testing.T, g *pipeline.Gallery, name string) (*Snapshot, *pipeline.Gallery) {
	t.Helper()
	var buf bytes.Buffer
	in := &Snapshot{Name: name, Meta: Meta{Dataset: "sns1", Size: 40, Seed: 2}, Gallery: g}
	if err := Write(&buf, in); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return got, got.Gallery
}

// TestRoundTripExact pins the codec's core contract: every persisted
// field — samples, images, Hu moments, histograms, keypoints, packed
// descriptor blocks and index storage — survives a save/load cycle bit
// for bit.
func TestRoundTripExact(t *testing.T) {
	g := prepared(t)
	snap, got := roundTrip(t, g, "sns1-fixture")
	if snap.Name != "sns1-fixture" {
		t.Fatalf("name %q round-tripped as %q", "sns1-fixture", snap.Name)
	}
	if snap.Meta != (Meta{Dataset: "sns1", Size: 40, Seed: 2}) {
		t.Fatalf("meta round-tripped as %+v", snap.Meta)
	}
	if got.Len() != g.Len() {
		t.Fatalf("view count %d != %d", got.Len(), g.Len())
	}
	for i := range g.Views {
		a, b := &g.Views[i], &got.Views[i]
		if a.Sample.Class != b.Sample.Class || a.Sample.Model != b.Sample.Model || a.Sample.View != b.Sample.View {
			t.Fatalf("view %d: sample metadata mismatch", i)
		}
		if a.Sample.Image.W != b.Sample.Image.W || a.Sample.Image.H != b.Sample.Image.H ||
			!bytes.Equal(a.Sample.Image.Pix, b.Sample.Image.Pix) {
			t.Fatalf("view %d: image bytes differ", i)
		}
		if a.Hu != b.Hu {
			t.Fatalf("view %d: Hu moments differ", i)
		}
		if a.Hist.Bins != b.Hist.Bins || !reflect.DeepEqual(a.Hist.Counts, b.Hist.Counts) {
			t.Fatalf("view %d: histogram differs", i)
		}
		for _, k := range []pipeline.DescriptorKind{pipeline.SIFT, pipeline.SURF, pipeline.ORB} {
			sa, sb := a.Desc[k], b.Desc[k]
			if (sa == nil) != (sb == nil) {
				t.Fatalf("view %d %s: presence mismatch", i, k)
			}
			if sa == nil {
				continue
			}
			if !reflect.DeepEqual(sa.Keypoints, sb.Keypoints) {
				t.Fatalf("view %d %s: keypoints differ", i, k)
			}
			pa, pb := sa.Pack().Packed, sb.Packed
			if pa.N != pb.N || pa.Dim != pb.Dim || pa.RowBytes != pb.RowBytes || pa.WordsPerRow != pb.WordsPerRow ||
				!reflect.DeepEqual(pa.Floats, pb.Floats) || !reflect.DeepEqual(pa.Norms, pb.Norms) ||
				!reflect.DeepEqual(pa.Words, pb.Words) {
				t.Fatalf("view %d %s: packed block differs", i, k)
			}
			if !reflect.DeepEqual(sa.Binary, sb.Binary) {
				t.Fatalf("view %d %s: binary rows differ", i, k)
			}
		}
	}
	want, gotIdx := g.Indexes(), got.Indexes()
	if len(want) != len(gotIdx) {
		t.Fatalf("index kinds %d != %d", len(gotIdx), len(want))
	}
	for k, ix := range want {
		re := gotIdx[k]
		if re == nil {
			t.Fatalf("%s index missing after load", k)
		}
		// The index is rebuilt on load; its exported storage must be
		// bit-identical to the saved gallery's (prune behaviour is
		// covered by the classify-exact test).
		if re.Binary != ix.Binary || re.NumViews != ix.NumViews || re.Dim != ix.Dim ||
			re.WordsPerRow != ix.WordsPerRow ||
			!reflect.DeepEqual(re.Starts, ix.Starts) ||
			!reflect.DeepEqual(re.Floats, ix.Floats) ||
			!reflect.DeepEqual(re.RootNorms, ix.RootNorms) ||
			!reflect.DeepEqual(re.Words, ix.Words) {
			t.Fatalf("%s index differs after load", k)
		}
	}
}

// TestRoundTripClassifyExact is the acceptance-criteria cycle: a
// save→load→classify run reproduces the exact predictions of the
// freshly prepared gallery, across descriptor, hybrid and shape/colour
// pipelines, and loading performs no re-extraction (the index arrives
// prebuilt).
func TestRoundTripClassifyExact(t *testing.T) {
	g := prepared(t)
	_, loaded := roundTrip(t, g, "g")
	for _, k := range []pipeline.DescriptorKind{pipeline.SIFT, pipeline.SURF, pipeline.ORB} {
		if nd, nv := loaded.IndexStats(k); nd == 0 && nv == 0 {
			t.Fatalf("%s index not restored (would re-extract)", k)
		}
	}
	queries := dataset.BuildSNS2(dataset.Config{Size: 40, Seed: 2}).Samples[:8]
	pipes := []pipeline.Pipeline{
		pipeline.NewDescriptor(pipeline.SIFT, 0.5),
		pipeline.NewDescriptor(pipeline.SURF, 0.5),
		pipeline.NewDescriptor(pipeline.ORB, 0.5),
		pipeline.DefaultHybrid(pipeline.WeightedSum),
	}
	for _, p := range pipes {
		for qi, q := range queries {
			want := p.Classify(q.Image, g)
			got := p.Classify(q.Image, loaded)
			if got != want {
				t.Fatalf("%s query %d: loaded gallery predicted %+v, fresh %+v", p.Name(), qi, got, want)
			}
		}
	}
}

// TestSaveLoadFile exercises the atomic file path.
func TestSaveLoadFile(t *testing.T) {
	g := prepared(t)
	path := filepath.Join(t.TempDir(), "g.snap")
	if err := Save(path, &Snapshot{Name: "disk", Meta: Meta{Dataset: "sns1", Size: 40, Seed: 2}, Gallery: g}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	snap, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if snap.Name != "disk" || snap.Gallery.Len() != g.Len() {
		t.Fatalf("Load returned name %q, %d views", snap.Name, snap.Gallery.Len())
	}
	if err := snap.Meta.Check(Meta{Dataset: "sns1", Size: 40, Seed: 2}); err != nil {
		t.Fatalf("matching provenance rejected: %v", err)
	}
	if err := snap.Meta.Check(Meta{Dataset: "sns2", Size: 40, Seed: 2}); err == nil {
		t.Fatal("dataset mismatch accepted")
	}
	if err := snap.Meta.Check(Meta{Dataset: "sns1", Size: 64, Seed: 2}); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if err := snap.Meta.Check(Meta{Dataset: "sns1", Size: 40, Seed: 9}); err == nil {
		t.Fatal("seed mismatch accepted")
	}
	// Zero is a legal seed, not a skip sentinel.
	if err := snap.Meta.Check(Meta{Dataset: "sns1", Size: 40, Seed: 0}); err == nil {
		t.Fatal("seed 0 expectation matched a seed-2 snapshot")
	}
}

// snapshotBytes returns a small valid (v2) snapshot to corrupt.
func snapshotBytes(t *testing.T) []byte { return snapshotBytesWith(t, Write) }

// snapshotBytesV1 is snapshotBytes in the legacy format.
func snapshotBytesV1(t *testing.T) []byte { return snapshotBytesWith(t, WriteV1) }

func snapshotBytesWith(t *testing.T, write func(io.Writer, *Snapshot) error) []byte {
	t.Helper()
	g := pipeline.NewGallery(dataset.BuildSNS1(dataset.Config{Size: 24, Seed: 4}))
	g.PrepareDescriptors(pipeline.ORB, pipeline.DefaultDescriptorParams())
	var buf bytes.Buffer
	if err := write(&buf, &Snapshot{Name: "x", Gallery: g}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestBadMagic(t *testing.T) {
	raw := snapshotBytes(t)
	raw[0] ^= 0xFF
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("corrupted magic: got %v, want ErrBadMagic", err)
	}
}

func TestVersionMismatch(t *testing.T) {
	raw := snapshotBytes(t)
	raw[8] = 99 // version field, little-endian low byte
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: got %v, want ErrVersion", err)
	}
}

func TestCorruptPayload(t *testing.T) {
	raw := snapshotBytes(t)
	raw[len(raw)/2] ^= 0x55
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped payload byte: got %v, want ErrCorrupt", err)
	}
}

// TestIndexKindWithoutDescriptors rewrites a valid snapshot's recorded
// index-kind list (ORB -> SIFT, with a fixed-up checksum) and checks the
// loader refuses to rebuild an index whose descriptor sets were never
// stored, instead of handing out a gallery that would crash at query
// time — in both format versions.
func TestIndexKindWithoutDescriptors(t *testing.T) {
	t.Run("v1", func(t *testing.T) {
		raw := snapshotBytesV1(t) // ORB is the only prepared kind
		kindOff := len(raw) - 5   // ... [count u8][kind u8][crc32]
		if raw[kindOff-1] != 1 || raw[kindOff] != uint8(pipeline.ORB) {
			t.Fatalf("fixture layout changed: tail bytes % x", raw[len(raw)-8:])
		}
		raw[kindOff] = uint8(pipeline.SIFT)
		sum := crc32.ChecksumIEEE(raw[12 : len(raw)-4])
		binary.LittleEndian.PutUint32(raw[len(raw)-4:], sum)
		if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("index kind without stored descriptors: got %v, want ErrCorrupt", err)
		}
	})
	t.Run("v2", func(t *testing.T) {
		raw := snapshotBytes(t) // v2: the kind list ends the structure stream
		structLen := int(binary.LittleEndian.Uint64(raw[offStructLen:]))
		kindOff := headerLenV2 + structLen - 1
		if raw[kindOff-1] != 1 || raw[kindOff] != uint8(pipeline.ORB) {
			t.Fatalf("fixture layout changed: structure tail % x", raw[kindOff-1:kindOff+1])
		}
		raw[kindOff] = uint8(pipeline.SIFT)
		sum := crc32.ChecksumIEEE(raw[headerLenV2 : headerLenV2+structLen])
		binary.LittleEndian.PutUint32(raw[offStructCRC:], sum)
		if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("index kind without stored descriptors: got %v, want ErrCorrupt", err)
		}
	})
}

func TestTruncated(t *testing.T) {
	raw := snapshotBytes(t)
	for _, n := range []int{0, 7, 11, 15, len(raw) - 5} {
		if _, err := Read(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
}
