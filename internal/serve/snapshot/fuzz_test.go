package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"testing"

	"snmatch/internal/dataset"
	"snmatch/internal/pipeline"
)

// fixCRCV1 recomputes a mutated v1 payload's checksum so the mutation
// reaches the decoder instead of dying at the CRC gate.
func fixCRCV1(b []byte) {
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(b[12:len(b)-4]))
}

// fixCRCV2 recomputes a mutated v2 structure stream's checksum.
func fixCRCV2(b []byte) {
	structLen := binary.LittleEndian.Uint64(b[offStructLen:])
	if structLen > uint64(len(b)-headerLenV2) {
		return
	}
	binary.LittleEndian.PutUint32(b[offStructCRC:], crc32.ChecksumIEEE(b[headerLenV2:headerLenV2+int(structLen)]))
}

// mustFailNotPanic asserts a decode of crafted bytes errors cleanly.
func mustFailNotPanic(t *testing.T, label string, raw []byte) {
	t.Helper()
	snap, err := Read(bytes.NewReader(raw))
	if err == nil && snap == nil {
		t.Fatalf("%s: nil snapshot without error", label)
	}
	if err != nil && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) {
		t.Fatalf("%s: unexpected error class %v", label, err)
	}
}

// TestCraftedLengthBombs pins the decode-hardening fix: a file whose
// CRC is valid but whose length fields are inflated must fail the
// bounds check before any allocation sized from the wire value — not
// after a multi-GB make(). Each case rewrites one length in a valid
// snapshot and re-stamps the checksum, so only the count bound can
// reject it.
func TestCraftedLengthBombs(t *testing.T) {
	rawV1 := snapshotBytesV1(t)
	rawV2 := snapshotBytes(t)

	// v1 layout: [magic 8][ver 4] name-len(4)+name(1) ds-len(4) size(8)
	// seed(8) -> view count at a fixed offset for the "x" fixture.
	nameLen := int(binary.LittleEndian.Uint32(rawV1[12:]))
	dsLen := int(binary.LittleEndian.Uint32(rawV1[16+nameLen:]))
	nvOff := 12 + 4 + nameLen + 4 + dsLen + 8 + 8

	t.Run("v1-view-count", func(t *testing.T) {
		b := append([]byte(nil), rawV1...)
		binary.LittleEndian.PutUint32(b[nvOff:], 0xFFFFFFF0)
		fixCRCV1(b)
		mustFailNotPanic(t, "view count bomb", b)
	})
	t.Run("v1-keypoint-count", func(t *testing.T) {
		// The first set header follows the first view's fixed fields;
		// rather than compute its offset, sweep every u32 position in
		// the payload and inflate it — whichever field it lands on, the
		// decoder must reject without allocating from the raw value.
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 200; trial++ {
			b := append([]byte(nil), rawV1...)
			off := 12 + rng.Intn(len(b)-16)
			binary.LittleEndian.PutUint32(b[off:], 0xFFFFFFF0)
			fixCRCV1(b)
			mustFailNotPanic(t, "u32 bomb", b)
		}
	})
	t.Run("v2-structure-bombs", func(t *testing.T) {
		structLen := int(binary.LittleEndian.Uint64(rawV2[offStructLen:]))
		rng := rand.New(rand.NewSource(2))
		for trial := 0; trial < 200; trial++ {
			b := append([]byte(nil), rawV2...)
			off := headerLenV2 + rng.Intn(structLen-4)
			binary.LittleEndian.PutUint32(b[off:], 0xFFFFFFF0)
			fixCRCV2(b)
			mustFailNotPanic(t, "v2 u32 bomb", b)
		}
	})
	t.Run("v2-blob-ref-bombs", func(t *testing.T) {
		structLen := int(binary.LittleEndian.Uint64(rawV2[offStructLen:]))
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 200; trial++ {
			b := append([]byte(nil), rawV2...)
			off := headerLenV2 + rng.Intn(structLen-8)
			binary.LittleEndian.PutUint64(b[off:], rng.Uint64()) // offsets, counts, whatever it hits
			fixCRCV2(b)
			mustFailNotPanic(t, "v2 u64 bomb", b)
		}
	})
}

// TestRandomCorruptionSweep is the deterministic fuzz regression: byte
// flips, truncations and random tail garbage across both format
// versions must always yield a clean error (or, for flips the CRC
// cannot see semantics in, a well-formed snapshot) — never a panic or
// an out-of-bounds slice.
func TestRandomCorruptionSweep(t *testing.T) {
	for name, raw := range map[string][]byte{"v1": snapshotBytesV1(t), "v2": snapshotBytes(t)} {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 400; trial++ {
				b := append([]byte(nil), raw...)
				switch trial % 4 {
				case 0: // single byte flip anywhere
					b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
				case 1: // truncation
					b = b[:rng.Intn(len(b))]
				case 2: // flip then re-stamp CRCs so the decoder sees it
					b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
					if name == "v1" {
						if len(b) > 16 {
							fixCRCV1(b)
						}
					} else {
						fixCRCV2(b)
					}
				case 3: // random tail growth
					extra := make([]byte, 1+rng.Intn(64))
					rng.Read(extra)
					b = append(b, extra...)
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("trial %d: decoder panicked: %v", trial, r)
						}
					}()
					snap, err := Read(bytes.NewReader(b))
					if err == nil {
						// A mutation the checksums were re-stamped over can
						// decode; the result must at least be usable.
						if snap == nil || snap.Gallery == nil {
							t.Fatalf("trial %d: nil snapshot without error", trial)
						}
					}
				}()
			}
		})
	}
}

// FuzzRead hands the decoder to go's fuzzer, seeded with both format
// versions and their truncations. The property is the sweep's: no
// panics, no runaway allocations from wire-controlled lengths.
func FuzzRead(f *testing.F) {
	g := pipeline.NewGallery(dataset.BuildSNS1(dataset.Config{Size: 24, Seed: 4}))
	g.PrepareDescriptors(pipeline.ORB, pipeline.DefaultDescriptorParams())
	var v1, v2 bytes.Buffer
	if err := WriteV1(&v1, &Snapshot{Name: "x", Gallery: g}); err != nil {
		f.Fatal(err)
	}
	if err := Write(&v2, &Snapshot{Name: "x", Gallery: g}); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v1.Bytes()[:40])
	f.Add(v2.Bytes()[:headerLenV2])
	f.Add([]byte("SNSNAP\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Read(bytes.NewReader(data))
		if err == nil && (snap == nil || snap.Gallery == nil) {
			t.Fatal("nil snapshot without error")
		}
	})
}
