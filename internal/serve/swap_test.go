package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snmatch/internal/pipeline"
	"snmatch/internal/serve/snapshot"
)

// mapFixture saves the shared fixture gallery as a v2 snapshot once and
// returns a function minting fresh mappings of it.
func mapFixture(t testing.TB) func() *snapshot.Mapping {
	t.Helper()
	g, _ := fixture(t)
	path := filepath.Join(t.TempDir(), "g.snap")
	snap := &snapshot.Snapshot{Name: "sns1", Meta: snapshot.Meta{Dataset: "sns1", Size: 40, Seed: 6}, Gallery: g}
	if err := snapshot.Save(path, snap); err != nil {
		t.Fatal(err)
	}
	return func() *snapshot.Mapping {
		m, err := snapshot.Map(path)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
}

// waitUnmapped polls until the mapping's last reference is gone —
// stale batchers drain asynchronously after a replacement.
func waitUnmapped(t *testing.T, m *snapshot.Mapping) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for m.Refs() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("mapping still holds %d refs after drain", m.Refs())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSwapUnderTraffic is the gallery-replacement race regression: a
// stream of /classify requests hammers the server while the gallery is
// replaced (with freshly mapped snapshots) under it. Every request must
// finish wholly on one gallery — the old or the new, never a torn mix,
// never a scan of unmapped memory — and every replaced mapping must be
// released once its last in-flight work drains. Run under -race this
// also pins the handler/registry/batcher locking.
func TestSwapUnderTraffic(t *testing.T) {
	mint := mapFixture(t)
	_, queries := fixture(t)
	body := pngBytes(t, queries.Samples[0].Image)

	reg := NewRegistry()
	first := mint()
	if err := reg.AddMapped("sns1", pipeline.NewShardedGallery(first.Snap.Gallery, 2), first.Snap.Meta, first); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{MaxBatch: 4, BatchWait: 100 * time.Microsecond})
	srv := httptest.NewServer(s.Handler())

	const clients = 8
	var (
		stop   atomic.Bool
		served atomic.Int64
		wg     sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, out := postClassify(t, srv.URL+"/classify?pipeline=orb", "image/png", body)
				if resp.StatusCode == http.StatusServiceUnavailable {
					continue // admission shedding is a legal answer mid-swap
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d mid-swap", resp.StatusCode)
					return
				}
				if len(out.Predictions) != 1 || out.Predictions[0].Class == "" {
					t.Errorf("torn response %+v", out)
					return
				}
				served.Add(1)
			}
		}()
	}

	replaced := []*snapshot.Mapping{first}
	for i := 0; i < 25; i++ {
		m := mint()
		if err := reg.AddMapped("sns1", pipeline.NewShardedGallery(m.Snap.Gallery, 2), m.Snap.Meta, m); err != nil {
			t.Fatal(err)
		}
		replaced = append(replaced, m)
		time.Sleep(2 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	srv.Close()
	s.Close()
	if served.Load() == 0 {
		t.Fatal("no request survived the swap hammer")
	}

	// Everything but the final registered mapping must fully release;
	// the registry still holds the last one's reference.
	last := replaced[len(replaced)-1]
	for _, m := range replaced[:len(replaced)-1] {
		waitUnmapped(t, m)
	}
	if got := last.Refs(); got != 1 {
		t.Fatalf("live mapping holds %d refs, want 1 (registry)", got)
	}
}

// TestMappingCloseAfterDrain pins the Mapping lifecycle through the
// batcher: the batcher's reference keeps a replaced gallery mapped
// until its drain completes, and Server.Close releases the rest.
func TestMappingCloseAfterDrain(t *testing.T) {
	mint := mapFixture(t)
	_, queries := fixture(t)

	reg := NewRegistry()
	m1 := mint()
	if err := reg.AddMapped("g", pipeline.NewShardedGallery(m1.Snap.Gallery, 2), m1.Snap.Meta, m1); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{})
	b1, err := s.batcherFor("g", "orb", pipeline.NewDescriptor(pipeline.ORB, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b1.Submit(context.Background(), queries.Samples[0].Image); err != nil {
		t.Fatal(err)
	}
	// registry + batcher
	if got := m1.Refs(); got != 2 {
		t.Fatalf("served mapping holds %d refs, want 2", got)
	}

	// Replace: the registry's ref moves to m2 and the stale batcher is
	// retired eagerly — m1 must drain to zero WITHOUT any further
	// request for this (gallery, pipeline) key (a replaced snapshot
	// must never stay pinned behind an idle route).
	m2 := mint()
	if err := reg.AddMapped("g", pipeline.NewShardedGallery(m2.Snap.Gallery, 2), m2.Snap.Meta, m2); err != nil {
		t.Fatal(err)
	}
	waitUnmapped(t, m1)
	b2, err := s.batcherFor("g", "orb", pipeline.NewDescriptor(pipeline.ORB, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if b2 == b1 {
		t.Fatal("stale batcher survived the gallery replacement")
	}
	if _, err := b2.Submit(context.Background(), queries.Samples[0].Image); err != nil {
		t.Fatal(err)
	}

	// Close the server: the fresh batcher drains and releases; only the
	// registry's reference remains on m2.
	s.Close()
	if got := m2.Refs(); got != 1 {
		t.Fatalf("after server close, mapping holds %d refs, want 1 (registry)", got)
	}
}

// TestBatcherForRacedResolve pins the stale-batcher reinstall fix: a
// request that resolved a gallery just before a replacement must not
// re-install a batcher over the replaced gallery. batcherFor re-reads
// the registry, so even a caller holding a stale resolve gets the
// current gallery's batcher.
func TestBatcherForRacedResolve(t *testing.T) {
	mint := mapFixture(t)
	reg := NewRegistry()
	m1 := mint()
	if err := reg.AddMapped("g", pipeline.NewShardedGallery(m1.Snap.Gallery, 2), m1.Snap.Meta, m1); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{})
	defer s.Close()

	// Simulate the race: the handler resolved "g" (old gallery), then a
	// replacement lands before batcherFor runs.
	if _, _, err := reg.Resolve("g"); err != nil {
		t.Fatal(err)
	}
	m2 := mint()
	newSG := pipeline.NewShardedGallery(m2.Snap.Gallery, 2)
	if err := reg.AddMapped("g", newSG, m2.Snap.Meta, m2); err != nil {
		t.Fatal(err)
	}
	b, err := s.batcherFor("g", "orb", pipeline.NewDescriptor(pipeline.ORB, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if b.sg != newSG {
		t.Fatal("batcherFor installed a batcher over the replaced gallery")
	}
	waitUnmapped(t, m1)
}
