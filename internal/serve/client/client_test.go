package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func fastCfg(endpoints ...string) Config {
	return Config{
		Endpoints:   endpoints,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		Seed:        1,
	}
}

// TestRetriesThenSucceeds pins the core loop: transient 503s are
// retried (and counted) until a replica answers.
func TestRetriesThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()
	c, err := New(fastCfg(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Post(context.Background(), "/classify", "image/png", []byte("png"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusOK || string(resp.Body) != "ok" {
		t.Fatalf("got %d %q", resp.Status, resp.Body)
	}
	if c.Retries() != 2 {
		t.Fatalf("Retries() = %d, want 2", c.Retries())
	}
}

// TestFailsOverToLiveReplica pins failover: a dead first endpoint
// (connection refused) costs one retry, the second replica serves.
func TestFailsOverToLiveReplica(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close() // the port is now refused

	c, err := New(fastCfg(deadURL, ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Post(context.Background(), "/x", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.Status)
	}
	if c.Retries() != 1 {
		t.Fatalf("Retries() = %d, want 1", c.Retries())
	}
}

// TestNoRetryOnClientError pins that 4xx answers (other than 429) are
// terminal: the server said the request itself is wrong, so replaying
// it elsewhere cannot help.
func TestNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad png", http.StatusBadRequest)
	}))
	defer ts.Close()
	c, err := New(fastCfg(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Post(context.Background(), "/classify", "image/png", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.Status)
	}
	if calls.Load() != 1 || c.Retries() != 0 {
		t.Fatalf("made %d calls with %d retries, want 1 call, 0 retries", calls.Load(), c.Retries())
	}
}

// TestExhaustsAttempts pins the bound: a fleet that only ever sheds
// returns an error naming the attempt count, not a hang.
func TestExhaustsAttempts(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	cfg := fastCfg(ts.URL)
	cfg.MaxAttempts = 3
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Post(context.Background(), "/x", "text/plain", nil); err == nil {
		t.Fatal("exhausted client returned nil error")
	} else if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("error %q does not name the attempt count", err)
	}
	if c.Retries() != 2 {
		t.Fatalf("Retries() = %d, want 2", c.Retries())
	}
}

// TestRetryAfterCapped pins that a hostile Retry-After cannot stall the
// client past MaxBackoff.
func TestRetryAfterCapped(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3600")
			http.Error(w, "later", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()
	cfg := fastCfg(ts.URL)
	cfg.MaxBackoff = 20 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Post(context.Background(), "/x", "text/plain", nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Retry-After of an hour stalled the client %v; want the %v cap", d, cfg.MaxBackoff)
	}
}

// TestDeterministicJitter pins the seeded wait sequence: two clients
// with the same seed compute identical backoffs.
func TestDeterministicJitter(t *testing.T) {
	a, err := New(fastCfg("http://x"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(fastCfg("http://x"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if wa, wb := a.wait(i, 0), b.wait(i, 0); wa != wb {
			t.Fatalf("attempt %d: same seed waited %v vs %v", i, wa, wb)
		}
	}
	cfg := fastCfg("http://x")
	cfg.Seed = 99
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < 8; i++ {
		if a.wait(i, 0) == c.wait(i, 0) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("different seeds produced identical wait sequences")
	}
}

// TestContextCancelStopsRetries pins that a cancelled context wins over
// the retry loop immediately.
func TestContextCancelStopsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	cfg := fastCfg(ts.URL)
	cfg.MaxAttempts = 1000
	cfg.BaseBackoff = 50 * time.Millisecond
	cfg.MaxBackoff = 50 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Post(ctx, "/x", "text/plain", nil); err == nil {
		t.Fatal("cancelled request returned nil error")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancelled retry loop ran %v", d)
	}
}
