package client_test

import (
	"bytes"
	"context"
	"image/png"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snmatch/internal/dataset"
	"snmatch/internal/pipeline"
	"snmatch/internal/serve/client"
	"snmatch/internal/serve/snapshot"
)

// TestFailoverAcrossReplicas is the zero-downtime kill test: three
// snserve processes serve the same memory-mapped snapshot, a retrying
// client drives concurrent traffic over all of them, one replica is
// SIGKILLed mid-traffic — and every client request still succeeds,
// with the kill surfacing only as a non-zero retry count.
func TestFailoverAcrossReplicas(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain unavailable: %v", err)
	}
	dir := t.TempDir()

	// One small ORB-prepared gallery, snapshotted once and mapped by
	// every replica — the fleet shares the file's page-cache copy.
	cfg := dataset.Config{Size: 40, Seed: 6}
	g := pipeline.NewGallery(dataset.BuildSNS1(cfg))
	g.PrepareDescriptors(pipeline.ORB, pipeline.DefaultDescriptorParams())
	snapPath := filepath.Join(dir, "sns1.snap")
	snap := &snapshot.Snapshot{Name: "sns1", Meta: snapshot.Meta{Dataset: "sns1", Size: 40, Seed: 6}, Gallery: g}
	if err := snapshot.Save(snapPath, snap); err != nil {
		t.Fatal(err)
	}
	query := dataset.BuildSNS2(cfg).Samples[0].Image
	var buf bytes.Buffer
	if err := png.Encode(&buf, query.ToStdImage()); err != nil {
		t.Fatal(err)
	}
	pngBody := buf.Bytes()

	bin := filepath.Join(dir, "snserve")
	if out, err := exec.Command("go", "build", "-o", bin, "snmatch/cmd/snserve").CombinedOutput(); err != nil {
		t.Fatalf("build snserve: %v\n%s", err, out)
	}

	const replicas = 3
	endpoints := make([]string, replicas)
	procs := make([]*exec.Cmd, replicas)
	for i := 0; i < replicas; i++ {
		addr := freeAddr(t)
		endpoints[i] = "http://" + addr
		cmd := exec.Command(bin, "-snapshot", snapPath, "-mmap", "-addr", addr, "-shards", "2", "-workers", "2")
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start replica %d: %v", i, err)
		}
		procs[i] = cmd
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	})
	for i, ep := range endpoints {
		waitHealthy(t, ep, 30*time.Second)
		t.Logf("replica %d healthy on %s", i, ep)
	}

	c, err := client.New(client.Config{
		Endpoints:   endpoints,
		MaxAttempts: 8,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent traffic with the kill landing midway: the barrier
	// guarantees requests are still in flight (and more are coming)
	// when replica 0 dies, so some request must ride through a
	// connection failure and be retried onto a surviving replica.
	const (
		lanes   = 3
		perLane = 10
		killAt  = 4 // per-lane request index that releases the kill
	)
	var (
		killOnce sync.Once
		killed   = make(chan struct{})
		failed   atomic.Int64
		wg       sync.WaitGroup
	)
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; i < perLane; i++ {
				if i == killAt {
					killOnce.Do(func() {
						if err := procs[0].Process.Kill(); err != nil {
							t.Errorf("kill replica 0: %v", err)
						}
						procs[0].Wait()
						close(killed)
					})
					<-killed // every lane's tail requests run against a 2/3 fleet
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				resp, err := c.Classify(ctx, "sns1", "orb", pngBody)
				cancel()
				if err != nil {
					failed.Add(1)
					t.Errorf("lane %d request %d failed: %v", lane, i, err)
					continue
				}
				if resp.Status != http.StatusOK {
					failed.Add(1)
					t.Errorf("lane %d request %d: status %d: %s", lane, i, resp.Status, resp.Body)
				}
			}
		}(lane)
	}
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d/%d requests failed across the kill; want 0", n, lanes*perLane)
	}
	if c.Retries() == 0 {
		t.Fatal("no retries recorded — the kill never exercised failover")
	}
	t.Logf("all %d requests succeeded across the kill (%d retries)", lanes*perLane, c.Retries())
}

// freeAddr reserves a loopback port and releases it for the replica to
// bind. The close-then-bind window is racy in principle; in practice
// nothing else grabs the port in-process.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// waitHealthy polls /healthz until the replica answers 200.
func waitHealthy(t *testing.T, endpoint string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(endpoint + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("replica on %s never became healthy within %v", endpoint, timeout)
}
