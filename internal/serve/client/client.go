// Package client is the serving fleet's retrying HTTP client: it
// spreads requests round-robin over a set of snserve replicas and
// retries transient failures — network errors, 5xx and 429 answers —
// on the next replica after a capped exponential backoff with
// deterministic (seeded) jitter, honouring a server's Retry-After
// hint. Classification is read-only, so a request is always safe to
// replay; with enough replicas behind the client, a killed or
// restarting server costs callers retries (counted in
// snmatch_client_retries_total), not failures.
package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"snmatch/internal/obs"
)

// Config shapes a Client. Zero values select the defaults.
type Config struct {
	// Endpoints are the replica base URLs (e.g. "http://127.0.0.1:8080"),
	// tried round-robin. At least one is required.
	Endpoints []string

	// MaxAttempts bounds the total tries per request (first attempt
	// included). Default: two full passes over the fleet plus one.
	MaxAttempts int

	// BaseBackoff is the first retry's backoff (default 5ms); it
	// doubles per attempt up to MaxBackoff (default 500ms). A server's
	// Retry-After raises the wait, but never past MaxBackoff — a
	// misbehaving server cannot stall the client indefinitely.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// Seed drives the backoff jitter: the same seed replays the exact
	// same wait sequence, so failover tests are reproducible.
	Seed uint64

	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
}

// Response is a terminal (non-retried) server answer. Status may still
// be a client error like 400 — only transport failures, 5xx and 429
// are retried.
type Response struct {
	Status int
	Body   []byte
}

// Client is safe for concurrent use.
type Client struct {
	cfg   Config
	httpc *http.Client

	next    atomic.Uint64 // round-robin endpoint cursor
	seq     atomic.Uint64 // jitter sequence (distinct wait per retry)
	retries atomic.Uint64
}

// New validates cfg and builds the client.
func New(cfg Config) (*Client, error) {
	if len(cfg.Endpoints) == 0 {
		return nil, errors.New("client: at least one endpoint is required")
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 2*len(cfg.Endpoints) + 1
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 5 * time.Millisecond
	}
	if cfg.MaxBackoff < cfg.BaseBackoff {
		cfg.MaxBackoff = 500 * time.Millisecond
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return &Client{cfg: cfg, httpc: httpc}, nil
}

// Retries reports the attempts beyond each request's first this client
// has made — the price paid for failovers so far.
func (c *Client) Retries() uint64 { return c.retries.Load() }

// Classify posts one PNG query to the fleet's /classify. Empty gallery
// or pipeline names are omitted (the server applies its defaults).
func (c *Client) Classify(ctx context.Context, gallery, pipeline string, png []byte) (*Response, error) {
	q := url.Values{}
	if gallery != "" {
		q.Set("gallery", gallery)
	}
	if pipeline != "" {
		q.Set("pipeline", pipeline)
	}
	path := "/classify"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	return c.Post(ctx, path, "image/png", png)
}

// Post sends body to path on the fleet, retrying transient failures on
// successive (round-robin) replicas until an attempt gets a terminal
// answer, ctx expires, or MaxAttempts is exhausted.
func (c *Client) Post(ctx context.Context, path, contentType string, body []byte) (*Response, error) {
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			retriesObs().Inc()
		}
		resp, retryAfter, err := c.once(ctx, path, contentType, body)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if attempt+1 < c.cfg.MaxAttempts {
			if err := sleepCtx(ctx, c.wait(attempt, retryAfter)); err != nil {
				return nil, err
			}
		}
	}
	return nil, fmt.Errorf("client: request failed after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// once performs a single attempt against the next replica. A non-nil
// error means the attempt is retryable (transport failure, 5xx, 429);
// retryAfter carries the server's Retry-After hint when it sent one.
func (c *Client) once(ctx context.Context, path, contentType string, body []byte) (resp *Response, retryAfter time.Duration, err error) {
	ep := c.cfg.Endpoints[int((c.next.Add(1)-1)%uint64(len(c.cfg.Endpoints)))]
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ep+path, bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", contentType)
	hr, err := c.httpc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer hr.Body.Close()
	b, err := io.ReadAll(hr.Body)
	if err != nil {
		return nil, 0, err
	}
	if hr.StatusCode >= 500 || hr.StatusCode == http.StatusTooManyRequests {
		if s, perr := strconv.Atoi(hr.Header.Get("Retry-After")); perr == nil && s >= 0 {
			retryAfter = time.Duration(s) * time.Second
		}
		return nil, retryAfter, fmt.Errorf("client: %s%s answered %d: %s", ep, path, hr.StatusCode, bytes.TrimSpace(b))
	}
	return &Response{Status: hr.StatusCode, Body: b}, 0, nil
}

// wait computes the sleep before the next attempt: BaseBackoff doubled
// per attempt, capped at MaxBackoff, then jittered into [d/2, d) by the
// seeded sequence (full determinism for a given Config.Seed). A
// Retry-After hint raises the wait, capped at MaxBackoff.
func (c *Client) wait(attempt int, retryAfter time.Duration) time.Duration {
	d := c.cfg.MaxBackoff
	if attempt < 20 { // beyond 2^20 the shift is past any sane cap anyway
		if e := c.cfg.BaseBackoff << attempt; e > 0 && e < d {
			d = e
		}
	}
	half := d / 2
	if half > 0 {
		d = half + time.Duration(splitmix64(c.cfg.Seed+c.seq.Add(1))%uint64(half))
	}
	if retryAfter > d {
		d = min(retryAfter, c.cfg.MaxBackoff)
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

var (
	obsOnce sync.Once
	obsPtr  *obs.Counter
)

// retriesObs wires the retry counter into the process-wide registry on
// first use, so embedders see failover pressure on /metrics next to
// the serving metrics.
func retriesObs() *obs.Counter {
	obsOnce.Do(func() {
		obsPtr = obs.Default.Counter("snmatch_client_retries_total",
			"Client-side retries: attempts beyond each request's first (failovers paid, not failures).")
	})
	return obsPtr
}

// splitmix64 is the jitter generator (same construction the fault
// package uses): one multiply-xor-shift chain per index, so wait
// sequences are reproducible without shared RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
