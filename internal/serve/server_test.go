package serve

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"image/png"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"snmatch/internal/dataset"
	"snmatch/internal/imaging"
	"snmatch/internal/pipeline"
	"snmatch/internal/serve/snapshot"
)

var (
	fixtureOnce    sync.Once
	fixtureGallery *pipeline.Gallery
	fixtureQueries *dataset.Set
)

// fixture builds one small ORB-prepared gallery shared across tests
// (extraction dominates test time; the gallery is immutable under
// serving traffic).
func fixture(t testing.TB) (*pipeline.Gallery, *dataset.Set) {
	t.Helper()
	fixtureOnce.Do(func() {
		cfg := dataset.Config{Size: 40, Seed: 6}
		fixtureGallery = pipeline.NewGallery(dataset.BuildSNS1(cfg))
		fixtureGallery.PrepareDescriptors(pipeline.ORB, pipeline.DefaultDescriptorParams())
		fixtureQueries = dataset.BuildSNS2(cfg)
	})
	return fixtureGallery, fixtureQueries
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	g, _ := fixture(t)
	reg := NewRegistry()
	meta := snapshot.Meta{Dataset: "sns1", Size: 40, Seed: 6}
	if err := reg.AddWithMeta("sns1", pipeline.NewShardedGallery(g, 4), meta); err != nil {
		t.Fatal(err)
	}
	s := New(reg, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func pngBytes(t testing.TB, img *imaging.Image) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := png.Encode(&buf, img.ToStdImage()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postClassify(t *testing.T, url, contentType string, body []byte) (*http.Response, ClassifyResponse) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ClassifyResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp, out
}

// TestClassifySinglePNG posts one raw PNG and checks the prediction
// matches the direct pipeline exactly.
func TestClassifySinglePNG(t *testing.T) {
	g, queries := fixture(t)
	_, ts := newTestServer(t, Config{})
	q := queries.Samples[0]
	want := pipeline.NewDescriptor(pipeline.ORB, 0.5).Classify(q.Image, g)

	resp, out := postClassify(t, ts.URL+"/classify?pipeline=orb", "image/png", pngBytes(t, q.Image))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Predictions) != 1 {
		t.Fatalf("got %d predictions", len(out.Predictions))
	}
	p := out.Predictions[0]
	if p.Class != want.Class.String() || p.View != want.Index || p.Score != want.Score {
		t.Fatalf("served %+v, direct %+v", p, want)
	}
	if out.Gallery != "sns1" || out.Pipeline != "ORB" {
		t.Fatalf("metadata %q/%q", out.Gallery, out.Pipeline)
	}
	if p.LatencyMS < 0 || p.Batched < 1 {
		t.Fatalf("bad serving metadata %+v", p)
	}
	if p.ExtractMS <= 0 || p.ExtractMS > p.LatencyMS {
		t.Fatalf("extract_ms %v not within (0, latency_ms %v]", p.ExtractMS, p.LatencyMS)
	}
}

// TestClassifyJSONBatch posts a JSON batch and checks order-preserving,
// pipeline-exact predictions.
func TestClassifyJSONBatch(t *testing.T) {
	g, queries := fixture(t)
	_, ts := newTestServer(t, Config{})
	d := pipeline.NewDescriptor(pipeline.ORB, 0.5)
	var req classifyRequest
	var want []pipeline.Prediction
	for i := 0; i < 5; i++ {
		q := queries.Samples[i]
		req.Images = append(req.Images, base64.StdEncoding.EncodeToString(pngBytes(t, q.Image)))
		want = append(want, d.Classify(q.Image, g))
	}
	body, _ := json.Marshal(req)
	resp, out := postClassify(t, ts.URL+"/classify?gallery=sns1&pipeline=orb", "application/json", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Predictions) != len(want) {
		t.Fatalf("got %d predictions, want %d", len(out.Predictions), len(want))
	}
	for i, p := range out.Predictions {
		if p.Class != want[i].Class.String() || p.View != want[i].Index || p.Score != want[i].Score {
			t.Fatalf("prediction %d: served %+v, direct %+v", i, p, want[i])
		}
	}
}

// TestClassifyBatchLargerThanQueue sends a JSON batch far bigger than
// the batcher's queue bound: submissions must stream through the queue
// (blocking, not shedding), so the whole batch classifies instead of
// deterministically failing with 503 on an idle server.
func TestClassifyBatchLargerThanQueue(t *testing.T) {
	g, queries := fixture(t)
	_, ts := newTestServer(t, Config{MaxBatch: 2, QueueCap: 2})
	d := pipeline.NewDescriptor(pipeline.ORB, 0.5)
	var req classifyRequest
	var want []pipeline.Prediction
	for i := 0; i < 10; i++ {
		q := queries.Samples[i%len(queries.Samples)]
		req.Images = append(req.Images, base64.StdEncoding.EncodeToString(pngBytes(t, q.Image)))
		want = append(want, d.Classify(q.Image, g))
	}
	body, _ := json.Marshal(req)
	resp, out := postClassify(t, ts.URL+"/classify?pipeline=orb", "application/json", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("10-image batch over a 2-slot queue: status %d", resp.StatusCode)
	}
	for i, p := range out.Predictions {
		if p.Class != want[i].Class.String() || p.Score != want[i].Score {
			t.Fatalf("prediction %d: served %+v, direct %+v", i, p, want[i])
		}
	}
}

// TestClassifyBatchOverImageCap checks the per-request image bound: the
// admission gate counts requests, so a single oversized JSON batch must
// be refused up front with 400 rather than admitted as unbounded work.
func TestClassifyBatchOverImageCap(t *testing.T) {
	_, queries := fixture(t)
	_, ts := newTestServer(t, Config{MaxImages: 2})
	img := base64.StdEncoding.EncodeToString(pngBytes(t, queries.Samples[0].Image))
	body, _ := json.Marshal(classifyRequest{Images: []string{img, img, img}})
	resp, _ := postClassify(t, ts.URL+"/classify?pipeline=orb", "application/json", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("3-image batch over a 2-image cap: status %d, want 400", resp.StatusCode)
	}
}

// TestClassifyImageDimensionsTooLarge posts a PNG whose decoded raster
// exceeds the pixel cap: it must be refused with 400 before the full
// decode (and an extraction that would inflate the pooled contexts)
// runs.
func TestClassifyImageDimensionsTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxImagePixels: 64 * 64})
	big := imaging.NewImage(80, 80) // 6400 px > 4096 cap
	resp, _ := postClassify(t, ts.URL+"/classify?pipeline=orb", "image/png", pngBytes(t, big))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	ok := imaging.NewImage(64, 64)
	resp, _ = postClassify(t, ts.URL+"/classify?pipeline=orb", "image/png", pngBytes(t, ok))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("at-cap image: status %d, want 200", resp.StatusCode)
	}
}

// TestClassifyBodyTooLarge sends a body over the configured byte limit
// and expects an honest 413, not a decode-failure 400.
func TestClassifyBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyMB: 1})
	// A 2 MiB JSON document: the decoder must read past the 1 MiB cap
	// (raw junk would fail PNG sniffing before ever reaching the limit).
	body, _ := json.Marshal(classifyRequest{Images: []string{strings.Repeat("A", 2<<20)}})
	resp, _ := postClassify(t, ts.URL+"/classify?pipeline=orb", "application/json", body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("2 MiB body over a 1 MiB cap: status %d, want 413", resp.StatusCode)
	}
}

// TestClassifyContentTypeCaseInsensitive sends the JSON batch with an
// upper-cased MIME type, which RFC 2045 requires servers to accept.
func TestClassifyContentTypeCaseInsensitive(t *testing.T) {
	_, queries := fixture(t)
	_, ts := newTestServer(t, Config{})
	img := base64.StdEncoding.EncodeToString(pngBytes(t, queries.Samples[0].Image))
	body, _ := json.Marshal(classifyRequest{Images: []string{img}})
	resp, out := postClassify(t, ts.URL+"/classify?pipeline=orb", "Application/JSON; charset=utf-8", body)
	if resp.StatusCode != http.StatusOK || len(out.Predictions) != 1 {
		t.Fatalf("upper-cased content type: status %d, %d predictions", resp.StatusCode, len(out.Predictions))
	}
}

// TestClassifyConcurrentCoalescing floods the server with concurrent
// single-image requests through a wide coalescing window and checks
// every response is still exact — the transparency contract of the
// batcher.
func TestClassifyConcurrentCoalescing(t *testing.T) {
	g, queries := fixture(t)
	_, ts := newTestServer(t, Config{MaxBatch: 8, BatchWait: 20 * time.Millisecond})
	d := pipeline.NewDescriptor(pipeline.ORB, 0.5)
	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	batched := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := queries.Samples[i%len(queries.Samples)]
			want := d.Classify(q.Image, g)
			resp, err := http.Post(ts.URL+"/classify?pipeline=orb", "image/png", bytes.NewReader(pngBytes(t, q.Image)))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			var out ClassifyResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			p := out.Predictions[0]
			if p.Class != want.Class.String() || p.View != want.Index || p.Score != want.Score {
				errs <- fmt.Errorf("request %d: served %+v, direct %+v", i, p, want)
				return
			}
			batched[i] = p.Batched
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	max := 0
	for _, b := range batched {
		if b > max {
			max = b
		}
	}
	if max < 1 {
		t.Fatal("no request reported a batch size")
	}
	t.Logf("largest coalesced batch: %d", max)
}

func TestClassifyErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	q := fixtureQueries.Samples[0]
	cases := []struct {
		name, url, ct string
		body          []byte
		status        int
	}{
		{"unknown gallery", "/classify?gallery=nope", "image/png", pngBytes(t, q.Image), http.StatusNotFound},
		{"unknown pipeline", "/classify?pipeline=resnet", "image/png", pngBytes(t, q.Image), http.StatusBadRequest},
		{"bad png", "/classify?pipeline=orb", "image/png", []byte("not a png"), http.StatusBadRequest},
		{"empty json", "/classify?pipeline=orb", "application/json", []byte(`{"images":[]}`), http.StatusBadRequest},
		{"bad base64", "/classify?pipeline=orb", "application/json", []byte(`{"images":["%%"]}`), http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, _ := postClassify(t, ts.URL+c.url, c.ct, c.body)
		if resp.StatusCode != c.status {
			t.Fatalf("%s: status %d, want %d", c.name, resp.StatusCode, c.status)
		}
	}
	getResp, err := http.Get(ts.URL + "/classify")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /classify: status %d", getResp.StatusCode)
	}
}

func TestGalleriesAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/galleries")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Galleries []GalleryInfo `json:"galleries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(doc.Galleries) != 1 || doc.Galleries[0].Name != "sns1" || doc.Galleries[0].Shards != 4 {
		t.Fatalf("galleries: %+v", doc.Galleries)
	}
	if doc.Galleries[0].Views != fixtureGallery.Len() || doc.Galleries[0].Descriptors["ORB"] == 0 {
		t.Fatalf("gallery info: %+v", doc.Galleries[0])
	}
	// The listing enumerates what is actually prepared: the fixture
	// built only the ORB index, so SIFT and SURF must not appear.
	if len(doc.Galleries[0].Descriptors) != 1 {
		t.Fatalf("descriptor listing not truthful: %+v", doc.Galleries[0].Descriptors)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status    string          `json:"status"`
		Galleries int             `json:"galleries"`
		Info      []HealthGallery `json:"gallery_info"`
		Capacity  int             `json:"capacity"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Galleries != 1 || health.Capacity <= 0 {
		t.Fatalf("healthz: %+v", health)
	}
	if len(health.Info) != 1 {
		t.Fatalf("healthz gallery_info: %+v", health.Info)
	}
	gi := health.Info[0]
	if gi.Name != "sns1" || gi.Views != fixtureGallery.Len() || gi.Shards != 4 {
		t.Fatalf("healthz gallery shape: %+v", gi)
	}
	if len(gi.Descriptors) != 1 || gi.Descriptors[0] != "ORB" {
		t.Fatalf("healthz descriptor listing: %+v", gi.Descriptors)
	}
	if gi.Snapshot == nil {
		t.Fatalf("healthz gallery provenance missing: %+v", gi)
	}
	if gi.Snapshot.Dataset != "sns1" || gi.Snapshot.Size != 40 || gi.Snapshot.Seed != 6 {
		t.Fatalf("healthz gallery provenance: %+v", gi.Snapshot)
	}
}

// TestAdmissionOverload fills the admission gate by hand and checks the
// server sheds with 503 + Retry-After instead of queueing.
func TestAdmissionOverload(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1})
	if !s.gate.TryEnter() {
		t.Fatal("could not take the only admission slot")
	}
	defer s.gate.Leave()
	resp, _ := postClassify(t, ts.URL+"/classify?pipeline=orb", "image/png", pngBytes(t, fixtureQueries.Samples[0].Image))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated server answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestBatcherSubmitDirect exercises the batcher API without HTTP:
// overload shedding and post-Close refusal.
func TestBatcherSubmitDirect(t *testing.T) {
	g, queries := fixture(t)
	sg := pipeline.NewShardedGallery(g, 2)
	p := pipeline.NewDescriptor(pipeline.ORB, 0.5)
	b := newBatcher(sg, p, 2, 2, 2, time.Millisecond, nil)
	res, err := b.Submit(context.Background(), queries.Samples[0].Image)
	if err != nil {
		t.Fatal(err)
	}
	if want := p.Classify(queries.Samples[0].Image, g); res.Pred != want {
		t.Fatalf("batcher %+v, direct %+v", res.Pred, want)
	}
	b.Close()
	if _, err := b.Submit(context.Background(), queries.Samples[0].Image); err == nil {
		t.Fatal("Submit after Close succeeded")
	}
}
