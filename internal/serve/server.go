package serve

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"image/png"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"snmatch/internal/fault"
	"snmatch/internal/histogram"
	"snmatch/internal/imaging"
	"snmatch/internal/moments"
	"snmatch/internal/obs"
	"snmatch/internal/parallel"
	"snmatch/internal/pipeline"
)

// Config sizes the serving layer. Zero values select the defaults.
type Config struct {
	Workers     int           // classification pool size (<= 0: one per CPU)
	MaxBatch    int           // max queries coalesced into one batch (default 16)
	QueueCap    int           // per-batcher queue bound (default 4x MaxBatch)
	BatchWait   time.Duration // coalescing window after the first query (default 2ms)
	MaxInFlight int           // admission bound on concurrent /classify requests (default 256)
	Ratio       float64       // descriptor ratio-test threshold (default 0.5, the paper's)
	MaxBodyMB   int           // request body cap in MiB (default 32)
	MaxImages   int           // images accepted per JSON batch request (default 64)
	MaxRegions  int           // region proposals classified per /detect scene (default 32)

	// RequestTimeout bounds each /classify and /detect request end to
	// end: the handler derives a deadline-bearing context from it and
	// the pipeline checks that context between stages (decode →
	// extract → per-shard scan), so an expired request stops burning
	// CPU at the next stage boundary and is answered 504 with the
	// partial stage trace it accumulated. 0 disables the bound (the
	// client's own disconnect still cancels).
	RequestTimeout time.Duration

	// MaxImagePixels caps the DECODED dimensions of a query image
	// (default 4 Mpx ≈ 2048x2048). The body-size cap alone cannot
	// bound this — a tiny compressed PNG can decode to an enormous
	// raster whose extraction working set would both stall the pool
	// and inflate the pooled extraction contexts far past the
	// footprint they are allowed to carry back into their pool.
	MaxImagePixels int

	// SlowLog enables the structured slow-query log: every /classify or
	// /detect request whose end-to-end latency reaches this threshold is
	// written as one JSON line (endpoint, gallery, pipeline, status and
	// the full stage breakdown) to SlowLogW. 0 disables it.
	SlowLog time.Duration

	// SlowLogW receives slow-query lines (default os.Stderr). Writes are
	// serialised, so any io.Writer works.
	SlowLogW io.Writer
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4 * c.MaxBatch
	}
	if c.BatchWait <= 0 {
		c.BatchWait = 2 * time.Millisecond
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.Ratio <= 0 {
		c.Ratio = 0.5
	}
	if c.MaxBodyMB <= 0 {
		c.MaxBodyMB = 32
	}
	if c.MaxImages <= 0 {
		c.MaxImages = 64
	}
	if c.MaxRegions <= 0 {
		c.MaxRegions = 32
	}
	if c.MaxImagePixels <= 0 {
		c.MaxImagePixels = 4 << 20
	}
	return c
}

// ParsePipeline resolves a request's pipeline name to a serving-safe
// pipeline. Only stateless pipelines are servable (the random baseline
// and the neural scorer hold per-instance mutable state).
func ParsePipeline(name string, ratio float64) (pipeline.Pipeline, error) {
	switch strings.ToLower(name) {
	case "sift":
		return pipeline.NewDescriptor(pipeline.SIFT, ratio), nil
	case "surf":
		return pipeline.NewDescriptor(pipeline.SURF, ratio), nil
	case "orb":
		return pipeline.NewDescriptor(pipeline.ORB, ratio), nil
	case "hybrid", "":
		return pipeline.DefaultHybrid(pipeline.WeightedSum), nil
	case "shape":
		return pipeline.ShapeOnly{Method: moments.MatchI3}, nil
	case "color":
		return pipeline.ColorOnly{Metric: histogram.Hellinger}, nil
	}
	return nil, fmt.Errorf("serve: unknown pipeline %q (want sift, surf, orb, hybrid, shape or color)", name)
}

// Server is the HTTP serving frontend: bounded admission at the door,
// one lazily-created Batcher per (gallery, pipeline) pair behind it.
type Server struct {
	reg     *Registry
	cfg     Config
	gate    *parallel.Gate
	start   time.Time
	unwatch func()
	obs     *serveMetrics
	slowMu  sync.Mutex // serialises slow-query log lines

	mu       sync.Mutex
	batchers map[string]*Batcher
	closed   bool
}

// New wires a server over the registry.
func New(reg *Registry, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		reg:      reg,
		cfg:      cfg,
		gate:     parallel.NewGate(cfg.MaxInFlight),
		start:    time.Now(),
		obs:      serveObs(),
		batchers: map[string]*Batcher{},
	}
	s.unwatch = reg.watch(s.retireStale)
	return s
}

// retireStale drains (in the background) every cached batcher for name
// that no longer serves the registry's current gallery. It runs on
// every registry replacement, so a swapped-out gallery's batchers — and
// with them the mapping references that keep a replaced snapshot file
// mapped — are released after their in-flight work drains even if no
// request for that (gallery, pipeline) key ever arrives again.
func (s *Server) retireStale(name string) {
	cur, ok := s.reg.Get(name)
	prefix := name + "\x00"
	s.mu.Lock()
	var stale []*Batcher
	for key, b := range s.batchers {
		if strings.HasPrefix(key, prefix) && (!ok || b.sg != cur) {
			stale = append(stale, b)
			delete(s.batchers, key)
		}
	}
	s.mu.Unlock()
	for _, b := range stale {
		go b.Close()
	}
}

// Handler returns the daemon's route table. /metrics (Prometheus text)
// and /statz (its JSON twin) render the process-wide obs registry, so
// they see every server, batcher, pipeline and snapshot metric in the
// process. Every route runs under panic recovery: a handler bug (or a
// panic escaping the batcher's per-query recovery) costs that request
// a 500 and a snmatch_panics_total tick, never the connection or the
// process.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/classify", s.handleClassify)
	mux.HandleFunc("/detect", s.handleDetect)
	mux.HandleFunc("/galleries", instrumented(&s.obs.galleries, s.handleGalleries))
	mux.HandleFunc("/healthz", instrumented(&s.obs.healthz, s.handleHealthz))
	mux.HandleFunc("/metrics", obs.PromHandler(obs.Default))
	mux.HandleFunc("/statz", obs.StatzHandler(obs.Default))
	return s.recovered(mux)
}

// recovered wraps the route table with last-resort panic recovery.
// net/http would recover a handler panic too, but by killing the
// connection with an empty reply; this converts it into an honest JSON
// 500 (when the header is still unsent) and counts it.
func (s *Server) recovered(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.obs.panics.Inc()
				httpError(w, http.StatusInternalServerError, fmt.Sprintf("serve: internal panic: %v", rec))
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// requestCtx derives the request's working context: the client's own
// (cancelled on disconnect), bounded by RequestTimeout when set.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return r.Context(), func() {}
}

// errStatus maps a classification error to its HTTP status and whether
// the client should retry elsewhere (Retry-After). Deadline and
// disconnect map to 504; shed, shutdown and injected-fault errors are
// retryable 503s (a panic-wrapped injected fault still reads as
// fault.ErrInjected through ErrPanic); anything else — including a
// recovered pipeline panic — is a plain 500.
func errStatus(err error) (status int, retry bool) {
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, false
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrClosed), errors.Is(err, fault.ErrInjected):
		return http.StatusServiceUnavailable, true
	}
	return http.StatusInternalServerError, false
}

// Close stops every batcher after draining its queue. In-flight
// http.Server traffic should be shut down first.
func (s *Server) Close() {
	s.unwatch()
	s.mu.Lock()
	s.closed = true
	bs := make([]*Batcher, 0, len(s.batchers))
	for _, b := range s.batchers {
		bs = append(bs, b)
	}
	s.batchers = map[string]*Batcher{}
	s.mu.Unlock()
	for _, b := range bs {
		b.Close()
	}
}

// batcherFor returns the batcher serving (gallery, pipeline), creating
// it on first use. The gallery is re-read from the registry here, under
// the registry's lock, rather than trusted from the caller's earlier
// Resolve: a request that raced a gallery replacement would otherwise
// re-install a batcher over the gallery it resolved moments ago,
// silently pinning replaced (possibly unmapped-soon) storage for all
// later traffic. A cached batcher is only reused while it still serves
// the registry's current gallery; replacements normally retire stale
// batchers eagerly via retireStale, and the check here catches the
// remaining race (a batcher installed between the registry swap and
// its watcher running). Every request therefore classifies entirely on
// one gallery, old or new, never a torn mix.
func (s *Server) batcherFor(name, pipeName string, p pipeline.Pipeline) (*Batcher, error) {
	key := name + "\x00" + strings.ToLower(pipeName)
	// Bounded retry: a swap can land between acquiring the entry and
	// installing its batcher, after that swap's retireStale watcher
	// already ran — in which case the freshly installed batcher is
	// itself stale and, left alone, would pin the replaced gallery's
	// mapping behind an idle route. Re-checking the registry after the
	// install and retiring-and-retrying closes that window; swaps are
	// rare, so the loop terminates immediately in practice (and a
	// stale-but-served batcher on loop exhaustion is still correct —
	// whole-request classification on the older gallery).
	for attempt := 0; ; attempt++ {
		e, ok := s.reg.acquire(name) // retains e.res until handed to a batcher
		if !ok {
			return nil, fmt.Errorf("serve: unknown gallery %q", name)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			if e.res != nil {
				e.res.Release()
			}
			return nil, ErrClosed
		}
		b := s.batchers[key]
		if b != nil && b.sg == e.sg {
			s.mu.Unlock()
			if e.res != nil {
				e.res.Release()
			}
			return b, nil
		}
		if b != nil {
			go b.Close() // gallery was replaced; drain the stale batcher off-path
		}
		b = newBatcher(e.sg, p, s.cfg.Workers, s.cfg.MaxBatch, s.cfg.QueueCap, s.cfg.BatchWait, e.res)
		s.batchers[key] = b
		s.mu.Unlock()
		if cur, ok := s.reg.Get(name); (ok && cur == b.sg) || attempt >= 4 {
			return b, nil
		}
		s.retireStale(name) // raced a swap mid-install; retire our stale batcher and retry
	}
}

// PredictionJSON is one /classify result entry.
type PredictionJSON struct {
	Class     string  `json:"class"`
	ClassID   int     `json:"class_id"`
	View      int     `json:"view"`
	Score     float64 `json:"score"`
	Batched   int     `json:"batched"`
	LatencyMS float64 `json:"latency_ms"`
	ExtractMS float64 `json:"extract_ms"` // descriptor-extraction share of latency_ms

	// StagesMS breaks latency_ms down by pipeline stage (queue, batch,
	// extract, and — on descriptor pipelines — match and verify; the
	// latter two are CPU time summed across shard workers, so they can
	// exceed wall time).
	StagesMS map[string]float64 `json:"stages_ms,omitempty"`
}

// ClassifyResponse is the /classify response document.
type ClassifyResponse struct {
	Gallery     string           `json:"gallery"`
	Pipeline    string           `json:"pipeline"`
	Predictions []PredictionJSON `json:"predictions"`

	// StagesMS holds the request-level stages that precede batching
	// (decode, admission) — the per-prediction maps cover the rest.
	StagesMS map[string]float64 `json:"stages_ms,omitempty"`
}

// classifyRequest is the JSON batch payload: PNG images, base64-encoded.
type classifyRequest struct {
	Images []string `json:"images"`
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	m := s.obs
	m.classify.reqs.Inc()
	t0 := time.Now()
	if r.Method != http.MethodPost {
		m.classify.errs.Inc()
		httpError(w, http.StatusMethodNotAllowed, "POST a PNG body or a JSON image batch")
		return
	}
	if !s.gate.TryEnter() {
		m.classify.errs.Inc()
		m.admissionRejects.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "server at admission capacity")
		return
	}
	defer s.gate.Leave()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	var tr obs.Trace
	tr.Set(obs.StageAdmission, time.Since(t0))

	name, _, err := s.reg.Resolve(r.URL.Query().Get("gallery"))
	if err != nil {
		m.classify.errs.Inc()
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	pipeName := r.URL.Query().Get("pipeline")
	if pipeName == "" {
		pipeName = "hybrid"
	}
	p, err := ParsePipeline(pipeName, s.cfg.Ratio)
	if err != nil {
		m.classify.errs.Inc()
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	// An already-expired deadline is refused before the body is even
	// decoded: no pipeline work, and the 504's stage trace proves it
	// (admission only, no decode entry).
	if err := ctx.Err(); err != nil {
		m.classify.errs.Inc()
		m.deadlineExceeded.Inc()
		httpErrorStages(w, http.StatusGatewayTimeout, err.Error(), tr.MSMap())
		return
	}

	// MaxBytesReader (unlike a plain LimitReader) surfaces an oversized
	// body as its own error type, so huge uploads get an honest 413
	// instead of a misleading decode-failure 400.
	r.Body = http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxBodyMB)<<20)
	decStart := time.Now()
	imgs, err := decodeImages(r, s.cfg.MaxImages, s.cfg.MaxImagePixels)
	tr.Set(obs.StageDecode, time.Since(decStart))
	if err != nil {
		m.classify.errs.Inc()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("serve: request body exceeds the %d MiB limit", s.cfg.MaxBodyMB))
			return
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	b, err := s.batcherFor(name, pipeName, p)
	if err != nil {
		m.classify.errs.Inc()
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	resp := ClassifyResponse{Gallery: name, Pipeline: p.Name(), Predictions: make([]PredictionJSON, len(imgs))}
	var firstErr error
	var worst Result // slowest query, for the slow-query log
	var wg sync.WaitGroup
	var resMu sync.Mutex
	for i, img := range imgs {
		wg.Add(1)
		go func(i int, img *imaging.Image) {
			defer wg.Done()
			res, err := b.SubmitWait(ctx, img)
			if err != nil {
				resMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				resMu.Unlock()
				return
			}
			m.observeResult(res)
			resMu.Lock()
			if res.Latency > worst.Latency {
				worst = res
			}
			resMu.Unlock()
			resp.Predictions[i] = PredictionJSON{
				Class:     res.Pred.Class.String(),
				ClassID:   int(res.Pred.Class),
				View:      res.Pred.Index,
				Score:     res.Pred.Score,
				Batched:   res.Batched,
				LatencyMS: float64(res.Latency) / float64(time.Millisecond),
				ExtractMS: float64(res.Extract) / float64(time.Millisecond),
				StagesMS:  resultStagesMS(res),
			}
		}(i, img)
	}
	wg.Wait()
	m.observeStages(&tr)
	elapsed := time.Since(t0)
	status := http.StatusOK
	if firstErr != nil {
		var retry bool
		status, retry = errStatus(firstErr)
		if retry {
			w.Header().Set("Retry-After", "1")
		}
		if status == http.StatusGatewayTimeout {
			m.deadlineExceeded.Inc()
		}
		m.classify.errs.Inc()
		// A 504 carries the partial stage trace: the stages the request
		// finished before its deadline expired.
		httpErrorStages(w, status, firstErr.Error(), tr.MSMap())
	} else {
		m.classify.latency.ObserveDuration(int64(elapsed))
		resp.StagesMS = tr.MSMap()
		writeJSON(w, http.StatusOK, resp)
	}
	if s.cfg.SlowLog > 0 && elapsed >= s.cfg.SlowLog {
		stages := tr.MSMap()
		if stages == nil {
			stages = map[string]float64{}
		}
		for k, v := range resultStagesMS(worst) {
			stages[k] = v
		}
		s.slowLog("classify", name, p.Name(), len(imgs), status, elapsed, stages)
	}
}

// decodeImages parses the request body (already wrapped in a
// MaxBytesReader by the handler): a raw PNG for single queries, or a
// JSON {"images": [base64-png, ...]} batch. The batch size is capped:
// the admission gate counts requests, so per-request work must be
// bounded too or one huge batch could hold thousands of decoded images
// and submit goroutines while occupying a single gate slot. Decoded
// dimensions are capped per image (maxPixels) before full decoding.
func decodeImages(r *http.Request, maxImages, maxPixels int) ([]*imaging.Image, error) {
	body := r.Body
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	switch strings.ToLower(strings.TrimSpace(ct)) { // MIME types are case-insensitive
	case "application/json":
		var req classifyRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			return nil, fmt.Errorf("serve: bad JSON body: %w", err)
		}
		if len(req.Images) == 0 {
			return nil, fmt.Errorf("serve: JSON body carries no images")
		}
		if len(req.Images) > maxImages {
			return nil, fmt.Errorf("serve: batch of %d images exceeds the per-request cap of %d; split the batch", len(req.Images), maxImages)
		}
		imgs := make([]*imaging.Image, len(req.Images))
		for i, b64 := range req.Images {
			raw, err := base64.StdEncoding.DecodeString(b64)
			if err != nil {
				return nil, fmt.Errorf("serve: image %d: bad base64: %w", i, err)
			}
			img, err := decodePNG(raw, maxPixels)
			if err != nil {
				return nil, fmt.Errorf("serve: image %d: %w", i, err)
			}
			imgs[i] = img
		}
		return imgs, nil
	default: // image/png or unlabelled single image
		raw, err := io.ReadAll(body) // bounded by the MaxBytesReader
		if err != nil {
			return nil, err
		}
		img, err := decodePNG(raw, maxPixels)
		if err != nil {
			return nil, err
		}
		return []*imaging.Image{img}, nil
	}
}

// decodePNG decodes one PNG, rejecting rasters whose decoded pixel
// count exceeds maxPixels before the full (potentially enormous)
// decode runs — the byte cap upstream cannot bound this, since a tiny
// compressed stream can declare arbitrary dimensions.
func decodePNG(raw []byte, maxPixels int) (*imaging.Image, error) {
	cfg, err := png.DecodeConfig(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("serve: decode png: %w", err)
	}
	// The pixel bound divides instead of multiplying: a PNG header can
	// declare dimensions up to 2^31-1 each, whose product overflows —
	// and on 32-bit ints wraps to a small or negative count that would
	// sail through a multiplied check straight into the full decode.
	if cfg.Width <= 0 || cfg.Height <= 0 || cfg.Width > maxPixels/cfg.Height {
		return nil, fmt.Errorf("serve: image is %dx%d; decoded size exceeds the %d-pixel limit",
			cfg.Width, cfg.Height, maxPixels)
	}
	std, err := png.Decode(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("serve: decode png: %w", err)
	}
	return imaging.FromStdImage(std), nil
}

// GalleryInfo is one /galleries entry.
type GalleryInfo struct {
	Name        string         `json:"name"`
	Views       int            `json:"views"`
	Shards      int            `json:"shards"`
	Index       string         `json:"index"`       // matching backend spec, e.g. "exact" or "mih(bits=16,radius=1)"
	Descriptors map[string]int `json:"descriptors"` // prepared kinds -> indexed descriptor rows
}

func (s *Server) handleGalleries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET lists galleries")
		return
	}
	names := s.reg.Names()
	out := struct {
		Galleries []GalleryInfo `json:"galleries"`
	}{Galleries: make([]GalleryInfo, 0, len(names))}
	for _, n := range names {
		sg, ok := s.reg.Get(n)
		if !ok {
			continue
		}
		info := GalleryInfo{Name: n, Views: sg.G.Len(), Shards: sg.Shards, Index: sg.G.IndexSpec().String(), Descriptors: map[string]int{}}
		// Enumerate the kinds the gallery actually has indexes for rather
		// than a hardcoded family list, so the listing stays truthful if
		// the set of kinds ever diverges from the built-in three (e.g. a
		// snapshot that persisted a subset, or a future family).
		for _, k := range sg.G.IndexedKinds() {
			if nd, _ := sg.G.IndexStats(k); nd > 0 {
				info.Descriptors[k.String()] = nd
			}
		}
		out.Galleries = append(out.Galleries, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// HealthSnapshot is the provenance block of a /healthz gallery entry.
// Its fields are never omitted: 0 is a seed an operator can
// legitimately build with, so absence of provenance is signalled by
// the whole object being absent, not by zero values.
type HealthSnapshot struct {
	Dataset string `json:"dataset"`
	Size    int    `json:"size"`
	Seed    uint64 `json:"seed"`
}

// HealthGallery is one /healthz gallery entry: the serving shape, the
// descriptor kinds with built indexes, plus the snapshot provenance
// when the gallery was registered with one.
type HealthGallery struct {
	Name        string          `json:"name"`
	Views       int             `json:"views"`
	Shards      int             `json:"shards"`
	Index       string          `json:"index"` // matching backend spec
	Descriptors []string        `json:"descriptors,omitempty"`
	Snapshot    *HealthSnapshot `json:"snapshot,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET probes health")
		return
	}
	names := s.reg.Names()
	infos := make([]HealthGallery, 0, len(names))
	for _, n := range names {
		// One atomic registry read per gallery: a concurrent
		// replacement may drop an entry or show the old or new one,
		// but never a mix of one gallery's shape with another's
		// provenance.
		sg, meta, hasMeta, ok := s.reg.Entry(n)
		if !ok {
			continue
		}
		info := HealthGallery{Name: n, Views: sg.G.Len(), Shards: sg.Shards, Index: sg.G.IndexSpec().String()}
		for _, k := range sg.G.IndexedKinds() {
			info.Descriptors = append(info.Descriptors, k.String())
		}
		if hasMeta {
			info.Snapshot = &HealthSnapshot{Dataset: meta.Dataset, Size: meta.Size, Seed: meta.Seed}
		}
		infos = append(infos, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"galleries":    s.reg.Len(),
		"gallery_info": infos,
		"in_flight":    s.gate.InUse(),
		"capacity":     s.gate.Cap(),
		"uptime_ms":    time.Since(s.start).Milliseconds(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// httpErrorStages is httpError with the partial stage trace attached,
// so a 504 tells the caller which stages ran before the deadline ate
// the request.
func httpErrorStages(w http.ResponseWriter, status int, msg string, stages map[string]float64) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{"error": msg, "stages_ms": stages})
}
