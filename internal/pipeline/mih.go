package pipeline

import (
	"math"
	"sync"
	"time"

	"snmatch/internal/features"
	"snmatch/internal/obs"
)

// MIHIndex is multi-index hashing over the flat index's word-packed
// binary rows (Norouzi et al.'s scheme, adapted to the per-view ratio
// test): every row is split into m disjoint substrings of SubstrBits
// bits, each keying one direct-addressed hash table. A query descriptor
// probes, per substring, every bucket within the substring Hamming
// radius; the union of bucket rows is its candidate set. By the
// pigeonhole principle any gallery row within Hamming distance
// m*(Radius+1)-1 of the query matches at least one substring within
// Radius, so near rows — the only ones that can win a ratio test at
// serving thresholds — are found without scanning the gallery.
//
// Candidates are verified with the exact HammingWords kernel and folded
// into per-view best/second-best exactly like the flat scan; a view
// whose candidate set holds fewer than two rows is skipped (no
// second-neighbour denominator — the same rule the flat scan applies to
// views with fewer than two rows). The probe only shortlists: every
// view that accumulates a non-zero approximate count is then re-scored
// exactly by the flat kernel over its full row block (verifyShortlist),
// so final counts are either the flat scan's number or zero and
// approximate recall is a question of shortlist membership, not score
// drift. At Radius >= SubstrBits every bucket would be probed, so the
// scan delegates to the flat kernel outright and is bit-identical to
// it.
//
// The index is immutable once built and safe for concurrent queries;
// per-query scratch is pooled.
type MIHIndex struct {
	ix     *DescriptorIndex
	params MIHParams

	bits uint // substring width
	m    int  // substrings per row
	full bool // Radius covers the whole substring: exact delegation

	// rowView maps a global row id to its view (only rows of views
	// with >= 2 rows are bucketed, so every bucketed id resolves).
	rowView []int32
	tables  []mihTable // one per substring position

	scratch sync.Pool // *mihScratch
}

// mihTable is one substring position's bucket table in CSR layout:
// bucket k holds ids[offsets[k]:offsets[k+1]], ascending row order.
type mihTable struct {
	offsets []int32
	ids     []int32
}

// NewMIHIndex builds the hashing backend over a binary flat index. It
// panics on a float index (buildMatchIndex routes those to the flat
// scan) and on parameters IndexSpec.Validate would reject.
func NewMIHIndex(ix *DescriptorIndex, p MIHParams) *MIHIndex {
	if !ix.Binary {
		panic("pipeline: MIH index requires binary descriptor rows")
	}
	p = p.withDefaults()
	if err := (IndexSpec{Kind: MIHKind, MIH: p}).Validate(); err != nil {
		panic(err.Error())
	}
	rowBits := ix.WordsPerRow * 64
	mi := &MIHIndex{
		ix:     ix,
		params: p,
		bits:   uint(p.SubstrBits),
		m:      rowBits / p.SubstrBits,
		full:   p.Radius >= p.SubstrBits,
	}
	if mi.full || ix.Len() == 0 {
		return mi
	}

	// Bucket only rows whose view can pass a ratio test (>= 2 rows);
	// the flat scan never counts the others either.
	n := ix.Len()
	mi.rowView = make([]int32, n)
	indexable := make([]int32, 0, n)
	for v := 0; v < ix.NumViews; v++ {
		start, end := ix.Starts[v], ix.Starts[v+1]
		if end-start < 2 {
			continue
		}
		for r := start; r < end; r++ {
			mi.rowView[r] = int32(v)
			indexable = append(indexable, int32(r))
		}
	}

	nBuckets := 1 << mi.bits
	wpr := ix.WordsPerRow
	cap32 := int32(math.MaxInt32)
	if p.BucketCap > 0 {
		cap32 = int32(p.BucketCap)
	}
	mi.tables = make([]mihTable, mi.m)
	sizes := make([]int32, nBuckets)
	for s := 0; s < mi.m; s++ {
		off := uint(s) * mi.bits
		clearInt32(sizes)
		for _, r := range indexable {
			key := features.SubBits(ix.Words[int(r)*wpr:(int(r)+1)*wpr], off, mi.bits)
			sizes[key]++
		}
		// Stop-buckets: a bucket beyond BucketCap is dropped wholesale —
		// its substring value is too common to discriminate, and its rows
		// remain reachable through their rarer substrings.
		kept := 0
		for k := 0; k < nBuckets; k++ {
			if sizes[k] > cap32 {
				sizes[k] = 0
			}
			kept += int(sizes[k])
		}
		t := mihTable{
			offsets: make([]int32, nBuckets+1),
			ids:     make([]int32, kept),
		}
		for k := 0; k < nBuckets; k++ {
			t.offsets[k+1] = t.offsets[k] + sizes[k]
		}
		fill := make([]int32, nBuckets)
		for _, r := range indexable {
			key := features.SubBits(ix.Words[int(r)*wpr:(int(r)+1)*wpr], off, mi.bits)
			if t.offsets[key+1] == t.offsets[key] {
				continue
			}
			t.ids[t.offsets[key]+fill[key]] = r
			fill[key]++
		}
		mi.tables[s] = t
	}
	return mi
}

// Flat implements MatchIndex.
func (mi *MIHIndex) Flat() *DescriptorIndex { return mi.ix }

// IndexKind implements MatchIndex.
func (mi *MIHIndex) IndexKind() IndexKind { return MIHKind }

// Substrings returns the number of hash tables (m disjoint substrings
// per row).
func (mi *MIHIndex) Substrings() int { return mi.m }

// mihScratch is one query's probe state: epoch-stamped row dedup and
// per-view best/second-best accumulators, recycled through the pool so
// steady-state probing allocates nothing.
type mihScratch struct {
	epoch    int32
	rowSeen  []int32
	viewMark []int32
	s1, s2   []int
	touched  []int32
}

func (mi *MIHIndex) getScratch() *mihScratch {
	if v := mi.scratch.Get(); v != nil {
		return v.(*mihScratch)
	}
	return &mihScratch{
		rowSeen:  make([]int32, mi.ix.Len()),
		viewMark: make([]int32, mi.ix.NumViews),
		s1:       make([]int, mi.ix.NumViews),
		s2:       make([]int, mi.ix.NumViews),
		touched:  make([]int32, 0, 64),
	}
}

// next opens a fresh epoch, wrapping safely before stamp overflow.
func (sc *mihScratch) next() {
	if sc.epoch == math.MaxInt32 {
		clearInt32(sc.rowSeen)
		clearInt32(sc.viewMark)
		sc.epoch = 0
	}
	sc.epoch++
	sc.touched = sc.touched[:0]
}

func clearInt32(s []int32) {
	for i := range s {
		s[i] = 0
	}
}

// GoodMatchCounts implements MatchIndex.
//
//snmatch:noalloc
func (mi *MIHIndex) GoodMatchCounts(query *features.Set, ratio float64, counts []int32) {
	mi.GoodMatchCountsRangeTraced(query, ratio, counts, 0, mi.ix.NumViews, nil)
}

// GoodMatchCountsRange implements MatchIndex: the flat scan's contract
// over the probed candidate sets. Views outside [v0, v1) are untouched,
// so sharded fan-out composes exactly as with the flat index.
//
//snmatch:noalloc
func (mi *MIHIndex) GoodMatchCountsRange(query *features.Set, ratio float64, counts []int32, v0, v1 int) {
	mi.GoodMatchCountsRangeTraced(query, ratio, counts, v0, v1, nil)
}

// GoodMatchCountsTraced implements MatchIndex.
//
//snmatch:noalloc
func (mi *MIHIndex) GoodMatchCountsTraced(query *features.Set, ratio float64, counts []int32, tr *obs.Trace) {
	mi.GoodMatchCountsRangeTraced(query, ratio, counts, 0, mi.ix.NumViews, tr)
}

// probesPerQueryDescr is the number of bucket visits one query
// descriptor makes: every substring probes its own key plus all keys
// within the Hamming radius.
func (mi *MIHIndex) probesPerQueryDescr() int {
	per := 1
	b := int(mi.bits)
	if mi.params.Radius >= 1 {
		per += b
	}
	if mi.params.Radius >= 2 {
		per += b * (b - 1) / 2
	}
	return mi.m * per
}

// GoodMatchCountsRangeTraced implements MatchIndex: the probe phase
// books as match time and the exact shortlist re-scoring as verify
// time; the shortlist/probe histograms record just before verification.
//snmatch:noalloc
func (mi *MIHIndex) GoodMatchCountsRangeTraced(query *features.Set, ratio float64, counts []int32, v0, v1 int, tr *obs.Trace) {
	if mi.full {
		mi.ix.GoodMatchCountsRangeTraced(query, ratio, counts, v0, v1, tr)
		return
	}
	for i := v0; i < v1; i++ {
		counts[i] = 0
	}
	if query.Len() == 0 || mi.ix.Len() == 0 {
		return
	}
	if query.IsBinary() != mi.ix.Binary {
		panic("match: mixed descriptor representations")
	}
	qp := query.Pack().Packed
	if qp.WordsPerRow != mi.ix.WordsPerRow {
		panic("pipeline: query descriptor width does not match index")
	}

	pm := obsMetrics()
	var start time.Time
	if tr != nil {
		start = time.Now()
	}

	radius := mi.params.Radius
	sc := mi.getScratch()
	for qi := 0; qi < qp.N; qi++ {
		q := qp.WordRow(qi)
		sc.next()
		for s := 0; s < mi.m; s++ {
			key := features.SubBits(q, uint(s)*mi.bits, mi.bits)
			mi.probe(sc, s, key, q, v0, v1)
			if radius >= 1 {
				for b := uint(0); b < mi.bits; b++ {
					mi.probe(sc, s, key^(1<<b), q, v0, v1)
				}
			}
			if radius >= 2 {
				for b1 := uint(0); b1 < mi.bits; b1++ {
					for b2 := b1 + 1; b2 < mi.bits; b2++ {
						mi.probe(sc, s, key^(1<<b1)^(1<<b2), q, v0, v1)
					}
				}
			}
		}
		// Fold the candidate 2-NN of every touched view through the
		// flat scan's exact ratio test. A single-candidate view keeps
		// its MaxInt second-best and is skipped: there is no
		// second-neighbour denominator to test against.
		for _, v := range sc.touched {
			s1, s2 := sc.s1[v], sc.s2[v]
			if s2 != math.MaxInt && float64(float32(s1)) < ratio*float64(float32(s2)) {
				counts[v]++
			}
		}
	}
	mi.scratch.Put(sc)
	if tr != nil {
		now := time.Now()
		tr.Add(obs.StageMatch, now.Sub(start))
		start = now
	}
	pm.recordScan(MIHKind, counts, v0, v1, qp.N*mi.probesPerQueryDescr())
	verifyShortlist(mi.ix, query, ratio, counts, v0, v1)
	if tr != nil {
		tr.Add(obs.StageVerify, time.Since(start))
	}
}

// probe folds one bucket's rows into the query's per-view running
// best/second-best, deduplicating rows across the m*probes bucket
// visits by epoch stamp.
func (mi *MIHIndex) probe(sc *mihScratch, s int, key uint64, q []uint64, v0, v1 int) {
	t := &mi.tables[s]
	wpr := mi.ix.WordsPerRow
	for _, id := range t.ids[t.offsets[key]:t.offsets[key+1]] {
		if sc.rowSeen[id] == sc.epoch {
			continue
		}
		sc.rowSeen[id] = sc.epoch
		v := mi.rowView[id]
		if int(v) < v0 || int(v) >= v1 {
			continue
		}
		d := features.HammingWords(q, mi.ix.Words[int(id)*wpr:(int(id)+1)*wpr])
		if sc.viewMark[v] != sc.epoch {
			sc.viewMark[v] = sc.epoch
			sc.s1[v], sc.s2[v] = d, math.MaxInt
			sc.touched = append(sc.touched, v) //lint:allow noalloc touched grows into pooled scratch capped at NumViews; capacity amortizes to zero growth at steady state
			continue
		}
		if d < sc.s1[v] {
			sc.s2[v], sc.s1[v] = sc.s1[v], d
		} else if d < sc.s2[v] {
			sc.s2[v] = d
		}
	}
}
