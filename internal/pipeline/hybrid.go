package pipeline

import (
	"fmt"

	"snmatch/internal/arena"
	"snmatch/internal/histogram"
	"snmatch/internal/imaging"
	"snmatch/internal/moments"
	"snmatch/internal/synth"
)

// HybridStrategy selects how the per-view scores θ are aggregated
// before the argmin (§3.2, equations 2-4).
type HybridStrategy int

const (
	// WeightedSum takes the argmin over all individual view scores
	// (Θ_T in the paper).
	WeightedSum HybridStrategy = iota
	// MicroAvg averages θ per model before the argmin (Θ_Z, eq. 3).
	MicroAvg
	// MacroAvg averages θ per class before the argmin (Θ_C, eq. 4).
	MacroAvg
)

// String names the strategy as in Table 7.
func (s HybridStrategy) String() string {
	switch s {
	case WeightedSum:
		return "weighted sum"
	case MicroAvg:
		return "micro-avg"
	case MacroAvg:
		return "macro-avg"
	}
	return "unknown"
}

// Hybrid combines shape and colour scores: θ = α·S + β·C where S is the
// Hu-moment distance and C the histogram score converted to a distance
// (the paper inverts the similarity metrics Correlation and
// Intersection). The paper's most consistent configuration is L3 +
// Hellinger with α = 0.3, β = 0.7.
type Hybrid struct {
	ShapeMethod moments.MatchMethod
	ColorMetric histogram.CompareMethod
	Alpha, Beta float64
	Strategy    HybridStrategy
}

// DefaultHybrid returns the configuration reported in Tables 7 and 8.
func DefaultHybrid(strategy HybridStrategy) Hybrid {
	return Hybrid{
		ShapeMethod: moments.MatchI3,
		ColorMetric: histogram.Hellinger,
		Alpha:       0.3,
		Beta:        0.7,
		Strategy:    strategy,
	}
}

// Name implements Pipeline.
func (p Hybrid) Name() string {
	return fmt.Sprintf("Shape+Color (%s)", p.Strategy)
}

// Classify implements Pipeline. Preprocessing, the query histogram and
// the per-view score vector all run on a pooled context, so the warm
// WeightedSum query path performs no heap allocation (the averaging
// strategies still build their grouping maps); results are identical to
// computing from scratch.
func (p Hybrid) Classify(img *imaging.Image, g *Gallery) Prediction {
	c := getPrepCtx()
	pre := c.preprocess(img)
	hu := huOf(pre)
	h := histOfIn(c.a, pre)

	theta := arena.Slice[float64](c.a, g.Len())
	for i := range g.Views {
		s := moments.MatchShapes(hu, g.Views[i].Hu, p.ShapeMethod)
		d := histogram.Distance(histogram.Compare(h, g.Views[i].Hist, p.ColorMetric), p.ColorMetric)
		theta[i] = p.Alpha*s + p.Beta*d
	}

	var best Prediction
	switch p.Strategy {
	case MicroAvg:
		best = argminGrouped(g, theta, func(v *View) string {
			return fmt.Sprintf("%d/%d", v.Sample.Class, v.Sample.Model)
		})
	case MacroAvg:
		best = argminGrouped(g, theta, func(v *View) string {
			return fmt.Sprintf("%d", v.Sample.Class)
		})
	default:
		best = Prediction{Index: -1}
		for i, t := range theta {
			if best.Index < 0 || t < best.Score {
				best = Prediction{Class: g.ClassOf(i), Index: i, Score: t}
			}
		}
	}
	putPrepCtx(c)
	return best
}

// argminGrouped averages theta within groups and returns the class of
// the group with the minimal mean.
func argminGrouped(g *Gallery, theta []float64, key func(*View) string) Prediction {
	sums := map[string]float64{}
	counts := map[string]int{}
	repr := map[string]int{} // first view index per group
	order := []string{}
	for i := range g.Views {
		k := key(&g.Views[i])
		if _, ok := counts[k]; !ok {
			order = append(order, k)
			repr[k] = i
		}
		sums[k] += theta[i]
		counts[k]++
	}
	best := Prediction{Index: -1}
	var cls synth.Class
	for _, k := range order {
		mean := sums[k] / float64(counts[k])
		if best.Index < 0 || mean < best.Score {
			cls = g.ClassOf(repr[k])
			best = Prediction{Class: cls, Index: repr[k], Score: mean}
		}
	}
	return best
}
