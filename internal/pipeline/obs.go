package pipeline

import (
	"sync/atomic"

	"snmatch/internal/arena"
	"snmatch/internal/obs"
)

// pipeMetrics is the pipeline's aggregate instrumentation: per-backend
// ANN scan statistics and the extraction-context pool's health. All
// cells are pre-resolved at EnableObs so the record path is pure atomic
// arithmetic. Backend arrays index by IndexKind.
type pipeMetrics struct {
	shortlist [3]*obs.Histogram // views shortlisted per scan call
	verifyPct [3]*obs.Histogram // percent of the scanned view range verified
	probes    [3]*obs.Histogram // buckets (mih) / lists (ivf) probed per scan call

	ctxHits   *obs.Counter
	ctxMisses *obs.Counter
	ctxDrops  *obs.Counter
	ctxPooled *obs.Gauge
}

// pmx holds the active pipeline metrics; nil means instrumentation is
// off and every record site short-circuits on one atomic pointer load —
// the no-op baseline BenchmarkObsOverhead compares against.
var pmx atomic.Pointer[pipeMetrics]

func obsMetrics() *pipeMetrics { return pmx.Load() }

// EnableObs wires the pipeline's aggregate metrics into r and turns
// per-request stage tracing on. Registration is get-or-create, so
// repeated calls (every serve.New in a test binary) share cells.
func EnableObs(r *obs.Registry) {
	pm := &pipeMetrics{}
	kinds := []string{ExactKind.String(), MIHKind.String(), IVFKind.String()}
	sl := r.HistogramVec("snmatch_ann_shortlist_views",
		"Views shortlisted by one index scan call for exact verification, by backend.",
		obs.ScaleNone, "kind", kinds...)
	vp := r.HistogramVec("snmatch_ann_verify_percent",
		"Percent of the scanned view range the approximate backends re-scored exactly, by backend.",
		obs.ScaleNone, "kind", kinds...)
	pr := r.HistogramVec("snmatch_ann_probes",
		"Hash buckets (mih) or inverted lists (ivf) probed by one index scan call, by backend.",
		obs.ScaleNone, "kind", kinds...)
	for k, name := range kinds {
		pm.shortlist[k] = sl.With(name)
		pm.verifyPct[k] = vp.With(name)
		pm.probes[k] = pr.With(name)
	}
	pm.ctxHits = r.Counter("snmatch_ctx_pool_hits_total",
		"Extraction-context checkouts served by the warm pool.")
	pm.ctxMisses = r.Counter("snmatch_ctx_pool_misses_total",
		"Extraction-context checkouts that built a fresh context.")
	pm.ctxDrops = r.Counter("snmatch_ctx_pool_drops_total",
		"Contexts dropped at recycle because an oversized query inflated them past the pool cap.")
	pm.ctxPooled = r.Gauge("snmatch_ctx_pooled_bytes",
		"Approximate arena bytes parked in the extraction-context pool (GC pool drains are not observed, so this can read high).")
	r.CounterFunc("snmatch_arena_allocated_bytes_total",
		"Process-lifetime arena buffer capacity allocated from the heap.",
		arena.TotalAllocated)
	pmx.Store(pm)
}

// DisableObs turns pipeline instrumentation off (registered metrics
// keep their last values; nothing records into them).
func DisableObs() { pmx.Store(nil) }

// recordScan folds one index scan call's shortlist statistics into the
// backend's histograms: the number of shortlisted (non-zero) views in
// [v0, v1) just before exact verification, the fraction of the range
// that represents, and how many buckets/lists the probe walked. The
// count pass only runs when instrumentation is on.
func (pm *pipeMetrics) recordScan(kind IndexKind, counts []int32, v0, v1, probes int) {
	if pm == nil {
		return
	}
	n := 0
	for v := v0; v < v1; v++ {
		if counts[v] != 0 {
			n++
		}
	}
	pm.shortlist[kind].Observe(int64(n))
	if span := v1 - v0; span > 0 {
		pm.verifyPct[kind].Observe(int64(n * 100 / span))
	}
	pm.probes[kind].Observe(int64(probes))
}
