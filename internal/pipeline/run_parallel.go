package pipeline

import (
	"snmatch/internal/dataset"
	"snmatch/internal/parallel"
	"snmatch/internal/synth"
)

// Forker is implemented by pipelines that hold mutable state (RNG
// streams, network forward caches). Fork returns an independent clone
// positioned to classify the query at absolute index start: the worker
// that owns the contiguous chunk [start, end) computes exactly what the
// serial sweep would compute there, which is how RunParallel keeps its
// determinism contract for stateful pipelines. Fork itself does not
// advance the parent; RunParallel calls Advance once the sweep is done,
// so a sequence of RunParallel calls visits the same states as the same
// sequence of serial Runs.
type Forker interface {
	Pipeline
	Fork(start int) Pipeline
	// Advance moves the pipeline's state past n classifications against
	// gallery g without performing them, as if a serial Run over n
	// queries had completed. The gallery is passed because deferred
	// state may depend on it (Random's draw bound is the gallery size).
	Advance(n int, g *Gallery)
}

// Preparer is implemented by pipelines that can hoist shared-state
// mutation (lazy gallery descriptor extraction) out of Classify into a
// one-shot setup pass over the pool, removing lock contention from the
// per-query hot path.
type Preparer interface {
	Prepare(g *Gallery, workers int)
}

// RunParallel is the concurrent counterpart of Run: queries are split
// into contiguous chunks across a bounded worker pool, stateful
// pipelines are forked once per chunk, and predictions land in query
// order. The output is identical to Run for every pipeline kind.
// workers <= 0 selects one worker per CPU; any value is clamped to the
// query count, so empty and single-sample sets degrade to the serial
// path.
func RunParallel(p Pipeline, queries *dataset.Set, g *Gallery, workers int) (pred, truth []synth.Class) {
	n := queries.Len()
	w := parallel.Clamp(workers, n)
	// Prep work is sized by the gallery, not the query set, so it gets
	// the raw request; each Prepare clamps against its own item count.
	// The serial fallback prepares too: hoisting descriptor extraction
	// and flat-index construction out of the first Classify keeps the
	// per-query path identical at every worker count.
	if prep, ok := p.(Preparer); ok {
		prep.Prepare(g, workers)
	}
	if w <= 1 {
		return Run(p, queries, g)
	}
	pred = make([]synth.Class, n)
	truth = make([]synth.Class, n)
	parallel.ForEachChunk(w, n, func(_ int, s parallel.Span) {
		wp := p
		if f, ok := p.(Forker); ok {
			wp = f.Fork(s.Start)
		}
		for i := s.Start; i < s.End; i++ {
			sm := queries.Samples[i]
			pred[i] = wp.Classify(sm.Image, g).Class
			truth[i] = sm.Class
		}
	})
	if f, ok := p.(Forker); ok {
		f.Advance(n, g)
	}
	return pred, truth
}

// BatchClassifier bundles a pipeline with a worker budget. It is the
// entry point the binaries and the experiment harness use for query-set
// classification; single-image Classify passes through untouched.
type BatchClassifier struct {
	Pipeline Pipeline
	Workers  int // pool size; <= 0 selects one worker per CPU
}

// NewBatchClassifier wraps a pipeline for pooled classification.
func NewBatchClassifier(p Pipeline, workers int) *BatchClassifier {
	return &BatchClassifier{Pipeline: p, Workers: workers}
}

// Name returns the wrapped pipeline's name.
func (c *BatchClassifier) Name() string { return c.Pipeline.Name() }

// Run classifies the query set across the pool, with output identical
// to the serial pipeline.Run.
func (c *BatchClassifier) Run(queries *dataset.Set, g *Gallery) (pred, truth []synth.Class) {
	return RunParallel(c.Pipeline, queries, g, c.Workers)
}
