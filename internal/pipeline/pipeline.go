package pipeline

import (
	"snmatch/internal/dataset"
	"snmatch/internal/histogram"
	"snmatch/internal/imaging"
	"snmatch/internal/moments"
	"snmatch/internal/rng"
	"snmatch/internal/synth"
)

// Prediction is a classification outcome: the winning gallery view and
// its class.
type Prediction struct {
	Class synth.Class
	Index int     // winning gallery view index (-1 when not applicable)
	Score float64 // the optimised similarity/distance value
}

// Pipeline classifies a query image against a prepared gallery.
// Implementations that hold mutable state (Random's RNG stream,
// Neural's forward caches) are not safe for concurrent Classify calls
// on one instance; they additionally implement Forker so RunParallel
// can hand every worker an independent clone.
type Pipeline interface {
	Name() string
	Classify(img *imaging.Image, g *Gallery) Prediction
}

// Run classifies every sample of the query set and returns the
// predictions alongside the ground truth, ready for eval.Evaluate.
// RunParallel is the concurrent equivalent with identical output.
func Run(p Pipeline, queries *dataset.Set, g *Gallery) (pred, truth []synth.Class) {
	pred = make([]synth.Class, queries.Len())
	truth = make([]synth.Class, queries.Len())
	for i, sm := range queries.Samples {
		pred[i] = p.Classify(sm.Image, g).Class
		truth[i] = sm.Class
	}
	return pred, truth
}

// Random is the paper's baseline: randomised label assignment by
// picking a uniformly random gallery view, so class probabilities equal
// the gallery's class shares.
type Random struct {
	r    *rng.RNG
	skip int // draws to replay before the first real draw (set by Fork)
}

// NewRandom creates the baseline with a deterministic seed.
func NewRandom(seed uint64) *Random { return &Random{r: rng.New(seed)} }

// Name implements Pipeline.
func (p *Random) Name() string { return "Baseline" }

// Classify implements Pipeline.
func (p *Random) Classify(_ *imaging.Image, g *Gallery) Prediction {
	for p.skip > 0 {
		p.r.Intn(g.Len())
		p.skip--
	}
	i := p.r.Intn(g.Len())
	return Prediction{Class: g.ClassOf(i), Index: i}
}

// Fork implements Forker: the clone starts from the parent's current
// stream position and replays the `start` draws a serial sweep would
// have consumed before reaching its chunk. Each Classify draws exactly
// once, so a worker that owns queries [start, end) produces the same
// predictions there as the serial Run. The replay is deferred to the
// first Classify because the draw bound is the gallery size, which is
// the same gallery that first Classify receives.
func (p *Random) Fork(start int) Pipeline {
	return &Random{r: p.r.Clone(), skip: p.skip + start}
}

// Advance implements Forker by consuming the n draws a serial sweep
// over n queries against g would have consumed, keeping mixed
// sequences of Run and RunParallel on one instance identical — even
// when later sweeps use galleries of other sizes (Intn's rejection
// sampling consumes a bound-dependent number of RNG words, so the
// draws must use this sweep's gallery size, not the next caller's).
func (p *Random) Advance(n int, g *Gallery) {
	// Drain any replay a Fork left pending first: forks are meant for
	// the sweep (and gallery) that created them, so g is its bound.
	for ; p.skip > 0; p.skip-- {
		p.r.Intn(g.Len())
	}
	for j := 0; j < n; j++ {
		p.r.Intn(g.Len())
	}
}

// ShapeOnly matches Hu moments of the query's largest contour against
// every gallery view using one of the three matchShapes distances
// (§3.2, "Shape-only matching").
type ShapeOnly struct {
	Method moments.MatchMethod
}

// Name implements Pipeline.
func (p ShapeOnly) Name() string { return "Shape only " + p.Method.String() }

// Classify implements Pipeline. Preprocessing runs on a pooled context,
// so the warm query path performs no heap allocation; results are
// identical to preprocessing from scratch.
func (p ShapeOnly) Classify(img *imaging.Image, g *Gallery) Prediction {
	c := getPrepCtx()
	hu := huOf(c.preprocess(img))
	best := Prediction{Index: -1, Score: 0}
	for i := range g.Views {
		d := moments.MatchShapes(hu, g.Views[i].Hu, p.Method)
		if best.Index < 0 || d < best.Score {
			best = Prediction{Class: g.ClassOf(i), Index: i, Score: d}
		}
	}
	putPrepCtx(c)
	return best
}

// ColorOnly matches RGB histograms of the preprocessed crop against
// every gallery view with one of the four comparison metrics (§3.2,
// "Colour-only matching").
type ColorOnly struct {
	Metric histogram.CompareMethod
}

// Name implements Pipeline.
func (p ColorOnly) Name() string { return "Color only " + p.Metric.String() }

// Classify implements Pipeline. Preprocessing and the query histogram
// run on a pooled context, so the warm query path performs no heap
// allocation; results are identical to computing from scratch.
func (p ColorOnly) Classify(img *imaging.Image, g *Gallery) Prediction {
	c := getPrepCtx()
	h := histOfIn(c.a, c.preprocess(img))
	best := Prediction{Index: -1}
	for i := range g.Views {
		s := histogram.Compare(h, g.Views[i].Hist, p.Metric)
		better := false
		if best.Index < 0 {
			better = true
		} else if p.Metric.HigherIsBetter() {
			better = s > best.Score
		} else {
			better = s < best.Score
		}
		if better {
			best = Prediction{Class: g.ClassOf(i), Index: i, Score: s}
		}
	}
	putPrepCtx(c)
	return best
}
