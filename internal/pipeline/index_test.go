package pipeline

import (
	"sync"
	"testing"

	"snmatch/internal/dataset"
	"snmatch/internal/features"
	"snmatch/internal/features/match"
	"snmatch/internal/rng"
)

// randFloatSet draws integer-valued components so distances are exact
// and small vocabularies produce genuine ties; spread>1 vocabularies
// give the norm spread that arms the index's pruned kernel.
func randFloatSet(r *rng.RNG, n, dim, vocab int) *features.Set {
	s := &features.Set{}
	for i := 0; i < n; i++ {
		d := make([]float32, dim)
		for j := range d {
			d[j] = float32(r.Intn(vocab))
		}
		s.Float = append(s.Float, d)
		s.Keypoints = append(s.Keypoints, features.Keypoint{})
	}
	return s
}

func randBinarySet(r *rng.RNG, n, bytes int) *features.Set {
	s := &features.Set{}
	for i := 0; i < n; i++ {
		d := make([]byte, bytes)
		for j := range d {
			d[j] = byte(r.Intn(256))
		}
		s.Binary = append(s.Binary, d)
		s.Keypoints = append(s.Keypoints, features.Keypoint{})
	}
	return s
}

// TestDescriptorIndexMatchesPerViewCounts is the index's exactness
// contract: one flat scan must reproduce the per-view brute-force
// GoodMatchCount for every view — including empty views, single
// descriptor views (below the ratio test's two-neighbour minimum), tie
// heavy small vocabularies, and the norm-difference pruned float path.
func TestDescriptorIndexMatchesPerViewCounts(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 25; trial++ {
		nViews := 1 + r.Intn(8)
		binary := trial%2 == 1
		vocab := 2 + r.Intn(9) // wide vocab range arms pruning on some trials
		sets := make([]*features.Set, nViews)
		for v := range sets {
			n := r.Intn(7) // includes empty and single-descriptor views
			if binary {
				sets[v] = randBinarySet(r, n, 4)
			} else {
				sets[v] = randFloatSet(r, n, 6, vocab)
			}
		}
		var query *features.Set
		if binary {
			query = randBinarySet(r, r.Intn(8), 4)
		} else {
			query = randFloatSet(r, r.Intn(8), 6, vocab)
		}
		ix := NewDescriptorIndex(sets)
		counts := make([]int32, nViews)
		for _, ratio := range []float64{0.5, 0.75, 1.0} {
			ix.GoodMatchCounts(query, ratio, counts)
			for v, s := range sets {
				want := int32(match.GoodMatchCount(query, s, ratio))
				if counts[v] != want {
					t.Fatalf("trial %d (binary=%v prune=%v) view %d ratio %v: %d != %d",
						trial, binary, ix.prune, v, ratio, counts[v], want)
				}
			}
		}
	}
}

// TestDescriptorIndexPruneExactAtLargeNorms stresses the pruned kernel
// where the norm-difference computation is least accurate: high
// dimension and large, clustered magnitudes (norms in the thousands,
// partially non-representable squared sums), mixed with near-origin
// rows so pruning fires aggressively. Counts must still equal the
// never-pruning per-view reference exactly.
func TestDescriptorIndexPruneExactAtLargeNorms(t *testing.T) {
	r := rng.New(131)
	mixedSet := func(n int) *features.Set {
		s := &features.Set{}
		for i := 0; i < n; i++ {
			d := make([]float32, 128)
			base := float32(0)
			if r.Intn(2) == 1 {
				base = 500
			}
			for j := range d {
				d[j] = base + float32(r.Intn(16))
			}
			s.Float = append(s.Float, d)
			s.Keypoints = append(s.Keypoints, features.Keypoint{})
		}
		return s
	}
	for trial := 0; trial < 10; trial++ {
		sets := make([]*features.Set, 4)
		for v := range sets {
			sets[v] = mixedSet(2 + r.Intn(6))
		}
		ix := NewDescriptorIndex(sets)
		if !ix.prune {
			t.Fatal("mixed-magnitude gallery did not arm pruning")
		}
		query := mixedSet(6)
		counts := make([]int32, len(sets))
		for _, ratio := range []float64{0.5, 0.8, 1.0} {
			ix.GoodMatchCounts(query, ratio, counts)
			for v, s := range sets {
				if want := int32(match.GoodMatchCount(query, s, ratio)); counts[v] != want {
					t.Fatalf("trial %d view %d ratio %v: pruned %d != reference %d",
						trial, v, ratio, counts[v], want)
				}
			}
		}
	}
}

func TestDescriptorIndexPruneArmsOnSpreadNorms(t *testing.T) {
	r := rng.New(7)
	spread := []*features.Set{randFloatSet(r, 10, 6, 9), randFloatSet(r, 10, 6, 9)}
	if ix := NewDescriptorIndex(spread); !ix.prune {
		t.Error("wide-norm gallery did not arm pruning")
	}
	// Unit-normalised rows must keep the plain kernel.
	unit := &features.Set{}
	for i := 0; i < 8; i++ {
		d := make([]float32, 4)
		d[i%4] = 1
		unit.Float = append(unit.Float, d)
		unit.Keypoints = append(unit.Keypoints, features.Keypoint{})
	}
	if ix := NewDescriptorIndex([]*features.Set{unit}); ix.prune {
		t.Error("unit-norm gallery armed pruning")
	}
}

func TestDescriptorIndexEmptyCases(t *testing.T) {
	r := rng.New(3)
	// Empty gallery.
	ix := NewDescriptorIndex(nil)
	ix.GoodMatchCounts(randFloatSet(r, 3, 6, 5), 0.5, nil)
	// All-empty views.
	ix = NewDescriptorIndex([]*features.Set{{}, {}})
	counts := make([]int32, 2)
	ix.GoodMatchCounts(randFloatSet(r, 3, 6, 5), 0.5, counts)
	if counts[0] != 0 || counts[1] != 0 {
		t.Errorf("empty views counted: %v", counts)
	}
	// Empty query.
	ix = NewDescriptorIndex([]*features.Set{randFloatSet(r, 4, 6, 5)})
	counts = counts[:1]
	counts[0] = 9
	ix.GoodMatchCounts(&features.Set{}, 0.5, counts)
	if counts[0] != 0 {
		t.Errorf("empty query counted: %v", counts)
	}
}

func TestDescriptorIndexCountsAllocationFree(t *testing.T) {
	r := rng.New(19)
	sets := make([]*features.Set, 6)
	for v := range sets {
		sets[v] = randFloatSet(r, 12, 16, 7)
	}
	ix := NewDescriptorIndex(sets)
	query := randFloatSet(r, 10, 16, 7).Pack()
	counts := make([]int32, len(sets))
	if n := testing.AllocsPerRun(50, func() { ix.GoodMatchCounts(query, 0.5, counts) }); n != 0 {
		t.Errorf("float GoodMatchCounts allocates %v per run", n)
	}
	bsets := make([]*features.Set, 6)
	for v := range bsets {
		bsets[v] = randBinarySet(r, 12, 4)
	}
	bix := NewDescriptorIndex(bsets)
	bquery := randBinarySet(r, 10, 4).Pack()
	if n := testing.AllocsPerRun(50, func() { bix.GoodMatchCounts(bquery, 0.5, counts) }); n != 0 {
		t.Errorf("binary GoodMatchCounts allocates %v per run", n)
	}
}

// TestClassifyFlatMatchesPerView pins the flat-index Classify to the
// legacy per-view brute-force path for all three descriptor families.
func TestClassifyFlatMatchesPerView(t *testing.T) {
	small := NewGallery(&dataset.Set{Name: "small", Samples: sns1.Samples[:12]})
	queries := sns2.Samples[:6]
	for _, kind := range []DescriptorKind{SIFT, SURF, ORB} {
		p := NewDescriptor(kind, 0.5)
		for _, q := range queries {
			want := p.classifyPerView(q.Image, small)
			got := p.Classify(q.Image, small)
			if want != got {
				t.Errorf("%s: flat %+v != per-view %+v", kind, got, want)
			}
		}
	}
}

// TestRunParallelDescriptorKindsMatchSerial sweeps the determinism
// contract at workers 1/4/16 for every descriptor family: the pooled
// flat-index sweep must equal the serial sweep exactly.
func TestRunParallelDescriptorKindsMatchSerial(t *testing.T) {
	queries := &dataset.Set{Name: "q", Samples: sns2.Samples[:8]}
	for _, kind := range []DescriptorKind{SIFT, SURF, ORB} {
		small := NewGallery(&dataset.Set{Name: "small", Samples: sns1.Samples[:10]})
		p := NewDescriptor(kind, 0.5)
		serialPred, _ := Run(p, queries, small)
		for _, w := range poolSizes {
			pred, _ := RunParallel(NewDescriptor(kind, 0.5), queries, small, w)
			classesEqual(t, kind.String(), serialPred, pred)
		}
	}
}

// TestDescriptorScratchPoolUnderConcurrency hammers one shared index's
// sync.Pool scratch from many goroutines (run with -race in CI): all
// workers must see consistent counts.
func TestDescriptorScratchPoolUnderConcurrency(t *testing.T) {
	small := NewGallery(&dataset.Set{Name: "shared", Samples: sns1.Samples[:10]})
	p := NewDescriptor(ORB, 0.75)
	p.Prepare(small, 4)
	queries := sns2.Samples[:6]
	want := make([]Prediction, len(queries))
	for i, q := range queries {
		want[i] = p.Classify(q.Image, small)
	}
	var wg sync.WaitGroup
	for worker := 0; worker < 12; worker++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range queries {
				if got := p.Classify(q.Image, small); got != want[i] {
					t.Errorf("concurrent classify %d: %+v != %+v", i, got, want[i])
				}
			}
		}()
	}
	wg.Wait()
}
