package pipeline

import (
	"testing"

	"snmatch/internal/dataset"
	"snmatch/internal/eval"
	"snmatch/internal/histogram"
	"snmatch/internal/moments"
	"snmatch/internal/nn"
	"snmatch/internal/synth"
)

var testCfg = dataset.Config{Size: 48, Seed: 21}

// galleries are expensive to build; share across tests.
var (
	sns1     = dataset.BuildSNS1(testCfg)
	sns2     = dataset.BuildSNS2(testCfg)
	gallery1 = NewGallery(sns1)
)

func TestGalleryBasics(t *testing.T) {
	if gallery1.Len() != 82 {
		t.Fatalf("gallery size = %d", gallery1.Len())
	}
	for i := range gallery1.Views {
		v := &gallery1.Views[i]
		if v.Hist == nil {
			t.Fatal("missing histogram")
		}
		if v.Hu[0] == 0 {
			t.Errorf("view %d: zero first Hu invariant", i)
		}
	}
	if gallery1.ClassOf(0) != synth.Chair {
		t.Errorf("first view class = %v", gallery1.ClassOf(0))
	}
}

func TestRandomBaselineNearClassShare(t *testing.T) {
	p := NewRandom(3)
	pred, truth := Run(p, sns2, gallery1)
	res := eval.Evaluate(truth, pred)
	// Expected cumulative accuracy: sum over classes of
	// P(query class) * P(predicted class) = sum share_q * share_g.
	want := 0.0
	for _, c := range synth.AllClasses {
		want += 0.1 * float64(dataset.SNS1Counts[c]) / 82
	}
	if res.Cumulative < want-0.08 || res.Cumulative > want+0.08 {
		t.Errorf("baseline cumulative = %v, want ~%v", res.Cumulative, want)
	}
}

func TestShapeOnlyBeatsBaseline(t *testing.T) {
	for _, m := range []moments.MatchMethod{moments.MatchI1, moments.MatchI2, moments.MatchI3} {
		pred, truth := Run(ShapeOnly{Method: m}, sns2, gallery1)
		res := eval.Evaluate(truth, pred)
		if res.Cumulative <= 0.1 {
			t.Errorf("%v cumulative = %v, should beat 0.10 baseline", m, res.Cumulative)
		}
	}
}

func TestColorOnlyBeatsBaseline(t *testing.T) {
	for _, m := range []histogram.CompareMethod{
		histogram.Correlation, histogram.ChiSquare,
		histogram.Intersection, histogram.Hellinger,
	} {
		pred, truth := Run(ColorOnly{Metric: m}, sns2, gallery1)
		res := eval.Evaluate(truth, pred)
		if res.Cumulative <= 0.1 {
			t.Errorf("%v cumulative = %v, should beat 0.10 baseline", m, res.Cumulative)
		}
	}
}

func TestHybridStrategiesValid(t *testing.T) {
	for _, s := range []HybridStrategy{WeightedSum, MicroAvg, MacroAvg} {
		p := DefaultHybrid(s)
		pred, truth := Run(p, sns2, gallery1)
		res := eval.Evaluate(truth, pred)
		if res.Cumulative <= 0.1 {
			t.Errorf("hybrid %v cumulative = %v", s, res.Cumulative)
		}
		if p.Name() == "" {
			t.Error("empty name")
		}
	}
}

func TestSelfQueryIsPerfectForShapeAndColor(t *testing.T) {
	// Querying gallery images themselves must recover their own class
	// (distance 0 to the identical view).
	subset := &dataset.Set{Name: "self", Samples: sns1.Samples[:10]}
	for _, p := range []Pipeline{
		ShapeOnly{Method: moments.MatchI2},
		ColorOnly{Metric: histogram.Hellinger},
	} {
		pred, truth := Run(p, subset, gallery1)
		res := eval.Evaluate(truth, pred)
		if res.Cumulative < 0.99 {
			t.Errorf("%s self-query accuracy = %v", p.Name(), res.Cumulative)
		}
	}
}

func TestDescriptorPipelineSelfQuery(t *testing.T) {
	// Small gallery for speed: 2 views each of 3 distinctive classes.
	var samples []dataset.Sample
	for _, s := range sns1.Samples {
		if (s.Class == synth.Chair || s.Class == synth.Bottle || s.Class == synth.Sofa) && s.View < 1 {
			samples = append(samples, s)
		}
	}
	small := &dataset.Set{Name: "small", Samples: samples}
	g := NewGallery(small)
	p := NewDescriptor(ORB, 0.75)
	g.PrepareDescriptors(ORB, p.Params)
	pred, truth := Run(p, small, g)
	correct := 0
	for i := range pred {
		if pred[i] == truth[i] {
			correct++
		}
	}
	if correct < len(pred)*2/3 {
		t.Errorf("ORB self-query correct = %d/%d", correct, len(pred))
	}
}

func TestDescriptorKindsRun(t *testing.T) {
	var samples []dataset.Sample
	for _, s := range sns1.Samples {
		if s.View == 0 && s.Model == 0 {
			samples = append(samples, s)
		}
	}
	small := &dataset.Set{Name: "small", Samples: samples} // 10 views, 1/class
	g := NewGallery(small)
	q := &dataset.Set{Name: "q", Samples: sns2.Samples[:5]}
	for _, kind := range []DescriptorKind{SIFT, SURF, ORB} {
		p := NewDescriptor(kind, 0.5)
		g.PrepareDescriptors(kind, p.Params)
		pred, _ := Run(p, q, g)
		if len(pred) != 5 {
			t.Fatalf("%v predictions = %d", kind, len(pred))
		}
		if p.Name() != kind.String() {
			t.Errorf("name = %q", p.Name())
		}
	}
	if DescriptorKind(9).String() != "unknown" {
		t.Error("unknown kind label")
	}
}

func TestNeuralPipelineEndToEnd(t *testing.T) {
	// Tiny training run: verifies the full §3.4 plumbing, not quality.
	cfg := nn.NXCorrConfig{
		InputH: 16, InputW: 16, InputC: 3,
		Conv1Out: 4, Conv2Out: 4, Kernel: 3,
		Patch: 3, SearchW: 3, SearchH: 3,
		Conv3Out: 4, Hidden: 16, Seed: 5,
	}
	pairs := dataset.TrainPairs(sns2, 64, 0.5, 11)
	fit := nn.FitConfig{Epochs: 2, BatchSize: 8, LR: 1e-3, EarlyEps: 1e-9, Patience: 5, Seed: 2}
	neural, res, err := TrainNeural(cfg, sns2, pairs, fit, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 2 {
		t.Errorf("epochs = %d", res.Epochs)
	}
	// Classify a few queries against a small gallery.
	smallGallery := NewGallery(&dataset.Set{Name: "g", Samples: sns1.Samples[:12]})
	q := &dataset.Set{Name: "q", Samples: sns2.Samples[:3]}
	pred, _ := Run(neural, q, smallGallery)
	if len(pred) != 3 {
		t.Fatalf("neural predictions = %d", len(pred))
	}
	// Binary pair task.
	pairSubset := dataset.AllPairs(q)
	bp, bt := neural.ClassifyPairs(pairSubset, q, q)
	if len(bp) != len(pairSubset) || len(bt) != len(pairSubset) {
		t.Fatal("pair classification length mismatch")
	}
	if neural.Name() == "" {
		t.Error("empty name")
	}
}

func TestHuOfFallsBackToRaster(t *testing.T) {
	// A sample whose preprocessing finds no contour must still get Hu
	// invariants from the raster rather than NaNs.
	for i := range gallery1.Views {
		hu := gallery1.Views[i].Hu
		for k, v := range hu {
			if v != v { // NaN check
				t.Fatalf("view %d hu[%d] is NaN", i, k)
			}
		}
	}
}

func TestPipelineNames(t *testing.T) {
	cases := map[string]Pipeline{
		"Baseline":                NewRandom(1),
		"Shape only L1":           ShapeOnly{Method: moments.MatchI1},
		"Color only Hellinger":    ColorOnly{Metric: histogram.Hellinger},
		"Shape+Color (micro-avg)": DefaultHybrid(MicroAvg),
		"SIFT":                    NewDescriptor(SIFT, 0.5),
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("name = %q, want %q", p.Name(), want)
		}
	}
	if HybridStrategy(9).String() != "unknown" {
		t.Error("unknown strategy label")
	}
}
