package pipeline

import (
	"math"
	"testing"

	"snmatch/internal/arena"
	"snmatch/internal/dataset"
	"snmatch/internal/features"
	"snmatch/internal/histogram"
	"snmatch/internal/imaging"
	"snmatch/internal/moments"
	"snmatch/internal/obs"
	"snmatch/internal/rng"
)

// noiseImage renders a deterministic noise RGB image — a worst-case
// keypoint workload that exercises every extractor code path.
func noiseImage(r *rng.RNG, w, h int) *imaging.Image {
	img := imaging.NewImage(w, h)
	for i := range img.Pix {
		img.Pix[i] = byte(r.Intn(256))
	}
	return img
}

// setsBitIdentical asserts two descriptor sets match bit for bit:
// keypoints, descriptor rows and the packed mirror.
func setsBitIdentical(t *testing.T, label string, fresh, pooled *features.Set) {
	t.Helper()
	if fresh.Len() != pooled.Len() {
		t.Fatalf("%s: %d keypoints, fresh has %d", label, pooled.Len(), fresh.Len())
	}
	if fresh.IsBinary() != pooled.IsBinary() {
		t.Fatalf("%s: representation mismatch", label)
	}
	for i := range fresh.Keypoints {
		if fresh.Keypoints[i] != pooled.Keypoints[i] {
			t.Fatalf("%s: keypoint %d = %+v, fresh %+v", label, i, pooled.Keypoints[i], fresh.Keypoints[i])
		}
	}
	for i := range fresh.Float {
		for j := range fresh.Float[i] {
			if math.Float32bits(fresh.Float[i][j]) != math.Float32bits(pooled.Float[i][j]) {
				t.Fatalf("%s: float row %d component %d differs", label, i, j)
			}
		}
	}
	for i := range fresh.Binary {
		for j := range fresh.Binary[i] {
			if fresh.Binary[i][j] != pooled.Binary[i][j] {
				t.Fatalf("%s: binary row %d byte %d differs", label, i, j)
			}
		}
	}
	fp, pp := fresh.Packed, pooled.Packed
	if fp == nil || pp == nil {
		t.Fatalf("%s: extractor returned an unpacked set", label)
	}
	if fp.N != pp.N || fp.Dim != pp.Dim || fp.WordsPerRow != pp.WordsPerRow || fp.RowBytes != pp.RowBytes {
		t.Fatalf("%s: packed shape differs: %+v vs %+v", label, pp, fp)
	}
	for i := range fp.Floats {
		if math.Float32bits(fp.Floats[i]) != math.Float32bits(pp.Floats[i]) {
			t.Fatalf("%s: packed float %d differs", label, i)
		}
	}
	for i := range fp.Norms {
		if math.Float32bits(fp.Norms[i]) != math.Float32bits(pp.Norms[i]) {
			t.Fatalf("%s: packed norm %d differs", label, i)
		}
	}
	for i := range fp.Words {
		if fp.Words[i] != pp.Words[i] {
			t.Fatalf("%s: packed word %d differs", label, i)
		}
	}
}

// TestExtractCtxEquivalence reuses one extraction context across a
// randomized stream of images — rendered views and raw noise, in
// several (odd) sizes so recycled buffers change shape between queries
// — and requires the pooled output to equal fresh extraction bit for
// bit at every step, for every descriptor family.
func TestExtractCtxEquivalence(t *testing.T) {
	r := rng.New(41)
	var imgs []*imaging.Image
	for _, sm := range sns2.Samples[:6] {
		imgs = append(imgs, sm.Image)
	}
	for _, wh := range [][2]int{{48, 48}, {57, 63}, {40, 44}, {64, 48}} {
		imgs = append(imgs, noiseImage(r, wh[0], wh[1]))
	}
	params := DefaultDescriptorParams()
	for _, kind := range []DescriptorKind{SIFT, SURF, ORB} {
		ctx := NewExtractCtx()
		for round := 0; round < 2; round++ { // round 2 runs fully warm
			for i, img := range imgs {
				fresh := ExtractDescriptors(img, kind, params)
				pooled := ExtractDescriptorsCtx(img, kind, params, ctx)
				setsBitIdentical(t, kind.String()+" image "+itoa(i), fresh, pooled)
				ctx.Reset()
			}
		}
	}
}

// TestExtractCtxNilIsFresh pins the nil-context fallback to the plain
// extraction path.
func TestExtractCtxNilIsFresh(t *testing.T) {
	img := sns2.Samples[0].Image
	params := DefaultDescriptorParams()
	for _, kind := range []DescriptorKind{SIFT, SURF, ORB} {
		setsBitIdentical(t, kind.String(),
			ExtractDescriptors(img, kind, params),
			ExtractDescriptorsCtx(img, kind, params, nil))
	}
}

// TestQueryPathAllocs is the zero-allocation gate on the warm query
// path (the CI alloc-gate step runs exactly this test): once an
// extraction context has served one query of the steady-state shape,
// extracting each descriptor family — grayscale conversion, detector
// sweep, descriptor computation, packing — performs zero heap
// allocations, and so does the flat-index classification that follows.
func TestQueryPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	img := sns2.Samples[0].Image
	params := DefaultDescriptorParams()
	for _, kind := range []DescriptorKind{SIFT, SURF, ORB} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			ctx := NewExtractCtx()
			for i := 0; i < 2; i++ { // grow spines and arena to steady state
				ExtractDescriptorsCtx(img, kind, params, ctx)
				ctx.Reset()
			}
			if n := testing.AllocsPerRun(20, func() {
				ExtractDescriptorsCtx(img, kind, params, ctx)
				ctx.Reset()
			}); n != 0 {
				t.Errorf("warm %s extraction allocates %.1f times per query, want 0", kind, n)
			}
		})
	}

	// The full single-query serve path — pooled extraction plus the
	// flat-index scan and argmax — is allocation-free too once the
	// pipeline's context pool is warm. The obs=on run repeats it with
	// live instrumentation (stage trace, counters, histograms): the
	// record path is pure atomic arithmetic, so the gate holds with
	// metrics enabled — the invariant the CI obs alloc-gate step pins.
	for _, on := range []bool{false, true} {
		name := "classify/obs=off"
		if on {
			name = "classify/obs=on"
		}
		t.Run(name, func(t *testing.T) {
			if on {
				EnableObs(obs.NewRegistry())
				defer DisableObs()
			} else {
				DisableObs()
			}
			p := NewDescriptor(ORB, 0.5)
			p.Prepare(gallery1, 1)
			for i := 0; i < 3; i++ {
				p.Classify(img, gallery1)
			}
			if n := testing.AllocsPerRun(20, func() {
				p.Classify(img, gallery1)
			}); n != 0 {
				t.Errorf("warm Classify allocates %.1f times per query, want 0", n)
			}
		})
	}

	// The traced approximate path — MIH probe, shortlist bookkeeping,
	// exact verification, all with instrumentation on — must hold the
	// gate too.
	t.Run("classify/obs=on/mih", func(t *testing.T) {
		EnableObs(obs.NewRegistry())
		defer DisableObs()
		g := NewGallery(&dataset.Set{Name: "mih-alloc", Samples: sns1.Samples[:12]})
		if err := g.SetIndexSpec(IndexSpec{Kind: MIHKind}); err != nil {
			t.Fatal(err)
		}
		p := NewDescriptor(ORB, 0.5)
		p.Prepare(g, 1)
		for i := 0; i < 3; i++ {
			p.Classify(img, g)
		}
		if n := testing.AllocsPerRun(20, func() {
			p.Classify(img, g)
		}); n != 0 {
			t.Errorf("warm traced MIH Classify allocates %.1f times per query, want 0", n)
		}
	})

	// The contour/histogram pipelines run on the shared prep-context
	// pool: preprocessing planes, border tracing, the crop, the query
	// histogram and the hybrid score vector are all pooled, so the warm
	// shape-only, colour-only and hybrid (WeightedSum) classify paths
	// are allocation-free end to end — the detector's per-crop loop
	// depends on this.
	for _, tc := range []struct {
		name string
		p    Pipeline
	}{
		{"shape", ShapeOnly{Method: moments.MatchI3}},
		{"color", ColorOnly{Metric: histogram.Hellinger}},
		{"hybrid", DefaultHybrid(WeightedSum)},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < 3; i++ { // grow the pooled context to steady state
				tc.p.Classify(img, gallery1)
			}
			if n := testing.AllocsPerRun(20, func() {
				tc.p.Classify(img, gallery1)
			}); n != 0 {
				t.Errorf("warm %s Classify allocates %.1f times per query, want 0", tc.name, n)
			}
		})
	}
}

// TestOversizedContextIsDropped pins the pool hygiene rule: a context
// whose arena footprint exceeds maxPooledCtxBytes is not re-pooled, so
// one huge query cannot pin its high-water working set in the pool.
func TestOversizedContextIsDropped(t *testing.T) {
	// No assertion that a small context IS re-pooled: sync.Pool gives
	// no Put-then-Get identity guarantee (a GC may drain it), so only
	// the negative direction — an oversized context must never come
	// back — is deterministic.
	p := NewDescriptor(ORB, 0.5)
	big := NewExtractCtx()
	for big.arena.Footprint() <= maxPooledCtxBytes {
		_ = arena.Slice[byte](big.arena, 1<<20) // distinct live 1 MiB loans
	}
	if big.arena.Footprint() <= maxPooledCtxBytes {
		t.Fatal("fixture failed to inflate the context")
	}
	for i := 0; i < 3; i++ {
		p.putCtx(big)
		if got := p.getCtx(); got == big {
			t.Fatal("oversized context was returned to the pool")
		}
	}
}

// TestDescriptorClassifyPooledMatchesPerView cross-checks the pooled
// Classify path (context checkout, arena-backed query set, flat-index
// scan) against the legacy per-view brute-force reference on real
// queries.
func TestDescriptorClassifyPooledMatchesPerView(t *testing.T) {
	small := NewGallery(&dataset.Set{Name: "small", Samples: sns1.Samples[:12]})
	for _, kind := range []DescriptorKind{SIFT, SURF, ORB} {
		p := NewDescriptor(kind, 0.5)
		for _, sm := range sns2.Samples[:6] {
			got := p.Classify(sm.Image, small)
			want := p.classifyPerView(sm.Image, small)
			if got != want {
				t.Fatalf("%s: pooled Classify = %+v, per-view reference %+v", kind, got, want)
			}
		}
	}
}

// TestShardedClassifyStatsMatchesFlat pins the sharded serving path —
// pooled extraction fanned across shards — to the flat pipeline at
// several shard counts, and checks the extraction timing is populated.
func TestShardedClassifyStatsMatchesFlat(t *testing.T) {
	p := NewDescriptor(SIFT, 0.5)
	p.Prepare(gallery1, 0)
	for _, shards := range []int{1, 2, 7} {
		sg := NewShardedGallery(gallery1, shards)
		for _, sm := range sns2.Samples[:4] {
			want := p.Classify(sm.Image, gallery1)
			got, stats := sg.ClassifyStats(p, sm.Image)
			if got != want {
				t.Fatalf("shards=%d: %+v, flat %+v", shards, got, want)
			}
			if stats.Extract <= 0 {
				t.Fatalf("shards=%d: extraction timing not populated", shards)
			}
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
