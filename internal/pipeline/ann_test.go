package pipeline

import (
	"strings"
	"testing"

	"snmatch/internal/dataset"
	"snmatch/internal/features"
	"snmatch/internal/parallel"
	"snmatch/internal/rng"
)

// fullProbeMIH is an MIH spec whose radius covers the whole substring:
// the backend must delegate to the flat kernel and be bit-identical.
var fullProbeMIH = IndexSpec{Kind: MIHKind, MIH: MIHParams{SubstrBits: 16, Radius: 16}}

// fullProbeIVF probes more lists than any gallery builds: bit-identical
// delegation to the flat kernel.
var fullProbeIVF = IndexSpec{Kind: IVFKind, IVF: IVFParams{NProbe: 1 << 20}}

// randGallerySets draws a random multi-view gallery including empty and
// single-descriptor views (the flat scan's edge cases).
func randGallerySets(r *rng.RNG, nViews int, binary bool, vocab int) []*features.Set {
	sets := make([]*features.Set, nViews)
	for v := range sets {
		n := r.Intn(9)
		if binary {
			sets[v] = randBinarySet(r, n, 32)
		} else {
			sets[v] = randFloatSet(r, n, 6, vocab)
		}
	}
	return sets
}

// TestFullProbeBitIdenticalToFlat is the house determinism contract for
// both backends: at full-probe settings, counts must equal the flat
// scan bit for bit — directly and through every sharded fan-out width.
func TestFullProbeBitIdenticalToFlat(t *testing.T) {
	r := rng.New(977)
	for trial := 0; trial < 12; trial++ {
		binary := trial%2 == 1
		vocab := 2 + r.Intn(9)
		sets := randGallerySets(r, 1+r.Intn(10), binary, vocab)
		ix := NewDescriptorIndex(sets)
		// IVF quantizes both representations; MIH applies to binary rows.
		spec := fullProbeIVF
		if binary && trial%4 == 1 {
			spec = fullProbeMIH
		}
		mi := buildMatchIndex(ix, spec)
		if ix.Len() > 0 && mi == MatchIndex(ix) {
			t.Fatalf("trial %d: full-probe spec %v built no backend", trial, spec)
		}
		var query *features.Set
		if binary {
			query = randBinarySet(r, 1+r.Intn(8), 32)
		} else {
			query = randFloatSet(r, 1+r.Intn(8), 6, vocab)
		}
		want := make([]int32, ix.NumViews)
		got := make([]int32, ix.NumViews)
		for _, ratio := range []float64{0.5, 0.8, 1.0} {
			ix.GoodMatchCounts(query, ratio, want)
			mi.GoodMatchCounts(query, ratio, got)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("trial %d (binary=%v) ratio %v view %d: %d != %d",
						trial, binary, ratio, v, got[v], want[v])
				}
			}
			for _, shards := range []int{1, 4, 16} {
				sx := NewShardedIndex(mi, shards)
				sx.GoodMatchCounts(query, ratio, got)
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("trial %d (binary=%v) ratio %v shards=%d view %d: %d != %d",
							trial, binary, ratio, shards, v, got[v], want[v])
					}
				}
			}
		}
	}
}

// TestMIHZeroPaddedRowsExactAtRadiusZero pins the non-delegating probe
// path against the flat scan where equality is provable: 4-byte rows
// pack into one 64-bit word whose upper substrings are all zero, so the
// zero-key buckets of those tables hold every indexable row and the
// candidate set is always complete. Radius 0 must then reproduce the
// flat counts exactly — any drift is a bug in the probe/fold
// arithmetic, not approximation.
func TestMIHZeroPaddedRowsExactAtRadiusZero(t *testing.T) {
	r := rng.New(431)
	for trial := 0; trial < 10; trial++ {
		sets := make([]*features.Set, 1+r.Intn(8))
		for v := range sets {
			sets[v] = randBinarySet(r, r.Intn(9), 4)
		}
		ix := NewDescriptorIndex(sets)
		if ix.Len() == 0 {
			continue
		}
		mi := NewMIHIndex(ix, MIHParams{SubstrBits: 16, Radius: -1}) // -1 clamps to 0
		if mi.full {
			t.Fatal("radius 0 must not delegate")
		}
		query := randBinarySet(r, 1+r.Intn(8), 4)
		want := make([]int32, ix.NumViews)
		got := make([]int32, ix.NumViews)
		for _, ratio := range []float64{0.5, 0.8, 1.0} {
			ix.GoodMatchCounts(query, ratio, want)
			mi.GoodMatchCounts(query, ratio, got)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("trial %d ratio %v view %d: %d != %d", trial, ratio, v, got[v], want[v])
				}
			}
		}
	}
}

// TestIVFDegenerateClustersExact drives the non-delegating IVF scan
// where equality is provable: all rows identical means k-means
// collapses every row into the lowest-index cluster, so nprobe=1 scans
// the whole gallery and must reproduce the flat counts exactly. The
// remaining lists are empty — the degenerate-cluster path.
func TestIVFDegenerateClustersExact(t *testing.T) {
	row := []float32{3, 1, 4, 1, 5, 9}
	sets := make([]*features.Set, 5)
	for v := range sets {
		s := &features.Set{}
		for i := 0; i < 4; i++ {
			s.Float = append(s.Float, append([]float32(nil), row...))
			s.Keypoints = append(s.Keypoints, features.Keypoint{})
		}
		sets[v] = s
	}
	ix := NewDescriptorIndex(sets)
	iv := NewIVFIndex(ix, IVFParams{NLists: 4, NProbe: 1})
	if iv.full {
		t.Fatal("nprobe=1 of nlists=4 must not delegate")
	}
	r := rng.New(7)
	query := randFloatSet(r, 6, 6, 12)
	want := make([]int32, ix.NumViews)
	got := make([]int32, ix.NumViews)
	ix.GoodMatchCounts(query, 0.9, want)
	iv.GoodMatchCounts(query, 0.9, got)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("view %d: %d != %d", v, got[v], want[v])
		}
	}
}

// TestBuildMatchIndexFallbacks: wrong representation or an empty index
// must fall back to the flat scan rather than build a dead backend.
func TestBuildMatchIndexFallbacks(t *testing.T) {
	r := rng.New(11)
	floatIx := NewDescriptorIndex([]*features.Set{randFloatSet(r, 4, 6, 8)})
	binIx := NewDescriptorIndex([]*features.Set{randBinarySet(r, 4, 32)})
	emptyIx := NewDescriptorIndex(nil)

	if mi := buildMatchIndex(floatIx, IndexSpec{Kind: MIHKind}); mi != MatchIndex(floatIx) {
		t.Fatal("MIH over float rows must fall back to the flat index")
	}
	if _, ok := buildMatchIndex(binIx, IndexSpec{Kind: IVFKind}).(*IVFIndex); !ok {
		t.Fatal("IVF over binary rows must build the Hamming-quantized backend")
	}
	if mi := buildMatchIndex(emptyIx, IndexSpec{Kind: MIHKind}); mi != MatchIndex(emptyIx) {
		t.Fatal("empty gallery must fall back to the flat index")
	}
	if k := floatIx.IndexKind(); k != ExactKind {
		t.Fatalf("flat index kind = %v", k)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("representation-mismatched constructor did not panic")
			}
		}()
		NewMIHIndex(floatIx, MIHParams{})
	}()
}

// TestIndexSpecValidateAndParse covers the config surface: kind
// parsing, the String round-trip, and rejected parameter combinations.
func TestIndexSpecValidateAndParse(t *testing.T) {
	for _, k := range []IndexKind{ExactKind, MIHKind, IVFKind} {
		got, err := ParseIndexKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseIndexKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseIndexKind("annoy"); err == nil {
		t.Fatal("unknown kind must error")
	}
	if k, err := ParseIndexKind(""); err != nil || k != ExactKind {
		t.Fatalf("empty kind = %v, %v", k, err)
	}

	bad := []IndexSpec{
		{Kind: MIHKind, MIH: MIHParams{SubstrBits: 12}},            // does not divide 64
		{Kind: MIHKind, MIH: MIHParams{SubstrBits: 32}},            // tables too large
		{Kind: MIHKind, MIH: MIHParams{SubstrBits: 16, Radius: 3}}, // unsupported radius
		{Kind: IVFKind, IVF: IVFParams{NLists: -1}},
		{Kind: IVFKind, IVF: IVFParams{NProbe: -2}},
		{Kind: IndexKind(99)},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("spec %d (%+v) must fail validation", i, s)
		}
	}
	good := []IndexSpec{
		{Kind: ExactKind},
		{Kind: MIHKind},
		{Kind: MIHKind, MIH: MIHParams{SubstrBits: 8, Radius: 2}},
		{Kind: MIHKind, MIH: MIHParams{SubstrBits: 16, Radius: 16}}, // exact full probe
		{Kind: IVFKind},
		{Kind: IVFKind, IVF: IVFParams{NLists: 32, NProbe: 64}},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Fatalf("spec %d (%+v): %v", i, s, err)
		}
	}
	if got := (IndexSpec{Kind: MIHKind}).String(); got != "mih(bits=16,radius=1)" {
		t.Fatalf("mih spec string = %q", got)
	}
	if got := (IndexSpec{Kind: IVFKind}).String(); !strings.Contains(got, "ivf(") {
		t.Fatalf("ivf spec string = %q", got)
	}
}

// TestMixedRepresentationQueryPanics pins the backends to the flat
// scan's error contract for mismatched queries.
func TestMixedRepresentationQueryPanics(t *testing.T) {
	r := rng.New(23)
	binIx := NewDescriptorIndex([]*features.Set{randBinarySet(r, 4, 32), randBinarySet(r, 4, 32)})
	mih := NewMIHIndex(binIx, MIHParams{})
	floatIx := NewDescriptorIndex([]*features.Set{randFloatSet(r, 4, 6, 8), randFloatSet(r, 4, 6, 8)})
	ivf := NewIVFIndex(floatIx, IVFParams{NLists: 2, NProbe: 1})
	counts := make([]int32, 2)
	for name, fn := range map[string]func(){
		"mih-float-query":  func() { mih.GoodMatchCounts(randFloatSet(r, 3, 6, 8), 0.8, counts) },
		"ivf-binary-query": func() { ivf.GoodMatchCounts(randBinarySet(r, 3, 32), 0.8, counts) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: mixed representation did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestGalleryIndexSpecPlumbing exercises the serving surface end to
// end: SetIndexSpec builds (and caches) the right backend per kind,
// falls back where the representation does not match, and a spec change
// drops the stale backend.
func TestGalleryIndexSpecPlumbing(t *testing.T) {
	g := NewGalleryWorkers(dataset.BuildLarge(6, 3, 5), 0)
	params := DefaultDescriptorParams()
	g.PrepareDescriptorsWorkers(ORB, params, 0)
	g.PrepareDescriptorsWorkers(SIFT, params, 0)

	if spec := g.IndexSpec(); spec.Kind != ExactKind {
		t.Fatalf("default spec = %v", spec)
	}
	if k := g.MatchIndexFor(ORB, params).IndexKind(); k != ExactKind {
		t.Fatalf("default ORB backend = %v", k)
	}

	if err := g.SetIndexSpec(IndexSpec{Kind: MIHKind}); err != nil {
		t.Fatal(err)
	}
	if k := g.MatchIndexFor(ORB, params).IndexKind(); k != MIHKind {
		t.Fatalf("ORB backend under mih spec = %v", k)
	}
	// SIFT rows are float: the MIH spec cannot apply and must fall back.
	if k := g.MatchIndexFor(SIFT, params).IndexKind(); k != ExactKind {
		t.Fatalf("SIFT backend under mih spec = %v", k)
	}
	mi := g.MatchIndexFor(ORB, params)
	if again := g.MatchIndexFor(ORB, params); again != mi {
		t.Fatal("backend not cached across calls")
	}

	if err := g.SetIndexSpec(IndexSpec{Kind: IVFKind}); err != nil {
		t.Fatal(err)
	}
	// IVF quantizes both representations: binary ORB rows get the
	// Hamming k-majority quantizer, float SIFT rows the L2 one.
	if k := g.MatchIndexFor(ORB, params).IndexKind(); k != IVFKind {
		t.Fatalf("ORB backend under ivf spec = %v", k)
	}
	if k := g.MatchIndexFor(SIFT, params).IndexKind(); k != IVFKind {
		t.Fatalf("SIFT backend under ivf spec = %v", k)
	}

	if err := g.SetIndexSpec(IndexSpec{Kind: MIHKind, MIH: MIHParams{SubstrBits: 12}}); err == nil {
		t.Fatal("invalid spec must be rejected")
	}
}

// TestANNFullProbePredictionsBitIdentical runs whole classifications —
// extraction, backend scan, argmax — through ShardedGallery at workers
// 1, 4 and 16 with full-probe specs, and requires the exact flat-scan
// prediction for every query. Run under -race this is also the
// concurrency soak for the backend caches and pooled scratch.
func TestANNFullProbePredictionsBitIdentical(t *testing.T) {
	g := NewGalleryWorkers(dataset.BuildLarge(8, 3, 3), 0)
	params := DefaultDescriptorParams()
	g.PrepareDescriptorsWorkers(ORB, params, 0)
	g.PrepareDescriptorsWorkers(SIFT, params, 0)
	queries := dataset.BuildLarge(8, 2, 77) // fresh seed: unseen renders

	type run struct {
		kind DescriptorKind
		spec IndexSpec
	}
	runs := []run{
		{ORB, fullProbeMIH},
		{SIFT, fullProbeIVF},
	}
	for _, rn := range runs {
		p := NewDescriptor(rn.kind, 0.5)
		if err := g.SetIndexSpec(IndexSpec{Kind: ExactKind}); err != nil {
			t.Fatal(err)
		}
		want := make([]Prediction, queries.Len())
		for i, q := range queries.Samples {
			want[i] = p.Classify(q.Image, g)
		}
		if err := g.SetIndexSpec(rn.spec); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, 16} {
			sg := NewShardedGallery(g, workers)
			got := make([]Prediction, queries.Len())
			parallel.ForEach(workers, queries.Len(), func(i int) {
				got[i] = sg.Classify(p, queries.Samples[i].Image)
			})
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v workers=%d query %d: %+v != %+v",
						rn.spec, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestANNDefaultSettingsRecallFloor is the recall@1 regression gate at
// the default approximate settings: over a scaled synthetic gallery the
// MIH and IVF predictions must agree with the exact scan on at least 95%
// of queries — the floor the CI smoke also enforces. Queries are unseen
// poses of the enrolled models (the serving regime: novel viewpoints of
// known objects), rendered at 128px so views carry enough keypoints for
// sharp match-score margins.
func TestANNDefaultSettingsRecallFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("gallery build is seconds-scale")
	}
	g := NewGalleryWorkers(dataset.BuildLargeAt(12, 6, 128, 9), 0)
	params := DefaultDescriptorParams()
	g.PrepareDescriptorsWorkers(ORB, params, 0)
	g.PrepareDescriptorsWorkers(SIFT, params, 0)
	queries := dataset.BuildLargeQueriesAt(12, 3, 128, 9)

	const floor = 0.95
	for _, rn := range []struct {
		kind DescriptorKind
		spec IndexSpec
	}{
		{ORB, IndexSpec{Kind: MIHKind}},
		{SIFT, IndexSpec{Kind: IVFKind}},
	} {
		p := NewDescriptor(rn.kind, 0.5)
		if err := g.SetIndexSpec(IndexSpec{Kind: ExactKind}); err != nil {
			t.Fatal(err)
		}
		exact := make([]Prediction, queries.Len())
		for i, q := range queries.Samples {
			exact[i] = p.Classify(q.Image, g)
		}
		if err := g.SetIndexSpec(rn.spec); err != nil {
			t.Fatal(err)
		}
		agree := 0
		for i, q := range queries.Samples {
			if p.Classify(q.Image, g).Index == exact[i].Index {
				agree++
			}
		}
		recall := float64(agree) / float64(queries.Len())
		t.Logf("%s %v: recall@1 %.3f (%d/%d)", rn.kind, rn.spec, recall, agree, queries.Len())
		if recall < floor {
			t.Fatalf("%s %v: recall@1 %.3f below the %.2f floor", rn.kind, rn.spec, recall, floor)
		}
	}
}

// TestLargeGalleryShape pins the scaled-taxonomy helper: deterministic,
// class-distinct, and sized classes x viewsPerClass.
func TestLargeGalleryShape(t *testing.T) {
	a := dataset.BuildLarge(13, 4, 5)
	b := dataset.BuildLarge(13, 4, 5)
	if a.Len() != 13*4 || b.Len() != a.Len() {
		t.Fatalf("size %d != %d", a.Len(), 13*4)
	}
	for i := range a.Samples {
		sa, sb := a.Samples[i], b.Samples[i]
		if sa.Class != sb.Class || sa.Model != sb.Model || sa.View != sb.View {
			t.Fatalf("sample %d metadata not deterministic", i)
		}
		ia, ib := sa.Image, sb.Image
		if ia.W != ib.W || ia.H != ib.H {
			t.Fatalf("sample %d image shape not deterministic", i)
		}
		for j := range ia.Pix {
			if ia.Pix[j] != ib.Pix[j] {
				t.Fatalf("sample %d pixels not deterministic", i)
			}
		}
	}
	// Classes beyond the Table 1 ten stay representable and countable.
	if c := a.Samples[a.Len()-1].Class; int(c) != 12 {
		t.Fatalf("last class = %d", int(c))
	}
	_ = a.CountByClass() // must not panic on classes >= NumClasses
	if dataset.BuildLarge(0, 4, 5).Len() != 0 {
		t.Fatal("zero classes must yield an empty set")
	}
}
