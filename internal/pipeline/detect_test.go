package pipeline

import (
	"testing"

	"snmatch/internal/geom"
	"snmatch/internal/histogram"
	"snmatch/internal/moments"
	"snmatch/internal/rng"
	"snmatch/internal/synth"
)

// iou returns intersection-over-union of two boxes.
func iou(a, b geom.Rect) float64 {
	inter := a.Intersect(b).Area()
	if inter == 0 {
		return 0
	}
	return float64(inter) / float64(a.Area()+b.Area()-inter)
}

// TestDetectSceneFindsObjects composes a clean 3-object scene and
// requires every ground-truth box to be covered by a proposal with
// IoU >= 0.5, and the per-region classifications to carry real labels.
func TestDetectSceneFindsObjects(t *testing.T) {
	sc := synth.ComposeSceneP(synth.SceneParams{
		W: 320, H: 240, Seed: 11,
		Classes: []synth.Class{synth.Chair, synth.Bottle, synth.Lamp},
	})
	dets := Detect(sc.Image, DefaultHybrid(WeightedSum), gallery1, DetectParams{})
	if len(dets) < len(sc.Objects) {
		t.Fatalf("detections = %d, want >= %d", len(dets), len(sc.Objects))
	}
	for i, obj := range sc.Objects {
		best := 0.0
		for _, d := range dets {
			if v := iou(obj.Box, d.Box); v > best {
				best = v
			}
		}
		if best < 0.5 {
			t.Errorf("object %d (%v): best IoU = %.2f, want >= 0.5", i, obj.Class, best)
		}
	}
	for i, d := range dets {
		if d.Index < 0 {
			t.Errorf("detection %d: no winning view", i)
		}
		t.Logf("detection %d: box=%+v class=%v score=%.3f", i, d.Box, d.Class, d.Score)
	}
}

// TestDetectParallelSerialIdentity is the house determinism rule for
// the detector: randomized scenes (occlusion, noise, clutter, varying
// object counts) must produce bit-identical detection lists at workers
// 1, 4 and 16, for stateless pipelines and the stateful serial
// fallback alike.
func TestDetectParallelSerialIdentity(t *testing.T) {
	r := rng.New(77)
	pipes := []Pipeline{
		DefaultHybrid(WeightedSum),
		ShapeOnly{Method: moments.MatchI3},
		ColorOnly{Metric: histogram.Hellinger},
		NewDescriptor(ORB, 0.5),
	}
	for round := 0; round < 4; round++ {
		n := r.IntRange(1, 4)
		classes := make([]synth.Class, n)
		for i := range classes {
			classes[i] = synth.AllClasses[r.Intn(len(synth.AllClasses))]
		}
		sp := synth.SceneParams{
			W: 280, H: 200, Seed: uint64(round + 1),
			Classes:   classes,
			Occlusion: r.Range(0, 0.5),
			Clutter:   r.Intn(4),
		}
		if r.Bool(0.5) {
			sp.NoiseSigma = r.Range(0, 8)
		}
		sc := synth.ComposeSceneP(sp)
		for _, pl := range pipes {
			base := Detect(sc.Image, pl, gallery1, DetectParams{Workers: 1})
			for _, workers := range []int{4, 16} {
				got := Detect(sc.Image, pl, gallery1, DetectParams{Workers: workers})
				if len(got) != len(base) {
					t.Fatalf("round %d %s workers=%d: %d detections, serial has %d",
						round, pl.Name(), workers, len(got), len(base))
				}
				for i := range base {
					if got[i] != base[i] {
						t.Fatalf("round %d %s workers=%d detection %d: %+v, serial %+v",
							round, pl.Name(), workers, i, got[i], base[i])
					}
				}
			}
		}
	}
}

// TestDetectStatefulPipelineDeterministic pins the Forker fallback: a
// stateful pipeline detects serially regardless of the worker request,
// so equal-seeded pipelines produce equal detections at any count.
func TestDetectStatefulPipelineDeterministic(t *testing.T) {
	sc := synth.ComposeSceneP(synth.SceneParams{
		W: 320, H: 240, Seed: 5,
		Classes: []synth.Class{synth.Chair, synth.Sofa, synth.Table},
	})
	base := Detect(sc.Image, NewRandom(9), gallery1, DetectParams{Workers: 1})
	for _, workers := range []int{4, 16} {
		got := Detect(sc.Image, NewRandom(9), gallery1, DetectParams{Workers: workers})
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d detections, want %d", workers, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d detection %d: %+v, serial %+v", workers, i, got[i], base[i])
			}
		}
	}
}

// TestDetectEdgeCases sweeps the degenerate scenes: an empty scene
// (clutter only) proposes nothing, and two stacked objects merge into
// a single foreground blob and hence a single region.
func TestDetectEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		sc := synth.ComposeSceneP(synth.SceneParams{W: 200, H: 160, Seed: 2, Clutter: 6})
		if regions := ProposeRegions(sc.Image, DetectParams{}); len(regions) != 0 {
			t.Errorf("empty scene proposed %d regions: %+v", len(regions), regions)
		}
		if dets := Detect(sc.Image, DefaultHybrid(WeightedSum), gallery1, DetectParams{}); len(dets) != 0 {
			t.Errorf("empty scene detected %d objects", len(dets))
		}
	})
	t.Run("stacked", func(t *testing.T) {
		sc := synth.ComposeSceneP(synth.SceneParams{
			W: 160, H: 160, Seed: 3,
			Classes:   []synth.Class{synth.Bottle, synth.Chair},
			Occlusion: 1,
		})
		if sc.Objects[0].Occluded < 0.2 {
			t.Fatalf("fixture: first object barely occluded (%v)", sc.Objects[0].Occluded)
		}
		regions := ProposeRegions(sc.Image, DetectParams{})
		if len(regions) != 1 {
			t.Errorf("stacked objects proposed %d regions, want 1: %+v", len(regions), regions)
		}
	})
}

// TestProposeCropsMasksBackground checks the NYU-style masking: crop
// pixels outside the foreground mask are black, and enough object
// pixels survive for downstream preprocessing.
func TestProposeCropsMasksBackground(t *testing.T) {
	sc := synth.ComposeSceneP(synth.SceneParams{
		W: 320, H: 240, Seed: 7,
		Classes: []synth.Class{synth.Chair, synth.Bottle},
	})
	regions, crops := ProposeCrops(sc.Image, DetectParams{})
	if len(regions) != len(crops) {
		t.Fatalf("regions %d != crops %d", len(regions), len(crops))
	}
	for i, crop := range crops {
		var object int
		for p := 0; p < crop.W*crop.H; p++ {
			if crop.Pix[3*p] != 0 || crop.Pix[3*p+1] != 0 || crop.Pix[3*p+2] != 0 {
				object++
			}
		}
		if object < 50 {
			t.Errorf("crop %d: only %d foreground pixels", i, object)
		}
		// Corners sit on padded background and must be masked black.
		if c := crop.At(0, 0); c.R != 0 || c.G != 0 || c.B != 0 {
			t.Errorf("crop %d: corner not masked: %+v", i, c)
		}
	}
}
