package pipeline

import (
	"io"

	"snmatch/internal/dataset"
	"snmatch/internal/imaging"
	"snmatch/internal/nn"
	"snmatch/internal/parallel"
)

// Neural is the §3.4 pipeline: the Normalized-X-Corr Siamese network
// scores the query against every gallery view and the class of the view
// with the highest similarity probability wins. It also exposes the
// binary pair-classification interface evaluated in Table 4.
type Neural struct {
	Net *nn.NXCorrNet

	// shared holds pre-filled input tensors (gallery views, pair-set
	// images). It is immutable once published, so forks read it
	// lock-free instead of re-converting the same images per worker.
	shared      map[*imaging.Image]*nn.Tensor
	tensorCache map[*imaging.Image]*nn.Tensor
}

// NewNeural wraps a trained network.
func NewNeural(net *nn.NXCorrNet) *Neural {
	return &Neural{Net: net, tensorCache: map[*imaging.Image]*nn.Tensor{}}
}

// Name implements Pipeline.
func (p *Neural) Name() string { return "Normalized-X-Corr" }

// Fork implements Forker: the clone shares the trained weights and the
// immutable pre-filled tensor cache but owns private layer scratch
// buffers and a private lazy cache, so workers classify concurrently
// with bit-identical outputs. Inference consumes no random state, so
// the chunk offset is irrelevant.
func (p *Neural) Fork(int) Pipeline {
	return &Neural{Net: p.Net.SharedClone(), shared: p.shared, tensorCache: map[*imaging.Image]*nn.Tensor{}}
}

// Advance implements Forker as a no-op: inference consumes no
// sequential state, so skipping classifications changes nothing.
func (p *Neural) Advance(int, *Gallery) {}

// Prepare implements Preparer: converting every gallery view to its
// input tensor once, across the pool, keeps per-worker forks from each
// redoing the whole gallery's ImageToTensor work.
func (p *Neural) Prepare(g *Gallery, workers int) {
	imgs := make([]*imaging.Image, g.Len())
	for i := range g.Views {
		imgs[i] = g.Views[i].Sample.Image
	}
	p.prefill(imgs, workers)
}

// prefill converts every image not yet in the shared cache across the
// pool and publishes a new immutable shared map including them. The
// conversion is pure, so the tensors are identical to what any lazy
// path would produce.
func (p *Neural) prefill(imgs []*imaging.Image, workers int) {
	seen := make(map[*imaging.Image]bool, len(imgs))
	var missing, promoted []*imaging.Image
	for _, img := range imgs {
		if img == nil || seen[img] {
			continue
		}
		seen[img] = true
		if _, ok := p.shared[img]; ok {
			continue
		}
		// Tensors already converted lazily are promoted into the shared
		// map instead of being re-converted (and left pinned as stale
		// duplicates in tensorCache).
		if _, ok := p.tensorCache[img]; ok {
			promoted = append(promoted, img)
			continue
		}
		missing = append(missing, img)
	}
	if len(missing) == 0 && len(promoted) == 0 {
		return
	}
	tensors := parallel.Map(workers, len(missing), func(i int) *nn.Tensor {
		return nn.ImageToTensor(missing[i], p.Net.Cfg.InputH, p.Net.Cfg.InputW)
	})
	merged := make(map[*imaging.Image]*nn.Tensor, len(p.shared)+len(promoted)+len(missing))
	for k, v := range p.shared {
		merged[k] = v
	}
	for _, img := range promoted {
		merged[img] = p.tensorCache[img]
		delete(p.tensorCache, img)
	}
	for i, img := range missing {
		merged[img] = tensors[i]
	}
	p.shared = merged
}

// tensorOf converts (and caches) an image into the network's input
// tensor.
func (p *Neural) tensorOf(img *imaging.Image) *nn.Tensor {
	if t, ok := p.shared[img]; ok {
		return t
	}
	if t, ok := p.tensorCache[img]; ok {
		return t
	}
	t := nn.ImageToTensor(img, p.Net.Cfg.InputH, p.Net.Cfg.InputW)
	p.tensorCache[img] = t
	return t
}

// Classify implements Pipeline.
func (p *Neural) Classify(img *imaging.Image, g *Gallery) Prediction {
	q := p.tensorOf(img)
	best := Prediction{Index: -1, Score: -1}
	for i := range g.Views {
		prob := p.Net.PredictPair(q, p.tensorOf(g.Views[i].Sample.Image))
		if prob > best.Score {
			best = Prediction{Class: g.ClassOf(i), Index: i, Score: prob}
		}
	}
	return best
}

// PredictSimilar classifies a single pair as similar (probability of
// the "similar" class above 0.5), the Table 4 task.
func (p *Neural) PredictSimilar(a, b *imaging.Image) bool {
	return p.Net.PredictPair(p.tensorOf(a), p.tensorOf(b)) >= 0.5
}

// ClassifyPairs runs the binary task over a pair list, returning
// predictions and ground truth for eval.EvaluatePairs.
func (p *Neural) ClassifyPairs(pairs []dataset.Pair, setA, setB *dataset.Set) (pred, truth []bool) {
	pred = make([]bool, len(pairs))
	truth = make([]bool, len(pairs))
	for i, pr := range pairs {
		pred[i] = p.PredictSimilar(setA.Samples[pr.A].Image, setB.Samples[pr.B].Image)
		truth[i] = pr.Similar
	}
	return pred, truth
}

// ClassifyPairsParallel is the pooled counterpart of ClassifyPairs:
// pair chunks are scored by per-worker network clones, with results
// identical to the serial sweep. workers <= 0 selects one worker per
// CPU.
func (p *Neural) ClassifyPairsParallel(pairs []dataset.Pair, setA, setB *dataset.Set, workers int) (pred, truth []bool) {
	n := len(pairs)
	w := parallel.Clamp(workers, n)
	if w <= 1 {
		return p.ClassifyPairs(pairs, setA, setB)
	}
	imgs := make([]*imaging.Image, 0, 2*n)
	for _, pr := range pairs {
		imgs = append(imgs, setA.Samples[pr.A].Image, setB.Samples[pr.B].Image)
	}
	p.prefill(imgs, w)
	pred = make([]bool, n)
	truth = make([]bool, n)
	parallel.ForEachChunk(w, n, func(_ int, s parallel.Span) {
		wp := p.Fork(s.Start).(*Neural)
		for i := s.Start; i < s.End; i++ {
			pr := pairs[i]
			pred[i] = wp.PredictSimilar(setA.Samples[pr.A].Image, setB.Samples[pr.B].Image)
			truth[i] = pr.Similar
		}
	})
	return pred, truth
}

// TrainNeural trains a fresh NXCorr network on a pair set drawn from
// the given dataset, following the §3.4 protocol. The log writer may be
// nil.
func TrainNeural(cfg nn.NXCorrConfig, s *dataset.Set, pairs []dataset.Pair, fit nn.FitConfig, log io.Writer) (*Neural, nn.FitResult, error) {
	net, err := nn.NewNXCorrNet(cfg)
	if err != nil {
		return nil, nn.FitResult{}, err
	}
	// Convert unique images once.
	cache := map[int]*nn.Tensor{}
	tensorOf := func(i int) *nn.Tensor {
		if t, ok := cache[i]; ok {
			return t
		}
		t := nn.ImageToTensor(s.Samples[i].Image, cfg.InputH, cfg.InputW)
		cache[i] = t
		return t
	}
	a := make([]*nn.Tensor, len(pairs))
	b := make([]*nn.Tensor, len(pairs))
	labels := make([]int, len(pairs))
	for i, pr := range pairs {
		a[i] = tensorOf(pr.A)
		b[i] = tensorOf(pr.B)
		if pr.Similar {
			labels[i] = 1
		}
	}
	fit.Log = log
	res := net.Fit(a, b, labels, fit)
	return NewNeural(net), res, nil
}
