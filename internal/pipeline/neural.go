package pipeline

import (
	"io"

	"snmatch/internal/dataset"
	"snmatch/internal/imaging"
	"snmatch/internal/nn"
)

// Neural is the §3.4 pipeline: the Normalized-X-Corr Siamese network
// scores the query against every gallery view and the class of the view
// with the highest similarity probability wins. It also exposes the
// binary pair-classification interface evaluated in Table 4.
type Neural struct {
	Net *nn.NXCorrNet

	tensorCache map[*imaging.Image]*nn.Tensor
}

// NewNeural wraps a trained network.
func NewNeural(net *nn.NXCorrNet) *Neural {
	return &Neural{Net: net, tensorCache: map[*imaging.Image]*nn.Tensor{}}
}

// Name implements Pipeline.
func (p *Neural) Name() string { return "Normalized-X-Corr" }

// tensorOf converts (and caches) an image into the network's input
// tensor.
func (p *Neural) tensorOf(img *imaging.Image) *nn.Tensor {
	if t, ok := p.tensorCache[img]; ok {
		return t
	}
	t := nn.ImageToTensor(img, p.Net.Cfg.InputH, p.Net.Cfg.InputW)
	p.tensorCache[img] = t
	return t
}

// Classify implements Pipeline.
func (p *Neural) Classify(img *imaging.Image, g *Gallery) Prediction {
	q := p.tensorOf(img)
	best := Prediction{Index: -1, Score: -1}
	for i := range g.Views {
		prob := p.Net.PredictPair(q, p.tensorOf(g.Views[i].Sample.Image))
		if prob > best.Score {
			best = Prediction{Class: g.ClassOf(i), Index: i, Score: prob}
		}
	}
	return best
}

// PredictSimilar classifies a single pair as similar (probability of
// the "similar" class above 0.5), the Table 4 task.
func (p *Neural) PredictSimilar(a, b *imaging.Image) bool {
	return p.Net.PredictPair(p.tensorOf(a), p.tensorOf(b)) >= 0.5
}

// ClassifyPairs runs the binary task over a pair list, returning
// predictions and ground truth for eval.EvaluatePairs.
func (p *Neural) ClassifyPairs(pairs []dataset.Pair, setA, setB *dataset.Set) (pred, truth []bool) {
	pred = make([]bool, len(pairs))
	truth = make([]bool, len(pairs))
	for i, pr := range pairs {
		pred[i] = p.PredictSimilar(setA.Samples[pr.A].Image, setB.Samples[pr.B].Image)
		truth[i] = pr.Similar
	}
	return pred, truth
}

// TrainNeural trains a fresh NXCorr network on a pair set drawn from
// the given dataset, following the §3.4 protocol. The log writer may be
// nil.
func TrainNeural(cfg nn.NXCorrConfig, s *dataset.Set, pairs []dataset.Pair, fit nn.FitConfig, log io.Writer) (*Neural, nn.FitResult, error) {
	net, err := nn.NewNXCorrNet(cfg)
	if err != nil {
		return nil, nn.FitResult{}, err
	}
	// Convert unique images once.
	cache := map[int]*nn.Tensor{}
	tensorOf := func(i int) *nn.Tensor {
		if t, ok := cache[i]; ok {
			return t
		}
		t := nn.ImageToTensor(s.Samples[i].Image, cfg.InputH, cfg.InputW)
		cache[i] = t
		return t
	}
	a := make([]*nn.Tensor, len(pairs))
	b := make([]*nn.Tensor, len(pairs))
	labels := make([]int, len(pairs))
	for i, pr := range pairs {
		a[i] = tensorOf(pr.A)
		b[i] = tensorOf(pr.B)
		if pr.Similar {
			labels[i] = 1
		}
	}
	fit.Log = log
	res := net.Fit(a, b, labels, fit)
	return NewNeural(net), res, nil
}
