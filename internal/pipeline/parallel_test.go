package pipeline

import (
	"reflect"
	"sync"
	"testing"

	"snmatch/internal/dataset"
	"snmatch/internal/histogram"
	"snmatch/internal/moments"
	"snmatch/internal/nn"
	"snmatch/internal/synth"
)

// poolSizes are the worker counts every determinism test sweeps,
// covering the serial fallback, a partial pool and an oversubscribed
// pool (16 > query count for the small sets).
var poolSizes = []int{1, 4, 16}

func classesEqual(t *testing.T, label string, serial, par []synth.Class) {
	t.Helper()
	if len(serial) != len(par) {
		t.Fatalf("%s: length %d != %d", label, len(par), len(serial))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Errorf("%s: prediction %d = %v, serial %v", label, i, par[i], serial[i])
		}
	}
}

// statelessPipelines lists one configuration per stateless family.
func statelessPipelines() []Pipeline {
	return []Pipeline{
		ShapeOnly{Method: moments.MatchI3},
		ColorOnly{Metric: histogram.Hellinger},
		DefaultHybrid(WeightedSum),
		DefaultHybrid(MicroAvg),
		DefaultHybrid(MacroAvg),
		NewKNNVote(3),
	}
}

func TestRunParallelMatchesSerialStateless(t *testing.T) {
	for _, p := range statelessPipelines() {
		serialPred, serialTruth := Run(p, sns2, gallery1)
		for _, w := range poolSizes {
			pred, truth := RunParallel(p, sns2, gallery1, w)
			classesEqual(t, p.Name()+" pred", serialPred, pred)
			classesEqual(t, p.Name()+" truth", serialTruth, truth)
		}
	}
}

func TestRunParallelMatchesSerialRandom(t *testing.T) {
	// The baseline consumes an RNG stream: forked workers must replay
	// the serial draw sequence exactly, so fresh instances with equal
	// seeds produce identical predictions at every pool size.
	serialPred, _ := Run(NewRandom(9), sns2, gallery1)
	for _, w := range poolSizes {
		pred, _ := RunParallel(NewRandom(9), sns2, gallery1, w)
		classesEqual(t, "Baseline", serialPred, pred)
	}
}

func TestRunParallelSequenceMatchesSerialSequence(t *testing.T) {
	// Successive runs on ONE stateful pipeline instance must stay
	// aligned with successive serial runs: RunParallel advances the
	// parent past its sweep, so the second sweep continues the RNG
	// stream exactly where a serial first sweep would have left it.
	serial := NewRandom(13)
	s1, _ := Run(serial, sns2, gallery1)
	s2, _ := Run(serial, sns2, gallery1)
	for _, w := range poolSizes {
		par := NewRandom(13)
		p1, _ := RunParallel(par, sns2, gallery1, w)
		p2, _ := RunParallel(par, sns2, gallery1, w)
		classesEqual(t, "sweep 1", s1, p1)
		classesEqual(t, "sweep 2", s2, p2)
	}
	// Mixed serial/parallel sequences align too.
	mixed := NewRandom(13)
	m1, _ := RunParallel(mixed, sns2, gallery1, 4)
	m2, _ := Run(mixed, sns2, gallery1)
	classesEqual(t, "mixed sweep 1", s1, m1)
	classesEqual(t, "mixed sweep 2", s2, m2)
}

func TestRunParallelSequenceAcrossGallerySizes(t *testing.T) {
	// Advance records the sweep's own gallery size, so deferred replay
	// stays aligned with serial even when later sweeps use a gallery of
	// a different size (Intn's draw cost depends on its bound).
	small := NewGallery(&dataset.Set{Name: "small", Samples: sns1.Samples[:7]})
	serial := NewRandom(21)
	s1, _ := Run(serial, sns2, gallery1)
	s2, _ := Run(serial, sns2, small)
	s3, _ := Run(serial, sns2, gallery1)
	par := NewRandom(21)
	p1, _ := RunParallel(par, sns2, gallery1, 4)
	p2, _ := RunParallel(par, sns2, small, 3)
	p3, _ := Run(par, sns2, gallery1)
	classesEqual(t, "cross-size sweep 1", s1, p1)
	classesEqual(t, "cross-size sweep 2", s2, p2)
	classesEqual(t, "cross-size sweep 3", s3, p3)
}

func TestRunParallelMatchesSerialDescriptor(t *testing.T) {
	// Small gallery keeps brute-force matching fast; the parallel run
	// also exercises Preparer-driven descriptor prefill.
	small := NewGallery(&dataset.Set{Name: "small", Samples: sns1.Samples[:12]})
	queries := &dataset.Set{Name: "q", Samples: sns2.Samples[:10]}
	p := NewDescriptor(ORB, 0.75)
	serialPred, _ := Run(p, queries, small)
	for _, w := range poolSizes {
		fresh := NewGallery(&dataset.Set{Name: "small", Samples: sns1.Samples[:12]})
		pred, _ := RunParallel(NewDescriptor(ORB, 0.75), queries, fresh, w)
		classesEqual(t, "ORB", serialPred, pred)
	}
}

func trainTinyNeural(t *testing.T) *Neural {
	t.Helper()
	cfg := nn.NXCorrConfig{
		InputH: 16, InputW: 16, InputC: 3,
		Conv1Out: 4, Conv2Out: 4, Kernel: 3,
		Patch: 3, SearchW: 3, SearchH: 3,
		Conv3Out: 4, Hidden: 16, Seed: 5,
	}
	pairs := dataset.TrainPairs(sns2, 32, 0.5, 11)
	fit := nn.FitConfig{Epochs: 1, BatchSize: 8, LR: 1e-3, EarlyEps: 1e-9, Patience: 5, Seed: 2}
	neural, _, err := TrainNeural(cfg, sns2, pairs, fit, nil)
	if err != nil {
		t.Fatal(err)
	}
	return neural
}

func TestRunParallelMatchesSerialNeural(t *testing.T) {
	if testing.Short() {
		t.Skip("neural training")
	}
	neural := trainTinyNeural(t)
	small := NewGallery(&dataset.Set{Name: "g", Samples: sns1.Samples[:10]})
	queries := &dataset.Set{Name: "q", Samples: sns2.Samples[:8]}
	serialPred, _ := Run(neural, queries, small)
	for _, w := range poolSizes {
		pred, _ := RunParallel(neural, queries, small, w)
		classesEqual(t, "NXCorr", serialPred, pred)
	}

	// The pooled binary pair task must match the serial sweep too.
	pairs := dataset.AllPairs(queries)
	serialBP, serialBT := neural.ClassifyPairs(pairs, queries, queries)
	for _, w := range poolSizes {
		bp, bt := neural.ClassifyPairsParallel(pairs, queries, queries, w)
		if !reflect.DeepEqual(serialBP, bp) || !reflect.DeepEqual(serialBT, bt) {
			t.Errorf("workers=%d: pair classification diverged from serial", w)
		}
	}
}

func TestNewGalleryWorkersIdenticalViewForView(t *testing.T) {
	base := NewGalleryWorkers(sns1, 1)
	for _, w := range []int{2, 8, 64} {
		g := NewGalleryWorkers(sns1, w)
		if g.Len() != base.Len() {
			t.Fatalf("workers=%d: gallery size %d != %d", w, g.Len(), base.Len())
		}
		for i := range g.Views {
			if g.Views[i].Hu != base.Views[i].Hu {
				t.Errorf("workers=%d view %d: Hu diverged", w, i)
			}
			if !reflect.DeepEqual(g.Views[i].Hist, base.Views[i].Hist) {
				t.Errorf("workers=%d view %d: histogram diverged", w, i)
			}
			if !reflect.DeepEqual(g.Views[i].Sample, base.Views[i].Sample) {
				t.Errorf("workers=%d view %d: sample diverged", w, i)
			}
		}
	}
}

func TestPrepareDescriptorsWorkersIdentical(t *testing.T) {
	set := &dataset.Set{Name: "small", Samples: sns1.Samples[:10]}
	params := DefaultDescriptorParams()
	base := NewGalleryWorkers(set, 1)
	base.PrepareDescriptorsWorkers(ORB, params, 1)
	par := NewGalleryWorkers(set, 4)
	par.PrepareDescriptorsWorkers(ORB, params, 8)
	for i := range base.Views {
		if !reflect.DeepEqual(base.Views[i].Desc[ORB], par.Views[i].Desc[ORB]) {
			t.Errorf("view %d: parallel descriptor extraction diverged", i)
		}
	}
}

func TestRunParallelEmptyQuerySet(t *testing.T) {
	empty := &dataset.Set{Name: "empty"}
	for _, w := range []int{-1, 0, 1, 4} {
		pred, truth := RunParallel(DefaultHybrid(WeightedSum), empty, gallery1, w)
		if len(pred) != 0 || len(truth) != 0 {
			t.Errorf("workers=%d: non-empty output %d/%d on empty set", w, len(pred), len(truth))
		}
	}
}

func TestRunParallelSingleSample(t *testing.T) {
	one := &dataset.Set{Name: "one", Samples: sns2.Samples[:1]}
	serialPred, _ := Run(ColorOnly{Metric: histogram.Hellinger}, one, gallery1)
	for _, w := range []int{-3, 0, 1, 16} {
		pred, truth := RunParallel(ColorOnly{Metric: histogram.Hellinger}, one, gallery1, w)
		if len(pred) != 1 || len(truth) != 1 {
			t.Fatalf("workers=%d: output length %d/%d", w, len(pred), len(truth))
		}
		classesEqual(t, "single", serialPred, pred)
	}
}

func TestRunParallelClampsNonPositiveWorkers(t *testing.T) {
	// Workers <= 0 must select the CPU default, never panic.
	serialPred, _ := Run(ShapeOnly{Method: moments.MatchI1}, sns2, gallery1)
	for _, w := range []int{0, -1, -100} {
		pred, _ := RunParallel(ShapeOnly{Method: moments.MatchI1}, sns2, gallery1, w)
		classesEqual(t, "clamped", serialPred, pred)
	}
	bc := NewBatchClassifier(ShapeOnly{Method: moments.MatchI1}, -7)
	pred, _ := bc.Run(sns2, gallery1)
	classesEqual(t, "batch clamped", serialPred, pred)
}

// TestConcurrentClassifySharedGallery is the -race stress test for the
// gallery's shared state: many goroutines classify against one gallery
// whose descriptor cache starts empty, hammering the mutex-guarded lazy
// extraction path alongside read-only shape/colour pipelines.
func TestConcurrentClassifySharedGallery(t *testing.T) {
	g := NewGallery(&dataset.Set{Name: "shared", Samples: sns1.Samples[:8]})
	queries := sns2.Samples[:6]
	var wg sync.WaitGroup
	// Pooled prep must be safe alongside classification: it fills the
	// cache through the same mutex-guarded path as lazy extraction.
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.PrepareDescriptorsWorkers(ORB, DefaultDescriptorParams(), 4)
	}()
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			var p Pipeline
			switch worker % 3 {
			case 0:
				p = NewDescriptor(ORB, 0.75)
			case 1:
				p = ShapeOnly{Method: moments.MatchI2}
			default:
				p = DefaultHybrid(WeightedSum)
			}
			for _, q := range queries {
				pr := p.Classify(q.Image, g)
				if pr.Index < 0 || pr.Index >= g.Len() {
					t.Errorf("prediction index %d out of range", pr.Index)
				}
			}
		}(worker)
	}
	wg.Wait()
	// Every view must end up with exactly one cached ORB set.
	for i := range g.Views {
		if g.Views[i].Desc[ORB] == nil {
			t.Errorf("view %d: descriptor cache not filled", i)
		}
	}
}

// TestRunParallelStress drives the full RunParallel machinery (chunking,
// forking, shared gallery) under the race detector.
func TestRunParallelStress(t *testing.T) {
	for _, p := range []Pipeline{
		NewRandom(3),
		DefaultHybrid(WeightedSum),
	} {
		for rep := 0; rep < 4; rep++ {
			pred, truth := RunParallel(p, sns2, gallery1, 8)
			if len(pred) != sns2.Len() || len(truth) != sns2.Len() {
				t.Fatalf("%s: bad output length", p.Name())
			}
		}
	}
}
