package pipeline

import (
	"sync"

	"snmatch/internal/arena"
	"snmatch/internal/contour"
	"snmatch/internal/histogram"
	"snmatch/internal/imaging"
)

// prepCtx is the pooled per-query context of the contour/histogram
// pipelines (shape-only, colour-only, hybrid): one arena for the dense
// preprocessing planes, the crop and the histogram bins, plus the border
// tracer's persistent spines. It is the preprocessing-side counterpart
// of ExtractCtx — a warm context classifies with zero heap allocation
// from grayscale conversion to the gallery scan.
//
// The pool is package-level because these pipelines are stateless value
// types: unlike *Descriptor they have no instance to hang a pool off,
// and sharing warmed contexts across all of them is exactly right — the
// working sets are the same planes and bins.
type prepCtx struct {
	a    *arena.Arena
	cont contour.Scratch
}

var prepCtxs = sync.Pool{New: func() any { return &prepCtx{a: arena.New()} }}

func getPrepCtx() *prepCtx { return prepCtxs.Get().(*prepCtx) }

// putPrepCtx recycles the context's arena and returns it to the pool,
// applying the same footprint cap as Descriptor.putCtx so one oversized
// query cannot pin its high-water working set in the pool forever.
func putPrepCtx(c *prepCtx) {
	c.a.Reset()
	if c.a.Footprint() > maxPooledCtxBytes {
		return
	}
	prepCtxs.Put(c)
}

// preprocessCtx runs the §3.2 cascade entirely on the context. The
// result (contours and crop included) is valid only while the context is
// checked out.
func (c *prepCtx) preprocess(img *imaging.Image) contour.PreprocessResult {
	return contour.PreprocessScratch(c.a, &c.cont, img)
}

// histOfIn is histOf with the mask crop and the histogram drawn from the
// arena (nil falls back to the heap, which is exactly histOf).
func histOfIn(a *arena.Arena, pre contour.PreprocessResult) *histogram.Hist {
	mask := pre.Binary.CropIn(a, pre.Box)
	if mask != nil {
		h := histogram.ComputeMaskedIn(a, pre.Cropped, mask, HistBins)
		if h.Total() > 0 {
			return h.Normalize()
		}
	}
	return histogram.ComputeIn(a, pre.Cropped, HistBins).Normalize()
}
