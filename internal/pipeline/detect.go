package pipeline

import (
	"sort"

	"snmatch/internal/contour"
	"snmatch/internal/geom"
	"snmatch/internal/imaging"
	"snmatch/internal/parallel"
)

// DetectParams controls the scene detector's region-proposal stage and
// its classification fan-out. The zero value selects defaults tuned for
// the synthetic room scenes (synth.ComposeSceneP).
type DetectParams struct {
	// MinArea is the minimum enclosed contour area for a proposal;
	// smaller blobs (noise speckle, clutter slivers) are dropped.
	// Default 120.
	MinArea float64
	// Pad grows every proposal box by this margin on each side before
	// clamping, so tight silhouette boxes keep the context the
	// classifiers' own preprocessing expects. Default 4.
	Pad int
	// MaxRegions caps the number of proposals after ordering; the
	// serving layer uses it to bound per-request work. Default 32.
	MaxRegions int
	// BgTol is the per-channel half-window absorbed around each dominant
	// background colour mode when building the foreground mask.
	// Default 12.
	BgTol int
	// Workers is the classification pool size; <= 0 selects one worker
	// per CPU. Region proposal is always serial.
	Workers int
}

// withDefaults fills zero fields with the documented defaults.
func (p DetectParams) withDefaults() DetectParams {
	if p.MinArea <= 0 {
		p.MinArea = 120
	}
	if p.Pad <= 0 {
		p.Pad = 4
	}
	if p.MaxRegions <= 0 {
		p.MaxRegions = 32
	}
	if p.BgTol <= 0 {
		p.BgTol = 12
	}
	return p
}

// Detection is one classified scene region: the proposal box in scene
// coordinates plus the per-crop classification outcome.
type Detection struct {
	Box geom.Rect
	Prediction
}

// bgMaxModes bounds the dominant-colour peeling of the foreground
// mask: room scenes have a handful of background surfaces (wall, floor,
// and their clutter-perturbed neighbourhoods), not many.
const bgMaxModes = 4

// bgBinBits quantises each RGB channel to 2^bgBinBits levels for the
// background-mode histogram.
const bgBinBits = 5

// foregroundMask estimates the scene background by peeling dominant
// colour modes from a coarse RGB histogram — peeling stops when the
// next peak holds under 2% of the pixels — and returns a binary plane
// with the remaining (foreground) pixels set. A pixel is background
// when every channel sits within ±tol of some mode's colour. Working in
// colour space rather than luma keeps saturated objects whose
// brightness happens to match the gray room surfaces in the
// foreground; the single-object preprocessing cascade's extreme-polarity
// threshold handles neither that nor multi-level backgrounds.
func foregroundMask(img *imaging.Image, tol int) *imaging.Gray {
	const levels = 1 << bgBinBits
	const shift = 8 - bgBinBits
	hist := make([]int, levels*levels*levels)
	for i := 0; i < len(img.Pix); i += 3 {
		idx := (int(img.Pix[i])>>shift)<<(2*bgBinBits) |
			(int(img.Pix[i+1])>>shift)<<bgBinBits |
			int(img.Pix[i+2])>>shift
		hist[idx]++
	}
	minPeak := (len(img.Pix) / 3) / 50
	var modes [][3]int
	for len(modes) < bgMaxModes {
		best, bestC := -1, 0
		for v, c := range hist {
			if c > bestC {
				best, bestC = v, c
			}
		}
		if best < 0 || bestC < minPeak {
			break
		}
		// Bin centre as the mode colour.
		mode := [3]int{
			(best>>(2*bgBinBits))<<shift | 1<<(shift-1),
			(best>>bgBinBits&(levels-1))<<shift | 1<<(shift-1),
			(best&(levels-1))<<shift | 1<<(shift-1),
		}
		modes = append(modes, mode)
		// Retire every bin whose centre the mode's window absorbs, so
		// the next peak is a genuinely different surface colour.
		for v := range hist {
			if hist[v] == 0 {
				continue
			}
			cr := (v>>(2*bgBinBits))<<shift | 1<<(shift-1)
			cg := (v>>bgBinBits&(levels-1))<<shift | 1<<(shift-1)
			cb := (v&(levels-1))<<shift | 1<<(shift-1)
			if absInt(cr-mode[0]) <= tol && absInt(cg-mode[1]) <= tol && absInt(cb-mode[2]) <= tol {
				hist[v] = 0
			}
		}
	}
	fg := imaging.NewGray(img.W, img.H)
	for p, i := 0, 0; p < len(fg.Pix); p, i = p+1, i+3 {
		bg := false
		for _, m := range modes {
			if absInt(int(img.Pix[i])-m[0]) <= tol &&
				absInt(int(img.Pix[i+1])-m[1]) <= tol &&
				absInt(int(img.Pix[i+2])-m[2]) <= tol {
				bg = true
				break
			}
		}
		if !bg {
			fg.Pix[p] = 255
		}
	}
	return fg
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// ProposeRegions runs contour-based region proposal on a scene image:
// foreground masking by background-mode peeling, Suzuki-Abe border
// tracing, area filtering of the outer borders, padded bounding boxes
// with nested boxes suppressed, ordered top-to-bottom then
// left-to-right and capped at MaxRegions. The ordering is a pure
// function of the image, so proposals are deterministic.
func ProposeRegions(img *imaging.Image, p DetectParams) []geom.Rect {
	p = p.withDefaults()
	return proposeFrom(img, foregroundMask(img, p.BgTol), p)
}

// proposeFrom is the proposal body over an already-computed foreground
// mask, shared by ProposeRegions and ProposeCrops.
func proposeFrom(img *imaging.Image, fg *imaging.Gray, p DetectParams) []geom.Rect {
	cs := contour.FindContours(fg)
	var boxes []geom.Rect
	for i := range cs {
		c := &cs[i]
		if c.Hole || c.Area() < p.MinArea {
			continue
		}
		b := c.BoundingBox().Inset(-p.Pad).ClampTo(img.W, img.H)
		if !b.Empty() {
			boxes = append(boxes, b)
		}
	}
	// Suppress boxes fully contained in another proposal (fragments of a
	// larger object's border); among equal boxes the first survives.
	kept := boxes[:0]
	for i, b := range boxes {
		contained := false
		for j, o := range boxes {
			if i == j {
				continue
			}
			inside := o.Intersect(b) == b
			if inside && (o != b || j < i) {
				contained = true
				break
			}
		}
		if !contained {
			kept = append(kept, b)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.MinY != b.MinY {
			return a.MinY < b.MinY
		}
		if a.MinX != b.MinX {
			return a.MinX < b.MinX
		}
		if a.MaxY != b.MaxY {
			return a.MaxY < b.MaxY
		}
		return a.MaxX < b.MaxX
	})
	if len(kept) > p.MaxRegions {
		kept = kept[:p.MaxRegions]
	}
	return kept
}

// ProposeCrops returns the proposal regions together with their
// NYU-style masked crops: background pixels inside each box are
// blackened, so a crop looks exactly like the segmented region masks
// the single-object pipelines were built for. The serving layer feeds
// these crops through the batcher; Detect classifies them in-process.
func ProposeCrops(img *imaging.Image, p DetectParams) ([]geom.Rect, []*imaging.Image) {
	p = p.withDefaults()
	fg := foregroundMask(img, p.BgTol)
	regions := proposeFrom(img, fg, p)
	crops := make([]*imaging.Image, len(regions))
	for i, b := range regions {
		crop := img.Crop(b)
		for y := 0; y < crop.H; y++ {
			for x := 0; x < crop.W; x++ {
				if fg.Pix[(b.MinY+y)*fg.W+(b.MinX+x)] == 0 {
					q := (y*crop.W + x) * 3
					crop.Pix[q], crop.Pix[q+1], crop.Pix[q+2] = 0, 0, 0
				}
			}
		}
		crops[i] = crop
	}
	return regions, crops
}

// Detect runs the scene-level detect-then-classify loop: region
// proposal (serial), then per-crop classification fanned out over the
// worker pool. Stateless pipelines classify each crop independently, so
// the output is bit-identical at every worker count; pipelines with
// mutable state (Forker implementations) consume their stream in region
// order on a serial fallback, which keeps them deterministic too.
func Detect(img *imaging.Image, pl Pipeline, g *Gallery, p DetectParams) []Detection {
	regions, crops := ProposeCrops(img, p)
	dets := make([]Detection, len(regions))
	for i, b := range regions {
		dets[i].Box = b
	}
	if len(dets) == 0 {
		return dets
	}
	if prep, ok := pl.(Preparer); ok {
		prep.Prepare(g, p.Workers)
	}
	if _, stateful := pl.(Forker); stateful {
		for i := range dets {
			dets[i].Prediction = pl.Classify(crops[i], g)
		}
		return dets
	}
	parallel.ForEach(p.Workers, len(dets), func(i int) {
		dets[i].Prediction = pl.Classify(crops[i], g)
	})
	return dets
}
