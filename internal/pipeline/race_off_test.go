//go:build !race

package pipeline

// raceEnabled reports whether the race detector is compiled in; the
// allocation-count gates skip under it because instrumentation changes
// allocation accounting.
const raceEnabled = false
