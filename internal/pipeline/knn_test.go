package pipeline

import (
	"testing"

	"snmatch/internal/eval"
)

func TestKNNVoteReducesToHybridAtK1(t *testing.T) {
	knn := NewKNNVote(1)
	hybrid := DefaultHybrid(WeightedSum)
	pred1, truth := Run(knn, sns2, gallery1)
	pred2, _ := Run(hybrid, sns2, gallery1)
	for i := range pred1 {
		if pred1[i] != pred2[i] {
			t.Fatalf("query %d: 1-NN vote %v != weighted sum %v (truth %v)",
				i, pred1[i], pred2[i], truth[i])
		}
	}
}

func TestKNNVoteBeatsBaseline(t *testing.T) {
	for _, k := range []int{3, 5, 9} {
		p := NewKNNVote(k)
		pred, truth := Run(p, sns2, gallery1)
		res := eval.Evaluate(truth, pred)
		if res.Cumulative <= 0.1 {
			t.Errorf("%d-NN vote cumulative = %v", k, res.Cumulative)
		}
	}
}

func TestKNNVoteClampAndName(t *testing.T) {
	p := NewKNNVote(0)
	if p.K != 1 {
		t.Errorf("K = %d, want clamp to 1", p.K)
	}
	if NewKNNVote(5).Name() != "Shape+Color 5-NN vote" {
		t.Errorf("name = %q", NewKNNVote(5).Name())
	}
	// K beyond the gallery size must not panic.
	big := NewKNNVote(10000)
	pred := big.Classify(sns2.Samples[0].Image, gallery1)
	if pred.Index < 0 {
		t.Error("oversized K produced no prediction")
	}
}
