package pipeline

import (
	"math"
	mbits "math/bits"
	"sync"
	"time"

	"snmatch/internal/features"
	"snmatch/internal/obs"
	"snmatch/internal/parallel"
	"snmatch/internal/rng"
)

// ivfMaxTrain caps the k-means training sample: Lloyd iterations run
// over at most this many rows, then one assignment pass places every
// row. Sampling keeps the build near-linear in the gallery while the
// centroids stay representative.
const ivfMaxTrain = 4096

// ivfHorizonScale discounts the probe horizon in the single-candidate
// shortlist rule. The horizon (distance to the nearest unprobed
// centroid) underestimates how far unseen rows really are — a cell's
// members spread around its centroid — so a view whose lone candidate
// sits within ivfHorizonScale*ratio*horizon of the query is near enough
// that an unseen second neighbour would likely pass the ratio test.
// Swept on the large synthetic galleries: 0.4-0.6 all hold recall@1
// ≥ 0.99 against the flat scan; 0.5 takes the middle of that plateau
// and drops roughly half of the undiscounted rule's verification cost.
const ivfHorizonScale = 0.5

// IVFIndex is inverted-file coarse quantization over the flat index's
// rows (the FAISS IVF-flat layout, adapted to the per-view ratio
// test): a deterministic seeded coarse quantizer partitions the rows
// into nlists cells, each stored as a flat row-major block (rows, root
// norms, owning view per slot) so the scan runs the exact distance
// kernels over contiguous memory. Float rows (SIFT/SURF) train with
// sampled Lloyd k-means under L2; binary rows (ORB) train with the
// k-majority variant — Hamming assignment, per-bit majority-vote
// centroid update — so the quantizer adapts to however the codes
// cluster, which keeps the probe sub-linear even on the low-entropy
// descriptor sets that defeat fixed substring hashing (see MIHIndex). A
// query descriptor ranks the centroids and scans only the nprobe
// nearest lists; per-view best/second-best fold exactly like the flat
// scan over the rows encountered, and a view contributing fewer than
// two candidate rows is skipped (no second-neighbour denominator — the
// rule the flat scan applies to views with fewer than two rows). The
// probed fold only shortlists: every view with a non-zero approximate
// count is then re-scored exactly by the flat kernel over its full row
// block (verifyShortlist), which repairs the coarse scan's systematic
// undercounting (a second neighbour in an unprobed cell otherwise
// drops the count) — final counts are either the flat scan's number or
// zero. At NProbe >= nlists every row would be scanned, so the query
// delegates to the flat kernel outright and is bit-identical to it.
//
// The index is immutable once built and safe for concurrent queries;
// per-query scratch is pooled.
type IVFIndex struct {
	ix     *DescriptorIndex
	params IVFParams

	nlists int
	full   bool // NProbe >= nlists: exact delegation

	centroids     []float32 // float rows: nlists * dim, row-major
	centroidWords []uint64  // binary rows: nlists * wpr, packed

	// Per-list flat blocks: list l owns slots
	// listStarts[l]..listStarts[l+1] of the reordered storage.
	listStarts []int32
	listFloats []float32 // float rows: slot * dim
	listWords  []uint64  // binary rows: slot * wpr
	listNorms  []float32 // root norm per slot (float rows)
	listView   []int32   // owning view per slot

	scratch sync.Pool // *ivfScratch
}

// NewIVFIndex builds the coarse-quantized backend over a flat index of
// either representation. It panics on parameters IndexSpec.Validate
// would reject.
func NewIVFIndex(ix *DescriptorIndex, p IVFParams) *IVFIndex {
	p = p.withDefaults()
	if err := (IndexSpec{Kind: IVFKind, IVF: p}).Validate(); err != nil {
		panic(err.Error())
	}
	iv := &IVFIndex{ix: ix, params: p}
	if ix.Len() == 0 {
		iv.nlists = 1
		iv.full = true
		return iv
	}

	// Quantize only rows whose view can pass a ratio test (>= 2 rows);
	// the flat scan never counts the others either.
	rows := make([]int32, 0, ix.Len())
	for v := 0; v < ix.NumViews; v++ {
		start, end := ix.Starts[v], ix.Starts[v+1]
		if end-start < 2 {
			continue
		}
		for r := start; r < end; r++ {
			rows = append(rows, int32(r))
		}
	}
	n := len(rows)
	if n == 0 {
		iv.nlists = 1
		iv.full = true
		return iv
	}

	nlists := p.NLists
	if nlists <= 0 {
		nlists = int(2 * math.Sqrt(float64(n)))
	}
	if nlists > n {
		nlists = n
	}
	if nlists < 1 {
		nlists = 1
	}
	if nlists > 1024 {
		nlists = 1024
	}
	iv.nlists = nlists
	iv.full = p.NProbe >= nlists
	if iv.full {
		return iv
	}

	// One deterministic assignment pass over every quantized row: the
	// distance ranking is a pure per-row function (parallel-safe), ties
	// break to the lowest list index.
	assign := make([]int32, n)
	if ix.Binary {
		wpr := ix.WordsPerRow
		iv.centroidWords = iv.trainBinary(rows, nlists)
		parallel.ForEachChunk(0, n, func(_ int, sp parallel.Span) {
			for i := sp.Start; i < sp.End; i++ {
				r := int(rows[i])
				assign[i] = iv.nearestCentroidWords(ix.Words[r*wpr : (r+1)*wpr])
			}
		})
	} else {
		dim := ix.Dim
		iv.centroids = iv.train(rows, nlists)
		parallel.ForEachChunk(0, n, func(_ int, sp parallel.Span) {
			for i := sp.Start; i < sp.End; i++ {
				r := int(rows[i])
				assign[i] = iv.nearestCentroid(ix.Floats[r*dim : (r+1)*dim])
			}
		})
	}

	iv.listStarts = make([]int32, nlists+1)
	for _, l := range assign {
		iv.listStarts[l+1]++
	}
	for l := 0; l < nlists; l++ {
		iv.listStarts[l+1] += iv.listStarts[l]
	}
	iv.listView = make([]int32, n)
	fill := make([]int32, nlists)
	rowView := make([]int32, ix.Len())
	for v := 0; v < ix.NumViews; v++ {
		for r := ix.Starts[v]; r < ix.Starts[v+1]; r++ {
			rowView[r] = int32(v)
		}
	}
	if ix.Binary {
		wpr := ix.WordsPerRow
		iv.listWords = make([]uint64, n*wpr)
		for i, r := range rows {
			l := assign[i]
			slot := iv.listStarts[l] + fill[l]
			fill[l]++
			copy(iv.listWords[int(slot)*wpr:(int(slot)+1)*wpr], ix.Words[int(r)*wpr:(int(r)+1)*wpr])
			iv.listView[slot] = rowView[r]
		}
	} else {
		dim := ix.Dim
		iv.listFloats = make([]float32, n*dim)
		iv.listNorms = make([]float32, n)
		for i, r := range rows {
			l := assign[i]
			slot := iv.listStarts[l] + fill[l]
			fill[l]++
			copy(iv.listFloats[int(slot)*dim:(int(slot)+1)*dim], ix.Floats[int(r)*dim:(int(r)+1)*dim])
			iv.listNorms[slot] = ix.RootNorms[r]
			iv.listView[slot] = rowView[r]
		}
	}
	return iv
}

// trainBinary is the k-majority analogue of train for packed binary
// rows: Hamming assignment, per-bit majority-vote centroid update (a
// bit is set when at least half the members set it — the component-wise
// median, which minimises the summed Hamming distance to the members).
// Every step is deterministic: sample and init from the spec's seed,
// assignment ties to the lowest index, and a memberless cluster keeps
// its previous centroid.
func (iv *IVFIndex) trainBinary(rows []int32, nlists int) []uint64 {
	ix := iv.ix
	wpr := ix.WordsPerRow
	r := rng.New(iv.params.Seed ^ 0x1f5b1e5ced1a7a11)
	sample := rows
	if len(rows) > ivfMaxTrain {
		perm := r.Perm(len(rows))
		sample = make([]int32, ivfMaxTrain)
		for i := range sample {
			sample[i] = rows[perm[i]]
		}
	}
	n := len(sample)

	centroids := make([]uint64, nlists*wpr)
	init := r.Perm(n)
	for c := 0; c < nlists; c++ {
		row := int(sample[init[c%n]])
		copy(centroids[c*wpr:(c+1)*wpr], ix.Words[row*wpr:(row+1)*wpr])
	}
	iv.centroidWords = centroids

	rowBits := wpr * 64
	assign := make([]int32, n)
	ones := make([]int32, nlists*rowBits)
	members := make([]int32, nlists)
	for it := 0; it < iv.params.Iters; it++ {
		parallel.ForEachChunk(0, n, func(_ int, sp parallel.Span) {
			for i := sp.Start; i < sp.End; i++ {
				row := int(sample[i])
				assign[i] = iv.nearestCentroidWords(ix.Words[row*wpr : (row+1)*wpr])
			}
		})
		clearInt32(ones)
		clearInt32(members)
		for i, l := range assign {
			row := int(sample[i])
			src := ix.Words[row*wpr : (row+1)*wpr]
			base := int(l) * rowBits
			for w, word := range src {
				for ; word != 0; word &= word - 1 {
					ones[base+w*64+mbits.TrailingZeros64(word)]++
				}
			}
			members[l]++
		}
		for l := 0; l < nlists; l++ {
			if members[l] == 0 {
				continue
			}
			half := members[l]
			base := l * rowBits
			for w := 0; w < wpr; w++ {
				var word uint64
				for b := 0; b < 64; b++ {
					if 2*ones[base+w*64+b] >= half {
						word |= 1 << uint(b)
					}
				}
				centroids[l*wpr+w] = word
			}
		}
	}
	return centroids
}

// nearestCentroidWords returns the index of the Hamming-closest binary
// centroid (lowest index on ties).
func (iv *IVFIndex) nearestCentroidWords(row []uint64) int32 {
	wpr := iv.ix.WordsPerRow
	best, bestD := int32(0), math.MaxInt
	c := iv.centroidWords
	for l := 0; l < iv.nlists; l++ {
		if d := features.HammingWords(row, c[l*wpr:(l+1)*wpr]); d < bestD {
			bestD, best = d, int32(l)
		}
	}
	return best
}

// train runs the seeded, sampled Lloyd iterations and returns the
// centroid matrix. Every step is deterministic: the sample and the
// initial centroids come from the spec's seed, assignment ties break
// to the lowest index, and centroid updates accumulate in ascending
// sample order. A cluster that loses all members keeps its previous
// centroid (the degenerate-duplicate-rows case collapses to one live
// list, which the probe handles like any other).
func (iv *IVFIndex) train(rows []int32, nlists int) []float32 {
	ix := iv.ix
	dim := ix.Dim
	r := rng.New(iv.params.Seed ^ 0x1f5b1e5ced1a7a11)
	sample := rows
	if len(rows) > ivfMaxTrain {
		perm := r.Perm(len(rows))
		sample = make([]int32, ivfMaxTrain)
		for i := range sample {
			sample[i] = rows[perm[i]]
		}
	}
	n := len(sample)

	centroids := make([]float32, nlists*dim)
	init := r.Perm(n)
	for c := 0; c < nlists; c++ {
		row := int(sample[init[c%n]])
		copy(centroids[c*dim:(c+1)*dim], ix.Floats[row*dim:(row+1)*dim])
	}
	iv.centroids = centroids

	assign := make([]int32, n)
	sums := make([]float64, nlists*dim)
	members := make([]int32, nlists)
	for it := 0; it < iv.params.Iters; it++ {
		parallel.ForEachChunk(0, n, func(_ int, sp parallel.Span) {
			for i := sp.Start; i < sp.End; i++ {
				row := int(sample[i])
				assign[i] = iv.nearestCentroid(ix.Floats[row*dim : (row+1)*dim])
			}
		})
		for i := range sums {
			sums[i] = 0
		}
		for l := range members {
			members[l] = 0
		}
		for i, l := range assign {
			row := int(sample[i])
			src := ix.Floats[row*dim : (row+1)*dim]
			dst := sums[int(l)*dim : (int(l)+1)*dim]
			for j, x := range src {
				dst[j] += float64(x)
			}
			members[l]++
		}
		for l := 0; l < nlists; l++ {
			if members[l] == 0 {
				continue
			}
			inv := 1 / float64(members[l])
			for j := 0; j < dim; j++ {
				centroids[l*dim+j] = float32(sums[l*dim+j] * inv)
			}
		}
	}
	return centroids
}

// nearestCentroid returns the index of the closest centroid (lowest
// index on ties).
func (iv *IVFIndex) nearestCentroid(row []float32) int32 {
	dim := iv.ix.Dim
	best, bestD := int32(0), float32(math.Inf(1))
	c := iv.centroids
	l := 0
	for ; l+4 <= iv.nlists; l += 4 {
		d0, d1, d2, d3 := features.L2Squared4(row,
			c[l*dim:(l+1)*dim], c[(l+1)*dim:(l+2)*dim],
			c[(l+2)*dim:(l+3)*dim], c[(l+3)*dim:(l+4)*dim])
		if d0 < bestD {
			bestD, best = d0, int32(l)
		}
		if d1 < bestD {
			bestD, best = d1, int32(l+1)
		}
		if d2 < bestD {
			bestD, best = d2, int32(l+2)
		}
		if d3 < bestD {
			bestD, best = d3, int32(l+3)
		}
	}
	for ; l < iv.nlists; l++ {
		if d := features.L2Squared(row, c[l*dim:(l+1)*dim]); d < bestD {
			bestD, best = d, int32(l)
		}
	}
	return best
}

// Flat implements MatchIndex.
func (iv *IVFIndex) Flat() *DescriptorIndex { return iv.ix }

// IndexKind implements MatchIndex.
func (iv *IVFIndex) IndexKind() IndexKind { return IVFKind }

// NLists returns the trained coarse-cell count.
func (iv *IVFIndex) NLists() int { return iv.nlists }

// ivfScratch is one query's probe state, pooled across queries.
type ivfScratch struct {
	epoch    int32
	viewMark []int32
	s1, s2   []float32
	touched  []int32
	cd       []float32 // centroid distances
	ord      []int32   // partial-selection order
}

func (iv *IVFIndex) getScratch() *ivfScratch {
	if v := iv.scratch.Get(); v != nil {
		return v.(*ivfScratch)
	}
	return &ivfScratch{
		viewMark: make([]int32, iv.ix.NumViews),
		s1:       make([]float32, iv.ix.NumViews),
		s2:       make([]float32, iv.ix.NumViews),
		touched:  make([]int32, 0, 64),
		cd:       make([]float32, iv.nlists),
		ord:      make([]int32, iv.nlists),
	}
}

func (sc *ivfScratch) next() {
	if sc.epoch == math.MaxInt32 {
		clearInt32(sc.viewMark)
		sc.epoch = 0
	}
	sc.epoch++
	sc.touched = sc.touched[:0]
}

// GoodMatchCounts implements MatchIndex.
//
//snmatch:noalloc
func (iv *IVFIndex) GoodMatchCounts(query *features.Set, ratio float64, counts []int32) {
	iv.GoodMatchCountsRangeTraced(query, ratio, counts, 0, iv.ix.NumViews, nil)
}

// GoodMatchCountsRange implements MatchIndex: the flat scan's contract
// over the nprobe nearest lists. Views outside [v0, v1) are untouched,
// so sharded fan-out composes exactly as with the flat index.
//snmatch:noalloc
func (iv *IVFIndex) GoodMatchCountsRange(query *features.Set, ratio float64, counts []int32, v0, v1 int) {
	iv.GoodMatchCountsRangeTraced(query, ratio, counts, v0, v1, nil)
}

// GoodMatchCountsTraced implements MatchIndex.
//
//snmatch:noalloc
func (iv *IVFIndex) GoodMatchCountsTraced(query *features.Set, ratio float64, counts []int32, tr *obs.Trace) {
	iv.GoodMatchCountsRangeTraced(query, ratio, counts, 0, iv.ix.NumViews, tr)
}

// GoodMatchCountsRangeTraced implements MatchIndex: the coarse probe
// and list scans book as match time, the exact shortlist re-scoring as
// verify time; the shortlist/probe histograms record just before
// verification.
//snmatch:noalloc
func (iv *IVFIndex) GoodMatchCountsRangeTraced(query *features.Set, ratio float64, counts []int32, v0, v1 int, tr *obs.Trace) {
	if iv.full {
		iv.ix.GoodMatchCountsRangeTraced(query, ratio, counts, v0, v1, tr)
		return
	}
	for i := v0; i < v1; i++ {
		counts[i] = 0
	}
	if query.Len() == 0 || iv.ix.Len() == 0 {
		return
	}
	if query.IsBinary() != iv.ix.Binary {
		panic("match: mixed descriptor representations")
	}
	qp := query.Pack().Packed
	pm := obsMetrics()
	var start time.Time
	if tr != nil {
		start = time.Now()
	}
	if iv.ix.Binary {
		if qp.WordsPerRow != iv.ix.WordsPerRow {
			panic("pipeline: query descriptor width does not match index")
		}
		iv.scanBinary(qp, ratio, counts, v0, v1)
	} else {
		if qp.Dim != iv.ix.Dim {
			panic("pipeline: query descriptor width does not match index")
		}
		iv.scanFloat(qp, ratio, counts, v0, v1)
	}
	if tr != nil {
		now := time.Now()
		tr.Add(obs.StageMatch, now.Sub(start))
		start = now
	}
	pm.recordScan(IVFKind, counts, v0, v1, qp.N*iv.params.NProbe)
	verifyShortlist(iv.ix, query, ratio, counts, v0, v1)
	if tr != nil {
		tr.Add(obs.StageVerify, time.Since(start))
	}
}

// scanFloat is the approximate probe over float rows: L2 centroid
// ranking, exact L2Squared fold over the nprobe nearest lists.
func (iv *IVFIndex) scanFloat(qp *features.Packed, ratio float64, counts []int32, v0, v1 int) {
	dim := iv.ix.Dim
	nprobe := iv.params.NProbe
	prune := iv.ix.prune
	normErr := float32(dim) * normErrScale
	sc := iv.getScratch()
	for qi := 0; qi < qp.N; qi++ {
		q := qp.FloatRow(qi)
		rq := sqrt32(qp.Norms[qi])
		sc.next()

		// Rank the coarse cells: 4-wide exact distances, then a partial
		// selection of the nprobe nearest (ties to the lower list).
		c := iv.centroids
		l := 0
		for ; l+4 <= iv.nlists; l += 4 {
			sc.cd[l], sc.cd[l+1], sc.cd[l+2], sc.cd[l+3] = features.L2Squared4(q,
				c[l*dim:(l+1)*dim], c[(l+1)*dim:(l+2)*dim],
				c[(l+2)*dim:(l+3)*dim], c[(l+3)*dim:(l+4)*dim])
		}
		for ; l < iv.nlists; l++ {
			sc.cd[l] = features.L2Squared(q, c[l*dim:(l+1)*dim])
		}
		for i := range sc.ord {
			sc.ord[i] = int32(i)
		}
		// One extra selection slot past nprobe: ord[nprobe] must be the
		// nearest *unprobed* centroid — the probe horizon of the
		// single-candidate shortlist rule below (nprobe < nlists here,
		// the full case delegated already).
		for k := 0; k <= nprobe; k++ {
			min := k
			for i := k + 1; i < iv.nlists; i++ {
				a, b := sc.ord[i], sc.ord[min]
				if sc.cd[a] < sc.cd[b] || (sc.cd[a] == sc.cd[b] && a < b) {
					min = i
				}
			}
			sc.ord[k], sc.ord[min] = sc.ord[min], sc.ord[k]
		}

		// Scan the selected lists' flat blocks with the exact kernel,
		// folding each row into its view's best/second-best. The norm
		// prune replicates the flat kernel's bound arithmetic, which is
		// value-safe: a pruned row can never have improved the pair.
		for k := 0; k < nprobe; k++ {
			lst := sc.ord[k]
			for slot := iv.listStarts[lst]; slot < iv.listStarts[lst+1]; slot++ {
				v := iv.listView[slot]
				if int(v) < v0 || int(v) >= v1 {
					continue
				}
				s1v, s2v := inf32, inf32
				if sc.viewMark[v] == sc.epoch {
					s1v, s2v = sc.s1[v], sc.s2[v]
				}
				if prune {
					rn := iv.listNorms[slot]
					lb := rq - rn
					if lb < 0 {
						lb = -lb
					}
					lb -= (rq + rn) * normErr
					if lb > 0 && lb*lb*pruneMargin >= s2v {
						continue
					}
				}
				d := features.L2Squared(q, iv.listFloats[int(slot)*dim:(int(slot)+1)*dim])
				if sc.viewMark[v] != sc.epoch {
					sc.viewMark[v] = sc.epoch
					sc.s1[v], sc.s2[v] = d, inf32
					sc.touched = append(sc.touched, v) //lint:allow noalloc touched grows into pooled scratch capped at NumViews; capacity amortizes to zero growth at steady state
					continue
				}
				if d < s1v {
					sc.s2[v], sc.s1[v] = s1v, d
				} else if d < s2v {
					sc.s2[v] = d
				}
			}
		}
		// A view with two candidates folds through the exact ratio test.
		// A single-candidate view has no second-neighbour denominator;
		// instead it is tested against the probe horizon — the nearest
		// unprobed centroid's distance: a lone candidate already well
		// inside the horizon would pass the ratio test against any second
		// neighbour the probe could not see, so the view is shortlisted
		// for verification on the strength of s1 alone.
		horizon := float64(sqrt32(sc.cd[sc.ord[nprobe]]))
		for _, v := range sc.touched {
			s1, s2 := sc.s1[v], sc.s2[v]
			if s2 < inf32 {
				if float64(sqrt32(s1)) < ratio*float64(sqrt32(s2)) {
					counts[v]++
				}
			} else if float64(sqrt32(s1)) < ratio*horizon*ivfHorizonScale {
				counts[v]++
			}
		}
	}
	iv.scratch.Put(sc)
}

// scanBinary is the approximate probe over packed binary rows: Hamming
// centroid ranking against the k-majority centroids, exact
// HammingWords fold over the nprobe nearest lists. The fold mirrors
// the flat binaryCounts semantics (raw Hamming distances through the
// ratio test); the single-candidate horizon rule compares raw
// distances too, since Hamming is already the metric.
func (iv *IVFIndex) scanBinary(qp *features.Packed, ratio float64, counts []int32, v0, v1 int) {
	wpr := iv.ix.WordsPerRow
	nprobe := iv.params.NProbe
	sc := iv.getScratch()
	for qi := 0; qi < qp.N; qi++ {
		q := qp.WordRow(qi)
		sc.next()

		c := iv.centroidWords
		for l := 0; l < iv.nlists; l++ {
			sc.cd[l] = float32(features.HammingWords(q, c[l*wpr:(l+1)*wpr]))
		}
		for i := range sc.ord {
			sc.ord[i] = int32(i)
		}
		// One extra selection slot past nprobe: ord[nprobe] must be the
		// nearest *unprobed* centroid — the probe horizon of the
		// single-candidate shortlist rule below.
		for k := 0; k <= nprobe; k++ {
			min := k
			for i := k + 1; i < iv.nlists; i++ {
				a, b := sc.ord[i], sc.ord[min]
				if sc.cd[a] < sc.cd[b] || (sc.cd[a] == sc.cd[b] && a < b) {
					min = i
				}
			}
			sc.ord[k], sc.ord[min] = sc.ord[min], sc.ord[k]
		}

		for k := 0; k < nprobe; k++ {
			lst := sc.ord[k]
			for slot := iv.listStarts[lst]; slot < iv.listStarts[lst+1]; slot++ {
				v := iv.listView[slot]
				if int(v) < v0 || int(v) >= v1 {
					continue
				}
				d := float32(features.HammingWords(q, iv.listWords[int(slot)*wpr:(int(slot)+1)*wpr]))
				if sc.viewMark[v] != sc.epoch {
					sc.viewMark[v] = sc.epoch
					sc.s1[v], sc.s2[v] = d, inf32
					sc.touched = append(sc.touched, v) //lint:allow noalloc touched grows into pooled scratch capped at NumViews; capacity amortizes to zero growth at steady state
					continue
				}
				if d < sc.s1[v] {
					sc.s2[v], sc.s1[v] = sc.s1[v], d
				} else if d < sc.s2[v] {
					sc.s2[v] = d
				}
			}
		}
		horizon := float64(sc.cd[sc.ord[nprobe]])
		for _, v := range sc.touched {
			s1, s2 := sc.s1[v], sc.s2[v]
			if s2 < inf32 {
				if float64(s1) < ratio*float64(s2) {
					counts[v]++
				}
			} else if float64(s1) < ratio*horizon*ivfHorizonScale {
				counts[v]++
			}
		}
	}
	iv.scratch.Put(sc)
}
