package pipeline

import (
	"fmt"
	"sort"

	"snmatch/internal/contour"
	"snmatch/internal/histogram"
	"snmatch/internal/imaging"
	"snmatch/internal/moments"
	"snmatch/internal/synth"
)

// KNNVote is an extension beyond the paper (its §5 future work asks for
// methods more robust to within-class heterogeneity): instead of the
// single argmin over views, the K best-scoring gallery views vote for
// the predicted class, weighted by inverse rank. With K = 1 it reduces
// to the hybrid weighted-sum pipeline.
type KNNVote struct {
	K           int
	ShapeMethod moments.MatchMethod
	ColorMetric histogram.CompareMethod
	Alpha, Beta float64
}

// NewKNNVote returns the voting pipeline with the paper's hybrid score
// configuration (L3 + Hellinger, alpha = 0.3, beta = 0.7).
func NewKNNVote(k int) *KNNVote {
	if k < 1 {
		k = 1
	}
	return &KNNVote{
		K:           k,
		ShapeMethod: moments.MatchI3,
		ColorMetric: histogram.Hellinger,
		Alpha:       0.3,
		Beta:        0.7,
	}
}

// Name implements Pipeline.
func (p *KNNVote) Name() string { return fmt.Sprintf("Shape+Color %d-NN vote", p.K) }

// Classify implements Pipeline.
func (p *KNNVote) Classify(img *imaging.Image, g *Gallery) Prediction {
	pre := contour.Preprocess(img)
	hu := huOf(pre)
	h := histOf(pre)

	type scored struct {
		idx   int
		theta float64
	}
	all := make([]scored, g.Len())
	for i := range g.Views {
		s := moments.MatchShapes(hu, g.Views[i].Hu, p.ShapeMethod)
		c := histogram.Distance(histogram.Compare(h, g.Views[i].Hist, p.ColorMetric), p.ColorMetric)
		all[i] = scored{idx: i, theta: p.Alpha*s + p.Beta*c}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].theta != all[j].theta {
			return all[i].theta < all[j].theta
		}
		return all[i].idx < all[j].idx
	})
	k := p.K
	if k > len(all) {
		k = len(all)
	}
	votes := map[synth.Class]float64{}
	for rank := 0; rank < k; rank++ {
		votes[g.ClassOf(all[rank].idx)] += 1 / float64(rank+1)
	}
	best := Prediction{Index: all[0].idx, Score: all[0].theta, Class: g.ClassOf(all[0].idx)}
	bestVote := -1.0
	for _, cls := range synth.AllClasses {
		if v, ok := votes[cls]; ok && v > bestVote {
			bestVote = v
			best.Class = cls
		}
	}
	return best
}
