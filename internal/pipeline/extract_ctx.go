package pipeline

import (
	"snmatch/internal/arena"
	"snmatch/internal/features"
	"snmatch/internal/features/orb"
	"snmatch/internal/features/sift"
	"snmatch/internal/features/surf"
	"snmatch/internal/imaging"
	"snmatch/internal/obs"
)

// ExtractCtx is a per-worker extraction context: one arena shared by
// the imaging, feature-set and extractor layers, plus each extractor's
// recycled accumulators. A warm context performs a steady-state query
// extraction — grayscale conversion, pyramids/integral tables, detector
// sweeps, descriptor rows, and the packed matrix — with zero heap
// allocations.
//
// A context is single-owner: it serves one extraction at a time, and
// the Set that extraction returned is invalid once Reset runs. The
// Descriptor pipeline checks contexts out of a sync.Pool per Classify,
// so one shared pipeline instance serves RunParallel workers, batcher
// lanes and concurrent HTTP requests alike — each query runs on a
// private warmed context.
type ExtractCtx struct {
	arena *arena.Arena
	feat  features.Scratch
	sift  sift.Scratch
	surf  surf.Scratch
	orb   orb.Scratch

	// Trace is the per-request stage timer: because it lives inside the
	// pooled context, passing &ctx.Trace through the matching interfaces
	// costs no heap allocation on the warm query path (a stack-local
	// trace would escape per call).
	Trace obs.Trace
}

// NewExtractCtx returns an empty context; its buffers are grown by the
// first queries and recycled afterwards.
func NewExtractCtx() *ExtractCtx {
	c := &ExtractCtx{arena: arena.New()}
	c.feat.A = c.arena
	c.sift = sift.Scratch{A: c.arena, Feat: &c.feat}
	c.surf = surf.Scratch{A: c.arena, Feat: &c.feat}
	c.orb = orb.Scratch{A: c.arena, Feat: &c.feat}
	return c
}

// Reset reclaims every arena-backed buffer the last extraction loaned,
// invalidating its returned Set. Long-lived caches that survive resets
// (the ORB pattern, the accumulator spines) are kept.
func (c *ExtractCtx) Reset() {
	if c == nil {
		return
	}
	c.arena.Reset()
}

// ExtractDescriptorsCtx is ExtractDescriptors drawing every
// intermediate from the context; a nil context is exactly
// ExtractDescriptors. The returned set is valid until the context's
// Reset.
func ExtractDescriptorsCtx(img *imaging.Image, kind DescriptorKind, p DescriptorParams, c *ExtractCtx) *features.Set {
	if c == nil {
		return ExtractDescriptors(img, kind, p)
	}
	g := img.ToGrayIn(c.arena)
	switch kind {
	case SIFT:
		return sift.ExtractScratch(g, p.SIFT, &c.sift)
	case SURF:
		return surf.ExtractScratch(g, p.SURF, &c.surf)
	case ORB:
		return orb.ExtractScratch(g, p.ORB, &c.orb)
	}
	panic("pipeline: unknown descriptor kind")
}
