package pipeline

import (
	"context"
	"sync"

	"snmatch/internal/fault"
	"snmatch/internal/features"
	"snmatch/internal/imaging"
	"snmatch/internal/obs"
	"snmatch/internal/parallel"
)

// ShardedIndex splits a matching index into contiguous view ranges at
// the flat index's Starts boundaries, so one query can be scanned by
// several workers at once. Shards never cut through a view: the
// within-view 2-NN search and ratio test are evaluated by exactly one
// shard with exactly the arithmetic of the unsharded scan, and every
// shard writes a disjoint range of the shared per-view count buffer —
// so sharded results are bit identical to the unsharded index at every
// shard count. This holds for any MatchIndex backend, exact or
// approximate: GoodMatchCountsRange's contract is per-view results
// independent of the [v0, v1) split.
//
// Shard boundaries are balanced by descriptor rows (the scan cost), not
// by view count: galleries with uneven views per class still split into
// near-equal work.
type ShardedIndex struct {
	mi    MatchIndex
	ix    *DescriptorIndex
	spans []parallel.Span // non-empty view ranges partitioning [0, NumViews)
}

// NewShardedIndex shards mi into at most `shards` row-balanced view
// ranges (shards <= 1 keeps the whole index as one shard; a shard count
// beyond the view count degrades to one view per shard).
func NewShardedIndex(mi MatchIndex, shards int) *ShardedIndex {
	ix := mi.Flat()
	sx := &ShardedIndex{mi: mi, ix: ix}
	nv := ix.NumViews
	if shards < 1 {
		shards = 1
	}
	if shards > nv {
		shards = nv
	}
	if nv == 0 || shards <= 1 {
		if nv > 0 {
			sx.spans = []parallel.Span{{Start: 0, End: nv}}
		}
		return sx
	}
	// Cut s (1 <= s < shards) lands on the first view whose start row
	// reaches the s-th row quantile; Starts is nondecreasing, so the
	// bounds are too, and together with 0 and NumViews they partition
	// the view range. Coinciding cuts (a view larger than a quantile)
	// collapse to fewer, still-disjoint shards.
	rows := ix.Len()
	bounds := make([]int, 0, shards+1)
	bounds = append(bounds, 0)
	v := 0
	for s := 1; s < shards; s++ {
		target := rows * s / shards
		for v < nv && ix.Starts[v] < target {
			v++
		}
		bounds = append(bounds, v)
	}
	bounds = append(bounds, nv)
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i+1] > bounds[i] {
			sx.spans = append(sx.spans, parallel.Span{Start: bounds[i], End: bounds[i+1]})
		}
	}
	return sx
}

// NumShards returns the number of non-empty shards.
func (sx *ShardedIndex) NumShards() int { return len(sx.spans) }

// Index returns the underlying flat index.
func (sx *ShardedIndex) Index() *DescriptorIndex { return sx.ix }

// MatchIndex returns the wrapped matching backend.
func (sx *ShardedIndex) MatchIndex() MatchIndex { return sx.mi }

// Spans returns a copy of the shard view ranges.
func (sx *ShardedIndex) Spans() []parallel.Span {
	out := make([]parallel.Span, len(sx.spans))
	copy(out, sx.spans)
	return out
}

// GoodMatchCounts fills the per-view good-match counts exactly like the
// wrapped backend's GoodMatchCounts, scanning the shards concurrently on
// the worker pool (one worker per shard). counts must have NumViews
// entries and is overwritten.
//
//snmatch:noalloc
func (sx *ShardedIndex) GoodMatchCounts(query *features.Set, ratio float64, counts []int32) {
	sx.GoodMatchCountsTraced(query, ratio, counts, nil)
}

// GoodMatchCountsTraced is the traced fan-out: every shard worker adds
// its own elapsed match/verify time into the shared trace (Trace adds
// are atomic), so on a multi-shard scan those stages read as CPU time
// summed across workers, not wall time.
//
//snmatch:noalloc
func (sx *ShardedIndex) GoodMatchCountsTraced(query *features.Set, ratio float64, counts []int32, tr *obs.Trace) {
	if len(sx.spans) <= 1 {
		sx.mi.GoodMatchCountsTraced(query, ratio, counts, tr)
		return
	}
	query.Pack() // build the packed mirror before the fan-out shares it
	parallel.ForEach(len(sx.spans), len(sx.spans), func(s int) { //lint:allow noalloc one fan-out closure per sharded scan, amortized over the shards it launches; the flat path stays 0 allocs/op
		sp := sx.spans[s]
		sx.mi.GoodMatchCountsRangeTraced(query, ratio, counts, sp.Start, sp.End, tr)
	})
}

// goodMatchCountsCtx is the deadline-aware fan-out: every shard worker
// re-checks ctx before scanning its span and skips the scan once the
// deadline has expired, so a cancelled request stops burning scan CPU
// at the next shard boundary instead of finishing the whole gallery.
// The shard-scan fault point fires per shard (latency rules stretch one
// shard's scan; error/panic rules panic out of the fan-out for the
// per-request recovery). A non-nil return means at least one shard was
// skipped and counts are incomplete — callers must discard them.
//
//snmatch:noalloc
func (sx *ShardedIndex) goodMatchCountsCtx(ctx context.Context, query *features.Set, ratio float64, counts []int32, tr *obs.Trace) error {
	if len(sx.spans) <= 1 {
		if err := ctx.Err(); err != nil {
			return err
		}
		if ferr := fault.Check(fault.ShardScan); ferr != nil {
			panic(ferr)
		}
		sx.mi.GoodMatchCountsTraced(query, ratio, counts, tr)
		return nil
	}
	query.Pack()
	parallel.ForEach(len(sx.spans), len(sx.spans), func(s int) { //lint:allow noalloc one fan-out closure per sharded scan, amortized over the shards it launches; the flat path stays 0 allocs/op
		if ctx.Err() != nil {
			return // deadline expired mid-fan-out; leave the span unscanned
		}
		if ferr := fault.Check(fault.ShardScan); ferr != nil {
			panic(ferr) // re-panicked in the submitting goroutine by parallel.run
		}
		sp := sx.spans[s]
		sx.mi.GoodMatchCountsRangeTraced(query, ratio, counts, sp.Start, sp.End, tr)
	})
	return ctx.Err()
}

// ShardedGallery pairs a prepared Gallery with per-kind sharded indexes,
// the unit the serving registry hands out: descriptor queries fan out
// across the shards for low latency, every other pipeline classifies
// against the wrapped gallery unchanged.
type ShardedGallery struct {
	G      *Gallery
	Shards int // requested shard count (<= 1 disables the fan-out)

	mu      sync.RWMutex
	sharded map[DescriptorKind]*ShardedIndex
}

// NewShardedGallery wraps g for sharded serving.
func NewShardedGallery(g *Gallery, shards int) *ShardedGallery {
	if shards < 1 {
		shards = 1
	}
	return &ShardedGallery{G: g, Shards: shards, sharded: map[DescriptorKind]*ShardedIndex{}}
}

// ShardedIndexFor returns the sharded view of the gallery's matching
// index for the given kind — the backend the gallery's IndexSpec
// selects — building (and caching) both on first use. Like the flat
// index cache it is safe under concurrent Classify traffic: the split
// is a pure function of the index, so racing builders agree. A cached
// shard set is rebuilt when the gallery's backend has changed under it
// (SetIndexSpec after serving started).
func (s *ShardedGallery) ShardedIndexFor(kind DescriptorKind, p DescriptorParams) *ShardedIndex {
	s.mu.RLock()
	sx := s.sharded[kind]
	s.mu.RUnlock()
	if sx != nil && sx.mi == s.G.MatchIndexFor(kind, p) {
		return sx
	}
	sx = NewShardedIndex(s.G.MatchIndexFor(kind, p), s.Shards)
	s.mu.Lock()
	if cur := s.sharded[kind]; cur != nil && cur.mi == sx.mi {
		sx = cur
	} else {
		s.sharded[kind] = sx
	}
	s.mu.Unlock()
	return sx
}

// Classify routes one query through the sharded engine: descriptor
// pipelines extract once and scan all shards in parallel, every other
// pipeline runs its ordinary single-threaded Classify. Predictions are
// bit-identical to the unsharded pipeline at every shard count.
func (s *ShardedGallery) Classify(p Pipeline, img *imaging.Image) Prediction {
	pred, _ := s.ClassifyStats(p, img)
	return pred
}

// ClassifyStats is Classify plus per-query timings. Descriptor
// pipelines extract on a pooled context (zero steady-state heap work)
// and report the extraction time; other pipelines fall back to their
// own ClassifyStats when they implement StatsClassifier and to plain
// Classify otherwise.
func (s *ShardedGallery) ClassifyStats(p Pipeline, img *imaging.Image) (Prediction, QueryStats) {
	pred, stats, _ := s.ClassifyStatsCtx(context.Background(), p, img)
	return pred, stats
}

// ClassifyStatsCtx is ClassifyStats under a request deadline: the
// descriptor path checks ctx between extraction and the scan and before
// every shard's scan; other pipelines check it once at entry (their
// classification is a single unsliceable pass). A non-nil error is
// the context's, and means no prediction was computed.
func (s *ShardedGallery) ClassifyStatsCtx(ctx context.Context, p Pipeline, img *imaging.Image) (Prediction, QueryStats, error) {
	d, ok := p.(*Descriptor)
	if !ok {
		if err := ctxErr(ctx); err != nil {
			return Prediction{}, QueryStats{}, err
		}
		if sc, ok := p.(StatsClassifier); ok {
			pred, stats := sc.ClassifyStats(img, s.G)
			return pred, stats, nil
		}
		return p.Classify(img, s.G), QueryStats{}, nil
	}
	sx := s.ShardedIndexFor(d.Kind, d.Params)
	return d.classifyOn(ctx, img, s.G, sx.Index(), sx)
}
