// Package pipeline implements the paper's five ShapeNet-matching object
// recognition pipelines over a common gallery abstraction: the random
// baseline, shape-only Hu-moment matching, colour-only histogram
// matching, hybrid weighted matching with three argmin strategies,
// SIFT/SURF/ORB descriptor matching with the ratio test, and the
// Normalized-X-Corr neural pair scorer.
package pipeline

import (
	"sort"
	"sync"

	"snmatch/internal/arena"
	"snmatch/internal/contour"
	"snmatch/internal/dataset"
	"snmatch/internal/features"
	"snmatch/internal/features/orb"
	"snmatch/internal/features/sift"
	"snmatch/internal/features/surf"
	"snmatch/internal/histogram"
	"snmatch/internal/imaging"
	"snmatch/internal/moments"
	"snmatch/internal/parallel"
	"snmatch/internal/synth"
)

// HistBins is the joint histogram resolution used throughout (8^3
// cells, OpenCV's common default for RGB comparison).
const HistBins = 8

// DescriptorKind selects the feature descriptor family.
type DescriptorKind int

// The descriptor families evaluated in §3.3.
const (
	SIFT DescriptorKind = iota
	SURF
	ORB
)

// String names the descriptor kind as in Table 3.
func (k DescriptorKind) String() string {
	switch k {
	case SIFT:
		return "SIFT"
	case SURF:
		return "SURF"
	case ORB:
		return "ORB"
	}
	return "unknown"
}

// View is a gallery entry: one reference 2D view with its precomputed
// matching features.
type View struct {
	Sample dataset.Sample

	Hu   moments.Hu
	Hist *histogram.Hist

	Desc map[DescriptorKind]*features.Set // populated by PrepareDescriptors
}

// Gallery is the reference model library M_c of §3.2: K models per
// class, each with a set of 2D views, preprocessed once.
type Gallery struct {
	Views []View

	mu   sync.RWMutex // guards lazy Desc/idx/ann writes during concurrent Classify
	idx  map[DescriptorKind]*DescriptorIndex
	spec IndexSpec
	ann  map[DescriptorKind]MatchIndex
}

// NewGallery preprocesses every sample of the reference set (§3.2
// cascade) and computes the always-needed shape and colour features,
// fanned out over one worker per CPU.
func NewGallery(s *dataset.Set) *Gallery { return NewGalleryWorkers(s, 0) }

// NewGalleryWorkers is NewGallery with an explicit pool size
// (workers <= 0 selects one worker per CPU). Every view is a pure
// function of its sample, so the gallery is identical view-for-view
// regardless of the worker count. Each worker recycles the dense
// preprocessing planes (gray + binary rasters) through its own arena —
// the view keeps only the derived Hu moments and histogram, so nothing
// arena-backed outlives an iteration.
func NewGalleryWorkers(s *dataset.Set, workers int) *Gallery {
	g := &Gallery{
		Views: make([]View, s.Len()),
		idx:   map[DescriptorKind]*DescriptorIndex{},
		ann:   map[DescriptorKind]MatchIndex{},
	}
	parallel.ForEachChunk(workers, s.Len(), func(_ int, sp parallel.Span) {
		a := arena.New()
		for i := sp.Start; i < sp.End; i++ {
			sm := s.Samples[i]
			pre := contour.PreprocessIn(a, sm.Image)
			v := View{Sample: sm, Desc: map[DescriptorKind]*features.Set{}}
			v.Hu = huOf(pre)
			v.Hist = histOf(pre)
			g.Views[i] = v
			a.Reset()
		}
	})
	return g
}

// huOf computes Hu invariants from the preprocessing result: from the
// largest contour when present, falling back to the binary raster.
func huOf(pre contour.PreprocessResult) moments.Hu {
	if pre.Largest != nil && pre.Largest.Len() >= 3 {
		return moments.HuFromContour(pre.Largest.Points)
	}
	return moments.HuFromGray(pre.Binary, true)
}

// histOf computes the normalised RGB histogram of the preprocessed crop
// restricted to the foreground mask, so the surrounding background
// (black NYU masks, white ShapeNet canvases) does not dominate the
// colour statistics — the "marginal noise reduction" goal of §3.2.
func histOf(pre contour.PreprocessResult) *histogram.Hist { return histOfIn(nil, pre) }

// DescriptorParams bundles extractor settings. Zero values select CPU
// friendly defaults matching the paper's configuration where stated
// (SURF Hessian threshold 400, ORB Hamming matching).
type DescriptorParams struct {
	SIFT sift.Params
	SURF surf.Params
	ORB  orb.Params
}

// DefaultDescriptorParams returns the extraction settings used by the
// experiments: feature counts are capped so brute-force matching of the
// full gallery stays tractable on one CPU.
func DefaultDescriptorParams() DescriptorParams {
	return DescriptorParams{
		SIFT: sift.Params{MaxFeatures: 80},
		SURF: surf.Params{HessianThreshold: 400},
		ORB:  orb.Params{NFeatures: 150},
	}
}

// PrepareDescriptors extracts and caches the given descriptor family
// for every gallery view, fanned out over one worker per CPU.
func (g *Gallery) PrepareDescriptors(kind DescriptorKind, p DescriptorParams) {
	g.PrepareDescriptorsWorkers(kind, p, 0)
}

// PrepareDescriptorsWorkers is PrepareDescriptors with an explicit pool
// size (workers <= 0 selects one worker per CPU). Extraction is pure,
// so the cached sets are identical for any worker count. It fills the
// cache through the same mutex-guarded path as lazy extraction, so it
// is safe to run concurrently with Classify on the same gallery.
func (g *Gallery) PrepareDescriptorsWorkers(kind DescriptorKind, p DescriptorParams, workers int) {
	parallel.ForEach(workers, len(g.Views), func(i int) {
		g.descriptorOf(i, kind, p)
	})
	g.descriptorIndex(kind, p)
}

// descriptorIndex returns the gallery-level flat index of the given
// kind, building (and caching) it on first use. Index construction is a
// pure function of the cached descriptor sets, so two racing builders
// produce identical indexes and the first store wins.
func (g *Gallery) descriptorIndex(kind DescriptorKind, p DescriptorParams) *DescriptorIndex {
	g.mu.RLock()
	ix := g.idx[kind]
	g.mu.RUnlock()
	if ix != nil {
		return ix
	}
	sets := make([]*features.Set, len(g.Views))
	for i := range g.Views {
		sets[i] = g.descriptorOf(i, kind, p)
	}
	ix = NewDescriptorIndex(sets)
	g.mu.Lock()
	if cur := g.idx[kind]; cur != nil {
		ix = cur
	} else {
		g.idx[kind] = ix
	}
	g.mu.Unlock()
	return ix
}

// DescriptorIndexFor exposes the flat matching index to the serving and
// snapshot layers: it returns the cached index for the kind, building it
// (and any missing descriptor sets) on first use.
func (g *Gallery) DescriptorIndexFor(kind DescriptorKind, p DescriptorParams) *DescriptorIndex {
	return g.descriptorIndex(kind, p)
}

// SetIndexSpec selects the matching backend built over this gallery's
// flat indexes. It drops any previously built approximate indexes, so a
// spec change takes effect on the next query. Snapshots persist only the
// flat indexes; restore paths re-apply the spec and the backend is
// rebuilt deterministically from the restored rows.
func (g *Gallery) SetIndexSpec(spec IndexSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	g.mu.Lock()
	g.spec = spec
	g.ann = map[DescriptorKind]MatchIndex{}
	g.mu.Unlock()
	return nil
}

// IndexSpec returns the gallery's configured matching backend spec.
func (g *Gallery) IndexSpec() IndexSpec {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.spec
}

// MatchIndexFor returns the matching engine for the kind under the
// gallery's IndexSpec: the flat index itself for ExactKind (or when the
// backend does not apply to the kind's representation), the cached
// approximate backend otherwise. Like the flat cache it is safe under
// concurrent Classify traffic — the build is a pure function of the
// flat index and the spec, so racing builders agree and the first store
// wins. A cached backend is discarded when the flat index it wraps is
// no longer the gallery's current one.
func (g *Gallery) MatchIndexFor(kind DescriptorKind, p DescriptorParams) MatchIndex {
	flat := g.descriptorIndex(kind, p)
	g.mu.RLock()
	spec := g.spec
	mi := g.ann[kind]
	g.mu.RUnlock()
	if spec.Kind == ExactKind {
		return flat
	}
	if mi != nil && mi.Flat() == flat {
		return mi
	}
	mi = buildMatchIndex(flat, spec)
	g.mu.Lock()
	if cur := g.ann[kind]; cur != nil && cur.Flat() == flat && g.spec == spec {
		mi = cur
	} else if g.spec == spec {
		if g.ann == nil {
			g.ann = map[DescriptorKind]MatchIndex{}
		}
		g.ann[kind] = mi
	}
	g.mu.Unlock()
	return mi
}

// Indexes returns the descriptor indexes built so far, keyed by kind —
// what a snapshot persists. The map is a copy; the indexes are shared
// (they are immutable once built).
func (g *Gallery) Indexes() map[DescriptorKind]*DescriptorIndex {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[DescriptorKind]*DescriptorIndex, len(g.idx))
	for k, ix := range g.idx {
		out[k] = ix
	}
	return out
}

// RestoreGallery reassembles a Gallery from deserialized views and
// prebuilt indexes — the snapshot loader's constructor. Views keep
// whatever descriptor sets they carry (nil Desc maps are initialised so
// lazy extraction still works for kinds the snapshot did not cover), and
// the index cache is seeded so no re-extraction happens for persisted
// kinds.
func RestoreGallery(views []View, idx map[DescriptorKind]*DescriptorIndex) *Gallery {
	g := &Gallery{
		Views: views,
		idx:   map[DescriptorKind]*DescriptorIndex{},
		ann:   map[DescriptorKind]MatchIndex{},
	}
	for i := range g.Views {
		if g.Views[i].Desc == nil {
			g.Views[i].Desc = map[DescriptorKind]*features.Set{}
		}
	}
	for k, ix := range idx {
		if ix != nil {
			g.idx[k] = ix
		}
	}
	return g
}

// IndexStats reports the flat index shape for the given kind without
// building it: total indexed descriptors and views covered (zero values
// when the index has not been built yet).
func (g *Gallery) IndexStats(kind DescriptorKind) (descriptors, views int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if ix := g.idx[kind]; ix != nil {
		return ix.Len(), ix.NumViews
	}
	return 0, 0
}

// IndexedKinds returns the descriptor kinds whose flat indexes have
// been built, in ascending kind order — what the serving layer reports
// as "prepared". Unlike a hardcoded kind list, it stays truthful as
// kinds come and go (e.g. a snapshot that persisted only ORB).
func (g *Gallery) IndexedKinds() []DescriptorKind {
	g.mu.RLock()
	defer g.mu.RUnlock()
	kinds := make([]DescriptorKind, 0, len(g.idx))
	for k := range g.idx {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

// descriptorSnapshot returns every view's cached descriptor set of the
// given kind under a single read lock (missing entries are nil), so a
// prepared gallery's matching loop runs without per-view locking.
func (g *Gallery) descriptorSnapshot(kind DescriptorKind) []*features.Set {
	out := make([]*features.Set, len(g.Views))
	g.mu.RLock()
	for i := range g.Views {
		out[i] = g.Views[i].Desc[kind]
	}
	g.mu.RUnlock()
	return out
}

// descriptorOf returns the cached descriptor set of view i, extracting
// and caching it on first use. It is safe for concurrent Classify
// calls: hits take only a read lock, the store is write-locked, and
// the (deterministic) extraction runs unlocked, so two racing workers
// may duplicate an extraction but observe the same stored value.
func (g *Gallery) descriptorOf(i int, kind DescriptorKind, p DescriptorParams) *features.Set {
	g.mu.RLock()
	d, ok := g.Views[i].Desc[kind]
	g.mu.RUnlock()
	if ok {
		return d
	}
	d = ExtractDescriptors(g.Views[i].Sample.Image, kind, p)
	g.mu.Lock()
	if cur, ok := g.Views[i].Desc[kind]; ok {
		d = cur
	} else {
		g.Views[i].Desc[kind] = d
	}
	g.mu.Unlock()
	return d
}

// ExtractDescriptors runs the chosen extractor on the image.
func ExtractDescriptors(img *imaging.Image, kind DescriptorKind, p DescriptorParams) *features.Set {
	g := img.ToGray()
	switch kind {
	case SIFT:
		return sift.Extract(g, p.SIFT)
	case SURF:
		return surf.Extract(g, p.SURF)
	case ORB:
		return orb.Extract(g, p.ORB)
	}
	panic("pipeline: unknown descriptor kind")
}

// ClassOf returns the class of the i-th gallery view.
func (g *Gallery) ClassOf(i int) synth.Class { return g.Views[i].Sample.Class }

// Len returns the number of gallery views.
func (g *Gallery) Len() int { return len(g.Views) }
