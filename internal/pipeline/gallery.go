// Package pipeline implements the paper's five ShapeNet-matching object
// recognition pipelines over a common gallery abstraction: the random
// baseline, shape-only Hu-moment matching, colour-only histogram
// matching, hybrid weighted matching with three argmin strategies,
// SIFT/SURF/ORB descriptor matching with the ratio test, and the
// Normalized-X-Corr neural pair scorer.
package pipeline

import (
	"snmatch/internal/contour"
	"snmatch/internal/dataset"
	"snmatch/internal/features"
	"snmatch/internal/features/orb"
	"snmatch/internal/features/sift"
	"snmatch/internal/features/surf"
	"snmatch/internal/histogram"
	"snmatch/internal/imaging"
	"snmatch/internal/moments"
	"snmatch/internal/synth"
)

// HistBins is the joint histogram resolution used throughout (8^3
// cells, OpenCV's common default for RGB comparison).
const HistBins = 8

// DescriptorKind selects the feature descriptor family.
type DescriptorKind int

// The descriptor families evaluated in §3.3.
const (
	SIFT DescriptorKind = iota
	SURF
	ORB
)

// String names the descriptor kind as in Table 3.
func (k DescriptorKind) String() string {
	switch k {
	case SIFT:
		return "SIFT"
	case SURF:
		return "SURF"
	case ORB:
		return "ORB"
	}
	return "unknown"
}

// View is a gallery entry: one reference 2D view with its precomputed
// matching features.
type View struct {
	Sample dataset.Sample

	Hu   moments.Hu
	Hist *histogram.Hist

	Desc map[DescriptorKind]*features.Set // populated by PrepareDescriptors
}

// Gallery is the reference model library M_c of §3.2: K models per
// class, each with a set of 2D views, preprocessed once.
type Gallery struct {
	Views []View
}

// NewGallery preprocesses every sample of the reference set (§3.2
// cascade) and computes the always-needed shape and colour features.
func NewGallery(s *dataset.Set) *Gallery {
	g := &Gallery{Views: make([]View, s.Len())}
	for i, sm := range s.Samples {
		pre := contour.Preprocess(sm.Image)
		v := View{Sample: sm, Desc: map[DescriptorKind]*features.Set{}}
		v.Hu = huOf(pre)
		v.Hist = histOf(pre)
		g.Views[i] = v
	}
	return g
}

// huOf computes Hu invariants from the preprocessing result: from the
// largest contour when present, falling back to the binary raster.
func huOf(pre contour.PreprocessResult) moments.Hu {
	if pre.Largest != nil && pre.Largest.Len() >= 3 {
		return moments.HuFromContour(pre.Largest.Points)
	}
	return moments.HuFromGray(pre.Binary, true)
}

// histOf computes the normalised RGB histogram of the preprocessed crop
// restricted to the foreground mask, so the surrounding background
// (black NYU masks, white ShapeNet canvases) does not dominate the
// colour statistics — the "marginal noise reduction" goal of §3.2.
func histOf(pre contour.PreprocessResult) *histogram.Hist {
	mask := pre.Binary.Crop(pre.Box)
	if mask != nil {
		h := histogram.ComputeMasked(pre.Cropped, mask, HistBins)
		if h.Total() > 0 {
			return h.Normalize()
		}
	}
	return histogram.Compute(pre.Cropped, HistBins).Normalize()
}

// DescriptorParams bundles extractor settings. Zero values select CPU
// friendly defaults matching the paper's configuration where stated
// (SURF Hessian threshold 400, ORB Hamming matching).
type DescriptorParams struct {
	SIFT sift.Params
	SURF surf.Params
	ORB  orb.Params
}

// DefaultDescriptorParams returns the extraction settings used by the
// experiments: feature counts are capped so brute-force matching of the
// full gallery stays tractable on one CPU.
func DefaultDescriptorParams() DescriptorParams {
	return DescriptorParams{
		SIFT: sift.Params{MaxFeatures: 80},
		SURF: surf.Params{HessianThreshold: 400},
		ORB:  orb.Params{NFeatures: 150},
	}
}

// PrepareDescriptors extracts and caches the given descriptor family
// for every gallery view.
func (g *Gallery) PrepareDescriptors(kind DescriptorKind, p DescriptorParams) {
	for i := range g.Views {
		if _, ok := g.Views[i].Desc[kind]; ok {
			continue
		}
		g.Views[i].Desc[kind] = ExtractDescriptors(g.Views[i].Sample.Image, kind, p)
	}
}

// ExtractDescriptors runs the chosen extractor on the image.
func ExtractDescriptors(img *imaging.Image, kind DescriptorKind, p DescriptorParams) *features.Set {
	g := img.ToGray()
	switch kind {
	case SIFT:
		return sift.Extract(g, p.SIFT)
	case SURF:
		return surf.Extract(g, p.SURF)
	case ORB:
		return orb.Extract(g, p.ORB)
	}
	panic("pipeline: unknown descriptor kind")
}

// ClassOf returns the class of the i-th gallery view.
func (g *Gallery) ClassOf(i int) synth.Class { return g.Views[i].Sample.Class }

// Len returns the number of gallery views.
func (g *Gallery) Len() int { return len(g.Views) }
