package pipeline

import (
	"snmatch/internal/features/match"
	"snmatch/internal/imaging"
)

// Descriptor is the §3.3 pipeline: extract SIFT, SURF or ORB features
// from the query, match against the gallery-level flat descriptor index
// (DescriptorIndex), apply Lowe's ratio test, and predict the view with
// the most surviving matches. The paper's reported configuration uses
// ratio 0.5.
type Descriptor struct {
	Kind   DescriptorKind
	Ratio  float64 // ratio-test threshold (paper tests 0.75 and 0.5)
	Params DescriptorParams
}

// NewDescriptor builds the pipeline with default extractor parameters.
func NewDescriptor(kind DescriptorKind, ratio float64) *Descriptor {
	return &Descriptor{Kind: kind, Ratio: ratio, Params: DefaultDescriptorParams()}
}

// Name implements Pipeline.
func (p *Descriptor) Name() string { return p.Kind.String() }

// Classify implements Pipeline. The per-view good-match counts come
// from one scan of the flat gallery index per query descriptor; the
// count scratch is pooled, so steady-state matching allocates nothing
// per query. An unprepared gallery builds its index on first use
// through the mutex-guarded cache, so concurrent Classify calls against
// a shared gallery are safe. Results are identical to brute-force
// per-view matching (classifyPerView).
func (p *Descriptor) Classify(img *imaging.Image, g *Gallery) Prediction {
	q := ExtractDescriptors(img, p.Kind, p.Params)
	ix := g.descriptorIndex(p.Kind, p.Params)
	return classifyCounts(g, ix, func(counts []int32) {
		ix.GoodMatchCounts(q, p.Ratio, counts)
	})
}

// classifyCounts runs one good-match-count fill over pooled scratch and
// selects the winning view — the shared tail of flat and sharded
// descriptor classification, kept in one place so the first-best
// tie-break and Score semantics cannot drift between the two paths.
func classifyCounts(g *Gallery, ix *DescriptorIndex, fill func(counts []int32)) Prediction {
	countsPtr := ix.getCounts()
	counts := *countsPtr
	fill(counts)
	best := Prediction{Index: -1, Score: -1}
	for i := range counts {
		if score := float64(counts[i]); score > best.Score {
			best = Prediction{Class: g.ClassOf(i), Index: i, Score: score}
		}
	}
	ix.putCounts(countsPtr)
	return best
}

// classifyPerView is the legacy brute-force path — an independent 2-NN
// match per gallery view — retained as the reference implementation the
// flat index is verified against in the equivalence tests.
func (p *Descriptor) classifyPerView(img *imaging.Image, g *Gallery) Prediction {
	q := ExtractDescriptors(img, p.Kind, p.Params)
	cached := g.descriptorSnapshot(p.Kind)
	best := Prediction{Index: -1, Score: -1}
	for i := range g.Views {
		train := cached[i]
		if train == nil {
			train = g.descriptorOf(i, p.Kind, p.Params)
		}
		score := float64(match.GoodMatchCount(q, train, p.Ratio))
		if score > best.Score {
			best = Prediction{Class: g.ClassOf(i), Index: i, Score: score}
		}
	}
	return best
}

// Prepare implements Preparer: extracting every gallery descriptor and
// building the flat index up front across the pool keeps lock traffic
// and one-shot index construction out of the per-query loop.
func (p *Descriptor) Prepare(g *Gallery, workers int) {
	g.PrepareDescriptorsWorkers(p.Kind, p.Params, workers)
}
