package pipeline

import (
	"snmatch/internal/features/match"
	"snmatch/internal/imaging"
)

// Descriptor is the §3.3 pipeline: extract SIFT, SURF or ORB features
// from the query, brute-force match against every gallery view, apply
// Lowe's ratio test, and predict the view with the most surviving
// matches. The paper's reported configuration uses ratio 0.5.
type Descriptor struct {
	Kind   DescriptorKind
	Ratio  float64 // ratio-test threshold (paper tests 0.75 and 0.5)
	Params DescriptorParams
}

// NewDescriptor builds the pipeline with default extractor parameters.
func NewDescriptor(kind DescriptorKind, ratio float64) *Descriptor {
	return &Descriptor{Kind: kind, Ratio: ratio, Params: DefaultDescriptorParams()}
}

// Name implements Pipeline.
func (p *Descriptor) Name() string { return p.Kind.String() }

// Classify implements Pipeline. Gallery descriptors must have been
// prepared with Gallery.PrepareDescriptors; unprepared views are
// extracted on the fly.
func (p *Descriptor) Classify(img *imaging.Image, g *Gallery) Prediction {
	q := ExtractDescriptors(img, p.Kind, p.Params)
	best := Prediction{Index: -1, Score: -1}
	for i := range g.Views {
		train := g.Views[i].Desc[p.Kind]
		if train == nil {
			train = ExtractDescriptors(g.Views[i].Sample.Image, p.Kind, p.Params)
			g.Views[i].Desc[p.Kind] = train
		}
		score := float64(match.GoodMatchCount(q, train, p.Ratio))
		if score > best.Score {
			best = Prediction{Class: g.ClassOf(i), Index: i, Score: score}
		}
	}
	return best
}
