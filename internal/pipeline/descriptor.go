package pipeline

import (
	"context"
	"sync"
	"time"

	"snmatch/internal/fault"
	"snmatch/internal/features"
	"snmatch/internal/features/match"
	"snmatch/internal/imaging"
	"snmatch/internal/obs"
)

// QueryStats carries per-query serving timings alongside a Prediction.
// Match and Verify are populated only while pipeline instrumentation is
// on (EnableObs); on a sharded gallery they are CPU time summed across
// the shard workers, not wall time.
type QueryStats struct {
	Extract time.Duration // descriptor extraction (PNG-decoded image -> packed query set)
	Match   time.Duration // index scan / approximate probe
	Verify  time.Duration // approximate backends' exact shortlist re-scoring
}

// StatsClassifier is implemented by pipelines that can report per-query
// timings; the serving layer uses it to expose extract_ms next to the
// end-to-end latency.
type StatsClassifier interface {
	ClassifyStats(img *imaging.Image, g *Gallery) (Prediction, QueryStats)
}

// Descriptor is the §3.3 pipeline: extract SIFT, SURF or ORB features
// from the query, match against the gallery-level flat descriptor index
// (DescriptorIndex), apply Lowe's ratio test, and predict the view with
// the most surviving matches. The paper's reported configuration uses
// ratio 0.5.
//
// Extraction runs on pooled per-worker contexts (ExtractCtx): Classify
// checks a context out of the pipeline's pool, extracts into it, and
// recycles it after the scan, so the warm query path performs no heap
// allocation from grayscale conversion to the flat-index counts.
type Descriptor struct {
	Kind   DescriptorKind
	Ratio  float64 // ratio-test threshold (paper tests 0.75 and 0.5)
	Params DescriptorParams

	// ctxs pools extraction contexts across concurrent Classify calls:
	// every RunParallel worker, batcher lane and serving request checks
	// a private context out per query and returns it warmed, so one
	// shared pipeline instance serves any degree of concurrency with
	// zero steady-state allocation. (The pipeline is stateless with
	// respect to the query stream, so no Forker clone is needed — the
	// pool is the per-worker context mechanism.)
	ctxs sync.Pool
}

// NewDescriptor builds the pipeline with default extractor parameters.
func NewDescriptor(kind DescriptorKind, ratio float64) *Descriptor {
	return &Descriptor{Kind: kind, Ratio: ratio, Params: DefaultDescriptorParams()}
}

// Name implements Pipeline.
func (p *Descriptor) Name() string { return p.Kind.String() }

// getCtx checks an extraction context out of the pool, creating one
// when the pool is empty.
func (p *Descriptor) getCtx() *ExtractCtx {
	if c, ok := p.ctxs.Get().(*ExtractCtx); ok {
		if pm := obsMetrics(); pm != nil {
			pm.ctxHits.Inc()
			pm.ctxPooled.Add(-int64(c.arena.Footprint()))
		}
		return c
	}
	if pm := obsMetrics(); pm != nil {
		pm.ctxMisses.Inc()
	}
	return NewExtractCtx()
}

// maxPooledCtxBytes caps the arena footprint a context may carry back
// into the pool. Arenas never shrink, so without the cap one oversized
// query would pin its high-water working set in every pooled context
// for the life of the process (the warm path allocates nothing, so GC
// — the only thing that drains a sync.Pool — rarely gets a reason to
// run). 128 MiB comfortably holds the pyramids of ~512px queries;
// anything beyond is served correctly but its context is dropped.
const maxPooledCtxBytes = 128 << 20

// putCtx recycles the context's buffers and returns it to the pool,
// unless an oversized query inflated it past maxPooledCtxBytes — then
// it is dropped for GC and the next query builds a fresh one.
// Everything the context's arena backed — including the query set the
// last extraction returned — is invalid afterwards.
func (p *Descriptor) putCtx(c *ExtractCtx) {
	c.Reset()
	pm := obsMetrics()
	if c.arena.Footprint() > maxPooledCtxBytes {
		if pm != nil {
			pm.ctxDrops.Inc()
		}
		return
	}
	if pm != nil {
		// Approximate by design: GC drains the pool without notice, so
		// the gauge can read high until the next checkout cycle.
		pm.ctxPooled.Add(int64(c.arena.Footprint()))
	}
	p.ctxs.Put(c)
}

// classifyOn is the single copy of the pooled query protocol — context
// checkout, timed extraction, count scan over the given index/counter
// pair, recycle — shared by the flat (Descriptor.ClassifyStats) and
// sharded (ShardedGallery.ClassifyStats) serving paths so the checkout
// discipline cannot drift between them.
// The stage trace rides the pooled context (never a fresh heap object):
// with instrumentation on, extraction and the scan's match/verify split
// land in ctx.Trace and surface through QueryStats; with it off the
// backends get a nil trace and skip their clocks entirely.
//
// ctx is the request deadline: cancellation checkpoints sit between
// the stages (before extraction, before the scan, and — on a sharded
// gallery — before every shard's scan), so an expired request stops
// burning CPU at the next stage boundary instead of running to
// completion. The returned error is the context's; a non-nil error
// means the prediction was not computed. Both checkpoints are plain
// ctx.Err() calls, so the warm path stays allocation-free.
func (p *Descriptor) classifyOn(ctx context.Context, img *imaging.Image, g *Gallery, ix *DescriptorIndex, mc matchCounter) (Prediction, QueryStats, error) {
	if err := ctxErr(ctx); err != nil {
		return Prediction{}, QueryStats{}, err
	}
	c := p.getCtx()
	var tr *obs.Trace
	if obsMetrics() != nil {
		tr = &c.Trace
		tr.Reset()
	}
	start := time.Now() //lint:allow determinism feeds QueryStats.Extract timing only; predictions never read the clock
	q := ExtractDescriptorsCtx(img, p.Kind, p.Params, c)
	stats := QueryStats{Extract: time.Since(start)}
	tr.Set(obs.StageExtract, stats.Extract)
	pred, err := classifyCounts(ctx, g, ix, mc, q, p.Ratio, tr)
	stats.Match = tr.Get(obs.StageMatch)
	stats.Verify = tr.Get(obs.StageVerify)
	p.putCtx(c)
	return pred, stats, err
}

// Classify implements Pipeline. The per-view good-match counts come
// from one scan of the flat gallery index per query descriptor; the
// count scratch is pooled, so steady-state matching allocates nothing
// per query. An unprepared gallery builds its index on first use
// through the mutex-guarded cache, so concurrent Classify calls against
// a shared gallery are safe. Results are identical to brute-force
// per-view matching (classifyPerView).
func (p *Descriptor) Classify(img *imaging.Image, g *Gallery) Prediction {
	pred, _ := p.ClassifyStats(img, g)
	return pred
}

// ClassifyStats implements StatsClassifier: Classify plus the
// extraction timing of this query. The scan runs on the matching
// backend the gallery's IndexSpec selects (flat by default); the count
// scratch always pools on the flat index, so backend swaps don't change
// the zero-allocation query path.
func (p *Descriptor) ClassifyStats(img *imaging.Image, g *Gallery) (Prediction, QueryStats) {
	pred, stats, _ := p.ClassifyStatsCtx(context.Background(), img, g)
	return pred, stats
}

// ClassifyStatsCtx is ClassifyStats under a request deadline: the
// pipeline checks ctx between stages and returns its error instead of
// finishing the query. context.Background() (or any never-done ctx)
// makes it exactly ClassifyStats.
func (p *Descriptor) ClassifyStatsCtx(ctx context.Context, img *imaging.Image, g *Gallery) (Prediction, QueryStats, error) {
	mi := g.MatchIndexFor(p.Kind, p.Params)
	return p.classifyOn(ctx, img, g, mi.Flat(), mi)
}

// ctxErr is the stage-boundary cancellation checkpoint: nil-context
// safe and allocation-free (Err returns preallocated sentinel errors).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// matchCounter fills per-view good-match counts for one query — the
// flat index and its sharded wrapper both implement it, which lets
// classifyCounts stay closure-free on the zero-allocation query path.
type matchCounter interface {
	GoodMatchCounts(query *features.Set, ratio float64, counts []int32)
	GoodMatchCountsTraced(query *features.Set, ratio float64, counts []int32, tr *obs.Trace)
}

// classifyCounts runs one good-match-count fill over pooled scratch and
// selects the winning view — the shared tail of flat and sharded
// descriptor classification, kept in one place so the first-best
// tie-break and Score semantics cannot drift between the two paths.
//
// The scan honours ctx: a sharded counter checks it before every
// shard's scan (skipping the rest once expired), an unsharded one
// before its single scan. A non-nil error means the counts are
// incomplete and no prediction is returned — a partially-scanned
// gallery must never masquerade as a result. The shard-scan fault
// point fires here too; since a count fill has no error return, an
// armed error surfaces as a panic for the per-request recovery to
// convert (latency rules just stretch the scan in place).
//snmatch:noalloc
func classifyCounts(ctx context.Context, g *Gallery, ix *DescriptorIndex, mc matchCounter, q *features.Set, ratio float64, tr *obs.Trace) (Prediction, error) {
	countsPtr := ix.getCounts()
	counts := *countsPtr
	var err error
	if sx, ok := mc.(*ShardedIndex); ok && ctx != nil {
		err = sx.goodMatchCountsCtx(ctx, q, ratio, counts, tr)
	} else if err = ctxErr(ctx); err == nil {
		if ferr := fault.Check(fault.ShardScan); ferr != nil {
			ix.putCounts(countsPtr)
			panic(ferr)
		}
		mc.GoodMatchCountsTraced(q, ratio, counts, tr)
	}
	if err != nil {
		ix.putCounts(countsPtr)
		return Prediction{}, err
	}
	best := Prediction{Index: -1, Score: -1}
	//lint:allow ctxcheckpoint bounded argmax over per-view counts runs in microseconds; the scan that filled counts already honoured ctx
	for i := range counts {
		if score := float64(counts[i]); score > best.Score {
			best = Prediction{Class: g.ClassOf(i), Index: i, Score: score}
		}
	}
	ix.putCounts(countsPtr)
	return best, nil
}

// classifyPerView is the legacy brute-force path — an independent 2-NN
// match per gallery view — retained as the reference implementation the
// flat index is verified against in the equivalence tests.
func (p *Descriptor) classifyPerView(img *imaging.Image, g *Gallery) Prediction {
	q := ExtractDescriptors(img, p.Kind, p.Params)
	cached := g.descriptorSnapshot(p.Kind)
	best := Prediction{Index: -1, Score: -1}
	for i := range g.Views {
		train := cached[i]
		if train == nil {
			train = g.descriptorOf(i, p.Kind, p.Params)
		}
		score := float64(match.GoodMatchCount(q, train, p.Ratio))
		if score > best.Score {
			best = Prediction{Class: g.ClassOf(i), Index: i, Score: score}
		}
	}
	return best
}

// Prepare implements Preparer: extracting every gallery descriptor and
// building the flat index up front across the pool keeps lock traffic
// and one-shot index construction out of the per-query loop.
func (p *Descriptor) Prepare(g *Gallery, workers int) {
	g.PrepareDescriptorsWorkers(p.Kind, p.Params, workers)
}
