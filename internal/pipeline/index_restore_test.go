package pipeline

import (
	"math/rand"
	"reflect"
	"testing"

	"snmatch/internal/features"
)

// concatSets builds n random sets whose packed storage is carved out of
// one shared backing array — the snapshot v2 blob layout — and returns
// the sets plus the concatenated storage.
func concatSets(rng *rand.Rand, n, dim int, binary bool) ([]*features.Set, []float32, []uint64) {
	counts := make([]int, n)
	total := 0
	for i := range counts {
		if rng.Intn(5) == 0 {
			continue // empty set: contributes an empty row range
		}
		counts[i] = 2 + rng.Intn(6)
		total += counts[i]
	}
	wpr := (dim + 7) / 8
	var floats, norms []float32
	var words []uint64
	if binary {
		words = make([]uint64, total*wpr)
		for i := range words {
			words[i] = rng.Uint64()
		}
	} else {
		floats = make([]float32, total*dim)
		for i := range floats {
			floats[i] = rng.Float32()*2 - 1
		}
		norms = make([]float32, total)
		for i := 0; i < total; i++ {
			norms[i] = features.L2Squared(floats[i*dim:(i+1)*dim], nil)
		}
	}
	sets := make([]*features.Set, n)
	off := 0
	for i, c := range counts {
		p := &features.Packed{N: c}
		kps := make([]features.Keypoint, c)
		if binary {
			p.RowBytes = dim
			p.WordsPerRow = wpr
			if c > 0 {
				p.Words = words[off*wpr : (off+c)*wpr]
			} else {
				p.Words = []uint64{}
			}
		} else if c > 0 {
			p.Dim = dim
			p.Floats = floats[off*dim : (off+c)*dim]
			p.Norms = norms[off : off+c]
		}
		sets[i] = features.RestoreSet(kps, p)
		off += c
	}
	return sets, floats, words
}

// TestRestoreDescriptorIndexBitIdentical pins the alias-aware rebuild
// against NewDescriptorIndex: same Starts, same storage bytes, same
// RootNorms — and the aliased build really aliases (no copy).
func TestRestoreDescriptorIndexBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		binary := trial%2 == 1
		dim := []int{8, 32, 64, 128}[rng.Intn(4)]
		sets, floats, words := concatSets(rng, 1+rng.Intn(12), dim, binary)
		want := NewDescriptorIndex(sets)
		got := RestoreDescriptorIndex(sets, floats, words)
		if got.Binary != want.Binary || got.NumViews != want.NumViews || got.Dim != want.Dim ||
			got.WordsPerRow != want.WordsPerRow || got.prune != want.prune ||
			!reflect.DeepEqual(got.Starts, want.Starts) ||
			!reflect.DeepEqual(got.Floats, want.Floats) ||
			!reflect.DeepEqual(got.RootNorms, want.RootNorms) ||
			!reflect.DeepEqual(got.Words, want.Words) {
			t.Fatalf("trial %d (binary=%v): restored index differs from rebuilt", trial, binary)
		}
		if want.Len() == 0 {
			continue
		}
		if binary {
			if &got.Words[0] != &words[0] {
				t.Fatalf("trial %d: binary restore copied instead of aliasing", trial)
			}
		} else if &got.Floats[0] != &floats[0] {
			t.Fatalf("trial %d: float restore copied instead of aliasing", trial)
		}
	}
}

// TestRestoreDescriptorIndexFallback pins the degraded path: storage
// that is not the exact concatenation (wrong length, or equal bytes in
// a different backing array) falls back to the copying build and still
// produces the identical index.
func TestRestoreDescriptorIndexFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sets, floats, _ := concatSets(rng, 6, 16, false)
	want := NewDescriptorIndex(sets)

	check := func(label string, got *DescriptorIndex) {
		t.Helper()
		if !reflect.DeepEqual(got.Starts, want.Starts) || !reflect.DeepEqual(got.Floats, want.Floats) ||
			!reflect.DeepEqual(got.RootNorms, want.RootNorms) || got.prune != want.prune {
			t.Fatalf("%s: fallback index differs", label)
		}
	}
	check("nil storage (v1 path)", RestoreDescriptorIndex(sets, nil, nil))
	check("short storage", RestoreDescriptorIndex(sets, floats[:len(floats)-1], nil))
	// Equal bytes, different backing array: must be detected by pointer,
	// not value, and must still copy-build correctly.
	clone := append([]float32(nil), floats...)
	got := RestoreDescriptorIndex(sets, clone, nil)
	check("cloned storage", got)
	if len(got.Floats) > 0 && &got.Floats[0] == &clone[0] {
		t.Fatal("cloned storage was aliased; pointer identity check failed")
	}
}
