package pipeline

import (
	"math"
	"sync"
	"time"

	"snmatch/internal/features"
	"snmatch/internal/obs"
)

// DescriptorIndex is a gallery-level flat index for §3.3 descriptor
// matching: every view's descriptors are concatenated into one
// contiguous matrix with per-view offsets, so classifying a query scans
// each query descriptor once across the whole gallery and accumulates
// per-view good-match counts — instead of running an independent 2-NN
// matcher per view over pointer-chased row slices. Results are exactly
// those of per-view match.GoodMatchCount: the 2-NN search and Lowe's
// ratio test are evaluated within each view's row range, distances stay
// in the squared (or integer Hamming) domain, and the square root is
// taken only for the two winners per (query descriptor, view) pair.
//
// The index is immutable once built; Classify-side scratch (the
// per-view count buffer) comes from an internal sync.Pool so steady
// state matching allocates nothing per query.
type DescriptorIndex struct {
	Binary   bool
	NumViews int

	// Starts[v]..Starts[v+1] is the descriptor row range of view v.
	Starts []int

	// Float layout (row-major, stride Dim), with per-row Euclidean
	// norms (square roots of the packed squared norms) for the
	// norm-difference lower bound.
	Dim       int
	Floats    []float32
	RootNorms []float32

	// Binary layout: word-packed rows of stride WordsPerRow.
	WordsPerRow int
	Words       []uint64

	// prune enables the norm-difference early-exit in the float
	// kernel. It is switched off at build time when the gallery's
	// norms barely vary (e.g. unit-normalised SIFT/SURF descriptors),
	// where the test could never fire and would only cost a branch.
	prune bool

	counts sync.Pool // *[]int32 scratch, one per concurrent classifier
}

// pruneMargin absorbs the relative rounding of the float32 distance
// accumulation (<= dim * 2^-23, ~1.5e-5 at dim 128): a candidate is
// only skipped when its — separately error-deflated — lower bound
// exceeds the current second-best by more than that. Together with the
// absolute deflation below, skipped candidates can never have beaten
// the second-best, keeping the kernel bit-identical to the unpruned
// scan.
const pruneMargin = 1 - 1e-4

// normErrScale bounds the relative error of a computed row norm
// (float32 sum of dim squares, then sqrt: <= ~dim * 2^-25 + 2^-24,
// taken at 2^-22 per unit dim for an ~8x safety factor). The norm
// difference rq - rn cancels catastrophically, so its absolute error —
// up to (rq + rn) * normErrScale * dim — must be subtracted from the
// bound before squaring rather than folded into a relative margin.
const normErrScale = 1.0 / (1 << 22)

// NewDescriptorIndex concatenates the views' descriptor sets (all of
// one representation; nil or empty sets contribute empty ranges).
func NewDescriptorIndex(sets []*features.Set) *DescriptorIndex {
	ix := &DescriptorIndex{NumViews: len(sets), Starts: make([]int, len(sets)+1)}
	total := 0
	for _, s := range sets {
		if s == nil || s.Len() == 0 {
			continue
		}
		total += s.Len()
		if s.IsBinary() {
			ix.Binary = true
		}
	}
	off := 0
	for v, s := range sets {
		ix.Starts[v] = off
		if s != nil {
			off += s.Len()
		}
	}
	ix.Starts[len(sets)] = off

	if ix.Binary {
		for _, s := range sets {
			if s == nil || s.Len() == 0 {
				continue
			}
			p := s.Pack().Packed
			if ix.WordsPerRow == 0 {
				ix.WordsPerRow = p.WordsPerRow
				ix.Words = make([]uint64, total*p.WordsPerRow)
			}
			if p.WordsPerRow != ix.WordsPerRow || !s.IsBinary() {
				panic("pipeline: inconsistent descriptor sets in index")
			}
		}
		off = 0
		for _, s := range sets {
			if s == nil || s.Len() == 0 {
				continue
			}
			p := s.Packed
			copy(ix.Words[off*ix.WordsPerRow:], p.Words)
			off += s.Len()
		}
		return ix
	}

	for _, s := range sets {
		if s == nil || s.Len() == 0 {
			continue
		}
		p := s.Pack().Packed
		if ix.Dim == 0 {
			ix.Dim = p.Dim
			ix.Floats = make([]float32, total*p.Dim)
			ix.RootNorms = make([]float32, total)
		}
		if p.Dim != ix.Dim || s.IsBinary() {
			panic("pipeline: inconsistent descriptor sets in index")
		}
	}
	off = 0
	lo, hi := float32(math.Inf(1)), float32(math.Inf(-1))
	for _, s := range sets {
		if s == nil || s.Len() == 0 {
			continue
		}
		p := s.Packed
		copy(ix.Floats[off*ix.Dim:], p.Floats)
		for i := 0; i < p.N; i++ {
			r := sqrt32(p.Norms[i])
			ix.RootNorms[off+i] = r
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
		off += s.Len()
	}
	// Unit-normalised galleries (SIFT, SURF) have no norm spread for
	// the bound to exploit; keep the plain scan there.
	ix.prune = off > 0 && hi-lo > 0.05*hi
	return ix
}

// RestoreDescriptorIndex rebuilds a flat index over restored descriptor
// sets, aliasing pre-concatenated storage instead of copying it — the
// snapshot loader's constructor. floats (and words, for binary sets)
// must be exactly the view-order concatenation of the sets' packed rows,
// which is how the v2 snapshot blob lays a family out; this is verified
// by pointer identity against every set's own packed block, and any
// mismatch (including nil storage, the v1 path) falls back to the
// copying NewDescriptorIndex build. Either way the result is
// bit-identical to NewDescriptorIndex(sets): same Starts, same scan
// storage bytes, same RootNorms and prune decision.
func RestoreDescriptorIndex(sets []*features.Set, floats []float32, words []uint64) *DescriptorIndex {
	skel := &DescriptorIndex{NumViews: len(sets), Starts: make([]int, len(sets)+1)}
	off := 0
	for v, s := range sets {
		skel.Starts[v] = off
		if s == nil || s.Len() == 0 {
			continue
		}
		p := s.Pack().Packed
		if s.IsBinary() {
			skel.Binary = true
			skel.WordsPerRow = p.WordsPerRow
		} else {
			skel.Dim = p.Dim
		}
		off += s.Len()
	}
	skel.Starts[len(sets)] = off

	aliased := off > 0
	if skel.Binary {
		aliased = aliased && len(words) == off*skel.WordsPerRow
	} else {
		aliased = aliased && skel.Dim > 0 && len(floats) == off*skel.Dim
	}
	if aliased {
		// The storage must BE the concatenation, not merely equal it:
		// each set's packed block has to sit at its own row offset of
		// the shared backing array.
		for v, s := range sets {
			if s == nil || s.Len() == 0 {
				continue
			}
			p := s.Packed
			start := skel.Starts[v]
			if skel.Binary {
				aliased = aliased && len(p.Words) > 0 && &p.Words[0] == &words[start*skel.WordsPerRow]
			} else {
				aliased = aliased && len(p.Floats) > 0 && &p.Floats[0] == &floats[start*skel.Dim]
			}
			if !aliased {
				break
			}
		}
	}
	if !aliased {
		return NewDescriptorIndex(sets)
	}
	if skel.Binary {
		skel.Words = words
		return skel
	}
	skel.Floats = floats
	skel.RootNorms = make([]float32, off)
	lo, hi := float32(math.Inf(1)), float32(math.Inf(-1))
	for v, s := range sets {
		if s == nil || s.Len() == 0 {
			continue
		}
		p := s.Packed
		start := skel.Starts[v]
		for i := 0; i < p.N; i++ {
			r := sqrt32(p.Norms[i])
			skel.RootNorms[start+i] = r
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
	}
	skel.prune = hi-lo > 0.05*hi
	return skel
}

// Len returns the total number of indexed descriptors.
func (ix *DescriptorIndex) Len() int { return ix.Starts[ix.NumViews] }

// Flat implements MatchIndex: the flat index is its own exact storage.
func (ix *DescriptorIndex) Flat() *DescriptorIndex { return ix }

// IndexKind implements MatchIndex.
func (ix *DescriptorIndex) IndexKind() IndexKind { return ExactKind }

// getCounts borrows a per-view count buffer from the pool. Contents
// are unspecified — GoodMatchCounts zeroes its output itself.
func (ix *DescriptorIndex) getCounts() *[]int32 {
	if v := ix.counts.Get(); v != nil {
		return v.(*[]int32)
	}
	s := make([]int32, ix.NumViews)
	return &s
}

// putCounts returns a buffer to the pool.
func (ix *DescriptorIndex) putCounts(s *[]int32) { ix.counts.Put(s) }

// GoodMatchCounts accumulates, for every gallery view, the number of
// query descriptors whose within-view 2-NN pass Lowe's ratio test —
// exactly match.GoodMatchCount(query, view, ratio) per view, computed
// in one scan of the flat matrix per query descriptor. counts must have
// NumViews entries and is overwritten.
//
//snmatch:noalloc
func (ix *DescriptorIndex) GoodMatchCounts(query *features.Set, ratio float64, counts []int32) {
	ix.GoodMatchCountsRange(query, ratio, counts, 0, ix.NumViews)
}

// GoodMatchCountsRange is GoodMatchCounts restricted to the views in
// [v0, v1): exactly counts[v0:v1] is overwritten, entries outside the
// range are untouched. Because the 2-NN search and ratio test are
// evaluated independently per view, the numbers written for a view are
// identical at every range split — which is what lets a sharded scan
// write disjoint ranges concurrently and still match the full scan bit
// for bit. Concurrent callers must pass a query whose Packed mirror is
// already built (extractors do; hand-assembled sets need Set.Pack).
//
//snmatch:noalloc
func (ix *DescriptorIndex) GoodMatchCountsRange(query *features.Set, ratio float64, counts []int32, v0, v1 int) {
	for i := v0; i < v1; i++ {
		counts[i] = 0
	}
	if query.Len() == 0 || ix.Len() == 0 {
		return
	}
	if query.IsBinary() != ix.Binary {
		panic("match: mixed descriptor representations")
	}
	qp := query.Pack().Packed
	if ix.Binary {
		ix.binaryCounts(qp, ratio, counts, v0, v1)
	} else {
		ix.floatCounts(qp, ratio, counts, v0, v1)
	}
}

// GoodMatchCountsTraced implements MatchIndex: the exact scan has no
// probe/verify split, so the whole scan books as match time.
//
//snmatch:noalloc
func (ix *DescriptorIndex) GoodMatchCountsTraced(query *features.Set, ratio float64, counts []int32, tr *obs.Trace) {
	ix.GoodMatchCountsRangeTraced(query, ratio, counts, 0, ix.NumViews, tr)
}

// GoodMatchCountsRangeTraced implements MatchIndex.
//
//snmatch:noalloc
func (ix *DescriptorIndex) GoodMatchCountsRangeTraced(query *features.Set, ratio float64, counts []int32, v0, v1 int, tr *obs.Trace) {
	if tr == nil {
		ix.GoodMatchCountsRange(query, ratio, counts, v0, v1)
		return
	}
	start := time.Now()
	ix.GoodMatchCountsRange(query, ratio, counts, v0, v1)
	tr.Add(obs.StageMatch, time.Since(start))
}

func (ix *DescriptorIndex) floatCounts(qp *features.Packed, ratio float64, counts []int32, v0, v1 int) {
	if qp.Dim != ix.Dim {
		panic("pipeline: query descriptor width does not match index")
	}
	dim := ix.Dim
	normErr := float32(dim) * normErrScale
	for qi := 0; qi < qp.N; qi++ {
		q := qp.FloatRow(qi)
		rq := sqrt32(qp.Norms[qi])
		for v := v0; v < v1; v++ {
			start, end := ix.Starts[v], ix.Starts[v+1]
			if end-start < 2 {
				continue // a view needs two neighbours for the ratio test
			}
			s1, s2 := inf32, inf32
			if ix.prune {
				for ti := start; ti < end; ti++ {
					rn := ix.RootNorms[ti]
					lb := rq - rn
					if lb < 0 {
						lb = -lb
					}
					lb -= (rq + rn) * normErr // deflate by the absolute norm error
					if lb > 0 && lb*lb*pruneMargin >= s2 {
						continue
					}
					d := features.L2Squared(q, ix.Floats[ti*dim:(ti+1)*dim])
					if d < s1 {
						s2, s1 = s1, d
					} else if d < s2 {
						s2 = d
					}
				}
			} else {
				// Four rows per step: independent accumulator chains,
				// identical per-row arithmetic, updates applied in
				// ascending train order.
				ti := start
				for ; ti+4 <= end; ti += 4 {
					d0, d1, d2, d3 := features.L2Squared4(q,
						ix.Floats[ti*dim:(ti+1)*dim],
						ix.Floats[(ti+1)*dim:(ti+2)*dim],
						ix.Floats[(ti+2)*dim:(ti+3)*dim],
						ix.Floats[(ti+3)*dim:(ti+4)*dim])
					s1, s2 = update2(s1, s2, d0)
					s1, s2 = update2(s1, s2, d1)
					s1, s2 = update2(s1, s2, d2)
					s1, s2 = update2(s1, s2, d3)
				}
				for ; ti < end; ti++ {
					d := features.L2Squared(q, ix.Floats[ti*dim:(ti+1)*dim])
					s1, s2 = update2(s1, s2, d)
				}
			}
			if float64(sqrt32(s1)) < ratio*float64(sqrt32(s2)) {
				counts[v]++
			}
		}
	}
}

func (ix *DescriptorIndex) binaryCounts(qp *features.Packed, ratio float64, counts []int32, v0, v1 int) {
	if qp.WordsPerRow != ix.WordsPerRow {
		panic("pipeline: query descriptor width does not match index")
	}
	wpr := ix.WordsPerRow
	for qi := 0; qi < qp.N; qi++ {
		q := qp.WordRow(qi)
		for v := v0; v < v1; v++ {
			start, end := ix.Starts[v], ix.Starts[v+1]
			if end-start < 2 {
				continue
			}
			s1, s2 := math.MaxInt, math.MaxInt
			for ti := start; ti < end; ti++ {
				d := features.HammingWords(q, ix.Words[ti*wpr:(ti+1)*wpr])
				if d < s1 {
					s2, s1 = s1, d
				} else if d < s2 {
					s2 = d
				}
			}
			if float64(float32(s1)) < ratio*float64(float32(s2)) {
				counts[v]++
			}
		}
	}
}

// update2 folds one squared distance into the running best/second-best.
func update2(s1, s2, d float32) (float32, float32) {
	if d < s1 {
		return d, s1
	}
	if d < s2 {
		return s1, d
	}
	return s1, s2
}

var inf32 = float32(math.Inf(1))

func sqrt32(v float32) float32 {
	if v <= 0 {
		return 0
	}
	return float32(math.Sqrt(float64(v)))
}
