package pipeline

import (
	"testing"

	"snmatch/internal/dataset"
	"snmatch/internal/features"
	"snmatch/internal/rng"
)

// shardCounts is the shard sweep the acceptance criteria pin: the
// degenerate single shard, an even split, a prime count, and one beyond
// most view counts.
var shardCounts = []int{1, 2, 7, 16}

// TestShardSpansPartition checks the structural invariant: every shard
// split is a partition of [0, NumViews) into non-empty ascending ranges.
func TestShardSpansPartition(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 30; trial++ {
		nv := r.Intn(25)
		sets := make([]*features.Set, nv)
		for i := range sets {
			sets[i] = randFloatSet(r, r.Intn(9), 8, 5)
		}
		ix := NewDescriptorIndex(sets)
		for _, shards := range []int{1, 2, 3, 7, 16, 100} {
			sx := NewShardedIndex(ix, shards)
			spans := sx.Spans()
			if nv == 0 {
				if len(spans) != 0 {
					t.Fatalf("nv=0 shards=%d: got %d spans", shards, len(spans))
				}
				continue
			}
			pos := 0
			for _, sp := range spans {
				if sp.Start != pos || sp.End <= sp.Start {
					t.Fatalf("nv=%d shards=%d: bad span %+v at pos %d (spans %v)", nv, shards, sp, pos, spans)
				}
				pos = sp.End
			}
			if pos != nv {
				t.Fatalf("nv=%d shards=%d: spans cover [0,%d), want [0,%d)", nv, shards, pos, nv)
			}
			if len(spans) > shards {
				t.Fatalf("nv=%d: got %d spans for %d shards", nv, len(spans), shards)
			}
		}
	}
}

// TestShardedCountsEqualFlat verifies the core contract on randomized
// float and binary galleries: sharded per-view counts are bit-identical
// to the flat scan at every shard count, including galleries with empty
// and single-descriptor views (which the ratio test skips).
func TestShardedCountsEqualFlat(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 40; trial++ {
		binary := trial%2 == 1
		nv := 1 + r.Intn(20)
		sets := make([]*features.Set, nv)
		for i := range sets {
			n := r.Intn(10) // includes 0 and 1: no-ratio-test views
			if binary {
				sets[i] = randBinarySet(r, n, 8)
			} else {
				sets[i] = randFloatSet(r, n, 16, 6)
			}
		}
		ix := NewDescriptorIndex(sets)
		var q *features.Set
		if binary {
			q = randBinarySet(r, 1+r.Intn(12), 8)
		} else {
			q = randFloatSet(r, 1+r.Intn(12), 16, 6)
		}
		want := make([]int32, nv)
		ix.GoodMatchCounts(q, 0.8, want)
		for _, shards := range shardCounts {
			sx := NewShardedIndex(ix, shards)
			got := make([]int32, nv)
			for i := range got {
				got[i] = -1 // poison: every entry must be overwritten
			}
			sx.GoodMatchCounts(q, 0.8, got)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("trial %d (binary=%v) shards=%d view %d: sharded count %d != flat %d",
						trial, binary, shards, v, got[v], want[v])
				}
			}
		}
	}
}

// TestShardedGalleryClassifyEqualsFlat runs real extractors end to end:
// for every descriptor family, ShardedGallery.Classify must reproduce
// Descriptor.Classify exactly (class, winning view and score) at every
// shard count. Under -race this also exercises the concurrent shard
// fan-out against the shared count buffer.
func TestShardedGalleryClassifyEqualsFlat(t *testing.T) {
	cfg := dataset.Config{Size: 48, Seed: 3}
	g := NewGallery(dataset.BuildSNS1(cfg))
	queries := dataset.BuildSNS2(cfg).Samples[:6]
	for _, kind := range []DescriptorKind{SIFT, SURF, ORB} {
		p := NewDescriptor(kind, 0.5)
		p.Prepare(g, 0)
		for _, shards := range shardCounts {
			sg := NewShardedGallery(g, shards)
			for qi, q := range queries {
				want := p.Classify(q.Image, g)
				got := sg.Classify(p, q.Image)
				if got != want {
					t.Fatalf("%s shards=%d query %d: sharded %+v != flat %+v", kind, shards, qi, got, want)
				}
			}
		}
	}
}

// TestShardedGalleryNonDescriptorPassthrough checks that pipelines
// without a flat index route through the plain gallery unchanged.
func TestShardedGalleryNonDescriptorPassthrough(t *testing.T) {
	cfg := dataset.Config{Size: 32, Seed: 5}
	g := NewGallery(dataset.BuildSNS1(cfg))
	sg := NewShardedGallery(g, 4)
	p := DefaultHybrid(WeightedSum)
	q := dataset.BuildSNS2(cfg).Samples[0]
	if got, want := sg.Classify(p, q.Image), p.Classify(q.Image, g); got != want {
		t.Fatalf("hybrid passthrough: %+v != %+v", got, want)
	}
}
