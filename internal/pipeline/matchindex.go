package pipeline

import (
	"fmt"
	"strings"

	"snmatch/internal/features"
	"snmatch/internal/obs"
)

// MatchIndex is the matching engine behind descriptor classification:
// given one query set it fills per-view good-match counts, the numbers
// classifyCounts turns into a prediction. The flat DescriptorIndex is
// the exact reference implementation; the approximate backends (MIH for
// Hamming-packed binary rows, IVF coarse quantization for float rows)
// implement the same contract over candidate subsets, and are required
// to degrade to bit-identical flat-scan results at their full-probe
// settings.
//
// GoodMatchCountsRange must write counts for exactly [v0, v1) with
// per-view results independent of the split, which is what lets
// ShardedIndex fan any backend out across workers and stay bit-identical
// to the unsharded scan.
type MatchIndex interface {
	// Flat returns the underlying exact index: the row storage every
	// backend verifies candidates against, the count-scratch pool, and
	// what snapshots persist.
	Flat() *DescriptorIndex
	// IndexKind reports which backend this is (for /healthz and logs).
	IndexKind() IndexKind
	GoodMatchCounts(query *features.Set, ratio float64, counts []int32)
	GoodMatchCountsRange(query *features.Set, ratio float64, counts []int32, v0, v1 int)
	// GoodMatchCountsTraced and GoodMatchCountsRangeTraced are the
	// instrumented variants: identical counts, but the backend splits
	// its elapsed time into tr's match (probe/scan) and verify (exact
	// re-scoring) stages and feeds the aggregate ANN histograms. A nil
	// trace records stage times nowhere; the untraced methods are
	// exactly the nil-trace calls. tr accumulates with atomic adds, so
	// the sharded fan-out's concurrent workers share one trace — its
	// match/verify stages then read as CPU time, not wall time.
	GoodMatchCountsTraced(query *features.Set, ratio float64, counts []int32, tr *obs.Trace)
	GoodMatchCountsRangeTraced(query *features.Set, ratio float64, counts []int32, v0, v1 int, tr *obs.Trace)
}

// IndexKind enumerates the matching index backends.
type IndexKind int

const (
	// ExactKind is the flat full scan: perfect recall, O(gallery rows)
	// per query descriptor.
	ExactKind IndexKind = iota
	// MIHKind is multi-index hashing over word-packed binary rows
	// (ORB): disjoint substrings of every row key hash buckets, queries
	// probe buckets within a substring Hamming radius, and candidates
	// are verified with the exact HammingWords kernel.
	MIHKind
	// IVFKind is inverted-file coarse quantization over either row
	// representation: deterministic seeded k-means (L2 over float rows;
	// k-majority Hamming over binary rows) partitions the rows into
	// lists stored as flat row-major blocks, and queries scan the
	// nprobe nearest lists with the exact distance kernels.
	IVFKind
)

// String names the backend as accepted by the -index flag.
func (k IndexKind) String() string {
	switch k {
	case ExactKind:
		return "exact"
	case MIHKind:
		return "mih"
	case IVFKind:
		return "ivf"
	}
	return fmt.Sprintf("IndexKind(%d)", int(k))
}

// ParseIndexKind resolves an -index flag value.
func ParseIndexKind(s string) (IndexKind, error) {
	switch strings.TrimSpace(strings.ToLower(s)) {
	case "", "exact", "flat":
		return ExactKind, nil
	case "mih":
		return MIHKind, nil
	case "ivf":
		return IVFKind, nil
	}
	return ExactKind, fmt.Errorf("pipeline: unknown index backend %q (want exact, mih or ivf)", s)
}

// MIHParams tunes the multi-index hashing backend. Zero values select
// the defaults.
type MIHParams struct {
	// SubstrBits is the substring width in bits: every row splits into
	// rowBits/SubstrBits disjoint substrings, each keying one hash
	// table. Must divide 64 and be at most 16 (the tables are
	// direct-addressed). Default 16.
	SubstrBits int
	// Radius is the per-substring Hamming probe radius: each query
	// substring probes every bucket within Radius bit flips. By the
	// pigeonhole principle a gallery row within Hamming distance
	// m*(Radius+1)-1 of the query (m substrings) is guaranteed to be a
	// candidate. 0, 1 or 2 (default 1); any value >= SubstrBits means
	// every bucket is probed — the exact full scan.
	Radius int
	// BucketCap, when positive, is a stop-bucket threshold: buckets
	// holding more than this many rows are dropped from their table. A
	// substring value shared by a large fraction of the gallery carries
	// little discriminative information — the analogue of a stop-word in
	// bag-of-words retrieval — and walking such buckets degrades the
	// probe toward a (random-access) full scan on heavy-tailed key
	// distributions. Rows in a stopped bucket stay reachable through
	// their rarer substrings. Off by default: on low-entropy descriptor
	// sets the informative neighbours themselves sit in the popular
	// buckets, and dropping them costs recall (see the ANN benchmarks) —
	// reach for ivf on such galleries instead.
	BucketCap int
}

func (p MIHParams) withDefaults() MIHParams {
	if p.SubstrBits == 0 {
		p.SubstrBits = 16
	}
	if p.Radius == 0 {
		p.Radius = 1
	}
	if p.Radius < 0 {
		p.Radius = 0
	}
	return p
}

// IVFParams tunes the inverted-file backend. Zero values select the
// defaults.
type IVFParams struct {
	// NLists is the number of coarse k-means centroids. 0 picks
	// ~2*sqrt(rows) clamped to [1, 1024].
	NLists int
	// NProbe is the number of nearest lists scanned per query
	// descriptor (default 8). NProbe >= NLists scans everything — the
	// exact full scan.
	NProbe int
	// Iters is the Lloyd iteration count of the (sampled, seeded)
	// k-means training run (default 6).
	Iters int
	// Seed seeds the deterministic k-means (default 1): equal seeds on
	// equal galleries build identical lists on every platform.
	Seed uint64
}

func (p IVFParams) withDefaults() IVFParams {
	if p.NProbe == 0 {
		p.NProbe = 8
	}
	if p.Iters == 0 {
		p.Iters = 6
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// IndexSpec is the per-gallery index configuration surface: which
// backend to build over each descriptor family's flat index, and its
// knobs. A backend that does not apply to a family's representation
// (MIH needs binary rows; IVF quantizes either representation) falls
// back to the exact flat scan for that family, so one spec covers a
// mixed SIFT+ORB gallery.
type IndexSpec struct {
	Kind IndexKind
	MIH  MIHParams
	IVF  IVFParams
}

// Validate rejects parameter combinations the builders cannot honour.
func (s IndexSpec) Validate() error {
	switch s.Kind {
	case ExactKind:
		return nil
	case MIHKind:
		p := s.MIH.withDefaults()
		if p.SubstrBits < 1 || p.SubstrBits > 16 || 64%p.SubstrBits != 0 {
			return fmt.Errorf("pipeline: mih substring width %d must divide 64 and be at most 16", p.SubstrBits)
		}
		if p.Radius > 2 && p.Radius < p.SubstrBits {
			return fmt.Errorf("pipeline: mih radius %d not supported (want 0-2, or >= %d for the exact full probe)", p.Radius, p.SubstrBits)
		}
		return nil
	case IVFKind:
		p := s.IVF.withDefaults()
		if p.NLists < 0 {
			return fmt.Errorf("pipeline: ivf nlists %d must be non-negative", p.NLists)
		}
		if p.NProbe < 1 {
			return fmt.Errorf("pipeline: ivf nprobe %d must be at least 1", p.NProbe)
		}
		return nil
	}
	return fmt.Errorf("pipeline: unknown index kind %d", int(s.Kind))
}

// String renders the spec for logs and /healthz.
func (s IndexSpec) String() string {
	switch s.Kind {
	case MIHKind:
		p := s.MIH.withDefaults()
		return fmt.Sprintf("mih(bits=%d,radius=%d)", p.SubstrBits, p.Radius)
	case IVFKind:
		p := s.IVF.withDefaults()
		nl := "auto"
		if p.NLists > 0 {
			nl = fmt.Sprintf("%d", p.NLists)
		}
		return fmt.Sprintf("ivf(nlists=%s,nprobe=%d)", nl, p.NProbe)
	}
	return "exact"
}

// verifyShortlist is the exact re-scoring phase shared by the
// approximate backends: every view in [v0, v1) holding a non-zero
// approximate count is re-scored with the flat kernel over its full row
// block, replacing the approximate count with the exact one. Runs of
// adjacent shortlisted views coalesce into single ranged calls, so the
// cost is one flat scan over just the shortlisted views' rows.
//
// The result is that counts[v] is either exactly the flat scan's count
// or zero — approximate probing only decides *which* views compete, not
// their scores. Shortlist membership depends only on the query and the
// view's own rows (candidate generation never looks across views), so
// sharded fan-out composes to the same counts as one unsharded call.
func verifyShortlist(ix *DescriptorIndex, query *features.Set, ratio float64, counts []int32, v0, v1 int) {
	for v := v0; v < v1; {
		if counts[v] == 0 {
			v++
			continue
		}
		end := v + 1
		for end < v1 && counts[end] > 0 {
			end++
		}
		ix.GoodMatchCountsRange(query, ratio, counts, v, end)
		v = end
	}
}

// buildMatchIndex constructs the spec'd backend over a flat index.
// Backends that cannot apply — wrong representation, or an empty
// gallery — return the flat index itself, so callers always get a
// working MatchIndex.
func buildMatchIndex(ix *DescriptorIndex, spec IndexSpec) MatchIndex {
	if ix.Len() == 0 {
		return ix
	}
	switch spec.Kind {
	case MIHKind:
		if !ix.Binary {
			return ix
		}
		return NewMIHIndex(ix, spec.MIH)
	case IVFKind:
		return NewIVFIndex(ix, spec.IVF)
	}
	return ix
}
