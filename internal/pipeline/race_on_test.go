//go:build race

package pipeline

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
