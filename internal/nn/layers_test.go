package nn

import (
	"math"
	"testing"

	"snmatch/internal/rng"
)

// numericGrad estimates d loss / d t[i] by central differences, where
// loss is recomputed by fn after each perturbation.
func numericGrad(t *Tensor, i int, fn func() float64) float64 {
	const eps = 1e-2
	orig := t.Data[i]
	t.Data[i] = orig + eps
	up := fn()
	t.Data[i] = orig - eps
	down := fn()
	t.Data[i] = orig
	return (up - down) / (2 * eps)
}

// sumLoss is a simple scalar objective: sum of all outputs. Its gradient
// with respect to the output is all ones.
func sumAll(t *Tensor) float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

func onesLike(t *Tensor) *Tensor {
	g := NewTensor(t.Shape...)
	for i := range g.Data {
		g.Data[i] = 1
	}
	return g
}

func randTensor(r *rng.RNG, shape ...int) *Tensor {
	t := NewTensor(shape...)
	for i := range t.Data {
		t.Data[i] = float32(r.NormRange(0, 1))
	}
	return t
}

func TestTensorBasics(t *testing.T) {
	x := NewTensor(2, 3)
	if x.Size() != 6 || x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Fatal("tensor shape accessors wrong")
	}
	x.Data[0] = 5
	c := x.Clone()
	c.Data[0] = 9
	if x.Data[0] != 5 {
		t.Error("Clone shares data")
	}
	r := x.Reshape(3, 2)
	r.Data[1] = 7
	if x.Data[1] != 7 {
		t.Error("Reshape must share data")
	}
	x.Zero()
	if x.Data[0] != 0 {
		t.Error("Zero failed")
	}
}

func TestTensorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad reshape did not panic")
		}
	}()
	NewTensor(2, 2).Reshape(3)
}

func TestConv2DForwardKnown(t *testing.T) {
	r := rng.New(1)
	c := NewConv2D(1, 1, 3, 0, r)
	// Identity-ish kernel: only centre weight 2, bias 1.
	c.W.W.Zero()
	c.W.W.Data[4] = 2
	c.B.W.Data[0] = 1
	x := NewTensor(1, 1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	out := c.Forward(x)
	if out.Shape[2] != 2 || out.Shape[3] != 2 {
		t.Fatalf("out shape = %v", out.Shape)
	}
	// Output (0,0) corresponds to centre pixel (1,1) = value 5 -> 2*5+1.
	if out.Data[0] != 11 {
		t.Errorf("out[0] = %v, want 11", out.Data[0])
	}
}

func TestConv2DPadding(t *testing.T) {
	r := rng.New(2)
	c := NewConv2D(1, 2, 3, 1, r)
	x := randTensor(r, 2, 1, 5, 5)
	out := c.Forward(x)
	want := []int{2, 2, 5, 5}
	for i, d := range want {
		if out.Shape[i] != d {
			t.Fatalf("same-pad shape = %v, want %v", out.Shape, want)
		}
	}
}

func TestConv2DGradients(t *testing.T) {
	r := rng.New(3)
	c := NewConv2D(2, 3, 3, 1, r)
	x := randTensor(r, 1, 2, 5, 5)
	fn := func() float64 { return sumAll(c.Forward(x)) }
	out := c.Forward(x)
	dx := c.Backward(onesLike(out))

	for _, i := range []int{0, 7, 24, 49} {
		want := numericGrad(x, i, fn)
		if math.Abs(float64(dx.Data[i])-want) > 1e-2*(1+math.Abs(want)) {
			t.Errorf("dx[%d] = %v, numeric %v", i, dx.Data[i], want)
		}
	}
	// Weight gradients (accumulated once by the Backward above; reset and
	// redo to measure cleanly).
	c.W.G.Zero()
	c.B.G.Zero()
	c.Forward(x)
	c.Backward(onesLike(out))
	for _, i := range []int{0, 5, 17} {
		want := numericGrad(c.W.W, i, fn)
		if math.Abs(float64(c.W.G.Data[i])-want) > 1e-2*(1+math.Abs(want)) {
			t.Errorf("dW[%d] = %v, numeric %v", i, c.W.G.Data[i], want)
		}
	}
	want := numericGrad(c.B.W, 0, fn)
	if math.Abs(float64(c.B.G.Data[0])-want) > 1e-2*(1+math.Abs(want)) {
		t.Errorf("dB[0] = %v, numeric %v", c.B.G.Data[0], want)
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := NewMaxPool2D(2)
	x := NewTensor(1, 1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	out := p.Forward(x)
	if out.Shape[2] != 2 || out.Shape[3] != 2 {
		t.Fatalf("pool shape = %v", out.Shape)
	}
	// Max of each 2x2 block: 5, 7, 13, 15.
	wantVals := []float32{5, 7, 13, 15}
	for i, w := range wantVals {
		if out.Data[i] != w {
			t.Errorf("pool[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
	g := onesLike(out)
	dx := p.Backward(g)
	// Gradient goes only to argmax positions.
	var nonZero int
	for i, v := range dx.Data {
		if v != 0 {
			nonZero++
			if x.Data[i] != 5 && x.Data[i] != 7 && x.Data[i] != 13 && x.Data[i] != 15 {
				t.Errorf("gradient routed to non-max position %d", i)
			}
		}
	}
	if nonZero != 4 {
		t.Errorf("nonZero = %d, want 4", nonZero)
	}
}

func TestReLUGradient(t *testing.T) {
	relu := NewReLU()
	x := NewTensor(1, 4)
	x.Data = []float32{-1, 2, -3, 4}
	out := relu.Forward(x)
	if out.Data[0] != 0 || out.Data[1] != 2 || out.Data[3] != 4 {
		t.Errorf("relu forward = %v", out.Data)
	}
	dx := relu.Backward(onesLike(out))
	if dx.Data[0] != 0 || dx.Data[1] != 1 || dx.Data[2] != 0 || dx.Data[3] != 1 {
		t.Errorf("relu backward = %v", dx.Data)
	}
}

func TestDenseGradients(t *testing.T) {
	r := rng.New(4)
	d := NewDense(6, 4, r)
	x := randTensor(r, 2, 6)
	fn := func() float64 { return sumAll(d.Forward(x)) }
	out := d.Forward(x)
	dx := d.Backward(onesLike(out))
	for _, i := range []int{0, 5, 11} {
		want := numericGrad(x, i, fn)
		if math.Abs(float64(dx.Data[i])-want) > 1e-2*(1+math.Abs(want)) {
			t.Errorf("dx[%d] = %v, numeric %v", i, dx.Data[i], want)
		}
	}
	d.W.G.Zero()
	d.B.G.Zero()
	d.Forward(x)
	d.Backward(onesLike(out))
	for _, i := range []int{0, 10, 23} {
		want := numericGrad(d.W.W, i, fn)
		if math.Abs(float64(d.W.G.Data[i])-want) > 1e-2*(1+math.Abs(want)) {
			t.Errorf("dW[%d] = %v, numeric %v", i, d.W.G.Data[i], want)
		}
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	x := randTensor(rng.New(5), 2, 3, 4, 5)
	out := f.Forward(x)
	if out.Shape[0] != 2 || out.Shape[1] != 60 {
		t.Fatalf("flatten shape = %v", out.Shape)
	}
	back := f.Backward(out)
	for i, d := range x.Shape {
		if back.Shape[i] != d {
			t.Fatalf("backward shape = %v", back.Shape)
		}
	}
}

func TestSharedCopySharesParams(t *testing.T) {
	r := rng.New(6)
	c := NewConv2D(1, 2, 3, 1, r)
	cp := c.SharedCopy().(*Conv2D)
	if cp.W != c.W || cp.B != c.B {
		t.Error("SharedCopy must share parameter objects")
	}
	d := NewDense(4, 2, r)
	dp := d.SharedCopy().(*Dense)
	if dp.W != d.W {
		t.Error("Dense SharedCopy must share weights")
	}
	// Forward on the copy must not disturb the original's cache.
	x1 := randTensor(r, 1, 1, 6, 6)
	x2 := randTensor(r, 1, 1, 6, 6)
	out1 := c.Forward(x1)
	_ = cp.Forward(x2)
	dx := c.Backward(onesLike(out1))
	for i, d := range x1.Shape {
		if dx.Shape[i] != d {
			t.Fatal("original cache clobbered by shared copy")
		}
	}
}
