package nn

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"snmatch/internal/imaging"
	"snmatch/internal/rng"
)

func TestSoftmaxRows(t *testing.T) {
	logits := NewTensor(2, 3)
	logits.Data = []float32{1, 2, 3, 1000, 1000, 1000}
	p := Softmax(logits)
	for ni := 0; ni < 2; ni++ {
		var sum float64
		for k := 0; k < 3; k++ {
			v := float64(p.Data[ni*3+k])
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("prob out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("row %d sums to %v", ni, sum)
		}
	}
	if !(p.Data[2] > p.Data[1] && p.Data[1] > p.Data[0]) {
		t.Error("softmax not monotone")
	}
}

func TestCrossEntropyValueAndGrad(t *testing.T) {
	logits := NewTensor(1, 2)
	logits.Data = []float32{0, 0}
	loss, grad := CrossEntropy(logits, []int{1})
	if math.Abs(loss-math.Log(2)) > 1e-6 {
		t.Errorf("uniform CE = %v, want ln 2", loss)
	}
	// Gradient: softmax - onehot = [0.5, -0.5].
	if math.Abs(float64(grad.Data[0])-0.5) > 1e-6 || math.Abs(float64(grad.Data[1])+0.5) > 1e-6 {
		t.Errorf("grad = %v", grad.Data)
	}
	// Numeric check.
	fn := func() float64 {
		l, _ := CrossEntropy(logits, []int{1})
		return l
	}
	for i := 0; i < 2; i++ {
		want := numericGrad(logits, i, fn)
		if math.Abs(float64(grad.Data[i])-want) > 1e-3 {
			t.Errorf("grad[%d] = %v, numeric %v", i, grad.Data[i], want)
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := NewTensor(3, 2)
	logits.Data = []float32{2, 1, 0, 3, 5, 4}
	got := Accuracy(logits, []int{0, 1, 0})
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("accuracy = %v, want 1", got)
	}
	got = Accuracy(logits, []int{1, 0, 1})
	if math.Abs(got) > 1e-9 {
		t.Errorf("accuracy = %v, want 0", got)
	}
}

func TestAdamMinimisesQuadratic(t *testing.T) {
	// Minimise f(w) = sum w^2 by feeding grad = 2w.
	p := NewParam(NewTensor(4))
	for i := range p.W.Data {
		p.W.Data[i] = float32(i + 1)
	}
	opt := NewAdam(0.1, 0)
	for step := 0; step < 500; step++ {
		for i, w := range p.W.Data {
			p.G.Data[i] = 2 * w
		}
		opt.Update([]*Param{p})
	}
	for i, w := range p.W.Data {
		if math.Abs(float64(w)) > 0.05 {
			t.Errorf("w[%d] = %v after optimisation", i, w)
		}
	}
	if opt.Step() != 500 {
		t.Errorf("steps = %d", opt.Step())
	}
}

func TestAdamDecaySchedule(t *testing.T) {
	opt := NewAdam(1e-4, 1e-2)
	if math.Abs(opt.CurrentLR()-1e-4) > 1e-12 {
		t.Errorf("initial lr = %v", opt.CurrentLR())
	}
	p := NewParam(NewTensor(1))
	for i := 0; i < 100; i++ {
		opt.Update([]*Param{p})
	}
	want := 1e-4 / (1 + 1e-2*100)
	if math.Abs(opt.CurrentLR()-want) > 1e-12 {
		t.Errorf("decayed lr = %v, want %v", opt.CurrentLR(), want)
	}
}

func tinyNet(t *testing.T) *NXCorrNet {
	t.Helper()
	cfg := NXCorrConfig{
		InputH: 12, InputW: 12, InputC: 3,
		Conv1Out: 4, Conv2Out: 4, Kernel: 3,
		Patch: 3, SearchW: 3, SearchH: 3,
		Conv3Out: 4, Hidden: 16, Seed: 7,
	}
	net, err := NewNXCorrNet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNetworkForwardShape(t *testing.T) {
	net := tinyNet(t)
	r := rng.New(1)
	a := randTensor(r, 2, 3, 12, 12)
	b := randTensor(r, 2, 3, 12, 12)
	logits := net.Forward(a, b)
	if logits.Shape[0] != 2 || logits.Shape[1] != 2 {
		t.Fatalf("logits shape = %v", logits.Shape)
	}
}

func TestNetworkOverfitsTinyDataset(t *testing.T) {
	net := tinyNet(t)
	r := rng.New(2)
	// Similar pairs: identical tensors; dissimilar: independent noise.
	var as, bs []*Tensor
	var labels []int
	for i := 0; i < 8; i++ {
		x := randTensor(r, 3, 12, 12)
		as = append(as, x)
		bs = append(bs, x.Clone())
		labels = append(labels, 1)
		as = append(as, randTensor(r, 3, 12, 12))
		bs = append(bs, randTensor(r, 3, 12, 12))
		labels = append(labels, 0)
	}
	cfg := FitConfig{Epochs: 30, BatchSize: 4, LR: 3e-3, Decay: 0, EarlyEps: 1e-9, Patience: 30, Seed: 3}
	res := net.Fit(as, bs, labels, cfg)
	if len(res.LossByEp) == 0 {
		t.Fatal("no epochs ran")
	}
	first, last := res.LossByEp[0], res.FinalLoss
	if last >= first {
		t.Errorf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestEarlyStoppingTriggers(t *testing.T) {
	net := tinyNet(t)
	r := rng.New(4)
	// Unlearnable task: random labels on random pairs, tiny LR so the
	// loss plateaus immediately.
	var as, bs []*Tensor
	var labels []int
	for i := 0; i < 8; i++ {
		as = append(as, randTensor(r, 3, 12, 12))
		bs = append(bs, randTensor(r, 3, 12, 12))
		labels = append(labels, i%2)
	}
	cfg := FitConfig{Epochs: 100, BatchSize: 8, LR: 1e-12, Decay: 0, EarlyEps: 1e-3, Patience: 3, Seed: 5}
	res := net.Fit(as, bs, labels, cfg)
	if !res.EarlyStop {
		t.Error("early stopping did not trigger on plateau")
	}
	if res.Epochs >= 100 {
		t.Errorf("ran all %d epochs", res.Epochs)
	}
}

func TestPredictPairBounds(t *testing.T) {
	net := tinyNet(t)
	r := rng.New(6)
	a := randTensor(r, 3, 12, 12)
	b := randTensor(r, 3, 12, 12)
	p := net.PredictPair(a, b)
	if p < 0 || p > 1 || math.IsNaN(p) {
		t.Errorf("PredictPair = %v", p)
	}
}

func TestSharedClonePredictsIdentically(t *testing.T) {
	net := tinyNet(t)
	clone := net.SharedClone()
	r := rng.New(9)
	for trial := 0; trial < 3; trial++ {
		a := randTensor(r, 3, 12, 12)
		b := randTensor(r, 3, 12, 12)
		if got, want := clone.PredictPair(a, b), net.PredictPair(a, b); got != want {
			t.Errorf("trial %d: clone predicts %v, original %v", trial, got, want)
		}
	}
	// Weights are shared, not copied.
	np, cp := net.Params(), clone.Params()
	if len(np) != len(cp) {
		t.Fatalf("param counts differ: %d vs %d", len(np), len(cp))
	}
	for i := range np {
		if np[i] != cp[i] {
			t.Errorf("param %d not shared", i)
		}
	}
}

func TestSharedCloneConcurrentInference(t *testing.T) {
	net := tinyNet(t)
	r := rng.New(10)
	a := randTensor(r, 3, 12, 12)
	b := randTensor(r, 3, 12, 12)
	want := net.PredictPair(a, b)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			clone := net.SharedClone()
			for i := 0; i < 5; i++ {
				if got := clone.PredictPair(a, b); got != want {
					t.Errorf("concurrent clone predicts %v, want %v", got, want)
				}
			}
		}()
	}
	wg.Wait()
}

func TestSaveLoadRoundTrip(t *testing.T) {
	net := tinyNet(t)
	r := rng.New(7)
	a := randTensor(r, 3, 12, 12)
	b := randTensor(r, 3, 12, 12)
	before := net.PredictPair(a, b)

	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	after := loaded.PredictPair(a, b)
	if math.Abs(before-after) > 1e-6 {
		t.Errorf("prediction changed after round trip: %v vs %v", before, after)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestNewNXCorrNetValidation(t *testing.T) {
	if _, err := NewNXCorrNet(NXCorrConfig{InputH: 4, InputW: 4}); err == nil {
		t.Error("tiny input accepted")
	}
	cfg := DefaultConfig(32)
	if _, err := NewNXCorrNet(cfg); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestImageToTensor(t *testing.T) {
	img := imaging.NewImageFilled(8, 8, imaging.C(255, 0, 128))
	tt := ImageToTensor(img, 8, 8)
	if tt.Shape[0] != 3 || tt.Shape[1] != 8 || tt.Shape[2] != 8 {
		t.Fatalf("shape = %v", tt.Shape)
	}
	if tt.Data[0] != 1 || tt.Data[64] != 0 || math.Abs(float64(tt.Data[128])-128.0/255) > 1e-6 {
		t.Errorf("channel values wrong: %v %v %v", tt.Data[0], tt.Data[64], tt.Data[128])
	}
	// Resizing path.
	tt2 := ImageToTensor(img, 4, 4)
	if tt2.Shape[1] != 4 {
		t.Errorf("resize shape = %v", tt2.Shape)
	}
}

func TestFitLengthMismatchPanics(t *testing.T) {
	net := tinyNet(t)
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	net.Fit([]*Tensor{NewTensor(3, 12, 12)}, nil, nil, DefaultFit())
}

func TestNetworkDeterministicInit(t *testing.T) {
	a := tinyNet(t)
	b := tinyNet(t)
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pb[i].W.Data[j] {
				t.Fatal("weights differ for equal seeds")
			}
		}
	}
}
