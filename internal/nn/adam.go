package nn

import "math"

// Adam implements the Adam optimiser with Keras-style inverse-time
// learning-rate decay: lr_t = LR / (1 + Decay * t), as configured in the
// paper (lr = 1e-4, decay = 1e-7).
type Adam struct {
	LR    float64
	Decay float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	step  int
}

// NewAdam returns an optimiser with the standard betas.
func NewAdam(lr, decay float64) *Adam {
	return &Adam{LR: lr, Decay: decay, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step returns the number of updates applied so far.
func (a *Adam) Step() int { return a.step }

// CurrentLR returns the decayed learning rate for the next update.
func (a *Adam) CurrentLR() float64 {
	return a.LR / (1 + a.Decay*float64(a.step))
}

// Update applies one Adam step to every parameter using its accumulated
// gradient, then clears the gradients.
func (a *Adam) Update(params []*Param) {
	lr := a.CurrentLR()
	a.step++
	t := float64(a.step)
	bc1 := 1 - math.Pow(a.Beta1, t)
	bc2 := 1 - math.Pow(a.Beta2, t)
	for _, p := range params {
		if p.m == nil {
			p.m = NewTensor(p.W.Shape...)
			p.v = NewTensor(p.W.Shape...)
		}
		for i, g := range p.G.Data {
			m := a.Beta1*float64(p.m.Data[i]) + (1-a.Beta1)*float64(g)
			v := a.Beta2*float64(p.v.Data[i]) + (1-a.Beta2)*float64(g)*float64(g)
			p.m.Data[i] = float32(m)
			p.v.Data[i] = float32(v)
			mHat := m / bc1
			vHat := v / bc2
			p.W.Data[i] -= float32(lr * mHat / (math.Sqrt(vHat) + a.Eps))
		}
		p.G.Zero()
	}
}
