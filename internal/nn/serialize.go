package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"snmatch/internal/imaging"
)

// magic identifies the model file format.
const magic = uint32(0x534e5843) // "SNXC"

// Save writes the network configuration and weights to w.
func (n *NXCorrNet) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cfg := []int64{
		int64(n.Cfg.InputH), int64(n.Cfg.InputW), int64(n.Cfg.InputC),
		int64(n.Cfg.Conv1Out), int64(n.Cfg.Conv2Out), int64(n.Cfg.Kernel),
		int64(n.Cfg.Patch), int64(n.Cfg.SearchW), int64(n.Cfg.SearchH),
		int64(n.Cfg.Conv3Out), int64(n.Cfg.Hidden), int64(n.Cfg.Seed),
	}
	if err := binary.Write(bw, binary.LittleEndian, magic); err != nil {
		return fmt.Errorf("nn: save header: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, cfg); err != nil {
		return fmt.Errorf("nn: save config: %w", err)
	}
	for _, p := range n.params {
		if err := binary.Write(bw, binary.LittleEndian, p.W.Data); err != nil {
			return fmt.Errorf("nn: save weights: %w", err)
		}
	}
	return bw.Flush()
}

// Load reads a network saved with Save.
func Load(r io.Reader) (*NXCorrNet, error) {
	br := bufio.NewReader(r)
	var m uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("nn: load header: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("nn: bad magic %#x", m)
	}
	cfg := make([]int64, 12)
	if err := binary.Read(br, binary.LittleEndian, cfg); err != nil {
		return nil, fmt.Errorf("nn: load config: %w", err)
	}
	c := NXCorrConfig{
		InputH: int(cfg[0]), InputW: int(cfg[1]), InputC: int(cfg[2]),
		Conv1Out: int(cfg[3]), Conv2Out: int(cfg[4]), Kernel: int(cfg[5]),
		Patch: int(cfg[6]), SearchW: int(cfg[7]), SearchH: int(cfg[8]),
		Conv3Out: int(cfg[9]), Hidden: int(cfg[10]), Seed: uint64(cfg[11]),
	}
	net, err := NewNXCorrNet(c)
	if err != nil {
		return nil, err
	}
	for _, p := range net.params {
		if err := binary.Read(br, binary.LittleEndian, p.W.Data); err != nil {
			return nil, fmt.Errorf("nn: load weights: %w", err)
		}
	}
	return net, nil
}

// SaveFile writes the model to a file path.
func (n *NXCorrNet) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: save file: %w", err)
	}
	defer f.Close()
	if err := n.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a model from a file path.
func LoadFile(path string) (*NXCorrNet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: load file: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// ImageToTensor converts an RGB image to a [3, H, W] tensor with values
// scaled to [0, 1], resizing to the given shape first.
func ImageToTensor(img *imaging.Image, h, w int) *Tensor {
	if img.W != w || img.H != h {
		img = img.ResizeBilinear(w, h)
	}
	t := NewTensor(3, h, w)
	plane := h * w
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := img.At(x, y)
			i := y*w + x
			t.Data[i] = float32(c.R) / 255
			t.Data[plane+i] = float32(c.G) / 255
			t.Data[2*plane+i] = float32(c.B) / 255
		}
	}
	return t
}
