package nn

import "math"

// Softmax converts logits [N, K] into probabilities row by row.
func Softmax(logits *Tensor) *Tensor {
	n, k := logits.Shape[0], logits.Shape[1]
	out := NewTensor(n, k)
	for ni := 0; ni < n; ni++ {
		row := logits.Data[ni*k : (ni+1)*k]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v - maxV))
			out.Data[ni*k+i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range row {
			out.Data[ni*k+i] *= inv
		}
	}
	return out
}

// CrossEntropy computes the mean categorical cross-entropy of softmaxed
// logits against integer labels, together with the gradient with respect
// to the logits (the standard softmax - onehot form, averaged over the
// batch).
func CrossEntropy(logits *Tensor, labels []int) (loss float64, grad *Tensor) {
	n, k := logits.Shape[0], logits.Shape[1]
	probs := Softmax(logits)
	grad = NewTensor(n, k)
	invN := 1 / float64(n)
	for ni := 0; ni < n; ni++ {
		p := float64(probs.Data[ni*k+labels[ni]])
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p) * invN
		for ki := 0; ki < k; ki++ {
			g := float64(probs.Data[ni*k+ki])
			if ki == labels[ni] {
				g -= 1
			}
			grad.Data[ni*k+ki] = float32(g * invN)
		}
	}
	return loss, grad
}

// Accuracy returns the fraction of rows whose argmax equals the label.
func Accuracy(logits *Tensor, labels []int) float64 {
	n, k := logits.Shape[0], logits.Shape[1]
	correct := 0
	for ni := 0; ni < n; ni++ {
		best, bestV := 0, logits.Data[ni*k]
		for ki := 1; ki < k; ki++ {
			if logits.Data[ni*k+ki] > bestV {
				best, bestV = ki, logits.Data[ni*k+ki]
			}
		}
		if best == labels[ni] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
