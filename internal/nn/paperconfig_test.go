package nn

import "testing"

func TestPaperConfigConstructs(t *testing.T) {
	// The full Subramaniam et al. configuration (60x160 inputs, 37-wide
	// search window) must build: parameter shapes are the GPU-scale ones
	// even though training it on CPU is impractical.
	net, err := NewNXCorrNet(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range net.Params() {
		total += p.W.Size()
	}
	// The correlation volume has 25 * 37 * 5 = 4625 channels feeding a
	// 25-map conv: that conv alone holds 4625*25*25 weights.
	if total < 4625*25*25 {
		t.Errorf("paper config parameter count = %d, implausibly small", total)
	}
	if net.Cfg.SearchW != 37 || net.Cfg.SearchH != 5 {
		t.Errorf("search window = %dx%d", net.Cfg.SearchW, net.Cfg.SearchH)
	}
}

func TestDefaultConfigForwardRuns(t *testing.T) {
	net, err := NewNXCorrNet(DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	a := NewTensor(1, 3, 16, 16)
	b := NewTensor(1, 3, 16, 16)
	logits := net.Forward(a, b)
	if logits.Shape[0] != 1 || logits.Shape[1] != 2 {
		t.Errorf("logits shape = %v", logits.Shape)
	}
}
