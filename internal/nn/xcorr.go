package nn

import "math"

// NormXCorr is the Normalized-X-Corr matching layer of Subramaniam,
// Chatterjee and Mittal (NIPS 2016). For every spatial location of
// feature map A it computes the normalised cross-correlation between the
// Patch x Patch window centred there and windows of B displaced within a
// SearchH x SearchW neighbourhood. The output has C * SearchH * SearchW
// channels: the paper's dense inexact-matching tensor.
//
// Normalisation subtracts each patch's mean and divides by its standard
// deviation, which gives the architecture its robustness to illumination
// differences; the search window provides the "inexact" spatial slack.
type NormXCorr struct {
	Patch   int // patch side (paper: 5)
	SearchW int // horizontal displacement count (odd)
	SearchH int // vertical displacement count (odd)

	a, b *Tensor // cached inputs
}

// NewNormXCorr creates the layer. Even window sizes are rounded up to
// the next odd value so the window is centred.
func NewNormXCorr(patch, searchW, searchH int) *NormXCorr {
	if patch < 1 {
		patch = 5
	}
	if searchW%2 == 0 {
		searchW++
	}
	if searchH%2 == 0 {
		searchH++
	}
	return &NormXCorr{Patch: patch, SearchW: searchW, SearchH: searchH}
}

// SharedCopy returns a layer with the same geometry but private input
// caches, so independent clones of the network can run Forward2
// concurrently. The layer has no trainable parameters.
func (l *NormXCorr) SharedCopy() *NormXCorr {
	return &NormXCorr{Patch: l.Patch, SearchW: l.SearchW, SearchH: l.SearchH}
}

const xcorrEps = 1e-4

// OutChannels returns the output channel count for an input with c
// channels.
func (l *NormXCorr) OutChannels(c int) int { return c * l.SearchW * l.SearchH }

// patchStats computes the mean and stddev of the Patch x Patch window of
// channel c centred at (y, x), with zero padding outside the map.
func (l *NormXCorr) patchStats(t *Tensor, n, c, y, x int) (mean, std float32) {
	h, w := t.Shape[2], t.Shape[3]
	r := l.Patch / 2
	var sum, sumSq float64
	cnt := float64(l.Patch * l.Patch)
	for dy := -r; dy <= r; dy++ {
		yy := y + dy
		if yy < 0 || yy >= h {
			continue
		}
		for dx := -r; dx <= r; dx++ {
			xx := x + dx
			if xx < 0 || xx >= w {
				continue
			}
			v := float64(t.Data[t.at4(n, c, yy, xx)])
			sum += v
			sumSq += v * v
		}
	}
	m := sum / cnt
	variance := sumSq/cnt - m*m
	if variance < 0 {
		variance = 0
	}
	return float32(m), float32(math.Sqrt(variance) + xcorrEps)
}

// ncc computes the normalised cross-correlation between the patches of a
// and b centred at (ya, xa) and (yb, xb) on channel c.
func (l *NormXCorr) ncc(a, b *Tensor, n, c, ya, xa, yb, xb int, ma, sa, mb, sb float32) float32 {
	h, w := a.Shape[2], a.Shape[3]
	r := l.Patch / 2
	var sum float32
	for dy := -r; dy <= r; dy++ {
		ay, by := ya+dy, yb+dy
		for dx := -r; dx <= r; dx++ {
			ax, bx := xa+dx, xb+dx
			var va, vb float32
			va, vb = -ma, -mb // zero padding contributes -mean
			if ay >= 0 && ay < h && ax >= 0 && ax < w {
				va = a.Data[a.at4(n, c, ay, ax)] - ma
			}
			if by >= 0 && by < h && bx >= 0 && bx < w {
				vb = b.Data[b.at4(n, c, by, bx)] - mb
			}
			sum += va * vb
		}
	}
	cnt := float32(l.Patch * l.Patch)
	return sum / (cnt * sa * sb)
}

// Forward computes the correlation volume for the pair (a, b).
func (l *NormXCorr) Forward2(a, b *Tensor) *Tensor {
	l.a, l.b = a, b
	n, c, h, w := a.Shape[0], a.Shape[1], a.Shape[2], a.Shape[3]
	rw, rh := l.SearchW/2, l.SearchH/2
	out := NewTensor(n, l.OutChannels(c), h, w)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					ma, sa := l.patchStats(a, ni, ci, y, x)
					oc0 := ci * l.SearchW * l.SearchH
					k := 0
					for dy := -rh; dy <= rh; dy++ {
						for dx := -rw; dx <= rw; dx++ {
							yb, xb := y+dy, x+dx
							mb, sb := l.patchStats(b, ni, ci, yb, xb)
							v := l.ncc(a, b, ni, ci, y, x, yb, xb, ma, sa, mb, sb)
							out.Data[out.at4(ni, oc0+k, y, x)] = v
							k++
						}
					}
				}
			}
		}
	}
	return out
}

// Backward2 propagates the output gradient to both inputs.
//
// With u = a_patch - mean(a), v = b_patch - mean(b), s = ncc value:
//
//	d ncc / d a_j = (v_j/sb - s*u_j/sa) / (cnt * sa)
//
// and symmetrically for b. The mean-subtraction Jacobian is handled by
// noting sum(v) = 0 within the patch, so the mean term vanishes for
// in-bounds patches; the small residual for clipped border patches is
// ignored, matching common CUDA implementations of the layer.
func (l *NormXCorr) Backward2(grad *Tensor) (da, db *Tensor) {
	a, b := l.a, l.b
	n, c, h, w := a.Shape[0], a.Shape[1], a.Shape[2], a.Shape[3]
	rw, rh := l.SearchW/2, l.SearchH/2
	r := l.Patch / 2
	cnt := float32(l.Patch * l.Patch)
	da = NewTensor(a.Shape...)
	db = NewTensor(b.Shape...)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					ma, sa := l.patchStats(a, ni, ci, y, x)
					oc0 := ci * l.SearchW * l.SearchH
					k := 0
					for dy := -rh; dy <= rh; dy++ {
						for dx := -rw; dx <= rw; dx++ {
							yb, xb := y+dy, x+dx
							g := grad.Data[grad.at4(ni, oc0+k, y, x)]
							k++
							if g == 0 {
								continue
							}
							mb, sb := l.patchStats(b, ni, ci, yb, xb)
							s := l.ncc(a, b, ni, ci, y, x, yb, xb, ma, sa, mb, sb)
							scale := g / (cnt * sa * sb)
							for py := -r; py <= r; py++ {
								ay, by := y+py, yb+py
								for px := -r; px <= r; px++ {
									ax, bx := x+px, xb+px
									var va, vb float32
									va, vb = -ma, -mb
									aIn := ay >= 0 && ay < h && ax >= 0 && ax < w
									bIn := by >= 0 && by < h && bx >= 0 && bx < w
									if aIn {
										va = a.Data[a.at4(ni, ci, ay, ax)] - ma
									}
									if bIn {
										vb = b.Data[b.at4(ni, ci, by, bx)] - mb
									}
									if aIn {
										da.Data[da.at4(ni, ci, ay, ax)] +=
											scale * (vb - s*va*sb/sa)
									}
									if bIn {
										db.Data[db.at4(ni, ci, by, bx)] +=
											scale * (va - s*vb*sa/sb)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return da, db
}
