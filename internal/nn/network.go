package nn

import (
	"fmt"
	"io"

	"snmatch/internal/rng"
)

// NXCorrConfig describes the Normalized-X-Corr architecture. The paper's
// configuration (60x160 inputs, 20/25 conv maps, 5x5 kernels, 500 hidden
// units) is expressible, but the defaults are scaled down so the model
// trains in reasonable time on a CPU; the architecture is identical.
type NXCorrConfig struct {
	InputH, InputW int // input image size (paper: 160x60)
	InputC         int // input channels (3 for RGB)
	Conv1Out       int // first shared conv maps (paper: 20)
	Conv2Out       int // second shared conv maps (paper: 25)
	Kernel         int // conv kernel side (paper: 5)
	Patch          int // x-corr patch side (paper: 5)
	SearchW        int // x-corr horizontal search width
	SearchH        int // x-corr vertical search width
	Conv3Out       int // post-correlation conv maps (paper: 25)
	Hidden         int // dense units before softmax (paper: 500)
	Seed           uint64
}

// DefaultConfig returns a CPU-sized configuration for sz x sz RGB inputs.
func DefaultConfig(sz int) NXCorrConfig {
	return NXCorrConfig{
		InputH: sz, InputW: sz, InputC: 3,
		Conv1Out: 8, Conv2Out: 8,
		Kernel: 3, Patch: 3,
		SearchW: 3, SearchH: 3,
		Conv3Out: 8, Hidden: 32,
		Seed: 1,
	}
}

// PaperConfig returns the configuration of Subramaniam et al. as used in
// the paper (60x160x3 inputs). Training it needs GPU-class budgets.
func PaperConfig() NXCorrConfig {
	return NXCorrConfig{
		InputH: 160, InputW: 60, InputC: 3,
		Conv1Out: 20, Conv2Out: 25,
		Kernel: 5, Patch: 5,
		SearchW: 37, SearchH: 5,
		Conv3Out: 25, Hidden: 500,
		Seed: 1,
	}
}

// NXCorrNet is the Siamese inexact-matching network: a shared
// convolutional trunk applied to both images, the Normalized-X-Corr
// layer, and a convolutional + dense head ending in 2-way softmax logits
// (similar / dissimilar).
type NXCorrNet struct {
	Cfg NXCorrConfig

	trunkA []Layer // caches for input A
	trunkB []Layer // shared-parameter copies for input B
	xcorr  *NormXCorr
	head   []Layer

	params []*Param
}

// NewNXCorrNet builds a network with freshly initialised weights.
func NewNXCorrNet(cfg NXCorrConfig) (*NXCorrNet, error) {
	if cfg.InputH < 8 || cfg.InputW < 8 {
		return nil, fmt.Errorf("nn: input %dx%d too small", cfg.InputH, cfg.InputW)
	}
	if cfg.InputC <= 0 {
		cfg.InputC = 3
	}
	r := rng.New(cfg.Seed)

	pad := cfg.Kernel / 2 // 'same' padding keeps the arithmetic simple
	trunk := []Layer{
		NewConv2D(cfg.InputC, cfg.Conv1Out, cfg.Kernel, pad, r),
		NewReLU(),
		NewMaxPool2D(2),
		NewConv2D(cfg.Conv1Out, cfg.Conv2Out, cfg.Kernel, pad, r),
		NewReLU(),
		NewMaxPool2D(2),
	}
	fh, fw := cfg.InputH/4, cfg.InputW/4
	if fh < cfg.Patch || fw < cfg.Patch {
		return nil, fmt.Errorf("nn: feature map %dx%d smaller than patch %d", fh, fw, cfg.Patch)
	}
	xc := NewNormXCorr(cfg.Patch, cfg.SearchW, cfg.SearchH)
	xcOut := xc.OutChannels(cfg.Conv2Out)

	head := []Layer{
		NewConv2D(xcOut, cfg.Conv3Out, cfg.Kernel, pad, r),
		NewReLU(),
		NewMaxPool2D(2),
	}
	hh, hw := fh/2, fw/2
	if hh < 1 || hw < 1 {
		return nil, fmt.Errorf("nn: head feature map vanished (%dx%d)", hh, hw)
	}
	head = append(head,
		NewFlatten(),
		NewDense(cfg.Conv3Out*hh*hw, cfg.Hidden, r),
		NewReLU(),
		NewDense(cfg.Hidden, 2, r),
	)

	net := &NXCorrNet{Cfg: cfg, trunkA: trunk, xcorr: xc, head: head}
	net.trunkB = make([]Layer, len(trunk))
	for i, l := range trunk {
		net.trunkB[i] = l.SharedCopy()
	}
	for _, l := range trunk {
		net.params = append(net.params, l.Params()...)
	}
	for _, l := range head {
		net.params = append(net.params, l.Params()...)
	}
	return net, nil
}

// Params returns all trainable parameters.
func (n *NXCorrNet) Params() []*Param { return n.params }

// SharedClone returns a network that shares every trainable parameter
// with n but owns private forward caches (the layer input buffers that
// Forward stores for Backward). Clones therefore run inference
// concurrently with each other and with n, producing bit-identical
// outputs; training through a clone updates the shared weights.
func (n *NXCorrNet) SharedClone() *NXCorrNet {
	c := &NXCorrNet{Cfg: n.Cfg, xcorr: n.xcorr.SharedCopy(), params: n.params}
	c.trunkA = make([]Layer, len(n.trunkA))
	c.trunkB = make([]Layer, len(n.trunkB))
	for i := range n.trunkA {
		c.trunkA[i] = n.trunkA[i].SharedCopy()
		c.trunkB[i] = n.trunkB[i].SharedCopy()
	}
	c.head = make([]Layer, len(n.head))
	for i := range n.head {
		c.head[i] = n.head[i].SharedCopy()
	}
	return c
}

// Forward runs a batch pair through the network and returns the logits
// [N, 2] where class 1 means "similar".
func (n *NXCorrNet) Forward(a, b *Tensor) *Tensor {
	fa, fb := a, b
	for i := range n.trunkA {
		fa = n.trunkA[i].Forward(fa)
		fb = n.trunkB[i].Forward(fb)
	}
	x := n.xcorr.Forward2(fa, fb)
	for _, l := range n.head {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates the logits gradient through the network,
// accumulating parameter gradients from both Siamese paths.
func (n *NXCorrNet) Backward(grad *Tensor) {
	g := grad
	for i := len(n.head) - 1; i >= 0; i-- {
		g = n.head[i].Backward(g)
	}
	ga, gb := n.xcorr.Backward2(g)
	for i := len(n.trunkA) - 1; i >= 0; i-- {
		ga = n.trunkA[i].Backward(ga)
		gb = n.trunkB[i].Backward(gb)
	}
}

// TrainBatch performs a single optimisation step on a batch pair and
// returns the batch loss.
func (n *NXCorrNet) TrainBatch(a, b *Tensor, labels []int, opt *Adam) float64 {
	logits := n.Forward(a, b)
	loss, grad := CrossEntropy(logits, labels)
	n.Backward(grad)
	opt.Update(n.params)
	return loss
}

// PredictPair returns the probability that the two single images
// ([C,H,W] tensors) are similar.
func (n *NXCorrNet) PredictPair(a, b *Tensor) float64 {
	ba := a.Reshape(append([]int{1}, a.Shape...)...)
	bb := b.Reshape(append([]int{1}, b.Shape...)...)
	logits := n.Forward(ba, bb)
	probs := Softmax(logits)
	return float64(probs.Data[1])
}

// FitConfig controls NXCorrNet.Fit. It mirrors the paper's §3.4 training
// protocol.
type FitConfig struct {
	Epochs    int     // maximum epochs (paper: 100)
	BatchSize int     // paper: 16
	LR        float64 // paper: 1e-4
	Decay     float64 // paper: 1e-7
	EarlyEps  float64 // minimum loss decrease (paper: 1e-6)
	Patience  int     // epochs without improvement (paper: 10)
	Seed      uint64
	Log       io.Writer // optional progress sink
}

// DefaultFit returns the paper's training protocol.
func DefaultFit() FitConfig {
	return FitConfig{
		Epochs: 100, BatchSize: 16,
		LR: 1e-4, Decay: 1e-7,
		EarlyEps: 1e-6, Patience: 10,
		Seed: 1,
	}
}

// FitResult summarises a training run.
type FitResult struct {
	Epochs    int
	FinalLoss float64
	LossByEp  []float64
	EarlyStop bool
}

// Fit trains the network on sample pairs given as [C,H,W] tensors with
// binary labels (1 = similar). It implements the paper's early-stopping
// rule: stop when the epoch loss has not decreased by more than EarlyEps
// for Patience consecutive epochs.
func (n *NXCorrNet) Fit(a, b []*Tensor, labels []int, cfg FitConfig) FitResult {
	if len(a) != len(b) || len(a) != len(labels) {
		panic("nn: Fit input length mismatch")
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 16
	}
	opt := NewAdam(cfg.LR, cfg.Decay)
	r := rng.New(cfg.Seed)
	res := FitResult{}

	c, h, w := n.Cfg.InputC, n.Cfg.InputH, n.Cfg.InputW
	batchA := NewTensor(cfg.BatchSize, c, h, w)
	batchB := NewTensor(cfg.BatchSize, c, h, w)
	sampleSize := c * h * w

	bestLoss := 0.0
	stall := 0
	for ep := 0; ep < cfg.Epochs; ep++ {
		perm := r.Perm(len(a))
		var epochLoss float64
		batches := 0
		for start := 0; start+cfg.BatchSize <= len(perm); start += cfg.BatchSize {
			lbls := make([]int, cfg.BatchSize)
			for i := 0; i < cfg.BatchSize; i++ {
				s := perm[start+i]
				copy(batchA.Data[i*sampleSize:(i+1)*sampleSize], a[s].Data)
				copy(batchB.Data[i*sampleSize:(i+1)*sampleSize], b[s].Data)
				lbls[i] = labels[s]
			}
			epochLoss += n.TrainBatch(batchA, batchB, lbls, opt)
			batches++
		}
		if batches == 0 {
			break
		}
		epochLoss /= float64(batches)
		res.LossByEp = append(res.LossByEp, epochLoss)
		res.Epochs = ep + 1
		res.FinalLoss = epochLoss
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %3d loss %.6f lr %.2e\n", ep+1, epochLoss, opt.CurrentLR())
		}
		// Early stopping on the epsilon of loss decrease.
		if ep == 0 || bestLoss-epochLoss > cfg.EarlyEps {
			bestLoss = epochLoss
			stall = 0
		} else {
			stall++
			if cfg.Patience > 0 && stall > cfg.Patience {
				res.EarlyStop = true
				break
			}
		}
	}
	return res
}
