package nn

import (
	"math"

	"snmatch/internal/rng"
)

// Layer is a differentiable network stage. Forward caches whatever the
// subsequent Backward needs; Backward accumulates parameter gradients and
// returns the gradient with respect to the input. SharedCopy returns a
// layer sharing the same parameters but with independent caches, used to
// run the Siamese trunk on both inputs of a pair.
type Layer interface {
	Forward(x *Tensor) *Tensor
	Backward(grad *Tensor) *Tensor
	Params() []*Param
	SharedCopy() Layer
}

// Conv2D is a 2-D convolution with stride 1 and selectable zero padding.
type Conv2D struct {
	InC, OutC, K int
	Pad          int // zero padding on each side
	W            *Param
	B            *Param
	in           *Tensor // cached input
}

// NewConv2D creates a convolution with He-normal initialised weights.
func NewConv2D(inC, outC, k, pad int, r *rng.RNG) *Conv2D {
	w := NewTensor(outC, inC, k, k)
	std := math.Sqrt(2.0 / float64(inC*k*k))
	for i := range w.Data {
		w.Data[i] = float32(r.NormRange(0, std))
	}
	return &Conv2D{
		InC: inC, OutC: outC, K: k, Pad: pad,
		W: NewParam(w),
		B: NewParam(NewTensor(outC)),
	}
}

// Params returns the kernel and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// SharedCopy returns a convolution sharing weights with c.
func (c *Conv2D) SharedCopy() Layer {
	return &Conv2D{InC: c.InC, OutC: c.OutC, K: c.K, Pad: c.Pad, W: c.W, B: c.B}
}

// Forward computes the convolution over an NCHW input.
func (c *Conv2D) Forward(x *Tensor) *Tensor {
	c.in = x
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh := h + 2*c.Pad - c.K + 1
	ow := w + 2*c.Pad - c.K + 1
	out := NewTensor(n, c.OutC, oh, ow)
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < c.OutC; oc++ {
			bias := c.B.W.Data[oc]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					acc := bias
					for ic := 0; ic < c.InC; ic++ {
						for ky := 0; ky < c.K; ky++ {
							iy := oy + ky - c.Pad
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < c.K; kx++ {
								ix := ox + kx - c.Pad
								if ix < 0 || ix >= w {
									continue
								}
								acc += x.Data[x.at4(ni, ic, iy, ix)] *
									c.W.W.Data[c.W.W.at4(oc, ic, ky, kx)]
							}
						}
					}
					out.Data[out.at4(ni, oc, oy, ox)] = acc
				}
			}
		}
	}
	return out
}

// Backward accumulates dW/dB and returns dX.
func (c *Conv2D) Backward(grad *Tensor) *Tensor {
	x := c.in
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := grad.Shape[2], grad.Shape[3]
	dx := NewTensor(x.Shape...)
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < c.OutC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := grad.Data[grad.at4(ni, oc, oy, ox)]
					if g == 0 {
						continue
					}
					c.B.G.Data[oc] += g
					for ic := 0; ic < c.InC; ic++ {
						for ky := 0; ky < c.K; ky++ {
							iy := oy + ky - c.Pad
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < c.K; kx++ {
								ix := ox + kx - c.Pad
								if ix < 0 || ix >= w {
									continue
								}
								xi := x.at4(ni, ic, iy, ix)
								wi := c.W.W.at4(oc, ic, ky, kx)
								c.W.G.Data[wi] += g * x.Data[xi]
								dx.Data[xi] += g * c.W.W.Data[wi]
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// MaxPool2D is max pooling with a square window and equal stride.
type MaxPool2D struct {
	Size   int
	in     *Tensor
	argmax []int
}

// NewMaxPool2D creates a pooling layer with the given window size.
func NewMaxPool2D(size int) *MaxPool2D { return &MaxPool2D{Size: size} }

// Params returns no parameters.
func (p *MaxPool2D) Params() []*Param { return nil }

// SharedCopy returns an independent pooling layer.
func (p *MaxPool2D) SharedCopy() Layer { return NewMaxPool2D(p.Size) }

// Forward pools each window to its maximum, remembering argmax indices.
func (p *MaxPool2D) Forward(x *Tensor) *Tensor {
	p.in = x
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := h/p.Size, w/p.Size
	out := NewTensor(n, c, oh, ow)
	p.argmax = make([]int, out.Size())
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(math.Inf(-1))
					bestIdx := -1
					for ky := 0; ky < p.Size; ky++ {
						for kx := 0; kx < p.Size; kx++ {
							idx := x.at4(ni, ci, oy*p.Size+ky, ox*p.Size+kx)
							if x.Data[idx] > best {
								best = x.Data[idx]
								bestIdx = idx
							}
						}
					}
					oi := out.at4(ni, ci, oy, ox)
					out.Data[oi] = best
					p.argmax[oi] = bestIdx
				}
			}
		}
	}
	return out
}

// Backward routes gradients to the argmax positions.
func (p *MaxPool2D) Backward(grad *Tensor) *Tensor {
	dx := NewTensor(p.in.Shape...)
	for i, g := range grad.Data {
		dx.Data[p.argmax[i]] += g
	}
	return dx
}

// ReLU is the elementwise rectifier.
type ReLU struct {
	mask []bool
}

// NewReLU creates a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Params returns no parameters.
func (r *ReLU) Params() []*Param { return nil }

// SharedCopy returns an independent ReLU.
func (r *ReLU) SharedCopy() Layer { return NewReLU() }

// Forward clamps negatives to zero.
func (r *ReLU) Forward(x *Tensor) *Tensor {
	out := NewTensor(x.Shape...)
	r.mask = make([]bool, x.Size())
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		}
	}
	return out
}

// Backward zeroes gradients where the input was negative.
func (r *ReLU) Backward(grad *Tensor) *Tensor {
	dx := NewTensor(grad.Shape...)
	for i, g := range grad.Data {
		if r.mask[i] {
			dx.Data[i] = g
		}
	}
	return dx
}

// Flatten reshapes NCHW activations to [N, C*H*W].
type Flatten struct {
	inShape []int
}

// NewFlatten creates a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Params returns no parameters.
func (f *Flatten) Params() []*Param { return nil }

// SharedCopy returns an independent flatten layer.
func (f *Flatten) SharedCopy() Layer { return NewFlatten() }

// Forward flattens all but the batch dimension.
func (f *Flatten) Forward(x *Tensor) *Tensor {
	f.inShape = append([]int(nil), x.Shape...)
	n := x.Shape[0]
	return x.Reshape(n, x.Size()/n)
}

// Backward restores the cached input shape.
func (f *Flatten) Backward(grad *Tensor) *Tensor {
	return grad.Reshape(f.inShape...)
}

// Dense is a fully connected layer over [N, in] inputs.
type Dense struct {
	In, Out int
	W       *Param // [Out, In]
	B       *Param // [Out]
	in      *Tensor
}

// NewDense creates a dense layer with He-normal initialisation.
func NewDense(in, out int, r *rng.RNG) *Dense {
	w := NewTensor(out, in)
	std := math.Sqrt(2.0 / float64(in))
	for i := range w.Data {
		w.Data[i] = float32(r.NormRange(0, std))
	}
	return &Dense{In: in, Out: out, W: NewParam(w), B: NewParam(NewTensor(out))}
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// SharedCopy returns a dense layer sharing weights with d.
func (d *Dense) SharedCopy() Layer {
	return &Dense{In: d.In, Out: d.Out, W: d.W, B: d.B}
}

// Forward computes x W^T + b.
func (d *Dense) Forward(x *Tensor) *Tensor {
	d.in = x
	n := x.Shape[0]
	out := NewTensor(n, d.Out)
	for ni := 0; ni < n; ni++ {
		xRow := x.Data[ni*d.In : (ni+1)*d.In]
		for o := 0; o < d.Out; o++ {
			acc := d.B.W.Data[o]
			wRow := d.W.W.Data[o*d.In : (o+1)*d.In]
			for i, xv := range xRow {
				acc += xv * wRow[i]
			}
			out.Data[ni*d.Out+o] = acc
		}
	}
	return out
}

// Backward accumulates dW/dB and returns dX.
func (d *Dense) Backward(grad *Tensor) *Tensor {
	n := grad.Shape[0]
	dx := NewTensor(n, d.In)
	for ni := 0; ni < n; ni++ {
		xRow := d.in.Data[ni*d.In : (ni+1)*d.In]
		dxRow := dx.Data[ni*d.In : (ni+1)*d.In]
		for o := 0; o < d.Out; o++ {
			g := grad.Data[ni*d.Out+o]
			if g == 0 {
				continue
			}
			d.B.G.Data[o] += g
			wRow := d.W.W.Data[o*d.In : (o+1)*d.In]
			gRow := d.W.G.Data[o*d.In : (o+1)*d.In]
			for i := range xRow {
				gRow[i] += g * xRow[i]
				dxRow[i] += g * wRow[i]
			}
		}
	}
	return dx
}
