// Package nn is a small CPU neural-network framework sufficient to
// reproduce the paper's Keras pipeline: float32 tensors, Conv2D /
// MaxPool2D / ReLU / Dense / Flatten layers, the Normalized-X-Corr
// matching layer of Subramaniam et al. (2016), softmax cross-entropy,
// and an Adam optimiser with Keras-style learning-rate decay and the
// paper's epsilon early-stopping rule.
package nn

import "fmt"

// Tensor is a dense row-major float32 array. Layers use the NCHW
// convention for 4-D tensors and [N, features] for 2-D ones.
type Tensor struct {
	Shape []int
	Data  []float32
}

// NewTensor allocates a zeroed tensor with the given shape.
func NewTensor(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("nn: invalid tensor dimension %d", d))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// Size returns the number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Dim returns the i-th dimension.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Reshape returns a tensor sharing t's data with a new shape of equal
// size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("nn: reshape %v -> %v changes size", t.Shape, shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// at4 returns the flat index of [n, c, y, x] in an NCHW tensor.
func (t *Tensor) at4(n, c, y, x int) int {
	return ((n*t.Shape[1]+c)*t.Shape[2]+y)*t.Shape[3] + x
}

// Param is a trainable parameter with its gradient accumulator and Adam
// moment buffers.
type Param struct {
	W, G *Tensor
	m, v *Tensor // Adam state, lazily allocated
}

// NewParam wraps a weight tensor in a Param with a zero gradient.
func NewParam(w *Tensor) *Param {
	return &Param{W: w, G: NewTensor(w.Shape...)}
}
