package nn

import (
	"math"
	"testing"

	"snmatch/internal/rng"
)

func TestNormXCorrIdenticalInputs(t *testing.T) {
	r := rng.New(1)
	a := randTensor(r, 1, 1, 7, 7)
	l := NewNormXCorr(3, 1, 1)
	out := l.Forward2(a, a.Clone())
	// Identical patches: correlation near 1 away from degenerate spots.
	if out.Shape[1] != 1 {
		t.Fatalf("out channels = %d", out.Shape[1])
	}
	centre := out.Data[out.at4(0, 0, 3, 3)]
	if centre < 0.9 || centre > 1.01 {
		t.Errorf("self correlation = %v, want ~1", centre)
	}
}

func TestNormXCorrRange(t *testing.T) {
	r := rng.New(2)
	a := randTensor(r, 2, 2, 8, 8)
	b := randTensor(r, 2, 2, 8, 8)
	l := NewNormXCorr(3, 3, 3)
	out := l.Forward2(a, b)
	if out.Shape[1] != 2*9 {
		t.Fatalf("out channels = %d, want 18", out.Shape[1])
	}
	for _, v := range out.Data {
		if float64(v) > 1.05 || float64(v) < -1.05 || math.IsNaN(float64(v)) {
			t.Fatalf("correlation out of range: %v", v)
		}
	}
}

func TestNormXCorrIlluminationInvariance(t *testing.T) {
	r := rng.New(3)
	a := randTensor(r, 1, 1, 7, 7)
	// b = 2a + 0.5: affine intensity change leaves NCC unchanged.
	b := a.Clone()
	for i := range b.Data {
		b.Data[i] = 2*b.Data[i] + 0.5
	}
	l := NewNormXCorr(3, 1, 1)
	out := l.Forward2(a, b)
	centre := out.Data[out.at4(0, 0, 3, 3)]
	if centre < 0.9 {
		t.Errorf("affine-transformed correlation = %v, want ~1", centre)
	}
}

func TestNormXCorrSymmetricWindowRounding(t *testing.T) {
	l := NewNormXCorr(3, 2, 4)
	if l.SearchW != 3 || l.SearchH != 5 {
		t.Errorf("window rounding = %dx%d, want 3x5", l.SearchW, l.SearchH)
	}
	if l.OutChannels(4) != 4*15 {
		t.Errorf("OutChannels = %d", l.OutChannels(4))
	}
}

func TestNormXCorrGradients(t *testing.T) {
	r := rng.New(4)
	a := randTensor(r, 1, 1, 6, 6)
	b := randTensor(r, 1, 1, 6, 6)
	l := NewNormXCorr(3, 3, 1)
	fn := func() float64 { return sumAll(l.Forward2(a, b)) }
	out := l.Forward2(a, b)
	da, db := l.Backward2(onesLike(out))

	for _, i := range []int{0, 10, 21, 35} {
		want := numericGrad(a, i, fn)
		if math.Abs(float64(da.Data[i])-want) > 2e-2*(1+math.Abs(want)) {
			t.Errorf("da[%d] = %v, numeric %v", i, da.Data[i], want)
		}
	}
	for _, i := range []int{3, 14, 27} {
		want := numericGrad(b, i, fn)
		if math.Abs(float64(db.Data[i])-want) > 2e-2*(1+math.Abs(want)) {
			t.Errorf("db[%d] = %v, numeric %v", i, db.Data[i], want)
		}
	}
}

func TestNormXCorrShiftDetection(t *testing.T) {
	// Put a distinctive blob in A at (4,4) and in B at (4,6): the best
	// correlation for the centre location should occur at displacement
	// dx=+2.
	a := NewTensor(1, 1, 9, 9)
	b := NewTensor(1, 1, 9, 9)
	blob := func(t *Tensor, cx, cy int) {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				t.Data[t.at4(0, 0, cy+dy, cx+dx)] = float32(3 - dx*dx - dy*dy)
			}
		}
	}
	blob(a, 4, 4)
	blob(b, 6, 4)
	l := NewNormXCorr(3, 5, 1)
	out := l.Forward2(a, b)
	// Channels enumerate displacements dx = -2..2 at dy = 0.
	best, bestCh := float32(-2), -1
	for ch := 0; ch < 5; ch++ {
		v := out.Data[out.at4(0, ch, 4, 4)]
		if v > best {
			best, bestCh = v, ch
		}
	}
	if bestCh != 4 { // dx = +2 is the last channel
		t.Errorf("best displacement channel = %d, want 4", bestCh)
	}
}
