package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{9, 4}, {16, 4},
		{1024, 10}, {1025, 11},
		{1 << 38, 38},
		{1<<38 + 1, 39},
		{1 << 39, 39},                   // first overflow value
		{math.MaxInt64, NumBuckets - 1}, // clamps
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every non-overflow bucket's bound must contain the values bucketOf
	// routes to it: BucketBound(k-1) < v <= BucketBound(k).
	for _, c := range cases {
		if c.v <= 0 || c.want >= NumBuckets-1 {
			continue
		}
		hi := BucketBound(c.want)
		if float64(c.v) > hi {
			t.Errorf("value %d lands in bucket %d but exceeds its bound %g", c.v, c.want, hi)
		}
		if c.want > 0 {
			if lo := BucketBound(c.want - 1); float64(c.v) <= lo {
				t.Errorf("value %d lands in bucket %d but fits bucket %d (bound %g)", c.v, c.want, c.want-1, lo)
			}
		}
	}
	if !math.IsInf(BucketBound(NumBuckets-1), 1) {
		t.Errorf("last bucket bound = %g, want +Inf", BucketBound(NumBuckets-1))
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := newHistogram(ScaleNone)
	for _, v := range []int64{1, 2, 3, 8, 9, 1000, -7} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Sum != 1+2+3+8+9+1000+0 {
		t.Fatalf("sum = %d, want 1023", s.Sum)
	}
	wantBuckets := map[int]int64{0: 2, 1: 1, 2: 1, 3: 1, 4: 1, 10: 1}
	for k, n := range wantBuckets {
		if s.Buckets[k] != n {
			t.Errorf("bucket %d = %d, want %d", k, s.Buckets[k], n)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := newHistogram(ScaleNanos), newHistogram(ScaleNanos)
	a.Observe(100)
	a.Observe(200)
	b.Observe(300)

	var acc HistSnapshot
	acc.Merge(a.Snapshot())
	acc.Merge(b.Snapshot())
	if acc.Count != 3 || acc.Sum != 600 {
		t.Fatalf("merged count/sum = %d/%d, want 3/600", acc.Count, acc.Sum)
	}
	for k := range acc.Buckets {
		want := a.Snapshot().Buckets[k] + b.Snapshot().Buckets[k]
		if acc.Buckets[k] != want {
			t.Errorf("merged bucket %d = %d, want %d", k, acc.Buckets[k], want)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched scales should panic")
		}
	}()
	other := newHistogram(ScaleNone)
	other.Observe(1)
	acc.Merge(other.Snapshot())
}

func TestHistogramQuantileAndMean(t *testing.T) {
	h := newHistogram(ScaleNone)
	for i := 0; i < 100; i++ {
		h.Observe(100) // bucket 7: (64, 128]
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	if p50 <= 64 || p50 > 128 {
		t.Errorf("p50 = %g, want within (64, 128]", p50)
	}
	if m := s.Mean(); m != 100 {
		t.Errorf("mean = %g, want 100", m)
	}
	// Scaled export: nanoseconds out as seconds.
	hn := newHistogram(ScaleNanos)
	hn.Observe(int64(time.Second))
	sn := hn.Snapshot()
	if m := sn.Mean(); m != 1.0 {
		t.Errorf("scaled mean = %g, want 1.0", m)
	}
	if q := sn.Quantile(0.5); q <= 0 || q > 2 {
		t.Errorf("scaled p50 = %g, want within (0, 2]", q)
	}
	var empty HistSnapshot
	if empty.Quantile(0.99) != 0 || empty.Mean() != 0 {
		t.Error("empty snapshot quantile/mean should be 0")
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", ScaleNone)
	var tr Trace

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(seed + int64(i%64))
				tr.Add(StageMatch, time.Nanosecond)
			}
		}(int64(w))
	}
	// Concurrent readers while the writers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = h.Snapshot()
			var buf bytes.Buffer
			_ = r.WritePrometheus(&buf)
			_ = r.Snapshot()
			tr.Each(func(Stage, time.Duration) {})
		}
	}()
	wg.Wait()
	<-done

	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	if got := tr.Get(StageMatch); got != workers*iters {
		t.Errorf("trace match = %d, want %d", got, workers*iters)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Trace
	var cv *CounterVec
	var hv *HistogramVec
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(7)
	h.ObserveDuration(7)
	tr.Reset()
	tr.Add(StageDecode, time.Second)
	tr.Set(StageDecode, time.Second)
	tr.Each(func(Stage, time.Duration) { t.Fatal("nil trace iterated") })
	if cv.With("x") != nil || hv.With("x") != nil {
		t.Fatal("nil vec With should return nil")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.Get(StageDecode) != 0 {
		t.Fatal("nil handles should read as zero")
	}
	if tr.MSMap() != nil {
		t.Fatal("nil trace MSMap should be nil")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Scale != ScaleNone {
		t.Fatal("nil histogram snapshot should be empty with ScaleNone")
	}
}

func TestRegistryIdempotentAndShapeChecked(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("requests_total", "reqs")
	c2 := r.Counter("requests_total", "reqs")
	if c1 != c2 {
		t.Fatal("re-registering a counter should return the same cell")
	}
	v1 := r.CounterVec("by_ep_total", "", "endpoint", "classify", "detect")
	v2 := r.CounterVec("by_ep_total", "", "endpoint", "classify", "detect")
	if v1.With("classify") != v2.With("classify") {
		t.Fatal("re-registering a vec should share cells")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind mismatch should panic")
			}
		}()
		r.Gauge("requests_total", "")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("label value mismatch should panic")
			}
		}()
		r.CounterVec("by_ep_total", "", "endpoint", "classify", "other")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown label value should panic")
			}
		}()
		v1.With("nope")
	}()
}

func TestPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("snm_requests_total", "Total requests.").Add(3)
	r.Gauge("snm_depth", "Queue depth.").Set(2)
	cv := r.CounterVec("snm_errors_total", "Errors by endpoint.", "endpoint", "classify", "detect")
	cv.With("classify").Add(1)
	h := r.Histogram("snm_latency_seconds", "Latency.", ScaleNanos)
	h.Observe(int64(time.Millisecond)) // 1e6 ns -> le 1048576ns = ~0.00105s
	r.CounterFunc("snm_cb_total", "Callback counter.", func() int64 { return 42 })
	r.GaugeFunc("snm_cb_gauge", "Callback gauge.", func() int64 { return -7 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP snm_requests_total Total requests.",
		"# TYPE snm_requests_total counter",
		"snm_requests_total 3",
		"# TYPE snm_depth gauge",
		"snm_depth 2",
		`snm_errors_total{endpoint="classify"} 1`,
		`snm_errors_total{endpoint="detect"} 0`,
		"# TYPE snm_latency_seconds histogram",
		`snm_latency_seconds_bucket{le="+Inf"} 1`,
		"snm_latency_seconds_count 1",
		"snm_latency_seconds_sum 0.001",
		"snm_cb_total 42",
		"snm_cb_gauge -7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n--- got:\n%s", want, out)
		}
	}
	// The cumulative bucket series must be monotone and end at count.
	if !strings.Contains(out, "_bucket{le=") {
		t.Error("no bucket series rendered")
	}
}

func TestStatzOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(5)
	r.Gauge("b", "").Set(-3)
	hv := r.HistogramVec("lat_seconds", "", ScaleNanos, "endpoint", "classify")
	hv.With("classify").Observe(int64(2 * time.Millisecond))

	st := r.Snapshot()
	if st.Counters["a_total"] != 5 {
		t.Errorf("statz counter = %d, want 5", st.Counters["a_total"])
	}
	if st.Gauges["b"] != -3 {
		t.Errorf("statz gauge = %d, want -3", st.Gauges["b"])
	}
	key := `lat_seconds{endpoint="classify"}`
	hs, ok := st.Histograms[key]
	if !ok {
		t.Fatalf("statz missing %q; have %v", key, r.SortedSampleKeys())
	}
	if hs.Count != 1 || hs.Mean != 0.002 {
		t.Errorf("statz histogram = %+v, want count 1 mean 0.002", hs)
	}

	var buf bytes.Buffer
	if err := r.WriteStatz(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"counters"`, `"a_total": 5`, `"p99"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("statz JSON missing %q\n--- got:\n%s", want, buf.String())
		}
	}
}

func TestTrace(t *testing.T) {
	var tr Trace
	tr.Add(StageExtract, 3*time.Millisecond)
	tr.Add(StageExtract, 2*time.Millisecond)
	tr.Set(StageDecode, time.Millisecond)
	if got := tr.Get(StageExtract); got != 5*time.Millisecond {
		t.Errorf("extract = %v, want 5ms", got)
	}
	var order []Stage
	tr.Each(func(s Stage, d time.Duration) { order = append(order, s) })
	if len(order) != 2 || order[0] != StageDecode || order[1] != StageExtract {
		t.Errorf("Each order = %v, want [decode extract]", order)
	}
	m := tr.MSMap()
	if m["decode"] != 1 || m["extract"] != 5 {
		t.Errorf("MSMap = %v", m)
	}
	tr.Reset()
	if tr.Get(StageExtract) != 0 {
		t.Error("Reset did not zero")
	}
	if len(StageNames()) != NumStages {
		t.Errorf("StageNames length %d != NumStages %d", len(StageNames()), NumStages)
	}
	if StageVerify.String() != "verify" || Stage(200).String() != "unknown" {
		t.Error("Stage.String wrong")
	}
}
