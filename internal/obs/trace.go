package obs

import (
	"sync/atomic"
	"time"
)

// Stage enumerates the serving pipeline's per-request phases — the
// rows of a request's latency breakdown. The set is fixed so a Trace
// is a flat array instead of a map.
type Stage uint8

const (
	// StageDecode is request-body parsing: PNG (and JSON/base64)
	// decoding plus the decoded-dimension admission checks.
	StageDecode Stage = iota
	// StageAdmission is the time spent at the server's admission gate.
	StageAdmission
	// StagePropose is /detect's region-proposal phase (zero on
	// /classify traffic).
	StagePropose
	// StageQueue is the wait from batcher enqueue to being drawn into
	// a batch.
	StageQueue
	// StageBatch is the coalescing wait from being drawn to the
	// batch's classification starting.
	StageBatch
	// StageExtract is descriptor extraction (decoded image -> packed
	// query set).
	StageExtract
	// StageMatch is the index scan: the flat kernel, or an approximate
	// backend's probe phase. On a sharded gallery the shard scans run
	// concurrently and each adds its own elapsed time, so this stage
	// reads as scan CPU time, not wall time.
	StageMatch
	// StageVerify is the approximate backends' exact re-scoring of the
	// shortlisted views (zero on the exact backend); CPU time across
	// shards, like StageMatch.
	StageVerify

	// NumStages bounds the Stage values.
	NumStages = iota
)

var stageNames = [NumStages]string{
	"decode", "admission", "propose", "queue", "batch", "extract", "match", "verify",
}

// String returns the stage's wire name (the stages_ms key and the
// stage label value).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// StageNames returns the wire names of all stages in Stage order —
// the fixed label value set for a per-stage HistogramVec.
func StageNames() []string {
	out := make([]string, NumStages)
	copy(out, stageNames[:])
	return out
}

// Trace is one request's stage timer: a fixed array of per-stage
// nanosecond totals that rides inside an existing request or context
// struct — it is never separately heap-allocated on the query path.
// Writes are atomic adds, so concurrent contributors (the sharded
// fan-out's workers each adding their shard's scan time) can share one
// trace; a nil *Trace discards all writes. Copying a Trace value is
// safe once its writers have finished.
type Trace struct {
	ns [NumStages]int64
}

// Reset zeroes every stage (start of a new request on a recycled
// struct).
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	for i := range t.ns {
		atomic.StoreInt64(&t.ns[i], 0)
	}
}

// Add accumulates d into stage s.
//
//snmatch:noalloc
func (t *Trace) Add(s Stage, d time.Duration) {
	if t == nil {
		return
	}
	atomic.AddInt64(&t.ns[s], int64(d))
}

// Set replaces stage s's total.
//
//snmatch:noalloc
func (t *Trace) Set(s Stage, d time.Duration) {
	if t == nil {
		return
	}
	atomic.StoreInt64(&t.ns[s], int64(d))
}

// Get returns stage s's accumulated time.
//
//snmatch:noalloc
func (t *Trace) Get(s Stage) time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(atomic.LoadInt64(&t.ns[s]))
}

// Each calls fn for every stage with a non-zero total, in Stage order
// — the allocation-free iteration the aggregating histograms use.
func (t *Trace) Each(fn func(s Stage, d time.Duration)) {
	if t == nil {
		return
	}
	for i := range t.ns {
		if ns := atomic.LoadInt64(&t.ns[i]); ns != 0 {
			fn(Stage(i), time.Duration(ns))
		}
	}
}

// MSMap renders the recorded (non-zero) stages as a stage-name ->
// milliseconds map — the response document's stages_ms field. It
// allocates and belongs on response/serialisation paths only.
func (t *Trace) MSMap() map[string]float64 {
	if t == nil {
		return nil
	}
	var out map[string]float64
	t.Each(func(s Stage, d time.Duration) {
		if out == nil {
			out = make(map[string]float64, NumStages)
		}
		out[s.String()] = float64(d) / float64(time.Millisecond)
	})
	return out
}
