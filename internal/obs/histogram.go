package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every histogram. Bucket k
// (k < NumBuckets-1) counts observations v with 2^(k-1) < v <= 2^k in
// the histogram's recorded integer unit (bucket 0 holds v <= 1); the
// last bucket is the +Inf overflow. Log-2 bucketing over 40 buckets
// spans 1ns..~4.6 minutes for nanosecond recordings and 1..~2.7e11 for
// dimensionless counts — wide enough that the overflow bucket is never
// hit by a healthy serving process, narrow enough that the whole
// histogram is one cache line shy of 4 atomic words per record.
const NumBuckets = 40

// Scale constants for Registry.Histogram: the multiplier applied to
// recorded integer values at export time.
const (
	// ScaleNone exports the recorded integers as-is (sizes, counts).
	ScaleNone = 1.0
	// ScaleNanos converts nanosecond recordings to exported seconds —
	// the Prometheus base unit for time.
	ScaleNanos = 1e-9
)

// Histogram is a fixed-array, log-2-bucketed histogram: Observe is
// three atomic adds on preallocated storage (bucket, count, sum) —
// lock-free, allocation-free, safe for any number of concurrent
// recorders. Reads take a point-in-time Snapshot; a snapshot taken
// concurrently with records may tear between buckets by a few in-flight
// observations, which Prometheus's monotone cumulative semantics
// tolerate. A nil *Histogram records nothing.
type Histogram struct {
	scale   float64
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

func newHistogram(scale float64) *Histogram {
	if scale <= 0 {
		scale = ScaleNone
	}
	return &Histogram{scale: scale}
}

// bucketOf maps a recorded value to its bucket: the smallest k with
// v <= 2^k, clamped to the +Inf bucket.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	k := bits.Len64(uint64(v - 1)) // ceil(log2 v)
	if k >= NumBuckets-1 {
		return NumBuckets - 1
	}
	return k
}

// BucketBound returns bucket k's inclusive upper bound in recorded
// units (math.Inf for the last bucket).
func BucketBound(k int) float64 {
	if k >= NumBuckets-1 {
		return math.Inf(1)
	}
	return float64(int64(1) << uint(k))
}

// Observe records one value (values below zero clamp to zero).
//
//snmatch:noalloc
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration given in nanoseconds — an alias
// of Observe that documents the unit at call sites.
//
//snmatch:noalloc
func (h *Histogram) ObserveDuration(ns int64) { h.Observe(ns) }

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistSnapshot is a point-in-time copy of a histogram's state, in
// recorded (unscaled) integer units. The zero value is an empty
// snapshot, ready to Merge into.
type HistSnapshot struct {
	Scale   float64
	Buckets [NumBuckets]int64
	Count   int64
	Sum     int64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		s.Scale = ScaleNone
		return s
	}
	s.Scale = h.scale
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// Merge folds another snapshot into s (bucket-wise addition). Both
// snapshots must carry the same scale; merging histograms of different
// units is a wiring bug and panics.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if s.Count == 0 && s.Scale == 0 {
		s.Scale = o.Scale // zero-value accumulator adopts the first unit
	}
	if s.Scale != o.Scale {
		panic("obs: merging histogram snapshots with different scales")
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile estimates the q-quantile (0 <= q <= 1) in exported
// (scaled) units by linear interpolation within the covering bucket —
// the usual log-bucket estimate: exact to within one bucket's width
// (a factor of two in the raw unit). Returns 0 for an empty snapshot.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for k := 0; k < NumBuckets; k++ {
		if s.Buckets[k] == 0 {
			continue
		}
		prev := cum
		cum += s.Buckets[k]
		if float64(cum) < rank {
			continue
		}
		lo, hi := 0.0, BucketBound(k)
		if k > 0 {
			lo = BucketBound(k - 1)
		}
		if math.IsInf(hi, 1) {
			// The overflow bucket has no upper edge; report its floor.
			return lo * s.Scale
		}
		frac := 0.0
		if s.Buckets[k] > 0 {
			frac = (rank - float64(prev)) / float64(s.Buckets[k])
		}
		return (lo + (hi-lo)*frac) * s.Scale
	}
	return 0
}

// Mean returns the average observed value in exported units (0 when
// empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count) * s.Scale
}
