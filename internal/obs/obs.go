// Package obs is the serving stack's observability substrate:
// allocation-free instrumentation primitives (atomic counters, gauges,
// log-bucketed histograms and a fixed-size per-request stage trace)
// behind a named-metric registry that renders Prometheus text
// (/metrics) and a JSON twin (/statz).
//
// The design constraint is the house rule on the warm query path: a
// record — Counter.Inc, Gauge.Add, Histogram.Observe, Trace.Add — is a
// handful of atomic integer operations on pre-registered, fixed-size
// storage. Nothing on the record path allocates, takes a lock, or
// formats a string; all naming, labelling and formatting cost is paid
// once at registration (wire-up) time and once per scrape. Metric
// handles are nil-receiver safe no-ops, so instrumented packages can
// expose an enabled/disabled toggle by swapping a struct pointer
// instead of maintaining dual code paths (the same idiom
// internal/arena uses for its nil-arena heap fallback).
//
// Labelled families (CounterVec, HistogramVec) carry one label with a
// fixed, registration-time value set — enough for per-endpoint,
// per-stage and per-index-kind breakdowns without the allocation and
// hashing cost of open-ended label maps.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter records nothing.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
//
//snmatch:noalloc
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative for the exported value to stay
// monotone; callers own that invariant).
//
//snmatch:noalloc
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to
// use; a nil *Gauge records nothing.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
//snmatch:noalloc
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the value by delta (negative deltas decrease it).
//snmatch:noalloc
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// CounterVec is a fixed-label-set counter family: one Counter per
// registered label value.
type CounterVec struct {
	label  string
	values []string
	cells  []*Counter
}

// With returns the counter for the given label value. Unknown values
// panic: the value set is fixed at registration, and resolution is
// meant to happen once at wire-up, not per record.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	for i, s := range v.values {
		if s == value {
			return v.cells[i]
		}
	}
	panic(fmt.Sprintf("obs: counter label value %q not registered (have %v)", value, v.values))
}

// HistogramVec is a fixed-label-set histogram family: one Histogram
// per registered label value.
type HistogramVec struct {
	label  string
	values []string
	cells  []*Histogram
}

// With returns the histogram for the given label value; unknown values
// panic (see CounterVec.With).
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	for i, s := range v.values {
		if s == value {
			return v.cells[i]
		}
	}
	panic(fmt.Sprintf("obs: histogram label value %q not registered (have %v)", value, v.values))
}

// family kinds, also the TYPE strings rendered into Prometheus text.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one registered metric name: either a single cell (empty
// label) or a fixed label/value set, or a callback-backed cell.
type family struct {
	name, help string
	kind       string
	label      string   // "" for unlabelled families
	values     []string // label values, parallel to the cell slices

	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	fn       func() int64 // callback counters/gauges (CounterFunc, GaugeFunc)
}

// Registry holds named metric families and renders them. Registration
// is get-or-create by name, so independent packages (and repeated test
// servers) can wire the same metric without coordination; asking for an
// existing name with a different kind or label shape panics — that is
// a wiring bug, not a runtime condition.
type Registry struct {
	mu    sync.Mutex
	fams  []*family
	index map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]*family{}}
}

// Default is the process-wide registry the serving stack records into
// and the /metrics and /statz endpoints render.
var Default = NewRegistry()

// lookup returns the family for name after checking its shape, or nil
// if name is unregistered. The caller holds r.mu.
func (r *Registry) lookup(name, kind, label string, values []string) *family {
	f, ok := r.index[name]
	if !ok {
		return nil
	}
	if f.kind != kind || f.label != label || len(f.values) != len(values) {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
	}
	for i := range values {
		if f.values[i] != values[i] {
			panic(fmt.Sprintf("obs: metric %q re-registered with different label values", name))
		}
	}
	return f
}

func (r *Registry) addFamily(f *family) {
	r.fams = append(r.fams, f)
	r.index[f.name] = f
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.lookup(name, kindCounter, "", nil); f != nil {
		return f.counters[0]
	}
	f := &family{name: name, help: help, kind: kindCounter, counters: []*Counter{new(Counter)}}
	r.addFamily(f)
	return f.counters[0]
}

// CounterVec registers (or returns the existing) counter family with
// one label over a fixed value set.
func (r *Registry) CounterVec(name, help, label string, values ...string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, kindCounter, label, values)
	if f == nil {
		f = &family{name: name, help: help, kind: kindCounter, label: label, values: values,
			counters: make([]*Counter, len(values))}
		for i := range f.counters {
			f.counters[i] = new(Counter)
		}
		r.addFamily(f)
	}
	return &CounterVec{label: label, values: f.values, cells: f.counters}
}

// CounterFunc registers a callback-backed counter: fn is read at
// scrape time and must be monotone non-decreasing. Useful for counters
// another package already maintains as a plain atomic (e.g. the arena
// allocator's lifetime byte count) without making it import obs.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.lookup(name, kindCounter, "", nil); f != nil {
		f.fn = fn
		return
	}
	r.addFamily(&family{name: name, help: help, kind: kindCounter, fn: fn})
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.lookup(name, kindGauge, "", nil); f != nil {
		return f.gauges[0]
	}
	f := &family{name: name, help: help, kind: kindGauge, gauges: []*Gauge{new(Gauge)}}
	r.addFamily(f)
	return f.gauges[0]
}

// GaugeFunc registers a callback-backed gauge, read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.lookup(name, kindGauge, "", nil); f != nil {
		f.fn = fn
		return
	}
	r.addFamily(&family{name: name, help: help, kind: kindGauge, fn: fn})
}

// Histogram registers (or returns the existing) histogram under name.
// scale converts recorded integer units to the exported unit (pass
// ScaleNanos for durations recorded in nanoseconds and exported as
// seconds, ScaleNone for dimensionless counts).
func (r *Registry) Histogram(name, help string, scale float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.lookup(name, kindHistogram, "", nil); f != nil {
		return f.hists[0]
	}
	f := &family{name: name, help: help, kind: kindHistogram, hists: []*Histogram{newHistogram(scale)}}
	r.addFamily(f)
	return f.hists[0]
}

// HistogramVec registers (or returns the existing) histogram family
// with one label over a fixed value set.
func (r *Registry) HistogramVec(name, help string, scale float64, label string, values ...string) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, kindHistogram, label, values)
	if f == nil {
		f = &family{name: name, help: help, kind: kindHistogram, label: label, values: values,
			hists: make([]*Histogram, len(values))}
		for i := range f.hists {
			f.hists[i] = newHistogram(scale)
		}
		r.addFamily(f)
	}
	return &HistogramVec{label: label, values: f.values, cells: f.hists}
}

// families returns a stable-ordered copy of the family list for the
// exporters (registration order, which groups related metrics).
func (r *Registry) families() []*family {
	r.mu.Lock()
	out := make([]*family, len(r.fams))
	copy(out, r.fams)
	r.mu.Unlock()
	return out
}

// Names returns the registered metric names, sorted — diagnostics and
// tests.
func (r *Registry) Names() []string {
	r.mu.Lock()
	out := make([]string, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f.name)
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}
