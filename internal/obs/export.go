package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
)

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4): HELP/TYPE headers, one
// sample line per cell, histograms as cumulative _bucket/_sum/_count
// series with le bounds in exported units.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		if f.help != "" {
			bw.WriteString("# HELP " + f.name + " " + f.help + "\n")
		}
		bw.WriteString("# TYPE " + f.name + " " + f.kind + "\n")
		switch f.kind {
		case kindCounter:
			if f.fn != nil {
				writeSample(bw, f.name, "", "", "", float64(f.fn()))
				break
			}
			for i, c := range f.counters {
				writeSample(bw, f.name, "", f.label, labelValue(f, i), float64(c.Value()))
			}
		case kindGauge:
			if f.fn != nil {
				writeSample(bw, f.name, "", "", "", float64(f.fn()))
				break
			}
			for i, g := range f.gauges {
				writeSample(bw, f.name, "", f.label, labelValue(f, i), float64(g.Value()))
			}
		case kindHistogram:
			for i, h := range f.hists {
				writeHistogram(bw, f.name, f.label, labelValue(f, i), h.Snapshot())
			}
		}
	}
	return bw.Flush()
}

// labelValue returns cell i's label value ("" for unlabelled
// single-cell families).
func labelValue(f *family, i int) string {
	if f.label == "" {
		return ""
	}
	return f.values[i]
}

// writeSample emits one `name{label="value"} v` line; an empty label
// emits bare `name v`.
func writeSample(bw *bufio.Writer, name, suffix, label, value string, v float64) {
	bw.WriteString(name + suffix)
	if label != "" {
		bw.WriteString("{" + label + "=\"" + value + "\"}")
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

// writeHistogram emits the cumulative bucket series plus _sum and
// _count, folding the family label (when present) in front of le.
func writeHistogram(bw *bufio.Writer, name, label, value string, s HistSnapshot) {
	prefix := "{"
	if label != "" {
		prefix = "{" + label + "=\"" + value + "\","
	}
	cum := int64(0)
	for k := 0; k < NumBuckets; k++ {
		cum += s.Buckets[k]
		if k < NumBuckets-1 && s.Buckets[k] == 0 && !bucketIsEdge(s, k) {
			continue // sparse output: only populated buckets and the edges around them
		}
		le := "+Inf"
		if b := BucketBound(k); !math.IsInf(b, 1) {
			le = formatFloat(b * s.Scale)
		}
		bw.WriteString(name + "_bucket" + prefix + "le=\"" + le + "\"} ")
		bw.WriteString(strconv.FormatInt(cum, 10))
		bw.WriteByte('\n')
	}
	writeSample(bw, name, "_sum", label, value, float64(s.Sum)*s.Scale)
	bw.WriteString(name + "_count")
	if label != "" {
		bw.WriteString("{" + label + "=\"" + value + "\"}")
	}
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(s.Count, 10))
	bw.WriteByte('\n')
}

// bucketIsEdge reports whether bucket k borders a populated bucket —
// kept in the sparse rendering so cumulative series stay
// interpolatable at the occupied buckets' boundaries.
func bucketIsEdge(s HistSnapshot, k int) bool {
	if k > 0 && s.Buckets[k-1] != 0 {
		return true
	}
	return k+1 < NumBuckets && s.Buckets[k+1] != 0
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// StatzHistogram is one histogram's /statz rendering: count, mean and
// quantile estimates in exported units.
type StatzHistogram struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Statz is the /statz JSON document: every registered metric keyed by
// its sample name (`name` or `name{label="value"}`).
type Statz struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]int64          `json:"gauges"`
	Histograms map[string]StatzHistogram `json:"histograms"`
}

// Snapshot collects the registry's current state as a Statz document.
func (r *Registry) Snapshot() Statz {
	st := Statz{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]StatzHistogram{},
	}
	for _, f := range r.families() {
		switch f.kind {
		case kindCounter:
			if f.fn != nil {
				st.Counters[f.name] = f.fn()
				break
			}
			for i, c := range f.counters {
				st.Counters[sampleKey(f, i)] = c.Value()
			}
		case kindGauge:
			if f.fn != nil {
				st.Gauges[f.name] = f.fn()
				break
			}
			for i, g := range f.gauges {
				st.Gauges[sampleKey(f, i)] = g.Value()
			}
		case kindHistogram:
			for i, h := range f.hists {
				s := h.Snapshot()
				st.Histograms[sampleKey(f, i)] = StatzHistogram{
					Count: s.Count,
					Mean:  s.Mean(),
					P50:   s.Quantile(0.50),
					P90:   s.Quantile(0.90),
					P99:   s.Quantile(0.99),
				}
			}
		}
	}
	return st
}

func sampleKey(f *family, i int) string {
	if f.label == "" {
		return f.name
	}
	return f.name + "{" + f.label + "=\"" + f.values[i] + "\"}"
}

// WriteStatz renders the registry as indented JSON (map keys sort, so
// the output is diff-stable).
func (r *Registry) WriteStatz(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// PromHandler returns an http.HandlerFunc serving the registry in
// Prometheus text format — mounted as /metrics by snserve's main and
// admin muxes.
func PromHandler(r *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	}
}

// StatzHandler returns an http.HandlerFunc serving the registry's JSON
// twin — mounted as /statz.
func StatzHandler(r *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteStatz(w)
	}
}

// SortedSampleKeys returns every sample key of the registry, sorted —
// a test helper for asserting a scrape's coverage.
func (r *Registry) SortedSampleKeys() []string {
	st := r.Snapshot()
	keys := make([]string, 0, len(st.Counters)+len(st.Gauges)+len(st.Histograms))
	for k := range st.Counters {
		keys = append(keys, k)
	}
	for k := range st.Gauges {
		keys = append(keys, k)
	}
	for k := range st.Histograms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
