package cliutil

import (
	"flag"
	"testing"
)

func TestWorkersFlagRegistration(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	w := Workers(fs)
	if err := fs.Parse([]string{"-workers", "3"}); err != nil {
		t.Fatal(err)
	}
	if *w != 3 {
		t.Fatalf("parsed %d, want 3", *w)
	}
}

func TestResolveWorkers(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 0},
		{-7, 0},
		{1, 1},
		{MaxWorkers(), MaxWorkers()},
		{MaxWorkers() + 1, MaxWorkers()},
		{1 << 20, MaxWorkers()},
	}
	for _, c := range cases {
		if got := ResolveWorkers(c.in); got != c.want {
			t.Fatalf("ResolveWorkers(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}
