// Package cliutil holds the flag plumbing shared by the repository's
// binaries (snrecog, experiments, snserve, bench), so cross-cutting
// knobs like the worker pool size are declared, documented and
// validated in exactly one place.
package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"runtime"
	"strings"

	"snmatch/internal/dataset"
	"snmatch/internal/pipeline"
	"snmatch/internal/serve/snapshot"
)

// MaxWorkers caps a requested pool size at a small multiple of the
// machine's CPUs: beyond that the pool only adds scheduling overhead,
// and a typo like -workers 100000 would otherwise allocate a goroutine
// army before parallel.Clamp sees the per-call item count.
func MaxWorkers() int { return 8 * runtime.GOMAXPROCS(0) }

// Workers registers the shared -workers flag on fs and returns the
// destination. Resolve the final value with ResolveWorkers after
// fs.Parse.
func Workers(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0,
		fmt.Sprintf("worker pool size (0 = one per CPU, max %d)", MaxWorkers()))
}

// ResolveWorkers validates and clamps a parsed -workers value: negative
// requests collapse to the automatic size (0, one worker per CPU) and
// oversized requests are capped at MaxWorkers. Downstream code still
// clamps per call against its item count (parallel.Clamp); this is the
// one-time front door validation every binary shares.
func ResolveWorkers(w int) int {
	if w < 0 {
		return 0
	}
	if max := MaxWorkers(); w > max {
		return max
	}
	return w
}

// BuildDataset renders the named reference dataset ("sns1" or "sns2").
func BuildDataset(set string, size int, seed uint64) (*dataset.Set, error) {
	cfg := dataset.Config{Size: size, Seed: seed}
	switch set {
	case "sns1":
		return dataset.BuildSNS1(cfg), nil
	case "sns2":
		return dataset.BuildSNS2(cfg), nil
	}
	return nil, fmt.Errorf("unknown dataset %q (want sns1 or sns2)", set)
}

// BuildPreparedGallery renders the named dataset and prepares the given
// descriptor families (extraction + flat index) across the pool — the
// shared boot path of `snrecog snapshot` and `snserve -build`, kept in
// one place so the two binaries cannot drift.
func BuildPreparedGallery(set string, size int, seed uint64, kinds []pipeline.DescriptorKind, workers int) (*pipeline.Gallery, error) {
	ds, err := BuildDataset(set, size, seed)
	if err != nil {
		return nil, err
	}
	g := pipeline.NewGalleryWorkers(ds, workers)
	params := pipeline.DefaultDescriptorParams()
	for _, k := range kinds {
		g.PrepareDescriptorsWorkers(k, params, workers)
	}
	return g, nil
}

// statSnapshot is the shared missing-file probe of the -snapshot
// loaders: (false, nil) means build fresh, an error means a transient
// stat problem that must not silently bypass (and later overwrite) a
// valid snapshot.
func statSnapshot(path string) (exists bool, err error) {
	if _, err := os.Stat(path); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return false, nil
		}
		return false, fmt.Errorf("stat snapshot %s: %w", path, err)
	}
	return true, nil
}

// checkSnapshotMeta is the shared provenance gate, wrapping a mismatch
// with the operator hint both loaders print.
func checkSnapshotMeta(path string, got, want snapshot.Meta) error {
	if err := got.Check(want); err != nil {
		return fmt.Errorf("%w (snapshot %s was prepared for another configuration; delete it or match its parameters)", err, path)
	}
	return nil
}

// LoadSnapshotIfExists is the shared load side of a binary's -snapshot
// flag: it loads and provenance-checks the gallery snapshot at path.
// A missing file returns (nil, nil) — the caller should build fresh and
// may SaveSnapshot afterwards.
func LoadSnapshotIfExists(path string, want snapshot.Meta) (*snapshot.Snapshot, error) {
	exists, err := statSnapshot(path)
	if !exists {
		return nil, err
	}
	snap, err := snapshot.Load(path)
	if err != nil {
		return nil, err
	}
	if err := checkSnapshotMeta(path, snap.Meta, want); err != nil {
		return nil, err
	}
	return snap, nil
}

// MapSnapshotIfExists is LoadSnapshotIfExists over snapshot.Map: the
// gallery aliases a read-only mapping of the file with zero copies of
// the descriptor payloads. The caller owns the returned mapping and
// must keep it (or a Retain) alive for as long as the gallery is used,
// then Close it. A missing file returns (nil, nil) like the heap
// variant.
func MapSnapshotIfExists(path string, want snapshot.Meta) (*snapshot.Mapping, error) {
	exists, err := statSnapshot(path)
	if !exists {
		return nil, err
	}
	m, err := snapshot.Map(path)
	if err != nil {
		return nil, err
	}
	if err := checkSnapshotMeta(path, m.Snap.Meta, want); err != nil {
		m.Close()
		return nil, err
	}
	return m, nil
}

// SaveSnapshot is the matching save side: it stamps the gallery with
// its provenance and persists it under the dataset's name.
func SaveSnapshot(path string, meta snapshot.Meta, g *pipeline.Gallery) error {
	return snapshot.Save(path, &snapshot.Snapshot{Name: meta.Dataset, Meta: meta, Gallery: g})
}

// IndexFlags is the destination of the shared matching-backend flags —
// one value per knob, registered by RegisterIndexFlags and resolved to
// a pipeline.IndexSpec by Resolve after fs.Parse.
type IndexFlags struct {
	Kind         *string
	MIHBits      *int
	MIHRadius    *int
	MIHBucketCap *int
	IVFNLists    *int
	IVFNProbe    *int
}

// RegisterIndexFlags registers the matching-backend selection flags
// shared by every binary that builds or serves galleries: -index picks
// the backend, the rest tune it. Defaults mirror the library defaults
// (exact scan; MIH 16-bit substrings at radius 1; IVF auto nlists,
// nprobe 8).
func RegisterIndexFlags(fs *flag.FlagSet) *IndexFlags {
	return &IndexFlags{
		Kind:         fs.String("index", "exact", "matching index backend: exact, mih (binary/ORB only) or ivf (any descriptor family)"),
		MIHBits:      fs.Int("mih-bits", 0, "mih substring width in bits (0 = default 16; must divide 64, max 16)"),
		MIHRadius:    fs.Int("mih-radius", 0, "mih per-substring Hamming probe radius (0 = default 1; >= mih-bits probes exhaustively = exact)"),
		MIHBucketCap: fs.Int("mih-bucketcap", 0, "mih stop-bucket threshold: drop buckets larger than this (0 = off; capping costs recall on low-entropy codes)"),
		IVFNLists:    fs.Int("ivf-nlists", 0, "ivf coarse list count (0 = auto ~2*sqrt(rows))"),
		IVFNProbe:    fs.Int("ivf-nprobe", 0, "ivf lists scanned per query descriptor (0 = default 8; >= nlists scans all = exact)"),
	}
}

// Resolve validates the parsed flags into an IndexSpec.
func (f *IndexFlags) Resolve() (pipeline.IndexSpec, error) {
	kind, err := pipeline.ParseIndexKind(*f.Kind)
	if err != nil {
		return pipeline.IndexSpec{}, err
	}
	spec := pipeline.IndexSpec{
		Kind: kind,
		MIH:  pipeline.MIHParams{SubstrBits: *f.MIHBits, Radius: *f.MIHRadius, BucketCap: *f.MIHBucketCap},
		IVF:  pipeline.IVFParams{NLists: *f.IVFNLists, NProbe: *f.IVFNProbe},
	}
	if err := spec.Validate(); err != nil {
		return pipeline.IndexSpec{}, err
	}
	return spec, nil
}

// ParseDescriptorKinds parses a comma-separated descriptor family list
// ("sift,orb"); empty elements are skipped, unknown ones are an error.
func ParseDescriptorKinds(s string) ([]pipeline.DescriptorKind, error) {
	var out []pipeline.DescriptorKind
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(strings.ToLower(part)) {
		case "":
		case "sift":
			out = append(out, pipeline.SIFT)
		case "surf":
			out = append(out, pipeline.SURF)
		case "orb":
			out = append(out, pipeline.ORB)
		default:
			return nil, fmt.Errorf("unknown descriptor family %q (want sift, surf or orb)", part)
		}
	}
	return out, nil
}
