// Package parallel provides the bounded worker pool used by every hot
// path of the recognition engine. All helpers guarantee deterministic,
// index-ordered result collection: work is identified by item index, so
// outputs land in the same slot regardless of goroutine scheduling, and
// contiguous chunk assignment lets stateful callers reproduce a serial
// left-to-right sweep exactly (see pipeline.Forker).
package parallel

import (
	"runtime"
	"sync"
)

// DefaultWorkers is the pool size used when the caller passes a
// non-positive worker count: one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Clamp resolves a requested worker count against n items: non-positive
// requests become DefaultWorkers, and the result never exceeds n (nor
// drops below 1), so callers may pass Workers values straight from
// flags or configs without validating them.
func Clamp(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Span is a half-open index interval [Start, End).
type Span struct {
	Start, End int
}

// Len returns the number of items in the span.
func (s Span) Len() int { return s.End - s.Start }

// Chunks splits [0, n) into at most `workers` contiguous spans whose
// sizes differ by at most one. Empty spans are never returned; for
// n == 0 the result is empty.
func Chunks(workers, n int) []Span {
	workers = Clamp(workers, n)
	if n <= 0 {
		return nil
	}
	spans := make([]Span, 0, workers)
	base, rem := n/workers, n%workers
	start := 0
	for w := 0; w < workers; w++ {
		size := base
		if w < rem {
			size++
		}
		spans = append(spans, Span{Start: start, End: start + size})
		start += size
	}
	return spans
}

// run starts one goroutine per job, waits for all of them, and re-panics
// the first captured panic in the caller's goroutine so failures in
// worker code surface in tests instead of crashing the process.
func run(jobs int, job func(j int)) {
	if jobs == 1 {
		job(0)
		return
	}
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	wg.Add(jobs)
	for j := 0; j < jobs; j++ {
		go func(j int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			job(j)
		}(j)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// ForEachChunk partitions [0, n) into contiguous chunks, one per worker,
// and invokes fn(worker, span) concurrently. Chunk boundaries depend
// only on (workers, n), never on scheduling, which is what lets forked
// stateful pipelines reproduce serial behaviour deterministically.
func ForEachChunk(workers, n int, fn func(worker int, s Span)) {
	spans := Chunks(workers, n)
	run(len(spans), func(j int) { fn(j, spans[j]) })
}

// ForEach invokes fn(i) exactly once for every i in [0, n), distributing
// indices across the pool in contiguous chunks. fn must be safe to call
// concurrently; writes keyed by i are race-free and index-ordered.
func ForEach(workers, n int, fn func(i int)) {
	ForEachChunk(workers, n, func(_ int, s Span) {
		for i := s.Start; i < s.End; i++ {
			fn(i)
		}
	})
}

// Map applies fn to every index in [0, n) across the pool and collects
// the results in index order, independent of scheduling.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}
