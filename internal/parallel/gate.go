package parallel

import "context"

// Gate is a bounded admission counter: at most Cap callers hold it at
// once. The serving layer uses it to shed load at the door — TryEnter
// refuses immediately when the system is saturated instead of queueing
// unbounded work — while batch producers that prefer waiting use the
// context-aware Enter. The zero Gate is unusable; construct with
// NewGate.
type Gate struct {
	slots chan struct{}
}

// NewGate returns a gate admitting up to capacity concurrent holders
// (capacity < 1 is treated as 1).
func NewGate(capacity int) *Gate {
	if capacity < 1 {
		capacity = 1
	}
	return &Gate{slots: make(chan struct{}, capacity)}
}

// TryEnter claims a slot without blocking, reporting whether it
// succeeded. Every successful TryEnter must be paired with Leave.
func (g *Gate) TryEnter() bool {
	select {
	case g.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Enter blocks until a slot frees up or the context is done, returning
// the context's error in the latter case. Every nil return must be
// paired with Leave.
func (g *Gate) Enter(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Leave releases a slot claimed by TryEnter or a successful Enter.
func (g *Gate) Leave() {
	select {
	case <-g.slots:
	default:
		panic("parallel: Gate.Leave without a matching Enter")
	}
}

// InUse returns the number of currently held slots (a snapshot; the
// value may be stale by the time it is read under concurrency).
func (g *Gate) InUse() int { return len(g.slots) }

// Cap returns the gate's capacity.
func (g *Gate) Cap() int { return cap(g.slots) }
