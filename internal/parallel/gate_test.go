package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateCapacity(t *testing.T) {
	g := NewGate(2)
	if g.Cap() != 2 || g.InUse() != 0 {
		t.Fatalf("fresh gate: cap=%d inUse=%d", g.Cap(), g.InUse())
	}
	if !g.TryEnter() || !g.TryEnter() {
		t.Fatal("gate refused entry below capacity")
	}
	if g.TryEnter() {
		t.Fatal("gate admitted past capacity")
	}
	if g.InUse() != 2 {
		t.Fatalf("InUse=%d, want 2", g.InUse())
	}
	g.Leave()
	if !g.TryEnter() {
		t.Fatal("gate refused entry after a Leave")
	}
	g.Leave()
	g.Leave()
}

func TestGateMinCapacity(t *testing.T) {
	g := NewGate(0)
	if g.Cap() != 1 {
		t.Fatalf("capacity 0 clamps to 1, got %d", g.Cap())
	}
}

func TestGateLeaveWithoutEnterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced Leave did not panic")
		}
	}()
	NewGate(1).Leave()
}

func TestGateEnterContextCancel(t *testing.T) {
	g := NewGate(1)
	if err := g.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.Enter(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Enter on full gate: %v, want DeadlineExceeded", err)
	}
	g.Leave()
	if err := g.Enter(context.Background()); err != nil {
		t.Fatalf("Enter after Leave: %v", err)
	}
	g.Leave()
}

// TestGateBoundsConcurrency hammers the gate from many goroutines and
// asserts the in-section count never exceeds capacity.
func TestGateBoundsConcurrency(t *testing.T) {
	const capacity, workers, rounds = 3, 16, 200
	g := NewGate(capacity)
	var inside, peak, admitted int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if !g.TryEnter() {
					continue
				}
				n := atomic.AddInt64(&inside, 1)
				for {
					p := atomic.LoadInt64(&peak)
					if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
						break
					}
				}
				atomic.AddInt64(&admitted, 1)
				atomic.AddInt64(&inside, -1)
				g.Leave()
			}
		}()
	}
	wg.Wait()
	if peak > capacity {
		t.Fatalf("observed %d concurrent holders, capacity %d", peak, capacity)
	}
	if admitted == 0 {
		t.Fatal("no admissions at all")
	}
	if g.InUse() != 0 {
		t.Fatalf("gate left with %d slots held", g.InUse())
	}
}
