package parallel

import (
	"sync/atomic"
	"testing"
)

func TestClamp(t *testing.T) {
	cases := []struct {
		workers, n, want int
	}{
		{0, 10, min(DefaultWorkers(), 10)},
		{-3, 10, min(DefaultWorkers(), 10)},
		{4, 10, 4},
		{16, 4, 4},
		{4, 0, 1},
		{0, 0, 1},
		{-1, 1, 1},
	}
	for _, c := range cases {
		if got := Clamp(c.workers, c.n); got != c.want {
			t.Errorf("Clamp(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestChunksCoverExactly(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 2, 5, 16, 17, 100} {
			spans := Chunks(workers, n)
			next := 0
			for _, s := range spans {
				if s.Start != next {
					t.Fatalf("workers=%d n=%d: span starts at %d, want %d", workers, n, s.Start, next)
				}
				if s.Len() <= 0 {
					t.Fatalf("workers=%d n=%d: empty span", workers, n)
				}
				next = s.End
			}
			if next != n {
				t.Fatalf("workers=%d n=%d: spans cover [0,%d), want [0,%d)", workers, n, next, n)
			}
			if len(spans) > Clamp(workers, n) && n > 0 {
				t.Fatalf("workers=%d n=%d: %d spans exceed pool", workers, n, len(spans))
			}
		}
	}
}

func TestChunksBalanced(t *testing.T) {
	spans := Chunks(4, 10)
	lo, hi := 10, 0
	for _, s := range spans {
		if s.Len() < lo {
			lo = s.Len()
		}
		if s.Len() > hi {
			hi = s.Len()
		}
	}
	if hi-lo > 1 {
		t.Errorf("chunk sizes differ by %d, want at most 1", hi-lo)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		const n = 257
		visits := make([]int32, n)
		ForEach(workers, n, func(i int) { atomic.AddInt32(&visits[i], 1) })
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := int32(0)
	ForEach(4, 0, func(int) { atomic.AddInt32(&called, 1) })
	if called != 0 {
		t.Errorf("fn called %d times on empty range", called)
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		got := Map(workers, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachChunkWorkerIDs(t *testing.T) {
	spans := make([]Span, 4)
	ForEachChunk(4, 16, func(w int, s Span) { spans[w] = s })
	// Worker w always receives the w-th contiguous chunk.
	want := Chunks(4, 16)
	for w, s := range spans {
		if s != want[w] {
			t.Errorf("worker %d got %v, want %v", w, s, want[w])
		}
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic not propagated to caller")
		}
	}()
	ForEach(4, 8, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
}

// TestStressSharedCounter is the -race smoke test: many workers hammer
// shared state through the pool's only sanctioned channels (atomic ops
// and index-keyed writes).
func TestStressSharedCounter(t *testing.T) {
	const n = 10000
	var total int64
	out := make([]int, n)
	ForEach(16, n, func(i int) {
		atomic.AddInt64(&total, 1)
		out[i] = i
	})
	if total != n {
		t.Fatalf("total = %d, want %d", total, n)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
