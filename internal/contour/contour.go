package contour

import (
	"math"

	"snmatch/internal/geom"
)

// Contour is a closed boundary as an ordered list of pixel coordinates.
type Contour struct {
	Points []geom.PointI
	// Hole is true for inner borders (boundaries of holes), false for
	// outer borders of connected components.
	Hole bool
}

// Len returns the number of boundary points.
func (c *Contour) Len() int { return len(c.Points) }

// BoundingBox returns the minimal axis-aligned rectangle covering the
// contour.
func (c *Contour) BoundingBox() geom.Rect { return geom.BoundingBox(c.Points) }

// Area returns the enclosed area computed with the shoelace formula over
// the boundary polygon (matching OpenCV's contourArea).
func (c *Contour) Area() float64 {
	pts := c.Points
	if len(pts) < 3 {
		return 0
	}
	sum := 0.0
	for i := range pts {
		j := (i + 1) % len(pts)
		sum += float64(pts[i].X)*float64(pts[j].Y) - float64(pts[j].X)*float64(pts[i].Y)
	}
	return math.Abs(sum) / 2
}

// Perimeter returns the arc length of the closed boundary.
func (c *Contour) Perimeter() float64 {
	pts := c.Points
	if len(pts) < 2 {
		return 0
	}
	total := 0.0
	for i := range pts {
		j := (i + 1) % len(pts)
		dx := float64(pts[j].X - pts[i].X)
		dy := float64(pts[j].Y - pts[i].Y)
		total += math.Hypot(dx, dy)
	}
	return total
}

// Centroid returns the mean boundary point.
func (c *Contour) Centroid() geom.Point {
	if len(c.Points) == 0 {
		return geom.Point{}
	}
	var sx, sy float64
	for _, p := range c.Points {
		sx += float64(p.X)
		sy += float64(p.Y)
	}
	n := float64(len(c.Points))
	return geom.Pt(sx/n, sy/n)
}
