package contour

import (
	"snmatch/internal/geom"
	"snmatch/internal/imaging"
)

// dirs8 enumerates the 8-neighbourhood in clockwise screen order (y grows
// downwards): E, SE, S, SW, W, NW, N, NE.
var dirs8 = [8][2]int{{1, 0}, {1, 1}, {0, 1}, {-1, 1}, {-1, 0}, {-1, -1}, {0, -1}, {1, -1}}

// dirIndex returns the index in dirs8 of the unit step from a to b.
func dirIndex(a, b geom.PointI) int {
	dx, dy := b.X-a.X, b.Y-a.Y
	for i, d := range dirs8 {
		if d[0] == dx && d[1] == dy {
			return i
		}
	}
	panic("contour: non-adjacent points in border trace")
}

// Scratch holds the border tracer's reusable working set: the dense
// trace plane and the point/contour spines the traced borders are built
// in. The spines are persistent heap buffers that grow to the largest
// working set seen and are then reused verbatim, so a warm scratch
// traces without touching the heap — the contour-side analogue of the
// extractor Scratch structs on the descriptor path.
//
// A Scratch is single-owner (not safe for concurrent use), and the
// contours returned by FindContoursInto alias its spines: they are valid
// only until the next FindContoursInto call on the same scratch. The
// zero value is ready to use.
type Scratch struct {
	f    []int32       // dense trace plane, w*h
	pts  []geom.PointI // shared point spine; contours are subslices
	offs []int         // per-contour end offset into pts
	hole []bool        // per-contour hole flag, parallel to offs
	out  []Contour     // materialised result slice handed to the caller
}

// FindContours extracts all borders of the binary image using the border
// following algorithm of Suzuki and Abe (1985). Pixels with value > 0 are
// foreground. Both outer borders and hole borders are returned, in raster
// order of their starting points; hierarchy is not tracked.
func FindContours(bin *imaging.Gray) []Contour {
	var s Scratch
	return FindContoursInto(&s, bin)
}

// FindContoursInto is FindContours drawing every buffer from the
// scratch's persistent spines, for callers that trace in a loop (the
// pooled classify paths, the scene detector). Output is identical to
// FindContours for every input; the returned contours alias the scratch
// and are valid until its next use.
func FindContoursInto(s *Scratch, bin *imaging.Gray) []Contour {
	w, h := bin.W, bin.H
	if cap(s.f) < w*h {
		s.f = make([]int32, w*h)
	}
	f := s.f[:w*h]
	for i, v := range bin.Pix {
		if v > 0 {
			f[i] = 1
		} else {
			f[i] = 0
		}
	}
	s.pts = s.pts[:0]
	s.offs = s.offs[:0]
	s.hole = s.hole[:0]
	at := func(x, y int) int32 {
		if x < 0 || x >= w || y < 0 || y >= h {
			return 0
		}
		return f[y*w+x]
	}

	nbd := int32(1)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := f[y*w+x]
			var startDir int
			var hole bool
			switch {
			case v == 1 && at(x-1, y) == 0:
				startDir = 4 // towards the west background pixel
				hole = false
			case v >= 1 && at(x+1, y) == 0:
				startDir = 0 // towards the east background pixel
				hole = true
			default:
				continue
			}
			nbd++

			// Step 3.1: clockwise search around (x, y) starting from the
			// background pixel's direction for the first nonzero neighbour.
			d1 := -1
			for k := 0; k < 8; k++ {
				d := (startDir + k) % 8
				if at(x+dirs8[d][0], y+dirs8[d][1]) != 0 {
					d1 = d
					break
				}
			}
			p0 := geom.PtI(x, y)
			if d1 < 0 {
				// Isolated single-pixel component.
				f[y*w+x] = -nbd
				s.pts = append(s.pts, p0)
				s.offs = append(s.offs, len(s.pts))
				s.hole = append(s.hole, hole)
				continue
			}
			p1 := geom.PtI(x+dirs8[d1][0], y+dirs8[d1][1])

			// Steps 3.2-3.5: follow the border counterclockwise.
			p2, p3 := p1, p0
			for {
				d23 := dirIndex(p3, p2)
				eastZero := false
				var p4 geom.PointI
				for k := 1; k <= 8; k++ {
					d := (d23 - k + 16) % 8
					nx, ny := p3.X+dirs8[d][0], p3.Y+dirs8[d][1]
					if at(nx, ny) != 0 {
						p4 = geom.PtI(nx, ny)
						break
					}
					if d == 0 {
						eastZero = true // east neighbour examined and zero
					}
				}
				// Step 3.4: mark the current pixel.
				idx := p3.Y*w + p3.X
				if eastZero {
					f[idx] = -nbd
				} else if f[idx] == 1 {
					f[idx] = nbd
				}
				s.pts = append(s.pts, p3)
				// Step 3.5: termination when back at the start configuration.
				if p4 == p0 && p3 == p1 {
					break
				}
				p2, p3 = p3, p4
			}
			s.offs = append(s.offs, len(s.pts))
			s.hole = append(s.hole, hole)
		}
	}

	// Materialise only after every border is traced: contours are
	// capacity-capped subslices of the point spine, and the spine cannot
	// move once appends stop.
	s.out = s.out[:0]
	start := 0
	for i, end := range s.offs {
		s.out = append(s.out, Contour{Points: s.pts[start:end:end], Hole: s.hole[i]})
		start = end
	}
	return s.out
}

// largestPreferOuter returns Largest(ExternalOnly(cs)) falling back to
// Largest(cs) when no outer border exists, without materialising the
// filtered slice — the allocation-free form of the preprocessing
// cascade's contour selection.
func largestPreferOuter(cs []Contour) *Contour {
	var best *Contour
	bestArea := -1.0
	for i := range cs {
		c := &cs[i]
		if c.Hole {
			continue
		}
		if a := c.Area(); a > bestArea {
			best, bestArea = c, a
		}
	}
	if best != nil {
		return best
	}
	return Largest(cs)
}

// Largest returns the contour with the greatest enclosed area, preferring
// outer borders over holes. It returns nil when the slice is empty.
func Largest(cs []Contour) *Contour {
	var best *Contour
	bestArea := -1.0
	for i := range cs {
		c := &cs[i]
		a := c.Area()
		// Outer borders win ties against holes of equal area.
		better := a > bestArea ||
			(a == bestArea && best != nil && best.Hole && !c.Hole)
		if better {
			best = c
			bestArea = a
		}
	}
	return best
}

// FilterByArea returns the contours whose enclosed area is at least min.
func FilterByArea(cs []Contour, min float64) []Contour {
	var out []Contour
	for _, c := range cs {
		if c.Area() >= min {
			out = append(out, c)
		}
	}
	return out
}

// ExternalOnly returns only the outer (non-hole) borders.
func ExternalOnly(cs []Contour) []Contour {
	var out []Contour
	for _, c := range cs {
		if !c.Hole {
			out = append(out, c)
		}
	}
	return out
}
