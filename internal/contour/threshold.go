// Package contour implements binary thresholding and contour extraction:
// global and Otsu thresholds, Suzuki–Abe border following, contour
// geometry, and the paper's preprocessing cascade (grayscale -> threshold
// -> contours -> crop to the largest contour).
package contour

import (
	"snmatch/internal/arena"
	"snmatch/internal/imaging"
)

// Threshold applies a global binary threshold: pixels strictly greater
// than thresh become maxval, all others 0. With inverse set, the outputs
// are swapped (OpenCV's THRESH_BINARY_INV).
func Threshold(g *imaging.Gray, thresh, maxval uint8, inverse bool) *imaging.Gray {
	return ThresholdIn(nil, g, thresh, maxval, inverse)
}

// ThresholdIn is Threshold with the binary raster drawn from the arena
// (nil falls back to the heap).
func ThresholdIn(a *arena.Arena, g *imaging.Gray, thresh, maxval uint8, inverse bool) *imaging.Gray {
	out := imaging.NewGrayIn(a, g.W, g.H)
	lo, hi := uint8(0), maxval
	if inverse {
		lo, hi = maxval, 0
	}
	for i, v := range g.Pix {
		if v > thresh {
			out.Pix[i] = hi
		} else {
			out.Pix[i] = lo
		}
	}
	return out
}

// OtsuThreshold returns the threshold that maximises the between-class
// variance of the gray histogram (Otsu's method). The returned value is
// suitable for passing to Threshold.
func OtsuThreshold(g *imaging.Gray) uint8 {
	var hist [256]int
	for _, v := range g.Pix {
		hist[v]++
	}
	total := len(g.Pix)
	var sumAll float64
	for i, c := range hist {
		sumAll += float64(i) * float64(c)
	}
	var sumB, wB float64
	bestVar, bestT := -1.0, 0
	for t := 0; t < 256; t++ {
		wB += float64(hist[t])
		if wB == 0 {
			continue
		}
		wF := float64(total) - wB
		if wF == 0 {
			break
		}
		sumB += float64(t) * float64(hist[t])
		mB := sumB / wB
		mF := (sumAll - sumB) / wF
		between := wB * wF * (mB - mF) * (mB - mF)
		if between > bestVar {
			bestVar = between
			bestT = t
		}
	}
	return uint8(bestT)
}

// MeanIntensity returns the average gray level, used to decide whether an
// input sits on a dark (NYU black mask) or bright (ShapeNet white)
// background before choosing the threshold polarity.
func MeanIntensity(g *imaging.Gray) float64 {
	var sum uint64
	for _, v := range g.Pix {
		sum += uint64(v)
	}
	return float64(sum) / float64(len(g.Pix))
}
