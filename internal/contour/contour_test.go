package contour

import (
	"math"
	"testing"

	"snmatch/internal/arena"
	"snmatch/internal/geom"
	"snmatch/internal/imaging"
	"snmatch/internal/rng"
)

// binaryWithRect returns a w x h binary image with a filled foreground
// rectangle r.
func binaryWithRect(w, h int, r geom.Rect) *imaging.Gray {
	img := imaging.NewImage(w, h)
	img.FillRect(r, imaging.White)
	return img.ToGray()
}

func TestThresholdForwardAndInverse(t *testing.T) {
	g := imaging.NewGray(4, 1)
	g.Pix = []uint8{0, 100, 128, 255}
	fwd := Threshold(g, 127, 255, false)
	if got := []uint8{fwd.Pix[0], fwd.Pix[1], fwd.Pix[2], fwd.Pix[3]}; got[0] != 0 || got[1] != 0 || got[2] != 255 || got[3] != 255 {
		t.Errorf("forward threshold = %v", got)
	}
	inv := Threshold(g, 127, 255, true)
	if inv.Pix[0] != 255 || inv.Pix[2] != 0 {
		t.Errorf("inverse threshold = %v", inv.Pix)
	}
}

func TestOtsuSeparatesBimodal(t *testing.T) {
	g := imaging.NewGray(10, 10)
	for i := range g.Pix {
		if i%2 == 0 {
			g.Pix[i] = 30
		} else {
			g.Pix[i] = 220
		}
	}
	th := OtsuThreshold(g)
	if th < 30 || th >= 220 {
		t.Errorf("Otsu threshold = %d, want within (30, 220)", th)
	}
	bin := Threshold(g, th, 255, false)
	ones := 0
	for _, v := range bin.Pix {
		if v == 255 {
			ones++
		}
	}
	if ones != 50 {
		t.Errorf("foreground count = %d, want 50", ones)
	}
}

func TestMeanIntensity(t *testing.T) {
	g := imaging.NewGray(2, 1)
	g.Pix = []uint8{0, 200}
	if got := MeanIntensity(g); got != 100 {
		t.Errorf("MeanIntensity = %v", got)
	}
}

func TestFindContoursSingleRect(t *testing.T) {
	bin := binaryWithRect(20, 20, geom.R(5, 6, 15, 12))
	cs := FindContours(bin)
	ext := ExternalOnly(cs)
	if len(ext) != 1 {
		t.Fatalf("external contours = %d, want 1", len(ext))
	}
	c := ext[0]
	box := c.BoundingBox()
	if box != geom.R(5, 6, 15, 12) {
		t.Errorf("bounding box = %+v", box)
	}
	// Shoelace over the boundary underestimates the filled area by half
	// the perimeter; for a 10x6 rect boundary polygon area is 9*5=45.
	if got := c.Area(); math.Abs(got-45) > 1e-9 {
		t.Errorf("area = %v, want 45", got)
	}
	if got := c.Perimeter(); math.Abs(got-28) > 1e-9 {
		t.Errorf("perimeter = %v, want 28", got)
	}
}

func TestFindContoursMultipleComponents(t *testing.T) {
	img := imaging.NewImage(30, 20)
	img.FillRect(geom.R(2, 2, 8, 8), imaging.White)
	img.FillRect(geom.R(12, 4, 26, 16), imaging.White)
	cs := ExternalOnly(FindContours(img.ToGray()))
	if len(cs) != 2 {
		t.Fatalf("components = %d, want 2", len(cs))
	}
	l := Largest(cs)
	if l.BoundingBox() != geom.R(12, 4, 26, 16) {
		t.Errorf("largest = %+v", l.BoundingBox())
	}
}

func TestFindContoursHole(t *testing.T) {
	img := imaging.NewImage(20, 20)
	img.FillRect(geom.R(3, 3, 17, 17), imaging.White)
	img.FillRect(geom.R(7, 7, 13, 13), imaging.Black) // punch a hole
	cs := FindContours(img.ToGray())
	var outer, holes int
	for _, c := range cs {
		if c.Hole {
			holes++
		} else {
			outer++
		}
	}
	if outer != 1 || holes != 1 {
		t.Fatalf("outer=%d holes=%d, want 1/1", outer, holes)
	}
}

func TestFindContoursIsolatedPixel(t *testing.T) {
	img := imaging.NewImage(5, 5)
	img.Set(2, 2, imaging.White)
	cs := FindContours(img.ToGray())
	if len(cs) != 1 || cs[0].Len() != 1 {
		t.Fatalf("contours = %+v", cs)
	}
	if cs[0].Points[0] != geom.PtI(2, 2) {
		t.Errorf("point = %v", cs[0].Points[0])
	}
	if cs[0].Area() != 0 {
		t.Errorf("single pixel area = %v", cs[0].Area())
	}
}

func TestFindContoursEmptyAndFull(t *testing.T) {
	empty := imaging.NewGray(8, 8)
	if cs := FindContours(empty); len(cs) != 0 {
		t.Errorf("empty image contours = %d", len(cs))
	}
	full := imaging.NewGray(8, 8)
	for i := range full.Pix {
		full.Pix[i] = 255
	}
	cs := FindContours(full)
	if len(cs) != 1 {
		t.Fatalf("full image contours = %d", len(cs))
	}
	if cs[0].BoundingBox() != geom.R(0, 0, 8, 8) {
		t.Errorf("full bbox = %+v", cs[0].BoundingBox())
	}
}

func TestContourTouchingBorder(t *testing.T) {
	bin := binaryWithRect(10, 10, geom.R(0, 0, 10, 5))
	cs := ExternalOnly(FindContours(bin))
	if len(cs) != 1 {
		t.Fatalf("contours = %d", len(cs))
	}
	if cs[0].BoundingBox() != geom.R(0, 0, 10, 5) {
		t.Errorf("bbox = %+v", cs[0].BoundingBox())
	}
}

func TestCentroid(t *testing.T) {
	bin := binaryWithRect(20, 20, geom.R(4, 4, 12, 12))
	c := Largest(FindContours(bin))
	got := c.Centroid()
	if math.Abs(got.X-7.5) > 0.2 || math.Abs(got.Y-7.5) > 0.2 {
		t.Errorf("centroid = %v, want ~(7.5, 7.5)", got)
	}
}

func TestFilterByArea(t *testing.T) {
	img := imaging.NewImage(30, 20)
	img.FillRect(geom.R(1, 1, 3, 3), imaging.White)    // tiny
	img.FillRect(geom.R(10, 2, 26, 18), imaging.White) // big
	cs := ExternalOnly(FindContours(img.ToGray()))
	big := FilterByArea(cs, 50)
	if len(big) != 1 {
		t.Fatalf("filtered = %d, want 1", len(big))
	}
}

func TestLargestNilOnEmpty(t *testing.T) {
	if Largest(nil) != nil {
		t.Error("Largest(nil) != nil")
	}
}

func TestPreprocessWhiteBackground(t *testing.T) {
	// ShapeNet-style: dark object on white background.
	img := imaging.NewImageFilled(40, 40, imaging.White)
	img.FillRect(geom.R(10, 14, 30, 26), imaging.C(60, 40, 30))
	res := Preprocess(img)
	if !res.Inverted {
		t.Error("white background should take the inverse branch")
	}
	if res.Box != geom.R(10, 14, 30, 26) {
		t.Errorf("crop box = %+v", res.Box)
	}
	if res.Cropped.W != 20 || res.Cropped.H != 12 {
		t.Errorf("cropped size = %dx%d", res.Cropped.W, res.Cropped.H)
	}
}

func TestPreprocessBlackBackground(t *testing.T) {
	// NYU-style: bright object on black mask.
	img := imaging.NewImage(40, 40)
	img.FillRect(geom.R(6, 6, 20, 32), imaging.C(200, 180, 170))
	res := Preprocess(img)
	if res.Inverted {
		t.Error("black background should take the forward branch")
	}
	if res.Box != geom.R(6, 6, 20, 32) {
		t.Errorf("crop box = %+v", res.Box)
	}
}

func TestPreprocessUniformImageFallsBack(t *testing.T) {
	img := imaging.NewImageFilled(16, 16, imaging.C(90, 90, 90))
	res := Preprocess(img)
	if res.Cropped.W != 16 || res.Cropped.H != 16 {
		t.Errorf("uniform image should return full frame, got %dx%d", res.Cropped.W, res.Cropped.H)
	}
}

func TestPreprocessPicksLargestObject(t *testing.T) {
	img := imaging.NewImage(60, 40)
	img.FillRect(geom.R(2, 2, 8, 8), imaging.C(250, 250, 250))
	img.FillRect(geom.R(20, 5, 55, 35), imaging.C(230, 230, 230))
	res := Preprocess(img)
	if res.Box != geom.R(20, 5, 55, 35) {
		t.Errorf("crop box = %+v, want the larger object", res.Box)
	}
}

func TestContourMask(t *testing.T) {
	bin := binaryWithRect(20, 20, geom.R(5, 5, 15, 15))
	c := Largest(FindContours(bin))
	mask := c.Mask(20, 20)
	if mask.At(10, 10) == 0 {
		t.Error("mask interior empty")
	}
	if mask.At(2, 2) != 0 {
		t.Error("mask exterior filled")
	}
	if mask.At(5, 5) == 0 {
		t.Error("mask boundary not set")
	}
}

func TestContourAgainstPolygonAreaProperty(t *testing.T) {
	// For axis-aligned rectangles of many sizes, the traced boundary's
	// shoelace area must equal (w-1)*(h-1).
	for _, sz := range [][2]int{{2, 2}, {3, 7}, {10, 4}, {1, 6}, {12, 12}} {
		w, h := sz[0], sz[1]
		bin := binaryWithRect(w+8, h+8, geom.R(3, 3, 3+w, 3+h))
		c := Largest(FindContours(bin))
		if c == nil {
			t.Fatalf("no contour for %dx%d", w, h)
		}
		want := float64((w - 1) * (h - 1))
		if got := c.Area(); math.Abs(got-want) > 1e-9 {
			t.Errorf("%dx%d rect area = %v, want %v", w, h, got, want)
		}
	}
}

// randomBinary returns a w x h binary image with random blobs: filled
// rectangles and ellipses over a random polarity background — a
// workload with nested components, holes, border-touching shapes and
// isolated pixels.
func randomBinary(r *rng.RNG, w, h int) *imaging.Gray {
	bg := imaging.Black
	if r.Bool(0.3) {
		bg = imaging.White
	}
	img := imaging.NewImageFilled(w, h, bg)
	n := r.IntRange(1, 8)
	for k := 0; k < n; k++ {
		col := imaging.White
		if r.Bool(0.3) {
			col = imaging.Black
		}
		x0 := r.IntRange(-4, w-1)
		y0 := r.IntRange(-4, h-1)
		if r.Bool(0.5) {
			img.FillRect(geom.Rect{MinX: x0, MinY: y0, MaxX: x0 + r.IntRange(1, w/2), MaxY: y0 + r.IntRange(1, h/2)}, col)
		} else {
			img.FillEllipse(geom.Pt(float64(x0), float64(y0)), r.Range(1, float64(w)/3), r.Range(1, float64(h)/3), col)
		}
	}
	// Sprinkle isolated pixels.
	for k := 0; k < 5; k++ {
		img.Set(r.Intn(w), r.Intn(h), imaging.White)
	}
	return img.ToGray()
}

// TestFindContoursIntoMatchesFresh reuses one Scratch across a
// randomized stream of binary images of varying shapes and requires the
// pooled tracer's output to equal the fresh path exactly — contours,
// point order and hole flags — at every step.
func TestFindContoursIntoMatchesFresh(t *testing.T) {
	r := rng.New(91)
	var s Scratch
	for round := 0; round < 30; round++ {
		w := r.IntRange(5, 48)
		h := r.IntRange(5, 40)
		bin := randomBinary(r, w, h)
		fresh := FindContours(bin)
		pooled := FindContoursInto(&s, bin)
		if len(fresh) != len(pooled) {
			t.Fatalf("round %d: %d contours, fresh has %d", round, len(pooled), len(fresh))
		}
		for i := range fresh {
			if fresh[i].Hole != pooled[i].Hole {
				t.Fatalf("round %d contour %d: hole flag differs", round, i)
			}
			if len(fresh[i].Points) != len(pooled[i].Points) {
				t.Fatalf("round %d contour %d: %d points, fresh has %d",
					round, i, len(pooled[i].Points), len(fresh[i].Points))
			}
			for j := range fresh[i].Points {
				if fresh[i].Points[j] != pooled[i].Points[j] {
					t.Fatalf("round %d contour %d point %d: %v, fresh %v",
						round, i, j, pooled[i].Points[j], fresh[i].Points[j])
				}
			}
		}
	}
}

// TestPreprocessScratchMatchesFresh reuses one (arena, scratch) pair
// across randomized RGB images and requires every field of the pooled
// cascade's result to match plain Preprocess exactly.
func TestPreprocessScratchMatchesFresh(t *testing.T) {
	r := rng.New(92)
	a := arena.New()
	var s Scratch
	for round := 0; round < 20; round++ {
		w := r.IntRange(8, 56)
		h := r.IntRange(8, 48)
		img := imaging.NewImageFilled(w, h, imaging.C(uint8(r.Intn(256)), uint8(r.Intn(256)), uint8(r.Intn(256))))
		n := r.IntRange(0, 4)
		for k := 0; k < n; k++ {
			x0, y0 := r.IntRange(0, w-1), r.IntRange(0, h-1)
			col := imaging.C(uint8(r.Intn(256)), uint8(r.Intn(256)), uint8(r.Intn(256)))
			img.FillRect(geom.Rect{MinX: x0, MinY: y0, MaxX: x0 + r.IntRange(1, w/2), MaxY: y0 + r.IntRange(1, h/2)}, col)
		}
		fresh := Preprocess(img)
		pooled := PreprocessScratch(a, &s, img)
		if fresh.Inverted != pooled.Inverted || fresh.Box != pooled.Box {
			t.Fatalf("round %d: inverted/box differ: %+v/%v vs %+v/%v",
				round, pooled.Inverted, pooled.Box, fresh.Inverted, fresh.Box)
		}
		for i, v := range fresh.Binary.Pix {
			if pooled.Binary.Pix[i] != v {
				t.Fatalf("round %d: binary plane differs at %d", round, i)
			}
		}
		if len(fresh.Contours) != len(pooled.Contours) {
			t.Fatalf("round %d: contour count differs", round)
		}
		if (fresh.Largest == nil) != (pooled.Largest == nil) {
			t.Fatalf("round %d: largest-contour presence differs", round)
		}
		if fresh.Largest != nil {
			if fresh.Largest.Hole != pooled.Largest.Hole || fresh.Largest.Len() != pooled.Largest.Len() {
				t.Fatalf("round %d: largest contour differs", round)
			}
			for j := range fresh.Largest.Points {
				if fresh.Largest.Points[j] != pooled.Largest.Points[j] {
					t.Fatalf("round %d: largest contour point %d differs", round, j)
				}
			}
		}
		if fresh.Cropped.W != pooled.Cropped.W || fresh.Cropped.H != pooled.Cropped.H {
			t.Fatalf("round %d: crop shape differs", round)
		}
		for i, v := range fresh.Cropped.Pix {
			if pooled.Cropped.Pix[i] != v {
				t.Fatalf("round %d: crop differs at byte %d", round, i)
			}
		}
		a.Reset()
	}
}
