package contour

import (
	"snmatch/internal/arena"
	"snmatch/internal/geom"
	"snmatch/internal/imaging"
)

// PreprocessResult carries the intermediate products of the paper's §3.2
// cascade, useful for inspection and for the shape pipelines that need the
// object contour itself rather than the cropped image.
type PreprocessResult struct {
	Gray     *imaging.Gray
	Binary   *imaging.Gray
	Contours []Contour
	Largest  *Contour
	Box      geom.Rect
	Cropped  *imaging.Image
	Inverted bool // whether the inverse threshold branch was taken
}

// Preprocess replicates the paper's preprocessing cascade: (i) convert to
// grayscale, (ii) global binary threshold — or its inverse when the
// background is bright, as with white ShapeNet views — (iii) contour
// detection, (iv) crop the original RGB image to the bounding box of the
// contour with the largest area. When no contour is found the original
// image is returned uncropped.
//
// Both source datasets have pure mask backgrounds (white ShapeNet
// canvases, black NYU region masks), so the threshold sits near the
// extreme of the relevant polarity: this keeps near-white objects such
// as paper sheets and painted doors segmentable, which Otsu's bimodal
// assumption does not.
func Preprocess(img *imaging.Image) PreprocessResult { return PreprocessIn(nil, img) }

// PreprocessIn is Preprocess with the dense intermediates — the gray
// plane and the binary threshold raster — drawn from the arena, for
// callers that preprocess many images in a loop (gallery construction,
// batch classification) and recycle the planes between iterations. The
// contour structures and the RGB crop stay heap-backed: they are the
// parts callers retain beyond the arena's reset. Results are identical
// to Preprocess for every input.
func PreprocessIn(a *arena.Arena, img *imaging.Image) PreprocessResult {
	return preprocess(a, nil, nil, img)
}

// PreprocessScratch is the fully pooled cascade: the dense planes AND
// the crop come from the arena, and border tracing runs on the scratch's
// persistent spines — so a warm (arena, scratch) pair preprocesses with
// zero heap allocation. Results are identical to Preprocess for every
// input, but everything in them (contours included) is invalidated by
// the arena's Reset or the scratch's next use; callers must extract what
// they keep before recycling. The pooled shape/colour/hybrid classify
// paths and the scene detector run on this entry point.
func PreprocessScratch(a *arena.Arena, s *Scratch, img *imaging.Image) PreprocessResult {
	return preprocess(a, a, s, img)
}

// preprocess is the shared cascade body. cropA is the arena the crop and
// fallback clone are drawn from — nil for PreprocessIn's contract that
// retained parts stay heap-backed. A nil scratch traces on the heap.
func preprocess(a, cropA *arena.Arena, s *Scratch, img *imaging.Image) PreprocessResult {
	g := img.ToGrayIn(a)
	// Bright mean implies a white background, so the object is the darker
	// region and the inverse threshold keeps it as foreground.
	inverted := MeanIntensity(g) > 127
	t := uint8(8)
	if inverted {
		t = 247
	}
	bin := ThresholdIn(a, g, t, 255, inverted)
	var cs []Contour
	if s != nil {
		cs = FindContoursInto(s, bin)
	} else {
		cs = FindContours(bin)
	}
	res := PreprocessResult{
		Gray:     g,
		Binary:   bin,
		Contours: cs,
		Inverted: inverted,
	}
	res.Largest = largestPreferOuter(cs)
	if res.Largest == nil {
		res.Cropped = img.CloneIn(cropA)
		res.Box = img.Bounds()
		return res
	}
	res.Box = res.Largest.BoundingBox().ClampTo(img.W, img.H)
	if res.Box.Empty() {
		res.Cropped = img.CloneIn(cropA)
		res.Box = img.Bounds()
		return res
	}
	res.Cropped = img.CropIn(cropA, res.Box)
	return res
}

// Mask returns a binary image with the interior of the contour's bounding
// region filled, rendered by even-odd rasterisation of the boundary
// polygon. Useful for restricting histograms to the object.
func (c *Contour) Mask(w, h int) *imaging.Gray {
	img := imaging.NewImage(w, h)
	poly := make([]geom.Point, len(c.Points))
	for i, p := range c.Points {
		poly[i] = geom.Pt(float64(p.X)+0.5, float64(p.Y)+0.5)
	}
	img.FillPolygon(poly, imaging.White)
	// Boundary pixels belong to the object by definition.
	for _, p := range c.Points {
		img.Set(p.X, p.Y, imaging.White)
	}
	return img.ToGray()
}
