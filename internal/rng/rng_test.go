package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s1 := r.Split("alpha")
	s2 := r.Split("beta")
	s1b := New(7).Split("alpha")
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s1b.Uint64() {
			t.Fatal("Split not deterministic for equal labels")
		}
	}
	// Different labels give different streams.
	s1 = New(7).Split("alpha")
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams collided %d/100 times", same)
	}
	// Split does not advance the parent.
	p1, p2 := New(7), New(7)
	_ = p1.Split("x")
	if p1.Uint64() != p2.Uint64() {
		t.Error("Split advanced the parent stream")
	}
}

func TestFloat64Bounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(5)
	const buckets, n = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		v := r.Intn(buckets)
		if v < 0 || v >= buckets {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
	}
	if v := r.IntRange(5, 5); v != 5 {
		t.Errorf("degenerate IntRange = %d", v)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(17)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", p)
	}
}

func TestChoiceWeighted(t *testing.T) {
	r := New(23)
	weights := []float64{1, 0, 3}
	const n = 100000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		counts[r.Choice(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestChoicePanicsOnAllZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Choice with zero weights did not panic")
		}
	}()
	New(1).Choice([]float64{0, 0})
}

func TestNormRange(t *testing.T) {
	r := New(29)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormRange(10, 2)
	}
	if math.Abs(sum/n-10) > 0.05 {
		t.Errorf("NormRange mean = %v", sum/n)
	}
}
