// Package rng implements a deterministic, splittable pseudo-random number
// generator used throughout the repository so that dataset generation and
// every experiment are exactly reproducible across runs and platforms.
//
// The generator is xoshiro256** seeded through SplitMix64, following the
// reference implementations by Blackman and Vigna. The package deliberately
// avoids math/rand so that no global state can leak between experiments.
package rng

import "math"

// RNG is a deterministic random number generator. It is not safe for
// concurrent use; derive independent streams with Split instead.
type RNG struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	return r
}

// Clone returns an independent generator in exactly the same state as
// r: both produce the same subsequent stream, and advancing one does
// not affect the other. Worker pools use this to replay a serial draw
// sequence from a known offset.
func (r *RNG) Clone() *RNG {
	c := *r
	return &c
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split derives an independent generator from r and the given label. Equal
// labels on generators in equal states yield equal streams; the parent
// stream is not advanced.
func (r *RNG) Split(label string) *RNG {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	// Mix the label hash with the current state without advancing it.
	seed := h
	for _, s := range r.s {
		seed = seed*0x9e3779b97f4a7c15 + s
	}
	return New(seed)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul128(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a0 * b0
	lo = t & mask
	c := t >> 32
	t = a1*b0 + c
	c = t >> 32
	m := t & mask
	t = a0*b1 + m
	lo |= (t & mask) << 32
	hi = a1*b1 + c + (t >> 32)
	return hi, lo
}

// IntRange returns a uniform int in [lo, hi]. It panics if hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Norm returns a standard normally distributed float64 (Box–Muller).
func (r *RNG) Norm() float64 {
	// Draw u in (0, 1] to avoid log(0).
	u := 1 - r.Float64()
	v := r.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// NormRange returns mean + stddev * Norm().
func (r *RNG) NormRange(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher–Yates shuffle over n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a uniformly random index weighted by the given
// non-negative weights. It panics if all weights are zero or negative.
func (r *RNG) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: Choice with no positive weights")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
