// Package fault provides named fault-injection points for the serving
// stack's robustness tests and chaos drills. Each Point is a fixed site
// in the serving path (snapshot read, batcher enqueue, shard scan,
// gallery swap) whose Check call is compiled into the production code
// permanently: while the point is disarmed — the default — Check is a
// single atomic pointer load returning nil, so the zero-allocation warm
// query path is untouched. Arming installs a rule (via the snserve
// -faults flag, the SNMATCH_FAULTS environment variable, or Arm from a
// test) that fires deterministically: a seeded per-call schedule, never
// wall-clock or global randomness, so a failing chaos run reproduces
// exactly.
//
// Rule syntax (Arm):
//
//	point:mode[:key=value]...[,point:mode...]
//
//	snapshot-read:error                     every snapshot read fails
//	batcher-enqueue:error:every=2:after=1   calls 2, 4, 6, ... fail
//	shard-scan:latency:delay=25ms           every shard scan sleeps 25ms
//	swap:panic:p=0.5:seed=7                 seeded coin per due call
//
// Modes: "error" returns ErrInjected from Check, "latency" sleeps for
// delay (default 10ms) and returns nil, "panic" panics with ErrInjected
// (exercising the per-request panic recovery). Scheduling keys: "after"
// skips the first N calls, "every" fires on every Nth call thereafter
// (default 1 = all), "p"/"seed" thin the due calls with a deterministic
// splitmix64 coin. Calls are counted per point.
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"snmatch/internal/obs"
)

// Point identifies one fault-injection site.
type Point uint8

const (
	// SnapshotRead guards the snapshot decode/map entry points: an armed
	// error fails Load/Map/Read cleanly instead of handing out a gallery.
	SnapshotRead Point = iota
	// BatcherEnqueue guards batcher admission: an armed error refuses
	// the submission (the HTTP layer maps it to 503 + Retry-After).
	BatcherEnqueue
	// ShardScan guards the per-shard index scan. Latency stretches a
	// scan mid-batch; error and panic both surface as a panic there (a
	// scan has no error return), exercising the per-request recovery.
	ShardScan
	// Swap guards registry gallery replacement: an armed error fails the
	// swap before it is applied, latency widens the swap window.
	Swap

	// NumPoints bounds the Point values.
	NumPoints = iota
)

var pointNames = [NumPoints]string{
	"snapshot-read", "batcher-enqueue", "shard-scan", "swap",
}

// String returns the point's wire name (the Arm spec key and the
// snmatch_fault_injections_total label value).
func (p Point) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return "unknown"
}

// ParsePoint resolves a point name from an Arm spec.
func ParsePoint(s string) (Point, error) {
	for i, n := range pointNames {
		if n == s {
			return Point(i), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown point %q (want %s)", s, strings.Join(pointNames[:], ", "))
}

// Mode is what an armed point does when its schedule fires.
type Mode uint8

const (
	// ModeError makes Check return ErrInjected.
	ModeError Mode = iota
	// ModeLatency makes Check sleep for the rule's delay, then succeed.
	ModeLatency
	// ModePanic makes Check panic with ErrInjected.
	ModePanic
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeLatency:
		return "latency"
	case ModePanic:
		return "panic"
	}
	return "unknown"
}

// ErrInjected is the sentinel every armed error (and panic) carries;
// handlers match it with errors.Is to map injected failures to clean
// 5xx responses instead of opaque internal errors.
var ErrInjected = errors.New("fault: injected failure")

// Rule is one armed point's behaviour. Fields are fixed after Arm; only
// the call counter mutates, atomically.
type Rule struct {
	Mode  Mode
	Every uint64        // fire on every Nth eligible call (>= 1)
	After uint64        // skip the first After calls entirely
	Prob  float64       // thin due calls: fire with this probability (1 = always)
	Seed  uint64        // seeds the per-call Prob coin
	Delay time.Duration // ModeLatency sleep

	calls atomic.Uint64
}

// rules holds the armed rule per point; nil means disarmed. The nil
// check is the entire disarmed cost of a compiled-in Check site.
var rules [NumPoints]atomic.Pointer[Rule]

// fired counts injections per point, independent of the obs registry so
// tests can assert without a scrape.
var fired [NumPoints]atomic.Uint64

// counters are the obs-registry cells (snmatch_fault_injections_total),
// resolved once at first Arm.
var (
	counters  [NumPoints]*obs.Counter
	countOnce atomic.Bool
)

func wireCounters() {
	if countOnce.CompareAndSwap(false, true) {
		names := make([]string, NumPoints)
		copy(names, pointNames[:])
		vec := obs.Default.CounterVec("snmatch_fault_injections_total",
			"Fault-point injections fired (error, latency or panic), by point.",
			"point", names...)
		for i := range counters {
			counters[i] = vec.With(pointNames[i])
		}
	}
}

// Check is the compiled-in fault checkpoint. Disarmed (the default) it
// is one atomic load and a nil return — safe on the zero-allocation
// warm path. Armed, it advances the point's deterministic schedule and
// fires the rule's mode when due: ErrInjected, a latency sleep, or a
// panic.
//
//snmatch:noalloc
func Check(p Point) error {
	r := rules[p].Load()
	if r == nil {
		return nil
	}
	return r.fire(p)
}

func (r *Rule) fire(p Point) error {
	n := r.calls.Add(1) - 1 // 0-based call index
	if n < r.After {
		return nil
	}
	if (n-r.After)%r.Every != 0 {
		return nil
	}
	if r.Prob < 1 && splitmix64(r.Seed+n) >= uint64(r.Prob*float64(1<<63)*2) {
		return nil
	}
	fired[p].Add(1)
	counters[p].Inc()
	switch r.Mode {
	case ModeLatency:
		time.Sleep(r.Delay)
		return nil
	case ModePanic:
		//lint:allow noalloc a firing fault is the cold path by construction; disarmed Check is one atomic load
		panic(fmt.Errorf("%w at %s", ErrInjected, p))
	}
	//lint:allow noalloc a firing fault is the cold path by construction; disarmed Check is one atomic load
	return fmt.Errorf("%w at %s", ErrInjected, p)
}

// Fired reports how many times the point has injected since process
// start (across re-arms).
func Fired(p Point) uint64 { return fired[p].Load() }

// Armed reports whether the point currently has a rule installed.
func Armed(p Point) bool { return rules[p].Load() != nil }

// ArmPoint installs r at p programmatically (tests; Arm parses the
// flag/env form). A nil r disarms the point.
func ArmPoint(p Point, r *Rule) {
	if r != nil {
		wireCounters()
		if r.Every == 0 {
			r.Every = 1
		}
		if r.Prob == 0 {
			r.Prob = 1
		}
		if r.Delay == 0 {
			r.Delay = 10 * time.Millisecond
		}
	}
	rules[p].Store(r)
}

// Disarm removes every armed rule; Check sites return to the
// single-load fast path.
func Disarm() {
	for i := range rules {
		rules[i].Store(nil)
	}
}

// Arm parses and installs a fault spec (see the package comment for
// the syntax). An empty spec is a no-op. Points not named keep their
// current rule; arming the same point twice replaces its rule and
// resets its call counter.
func Arm(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	for _, one := range strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ';' }) {
		parts := strings.Split(strings.TrimSpace(one), ":")
		if len(parts) < 2 {
			return fmt.Errorf("fault: rule %q: want point:mode[:key=value...]", one)
		}
		p, err := ParsePoint(parts[0])
		if err != nil {
			return err
		}
		r := &Rule{}
		switch parts[1] {
		case "error":
			r.Mode = ModeError
		case "latency":
			r.Mode = ModeLatency
		case "panic":
			r.Mode = ModePanic
		default:
			return fmt.Errorf("fault: rule %q: unknown mode %q (want error, latency or panic)", one, parts[1])
		}
		for _, kv := range parts[2:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("fault: rule %q: bad option %q (want key=value)", one, kv)
			}
			switch k {
			case "every":
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil || n == 0 {
					return fmt.Errorf("fault: rule %q: every=%q must be a positive integer", one, v)
				}
				r.Every = n
			case "after":
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					return fmt.Errorf("fault: rule %q: after=%q must be a non-negative integer", one, v)
				}
				r.After = n
			case "p":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f <= 0 || f > 1 {
					return fmt.Errorf("fault: rule %q: p=%q must be in (0, 1]", one, v)
				}
				r.Prob = f
			case "seed":
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					return fmt.Errorf("fault: rule %q: seed=%q must be an integer", one, v)
				}
				r.Seed = n
			case "delay":
				d, err := time.ParseDuration(v)
				if err != nil || d < 0 {
					return fmt.Errorf("fault: rule %q: delay=%q must be a duration", one, v)
				}
				r.Delay = d
			default:
				return fmt.Errorf("fault: rule %q: unknown option %q", one, k)
			}
		}
		ArmPoint(p, r)
	}
	return nil
}

// EnvVar is the environment variable ArmFromEnv reads.
const EnvVar = "SNMATCH_FAULTS"

// splitmix64 is the deterministic per-call coin for p= rules: a fixed
// bijective mixer, so equal seeds produce equal fire schedules on every
// platform.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
