package fault

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDisarmedCheckIsFree pins the disarmed fast path: nil error and
// zero heap allocations — the property that lets Check sites live on
// the zero-allocation warm query path.
func TestDisarmedCheckIsFree(t *testing.T) {
	Disarm()
	for p := Point(0); p < NumPoints; p++ {
		if err := Check(p); err != nil {
			t.Fatalf("disarmed %s returned %v", p, err)
		}
	}
	if n := testing.AllocsPerRun(100, func() {
		for p := Point(0); p < NumPoints; p++ {
			Check(p)
		}
	}); n != 0 {
		t.Errorf("disarmed Check allocates %.1f times, want 0", n)
	}
}

// TestArmErrorSchedule pins the after/every schedule: with
// every=2:after=1, 0-based calls 1, 3, 5, ... fire.
func TestArmErrorSchedule(t *testing.T) {
	defer Disarm()
	if err := Arm("batcher-enqueue:error:every=2:after=1"); err != nil {
		t.Fatal(err)
	}
	var got []int
	for i := 0; i < 6; i++ {
		if err := Check(BatcherEnqueue); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("call %d: %v is not ErrInjected", i, err)
			}
			got = append(got, i)
		}
	}
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("fired at %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired at %v, want %v", got, want)
		}
	}
}

// TestLatencyMode pins that latency rules sleep and then succeed.
func TestLatencyMode(t *testing.T) {
	defer Disarm()
	if err := Arm("swap:latency:delay=30ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Check(Swap); err != nil {
		t.Fatalf("latency mode returned %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency rule slept %v, want >= 30ms", d)
	}
}

// TestPanicMode pins that panic rules panic with ErrInjected.
func TestPanicMode(t *testing.T) {
	defer Disarm()
	if err := Arm("shard-scan:panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic rule did not panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrInjected) {
			t.Fatalf("panicked with %v, want ErrInjected", r)
		}
	}()
	Check(ShardScan)
}

// TestProbDeterministic pins the seeded coin: two identical armings
// fire on exactly the same call indexes, and a different seed gives a
// different (but still reproducible) schedule.
func TestProbDeterministic(t *testing.T) {
	defer Disarm()
	schedule := func(seed string) []int {
		if err := Arm("snapshot-read:error:p=0.5:seed=" + seed); err != nil {
			t.Fatal(err)
		}
		var got []int
		for i := 0; i < 64; i++ {
			if Check(SnapshotRead) != nil {
				got = append(got, i)
			}
		}
		return got
	}
	a, b := schedule("7"), schedule("7")
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("p=0.5 fired %d/64 times; the coin is not thinning", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed fired %d then %d times", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedules: %v vs %v", a, b)
		}
	}
}

// TestArmParseErrors pins clean rejection of malformed specs.
func TestArmParseErrors(t *testing.T) {
	defer Disarm()
	for _, spec := range []string{
		"snapshot-read",            // missing mode
		"bogus-point:error",        // unknown point
		"swap:bogus",               // unknown mode
		"swap:error:every=0",       // every must be positive
		"swap:error:p=2",           // p out of range
		"swap:error:delay=xyz",     // bad duration
		"swap:error:nonsense",      // option without '='
		"swap:error:mystery=1",     // unknown option
		"swap:error,snapshot-read", // second rule missing mode
	} {
		if err := Arm(spec); err == nil {
			t.Errorf("Arm(%q) accepted a malformed spec", spec)
		}
	}
	if Armed(Swap) && Fired(Swap) > 0 {
		// Partially-applied specs may arm earlier rules; that is fine —
		// the parse error still surfaces. Nothing to assert beyond no
		// panic.
	}
}

// TestArmMultipleRules pins the comma-separated multi-point form and
// that String/ParsePoint round-trip every point.
func TestArmMultipleRules(t *testing.T) {
	defer Disarm()
	if err := Arm("snapshot-read:error, batcher-enqueue:latency:delay=1ms"); err != nil {
		t.Fatal(err)
	}
	if !Armed(SnapshotRead) || !Armed(BatcherEnqueue) {
		t.Fatal("multi-rule spec did not arm both points")
	}
	if Armed(ShardScan) || Armed(Swap) {
		t.Fatal("unnamed points were armed")
	}
	for p := Point(0); p < NumPoints; p++ {
		rt, err := ParsePoint(p.String())
		if err != nil || rt != p {
			t.Fatalf("point %d round-trips to %v, %v", p, rt, err)
		}
	}
	if !strings.Contains(Check(SnapshotRead).Error(), "snapshot-read") {
		t.Fatal("injected error does not name its point")
	}
}

// TestConcurrentCheck hammers an armed point from many goroutines (run
// under -race in CI): the schedule stays exact — every=3 over 300 calls
// fires exactly 100 times.
func TestConcurrentCheck(t *testing.T) {
	defer Disarm()
	before := Fired(BatcherEnqueue)
	if err := Arm("batcher-enqueue:error:every=3"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				Check(BatcherEnqueue)
			}
		}()
	}
	wg.Wait()
	if n := Fired(BatcherEnqueue) - before; n != 100 {
		t.Fatalf("every=3 over 300 concurrent calls fired %d times, want 100", n)
	}
}
