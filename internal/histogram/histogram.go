// Package histogram implements joint RGB colour histograms and the four
// OpenCV-compatible comparison metrics used by the paper's colour-only
// pipeline: Correlation, Chi-square, Intersection and Hellinger
// (Bhattacharyya).
package histogram

import (
	"fmt"
	"math"

	"snmatch/internal/arena"
	"snmatch/internal/imaging"
)

// Hist is a joint 3-D RGB histogram with Bins cells per channel, stored
// row-major as [r][g][b].
type Hist struct {
	Bins   int
	Counts []float64
}

// New returns an empty histogram with the given number of bins per
// channel. It panics unless 1 <= bins <= 256.
func New(bins int) *Hist { return NewIn(nil, bins) }

// NewIn is New with the header and the bin counts drawn from the arena
// (nil falls back to the heap), for the pooled query paths that build a
// throwaway histogram per classification. Arena-backed histograms are
// zeroed exactly like heap ones, and are reclaimed by the arena's Reset.
func NewIn(a *arena.Arena, bins int) *Hist {
	if bins < 1 || bins > 256 {
		panic(fmt.Sprintf("histogram: invalid bin count %d", bins))
	}
	h := arena.NewOf[Hist](a)
	h.Bins = bins
	h.Counts = arena.Slice[float64](a, bins*bins*bins)
	return h
}

// index returns the flat cell index for an RGB value.
func (h *Hist) index(c imaging.RGB) int {
	// Bin width 256/bins; values map uniformly.
	r := int(c.R) * h.Bins / 256
	g := int(c.G) * h.Bins / 256
	b := int(c.B) * h.Bins / 256
	return (r*h.Bins+g)*h.Bins + b
}

// Add accumulates a single colour sample.
func (h *Hist) Add(c imaging.RGB) { h.Counts[h.index(c)]++ }

// Total returns the sum of all cells.
func (h *Hist) Total() float64 {
	t := 0.0
	for _, v := range h.Counts {
		t += v
	}
	return t
}

// Normalize scales the histogram to unit mass in place and returns it.
// An empty histogram is left untouched.
func (h *Hist) Normalize() *Hist {
	t := h.Total()
	if t == 0 {
		return h
	}
	inv := 1 / t
	for i := range h.Counts {
		h.Counts[i] *= inv
	}
	return h
}

// Clone returns a deep copy.
func (h *Hist) Clone() *Hist {
	out := New(h.Bins)
	copy(out.Counts, h.Counts)
	return out
}

// Compute builds the RGB histogram of the whole image.
func Compute(img *imaging.Image, bins int) *Hist { return ComputeIn(nil, img, bins) }

// ComputeIn is Compute with the histogram drawn from the arena (nil
// falls back to the heap).
func ComputeIn(a *arena.Arena, img *imaging.Image, bins int) *Hist {
	h := NewIn(a, bins)
	for i := 0; i < len(img.Pix); i += 3 {
		h.Add(imaging.RGB{R: img.Pix[i], G: img.Pix[i+1], B: img.Pix[i+2]})
	}
	return h
}

// ComputeMasked builds the histogram over pixels whose mask value is
// nonzero. The mask must match the image size.
func ComputeMasked(img *imaging.Image, mask *imaging.Gray, bins int) *Hist {
	return ComputeMaskedIn(nil, img, mask, bins)
}

// ComputeMaskedIn is ComputeMasked with the histogram drawn from the
// arena (nil falls back to the heap).
func ComputeMaskedIn(a *arena.Arena, img *imaging.Image, mask *imaging.Gray, bins int) *Hist {
	if mask.W != img.W || mask.H != img.H {
		panic("histogram: mask size mismatch")
	}
	h := NewIn(a, bins)
	for p, i := 0, 0; p < len(mask.Pix); p, i = p+1, i+3 {
		if mask.Pix[p] == 0 {
			continue
		}
		h.Add(imaging.RGB{R: img.Pix[i], G: img.Pix[i+1], B: img.Pix[i+2]})
	}
	return h
}

// CompareMethod selects the histogram comparison metric.
type CompareMethod int

const (
	// Correlation is OpenCV HISTCMP_CORREL: Pearson correlation of the
	// bin vectors; 1 for identical histograms, higher is more similar.
	Correlation CompareMethod = iota
	// ChiSquare is HISTCMP_CHISQR: sum (a-b)^2/a; 0 for identical
	// histograms, lower is more similar.
	ChiSquare
	// Intersection is HISTCMP_INTERSECT: sum min(a, b); higher is more
	// similar (equals the common mass).
	Intersection
	// Hellinger is HISTCMP_BHATTACHARYYA: sqrt(1 - BC) with BC the
	// Bhattacharyya coefficient; 0 for identical, lower is more similar.
	Hellinger
)

// String returns the paper's label for the metric.
func (m CompareMethod) String() string {
	switch m {
	case Correlation:
		return "Correlation"
	case ChiSquare:
		return "Chi-square"
	case Intersection:
		return "Intersection"
	case Hellinger:
		return "Hellinger"
	}
	return "unknown"
}

// HigherIsBetter reports whether larger comparison values mean more
// similar histograms for the metric.
func (m CompareMethod) HigherIsBetter() bool {
	return m == Correlation || m == Intersection
}

// Compare evaluates the metric between two histograms with equal binning,
// following the OpenCV compareHist definitions.
func Compare(a, b *Hist, method CompareMethod) float64 {
	if a.Bins != b.Bins {
		panic("histogram: comparing histograms with different bin counts")
	}
	n := len(a.Counts)
	switch method {
	case Correlation:
		var sa, sb float64
		for i := 0; i < n; i++ {
			sa += a.Counts[i]
			sb += b.Counts[i]
		}
		ma, mb := sa/float64(n), sb/float64(n)
		var num, da, db float64
		for i := 0; i < n; i++ {
			xa := a.Counts[i] - ma
			xb := b.Counts[i] - mb
			num += xa * xb
			da += xa * xa
			db += xb * xb
		}
		den := math.Sqrt(da * db)
		if den == 0 {
			// OpenCV returns 1 when both are constant (identical up to mean).
			return 1
		}
		return num / den
	case ChiSquare:
		var sum float64
		for i := 0; i < n; i++ {
			if a.Counts[i] > 0 {
				d := a.Counts[i] - b.Counts[i]
				sum += d * d / a.Counts[i]
			}
		}
		return sum
	case Intersection:
		var sum float64
		for i := 0; i < n; i++ {
			sum += math.Min(a.Counts[i], b.Counts[i])
		}
		return sum
	case Hellinger:
		var sa, sb, sxy float64
		for i := 0; i < n; i++ {
			sa += a.Counts[i]
			sb += b.Counts[i]
			sxy += math.Sqrt(a.Counts[i] * b.Counts[i])
		}
		if sa == 0 || sb == 0 {
			return 1
		}
		bc := sxy / math.Sqrt(sa*sb)
		if bc > 1 {
			bc = 1
		}
		return math.Sqrt(1 - bc)
	}
	panic(fmt.Sprintf("histogram: unknown compare method %d", method))
}

// Distance converts a comparison score into a quantity to minimise, used
// by the hybrid pipeline: for similarity metrics (Correlation and
// Intersection) the paper takes the inverse of the score; for distance
// metrics the score is returned unchanged.
func Distance(score float64, method CompareMethod) float64 {
	if !method.HigherIsBetter() {
		return score
	}
	const eps = 1e-9
	if score < eps {
		return 1 / eps
	}
	return 1 / score
}
