package histogram

import (
	"math"
	"testing"
	"testing/quick"

	"snmatch/internal/imaging"
)

func uniformImage(c imaging.RGB) *imaging.Image {
	return imaging.NewImageFilled(8, 8, c)
}

func TestComputeCountsAllPixels(t *testing.T) {
	img := uniformImage(imaging.C(10, 20, 30))
	h := Compute(img, 8)
	if got := h.Total(); got != 64 {
		t.Errorf("total = %v, want 64", got)
	}
	// All mass in a single cell.
	nonZero := 0
	for _, v := range h.Counts {
		if v > 0 {
			nonZero++
		}
	}
	if nonZero != 1 {
		t.Errorf("non-zero cells = %d, want 1", nonZero)
	}
}

func TestIndexBinEdges(t *testing.T) {
	h := New(8)
	// 256/8 = 32 wide bins: value 31 -> bin 0, 32 -> bin 1, 255 -> bin 7.
	if h.index(imaging.C(31, 0, 0)) != h.index(imaging.C(0, 0, 0)) {
		t.Error("31 and 0 should share a bin")
	}
	if h.index(imaging.C(32, 0, 0)) == h.index(imaging.C(31, 0, 0)) {
		t.Error("32 and 31 should differ")
	}
	if got := h.index(imaging.C(255, 255, 255)); got != len(h.Counts)-1 {
		t.Errorf("white index = %d, want last", got)
	}
}

func TestNormalize(t *testing.T) {
	img := uniformImage(imaging.C(200, 10, 10))
	h := Compute(img, 4).Normalize()
	if math.Abs(h.Total()-1) > 1e-12 {
		t.Errorf("normalised total = %v", h.Total())
	}
	// Normalising an empty histogram is a no-op, not NaN.
	e := New(4).Normalize()
	if e.Total() != 0 {
		t.Errorf("empty normalised total = %v", e.Total())
	}
}

func TestComputeMasked(t *testing.T) {
	img := imaging.NewImageFilled(4, 4, imaging.C(250, 0, 0))
	img.Set(0, 0, imaging.C(0, 250, 0))
	mask := imaging.NewGray(4, 4)
	mask.Set(0, 0, 255)
	h := ComputeMasked(img, mask, 4)
	if h.Total() != 1 {
		t.Fatalf("masked total = %v, want 1", h.Total())
	}
	// The single counted pixel is green.
	if h.Counts[h.index(imaging.C(0, 250, 0))] != 1 {
		t.Error("mask selected the wrong pixel")
	}
	defer func() {
		if recover() == nil {
			t.Error("mask size mismatch did not panic")
		}
	}()
	ComputeMasked(img, imaging.NewGray(2, 2), 4)
}

func TestCorrelationIdenticalAndOpposite(t *testing.T) {
	a := Compute(uniformImage(imaging.C(10, 10, 10)), 4).Normalize()
	if got := Compare(a, a.Clone(), Correlation); math.Abs(got-1) > 1e-9 {
		t.Errorf("self correlation = %v, want 1", got)
	}
	b := Compute(uniformImage(imaging.C(240, 240, 240)), 4).Normalize()
	got := Compare(a, b, Correlation)
	if got >= 1 {
		t.Errorf("different histograms correlation = %v, want < 1", got)
	}
}

func TestChiSquareProperties(t *testing.T) {
	a := Compute(uniformImage(imaging.C(10, 10, 10)), 4).Normalize()
	if got := Compare(a, a.Clone(), ChiSquare); got != 0 {
		t.Errorf("self chi-square = %v, want 0", got)
	}
	b := Compute(uniformImage(imaging.C(240, 10, 10)), 4).Normalize()
	if got := Compare(a, b, ChiSquare); got <= 0 {
		t.Errorf("different chi-square = %v, want > 0", got)
	}
}

func TestIntersectionProperties(t *testing.T) {
	a := Compute(uniformImage(imaging.C(10, 10, 10)), 4).Normalize()
	if got := Compare(a, a.Clone(), Intersection); math.Abs(got-1) > 1e-9 {
		t.Errorf("self intersection = %v, want 1", got)
	}
	b := Compute(uniformImage(imaging.C(240, 10, 10)), 4).Normalize()
	if got := Compare(a, b, Intersection); got != 0 {
		t.Errorf("disjoint intersection = %v, want 0", got)
	}
	// Half-overlapping image.
	img := imaging.NewImageFilled(8, 8, imaging.C(10, 10, 10))
	img.FillRect(imaging.Rect(0, 0, 8, 4), imaging.C(240, 10, 10))
	c := Compute(img, 4).Normalize()
	if got := Compare(a, c, Intersection); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("half intersection = %v, want 0.5", got)
	}
}

func TestHellingerProperties(t *testing.T) {
	a := Compute(uniformImage(imaging.C(10, 10, 10)), 4).Normalize()
	if got := Compare(a, a.Clone(), Hellinger); got > 1e-7 {
		t.Errorf("self hellinger = %v, want 0", got)
	}
	b := Compute(uniformImage(imaging.C(240, 10, 10)), 4).Normalize()
	if got := Compare(a, b, Hellinger); math.Abs(got-1) > 1e-9 {
		t.Errorf("disjoint hellinger = %v, want 1", got)
	}
}

func TestHellingerBoundsProperty(t *testing.T) {
	f := func(vals [16]uint8) bool {
		a, b := New(2), New(2)
		for i := 0; i < 8; i++ {
			a.Counts[i] = float64(vals[i])
			b.Counts[i] = float64(vals[i+8])
		}
		if a.Total() == 0 || b.Total() == 0 {
			return true
		}
		d := Compare(a.Normalize(), b.Normalize(), Hellinger)
		return d >= 0 && d <= 1 && !math.IsNaN(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompareSymmetry(t *testing.T) {
	imgA := imaging.NewImageFilled(8, 8, imaging.C(10, 200, 40))
	imgA.FillRect(imaging.Rect(0, 0, 4, 8), imaging.C(90, 14, 200))
	imgB := imaging.NewImageFilled(8, 8, imaging.C(10, 200, 40))
	a := Compute(imgA, 8).Normalize()
	b := Compute(imgB, 8).Normalize()
	// Correlation, Intersection and Hellinger are symmetric; Chi-square is not.
	for _, m := range []CompareMethod{Correlation, Intersection, Hellinger} {
		d1, d2 := Compare(a, b, m), Compare(b, a, m)
		if math.Abs(d1-d2) > 1e-12 {
			t.Errorf("%v asymmetric: %v vs %v", m, d1, d2)
		}
	}
}

func TestCompareBinMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bin mismatch did not panic")
		}
	}()
	Compare(New(4), New(8), Correlation)
}

func TestDistanceInversion(t *testing.T) {
	// Similarity metrics are inverted, distances pass through.
	if got := Distance(2, Correlation); got != 0.5 {
		t.Errorf("Distance(2, Correlation) = %v", got)
	}
	if got := Distance(0.25, Intersection); got != 4 {
		t.Errorf("Distance(0.25, Intersection) = %v", got)
	}
	if got := Distance(0.7, Hellinger); got != 0.7 {
		t.Errorf("Distance(0.7, Hellinger) = %v", got)
	}
	if got := Distance(3, ChiSquare); got != 3 {
		t.Errorf("Distance(3, ChiSquare) = %v", got)
	}
	// Near-zero similarity must not produce +Inf.
	if got := Distance(0, Correlation); math.IsInf(got, 0) {
		t.Error("Distance(0) overflowed")
	}
}

func TestMethodLabels(t *testing.T) {
	labels := map[CompareMethod]string{
		Correlation:  "Correlation",
		ChiSquare:    "Chi-square",
		Intersection: "Intersection",
		Hellinger:    "Hellinger",
	}
	for m, want := range labels {
		if m.String() != want {
			t.Errorf("%d label = %q", m, m.String())
		}
	}
	if CompareMethod(42).String() != "unknown" {
		t.Error("unknown label wrong")
	}
	if !Correlation.HigherIsBetter() || !Intersection.HigherIsBetter() {
		t.Error("similarity metrics misclassified")
	}
	if ChiSquare.HigherIsBetter() || Hellinger.HigherIsBetter() {
		t.Error("distance metrics misclassified")
	}
}

func TestNewPanicsOnBadBins(t *testing.T) {
	for _, bins := range []int{0, -1, 257} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", bins)
				}
			}()
			New(bins)
		}()
	}
}

func TestSimilarColoursCloserThanDifferent(t *testing.T) {
	// A brown chair-ish palette should be closer to another brown than to
	// a saturated green under every metric's distance ordering.
	brown1 := Compute(uniformImage(imaging.C(120, 80, 40)), 8).Normalize()
	brown2 := Compute(uniformImage(imaging.C(125, 85, 45)), 8).Normalize()
	green := Compute(uniformImage(imaging.C(20, 220, 30)), 8).Normalize()
	for _, m := range []CompareMethod{Correlation, ChiSquare, Intersection, Hellinger} {
		near := Distance(Compare(brown1, brown2, m), m)
		far := Distance(Compare(brown1, green, m), m)
		if near > far {
			t.Errorf("%v: near %v > far %v", m, near, far)
		}
	}
}
