// Package moments computes image and contour moments, the seven Hu
// invariants (Hu 1962), and the OpenCV-compatible matchShapes distances
// used by the paper's shape-only matching pipeline (its "L1/L2/L3"
// variants correspond to OpenCV's CONTOURS_MATCH_I1/I2/I3).
package moments

import (
	"math"

	"snmatch/internal/geom"
	"snmatch/internal/imaging"
)

// Moments holds spatial moments up to order 3 together with the derived
// central (Mu) and normalised central (Nu) moments.
type Moments struct {
	M00, M10, M01          float64
	M20, M11, M02          float64
	M30, M21, M12, M03     float64
	Mu20, Mu11, Mu02       float64
	Mu30, Mu21, Mu12, Mu03 float64
	Nu20, Nu11, Nu02       float64
	Nu30, Nu21, Nu12, Nu03 float64
}

// Centroid returns the centre of mass, or (0, 0) for an empty shape.
func (m *Moments) Centroid() geom.Point {
	if m.M00 == 0 {
		return geom.Point{}
	}
	return geom.Pt(m.M10/m.M00, m.M01/m.M00)
}

// deriveCentral fills the central and normalised central moments from the
// spatial ones.
func (m *Moments) deriveCentral() {
	if m.M00 == 0 {
		return
	}
	cx := m.M10 / m.M00
	cy := m.M01 / m.M00
	m.Mu20 = m.M20 - cx*m.M10
	m.Mu11 = m.M11 - cx*m.M01
	m.Mu02 = m.M02 - cy*m.M01
	m.Mu30 = m.M30 - 3*cx*m.M20 + 2*cx*cx*m.M10
	m.Mu21 = m.M21 - 2*cx*m.M11 - cy*m.M20 + 2*cx*cx*m.M01
	m.Mu12 = m.M12 - 2*cy*m.M11 - cx*m.M02 + 2*cy*cy*m.M10
	m.Mu03 = m.M03 - 3*cy*m.M02 + 2*cy*cy*m.M01

	inv := 1 / m.M00
	s2 := inv * inv // m00^-2 for order-2 terms: mu/m00^((p+q)/2+1) with p+q=2
	s3 := s2 * math.Sqrt(inv)
	m.Nu20 = m.Mu20 * s2
	m.Nu11 = m.Mu11 * s2
	m.Nu02 = m.Mu02 * s2
	m.Nu30 = m.Mu30 * s3
	m.Nu21 = m.Mu21 * s3
	m.Nu12 = m.Mu12 * s3
	m.Nu03 = m.Mu03 * s3
}

// FromRaster computes moments of a grayscale raster. With binary set,
// every nonzero pixel contributes weight 1; otherwise the pixel intensity
// is the weight (matching OpenCV's cv::moments binaryImage flag).
func FromRaster(g *imaging.Gray, binary bool) Moments {
	var m Moments
	for y := 0; y < g.H; y++ {
		fy := float64(y)
		var r00, r10, r20, r30 float64
		for x := 0; x < g.W; x++ {
			v := float64(g.Pix[y*g.W+x])
			if v == 0 {
				continue
			}
			if binary {
				v = 1
			}
			fx := float64(x)
			r00 += v
			r10 += v * fx
			r20 += v * fx * fx
			r30 += v * fx * fx * fx
		}
		m.M00 += r00
		m.M10 += r10
		m.M01 += r00 * fy
		m.M20 += r20
		m.M11 += r10 * fy
		m.M02 += r00 * fy * fy
		m.M30 += r30
		m.M21 += r20 * fy
		m.M12 += r10 * fy * fy
		m.M03 += r00 * fy * fy * fy
	}
	m.deriveCentral()
	return m
}

// FromContour computes moments of a closed polygon boundary using Green's
// theorem, following OpenCV's contourMoments so that shape matching
// behaves identically to cv::matchShapes on point contours.
func FromContour(pts []geom.PointI) Moments {
	var m Moments
	n := len(pts)
	if n == 0 {
		return m
	}
	var a00, a10, a01, a20, a11, a02, a30, a21, a12, a03 float64
	xiPrev := float64(pts[n-1].X)
	yiPrev := float64(pts[n-1].Y)
	for i := 0; i < n; i++ {
		xi := float64(pts[i].X)
		yi := float64(pts[i].Y)
		xi2 := xi * xi
		yi2 := yi * yi
		xp2 := xiPrev * xiPrev
		yp2 := yiPrev * yiPrev
		dxy := xiPrev*yi - xi*yiPrev
		xii := xiPrev + xi
		yii := yiPrev + yi

		a00 += dxy
		a10 += dxy * xii
		a01 += dxy * yii
		a20 += dxy * (xiPrev*xii + xi2)
		a11 += dxy * (xiPrev*(yii+yiPrev) + xi*(yii+yi))
		a02 += dxy * (yiPrev*yii + yi2)
		a30 += dxy * xii * (xp2 + xi2)
		a03 += dxy * yii * (yp2 + yi2)
		a21 += dxy * (xp2*(3*yiPrev+yi) + 2*xi*xiPrev*yii + xi2*(yiPrev+3*yi))
		a12 += dxy * (yp2*(3*xiPrev+xi) + 2*yi*yiPrev*xii + yi2*(xiPrev+3*xi))

		xiPrev, yiPrev = xi, yi
	}
	if a00 == 0 {
		return m
	}
	sign := 1.0
	if a00 < 0 {
		sign = -1
	}
	m.M00 = a00 * sign / 2
	m.M10 = a10 * sign / 6
	m.M01 = a01 * sign / 6
	m.M20 = a20 * sign / 12
	m.M11 = a11 * sign / 24
	m.M02 = a02 * sign / 12
	m.M30 = a30 * sign / 20
	m.M21 = a21 * sign / 60
	m.M12 = a12 * sign / 60
	m.M03 = a03 * sign / 20
	m.deriveCentral()
	return m
}

// Hu holds the seven Hu moment invariants.
type Hu [7]float64

// HuInvariants computes the seven invariants from normalised central
// moments. They are invariant to translation, scale and rotation (the
// seventh changes sign under reflection).
func HuInvariants(m Moments) Hu {
	n20, n11, n02 := m.Nu20, m.Nu11, m.Nu02
	n30, n21, n12, n03 := m.Nu30, m.Nu21, m.Nu12, m.Nu03

	t0 := n30 + n12
	t1 := n21 + n03
	q0 := t0 * t0
	q1 := t1 * t1
	n4 := 4 * n11
	s := n20 + n02
	d := n20 - n02

	var h Hu
	h[0] = s
	h[1] = d*d + n4*n11
	h[3] = q0 + q1
	h[5] = d*(q0-q1) + n4*t0*t1

	t0q := q0 - 3*q1
	t1q := 3*q0 - q1
	u0 := n30 - 3*n12
	u1 := 3*n21 - n03
	h[2] = u0*u0 + u1*u1
	h[4] = u0*t0*t0q + u1*t1*t1q
	h[6] = u1*t0*t0q - u0*t1*t1q
	return h
}

// MatchMethod selects the matchShapes distance. The paper labels these
// L1, L2 and L3.
type MatchMethod int

const (
	// MatchI1 is OpenCV CONTOURS_MATCH_I1: sum |1/mA - 1/mB| over the
	// log-scaled Hu invariants.
	MatchI1 MatchMethod = iota
	// MatchI2 is CONTOURS_MATCH_I2: sum |mA - mB|.
	MatchI2
	// MatchI3 is CONTOURS_MATCH_I3: max |mA - mB| / |mA|.
	MatchI3
)

// String returns the paper's label for the method.
func (m MatchMethod) String() string {
	switch m {
	case MatchI1:
		return "L1"
	case MatchI2:
		return "L2"
	case MatchI3:
		return "L3"
	}
	return "unknown"
}

// matchEps mirrors the magnitude cut-off OpenCV applies before taking
// logarithms of Hu invariants.
const matchEps = 1e-20

// MatchShapes returns the dissimilarity of two Hu invariant vectors using
// the OpenCV formulas over log-scaled invariants: smaller is more similar
// and identical shapes score 0.
func MatchShapes(a, b Hu, method MatchMethod) float64 {
	result := 0.0
	for i := 0; i < 7; i++ {
		ama := math.Abs(a[i])
		amb := math.Abs(b[i])
		if ama <= matchEps || amb <= matchEps {
			continue
		}
		sma := 1.0
		if a[i] < 0 {
			sma = -1
		}
		smb := 1.0
		if b[i] < 0 {
			smb = -1
		}
		ma := sma * math.Log10(ama)
		mb := smb * math.Log10(amb)
		switch method {
		case MatchI1:
			result += math.Abs(1/ma - 1/mb)
		case MatchI2:
			result += math.Abs(ma - mb)
		case MatchI3:
			if r := math.Abs(ma-mb) / math.Abs(ma); r > result {
				result = r
			}
		}
	}
	return result
}

// HuFromGray is a convenience helper computing Hu invariants straight
// from a binary-thresholded raster.
func HuFromGray(g *imaging.Gray, binary bool) Hu {
	return HuInvariants(FromRaster(g, binary))
}

// HuFromContour is a convenience helper computing Hu invariants from a
// boundary polygon.
func HuFromContour(pts []geom.PointI) Hu {
	return HuInvariants(FromContour(pts))
}
