package moments

import (
	"math"
	"testing"

	"snmatch/internal/contour"
	"snmatch/internal/geom"
	"snmatch/internal/imaging"
)

// rasterRect returns a binary raster with a filled rectangle.
func rasterRect(w, h int, r geom.Rect) *imaging.Gray {
	img := imaging.NewImage(w, h)
	img.FillRect(r, imaging.White)
	return img.ToGray()
}

// rasterShape draws an L-shaped asymmetric test polygon, optionally
// rotated by theta and scaled by s about the canvas centre.
func rasterShape(size int, theta, s float64) *imaging.Gray {
	img := imaging.NewImage(size, size)
	c := float64(size) / 2
	base := []geom.Point{
		geom.Pt(-20, -30), geom.Pt(12, -30), geom.Pt(12, -6),
		geom.Pt(28, -6), geom.Pt(28, 30), geom.Pt(-20, 30),
	}
	pts := make([]geom.Point, len(base))
	for i, p := range base {
		q := p.Scale(s).Rotate(theta)
		pts[i] = geom.Pt(q.X+c, q.Y+c)
	}
	img.FillPolygon(pts, imaging.White)
	return img.ToGray()
}

func TestRasterMomentsRect(t *testing.T) {
	g := rasterRect(20, 20, geom.R(4, 6, 10, 16)) // 6 x 10 = 60 px
	m := FromRaster(g, true)
	if m.M00 != 60 {
		t.Errorf("M00 = %v, want 60", m.M00)
	}
	c := m.Centroid()
	if math.Abs(c.X-6.5) > 1e-9 || math.Abs(c.Y-10.5) > 1e-9 {
		t.Errorf("centroid = %v, want (6.5, 10.5)", c)
	}
	// Central moments of an axis-aligned rectangle: Mu11 == 0.
	if math.Abs(m.Mu11) > 1e-6 {
		t.Errorf("Mu11 = %v, want 0", m.Mu11)
	}
	// For a discrete w x h block, mu20 = m00*(w^2-1)/12.
	wantMu20 := 60.0 * (36 - 1) / 12
	if math.Abs(m.Mu20-wantMu20) > 1e-6 {
		t.Errorf("Mu20 = %v, want %v", m.Mu20, wantMu20)
	}
}

func TestRasterMomentsIntensityWeight(t *testing.T) {
	g := imaging.NewGray(3, 1)
	g.Pix = []uint8{0, 100, 200}
	m := FromRaster(g, false)
	if m.M00 != 300 {
		t.Errorf("M00 = %v", m.M00)
	}
	// Centroid pulled towards the brighter pixel.
	if got := m.Centroid().X; math.Abs(got-(100*1+200*2)/300.0) > 1e-9 {
		t.Errorf("centroid x = %v", got)
	}
}

func TestEmptyMoments(t *testing.T) {
	g := imaging.NewGray(4, 4)
	m := FromRaster(g, true)
	if m.M00 != 0 || m.Centroid() != (geom.Point{}) {
		t.Errorf("empty moments = %+v", m)
	}
	if m := FromContour(nil); m.M00 != 0 {
		t.Errorf("empty contour moments = %+v", m)
	}
}

func TestContourMomentsMatchAnalytic(t *testing.T) {
	// Square polygon with corners (0,0)..(10,10): area 100, centroid (5,5).
	pts := []geom.PointI{geom.PtI(0, 0), geom.PtI(10, 0), geom.PtI(10, 10), geom.PtI(0, 10)}
	m := FromContour(pts)
	if math.Abs(m.M00-100) > 1e-9 {
		t.Errorf("M00 = %v, want 100", m.M00)
	}
	c := m.Centroid()
	if math.Abs(c.X-5) > 1e-9 || math.Abs(c.Y-5) > 1e-9 {
		t.Errorf("centroid = %v", c)
	}
	// mu20 of a continuous a x a square = a^4/12.
	if math.Abs(m.Mu20-10000.0/12) > 1e-6 {
		t.Errorf("Mu20 = %v, want %v", m.Mu20, 10000.0/12)
	}
}

func TestContourOrientationInvariance(t *testing.T) {
	cw := []geom.PointI{geom.PtI(0, 0), geom.PtI(0, 8), geom.PtI(6, 8), geom.PtI(6, 0)}
	ccw := []geom.PointI{geom.PtI(0, 0), geom.PtI(6, 0), geom.PtI(6, 8), geom.PtI(0, 8)}
	a, b := FromContour(cw), FromContour(ccw)
	if math.Abs(a.M00-b.M00) > 1e-9 || math.Abs(a.M10-b.M10) > 1e-9 {
		t.Errorf("orientation changed moments: %v vs %v", a.M00, b.M00)
	}
}

func TestContourVsRasterAgreement(t *testing.T) {
	// For a large shape, boundary (Green) moments approximate raster ones.
	g := rasterShape(128, 0.4, 1)
	cs := contour.FindContours(g)
	c := contour.Largest(cs)
	if c == nil {
		t.Fatal("no contour")
	}
	mr := FromRaster(g, true)
	mc := FromContour(c.Points)
	if rel := math.Abs(mr.M00-mc.M00) / mr.M00; rel > 0.05 {
		t.Errorf("area disagreement = %v", rel)
	}
	cr, cc := mr.Centroid(), mc.Centroid()
	if cr.Sub(cc).Norm() > 1 {
		t.Errorf("centroid disagreement: %v vs %v", cr, cc)
	}
}

func TestHuTranslationInvariance(t *testing.T) {
	a := rasterRect(64, 64, geom.R(5, 5, 25, 15))
	b := rasterRect(64, 64, geom.R(30, 40, 50, 50))
	ha, hb := HuFromGray(a, true), HuFromGray(b, true)
	for i := 0; i < 7; i++ {
		if math.Abs(ha[i]-hb[i]) > 1e-9*(1+math.Abs(ha[i])) {
			t.Errorf("hu[%d]: %v vs %v", i, ha[i], hb[i])
		}
	}
}

func TestHuScaleInvariance(t *testing.T) {
	a := rasterShape(200, 0, 1)
	b := rasterShape(200, 0, 1.9)
	ha, hb := HuFromGray(a, true), HuFromGray(b, true)
	for i := 0; i < 4; i++ { // low-order invariants are numerically stable
		rel := math.Abs(ha[i]-hb[i]) / (math.Abs(ha[i]) + 1e-12)
		if rel > 0.08 {
			t.Errorf("hu[%d] scale drift = %v (%v vs %v)", i, rel, ha[i], hb[i])
		}
	}
}

func TestHuRotationInvariance(t *testing.T) {
	a := rasterShape(200, 0, 1.5)
	b := rasterShape(200, 1.1, 1.5)
	ha, hb := HuFromGray(a, true), HuFromGray(b, true)
	for i := 0; i < 4; i++ {
		rel := math.Abs(ha[i]-hb[i]) / (math.Abs(ha[i]) + 1e-12)
		if rel > 0.08 {
			t.Errorf("hu[%d] rotation drift = %v (%v vs %v)", i, rel, ha[i], hb[i])
		}
	}
}

func TestHuDiscriminates(t *testing.T) {
	// A square and a thin bar must have clearly different invariants.
	sq := rasterRect(64, 64, geom.R(16, 16, 48, 48))
	bar := rasterRect(64, 64, geom.R(2, 28, 62, 36))
	hs, hb := HuFromGray(sq, true), HuFromGray(bar, true)
	if MatchShapes(hs, hb, MatchI2) < 0.1 {
		t.Errorf("square vs bar I2 distance = %v, too small", MatchShapes(hs, hb, MatchI2))
	}
}

func TestMatchShapesIdentityAndSymmetry(t *testing.T) {
	h := HuFromGray(rasterShape(100, 0.3, 1.2), true)
	for _, m := range []MatchMethod{MatchI1, MatchI2, MatchI3} {
		if d := MatchShapes(h, h, m); d != 0 {
			t.Errorf("%v self distance = %v", m, d)
		}
	}
	h2 := HuFromGray(rasterRect(64, 64, geom.R(10, 10, 50, 30)), true)
	// I1 and I2 are symmetric; I3 normalises by the first argument.
	if d1, d2 := MatchShapes(h, h2, MatchI2), MatchShapes(h2, h, MatchI2); math.Abs(d1-d2) > 1e-12 {
		t.Errorf("I2 asymmetric: %v vs %v", d1, d2)
	}
	if d1, d2 := MatchShapes(h, h2, MatchI1), MatchShapes(h2, h, MatchI1); math.Abs(d1-d2) > 1e-12 {
		t.Errorf("I1 asymmetric: %v vs %v", d1, d2)
	}
}

func TestMatchShapesSkipsTinyInvariants(t *testing.T) {
	var a, b Hu
	a[0], b[0] = 1e-3, 2e-3
	// Remaining entries are zero and must be skipped, not produce NaN.
	for _, m := range []MatchMethod{MatchI1, MatchI2, MatchI3} {
		d := MatchShapes(a, b, m)
		if math.IsNaN(d) || math.IsInf(d, 0) {
			t.Errorf("%v distance = %v", m, d)
		}
		if d == 0 {
			t.Errorf("%v distance = 0 for different shapes", m)
		}
	}
}

func TestMatchMethodString(t *testing.T) {
	if MatchI1.String() != "L1" || MatchI2.String() != "L2" || MatchI3.String() != "L3" {
		t.Error("method labels wrong")
	}
	if MatchMethod(9).String() != "unknown" {
		t.Error("unknown label wrong")
	}
}

func TestHuFromContourCloseToRaster(t *testing.T) {
	g := rasterShape(160, 0.2, 1.4)
	c := contour.Largest(contour.FindContours(g))
	hc := HuFromContour(c.Points)
	hr := HuFromGray(g, true)
	// First invariant should agree within a few percent for large shapes.
	rel := math.Abs(hc[0]-hr[0]) / hr[0]
	if rel > 0.05 {
		t.Errorf("hu[0] contour vs raster drift = %v", rel)
	}
}
