package moments

import (
	"math"
	"testing"
	"testing/quick"

	"snmatch/internal/geom"
	"snmatch/internal/imaging"
)

// TestHuTranslationProperty verifies translation invariance of the Hu
// vector over randomly sized and placed rectangles.
func TestHuTranslationProperty(t *testing.T) {
	f := func(w8, h8, dx8, dy8 uint8) bool {
		w := int(w8%20) + 4
		h := int(h8%20) + 4
		dx := int(dx8 % 30)
		dy := int(dy8 % 30)
		a := imaging.NewImage(80, 80)
		a.FillRect(geom.R(5, 5, 5+w, 5+h), imaging.White)
		b := imaging.NewImage(80, 80)
		b.FillRect(geom.R(5+dx, 5+dy, 5+dx+w, 5+dy+h), imaging.White)
		ha := HuFromGray(a.ToGray(), true)
		hb := HuFromGray(b.ToGray(), true)
		for i := 0; i < 7; i++ {
			if math.Abs(ha[i]-hb[i]) > 1e-9*(1+math.Abs(ha[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestMatchShapesNonNegativeProperty checks that every matchShapes
// method yields a non-negative, finite distance for arbitrary shapes.
func TestMatchShapesNonNegativeProperty(t *testing.T) {
	f := func(w8, h8, w2, h2 uint8) bool {
		mk := func(w, h int) Hu {
			img := imaging.NewImage(60, 60)
			img.FillRect(geom.R(10, 10, 10+w, 10+h), imaging.White)
			return HuFromGray(img.ToGray(), true)
		}
		a := mk(int(w8%30)+2, int(h8%30)+2)
		b := mk(int(w2%30)+2, int(h2%30)+2)
		for _, m := range []MatchMethod{MatchI1, MatchI2, MatchI3} {
			d := MatchShapes(a, b, m)
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestContourMomentsScaleProperty: doubling a polygon's coordinates
// quadruples its area moment M00.
func TestContourMomentsScaleProperty(t *testing.T) {
	f := func(w8, h8 uint8) bool {
		w := int(w8%40) + 2
		h := int(h8%40) + 2
		p1 := []geom.PointI{geom.PtI(0, 0), geom.PtI(w, 0), geom.PtI(w, h), geom.PtI(0, h)}
		p2 := []geom.PointI{geom.PtI(0, 0), geom.PtI(2*w, 0), geom.PtI(2*w, 2*h), geom.PtI(0, 2*h)}
		m1, m2 := FromContour(p1), FromContour(p2)
		return math.Abs(m2.M00-4*m1.M00) < 1e-6*(1+m1.M00)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
