// Package eval computes the paper's evaluation measures: cumulative
// (cross-class) accuracy, class-wise accuracy / precision / recall / F1
// (Tables 2, 5-9), and the binary pair metrics of Table 4.
//
// Metric convention note: in the paper's class-wise tables, "Accuracy"
// for a class equals its recall (correct instances of the class divided
// by its support), and "Precision" is the number of true positives of
// the class divided by the TOTAL number of evaluated samples — not the
// conventional TP/(TP+FP). This is verifiable from the published
// numbers (e.g. Table 8: chair accuracy 0.90 with 10 chairs out of 100
// samples gives precision 0.09 = 9/100, and the F1 values follow from
// the harmonic mean of those two columns). This package reproduces that
// definition and additionally reports the conventional precision.
package eval

import (
	"fmt"
	"strings"

	"snmatch/internal/synth"
)

// ClassMetrics are the per-class rows of the paper's tables.
type ClassMetrics struct {
	Accuracy      float64 // = recall, the paper's "Accuracy" row
	Precision     float64 // paper definition: TP / total samples
	Recall        float64
	F1            float64 // harmonic mean of paper precision and recall
	ConvPrecision float64 // conventional TP / (TP + FP)
	Support       int
}

// Result aggregates a multi-class evaluation.
type Result struct {
	Confusion  [synth.NumClasses][synth.NumClasses]int // [truth][predicted]
	PerClass   [synth.NumClasses]ClassMetrics
	Cumulative float64 // cross-class accuracy: total correct / total
	Total      int
}

// Evaluate compares predictions against ground truth.
func Evaluate(truth, pred []synth.Class) Result {
	if len(truth) != len(pred) {
		panic("eval: length mismatch")
	}
	var r Result
	r.Total = len(truth)
	correct := 0
	for i := range truth {
		r.Confusion[truth[i]][pred[i]]++
		if truth[i] == pred[i] {
			correct++
		}
	}
	if r.Total > 0 {
		r.Cumulative = float64(correct) / float64(r.Total)
	}
	for c := 0; c < synth.NumClasses; c++ {
		tp := r.Confusion[c][c]
		support := 0
		for k := 0; k < synth.NumClasses; k++ {
			support += r.Confusion[c][k]
		}
		predicted := 0
		for k := 0; k < synth.NumClasses; k++ {
			predicted += r.Confusion[k][c]
		}
		m := ClassMetrics{Support: support}
		if support > 0 {
			m.Recall = float64(tp) / float64(support)
			m.Accuracy = m.Recall
		}
		if r.Total > 0 {
			m.Precision = float64(tp) / float64(r.Total)
		}
		if predicted > 0 {
			m.ConvPrecision = float64(tp) / float64(predicted)
		}
		if m.Precision+m.Recall > 0 {
			m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
		}
		r.PerClass[c] = m
	}
	return r
}

// PairMetrics are one column of Table 4.
type PairMetrics struct {
	Precision float64
	Recall    float64
	F1        float64
	Support   int
}

// PairResult is the binary similar/dissimilar evaluation of Table 4.
type PairResult struct {
	Similar    PairMetrics
	Dissimilar PairMetrics
	Accuracy   float64
}

// EvaluatePairs computes Table 4's per-class precision/recall/F1 for the
// binary pair-similarity task (conventional definitions; the paper uses
// scikit-learn style reports here).
func EvaluatePairs(truth, pred []bool) PairResult {
	if len(truth) != len(pred) {
		panic("eval: length mismatch")
	}
	var res PairResult
	var tp, fp, tn, fn int
	for i := range truth {
		switch {
		case truth[i] && pred[i]:
			tp++
		case !truth[i] && pred[i]:
			fp++
		case truth[i] && !pred[i]:
			fn++
		default:
			tn++
		}
	}
	total := len(truth)
	if total > 0 {
		res.Accuracy = float64(tp+tn) / float64(total)
	}
	fill := func(tp, fp, fn, support int) PairMetrics {
		m := PairMetrics{Support: support}
		if tp+fp > 0 {
			m.Precision = float64(tp) / float64(tp+fp)
		}
		if support > 0 {
			m.Recall = float64(tp) / float64(support)
		}
		if m.Precision+m.Recall > 0 {
			m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
		}
		return m
	}
	res.Similar = fill(tp, fp, fn, tp+fn)
	res.Dissimilar = fill(tn, fn, fp, tn+fp)
	return res
}

// ClasswiseTable renders per-class rows in the layout of Tables 5-9.
func (r Result) ClasswiseTable(approach string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-10s", approach, "Measure")
	for _, c := range synth.AllClasses {
		fmt.Fprintf(&b, " %8s", c)
	}
	b.WriteByte('\n')
	rows := []struct {
		name string
		get  func(ClassMetrics) float64
	}{
		{"Accuracy", func(m ClassMetrics) float64 { return m.Accuracy }},
		{"Precision", func(m ClassMetrics) float64 { return m.Precision }},
		{"Recall", func(m ClassMetrics) float64 { return m.Recall }},
		{"F1", func(m ClassMetrics) float64 { return m.F1 }},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-24s %-10s", "", row.name)
		for _, c := range synth.AllClasses {
			fmt.Fprintf(&b, " %8.5f", row.get(r.PerClass[c]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// PairTable renders a Table 4 style block.
func (p PairResult) PairTable(dataset string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %-10s %10s %10s\n", dataset, "Measure", "Similar", "Dissimilar")
	rows := []struct {
		name   string
		s, d   float64
		isSupp bool
	}{
		{"Precision", p.Similar.Precision, p.Dissimilar.Precision, false},
		{"Recall", p.Similar.Recall, p.Dissimilar.Recall, false},
		{"F1-score", p.Similar.F1, p.Dissimilar.F1, false},
		{"Support", float64(p.Similar.Support), float64(p.Dissimilar.Support), true},
	}
	for _, row := range rows {
		if row.isSupp {
			fmt.Fprintf(&b, "%-26s %-10s %10d %10d\n", "", row.name, int(row.s), int(row.d))
		} else {
			fmt.Fprintf(&b, "%-26s %-10s %10.2f %10.2f\n", "", row.name, row.s, row.d)
		}
	}
	return b.String()
}

// CumulativeRow is one line of a Table 2/3 style summary.
type CumulativeRow struct {
	Approach string
	Values   []float64
}

// CumulativeTable renders a Table 2/3 style summary with the given
// column headers.
func CumulativeTable(headers []string, rows []CumulativeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-36s", "Approach")
	for _, h := range headers {
		fmt.Fprintf(&b, " %14s", h)
	}
	b.WriteByte('\n')
	for _, row := range rows {
		fmt.Fprintf(&b, "%-36s", row.Approach)
		for _, v := range row.Values {
			fmt.Fprintf(&b, " %14.5f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
