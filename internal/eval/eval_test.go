package eval

import (
	"math"
	"strings"
	"testing"

	"snmatch/internal/synth"
)

func TestEvaluatePerfect(t *testing.T) {
	truth := []synth.Class{synth.Chair, synth.Bottle, synth.Sofa}
	r := Evaluate(truth, truth)
	if r.Cumulative != 1 {
		t.Errorf("cumulative = %v", r.Cumulative)
	}
	if r.PerClass[synth.Chair].Accuracy != 1 || r.PerClass[synth.Chair].Recall != 1 {
		t.Error("perfect per-class accuracy wrong")
	}
	if r.PerClass[synth.Chair].Support != 1 {
		t.Error("support wrong")
	}
}

func TestEvaluatePaperPrecisionConvention(t *testing.T) {
	// Reproduce the Table 8 arithmetic: 100 samples, 10 chairs, 9
	// correctly recognised -> accuracy 0.90, precision 0.09.
	var truth, pred []synth.Class
	for _, cls := range synth.AllClasses {
		for i := 0; i < 10; i++ {
			truth = append(truth, cls)
			if cls == synth.Chair && i < 9 {
				pred = append(pred, synth.Chair)
			} else if cls == synth.Chair {
				pred = append(pred, synth.Table)
			} else {
				// Everything else misclassified as chair.
				pred = append(pred, synth.Chair)
			}
		}
	}
	r := Evaluate(truth, pred)
	chair := r.PerClass[synth.Chair]
	if math.Abs(chair.Accuracy-0.9) > 1e-9 {
		t.Errorf("chair accuracy = %v", chair.Accuracy)
	}
	if math.Abs(chair.Precision-0.09) > 1e-9 {
		t.Errorf("chair paper-precision = %v, want 0.09", chair.Precision)
	}
	wantF1 := 2 * 0.09 * 0.9 / (0.09 + 0.9)
	if math.Abs(chair.F1-wantF1) > 1e-9 {
		t.Errorf("chair F1 = %v, want %v", chair.F1, wantF1)
	}
	// Conventional precision differs: chair predicted 9 + 90 times.
	if math.Abs(chair.ConvPrecision-9.0/99) > 1e-9 {
		t.Errorf("conventional precision = %v", chair.ConvPrecision)
	}
}

func TestEvaluateConfusionMatrix(t *testing.T) {
	truth := []synth.Class{synth.Chair, synth.Chair, synth.Bottle}
	pred := []synth.Class{synth.Bottle, synth.Chair, synth.Bottle}
	r := Evaluate(truth, pred)
	if r.Confusion[synth.Chair][synth.Bottle] != 1 {
		t.Error("confusion cell wrong")
	}
	if r.Confusion[synth.Chair][synth.Chair] != 1 {
		t.Error("diagonal wrong")
	}
	if math.Abs(r.Cumulative-2.0/3) > 1e-9 {
		t.Errorf("cumulative = %v", r.Cumulative)
	}
}

func TestEvaluateMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	Evaluate([]synth.Class{synth.Chair}, nil)
}

func TestEvaluatePairsTable4Collapse(t *testing.T) {
	// Model predicts "similar" for everything: recall 1 on similar,
	// precision = positive rate, zeros on dissimilar — the paper's
	// Table 4 failure signature.
	var truth, pred []bool
	for i := 0; i < 100; i++ {
		truth = append(truth, i < 9) // 9% similar, like the SNS1 pair set
		pred = append(pred, true)
	}
	r := EvaluatePairs(truth, pred)
	if math.Abs(r.Similar.Recall-1) > 1e-9 {
		t.Errorf("similar recall = %v", r.Similar.Recall)
	}
	if math.Abs(r.Similar.Precision-0.09) > 1e-9 {
		t.Errorf("similar precision = %v", r.Similar.Precision)
	}
	if r.Dissimilar.Recall != 0 || r.Dissimilar.F1 != 0 {
		t.Error("dissimilar metrics should be 0")
	}
	if r.Similar.Support != 9 || r.Dissimilar.Support != 91 {
		t.Errorf("supports = %d/%d", r.Similar.Support, r.Dissimilar.Support)
	}
}

func TestEvaluatePairsPerfect(t *testing.T) {
	truth := []bool{true, false, true, false}
	r := EvaluatePairs(truth, truth)
	if r.Accuracy != 1 || r.Similar.F1 != 1 || r.Dissimilar.F1 != 1 {
		t.Errorf("perfect pair metrics wrong: %+v", r)
	}
}

func TestTablesRender(t *testing.T) {
	truth := []synth.Class{synth.Chair, synth.Bottle}
	r := Evaluate(truth, truth)
	tbl := r.ClasswiseTable("Baseline")
	for _, want := range []string{"Baseline", "Accuracy", "Precision", "Recall", "F1", "Chair", "Lamp"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("classwise table missing %q:\n%s", want, tbl)
		}
	}
	p := EvaluatePairs([]bool{true, false}, []bool{true, true})
	ptbl := p.PairTable("SNS1 pairs")
	for _, want := range []string{"SNS1 pairs", "Similar", "Dissimilar", "Support"} {
		if !strings.Contains(ptbl, want) {
			t.Errorf("pair table missing %q:\n%s", want, ptbl)
		}
	}
	ct := CumulativeTable([]string{"NYU v. SNS1"}, []CumulativeRow{{Approach: "Shape only L1", Values: []float64{0.14}}})
	if !strings.Contains(ct, "Shape only L1") || !strings.Contains(ct, "0.14000") {
		t.Errorf("cumulative table wrong:\n%s", ct)
	}
}
