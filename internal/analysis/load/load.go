// Package load type-checks Go packages for the snlint analyzers
// without golang.org/x/tools/go/packages: it drives `go list -export
// -deps -json` for the package graph, imports every dependency from
// the compiler's export data (so nothing is re-type-checked
// transitively), and type-checks only the target packages from source.
// The whole pipeline is offline — the only inputs are the module tree
// and the Go build cache that `go list -export` populates.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string

	Fset      *token.FileSet
	Files     []*ast.File
	Filenames []string

	Types     *types.Package
	TypesInfo *types.Info

	// TypeErrors collects type-checker complaints without aborting the
	// load: analyzers still run over what was resolvable.
	TypeErrors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
}

// Packages loads and type-checks the packages matched by patterns,
// resolved relative to dir (a directory inside the module to lint).
// Dependencies — including target packages imported by other targets —
// are satisfied from export data, so each target is checked
// independently and diagnostics always point into its own sources.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// One walk for the full dependency graph with export data...
	graph, err := goList(dir, append([]string{"-deps", "-export"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	byPath := map[string]*listPkg{}
	for _, p := range graph {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		byPath[p.ImportPath] = p
	}

	// ...and one cheap one for exactly the matched target set.
	matched, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	})

	var out []*Package
	for _, t := range matched {
		lp := byPath[t.ImportPath]
		if lp == nil {
			lp = t
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := check(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func check(fset *token.FileSet, imp types.Importer, lp *listPkg) (*Package, error) {
	p := &Package{ImportPath: lp.ImportPath, Name: lp.Name, Dir: lp.Dir, Fset: fset}
	for _, g := range lp.GoFiles {
		fn := filepath.Join(lp.Dir, g)
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		p.Files = append(p.Files, f)
		p.Filenames = append(p.Filenames, fn)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	tp, _ := conf.Check(lp.ImportPath, fset, p.Files, info)
	p.Types = tp
	p.TypesInfo = info
	return p, nil
}

// goList runs `go list -json=...` in dir and decodes the package
// stream.
func goList(dir string, args []string) ([]*listPkg, error) {
	fields := "-json=ImportPath,Name,Dir,Export,GoFiles,Standard,Error"
	cmd := exec.Command("go", append([]string{"list", "-e", fields}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}
