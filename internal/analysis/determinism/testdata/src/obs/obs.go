// Package obs is a corpus stub of snmatch/internal/obs: the analyzer
// recognises *obs.Trace parameters by package and type name.
package obs

// Trace mirrors the real stage timer's shape.
type Trace struct {
	ns [8]int64
}

// Add is the nil-gated record entry point.
func (t *Trace) Add(stage int, d int64) {
	if t == nil {
		return
	}
	t.ns[stage] += d
}
