// Corpus for the determinism analyzer: map-order, wall-clock and
// global-randomness hazards in a "deterministic" package.
package pipeline

import (
	"math/rand"
	"sort"
	"time"

	"corpus/obs"
)

// --- map iteration ---

// CountsByClass leaks map order into an output slice.
func CountsByClass(m map[string]int) []string {
	var out []string
	for k := range m { // want "unordered iteration over map m"
		out = append(out, k)
	}
	return out
}

// SortedKeys collects then sorts: the sort owns the order, not the map.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CopyInto writes map-to-map: order-insensitive.
func CopyInto(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// DropZeroes deletes while ranging: order-insensitive.
func DropZeroes(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// TotalViews accumulates integers: + commutes over int.
func TotalViews(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// MeanScore accumulates floats: float addition does NOT commute
// bit-for-bit, so map order reaches the sum.
func MeanScore(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "unordered iteration over map m"
		total += v
	}
	return total / float64(len(m))
}

// FirstKey leaks order through an early return.
func FirstKey(m map[string]int) string {
	for k := range m { // want "unordered iteration over map m"
		return k
	}
	return ""
}

// --- wall clock ---

// ScanPlain has no trace parameter: its clock is pipeline state.
func ScanPlain(rows []float64) float64 {
	start := time.Now() // want "time.Now in a deterministic package"
	sum := 0.0
	for _, r := range rows {
		sum += r
	}
	_ = start
	return sum
}

// ScanTraced threads the nil-gated stage timer: allowed.
func ScanTraced(rows []float64, tr *obs.Trace) float64 {
	start := time.Now()
	sum := 0.0
	for _, r := range rows {
		sum += r
	}
	tr.Add(0, int64(time.Since(start)))
	return sum
}

// --- global randomness ---

// Jitter uses the process-global source.
func Jitter(n int) int {
	return rand.Intn(n) // want "process-global math/rand state"
}

// SeededJitter owns its stream: allowed.
func SeededJitter(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// --- goroutine result collection ---

// GatherUnordered appends from workers: completion order becomes
// result order.
func GatherUnordered(n int) []int {
	var results []int
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		i := i
		go func() {
			results = append(results, i*i) // want "goroutine appends to results"
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	return results
}

// GatherByIndex assigns by index: deterministic at any worker count.
func GatherByIndex(n int) []int {
	results := make([]int, n)
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		i := i
		go func() {
			results[i] = i * i
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	return results
}
