// Package determinism enforces the house rule that the recognition
// kernels are bit-reproducible: every optimisation ships bit-identical
// to its reference path, so nothing in the deterministic packages may
// depend on map iteration order, wall-clock time, or process-global
// randomness.
//
// Three mechanical contracts, checked per package in Packages:
//
//  1. `range` over a map is flagged unless the loop provably cannot
//     leak iteration order: bodies that only write into other maps
//     (or delete keys, or bump integer accumulators — integer + is
//     commutative, float + is not) are order-insensitive, and
//     append-collect loops whose slice is sorted later in the same
//     block are ordered by the sort, not the map.
//  2. time.Now is observability, not pipeline state: it is allowed
//     only in functions that thread a *obs.Trace (the nil-gated stage
//     timer), everywhere else it is a wall-clock dependency in a
//     kernel that must replay bit-for-bit.
//  3. Package-global math/rand state (rand.Intn, rand.Seed, ...) is
//     banned outright — snmatch/internal/rng exists so every random
//     stream is owned and seeded explicitly. Constructing a local
//     rand.New(rand.NewSource(seed)) is deterministic and allowed.
//
// A fourth guard covers goroutine result collection: inside a `go`
// statement, appending to a slice captured from the enclosing scope
// orders results by worker completion; results must be assigned by
// index (the internal/parallel idiom) instead.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"snmatch/internal/analysis/framework"
)

// Packages lists the package path segments the determinism contract
// covers: the matching kernels and everything that feeds them.
// Matching by segment covers subpackages (features/sift etc.) and the
// test corpus alike.
var Packages = []string{"pipeline", "features", "parallel", "synth"}

var Analyzer = &framework.Analyzer{
	Name: "determinism",
	Doc: "flag map-order, wall-clock and global-randomness dependencies " +
		"in the deterministic pipeline packages",
	Run: run,
}

func run(pass *framework.Pass) error {
	if !framework.PathHasSegment(pass.Path, Packages...) {
		return nil
	}
	benign := benignMapRanges(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok {
				checkFunc(pass, fd, benign)
				continue
			}
			// Package-level initializers never carry a trace.
			ast.Inspect(decl, func(n ast.Node) bool {
				checkNode(pass, n, false, benign)
				return true
			})
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl, benign map[*ast.RangeStmt]bool) {
	if fd.Body == nil {
		return
	}
	nowOK := hasTraceParam(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		checkNode(pass, n, nowOK, benign)
		return true
	})
}

func checkNode(pass *framework.Pass, n ast.Node, nowOK bool, benign map[*ast.RangeStmt]bool) {
	switch n := n.(type) {
	case *ast.RangeStmt:
		if isMapType(pass.TypesInfo.TypeOf(n.X)) && !benign[n] {
			pass.Reportf(n.For, "unordered iteration over map %s can reach the result; "+
				"sort the keys first, or keep the body order-insensitive (map writes, integer accumulation)",
				exprString(n.X))
		}
	case *ast.CallExpr:
		if framework.IsPkgFunc(pass.TypesInfo, n, "time", "Now") && !nowOK {
			pass.Reportf(n.Pos(), "time.Now in a deterministic package must be observability-gated: "+
				"thread a *obs.Trace (nil when instrumentation is off) or move the timing to the serving layer")
		}
		if fn := framework.CalleeObject(pass.TypesInfo, n); fn != nil && isGlobalRand(fn) {
			pass.Reportf(n.Pos(), "rand.%s uses process-global math/rand state; "+
				"use snmatch/internal/rng with an explicit seed", fn.Name())
		}
	case *ast.GoStmt:
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			checkGoroutineAppends(pass, lit)
		}
	}
}

// hasTraceParam reports whether fd takes a *obs.Trace — the marker of
// an instrumentation shim, whose clocks are nil-gated by contract.
func hasTraceParam(pass *framework.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, fld := range fd.Type.Params.List {
		t := pass.TypesInfo.TypeOf(fld.Type)
		if t == nil {
			continue
		}
		if p, ok := t.Underlying().(*types.Pointer); ok && framework.IsNamed(p.Elem(), "obs", "Trace") {
			return true
		}
	}
	return false
}

// isGlobalRand reports whether fn is a package-level function of
// math/rand (or math/rand/v2) that touches the shared global source.
// Methods (on *rand.Rand) and the source constructors are fine.
func isGlobalRand(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewChaCha8", "NewPCG":
		return false
	}
	return true
}

// checkGoroutineAppends flags `s = append(s, ...)` inside a go-routine
// body when s is captured from the enclosing scope.
func checkGoroutineAppends(pass *framework.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !framework.IsBuiltin(pass.TypesInfo, call, "append") || len(call.Args) == 0 {
				continue
			}
			id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				continue
			}
			if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
				pass.Reportf(call.Pos(), "goroutine appends to %s captured from the enclosing scope; "+
					"worker completion order becomes result order — assign results by index instead", id.Name)
			}
		}
		return true
	})
}

// benignMapRanges walks every statement list once and marks the map
// ranges whose iteration order provably cannot escape.
func benignMapRanges(pass *framework.Pass) map[*ast.RangeStmt]bool {
	benign := map[*ast.RangeStmt]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				list = b.List
			case *ast.CaseClause:
				list = b.Body
			case *ast.CommClause:
				list = b.Body
			default:
				return true
			}
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMapType(pass.TypesInfo.TypeOf(rs.X)) {
					continue
				}
				if orderInsensitiveBody(pass, rs.Body.List) {
					benign[rs] = true
					continue
				}
				if appendThenSorted(pass, rs, list[i+1:]) {
					benign[rs] = true
				}
			}
			return true
		})
	}
	return benign
}

// orderInsensitiveBody reports whether every statement in the loop
// body commutes across iterations: writes into maps, deletes, integer
// accumulation, and if-guards around the same.
func orderInsensitiveBody(pass *framework.Pass, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ASSIGN:
				for _, lhs := range s.Lhs {
					if !isMapWriteOrBlank(pass, lhs) {
						return false
					}
				}
			case token.ADD_ASSIGN:
				// Integer accumulation commutes; float accumulation
				// depends on order.
				for _, lhs := range s.Lhs {
					if !isIntegerType(pass.TypesInfo.TypeOf(lhs)) {
						return false
					}
				}
			default:
				return false
			}
		case *ast.IncDecStmt:
			if !isIntegerType(pass.TypesInfo.TypeOf(s.X)) {
				return false
			}
		case *ast.ExprStmt:
			call, ok := ast.Unparen(s.X).(*ast.CallExpr)
			if !ok || !framework.IsBuiltin(pass.TypesInfo, call, "delete") {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil {
				return false
			}
			if !orderInsensitiveBody(pass, s.Body.List) {
				return false
			}
			switch e := s.Else.(type) {
			case nil:
			case *ast.BlockStmt:
				if !orderInsensitiveBody(pass, e.List) {
					return false
				}
			default:
				return false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func isMapWriteOrBlank(pass *framework.Pass, lhs ast.Expr) bool {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return true
	}
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	return ok && isMapType(pass.TypesInfo.TypeOf(ix.X))
}

// appendThenSorted recognises the collect-then-sort idiom: the body
// only appends to slice variables, and every such slice is passed to a
// sort call later in the same statement list.
func appendThenSorted(pass *framework.Pass, rs *ast.RangeStmt, following []ast.Stmt) bool {
	targets := map[types.Object]bool{}
	for _, s := range rs.Body.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !framework.IsBuiltin(pass.TypesInfo, call, "append") {
			return false
		}
		obj := framework.ObjectOf(pass.TypesInfo, id)
		if obj == nil {
			return false
		}
		targets[obj] = true
	}
	if len(targets) == 0 {
		return false
	}
	for obj := range targets {
		if !sortedLater(pass, obj, following) {
			return false
		}
	}
	return true
}

func sortedLater(pass *framework.Pass, obj types.Object, following []ast.Stmt) bool {
	for _, s := range following {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := framework.CalleeObject(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok &&
				pass.TypesInfo.Uses[id] == obj {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return "expression"
}
