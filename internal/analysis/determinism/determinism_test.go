package determinism_test

import (
	"testing"

	"snmatch/internal/analysis/analysistest"
	"snmatch/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "testdata", "pipeline")
}
