// Package analysistest runs one analyzer over a corpus package and
// checks its diagnostics against `// want "regexp"` comments in the
// corpus sources — the same convention as x/tools' analysistest, on
// the stdlib-only framework.
//
// A corpus lives under the analyzer's testdata/src directory, which is
// a tiny self-contained module (its own go.mod, module name "corpus")
// so the loader can resolve it while the enclosing snmatch build — and
// `go vet ./...` — never sees the deliberately broken code (the go
// tool skips testdata directories entirely).
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"snmatch/internal/analysis/framework"
	"snmatch/internal/analysis/load"
)

// wantRe extracts the quoted expectation strings from a want comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads testdata/src/<pkg> for each named corpus package, applies
// the analyzer, and reports any mismatch between its diagnostics and
// the corpus' want comments.
func Run(t *testing.T, a *framework.Analyzer, testdataDir string, pkgs ...string) {
	t.Helper()
	root := filepath.Join(testdataDir, "src")
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runOne(t, a, root, pkg)
		})
	}
}

func runOne(t *testing.T, a *framework.Analyzer, root, pkg string) {
	t.Helper()
	loaded, err := load.Packages(root, "./"+pkg)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", pkg, err)
	}
	if len(loaded) != 1 {
		t.Fatalf("corpus %s: loaded %d packages, want 1", pkg, len(loaded))
	}
	lp := loaded[0]
	for _, terr := range lp.TypeErrors {
		t.Errorf("corpus %s: type error: %v", pkg, terr)
	}

	var diags []framework.Diagnostic
	pass := &framework.Pass{
		Analyzer:  a,
		Fset:      lp.Fset,
		Files:     lp.Files,
		Path:      lp.ImportPath,
		Pkg:       lp.Types,
		TypesInfo: lp.TypesInfo,
		Report:    func(d framework.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for i, f := range lp.Files {
		filename := lp.Filenames[i]
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				line := lp.Fset.Position(c.Pos()).Line
				for _, m := range wantRe.FindAllString(text, -1) {
					s, err := strconv.Unquote(m)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", filename, line, m, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", filename, line, s, err)
					}
					k := key{filename, line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	var unexpected []string
	for _, d := range diags {
		pos := lp.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				if len(wants[k]) == 0 {
					delete(wants, k)
				}
				matched = true
				break
			}
		}
		if !matched {
			unexpected = append(unexpected, fmt.Sprintf("%s: unexpected diagnostic: %s", rel(pos), d.Message))
		}
	}
	sort.Strings(unexpected)
	for _, u := range unexpected {
		t.Error(u)
	}
	var missing []string
	for k, res := range wants {
		for _, re := range res {
			missing = append(missing, fmt.Sprintf("%s:%d: no diagnostic matching %q", filepath.Base(k.file), k.line, re))
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Error(m)
	}
}

func rel(pos token.Position) string {
	return fmt.Sprintf("%s:%d:%d", filepath.Base(pos.Filename), pos.Line, pos.Column)
}
