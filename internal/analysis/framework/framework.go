// Package framework is the spine of the snlint analyzer suite: the
// Analyzer / Pass / Diagnostic triple plus the shared AST and type
// helpers the individual analyzers lean on.
//
// It deliberately mirrors the golang.org/x/tools/go/analysis API
// (same field names, same Run contract) so the suite reads like — and
// can migrate wholesale to — upstream go/analysis the day the module
// takes on the x/tools dependency. The module currently has no
// third-party requirements at all, and the lint gate must run in the
// same dependency-free build as the code it checks, so the triple is
// vendial: ~100 lines of stdlib instead of an import.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one named static check. Run inspects a single
// package (one Pass) and reports findings through pass.Report; a
// non-nil error aborts the whole lint run, so analyzers reserve it for
// internal invariant failures, never for findings.
type Analyzer struct {
	Name string // short lower-case identifier, used in //lint:allow directives
	Doc  string // what contract the analyzer enforces, and why

	Run func(*Pass) error
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Path      string // import path as loaded (module-qualified)
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver owns collection,
	// suppression and ordering.
	Report func(Diagnostic)
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// PathHasSegment reports whether any "/"-separated segment of the
// package import path equals one of names. Matching whole segments —
// not prefixes — lets one config list cover both the real tree
// ("snmatch/internal/pipeline") and an analyzer's test corpus
// ("corpus/pipeline") without hard-coding the module name.
func PathHasSegment(path string, names ...string) bool {
	for _, seg := range strings.Split(path, "/") {
		for _, n := range names {
			if seg == n {
				return true
			}
		}
	}
	return false
}

// ObjectOf resolves an expression that names something — an *ast.Ident
// or the Sel of an *ast.SelectorExpr — to its types.Object, or nil.
func ObjectOf(info *types.Info, expr ast.Expr) types.Object {
	switch e := expr.(type) {
	case *ast.Ident:
		if o := info.Uses[e]; o != nil {
			return o
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		return ObjectOf(info, e.Sel)
	case *ast.ParenExpr:
		return ObjectOf(info, e.X)
	}
	return nil
}

// CalleeObject resolves a call expression's static callee, or nil for
// calls through function values, interface methods and builtins.
func CalleeObject(info *types.Info, call *ast.CallExpr) *types.Func {
	if o, ok := ObjectOf(info, call.Fun).(*types.Func); ok {
		return o
	}
	return nil
}

// IsPkgFunc reports whether call statically resolves to the function
// (or method) pkgPath.name.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeObject(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// IsBuiltin reports whether call invokes the named builtin (append,
// make, new, delete, ...).
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = ObjectOf(info, id).(*types.Builtin)
	return ok
}

// Deref unwraps one level of pointer.
func Deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// IsNamed reports whether t (after unwrapping aliases) is the named
// type pkgName.typeName. Matching by package NAME rather than full
// path keeps the check corpus-friendly: a test fixture's "obs" stub
// satisfies the same rule as snmatch/internal/obs.
func IsNamed(t types.Type, pkgName, typeName string) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	o := n.Obj()
	return o != nil && o.Pkg() != nil && o.Pkg().Name() == pkgName && o.Name() == typeName
}

// FuncLabel renders a function or method name for diagnostics:
// "Classify" for plain functions, "(*DescriptorIndex).GoodMatchCounts"
// for methods.
func FuncLabel(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		name := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			name = "*"
		}
		if n, ok := types.Unalias(t).(*types.Named); ok {
			name += n.Obj().Name()
		}
		return "(" + name + ")." + fn.Name()
	}
	return fn.Name()
}

// UsesIdentOf reports whether the subtree rooted at n contains a use
// of exactly the object obj.
func UsesIdentOf(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// ContainsCall reports whether the subtree rooted at n contains any
// call expression (a proxy for "this loop does real work"). Conversions
// are type-checked as calls syntactically; they are excluded.
func ContainsCall(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			// A conversion like float64(x) parses as a CallExpr; only
			// genuine calls count.
			if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
				return true
			}
			found = true
		}
		return !found
	})
	return found
}
