// Package ctxcheckpoint enforces the cancellation contract: a function
// that accepts a context.Context has promised its caller a bounded
// response to cancellation, so every span of unbounded work inside it —
// an outermost loop, or a parallel fan-out closure — must either check
// the context itself (ctx.Err / ctx.Done) or delegate to a callee that
// takes the context.
//
// The granularity mirrors the house style set by the descriptor
// pipeline: checkpoints sit at stage and shard boundaries
// (classifyOn's ctxErr between stages, goodMatchCountsCtx's per-shard
// ctx.Err inside the parallel.ForEach closure), while the inner scan
// kernels run straight-line with no checks. Accordingly the analyzer
// checks only the outermost loop of each nest — once a loop
// checkpoints, the kernels inside it are its business — and treats
// every function literal handed to the parallel package as its own
// span, because that closure IS the shard scan and deadline expiry
// must skip remaining shards, not just remaining calls.
//
// Scope is the deterministic compute packages (pipeline, features):
// serving-layer loops block on channels and honour ctx through select,
// a shape this analyzer does not attempt to grade. Bounded cleanup
// loops that genuinely need no checkpoint carry a justified
// //lint:allow ctxcheckpoint directive.
package ctxcheckpoint

import (
	"go/ast"
	"go/types"

	"snmatch/internal/analysis/framework"
)

// Packages lists the import-path segments the contract applies to.
var Packages = []string{"pipeline", "features"}

var Analyzer = &framework.Analyzer{
	Name: "ctxcheckpoint",
	Doc:  "require ctx checkpoints in loops and parallel fan-out closures of context-accepting functions",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if !framework.PathHasSegment(pass.Path, Packages...) {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasCtxParam(pass.TypesInfo, fd) {
				continue
			}
			checkSpans(pass, fd)
		}
	}
	return nil
}

func hasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if isCtxType(info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isCtxType(t types.Type) bool {
	return framework.IsNamed(t, "context", "Context")
}

// checkSpans walks fd's body, stopping at span boundaries: an
// outermost loop, or a FuncLit passed to the parallel package. Each
// span must contain a checkpoint; nothing inside a satisfied span is
// examined further.
func checkSpans(pass *framework.Pass, fd *ast.FuncDecl) {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	name := fd.Name.Name
	if fn != nil {
		name = framework.FuncLabel(fn)
	}
	fanout := map[*ast.FuncLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if !containsCheckpoint(pass.TypesInfo, n.Body) {
				pass.Reportf(n.Pos(), "loop in %s never checks ctx; add a ctx.Err checkpoint or delegate to a ctx-aware callee", name)
			}
			return false
		case *ast.RangeStmt:
			if !containsCheckpoint(pass.TypesInfo, n.Body) {
				pass.Reportf(n.Pos(), "loop in %s never checks ctx; add a ctx.Err checkpoint or delegate to a ctx-aware callee", name)
			}
			return false
		case *ast.CallExpr:
			if isParallelCall(pass.TypesInfo, n) {
				for _, a := range n.Args {
					if fl, ok := a.(*ast.FuncLit); ok {
						fanout[fl] = true
						if !containsCheckpoint(pass.TypesInfo, fl.Body) {
							pass.Reportf(fl.Pos(), "parallel fan-out closure in %s never re-checks ctx; each shard must check ctx.Err before scanning", name)
						}
					}
				}
			}
		case *ast.FuncLit:
			// Fan-out closures were graded as spans above; other
			// literals (defer, go, callbacks) are walked through so
			// their outermost loops get the same treatment.
			if fanout[n] {
				return false
			}
		}
		return true
	})
}

// containsCheckpoint reports whether the subtree checks or forwards a
// context: a ctx.Err()/ctx.Done() call, or any call receiving a
// context.Context argument (delegation — the callee inherits the
// obligation, and this analyzer grades it there if it is in scope).
func containsCheckpoint(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") && isCtxType(info.TypeOf(sel.X)) {
				found = true
				return false
			}
		}
		for _, a := range call.Args {
			if isCtxType(info.TypeOf(a)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isParallelCall reports whether call statically resolves into a
// package named "parallel" (the fan-out primitives ForEach, Gate...).
func isParallelCall(info *types.Info, call *ast.CallExpr) bool {
	fn := framework.CalleeObject(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "parallel"
}
