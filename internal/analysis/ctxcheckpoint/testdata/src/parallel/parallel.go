// Package parallel is a corpus stub of snmatch/internal/parallel: the
// analyzer recognises fan-out closures by the callee's package name.
package parallel

// ForEach runs fn(0..n-1) across workers goroutines.
func ForEach(n, workers int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
