// Corpus for the ctxcheckpoint analyzer: unbounded spans in
// context-accepting functions.
package pipeline

import (
	"context"

	"corpus/parallel"
)

func scanSpan(s int) int { return s * s }

// ScanAll promises cancellation but its loop never looks.
func ScanAll(ctx context.Context, rows []float64) float64 {
	sum := 0.0
	for _, r := range rows { // want "loop in ScanAll never checks ctx"
		sum += r
	}
	return sum
}

// ScanChecked checkpoints per iteration.
func ScanChecked(ctx context.Context, rows []float64) (float64, error) {
	sum := 0.0
	for _, r := range rows {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		sum += r
	}
	return sum, nil
}

// ScanDelegated forwards ctx into the per-row callee: the obligation
// moves with it.
func ScanDelegated(ctx context.Context, rows []float64) (float64, error) {
	sum := 0.0
	for i := range rows {
		v, err := rowValue(ctx, rows, i)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum, nil
}

func rowValue(ctx context.Context, rows []float64, i int) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return rows[i], nil
}

// ScanSharded checkpoints the outer shard loop; the inner kernel loop
// is the shard's business and is not graded.
func ScanSharded(ctx context.Context, shards [][]float64) (float64, error) {
	sum := 0.0
	for _, shard := range shards {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		for _, r := range shard {
			sum += r
		}
	}
	return sum, nil
}

// FanOut hands the shard scan to parallel workers but the closure
// never re-checks ctx, so expiry cannot skip remaining shards.
func FanOut(ctx context.Context, n int, counts []int32) {
	parallel.ForEach(n, n, func(s int) { // want "parallel fan-out closure in FanOut never re-checks ctx"
		counts[s] = int32(scanSpan(s))
	})
}

// FanOutChecked is the house shard-scan shape.
func FanOutChecked(ctx context.Context, n int, counts []int32) error {
	parallel.ForEach(n, n, func(s int) {
		if ctx.Err() != nil {
			return
		}
		counts[s] = int32(scanSpan(s))
	})
	return ctx.Err()
}

// Drain selects on ctx.Done: the select's receive is the checkpoint.
func Drain(ctx context.Context, ch <-chan int) int {
	total := 0
	for {
		select {
		case v := <-ch:
			total += v
		case <-ctx.Done():
			return total
		}
	}
}

// Reduce takes no context: nothing is promised, nothing is graded.
func Reduce(rows []float64) float64 {
	sum := 0.0
	for _, r := range rows {
		sum += r
	}
	return sum
}

type scanner struct{ rows []float64 }

// Total is a method span: same rule, method-labelled diagnostic.
func (sc *scanner) Total(ctx context.Context) float64 {
	sum := 0.0
	for _, r := range sc.rows { // want "loop in \\(\\*scanner\\).Total never checks ctx"
		sum += r
	}
	return sum
}
