package ctxcheckpoint_test

import (
	"testing"

	"snmatch/internal/analysis/analysistest"
	"snmatch/internal/analysis/ctxcheckpoint"
)

func TestCtxCheckpoint(t *testing.T) {
	analysistest.Run(t, ctxcheckpoint.Analyzer, "testdata", "pipeline")
}
