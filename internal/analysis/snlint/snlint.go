// Package snlint is the engine behind cmd/snlint: it loads packages,
// fans the analyzer suite across them, applies //lint:allow
// suppressions and returns the surviving findings in deterministic
// order.
//
// Suppression contract: a finding is silenced by a directive of the
// form
//
//	//lint:allow <analyzer> <reason>
//
// placed on the finding's line or the line directly above it. The
// reason is mandatory — an allow that does not say WHY the contract is
// waived is itself a finding — so every exception in the tree reads as
// a reviewed decision, not a shrug.
package snlint

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"

	"snmatch/internal/analysis/atomicfield"
	"snmatch/internal/analysis/ctxcheckpoint"
	"snmatch/internal/analysis/determinism"
	"snmatch/internal/analysis/framework"
	"snmatch/internal/analysis/load"
	"snmatch/internal/analysis/noalloc"
	"snmatch/internal/analysis/unsafealias"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{
		atomicfield.Analyzer,
		ctxcheckpoint.Analyzer,
		determinism.Analyzer,
		noalloc.Analyzer,
		unsafealias.Analyzer,
	}
}

// Finding is one surviving diagnostic.
type Finding struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

// String renders the finding in the grep-able one-line form the CI log
// and the editors expect: file:line:col: message (analyzer).
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

var allowRe = regexp.MustCompile(`^//lint:allow\s+(\S+)\s*(.*)$`)

// allowKey locates one directive's scope.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// Run loads patterns relative to dir, applies the analyzers (all of
// them when only is empty, otherwise the named subset) and returns the
// unsuppressed findings sorted by position. The error covers load or
// analyzer failures, not findings.
func Run(dir string, patterns []string, only []string) ([]Finding, error) {
	suite, err := selectAnalyzers(only)
	if err != nil {
		return nil, err
	}
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		return nil, err
	}

	var findings []Finding
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			return nil, fmt.Errorf("%s: type errors (run go build for details): %v", p.ImportPath, p.TypeErrors[0])
		}
		allows := collectAllows(p)
		for _, a := range suite {
			pass := &framework.Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Path:      p.ImportPath,
				Pkg:       p.Types,
				TypesInfo: p.TypesInfo,
			}
			name := a.Name
			pass.Report = func(d framework.Diagnostic) {
				pos := p.Fset.Position(d.Pos)
				if sameLine := allows[allowKey{pos.Filename, pos.Line, name}]; sameLine != nil {
					sameLine.used = true
					return
				}
				if above := allows[allowKey{pos.Filename, pos.Line - 1, name}]; above != nil {
					above.used = true
					return
				}
				findings = append(findings, Finding{Pos: pos, Message: d.Message, Analyzer: name})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, p.ImportPath, err)
			}
		}
		// Directives without a justification are findings themselves.
		for _, d := range allows {
			if d.reason == "" {
				findings = append(findings, Finding{
					Pos:      d.pos,
					Message:  fmt.Sprintf("lint:allow %s directive without a justification; say why the contract is waived", d.analyzer),
					Analyzer: "snlint",
				})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

func selectAnalyzers(only []string) ([]*framework.Analyzer, error) {
	all := Analyzers()
	if len(only) == 0 {
		return all, nil
	}
	byName := map[string]*framework.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var suite []*framework.Analyzer
	for _, n := range only {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list for the suite)", n)
		}
		suite = append(suite, a)
	}
	return suite, nil
}

type allowDirective struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

// collectAllows indexes every //lint:allow directive in the package by
// (file, line, analyzer).
func collectAllows(p *load.Package) map[allowKey]*allowDirective {
	out := map[allowKey]*allowDirective{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				d := &allowDirective{
					pos:      pos,
					analyzer: m[1],
					reason:   strings.TrimSpace(m[2]),
				}
				out[allowKey{pos.Filename, pos.Line, d.analyzer}] = d
			}
		}
	}
	return out
}
