// The non-alias half of the corpus snapshot package: runtime unsafe
// does not belong here even though the package is right.
package snapshot

import "unsafe"

// Mapping stands in for the real mmap handle.
type Mapping struct {
	data []byte
}

// Release drops the mapping.
func (m *Mapping) Release() { m.data = nil }

// Floats reinterprets in the wrong file: the cast belongs behind the
// alias_*.go seam.
func (m *Mapping) Floats(n int) []float32 {
	return unsafe.Slice((*float32)(unsafe.Pointer(&m.data[0])), n) // want "runtime unsafe.Slice outside the snapshot alias seam" "runtime unsafe.Pointer outside the snapshot alias seam"
}

// RecBytes uses only compile-time unsafe: fine anywhere.
func RecBytes() int {
	return int(unsafe.Sizeof(Rec{}))
}
