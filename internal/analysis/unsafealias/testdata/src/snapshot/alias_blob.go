// Corpus for the unsafealias analyzer, blessed side: this file is the
// alias seam, so runtime unsafe is allowed — subject to the layout
// guard and retention rules.
package snapshot

import "unsafe"

// Rec mirrors a fixed on-disk record.
type Rec struct {
	X, Y  float32
	Count int64
}

// recLayoutMatches is the layout guard: the compile-time offsets of
// the in-memory struct checked against the disk format.
var recLayoutMatches = unsafe.Offsetof(Rec{}.X) == 0 &&
	unsafe.Offsetof(Rec{}.Y) == 4 &&
	unsafe.Offsetof(Rec{}.Count) == 8

// asF32s aliases a basic element type: no layout to guard.
func asF32s(raw []byte, n int) []float32 {
	return unsafe.Slice((*float32)(unsafe.Pointer(&raw[0])), n)
}

// asRecs consults the guard before aliasing the struct: allowed.
func asRecs(raw []byte, n int) []Rec {
	if !recLayoutMatches {
		return nil
	}
	return unsafe.Slice((*Rec)(unsafe.Pointer(&raw[0])), n)
}

// asRecsUnchecked aliases the struct with no guard in sight.
func asRecsUnchecked(raw []byte, n int) []Rec {
	return unsafe.Slice((*Rec)(unsafe.Pointer(&raw[0])), n) // want "unsafe.Slice aliases struct type Rec without consulting an unsafe.Offsetof layout guard"
}

// cachedRows outlives every mapping.
var cachedRows []float32

// Warm leaks the alias into process-lifetime state.
func Warm(raw []byte, n int) {
	cachedRows = asF32s(raw, n) // want "package-level var cachedRows retains the aliased slice from asF32s"
}

// View hands the alias to its caller: the caller owns the lifetime,
// nothing package-level is touched.
func View(raw []byte, n int) []float32 {
	rows := asF32s(raw, n)
	return rows
}
