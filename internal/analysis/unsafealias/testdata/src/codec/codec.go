// Corpus for the unsafealias placement rule: a non-snapshot package
// has no business with runtime unsafe at all.
package codec

import "unsafe"

type header struct {
	magic uint32
	count uint32
}

// Parse reinterprets bytes outside the seam.
func Parse(raw []byte) *header {
	return (*header)(unsafe.Pointer(&raw[0])) // want "runtime unsafe.Pointer outside the snapshot alias seam"
}

// HeaderSize is compile-time arithmetic: allowed anywhere.
func HeaderSize() int {
	return int(unsafe.Sizeof(header{}))
}
