package unsafealias_test

import (
	"testing"

	"snmatch/internal/analysis/analysistest"
	"snmatch/internal/analysis/unsafealias"
)

func TestUnsafeAlias(t *testing.T) {
	analysistest.Run(t, unsafealias.Analyzer, "testdata", "snapshot", "codec")
}
