// Package unsafealias fences in the zero-copy mmap aliasing that makes
// snapshot loads O(1): reinterpreting mapped bytes is allowed, but only
// behind the one seam built for it, and only with the guard rails the
// seam established.
//
// Three rules:
//
//   - Placement: runtime unsafe operations (unsafe.Pointer casts,
//     unsafe.Slice and friends) may appear only in alias_*.go files of
//     a snapshot package — the per-endianness seam where every cast
//     sits next to its alignment and layout justification.
//     Compile-time operators (Sizeof, Offsetof, Alignof) are pure
//     arithmetic and are allowed anywhere (the arena sizes its chunks
//     with Sizeof).
//   - Layout guard: aliasing a STRUCT element type bakes that struct's
//     field offsets into the disk format. The aliasing function must
//     consult a package-level guard variable whose initializer
//     verifies the layout with unsafe.Offsetof — the
//     keypointLayoutMatches pattern — so an innocent field reorder
//     degrades to the decode fallback instead of corrupting reads.
//   - Retention: the aliased slice borrows the mapping's memory and
//     dies with Mapping.Release. Storing an alias helper's result in a
//     package-level variable outlives any release and is flagged; the
//     static proxy for "does not escape the mapping's lifetime" is
//     "does not escape into process-lifetime state".
package unsafealias

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"snmatch/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "unsafealias",
	Doc:  "confine runtime unsafe to snapshot alias files, require layout guards for struct aliasing, forbid retaining aliased slices",
	Run:  run,
}

// compileTime lists the unsafe operators evaluated entirely by the
// compiler: no pointer is formed, nothing can dangle.
var compileTime = map[string]bool{"Sizeof": true, "Offsetof": true, "Alignof": true}

func run(pass *framework.Pass) error {
	info := pass.TypesInfo
	inSnapshotPkg := framework.PathHasSegment(pass.Path, "snapshot")

	// Guard vars: package-level, initialized via unsafe.Offsetof.
	guards := collectGuards(pass)
	// Alias helpers: package functions whose bodies call unsafe.Slice.
	aliasFuncs := map[*types.Func]*ast.FuncDecl{}

	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		blessed := inSnapshotPkg && strings.HasPrefix(base, "alias_")

		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			usesSlice := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				name, pos, ok := unsafeUse(info, n)
				if !ok {
					return true
				}
				if compileTime[name] {
					return true
				}
				if name == "Slice" {
					usesSlice = true
				}
				if !blessed {
					pass.Reportf(pos, "runtime unsafe.%s outside the snapshot alias seam (alias_*.go); route the cast through the alias helpers", name)
					return true
				}
				if name == "Slice" {
					checkStructGuard(pass, fd, n.(*ast.SelectorExpr), guards)
				}
				return true
			})
			if usesSlice {
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					aliasFuncs[fn] = fd
				}
			}
		}

		// Package-level vars must not use unsafe at runtime either.
		if !blessed {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				ast.Inspect(gd, func(n ast.Node) bool {
					if name, pos, ok := unsafeUse(info, n); ok && !compileTime[name] {
						pass.Reportf(pos, "runtime unsafe.%s outside the snapshot alias seam (alias_*.go); route the cast through the alias helpers", name)
					}
					return true
				})
			}
		}
	}

	if len(aliasFuncs) > 0 {
		checkRetention(pass, aliasFuncs)
	}
	return nil
}

// unsafeUse reports whether n is a use of package unsafe, returning
// the member name.
func unsafeUse(info *types.Info, n ast.Node) (string, token.Pos, bool) {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", 0, false
	}
	if pn, ok := info.Uses[id].(*types.PkgName); !ok || pn.Imported().Path() != "unsafe" {
		return "", 0, false
	}
	return sel.Sel.Name, sel.Pos(), true
}

// collectGuards finds package-level variables whose initializers
// contain unsafe.Offsetof — the layout-check pattern.
func collectGuards(pass *framework.Pass) []types.Object {
	var guards []types.Object
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				uses := false
				for _, v := range vs.Values {
					ast.Inspect(v, func(n ast.Node) bool {
						if name, _, ok := unsafeUse(pass.TypesInfo, n); ok && name == "Offsetof" {
							uses = true
						}
						return !uses
					})
				}
				if !uses {
					continue
				}
				for _, name := range vs.Names {
					if o := pass.TypesInfo.Defs[name]; o != nil {
						guards = append(guards, o)
					}
				}
			}
		}
	}
	return guards
}

// checkStructGuard requires a layout-guard consultation in the
// function around an unsafe.Slice call that aliases a struct type.
func checkStructGuard(pass *framework.Pass, fd *ast.FuncDecl, sliceSel *ast.SelectorExpr, guards []types.Object) {
	call := enclosingCall(pass, fd, sliceSel)
	if call == nil || len(call.Args) == 0 {
		return
	}
	pt, ok := pass.TypesInfo.TypeOf(call.Args[0]).Underlying().(*types.Pointer)
	if !ok {
		return
	}
	st, ok := pt.Elem().Underlying().(*types.Struct)
	if !ok || st.NumFields() == 0 {
		return
	}
	for _, g := range guards {
		if framework.UsesIdentOf(pass.TypesInfo, fd.Body, g) {
			return
		}
	}
	pass.Reportf(sliceSel.Pos(), "unsafe.Slice aliases struct type %s without consulting an unsafe.Offsetof layout guard; add the guard-var pattern and fall back to decoding",
		types.TypeString(pt.Elem(), types.RelativeTo(pass.Pkg)))
}

// enclosingCall finds the CallExpr whose Fun is sel inside fd.
func enclosingCall(pass *framework.Pass, fd *ast.FuncDecl, sel *ast.SelectorExpr) *ast.CallExpr {
	var out *ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok && ast.Unparen(c.Fun) == sel {
			out = c
			return false
		}
		return true
	})
	return out
}

// checkRetention flags alias-helper results escaping into
// package-level variables.
func checkRetention(pass *framework.Pass, aliasFuncs map[*types.Func]*ast.FuncDecl) {
	info := pass.TypesInfo
	pkgScope := pass.Pkg.Scope()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := info.Uses[id].(*types.Var)
				if !ok || v.Parent() != pkgScope {
					continue
				}
				if i < len(as.Rhs) {
					if fn := aliasCallIn(info, as.Rhs[i], aliasFuncs); fn != nil {
						pass.Reportf(lhs.Pos(), "package-level var %s retains the aliased slice from %s past the mapping's Release; copy the data instead",
							v.Name(), fn.Name())
					}
				}
			}
			return true
		})
		// Package-level `var x = asF32s(...)` declarations.
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, val := range vs.Values {
					if fn := aliasCallIn(info, val, aliasFuncs); fn != nil && i < len(vs.Names) {
						pass.Reportf(vs.Names[i].Pos(), "package-level var %s retains the aliased slice from %s past the mapping's Release; copy the data instead",
							vs.Names[i].Name, fn.Name())
					}
				}
			}
		}
	}
}

// aliasCallIn returns the alias helper called anywhere inside e, if any.
func aliasCallIn(info *types.Info, e ast.Expr, aliasFuncs map[*types.Func]*ast.FuncDecl) *types.Func {
	var out *types.Func
	ast.Inspect(e, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok {
			if fn := framework.CalleeObject(info, c); fn != nil && aliasFuncs[fn] != nil {
				out = fn
				return false
			}
		}
		return true
	})
	return out
}
