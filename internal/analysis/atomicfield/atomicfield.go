// Package atomicfield enforces the all-or-nothing rule of sync/atomic:
// once any code path touches a field through atomic operations, every
// access to that field must be atomic — a single plain load or store
// next to atomic ones is a data race the race detector only catches if
// a test happens to interleave it.
//
// The analyzer collects every field that appears as &x.f (or &x.f[i])
// in a sync/atomic call within the package, then flags:
//
//   - plain reads/writes of those fields anywhere else. Length-only
//     ranges (for i := range t.ns) and len/cap calls are exempt: they
//     touch only the array's compile-time shape, never its elements —
//     the idiom obs.Trace uses to walk its stage counters.
//   - methods with VALUE receivers on structs containing such fields:
//     the receiver copy tears concurrent updates and the copy's
//     updates are silently lost. go vet's copylocks stops at
//     sync.Locker; a plain int64 driven by atomic.AddInt64 has no
//     Lock method, so this slips straight past vet.
//   - two-variable ranges whose element type is such a struct: each
//     iteration copies the element non-atomically. Range by index.
package atomicfield

import (
	"go/ast"
	"go/types"

	"snmatch/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must be accessed atomically everywhere, and their structs never copied",
	Run:  run,
}

func run(pass *framework.Pass) error {
	info := pass.TypesInfo

	// Pass 1: find atomically-accessed fields and remember the exact
	// selector nodes inside sync/atomic call arguments (sanctioned).
	atomicFields := map[*types.Var]bool{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := framework.CalleeObject(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op.String() != "&" {
					continue
				}
				if sel := baseSelector(u.X); sel != nil {
					if fld := fieldObject(info, sel); fld != nil {
						atomicFields[fld] = true
						sanctioned[sel] = true
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: shape-only uses (key-only range, len, cap) are exempt.
	exempt := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if n.Value == nil {
					if sel := baseSelector(n.X); sel != nil {
						exempt[sel] = true
					}
				}
			case *ast.CallExpr:
				if framework.IsBuiltin(info, n, "len") || framework.IsBuiltin(info, n, "cap") {
					if len(n.Args) == 1 {
						if sel := baseSelector(n.Args[0]); sel != nil {
							exempt[sel] = true
						}
					}
				}
			}
			return true
		})
	}

	// Pass 3: every remaining selector of an atomic field is a race.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] || exempt[sel] {
				return true
			}
			fld := fieldObject(info, sel)
			if fld != nil && atomicFields[fld] {
				pass.Reportf(sel.Sel.Pos(), "plain access to field %s, which is accessed with sync/atomic elsewhere; use atomic loads/stores", fld.Name())
			}
			return true
		})
	}

	// Pass 4: copies of structs holding atomic fields.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			rt := info.TypeOf(fd.Recv.List[0].Type)
			if rt == nil {
				continue
			}
			if _, isPtr := rt.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if fld := atomicFieldIn(rt, atomicFields, nil); fld != nil {
				pass.Reportf(fd.Recv.List[0].Type.Pos(), "value receiver copies %s, whose field %s is accessed with sync/atomic; use a pointer receiver",
					types.TypeString(rt, types.RelativeTo(pass.Pkg)), fld.Name())
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || rng.Value == nil {
				return true
			}
			elem := rangeElemType(info.TypeOf(rng.X))
			if elem == nil {
				return true
			}
			if fld := atomicFieldIn(elem, atomicFields, nil); fld != nil {
				pass.Reportf(rng.Value.Pos(), "ranging by value copies %s, whose field %s is accessed with sync/atomic; range by index instead",
					types.TypeString(elem, types.RelativeTo(pass.Pkg)), fld.Name())
			}
			return true
		})
	}
	return nil
}

// baseSelector peels index expressions off e and returns the selector
// underneath: t.ns[s] -> t.ns, c.n -> c.n.
func baseSelector(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x
		default:
			return nil
		}
	}
}

// fieldObject resolves sel to a struct field, or nil.
func fieldObject(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// atomicFieldIn returns an atomically-accessed field contained in
// struct type t (following nested non-pointer structs), or nil.
func atomicFieldIn(t types.Type, atomicFields map[*types.Var]bool, seen map[types.Type]bool) *types.Var {
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	if seen[t] {
		return nil
	}
	seen[t] = true
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if atomicFields[f] {
			return f
		}
		if nested := atomicFieldIn(f.Type(), atomicFields, seen); nested != nil {
			return nested
		}
	}
	return nil
}

// rangeElemType returns the element type a two-variable range copies:
// slice/array elements or map values.
func rangeElemType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	case *types.Pointer:
		if a, ok := u.Elem().Underlying().(*types.Array); ok {
			return a.Elem()
		}
	case *types.Map:
		return u.Elem()
	}
	return nil
}
