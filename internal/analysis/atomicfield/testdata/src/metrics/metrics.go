// Corpus for the atomicfield analyzer: mixed atomic/plain access and
// copies of atomic-bearing structs.
package metrics

import "sync/atomic"

// Counter drives n exclusively through sync/atomic — except where the
// corpus says otherwise.
type Counter struct {
	n    int64
	name string
}

func (c *Counter) Inc() { atomic.AddInt64(&c.n, 1) }

func (c *Counter) Load() int64 { return atomic.LoadInt64(&c.n) }

// Racy reads n without the atomic package: torn against Inc.
func (c *Counter) Racy() int64 { return c.n } // want "plain access to field n"

// Reset writes n plainly: lost against concurrent Inc.
func (c *Counter) Reset() { c.n = 0 } // want "plain access to field n"

// Name touches only the immutable field: no finding.
func (c *Counter) Name() string { return c.name }

// Describe copies the whole Counter into its receiver.
func (c Counter) Describe() string { return c.name } // want "value receiver copies Counter, whose field n is accessed with sync/atomic"

// Trace mirrors the obs stage timer: an array driven element-wise by
// atomic ops, walked with a length-only range.
type Trace struct {
	ns [4]int64
}

func (t *Trace) Add(stage int, d int64) { atomic.AddInt64(&t.ns[stage], d) }

// Each is the sanctioned walk: the range reads only the array's
// length, each element goes through an atomic load.
func (t *Trace) Each(f func(int64)) {
	for i := range t.ns {
		f(atomic.LoadInt64(&t.ns[i]))
	}
}

// Stages reads only compile-time shape.
func (t *Trace) Stages() int { return len(t.ns) }

// Sum ranges with a value variable: every element read is plain.
func (t *Trace) Sum() int64 {
	total := int64(0)
	for _, v := range t.ns { // want "plain access to field ns"
		total += v
	}
	return total
}

// TotalOf copies each Counter out of the slice before reading it.
func TotalOf(cs []Counter) int64 {
	total := int64(0)
	for _, c := range cs { // want "ranging by value copies Counter, whose field n is accessed with sync/atomic"
		total += c.Load()
	}
	return total
}

// TotalByIndex takes addresses into the slice: no copy.
func TotalByIndex(cs []Counter) int64 {
	total := int64(0)
	for i := range cs {
		total += cs[i].Load()
	}
	return total
}

// Registry embeds a Counter one level down: copies are still copies.
type Registry struct {
	hits Counter
}

// Snapshot copies the Registry and the Counter inside it.
func (r Registry) Snapshot() int64 { return r.hits.Load() } // want "value receiver copies Registry, whose field n is accessed with sync/atomic"

// Plain has no atomic traffic anywhere: value receivers and range
// copies are fine.
type Plain struct{ n int64 }

func (p Plain) Value() int64 { return p.n }

func SumPlain(ps []Plain) int64 {
	total := int64(0)
	for _, p := range ps {
		total += p.Value()
	}
	return total
}
