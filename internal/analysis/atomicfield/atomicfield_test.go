package atomicfield_test

import (
	"testing"

	"snmatch/internal/analysis/analysistest"
	"snmatch/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, atomicfield.Analyzer, "testdata", "metrics")
}
