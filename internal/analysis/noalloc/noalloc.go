// Package noalloc enforces the zero-allocation warm-path contract
// (PR 4's "0 allocs/op" gate) at compile time: functions marked with a
//
//	//snmatch:noalloc
//
// directive — and everything statically reachable from them inside the
// same package — must not contain allocation-inducing constructs.
//
// The runtime gate (TestQueryPathAllocs) catches a regression after it
// lands and only on the configurations the test happens to drive; this
// analyzer rejects the construct itself, on every path, at review
// time. Flagged constructs:
//
//   - fmt.* calls (formatting allocates and reflects)
//   - non-constant string concatenation
//   - make / new, and append (growth reallocates; warm-path buffers
//     come from the arena or a sync.Pool)
//   - &T{...} composite literals (heap-escaping pointers)
//   - string <-> []byte / []rune conversions (copying conversions)
//   - function literals (the closure environment allocates; hoist to a
//     named function or method — the matchCounter idiom)
//   - interface boxing of non-pointer values at call sites (pointers
//     fit the interface word; values are heap-boxed)
//
// The traversal is intraprocedural per package and follows only static
// calls: a call through an interface (e.g. MatchIndex) is a contract
// boundary — the implementation carries its own annotation.
//
// One idiom is exempt by design rather than by directive: a function
// that calls (sync.Pool).Get is a pool accessor, and the allocations
// behind its miss branch (getCounts' make, getScratch's composite
// literal) are the warm-up that makes the steady state free. Flagging
// them would demand an allow on every pool in the tree for the exact
// pattern the contract is built on. Construct checks (make, new,
// append, &T{}) are therefore skipped in pool accessors; formatting,
// string concatenation, closures and boxing are still flagged there —
// those are never warm-up. Other intentional cold paths carry a
// justified //lint:allow noalloc directive; the point is that every
// warm-path allocation is either impossible or visibly signed off,
// never accidental.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"snmatch/internal/analysis/framework"
)

// Directive marks a zero-allocation root.
const Directive = "//snmatch:noalloc"

var Analyzer = &framework.Analyzer{
	Name: "noalloc",
	Doc: "flag allocation-inducing constructs in functions reachable from " +
		Directive + " roots",
	Run: run,
}

func run(pass *framework.Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	var roots []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if isRoot(fd) {
				roots = append(roots, fn)
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// Breadth-first closure over same-package static calls, remembering
	// the first root that reached each function for the report text.
	rootOf := map[*types.Func]*types.Func{}
	queue := make([]*types.Func, 0, len(roots))
	for _, r := range roots {
		rootOf[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fd := decls[fn]
		if fd == nil {
			continue
		}
		root := rootOf[fn]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := framework.CalleeObject(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() != pass.Pkg {
				return true
			}
			if _, seen := rootOf[callee]; !seen {
				if _, hasBody := decls[callee]; hasBody {
					rootOf[callee] = root
					queue = append(queue, callee)
				}
			}
			return true
		})
	}

	for fn, root := range rootOf {
		if fd := decls[fn]; fd != nil {
			checkBody(pass, fd, fn, root)
		}
	}
	return nil
}

func isRoot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == Directive {
			return true
		}
	}
	return false
}

func checkBody(pass *framework.Pass, fd *ast.FuncDecl, fn, root *types.Func) {
	where := "in noalloc function " + funcLabel(fn)
	if fn != root {
		where = "in " + funcLabel(fn) + " (reachable from noalloc root " + funcLabel(root) + ")"
	}
	poolAccessor := isPoolAccessor(pass.TypesInfo, fd)
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocates its environment %s; hoist it to a named function or method", where)
			return false // one finding covers the literal
		case *ast.CallExpr:
			checkCall(pass, n, where, poolAccessor)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(pass, n) {
				pass.Reportf(n.Pos(), "string concatenation allocates %s; format off the warm path or use a pooled buffer", where)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(pass.TypesInfo.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.Pos(), "string concatenation allocates %s; format off the warm path or use a pooled buffer", where)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && !poolAccessor {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal heap-allocates %s; reuse a pooled object", where)
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
}

// isPoolAccessor reports whether fd calls (sync.Pool).Get — the miss
// branch of such a function is the sanctioned warm-up allocation site.
func isPoolAccessor(info *types.Info, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Get" {
			return true
		}
		if framework.IsNamed(framework.Deref(info.TypeOf(sel.X)), "sync", "Pool") {
			found = true
		}
		return !found
	})
	return found
}

func checkCall(pass *framework.Pass, call *ast.CallExpr, where string, poolAccessor bool) {
	info := pass.TypesInfo

	// Conversions: string <-> []byte / []rune copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, info.TypeOf(call.Args[0])
		if isCopyingConversion(to, from) {
			pass.Reportf(call.Pos(), "%s conversion copies its operand %s", conversionLabel(to, from), where)
		}
		return
	}

	switch {
	case framework.IsBuiltin(info, call, "make"):
		if !poolAccessor {
			pass.Reportf(call.Pos(), "make allocates %s; borrow from the arena or a sync.Pool", where)
		}
		return
	case framework.IsBuiltin(info, call, "new"):
		if !poolAccessor {
			pass.Reportf(call.Pos(), "new allocates %s; reuse pooled storage", where)
		}
		return
	case framework.IsBuiltin(info, call, "append"):
		if !poolAccessor {
			pass.Reportf(call.Pos(), "append may grow its backing array %s; preallocate via the arena or pool", where)
		}
		return
	}

	if fn := framework.CalleeObject(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s formats and allocates %s; move formatting off the warm path", fn.Name(), where)
		return
	}

	// Interface boxing of non-pointer values at argument positions.
	// Remaining builtins (panic, copy, len...) either don't box or are
	// cold by definition — a panic is the end of the warm path.
	if _, ok := framework.ObjectOf(info, call.Fun).(*types.Builtin); ok {
		return
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i)
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if tv, ok := info.Types[arg]; ok && tv.IsNil() {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			continue // pointer-shaped: fits the interface word, no box
		}
		pass.Reportf(arg.Pos(), "passing %s by value boxes it into %s %s; pass a pointer or a pointer-shaped handle",
			types.TypeString(at, types.RelativeTo(pass.Pkg)), types.TypeString(pt, types.RelativeTo(pass.Pkg)), where)
	}
}

func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if s, ok := last.Underlying().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

func isCopyingConversion(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	return (isStringType(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isStringType(from))
}

func conversionLabel(to, from types.Type) string {
	if isStringType(to) {
		return "slice-to-string"
	}
	return "string-to-slice"
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isNonConstString(pass *framework.Pass, e *ast.BinaryExpr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if !isStringType(t) {
		return false
	}
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return false // constant-folded at compile time
	}
	return true
}

func funcLabel(fn *types.Func) string { return framework.FuncLabel(fn) }
