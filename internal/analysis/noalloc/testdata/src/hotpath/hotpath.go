// Corpus for the noalloc analyzer: allocation-inducing constructs in
// and below //snmatch:noalloc roots.
package hotpath

import (
	"fmt"
	"sync"
)

type counter interface {
	Inc()
}

type stat struct{ n int }

func (s *stat) Inc() { s.n++ }

type tick struct{ n int }

func (t tick) Inc() {}

type result struct {
	class string
	score float64
}

// Classify is the warm-path entry point.
//
//snmatch:noalloc
func Classify(scores []float64, names []string, c counter) string {
	best := argmax(scores)
	c.Inc()
	return names[best]
}

// argmax is not annotated but is reachable from Classify, so it is
// checked with Classify named as the root.
func argmax(scores []float64) int {
	best := 0
	for i, s := range scores {
		if s > scores[best] {
			best = i
		}
	}
	buf := make([]byte, 8) // want "make allocates in argmax \\(reachable from noalloc root Classify\\)"
	_ = buf
	return best
}

// describe is unreachable from any root: allocations are fine here.
func describe(r result) string {
	return fmt.Sprintf("%s=%.3f", r.class, r.score)
}

// Label exercises the direct-construct checks inside a root.
//
//snmatch:noalloc
func Label(r result, verbose bool) string {
	if verbose {
		return fmt.Sprintf("%s=%.3f", r.class, r.score) // want "fmt.Sprintf formats and allocates in noalloc function Label"
	}
	name := r.class + "!"  // want "string concatenation allocates in noalloc function Label"
	name += r.class        // want "string concatenation allocates in noalloc function Label"
	p := &result{}         // want "&composite literal heap-allocates in noalloc function Label"
	q := new(result)       // want "new allocates in noalloc function Label"
	raw := []byte(r.class) // want "string-to-slice conversion copies its operand in noalloc function Label"
	s := string(raw)       // want "slice-to-string conversion copies its operand in noalloc function Label"
	_, _, _ = p, q, s
	return name
}

// Extend exercises append growth and closure capture.
//
//snmatch:noalloc
func Extend(dst []result, r result) []result {
	f := func() result { return r } // want "closure allocates its environment in noalloc function Extend"
	return append(dst, f())         // want "append may grow its backing array in noalloc function Extend"
}

// Record exercises interface boxing: a value box is flagged, a
// pointer fits the interface word.
//
//snmatch:noalloc
func Record(k tick, s stat, cs []counter) {
	sink(k)  // want "passing tick by value boxes it into counter in noalloc function Record"
	sink(&s) // pointer: no box
	for _, c := range cs {
		c.Inc() // interface call: contract boundary, not followed
	}
}

func sink(c counter) { _ = c }

var bufs sync.Pool

// getBuf is a pool accessor: the make behind the miss branch is the
// warm-up that keeps the steady state allocation-free, not a finding.
func getBuf(n int) []float64 {
	if v := bufs.Get(); v != nil {
		return *(v.(*[]float64))
	}
	return make([]float64, n)
}

// Score reaches the pool accessor from a root: still clean.
//
//snmatch:noalloc
func Score(n int) float64 {
	buf := getBuf(n)
	sum := 0.0
	for _, v := range buf {
		sum += v
	}
	return sum
}

// Warm is annotated and clean end to end: constant concatenation
// folds at compile time and pointer receivers stay unboxed.
//
//snmatch:noalloc
func Warm(s *stat) string {
	if s == nil {
		panic("hotpath: nil stat") // cold by definition: not a boxing finding
	}
	s.Inc()
	const prefix = "class-"
	return prefix + "unknown"
}
