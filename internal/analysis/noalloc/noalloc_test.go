package noalloc_test

import (
	"testing"

	"snmatch/internal/analysis/analysistest"
	"snmatch/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, noalloc.Analyzer, "testdata", "hotpath")
}
