package imaging

import (
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"snmatch/internal/geom"
)

func TestRGBLuma(t *testing.T) {
	if got := White.Luma(); got != 255 {
		t.Errorf("white luma = %d", got)
	}
	if got := Black.Luma(); got != 0 {
		t.Errorf("black luma = %d", got)
	}
	// Green contributes most to luma.
	g := RGB{0, 255, 0}.Luma()
	r := RGB{255, 0, 0}.Luma()
	b := RGB{0, 0, 255}.Luma()
	if !(g > r && r > b) {
		t.Errorf("luma ordering wrong: r=%d g=%d b=%d", r, g, b)
	}
}

func TestRGBMixScale(t *testing.T) {
	mid := Black.Mix(White, 0.5)
	if mid.R < 126 || mid.R > 129 {
		t.Errorf("mix midpoint = %v", mid)
	}
	if got := White.Scale(2); got != White {
		t.Errorf("scale clamps high: %v", got)
	}
	if got := White.Scale(-1); got != Black {
		t.Errorf("scale clamps low: %v", got)
	}
}

func TestImageAtSetCrop(t *testing.T) {
	m := NewImage(10, 8)
	m.Set(3, 4, RGB{1, 2, 3})
	if got := m.At(3, 4); got != (RGB{1, 2, 3}) {
		t.Errorf("At = %v", got)
	}
	m.Set(-1, 0, White) // ignored
	m.Set(10, 0, White) // ignored
	c := m.Crop(geom.R(2, 3, 6, 7))
	if c.W != 4 || c.H != 4 {
		t.Fatalf("crop size = %dx%d", c.W, c.H)
	}
	if got := c.At(1, 1); got != (RGB{1, 2, 3}) {
		t.Errorf("crop content = %v", got)
	}
	if got := m.Crop(geom.R(20, 20, 30, 30)); got != nil {
		t.Errorf("out-of-range crop = %v, want nil", got)
	}
}

func TestImageCloneIndependent(t *testing.T) {
	m := NewImageFilled(4, 4, White)
	c := m.Clone()
	c.Set(0, 0, Black)
	if m.At(0, 0) != White {
		t.Error("Clone shares pixels")
	}
}

func TestAtClamped(t *testing.T) {
	m := NewImage(3, 3)
	m.Set(0, 0, RGB{9, 9, 9})
	if got := m.AtClamped(-5, -5); got != (RGB{9, 9, 9}) {
		t.Errorf("AtClamped = %v", got)
	}
	g := NewGray(3, 3)
	g.Set(2, 2, 77)
	if got := g.AtClamped(10, 10); got != 77 {
		t.Errorf("gray AtClamped = %d", got)
	}
}

func TestGrayRoundTrip(t *testing.T) {
	m := NewImage(5, 5)
	m.Fill(RGB{100, 100, 100})
	g := m.ToGray()
	if g.At(2, 2) != 100 {
		t.Errorf("gray of uniform 100 = %d", g.At(2, 2))
	}
	back := g.ToImage()
	if back.At(2, 2) != (RGB{100, 100, 100}) {
		t.Errorf("round trip = %v", back.At(2, 2))
	}
}

func TestFloatGrayRoundTrip(t *testing.T) {
	g := NewGray(4, 4)
	g.Set(1, 1, 200)
	f := g.ToFloat()
	if f.At(1, 1) != 200 {
		t.Errorf("ToFloat = %v", f.At(1, 1))
	}
	f.Set(0, 0, 300) // clamps on conversion
	f.Set(0, 1, -5)
	back := f.ToGray()
	if back.At(0, 0) != 255 || back.At(0, 1) != 0 {
		t.Errorf("clamping failed: %d %d", back.At(0, 0), back.At(0, 1))
	}
}

func TestResizeNearestExact(t *testing.T) {
	m := NewImage(2, 2)
	m.Set(0, 0, RGB{10, 0, 0})
	m.Set(1, 0, RGB{20, 0, 0})
	m.Set(0, 1, RGB{30, 0, 0})
	m.Set(1, 1, RGB{40, 0, 0})
	up := m.ResizeNearest(4, 4)
	if up.At(0, 0).R != 10 || up.At(3, 3).R != 40 || up.At(3, 0).R != 20 {
		t.Errorf("nearest upsample wrong: %v %v %v", up.At(0, 0), up.At(3, 3), up.At(3, 0))
	}
}

func TestResizeBilinearUniformInvariant(t *testing.T) {
	m := NewImageFilled(7, 5, RGB{42, 77, 129})
	out := m.ResizeBilinear(13, 9)
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			if out.At(x, y) != (RGB{42, 77, 129}) {
				t.Fatalf("uniform image changed at %d,%d: %v", x, y, out.At(x, y))
			}
		}
	}
}

func TestResizeGray(t *testing.T) {
	g := NewGray(4, 4)
	for i := range g.Pix {
		g.Pix[i] = uint8(i * 16)
	}
	down := g.ResizeBilinear(2, 2)
	if down.W != 2 || down.H != 2 {
		t.Fatalf("size = %dx%d", down.W, down.H)
	}
	nn := g.ResizeNearest(8, 8)
	if nn.W != 8 || nn.H != 8 {
		t.Fatalf("nn size = %dx%d", nn.W, nn.H)
	}
}

func TestDownsample2(t *testing.T) {
	f := NewFloatGray(5, 5)
	f.Set(2, 2, 7)
	d := f.Downsample2()
	if d.W != 2 || d.H != 2 {
		t.Fatalf("downsample size = %dx%d", d.W, d.H)
	}
	if d.At(1, 1) != 7 {
		t.Errorf("downsample value = %v", d.At(1, 1))
	}
}

func TestFlipsAndRotations(t *testing.T) {
	m := NewImage(3, 2)
	m.Set(0, 0, RGB{1, 0, 0})
	m.Set(2, 1, RGB{2, 0, 0})

	fh := m.FlipH()
	if fh.At(2, 0).R != 1 || fh.At(0, 1).R != 2 {
		t.Error("FlipH wrong")
	}
	fv := m.FlipV()
	if fv.At(0, 1).R != 1 || fv.At(2, 0).R != 2 {
		t.Error("FlipV wrong")
	}
	r90 := m.Rotate90()
	if r90.W != 2 || r90.H != 3 {
		t.Fatalf("Rotate90 size = %dx%d", r90.W, r90.H)
	}
	if r90.At(1, 0).R != 1 {
		t.Error("Rotate90 wrong")
	}
	r180 := m.Rotate180()
	if r180.At(2, 1).R != 1 || r180.At(0, 0).R != 2 {
		t.Error("Rotate180 wrong")
	}
	r270 := m.Rotate270()
	if r270.At(0, 2).R != 1 {
		t.Error("Rotate270 wrong")
	}
	// Four quarter turns are the identity.
	id := m.Rotate90().Rotate90().Rotate90().Rotate90()
	for i := range m.Pix {
		if id.Pix[i] != m.Pix[i] {
			t.Fatal("four Rotate90s != identity")
		}
	}
}

func TestWarpAffineIdentity(t *testing.T) {
	m := NewImage(6, 6)
	m.Set(2, 3, RGB{200, 10, 10})
	out := m.WarpAffine(geom.Identity(), 6, 6, Black)
	for i := range m.Pix {
		if out.Pix[i] != m.Pix[i] {
			t.Fatal("identity warp changed image")
		}
	}
}

func TestWarpAffineTranslate(t *testing.T) {
	m := NewImage(6, 6)
	m.Set(1, 1, RGB{200, 10, 10})
	out := m.WarpAffine(geom.Translation(2, 3), 6, 6, Black)
	if out.At(3, 4).R != 200 {
		t.Errorf("translated pixel = %v", out.At(3, 4))
	}
	if out.At(1, 1).R != 0 {
		t.Errorf("source pixel not cleared: %v", out.At(1, 1))
	}
}

func TestRotateAboutPreservesCentre(t *testing.T) {
	m := NewImageFilled(9, 9, Black)
	m.Set(4, 4, White)
	out := m.RotateAbout(math.Pi/3, Black)
	if out.At(4, 4) != White {
		t.Errorf("centre pixel = %v", out.At(4, 4))
	}
}

func TestPadTo(t *testing.T) {
	m := NewImageFilled(2, 2, White)
	out := m.PadTo(6, 6, Black)
	if out.At(0, 0) != Black {
		t.Error("padding not background")
	}
	if out.At(2, 2) != White {
		t.Error("content not centred")
	}
	// Shrinking crops centrally.
	big := NewImageFilled(10, 10, White)
	big.Set(0, 0, Black)
	small := big.PadTo(4, 4, Black)
	if small.W != 4 || small.At(1, 1) != White {
		t.Error("central crop wrong")
	}
}

func TestPNGRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.png")
	m := NewImage(8, 5)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			m.Set(x, y, RGB{uint8(x * 30), uint8(y * 50), 7})
		}
	}
	if err := m.SavePNG(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPNG(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != m.W || back.H != m.H {
		t.Fatalf("size = %dx%d", back.W, back.H)
	}
	for i := range m.Pix {
		if back.Pix[i] != m.Pix[i] {
			t.Fatal("PNG round trip not lossless")
		}
	}
}

func TestLoadPNGMissing(t *testing.T) {
	if _, err := LoadPNG(filepath.Join(t.TempDir(), "nope.png")); err == nil {
		t.Error("missing file did not error")
	}
}

func TestMeanRGB(t *testing.T) {
	m := NewImage(2, 1)
	m.Set(0, 0, RGB{0, 100, 200})
	m.Set(1, 0, RGB{100, 100, 0})
	r, g, b := m.MeanRGB()
	if r != 50 || g != 100 || b != 100 {
		t.Errorf("MeanRGB = %v %v %v", r, g, b)
	}
}

func TestCropPropertyContained(t *testing.T) {
	f := func(w, h, x0, y0, x1, y1 uint8) bool {
		mw, mh := int(w%20)+1, int(h%20)+1
		m := NewImage(mw, mh)
		r := geom.R(int(x0)%25-2, int(y0)%25-2, int(x1)%25-2, int(y1)%25-2)
		c := m.Crop(r)
		if c == nil {
			return r.ClampTo(mw, mh).Empty()
		}
		rc := r.ClampTo(mw, mh)
		return c.W == rc.W() && c.H == rc.H()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewImagePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewImage(0, 5) did not panic")
		}
	}()
	NewImage(0, 5)
}
