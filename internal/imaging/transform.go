package imaging

import "snmatch/internal/geom"

// FlipH returns m mirrored about the vertical axis.
func (m *Image) FlipH() *Image {
	out := NewImage(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			out.Set(m.W-1-x, y, m.At(x, y))
		}
	}
	return out
}

// FlipV returns m mirrored about the horizontal axis.
func (m *Image) FlipV() *Image {
	out := NewImage(m.W, m.H)
	for y := 0; y < m.H; y++ {
		src := y * m.W * 3
		dst := (m.H - 1 - y) * m.W * 3
		copy(out.Pix[dst:dst+m.W*3], m.Pix[src:src+m.W*3])
	}
	return out
}

// Rotate90 returns m rotated 90 degrees clockwise.
func (m *Image) Rotate90() *Image {
	out := NewImage(m.H, m.W)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			out.Set(m.H-1-y, x, m.At(x, y))
		}
	}
	return out
}

// Rotate180 returns m rotated 180 degrees.
func (m *Image) Rotate180() *Image {
	out := NewImage(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			out.Set(m.W-1-x, m.H-1-y, m.At(x, y))
		}
	}
	return out
}

// Rotate270 returns m rotated 90 degrees counter-clockwise.
func (m *Image) Rotate270() *Image {
	out := NewImage(m.H, m.W)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			out.Set(y, m.W-1-x, m.At(x, y))
		}
	}
	return out
}

// WarpAffine resamples m through the inverse of tf into a w x h canvas
// filled with bg: for each destination pixel p the source location is
// inv(tf)(p), sampled bilinearly. Source locations outside m map to bg.
func (m *Image) WarpAffine(tf geom.Affine, w, h int, bg RGB) *Image {
	checkSize(w, h)
	inv, ok := tf.Invert()
	if !ok {
		return NewImageFilled(w, h, bg)
	}
	out := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			src := inv.Apply(geom.Pt(float64(x), float64(y)))
			out.Set(x, y, m.sampleBilinear(src.X, src.Y, bg))
		}
	}
	return out
}

// sampleBilinear samples m at the continuous location (fx, fy), blending
// with bg for the portion of the sample footprint outside the image.
func (m *Image) sampleBilinear(fx, fy float64, bg RGB) RGB {
	x0, y0 := floorInt(fx), floorInt(fy)
	wx, wy := fx-float64(x0), fy-float64(y0)
	get := func(x, y int) RGB {
		if m.In(x, y) {
			return m.At(x, y)
		}
		return bg
	}
	if x0 < -1 || y0 < -1 || x0 > m.W || y0 > m.H {
		return bg
	}
	top := get(x0, y0).Mix(get(x0+1, y0), wx)
	bot := get(x0, y0+1).Mix(get(x0+1, y0+1), wx)
	return top.Mix(bot, wy)
}

// RotateAbout returns m rotated by theta radians about its centre on a
// same-sized canvas filled with bg.
func (m *Image) RotateAbout(theta float64, bg RGB) *Image {
	cx, cy := float64(m.W-1)/2, float64(m.H-1)/2
	return m.WarpAffine(geom.RotationAbout(theta, cx, cy), m.W, m.H, bg)
}

// PadTo returns m centred on a w x h canvas filled with bg. If m is larger
// than the canvas in a dimension it is cropped centrally.
func (m *Image) PadTo(w, h int, bg RGB) *Image {
	checkSize(w, h)
	out := NewImageFilled(w, h, bg)
	dx := (w - m.W) / 2
	dy := (h - m.H) / 2
	for y := 0; y < m.H; y++ {
		ty := y + dy
		if ty < 0 || ty >= h {
			continue
		}
		for x := 0; x < m.W; x++ {
			tx := x + dx
			if tx < 0 || tx >= w {
				continue
			}
			out.Set(tx, ty, m.At(x, y))
		}
	}
	return out
}
