package imaging

import (
	"math"
	"sort"

	"snmatch/internal/geom"
)

// FillRect fills the half-open rectangle r with c, clipped to the image.
func (m *Image) FillRect(r geom.Rect, c RGB) {
	r = r.ClampTo(m.W, m.H)
	for y := r.MinY; y < r.MaxY; y++ {
		i := (y*m.W + r.MinX) * 3
		for x := r.MinX; x < r.MaxX; x++ {
			m.Pix[i], m.Pix[i+1], m.Pix[i+2] = c.R, c.G, c.B
			i += 3
		}
	}
}

// StrokeRect draws the rectangle outline with the given stroke thickness
// growing inwards.
func (m *Image) StrokeRect(r geom.Rect, thickness int, c RGB) {
	if thickness < 1 {
		thickness = 1
	}
	m.FillRect(geom.Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MinY + thickness}, c)
	m.FillRect(geom.Rect{MinX: r.MinX, MinY: r.MaxY - thickness, MaxX: r.MaxX, MaxY: r.MaxY}, c)
	m.FillRect(geom.Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MinX + thickness, MaxY: r.MaxY}, c)
	m.FillRect(geom.Rect{MinX: r.MaxX - thickness, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}, c)
}

// FillPolygon fills the polygon using even-odd scanline rasterisation.
// Vertices are in continuous coordinates; pixel centres at (x+0.5, y+0.5)
// determine coverage.
func (m *Image) FillPolygon(poly []geom.Point, c RGB) {
	if len(poly) < 3 {
		return
	}
	minY, maxY := poly[0].Y, poly[0].Y
	for _, p := range poly[1:] {
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	y0 := int(math.Floor(minY))
	y1 := int(math.Ceil(maxY))
	if y0 < 0 {
		y0 = 0
	}
	if y1 > m.H {
		y1 = m.H
	}
	xs := make([]float64, 0, 8)
	for y := y0; y < y1; y++ {
		cy := float64(y) + 0.5
		xs = xs[:0]
		for i := range poly {
			a, b := poly[i], poly[(i+1)%len(poly)]
			if (a.Y > cy) == (b.Y > cy) {
				continue
			}
			t := (cy - a.Y) / (b.Y - a.Y)
			xs = append(xs, a.X+t*(b.X-a.X))
		}
		sort.Float64s(xs)
		for i := 0; i+1 < len(xs); i += 2 {
			xa := int(math.Ceil(xs[i] - 0.5))
			xb := int(math.Floor(xs[i+1] - 0.5))
			if xa < 0 {
				xa = 0
			}
			if xb >= m.W {
				xb = m.W - 1
			}
			for x := xa; x <= xb; x++ {
				m.Set(x, y, c)
			}
		}
	}
}

// StrokePolygon draws the polygon outline with the given thickness.
func (m *Image) StrokePolygon(poly []geom.Point, thickness float64, c RGB) {
	for i := range poly {
		a, b := poly[i], poly[(i+1)%len(poly)]
		m.Line(a, b, thickness, c)
	}
}

// Line draws a straight segment of the given thickness between a and b.
func (m *Image) Line(a, b geom.Point, thickness float64, c RGB) {
	if thickness < 1 {
		thickness = 1
	}
	d := b.Sub(a)
	length := d.Norm()
	if length < 1e-9 {
		m.FillEllipse(a, thickness/2, thickness/2, c)
		return
	}
	// Render the thick line as a rectangle polygon.
	n := geom.Pt(-d.Y/length, d.X/length).Scale(thickness / 2)
	m.FillPolygon([]geom.Point{a.Add(n), b.Add(n), b.Sub(n), a.Sub(n)}, c)
}

// FillEllipse fills the axis-aligned ellipse centred at centre with radii
// (rx, ry).
func (m *Image) FillEllipse(centre geom.Point, rx, ry float64, c RGB) {
	if rx <= 0 || ry <= 0 {
		return
	}
	y0 := int(math.Floor(centre.Y - ry))
	y1 := int(math.Ceil(centre.Y + ry))
	if y0 < 0 {
		y0 = 0
	}
	if y1 > m.H {
		y1 = m.H
	}
	for y := y0; y < y1; y++ {
		cy := float64(y) + 0.5
		dy := (cy - centre.Y) / ry
		if dy*dy > 1 {
			continue
		}
		half := rx * math.Sqrt(1-dy*dy)
		xa := int(math.Ceil(centre.X - half - 0.5))
		xb := int(math.Floor(centre.X + half - 0.5))
		if xa < 0 {
			xa = 0
		}
		if xb >= m.W {
			xb = m.W - 1
		}
		for x := xa; x <= xb; x++ {
			m.Set(x, y, c)
		}
	}
}

// FillCircle fills a circle of the given radius.
func (m *Image) FillCircle(centre geom.Point, r float64, c RGB) {
	m.FillEllipse(centre, r, r, c)
}

// StrokeEllipse draws an ellipse outline by filling the ellipse ring
// between the outer and inner radii.
func (m *Image) StrokeEllipse(centre geom.Point, rx, ry, thickness float64, c RGB) {
	if thickness < 1 {
		thickness = 1
	}
	steps := int(2*math.Pi*math.Max(rx, ry)) + 8
	prev := geom.Pt(centre.X+rx, centre.Y)
	for i := 1; i <= steps; i++ {
		t := 2 * math.Pi * float64(i) / float64(steps)
		p := geom.Pt(centre.X+rx*math.Cos(t), centre.Y+ry*math.Sin(t))
		m.Line(prev, p, thickness, c)
		prev = p
	}
}

// DrawImage copies src onto m with its top-left corner at (dx, dy),
// skipping pixels equal to the transparent key colour when hasKey is true.
func (m *Image) DrawImage(src *Image, dx, dy int, key RGB, hasKey bool) {
	for y := 0; y < src.H; y++ {
		ty := y + dy
		if ty < 0 || ty >= m.H {
			continue
		}
		for x := 0; x < src.W; x++ {
			tx := x + dx
			if tx < 0 || tx >= m.W {
				continue
			}
			c := src.At(x, y)
			if hasKey && c == key {
				continue
			}
			m.Set(tx, ty, c)
		}
	}
}

// Rect is a convenience constructor mirroring geom.R for callers that
// already import imaging.
func Rect(x0, y0, x1, y1 int) geom.Rect { return geom.R(x0, y0, x1, y1) }
