package imaging

import "testing"

// BenchmarkConvolveSeparable tracks the Gaussian blur hot path that
// dominates SIFT/ORB pyramid construction.
func BenchmarkConvolveSeparable(b *testing.B) {
	f := NewFloatGray(128, 128)
	for i := range f.Pix {
		f.Pix[i] = float32(i%251) / 251
	}
	for _, radius := range []int{2, 5, 9} {
		kernel := GaussianKernel(float64(radius)/3, radius)
		b.Run("r="+string(rune('0'+radius/10))+string(rune('0'+radius%10)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.ConvolveSeparable(kernel)
			}
		})
	}
}

// BenchmarkSobel tracks the gradient raster path used by ORB's Harris
// ranking.
func BenchmarkSobel(b *testing.B) {
	f := NewFloatGray(128, 128)
	for i := range f.Pix {
		f.Pix[i] = float32(i%251) / 251
	}
	for i := 0; i < b.N; i++ {
		f.Sobel()
	}
}
